package main

import (
	"testing"

	"planar/internal/core"
)

func TestParseDomains(t *testing.T) {
	doms, err := parseDomains("1:4, -2:-1 ,0:5", 3)
	if err != nil {
		t.Fatal(err)
	}
	if doms[0] != (core.Domain{Lo: 1, Hi: 4}) ||
		doms[1] != (core.Domain{Lo: -2, Hi: -1}) ||
		doms[2] != (core.Domain{Lo: 0, Hi: 5}) {
		t.Fatalf("doms=%v", doms)
	}
	// Default.
	doms, err = parseDomains("", 2)
	if err != nil || len(doms) != 2 || doms[0].Lo != 1 {
		t.Fatalf("default doms=%v err=%v", doms, err)
	}
	for _, bad := range []string{"1:4", "1:4,xx:2", "1:4,2:yy", "1:4,5", "1:4,-1:1"} {
		if _, err := parseDomains(bad, 2); err == nil {
			t.Errorf("parseDomains(%q) accepted", bad)
		}
	}
}

func TestParseQuery(t *testing.T) {
	q, err := parseQuery("2, 3.5 ,1 <= 150", 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != core.LE || q.B != 150 || q.A[1] != 3.5 {
		t.Fatalf("q=%+v", q)
	}
	q, err = parseQuery("1,-1 >= -5", 2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != core.GE || q.B != -5 || q.A[1] != -1 {
		t.Fatalf("q=%+v", q)
	}
	for _, bad := range []string{"1,2", "1,2 = 5", "1 <= 5", "1,x <= 5", "1,2 <= x"} {
		if _, err := parseQuery(bad, 2); err == nil {
			t.Errorf("parseQuery(%q) accepted", bad)
		}
	}
}

func TestSelectionOption(t *testing.T) {
	// Just ensure both names produce usable options.
	for _, name := range []string{"volume", "angle", "other"} {
		store, err := core.NewPointStore(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.NewMulti(store, selectionOption(name)); err != nil {
			t.Fatalf("selectionOption(%q): %v", name, err)
		}
	}
}
