// Command planarcli builds planar indexes over a CSV of numeric rows
// and answers scalar product queries against them.
//
// Usage:
//
//	planarcli -csv data.csv -header -domains "1:4,1:4,1:4" -budget 50 \
//	          -query "2,3,1 <= 150" -topk 5
//
// Queries are also read from stdin (one per line) when -query is
// absent. Query syntax: "a1,a2,... <= b" or "a1,a2,... >= b".
// A snapshot of the store and index configuration can be written
// with -save and reloaded with -load instead of -csv.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"planar/internal/codec"
	"planar/internal/core"
	"planar/internal/dataset"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "planarcli: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		csvPath = flag.String("csv", "", "CSV file of numeric rows to index")
		header  = flag.Bool("header", false, "CSV has a header row")
		domains = flag.String("domains", "", "per-axis coefficient domains, e.g. \"1:4,1:4,-2:-1\"")
		budget  = flag.Int("budget", 50, "planar index budget")
		seed    = flag.Int64("seed", 1, "sampling seed")
		query   = flag.String("query", "", "inline query \"a1,a2,... <= b\" (otherwise read stdin)")
		topK    = flag.Int("topk", 0, "also report the k nearest points to the query hyperplane")
		explain = flag.Bool("explain", false, "print the execution plan before answering each query")
		save    = flag.String("save", "", "write a snapshot after building")
		load    = flag.String("load", "", "load a snapshot instead of -csv")
		sel     = flag.String("select", "volume", "best-index heuristic: volume or angle")
	)
	flag.Parse()

	var m *core.Multi
	switch {
	case *load != "":
		snap, err := codec.Load(*load)
		if err != nil {
			return err
		}
		m, err = snap.Restore(selectionOption(*sel))
		if err != nil {
			return err
		}
		fmt.Printf("loaded snapshot: %d points, dim %d, %d indexes\n",
			m.Store().Len(), m.Store().Dim(), m.NumIndexes())
	case *csvPath != "":
		d, err := dataset.LoadCSV(*csvPath, *csvPath, *header)
		if err != nil {
			return err
		}
		store, err := d.Store()
		if err != nil {
			return err
		}
		m, err = core.NewMulti(store, selectionOption(*sel))
		if err != nil {
			return err
		}
		doms, err := parseDomains(*domains, d.Dim())
		if err != nil {
			return err
		}
		start := time.Now()
		added, err := m.SampleBudget(*budget, doms, rand.New(rand.NewSource(*seed)))
		if err != nil {
			return err
		}
		fmt.Printf("indexed %d points (dim %d) with %d planar indexes in %s\n",
			store.Len(), store.Dim(), added, time.Since(start).Round(time.Microsecond))
	default:
		return fmt.Errorf("either -csv or -load is required")
	}

	if *save != "" {
		if err := codec.Capture(m).Save(*save); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", *save)
	}

	answer := func(line string) error {
		q, err := parseQuery(line, m.Store().Dim())
		if err != nil {
			return err
		}
		if *explain {
			plan, err := m.Explain(q)
			if err != nil {
				return err
			}
			fmt.Println(plan)
		}
		start := time.Now()
		ids, st, err := m.InequalityIDs(q)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		cache := "miss"
		if st.CacheHit {
			cache = "hit"
		}
		fmt.Printf("%d rows in %s (pruned %.1f%%, index %d, fellback=%v, plan %s, exec %s, cache %s)\n",
			len(ids), elapsed.Round(time.Microsecond), 100*st.PruningFraction(),
			st.IndexUsed, st.FellBack,
			time.Duration(st.PlanNanos).Round(time.Microsecond),
			time.Duration(st.ExecNanos).Round(time.Microsecond), cache)
		preview := ids
		if len(preview) > 20 {
			preview = preview[:20]
		}
		fmt.Printf("rows: %v", preview)
		if len(ids) > 20 {
			fmt.Printf(" … (%d more)", len(ids)-20)
		}
		fmt.Println()
		if *topK > 0 {
			res, _, err := m.TopK(q, *topK)
			if err != nil {
				return err
			}
			fmt.Printf("top-%d closest to the hyperplane:\n", *topK)
			for _, r := range res {
				fmt.Printf("  row %d  dist %.6g\n", r.ID, r.Distance)
			}
		}
		return nil
	}

	if *query != "" {
		return answer(*query)
	}
	fmt.Println("enter queries (\"a1,a2,... <= b\"), ctrl-D to quit:")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := answer(line); err != nil {
			fmt.Fprintf(os.Stderr, "planarcli: %v\n", err)
		}
	}
	return sc.Err()
}

func selectionOption(name string) core.MultiOption {
	if name == "angle" {
		return core.WithSelection(core.SelectAngle)
	}
	return core.WithSelection(core.SelectVolume)
}

// parseDomains parses "lo:hi,lo:hi,...". An empty spec defaults every
// axis to [1, 10].
func parseDomains(spec string, dim int) ([]core.Domain, error) {
	out := make([]core.Domain, dim)
	if spec == "" {
		for i := range out {
			out[i] = core.Domain{Lo: 1, Hi: 10}
		}
		return out, nil
	}
	parts := strings.Split(spec, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("domains spec has %d entries, data has %d columns", len(parts), dim)
	}
	for i, p := range parts {
		lohi := strings.SplitN(strings.TrimSpace(p), ":", 2)
		if len(lohi) != 2 {
			return nil, fmt.Errorf("domain %d: want lo:hi, got %q", i, p)
		}
		lo, err := strconv.ParseFloat(lohi[0], 64)
		if err != nil {
			return nil, fmt.Errorf("domain %d lo: %w", i, err)
		}
		hi, err := strconv.ParseFloat(lohi[1], 64)
		if err != nil {
			return nil, fmt.Errorf("domain %d hi: %w", i, err)
		}
		out[i] = core.Domain{Lo: lo, Hi: hi}
		if err := out[i].Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// parseQuery parses "a1,a2,... <= b" or "... >= b".
func parseQuery(line string, dim int) (core.Query, error) {
	op := core.LE
	sep := "<="
	if strings.Contains(line, ">=") {
		op = core.GE
		sep = ">="
	} else if !strings.Contains(line, "<=") {
		return core.Query{}, fmt.Errorf("query %q needs <= or >=", line)
	}
	halves := strings.SplitN(line, sep, 2)
	b, err := strconv.ParseFloat(strings.TrimSpace(halves[1]), 64)
	if err != nil {
		return core.Query{}, fmt.Errorf("bad bound in %q: %w", line, err)
	}
	fields := strings.Split(strings.TrimSpace(halves[0]), ",")
	if len(fields) != dim {
		return core.Query{}, fmt.Errorf("query has %d coefficients, data has %d columns", len(fields), dim)
	}
	a := make([]float64, dim)
	for i, f := range fields {
		if a[i], err = strconv.ParseFloat(strings.TrimSpace(f), 64); err != nil {
			return core.Query{}, fmt.Errorf("bad coefficient %d in %q: %w", i, line, err)
		}
	}
	return core.NewQuery(a, b, op)
}
