// Command planarlint runs the repo's custom static-analysis suite
// (internal/lint) over a set of packages. It is wired into make lint
// and make ci; see DESIGN.md §9 for what each analyzer enforces.
//
// Usage:
//
//	go run ./cmd/planarlint [-json] [-run name,name] [packages...]
//
// Packages default to ./... . Exit status: 0 when the tree is clean,
// 1 when there are findings, 2 on a load or analysis failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"planar/internal/lint"
	"planar/internal/lint/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// finding is the machine-readable (-json) form of a diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// analyzerStat is the per-analyzer timing/count entry in -json output.
type analyzerStat struct {
	Name     string `json:"name"`
	Findings int    `json:"findings"`
	Millis   int64  `json:"millis"`
}

// report is the top-level -json document.
type report struct {
	Analyzers []analyzerStat `json:"analyzers"`
	Findings  []finding      `json:"findings"`
}

func run(args []string) int {
	fs := flag.NewFlagSet("planarlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit a JSON report (per-analyzer stats + findings) on stdout")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: planarlint [-json] [-run name,name] [packages...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *runList != "" {
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "planarlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planarlint: %v\n", err)
		return 2
	}
	diags, stats, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "planarlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		out := report{Analyzers: []analyzerStat{}, Findings: []finding{}} // encode [] rather than null when clean
		for _, s := range stats {
			out.Analyzers = append(out.Analyzers, analyzerStat{
				Name:     s.Name,
				Findings: s.Findings,
				Millis:   s.Duration.Milliseconds(),
			})
		}
		for _, d := range diags {
			out.Findings = append(out.Findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "planarlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
		var total time.Duration
		for _, s := range stats {
			total += s.Duration
		}
		fmt.Fprintf(os.Stderr, "planarlint: %d analyzer(s), %d finding(s) in %dms\n",
			len(stats), len(diags), total.Milliseconds())
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
