package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if got := run([]string{"-run", "nope", "."}); got != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", got)
	}
}

// TestJSONOnCleanPackage runs the real pipeline (go list -export,
// type-check, all analyzers) over this command's own package, which
// must be clean, and checks the -json contract: a JSON array (empty,
// not null) on stdout and exit 0.
func TestJSONOnCleanPackage(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-json", "."})
	_ = w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("planarlint -json . on a clean package: exit %d\n%s", code, buf.String())
	}
	var out []finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(out) != 0 {
		t.Fatalf("unexpected findings on own package: %+v", out)
	}
	if bytes.HasPrefix(bytes.TrimSpace(buf.Bytes()), []byte("null")) {
		t.Fatalf("clean run must encode [], not null")
	}
}

func TestSingleAnalyzerRun(t *testing.T) {
	if got := run([]string{"-run", "floatkey", "."}); got != 0 {
		t.Fatalf("floatkey over own package: exit %d, want 0", got)
	}
}
