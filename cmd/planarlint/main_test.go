package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"planar/internal/lint"
)

func TestUnknownAnalyzerExitsTwo(t *testing.T) {
	if got := run([]string{"-run", "nope", "."}); got != 2 {
		t.Fatalf("unknown analyzer: exit %d, want 2", got)
	}
}

// TestJSONOnCleanPackage runs the real pipeline (go list -export,
// type-check, all analyzers) over this command's own package, which
// must be clean, and checks the -json contract: a report object with
// one stats entry per analyzer, an empty (not null) findings array,
// and exit 0.
func TestJSONOnCleanPackage(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-json", "."})
	_ = w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("planarlint -json . on a clean package: exit %d\n%s", code, buf.String())
	}
	var out report
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not a JSON report object: %v\n%s", err, buf.String())
	}
	if len(out.Findings) != 0 {
		t.Fatalf("unexpected findings on own package: %+v", out.Findings)
	}
	if want := len(lint.All()); len(out.Analyzers) != want {
		t.Fatalf("report has %d analyzer entries, want %d\n%s", len(out.Analyzers), want, buf.String())
	}
	for _, s := range out.Analyzers {
		if s.Name == "" || s.Findings != 0 || s.Millis < 0 {
			t.Fatalf("malformed analyzer stat %+v", s)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte(`"findings": null`)) {
		t.Fatalf("clean run must encode [], not null:\n%s", buf.String())
	}
}

func TestSingleAnalyzerRun(t *testing.T) {
	if got := run([]string{"-run", "floatkey", "."}); got != 0 {
		t.Fatalf("floatkey over own package: exit %d, want 0", got)
	}
}
