// Command planargen writes the paper's workload datasets as CSV so
// they can be fed to planarcli or external tools.
//
// Usage:
//
//	planargen -kind indp -n 100000 -dim 6 -o indp.csv
//	planargen -kind consumption -n 2075259 -o consumption.csv
//	planargen -kind ctexture -n 68040 -o ctexture.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"planar/internal/dataset"
)

func main() {
	var (
		kind = flag.String("kind", "indp", "indp | corr | anti | consumption | cmoment | ctexture")
		n    = flag.Int("n", 100000, "number of rows")
		dim  = flag.Int("dim", 6, "dimensionality (synthetic kinds only)")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output CSV path (default stdout)")
		hdr  = flag.Bool("header", true, "write a header row")
	)
	flag.Parse()

	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "planargen: -n must be positive")
		os.Exit(2)
	}
	var d *dataset.Data
	var cols []string
	switch *kind {
	case "indp":
		d = dataset.Independent(*n, *dim, *seed)
	case "corr":
		d = dataset.Correlated(*n, *dim, *seed)
	case "anti":
		d = dataset.AntiCorrelated(*n, *dim, *seed)
	case "consumption":
		d = dataset.Consumption(*n, *seed)
		cols = dataset.ConsumptionColumns
	case "cmoment":
		d = dataset.CMoment(*n, *seed)
	case "ctexture":
		d = dataset.CTexture(*n, *seed)
	default:
		fmt.Fprintf(os.Stderr, "planargen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *dim <= 0 && cols == nil {
		fmt.Fprintln(os.Stderr, "planargen: -dim must be positive")
		os.Exit(2)
	}
	if *hdr && cols == nil {
		cols = make([]string, d.Dim())
		for i := range cols {
			cols[i] = fmt.Sprintf("x%d", i)
		}
	}
	if !*hdr {
		cols = nil
	}

	if *out == "" {
		if err := d.WriteCSV(os.Stdout, cols); err != nil {
			fmt.Fprintf(os.Stderr, "planargen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := d.SaveCSV(*out, cols); err != nil {
		fmt.Fprintf(os.Stderr, "planargen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows × %d columns to %s\n", d.Len(), d.Dim(), *out)
}
