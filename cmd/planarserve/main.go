// Command planarserve runs a durable planar index store behind a
// JSON HTTP API (see internal/httpapi for the endpoint reference).
//
//	planarserve -data ./db -dim 4 -addr :8080
//
// The data directory holds a CRC-checked snapshot plus a write-ahead
// log; kill the process at any point and reopen to recover. With
// -paged (or -page-cache-mb N) a fresh directory instead uses the
// disk-paged tier: trees live in a CRC-checked page file and fault
// through a bounded page cache, so the resident set can be far
// smaller than the dataset. Directories reopen in whichever layout
// they were created with.
//
// With -ingest-batch N the write path group-commits: mutations queue
// on a per-shard ring, a committer drains batches of up to N (or
// whatever arrived within -ingest-flush-interval), applies them under
// one lock and journals them as a single WAL frame with one fsync.
// Requests still ack only after their record is durable; see
// DESIGN.md §13.
//
// With -replicate-from the process runs as a read replica instead: it
// bootstraps from the primary's snapshot, tails its commit stream,
// and serves the full read API while writes answer 403 (or proxy
// upstream with -proxy-writes). POST /v1/replication/promote fails it
// over into a writable primary. See DESIGN.md §8.
//
// SIGINT/SIGTERM shut down gracefully: the listener drains in-flight
// requests up to -shutdown-timeout, then the WAL is synced and the
// store closed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"planar/internal/httpapi"
	"planar/internal/replica"
	"planar/internal/service"
)

func main() {
	var (
		dataDir    = flag.String("data", "planar-data", "data directory (snapshot + write-ahead log)")
		dataDirAlt = flag.String("data-dir", "", "alias for -data")
		dim        = flag.Int("dim", 0, "φ dimensionality (required for a fresh directory)")
		addr       = flag.String("addr", ":8080", "listen address")
		syncWrites = flag.Bool("sync", false, "fsync the log after every mutation")
		checkpoint = flag.Int("checkpoint", 10000, "auto-checkpoint after this many mutations (0 = manual only)")
		shards     = flag.Int("shards", 0, "partition the store across N shards (0 = unsharded; existing directories keep their layout)")
		paged      = flag.Bool("paged", false, "use the disk-paged storage tier for a fresh directory (existing directories keep their layout)")
		cacheMB    = flag.Int("page-cache-mb", 0, "page-cache budget in MiB for the paged tier (implies -paged; 0 = default budget)")

		writebackEvery = flag.Duration("writeback-interval", 0, "paged tier: background page-writer cadence (0 = default 25ms)")
		writebackPages = flag.Int("writeback-pages", 0, "paged tier: max pages per writer round (0 = default 128)")
		noWriteback    = flag.Bool("no-writeback", false, "paged tier: disable the background page writer (dirty frames flush only at checkpoint)")
		fullCheckpoint = flag.Bool("full-checkpoints", false, "paged tier: rewrite the whole store page set each checkpoint instead of the delta")

		ingestBatch = flag.Int("ingest-batch", 0, "group-commit writes in batches up to this size (0 = synchronous per-request path)")
		ingestFlush = flag.Duration("ingest-flush-interval", 0, "max time a group commit waits to fill its batch (0 = default 2ms; needs -ingest-batch)")
		ingestQueue = flag.Int("ingest-queue", 0, "per-lane ingest ring capacity in intents (0 = 4x batch; needs -ingest-batch)")
		ingestShed  = flag.Bool("ingest-shed", false, "answer 429 when the ingest ring is full instead of blocking the request")

		role          = flag.String("role", "", "primary or replica (default: replica iff -replicate-from is set)")
		replicateFrom = flag.String("replicate-from", "", "primary base URL to replicate from (enables replica role)")
		proxyWrites   = flag.Bool("proxy-writes", false, "replica: proxy mutations to the primary instead of rejecting them")
		readyMaxLag   = flag.Uint64("ready-max-lag", 4096, "replica: /readyz fails above this many unapplied LSNs (0 = any lag is ready)")
		shutdownWait  = flag.Duration("shutdown-timeout", 10*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	if *dataDirAlt != "" {
		*dataDir = *dataDirAlt
	}
	if *cacheMB < 0 {
		log.Fatal("planarserve: -page-cache-mb must be >= 0")
	}
	if *cacheMB > 0 {
		*paged = true
	}
	if *ingestBatch < 0 {
		log.Fatal("planarserve: -ingest-batch must be >= 0")
	}
	if *ingestBatch == 0 && (*ingestFlush != 0 || *ingestQueue != 0 || *ingestShed) {
		log.Fatal("planarserve: -ingest-flush-interval/-ingest-queue/-ingest-shed need -ingest-batch")
	}

	isReplica := *replicateFrom != ""
	switch *role {
	case "", "primary", "replica":
		if *role == "replica" && !isReplica {
			log.Fatal("planarserve: -role replica requires -replicate-from")
		}
		if *role == "primary" && isReplica {
			log.Fatal("planarserve: -role primary conflicts with -replicate-from")
		}
	default:
		log.Fatalf("planarserve: unknown role %q (primary or replica)", *role)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var (
		api *httpapi.Server
		rep *replica.Replica
		db  *service.DB
		err error
	)
	if isReplica {
		rep, err = replica.Start(replica.Options{
			Primary:         *replicateFrom,
			Dir:             *dataDir,
			ReadyMaxLag:     *readyMaxLag,
			SyncEveryWrite:  *syncWrites,
			CheckpointEvery: *checkpoint,
		})
		if err == nil {
			api, err = httpapi.New(nil, httpapi.WithReplica(rep, *replicateFrom, *proxyWrites))
		}
	} else {
		db, err = service.Open(*dataDir, service.Options{
			Dim:             *dim,
			SyncEveryWrite:  *syncWrites,
			CheckpointEvery: *checkpoint,
			Shards:          *shards,
			Paged:           *paged,
			PageCacheBytes:  *cacheMB << 20,

			WritebackInterval:   *writebackEvery,
			WritebackBatchPages: *writebackPages,
			DisableWriteback:    *noWriteback,
			FullCheckpoints:     *fullCheckpoint,

			IngestBatch:         *ingestBatch,
			IngestFlushInterval: *ingestFlush,
			IngestQueueDepth:    *ingestQueue,
			IngestBlock:         !*ingestShed,
		})
		if err == nil {
			api, err = httpapi.New(db)
		}
	}
	if err != nil {
		log.Fatalf("planarserve: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	if isReplica {
		fmt.Printf("planarserve: replica of %s, data %s, listening on %s\n", *replicateFrom, *dataDir, *addr)
	} else {
		layout := "unsharded"
		if db.Sharded() {
			layout = fmt.Sprintf("%d shards", db.Shards())
		}
		if db.Paged() {
			layout += ", paged"
		}
		fmt.Printf("planarserve: %d points (dim %d), %d indexes, %s, listening on %s\n",
			db.Len(), db.Dim(), db.NumIndexes(), layout, *addr)
	}

	select {
	case err := <-errc:
		log.Fatalf("planarserve: %v", err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests with
	// a deadline, then make the store durable and release it.
	log.Printf("planarserve: signal received, draining for up to %s", *shutdownWait)
	drain, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	if err := srv.Shutdown(drain); err != nil {
		log.Printf("planarserve: drain: %v (closing anyway)", err)
		srv.Close()
	}
	if rep != nil {
		if err := rep.Close(); err != nil {
			log.Printf("planarserve: replica close: %v", err)
		}
	} else {
		if err := db.Checkpoint(); err != nil {
			log.Printf("planarserve: final checkpoint: %v", err)
		}
		if err := db.Close(); err != nil {
			log.Printf("planarserve: close: %v", err)
		}
	}
	log.Println("planarserve: shut down cleanly")
}
