// Command planarserve runs a durable planar index store behind a
// JSON HTTP API (see internal/httpapi for the endpoint reference).
//
//	planarserve -data ./db -dim 4 -addr :8080
//
// The data directory holds a CRC-checked snapshot plus a write-ahead
// log; kill the process at any point and reopen to recover.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	"planar/internal/httpapi"
	"planar/internal/service"
)

func main() {
	var (
		dataDir    = flag.String("data", "planar-data", "data directory (snapshot + write-ahead log)")
		dim        = flag.Int("dim", 0, "φ dimensionality (required for a fresh directory)")
		addr       = flag.String("addr", ":8080", "listen address")
		syncWrites = flag.Bool("sync", false, "fsync the log after every mutation")
		checkpoint = flag.Int("checkpoint", 10000, "auto-checkpoint after this many mutations (0 = manual only)")
		shards     = flag.Int("shards", 0, "partition the store across N shards (0 = unsharded; existing directories keep their layout)")
	)
	flag.Parse()

	db, err := service.Open(*dataDir, service.Options{
		Dim:             *dim,
		SyncEveryWrite:  *syncWrites,
		CheckpointEvery: *checkpoint,
		Shards:          *shards,
	})
	if err != nil {
		log.Fatalf("planarserve: %v", err)
	}
	api, err := httpapi.New(db)
	if err != nil {
		log.Fatalf("planarserve: %v", err)
	}

	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		log.Println("planarserve: shutting down")
		srv.Close()
		if err := db.Checkpoint(); err != nil {
			log.Printf("planarserve: final checkpoint: %v", err)
		}
		if err := db.Close(); err != nil {
			log.Printf("planarserve: close: %v", err)
		}
	}()

	layout := "unsharded"
	if db.Sharded() {
		layout = fmt.Sprintf("%d shards", db.Shards())
	}
	fmt.Printf("planarserve: %d points (dim %d), %d indexes, %s, listening on %s\n",
		db.Len(), db.Dim(), db.NumIndexes(), layout, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("planarserve: %v", err)
	}
	<-done
}
