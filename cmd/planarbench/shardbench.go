package main

// The -clients mode measures scatter-gather throughput instead of
// replaying a paper experiment: N client goroutines issue a mixed
// read/write workload against an in-memory sharded store, once per
// shard count, and the aggregate QPS table lands in a JSON report
// (BENCH_shard.json by default). Writes are the interesting part —
// readers already run concurrently inside one store, but a write
// locks the whole unsharded store versus a single partition of the
// sharded one, and per-shard b-trees are shallower and
// cache-friendlier than one store-wide tree. The defaults (100k
// points, half mutations) model the large mutation-heavy store
// sharding is for; small read-mostly stores are better served by a
// single partition.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"planar/internal/core"
	"planar/internal/shard"
	"planar/internal/vecmath"
)

type shardBenchRun struct {
	Shards  int     `json:"shards"`
	Clients int     `json:"clients"`
	Ops     int     `json:"ops"`
	Reads   int     `json:"reads"`
	Writes  int     `json:"writes"`
	Seconds float64 `json:"seconds"`
	QPS     float64 `json:"qps"`
}

type shardBenchReport struct {
	Points    int             `json:"points"`
	Dim       int             `json:"dim"`
	Clients   int             `json:"clients"`
	WriteFrac float64         `json:"writeFrac"`
	Duration  string          `json:"duration"`
	GoMaxProc int             `json:"gomaxprocs"`
	NumCPU    int             `json:"numcpu,omitempty"`
	Runs      []shardBenchRun `json:"runs"`
}

type shardBenchConfig struct {
	Clients   int
	MaxShards int
	Points    int
	Dim       int
	WriteFrac float64
	Duration  time.Duration
	Seed      int64
	OutPath   string
}

// benchShardCounts is the sweep: always 1 (the unsharded baseline)
// and the requested maximum, with a midpoint when the range is wide
// enough to show the trend.
func benchShardCounts(max int) []int {
	set := map[int]bool{1: true, max: true}
	if max >= 4 {
		set[max/2] = true
	}
	counts := make([]int, 0, len(set))
	for n := range set {
		counts = append(counts, n)
	}
	sort.Ints(counts)
	return counts
}

func newBenchStore(shards int, cfg shardBenchConfig) (*shard.Store, error) {
	st, err := shard.Open("", shard.Options{Shards: shards, Dim: cfg.Dim})
	if err != nil {
		return nil, err
	}
	normal := make([]float64, cfg.Dim)
	for j := range normal {
		normal[j] = 1 + float64(j)
	}
	if _, err := st.AddNormal(normal, vecmath.FirstOctant(cfg.Dim)); err != nil {
		st.Close()
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Points; i++ {
		if _, err := st.Append(benchVec(rng, cfg.Dim)); err != nil {
			st.Close()
			return nil, err
		}
	}
	return st, nil
}

func benchVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for j := range v {
		v[j] = rng.Float64() * 100
	}
	return v
}

func benchOneRun(shards int, cfg shardBenchConfig) (shardBenchRun, error) {
	st, err := newBenchStore(shards, cfg)
	if err != nil {
		return shardBenchRun{}, err
	}
	defer st.Close()

	type tally struct{ reads, writes int }
	tallies := make([]tally, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c) + 1))
			for time.Now().Before(deadline) {
				if rng.Float64() < cfg.WriteFrac {
					id := uint32(rng.Intn(cfg.Points))
					if rng.Intn(2) == 0 {
						st.Update(id, benchVec(rng, cfg.Dim))
					} else {
						// Remove + re-append keeps cardinality steady.
						if st.Remove(id) == nil {
							st.Append(benchVec(rng, cfg.Dim))
						}
					}
					tallies[c].writes++
					continue
				}
				a := make([]float64, cfg.Dim)
				for j := range a {
					a[j] = rng.Float64() * 4
				}
				// Selective thresholds (~1% of the mean scalar product):
				// serving-style point lookups, not analytics sweeps.
				q := core.Query{A: a, B: rng.Float64() * 100, Op: core.LE}
				if _, _, err := st.Query(q); err != nil {
					return
				}
				tallies[c].reads++
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	run := shardBenchRun{Shards: shards, Clients: cfg.Clients, Seconds: elapsed.Seconds()}
	for _, tl := range tallies {
		run.Reads += tl.reads
		run.Writes += tl.writes
	}
	run.Ops = run.Reads + run.Writes
	run.QPS = float64(run.Ops) / elapsed.Seconds()
	return run, nil
}

func runShardBench(cfg shardBenchConfig, w io.Writer) error {
	if cfg.MaxShards < 1 {
		return fmt.Errorf("shard bench: -shards must be >= 1 (got %d)", cfg.MaxShards)
	}
	report := shardBenchReport{
		Points:    cfg.Points,
		Dim:       cfg.Dim,
		Clients:   cfg.Clients,
		WriteFrac: cfg.WriteFrac,
		Duration:  cfg.Duration.String(),
		GoMaxProc: runtime.GOMAXPROCS(0),
		NumCPU:    runtime.NumCPU(),
	}
	fmt.Fprintf(w, "shard scatter-gather bench: %d clients, %d points (dim %d), %.0f%% writes, %s per run\n",
		cfg.Clients, cfg.Points, cfg.Dim, cfg.WriteFrac*100, cfg.Duration)
	fmt.Fprintf(w, "%8s %12s %12s %12s %12s\n", "shards", "ops", "reads", "writes", "qps")
	for _, n := range benchShardCounts(cfg.MaxShards) {
		run, err := benchOneRun(n, cfg)
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, run)
		fmt.Fprintf(w, "%8d %12d %12d %12d %12.0f\n", run.Shards, run.Ops, run.Reads, run.Writes, run.QPS)
	}
	if cfg.OutPath != "" {
		// The report file accumulates: each invocation appends to the
		// array so runs under different machine configurations (e.g.
		// GOMAXPROCS settings) sit side by side. A legacy single-object
		// file is migrated into a one-element array first.
		var reports []shardBenchReport
		if prev, err := os.ReadFile(cfg.OutPath); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single shardBenchReport
				if json.Unmarshal(prev, &single) == nil {
					reports = append(reports, single)
				}
			}
		}
		reports = append(reports, report)
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
