// Command planarbench regenerates the tables and figures of the
// paper's evaluation (Section 7). Each experiment prints a
// plain-text table whose rows correspond to the paper's plotted
// series.
//
// Usage:
//
//	planarbench -list
//	planarbench -exp fig7                 # one experiment, laptop scale
//	planarbench -exp all -paper           # everything at paper scale
//	planarbench -exp fig14a -moving 2000  # override workload sizes
//
// A second mode benchmarks the sharded store's scatter-gather path:
//
//	planarbench -clients 8 -shards 8      # aggregate QPS vs shard count
//
// which sweeps shard counts up to -shards, drives a mixed read/write
// workload from -clients concurrent goroutines, and writes the
// throughput table to -benchout (BENCH_shard.json).
//
// A third mode benchmarks replication read scale-out:
//
//	planarbench -replicas 2
//
// which serves a primary plus N streaming replicas over in-process
// HTTP, measures read QPS against the primary alone versus the full
// fleet (with a background writer so lag is measured under load), and
// writes the report to -repout (BENCH_replica.json).
//
// A fourth mode benchmarks the verification hot path:
//
//	planarbench -mode hotpath
//
// which compares the batched kernel engine against the classic
// per-entry tree walk across dimensionalities and intermediate-
// interval selectivities, and writes the report to -hotout
// (BENCH_hotpath.json).
//
// A fifth mode benchmarks the index structure itself:
//
//	planarbench -mode build
//
// which measures bulk-load time, steady-state insert/delete churn,
// and resident bytes per entry for the arena B+ tree against the
// pointer-node reference tree, and writes the report to -buildout
// (BENCH_build.json).
//
// A sixth mode benchmarks the disk-paged storage tier:
//
//	planarbench -mode paged
//
// which builds equivalent snapshot-mode and paged directories,
// compares cold-open latency (full snapshot rebuild vs lazy page
// faulting), warm-cache query latency against the all-RAM store, and
// the faulting regime where the page cache is smaller than the
// working set, and writes the report to -pageout (BENCH_page.json).
//
// A seventh mode benchmarks the group-commit write pipeline:
//
//	planarbench -mode ingest
//
// which drives -writers concurrent writers against a durable store
// twice — the synchronous per-request-fsync path versus the ingest
// pipeline batching records into single-fsync WAL frames — and writes
// sustained QPS plus ack latency percentiles to -ingestout
// (BENCH_ingest.json).
//
// An eighth mode benchmarks paged-tier checkpoints:
//
//	planarbench -mode checkpoint
//
// which runs a write-heavy churn workload (skewed updates plus
// appends) against two paged stores — full-flush checkpoints with no
// background writer vs background writeback plus incremental
// checkpoints — and reports checkpoint latency percentiles,
// lock-window durations, pages written per checkpoint, and
// dirty-frame high-water marks to -checkpointout
// (BENCH_checkpoint.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"planar/internal/experiments"
)

func main() {
	var (
		expID   = flag.String("exp", "", "experiment id to run, or \"all\"")
		list    = flag.Bool("list", false, "list available experiments")
		paper   = flag.Bool("paper", false, "use the paper's full-scale configuration")
		points  = flag.Int("points", 0, "override synthetic dataset cardinality")
		real    = flag.Int("realpoints", 0, "override simulated real-world dataset cardinality")
		queries = flag.Int("queries", 0, "override queries averaged per measurement")
		movingN = flag.Int("moving", 0, "override moving objects per set")
		seed    = flag.Int64("seed", 0, "override random seed")

		clients   = flag.Int("clients", 0, "run the concurrent-client shard benchmark with this many clients")
		shardsMax = flag.Int("shards", 8, "largest shard count in the -clients sweep")
		dim       = flag.Int("dim", 4, "point dimensionality for the -clients sweep")
		writeFrac = flag.Float64("writefrac", 0.5, "fraction of mutations in the -clients workload")
		benchDur  = flag.Duration("benchdur", 2*time.Second, "measurement window per shard count in the -clients sweep")
		benchOut  = flag.String("benchout", "BENCH_shard.json", "JSON report path for the -clients sweep (empty = stdout only)")

		replicas   = flag.Int("replicas", 0, "run the replication read scale-out benchmark with this many replicas")
		repClients = flag.Int("repclients", 8, "client goroutines in the -replicas benchmark")
		repOut     = flag.String("repout", "BENCH_replica.json", "JSON report path for the -replicas benchmark (empty = stdout only)")

		mode     = flag.String("mode", "", "extra benchmark mode: \"hotpath\" compares batched vs tree-walk verification; \"build\" compares arena vs pointer-tree index builds; \"paged\" compares the disk-paged tier against snapshot restore and all-RAM queries; \"checkpoint\" compares full-flush vs background+incremental checkpoints")
		hotOut   = flag.String("hotout", "BENCH_hotpath.json", "JSON report path for -mode hotpath (empty = stdout only)")
		hotDur   = flag.Duration("hotdur", 300*time.Millisecond, "measurement window per engine per cell in -mode hotpath")
		buildOut = flag.String("buildout", "BENCH_build.json", "JSON report path for -mode build (empty = stdout only)")
		pageOut  = flag.String("pageout", "BENCH_page.json", "JSON report path for -mode paged (empty = stdout only)")

		cpRounds   = flag.Int("rounds", 10, "churn+checkpoint cycles per engine in -mode checkpoint")
		cpMuts     = flag.Int("muts", 3000, "mutations per round in -mode checkpoint")
		cpInterval = flag.Duration("writeback-interval", 5*time.Millisecond, "background writer cadence in -mode checkpoint")
		cpOut      = flag.String("checkpointout", "BENCH_checkpoint.json", "JSON report path for -mode checkpoint (empty = stdout only)")

		writers      = flag.Int("writers", 8, "concurrent writers in -mode ingest")
		ingestWindow = flag.Int("window", 16, "in-flight submissions per writer on the grouped run of -mode ingest")
		ingestBatch  = flag.Int("batch", 256, "group-commit batch cap in -mode ingest")
		ingestFlush  = flag.Duration("flush", 2*time.Millisecond, "group-commit flush interval in -mode ingest")
		ingestOut    = flag.String("ingestout", "BENCH_ingest.json", "JSON report path for -mode ingest (empty = stdout only)")
	)
	flag.Parse()

	if *mode != "" {
		switch *mode {
		case "hotpath":
			cfg := hotpathConfig{Points: 20000, Seed: 2014, Window: *hotDur, OutPath: *hotOut}
			if *points > 0 {
				cfg.Points = *points
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if err := runHotpathBench(cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
				os.Exit(1)
			}
		case "build":
			cfg := buildBenchConfig{Points: 200000, Seed: 2014, OutPath: *buildOut}
			if *points > 0 {
				cfg.Points = *points
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if err := runBuildBench(cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
				os.Exit(1)
			}
		case "paged":
			cfg := pagedBenchConfig{
				Points:    150000,
				Dim:       *dim,
				Seed:      2014,
				Queries:   300,
				TinyBytes: 1, // clamps to the pager's minimum frame count
				OutPath:   *pageOut,
			}
			if *points > 0 {
				cfg.Points = *points
			}
			if *queries > 0 {
				cfg.Queries = *queries
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if err := runPagedBench(cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
				os.Exit(1)
			}
		case "checkpoint":
			cfg := checkpointBenchConfig{
				Points:   80000,
				Dim:      8,
				Rounds:   *cpRounds,
				Muts:     *cpMuts,
				Seed:     2014,
				Interval: *cpInterval,
				OutPath:  *cpOut,
			}
			if *points > 0 {
				cfg.Points = *points
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if err := runCheckpointBench(cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
				os.Exit(1)
			}
		case "ingest":
			cfg := ingestBenchConfig{
				Writers:  *writers,
				Window:   *ingestWindow,
				Dim:      *dim,
				Batch:    *ingestBatch,
				Flush:    *ingestFlush,
				Duration: *benchDur,
				Seed:     2014,
				OutPath:  *ingestOut,
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if err := runIngestBench(cfg, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "planarbench: unknown -mode %q (\"hotpath\", \"build\", \"paged\", \"checkpoint\", or \"ingest\")\n", *mode)
			os.Exit(2)
		}
		return
	}

	if *replicas > 0 {
		cfg := replicaBenchConfig{
			Replicas: *replicas,
			Clients:  *repClients,
			Points:   20000,
			Dim:      *dim,
			Duration: *benchDur,
			Seed:     2014,
			OutPath:  *repOut,
		}
		if *points > 0 {
			cfg.Points = *points
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if err := runReplicaBench(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *clients > 0 {
		cfg := shardBenchConfig{
			Clients:   *clients,
			MaxShards: *shardsMax,
			Points:    100000,
			Dim:       *dim,
			WriteFrac: *writeFrac,
			Duration:  *benchDur,
			Seed:      2014,
			OutPath:   *benchOut,
		}
		if *points > 0 {
			cfg.Points = *points
		}
		if *seed != 0 {
			cfg.Seed = *seed
		}
		if err := runShardBench(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "planarbench: -exp is required (try -list)")
		os.Exit(2)
	}

	cfg := experiments.DefaultConfig()
	if *paper {
		cfg = experiments.PaperConfig()
	}
	if *points > 0 {
		cfg.Points = *points
	}
	if *real > 0 {
		cfg.RealPoints = *real
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *movingN > 0 {
		cfg.MovingN = *movingN
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	run := func(id, title string) error {
		fmt.Printf("== %s — %s\n", id, title)
		start := time.Now()
		if err := experiments.Run(id, cfg, os.Stdout); err != nil {
			return err
		}
		fmt.Printf("(completed in %s)\n\n", time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *expID == "all" {
		for _, e := range experiments.All() {
			if err := run(e.ID, e.Title); err != nil {
				fmt.Fprintf(os.Stderr, "planarbench: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		return
	}
	e, ok := experiments.Find(*expID)
	if !ok {
		fmt.Fprintf(os.Stderr, "planarbench: unknown experiment %q (try -list)\n", *expID)
		os.Exit(2)
	}
	if err := run(e.ID, e.Title); err != nil {
		fmt.Fprintf(os.Stderr, "planarbench: %v\n", err)
		os.Exit(1)
	}
}
