package main

// The -replicas mode measures what WAL-shipping replication buys:
// read QPS against the primary alone versus the same client pool
// round-robined across the primary plus N replicas, with a background
// writer running so the steady-state replication lag is measured
// under load rather than at rest. Everything runs in-process over
// real HTTP (httptest servers), so the numbers include the JSON and
// transport cost a deployment would pay. The report lands in
// BENCH_replica.json.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"planar/internal/httpapi"
	"planar/internal/replica"
	"planar/internal/service"
	"planar/internal/vecmath"
)

type replicaBenchConfig struct {
	Replicas int
	Clients  int
	Points   int
	Dim      int
	Duration time.Duration
	Seed     int64
	OutPath  string
}

type replicaBenchPhase struct {
	Targets int     `json:"targets"`
	Ops     int     `json:"ops"`
	Errors  int     `json:"errors"`
	Seconds float64 `json:"seconds"`
	QPS     float64 `json:"qps"`
}

type replicaBenchReport struct {
	Replicas   int               `json:"replicas"`
	Clients    int               `json:"clients"`
	Points     int               `json:"points"`
	Dim        int               `json:"dim"`
	Duration   string            `json:"duration"`
	GoMaxProc  int               `json:"gomaxprocs"`
	NumCPU     int               `json:"numcpu,omitempty"`
	Primary    replicaBenchPhase `json:"primaryOnly"`
	ScaleOut   replicaBenchPhase `json:"scaleOut"`
	Speedup    float64           `json:"speedup"`
	Writes     int               `json:"backgroundWrites"`
	LagSamples int               `json:"lagSamples"`
	MeanLag    float64           `json:"meanLagLSNs"`
	MaxLag     uint64            `json:"maxLagLSNs"`
}

// benchQueryPhase drives cfg.Clients goroutines issuing /v1/query
// round-robin across endpoints for cfg.Duration.
func benchQueryPhase(cfg replicaBenchConfig, client *http.Client, endpoints []string) replicaBenchPhase {
	var ops, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	// Bound every request by the phase deadline so a wedged endpoint
	// cannot hang the bench past its window.
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
			for i := 0; time.Now().Before(deadline); i++ {
				a := make([]float64, cfg.Dim)
				for j := range a {
					a[j] = rng.Float64() * 4
				}
				body, _ := json.Marshal(map[string]interface{}{"a": a, "b": rng.Float64() * 100, "op": "<="})
				url := endpoints[(c+i)%len(endpoints)] + "/v1/query"
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := client.Do(req)
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
					continue
				}
				ops.Add(1)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return replicaBenchPhase{
		Targets: len(endpoints),
		Ops:     int(ops.Load()),
		Errors:  int(errs.Load()),
		Seconds: elapsed.Seconds(),
		QPS:     float64(ops.Load()) / elapsed.Seconds(),
	}
}

func runReplicaBench(cfg replicaBenchConfig, w io.Writer) error {
	if cfg.Replicas < 1 {
		return fmt.Errorf("replica bench: -replicas must be >= 1 (got %d)", cfg.Replicas)
	}
	root, err := os.MkdirTemp("", "planar-repbench-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	db, err := service.Open(filepath.Join(root, "primary"), service.Options{Dim: cfg.Dim, Shards: 2})
	if err != nil {
		return err
	}
	defer db.Close()
	normal := make([]float64, cfg.Dim)
	for j := range normal {
		normal[j] = 1 + float64(j)
	}
	if _, err := db.AddNormal(normal, vecmath.FirstOctant(cfg.Dim)); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.Points; i++ {
		if _, err := db.Append(benchVec(rng, cfg.Dim)); err != nil {
			return err
		}
	}
	api, err := httpapi.New(db)
	if err != nil {
		return err
	}
	primarySrv := httptest.NewServer(api.Handler())
	defer primarySrv.Close()

	endpoints := []string{primarySrv.URL}
	reps := make([]*replica.Replica, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		rep, err := replica.Start(replica.Options{
			Primary:  primarySrv.URL,
			Dir:      filepath.Join(root, fmt.Sprintf("replica%d", i)),
			PollWait: 100 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer rep.Close()
		rapi, err := httpapi.New(nil, httpapi.WithReplica(rep, primarySrv.URL, false))
		if err != nil {
			return err
		}
		rsrv := httptest.NewServer(rapi.Handler())
		defer rsrv.Close()
		reps = append(reps, rep)
		endpoints = append(endpoints, rsrv.URL)
	}
	for _, rep := range reps {
		deadline := time.Now().Add(60 * time.Second)
		for rep.Status().LastApplied < db.LastLSN() {
			if time.Now().After(deadline) {
				return fmt.Errorf("replica bench: catch-up stuck at %+v", rep.Status())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// One pooled client shared by both phases so transport reuse is
	// identical; the per-host idle pool must cover every client conn.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Clients * 2}}

	fmt.Fprintf(w, "replica read scale-out bench: %d clients, %d points (dim %d), %s per phase, %d replicas\n",
		cfg.Clients, cfg.Points, cfg.Dim, cfg.Duration, cfg.Replicas)

	// The background writer and the lag sampler span both phases so
	// the two read-QPS numbers face the same write load. Note the
	// whole fleet shares this process's CPU pool: on a small
	// GOMAXPROCS the scale-out phase measures correctness under load
	// and lag, while the QPS gain only materialises with spare cores.
	stop := make(chan struct{})
	var writes int
	var lagSamples int
	var lagSum, lagMax uint64
	var bg sync.WaitGroup
	bg.Add(2)
	go func() {
		defer bg.Done()
		wrng := rand.New(rand.NewSource(cfg.Seed + 1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Append(benchVec(wrng, cfg.Dim)); err != nil {
				return
			}
			writes++
			time.Sleep(time.Millisecond)
		}
	}()
	go func() {
		defer bg.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// True instantaneous lag: the primary's committed LSN
				// minus what each replica has applied right now (the
				// Status view only compares points within one batch).
				last := db.LastLSN()
				for _, rep := range reps {
					rdb := rep.DB()
					if rdb == nil {
						continue
					}
					var lag uint64
					if applied := rdb.LastLSN(); last > applied {
						lag = last - applied
					}
					lagSum += lag
					lagSamples++
					if lag > lagMax {
						lagMax = lag
					}
				}
			}
		}
	}()
	primaryPhase := benchQueryPhase(cfg, client, endpoints[:1])
	fmt.Fprintf(w, "%-14s %12d ops %10.0f qps (%d errors)\n", "primary-only", primaryPhase.Ops, primaryPhase.QPS, primaryPhase.Errors)
	scalePhase := benchQueryPhase(cfg, client, endpoints)
	close(stop)
	bg.Wait()
	fmt.Fprintf(w, "%-14s %12d ops %10.0f qps (%d errors)\n", fmt.Sprintf("primary+%drep", cfg.Replicas), scalePhase.Ops, scalePhase.QPS, scalePhase.Errors)

	report := replicaBenchReport{
		Replicas:   cfg.Replicas,
		Clients:    cfg.Clients,
		Points:     cfg.Points,
		Dim:        cfg.Dim,
		Duration:   cfg.Duration.String(),
		GoMaxProc:  runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Primary:    primaryPhase,
		ScaleOut:   scalePhase,
		Writes:     writes,
		LagSamples: lagSamples,
		MaxLag:     lagMax,
	}
	if primaryPhase.QPS > 0 {
		report.Speedup = scalePhase.QPS / primaryPhase.QPS
	}
	if lagSamples > 0 {
		report.MeanLag = float64(lagSum) / float64(lagSamples)
	}
	fmt.Fprintf(w, "speedup %.2fx, steady-state lag mean %.1f LSNs, max %d (over %d samples, %d background writes)\n",
		report.Speedup, report.MeanLag, report.MaxLag, report.LagSamples, report.Writes)

	if cfg.OutPath != "" {
		// Like BENCH_shard.json, the report file accumulates: each
		// invocation appends to the array so runs under different
		// machine configurations sit side by side. A legacy
		// single-object file is migrated into a one-element array.
		var reports []replicaBenchReport
		if prev, err := os.ReadFile(cfg.OutPath); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single replicaBenchReport
				if json.Unmarshal(prev, &single) == nil {
					reports = append(reports, single)
				}
			}
		}
		reports = append(reports, report)
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
