package main

// The -mode paged benchmark pins the disk-paged storage tier
// (internal/pager + the btree paged-arena mode): cold-open latency of
// a page-file directory against an equivalent snapshot directory that
// must be decoded and bulk-rebuilt, steady-state query latency with a
// warm cache against the all-RAM store, and query latency when the
// working set is deliberately larger than the cache (the faulting
// regime the tier exists for). The report lands in BENCH_page.json
// and, like the other reports, accumulates an array across
// invocations.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"planar/internal/core"
	"planar/internal/service"
	"planar/internal/vecmath"
)

type pagedBenchConfig struct {
	Points     int
	Dim        int
	Seed       int64
	Queries    int
	CacheBytes int // warm-cache run (0 = service default)
	TinyBytes  int // working-set-larger-than-cache run
	OutPath    string
}

type pagedBenchEngine struct {
	Engine      string  `json:"engine"`
	ColdOpenMs  float64 `json:"coldOpenMs,omitempty"`
	QueryNsPerQ float64 `json:"queryNsPerQuery"`
}

type pagedBenchFaulting struct {
	pagedBenchEngine
	CacheBytes    int     `json:"cacheBytes"`
	HitRatio      float64 `json:"hitRatio"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	ResidentPages int     `json:"residentPages"`
	TotalPages    int64   `json:"totalPages"`
}

// pagedBenchWriteback snapshots the background-writer and incremental
// checkpoint counters after a short update burst plus checkpoint on
// the warm paged store.
type pagedBenchWriteback struct {
	DirtyFrames      int     `json:"dirtyFrames"`
	WritebackPages   uint64  `json:"writebackPages"`
	WritebackBytes   uint64  `json:"writebackBytes"`
	IncrementalPages int64   `json:"incrementalPages"`
	LastCheckpointMs float64 `json:"lastCheckpointMs"`
}

type pagedBenchReport struct {
	Points          int                 `json:"points"`
	Dim             int                 `json:"dim"`
	Seed            int64               `json:"seed"`
	Queries         int                 `json:"queries"`
	Snapshot        pagedBenchEngine    `json:"snapshot"`
	Paged           pagedBenchEngine    `json:"paged"`
	PagedTiny       pagedBenchFaulting  `json:"pagedTinyCache"`
	Writeback       pagedBenchWriteback `json:"writeback"`
	ColdOpenSpeedup float64             `json:"coldOpenSpeedup"`
	WarmQueryRatio  float64             `json:"pagedToRAMQueryRatio"`
}

// pagedBenchQueries drives the shared query workload: LE queries over
// the first index's halfspace with bounds spread across the key
// range, so selectivity (and therefore leaf pages touched) varies.
func pagedBenchQueries(db *service.DB, dim, queries int, seed int64) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, dim)
	for i := range a {
		a[i] = 0.5 + float64(i)*0.25
	}
	start := time.Now()
	for q := 0; q < queries; q++ {
		b := rng.Float64() * 100 * float64(dim)
		if _, _, err := db.Query(core.Query{A: a, B: b, Op: core.LE}); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(queries), nil
}

func runPagedBench(cfg pagedBenchConfig, w io.Writer) error {
	if cfg.Points < 1 {
		return fmt.Errorf("paged bench: -points must be >= 1 (got %d)", cfg.Points)
	}
	root, err := os.MkdirTemp("", "planarbench-paged-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	snapDir := filepath.Join(root, "snapshot")
	pageDir := filepath.Join(root, "paged")

	fmt.Fprintf(w, "paged tier bench: %d points (dim %d), %d queries, seed %d\n",
		cfg.Points, cfg.Dim, cfg.Queries, cfg.Seed)

	// Build two directories with identical contents: one snapshot-mode,
	// one paged. Two indexes so restores pay a realistic tree count.
	build := func(dir string, opts service.Options) error {
		opts.Dim = cfg.Dim
		db, err := service.Open(dir, opts)
		if err != nil {
			return err
		}
		defer db.Close()
		signs := make(vecmath.SignPattern, cfg.Dim)
		for i := range signs {
			signs[i] = 1
		}
		a := make([]float64, cfg.Dim)
		for i := range a {
			a[i] = 0.5 + float64(i)*0.25
		}
		if _, err := db.AddNormal(a, signs); err != nil {
			return err
		}
		for i := range a {
			a[i] = 2.0 - float64(i)*0.2
		}
		if _, err := db.AddNormal(a, signs); err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		v := make([]float64, cfg.Dim)
		for i := 0; i < cfg.Points; i++ {
			for j := range v {
				v[j] = rng.Float64() * 100
			}
			if _, err := db.Append(v); err != nil {
				return err
			}
		}
		return db.Checkpoint()
	}
	if err := build(snapDir, service.Options{}); err != nil {
		return err
	}
	if err := build(pageDir, service.Options{Paged: true, PageCacheBytes: cfg.CacheBytes}); err != nil {
		return err
	}

	// Cold open: the snapshot directory decodes every tree and
	// bulk-rebuilds it; the paged directory reads the store blob and
	// maps the trees lazily.
	coldOpen := func(dir string, opts service.Options) (*service.DB, float64, error) {
		start := time.Now()
		db, err := service.Open(dir, opts)
		if err != nil {
			return nil, 0, err
		}
		return db, float64(time.Since(start).Nanoseconds()) / 1e6, nil
	}
	snapDB, snapOpenMs, err := coldOpen(snapDir, service.Options{})
	if err != nil {
		return err
	}
	defer snapDB.Close()
	pagedDB, pagedOpenMs, err := coldOpen(pageDir, service.Options{PageCacheBytes: cfg.CacheBytes})
	if err != nil {
		return err
	}
	defer pagedDB.Close()

	// Warm both engines once, then measure the shared query workload.
	if _, err := pagedBenchQueries(snapDB, cfg.Dim, 20, cfg.Seed+1); err != nil {
		return err
	}
	if _, err := pagedBenchQueries(pagedDB, cfg.Dim, 20, cfg.Seed+1); err != nil {
		return err
	}
	snapQ, err := pagedBenchQueries(snapDB, cfg.Dim, cfg.Queries, cfg.Seed+2)
	if err != nil {
		return err
	}
	pagedQ, err := pagedBenchQueries(pagedDB, cfg.Dim, cfg.Queries, cfg.Seed+2)
	if err != nil {
		return err
	}
	// Exercise the background writer and an incremental checkpoint on
	// the warm paged store so the writeback counters mean something.
	wbRng := rand.New(rand.NewSource(cfg.Seed + 3))
	wv := make([]float64, cfg.Dim)
	for i := 0; i < 500 && i < cfg.Points; i++ {
		for j := range wv {
			wv[j] = wbRng.Float64() * 100
		}
		if err := pagedDB.Update(uint32(wbRng.Intn(cfg.Points)), wv); err != nil {
			return err
		}
	}
	if err := pagedDB.Checkpoint(); err != nil {
		return err
	}
	wbStats, ok := pagedDB.PageStats()
	if !ok {
		return fmt.Errorf("paged bench: PageStats unavailable on paged store")
	}
	if err := pagedDB.Close(); err != nil {
		return err
	}

	// Faulting regime: reopen with a cache pinned at the pager's floor
	// so the working set cannot fit and every sweep evicts.
	tinyDB, _, err := coldOpen(pageDir, service.Options{PageCacheBytes: cfg.TinyBytes})
	if err != nil {
		return err
	}
	defer tinyDB.Close()
	tinyQ, err := pagedBenchQueries(tinyDB, cfg.Dim, cfg.Queries, cfg.Seed+2)
	if err != nil {
		return err
	}
	st, ok := tinyDB.PageStats()
	if !ok {
		return fmt.Errorf("paged bench: PageStats unavailable on paged store")
	}

	report := pagedBenchReport{
		Points:   cfg.Points,
		Dim:      cfg.Dim,
		Seed:     cfg.Seed,
		Queries:  cfg.Queries,
		Snapshot: pagedBenchEngine{Engine: "snapshot", ColdOpenMs: snapOpenMs, QueryNsPerQ: snapQ},
		Paged:    pagedBenchEngine{Engine: "paged", ColdOpenMs: pagedOpenMs, QueryNsPerQ: pagedQ},
		PagedTiny: pagedBenchFaulting{
			pagedBenchEngine: pagedBenchEngine{Engine: "paged-tiny-cache", QueryNsPerQ: tinyQ},
			CacheBytes:       cfg.TinyBytes,
			HitRatio:         st.HitRatio(),
			Misses:           st.Misses,
			Evictions:        st.Evictions,
			ResidentPages:    st.Resident,
			TotalPages:       st.Pages,
		},
		Writeback: pagedBenchWriteback{
			DirtyFrames:      wbStats.DirtyFrames,
			WritebackPages:   wbStats.WritebackPages,
			WritebackBytes:   wbStats.WritebackBytes,
			IncrementalPages: wbStats.IncrementalPages,
			LastCheckpointMs: wbStats.LastCheckpointMs,
		},
	}
	if pagedOpenMs > 0 {
		report.ColdOpenSpeedup = snapOpenMs / pagedOpenMs
	}
	if snapQ > 0 {
		report.WarmQueryRatio = pagedQ / snapQ
	}

	fmt.Fprintf(w, "%-18s %14s %16s\n", "engine", "cold open ms", "query ns/op")
	fmt.Fprintf(w, "%-18s %14.2f %16.0f\n", "snapshot", snapOpenMs, snapQ)
	fmt.Fprintf(w, "%-18s %14.2f %16.0f\n", "paged", pagedOpenMs, pagedQ)
	fmt.Fprintf(w, "%-18s %14s %16.0f   (hit ratio %.3f, %d evictions, %d/%d pages resident)\n",
		"paged-tiny-cache", "-", tinyQ, st.HitRatio(), st.Evictions, st.Resident, st.Pages)
	fmt.Fprintf(w, "cold open %.2fx faster paged; warm paged queries %.2fx RAM latency\n",
		report.ColdOpenSpeedup, report.WarmQueryRatio)
	fmt.Fprintf(w, "writeback: %d dirty frames, %d pages (%d bytes) shadow-written early, %d-page incremental checkpoint in %.2f ms\n",
		wbStats.DirtyFrames, wbStats.WritebackPages, wbStats.WritebackBytes, wbStats.IncrementalPages, wbStats.LastCheckpointMs)

	if cfg.OutPath != "" {
		// Accumulating array, like the shard and replica reports.
		var reports []pagedBenchReport
		if prev, err := os.ReadFile(cfg.OutPath); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single pagedBenchReport
				if json.Unmarshal(prev, &single) == nil {
					reports = append(reports, single)
				}
			}
		}
		reports = append(reports, report)
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
