package main

// The -mode hotpath benchmark compares the two verification engines
// for the intermediate interval head to head: the scalar per-entry
// tree walk (one vecmath.Dot per candidate) versus the batched kernel
// path (rank queries for the interval bounds, then block gather +
// unrolled filter straight over the tree's leaf arena). For each point
// dimensionality and a sweep of II selectivities — the fraction of
// points that fall between T_min and T_max and must be verified — it
// reports ns/op and allocs/op for both engines and the speedup, and
// lands the table in BENCH_hotpath.json.
//
// II selectivity is dialed in, not assumed: the query direction is
// the index normal skewed in one coordinate, a = 1 + γ·e_d, and γ is
// bisected until Multi.Explain reports the target Verified/N. γ=0 is
// parallel to the index family (empty II); growing γ widens the
// interval monotonically.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"planar/internal/core"
)

type hotpathRun struct {
	Dim       int     `json:"dim"`
	TargetSel float64 `json:"targetIISelectivity"`
	ActualSel float64 `json:"actualIISelectivity"`
	Gamma     float64 `json:"gamma"`
	Threshold float64 `json:"threshold"`
	Accepted  int     `json:"accepted"`
	Verified  int     `json:"verified"`
	Rejected  int     `json:"rejected"`

	TreeWalkNsPerOp   float64 `json:"treewalkNsPerOp"`
	BatchedNsPerOp    float64 `json:"batchedNsPerOp"`
	Speedup           float64 `json:"speedup"`
	TreeWalkAllocsOp  float64 `json:"treewalkAllocsPerOp"`
	BatchedAllocsOp   float64 `json:"batchedAllocsPerOp"`
	TreeWalkIters     int     `json:"treewalkIters"`
	BatchedIters      int     `json:"batchedIters"`
	MatchesPerQuery   int     `json:"matchesPerQuery"`
	CalibrationProbes int     `json:"calibrationProbes"`
}

type hotpathReport struct {
	Points     int          `json:"points"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Seed       int64        `json:"seed"`
	Runs       []hotpathRun `json:"runs"`
}

type hotpathConfig struct {
	Points  int
	Seed    int64
	Window  time.Duration // measurement window per engine per cell
	OutPath string
}

var (
	hotpathDims = []int{2, 3, 4, 8}
	hotpathSels = []float64{0.05, 0.20, 0.50}
)

// newHotpathMulti builds a Multi over n uniform [0,1)^d points with a
// single index whose normal is the all-ones vector. Both engines run
// over identical stores built from the same seed.
func newHotpathMulti(dim int, cfg hotpathConfig, batched bool) (*core.Multi, error) {
	store, err := core.NewPointStore(dim)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMulti(store, core.WithBatchedVerify(batched))
	if err != nil {
		return nil, err
	}
	ones := make([]float64, dim)
	signs := make([]int8, dim)
	for j := range ones {
		ones[j] = 1
		signs[j] = 1
	}
	if _, err := m.AddNormal(ones, signs); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(dim)))
	v := make([]float64, dim)
	for i := 0; i < cfg.Points; i++ {
		for j := range v {
			v[j] = rng.Float64()
		}
		if _, err := m.Append(v); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// hotpathQuery is the skewed direction a = 1 + γ·e_d. The threshold
// is fixed per dim (the 65th percentile of the key distribution, see
// calibrateGamma) so the reachable II selectivities cover the sweep.
func hotpathQuery(dim int, gamma, b float64) core.Query {
	a := make([]float64, dim)
	for j := range a {
		a[j] = 1
	}
	a[dim-1] = 1 + gamma
	return core.Query{A: a, B: b, Op: core.LE}
}

// calibrateGamma bisects γ until Explain reports Verified/N within
// tol of the target. The threshold b is the 65% quantile of the
// index keys, which caps the reachable II fraction at ~0.65 — above
// every target in the sweep. Returns γ, the achieved selectivity,
// the exact plan, and the number of Explain probes spent.
func calibrateGamma(m *core.Multi, dim int, b, target float64) (float64, float64, core.Plan, int, error) {
	probes := 0
	sel := func(gamma float64) (float64, core.Plan, error) {
		probes++
		p, err := m.Explain(hotpathQuery(dim, gamma, b))
		if err != nil {
			return 0, core.Plan{}, err
		}
		return float64(p.Verified) / float64(p.N), p, nil
	}
	lo, hi := 0.0, 1.0
	for {
		s, _, err := sel(hi)
		if err != nil {
			return 0, 0, core.Plan{}, probes, err
		}
		if s >= target || hi > 1e9 {
			break
		}
		lo, hi = hi, hi*2
	}
	var (
		plan    core.Plan
		current float64
		gamma   float64
	)
	for i := 0; i < 60; i++ {
		gamma = (lo + hi) / 2
		s, p, err := sel(gamma)
		if err != nil {
			return 0, 0, core.Plan{}, probes, err
		}
		current, plan = s, p
		if s < target {
			lo = gamma
		} else {
			hi = gamma
		}
		if s >= target*0.98 && s <= target*1.02 {
			break
		}
	}
	return gamma, current, plan, probes, nil
}

// keyQuantile returns the q-quantile of the all-ones key c·x over the
// store's live points (the coordinate sum for this workload).
func keyQuantile(m *core.Multi, quant float64) float64 {
	keys := make([]float64, 0, m.Store().Len())
	m.Store().Each(func(_ uint32, v []float64) bool {
		s := 0.0
		for _, x := range v {
			s += x
		}
		keys = append(keys, s)
		return true
	})
	sort.Float64s(keys)
	i := int(quant * float64(len(keys)))
	if i >= len(keys) {
		i = len(keys) - 1
	}
	return keys[i]
}

// timeQuery measures steady-state ns/op for q through m: warm the
// plan cache, mirror and pools, then run adaptive batches until the
// measurement window fills. Returns ns/op, matches per query, and
// iterations timed.
func timeQuery(m *core.Multi, q core.Query, window time.Duration) (float64, int, int) {
	matches := 0
	visit := func(uint32) bool { matches++; return true }
	run := func() {
		matches = 0
		if _, err := m.Inequality(q, visit); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 3; i++ {
		run()
	}
	iters, batch := 0, 8
	var elapsed time.Duration
	for elapsed < window {
		start := time.Now()
		for i := 0; i < batch; i++ {
			run()
		}
		elapsed += time.Since(start)
		iters += batch
		if batch < 1<<16 {
			batch *= 2
		}
	}
	return float64(elapsed.Nanoseconds()) / float64(iters), matches, iters
}

// allocsPerQuery measures steady-state heap allocations per query
// with GC paused, so a collection cannot empty the scratch pools
// mid-measurement.
func allocsPerQuery(m *core.Multi, q core.Query) float64 {
	visit := func(uint32) bool { return true }
	run := func() {
		if _, err := m.Inequality(q, visit); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 5; i++ {
		run()
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	return testing.AllocsPerRun(100, run)
}

func runHotpathBench(cfg hotpathConfig, w io.Writer) error {
	report := hotpathReport{
		Points:     cfg.Points,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}
	fmt.Fprintf(w, "hotpath bench: %d points per dim, dims %v, II selectivity targets %v\n",
		cfg.Points, hotpathDims, hotpathSels)
	fmt.Fprintf(w, "%4s %7s %7s %12s %12s %8s %10s %10s\n",
		"dim", "target", "actual", "treewalk/op", "batched/op", "speedup", "allocsTW", "allocsB")
	for _, dim := range hotpathDims {
		batched, err := newHotpathMulti(dim, cfg, true)
		if err != nil {
			return err
		}
		walker, err := newHotpathMulti(dim, cfg, false)
		if err != nil {
			return err
		}
		b := keyQuantile(batched, 0.65)
		for _, target := range hotpathSels {
			gamma, actual, plan, probes, err := calibrateGamma(batched, dim, b, target)
			if err != nil {
				return err
			}
			q := hotpathQuery(dim, gamma, b)
			twNs, _, twIters := timeQuery(walker, q, cfg.Window)
			bNs, matches, bIters := timeQuery(batched, q, cfg.Window)
			run := hotpathRun{
				Dim:               dim,
				TargetSel:         target,
				ActualSel:         actual,
				Gamma:             gamma,
				Threshold:         b,
				Accepted:          plan.Accepted,
				Verified:          plan.Verified,
				Rejected:          plan.Rejected,
				TreeWalkNsPerOp:   twNs,
				BatchedNsPerOp:    bNs,
				Speedup:           twNs / bNs,
				TreeWalkAllocsOp:  allocsPerQuery(walker, q),
				BatchedAllocsOp:   allocsPerQuery(batched, q),
				TreeWalkIters:     twIters,
				BatchedIters:      bIters,
				MatchesPerQuery:   matches,
				CalibrationProbes: probes,
			}
			report.Runs = append(report.Runs, run)
			fmt.Fprintf(w, "%4d %6.0f%% %6.1f%% %10.0fns %10.0fns %7.2fx %10.1f %10.1f\n",
				dim, target*100, actual*100, twNs, bNs, run.Speedup,
				run.TreeWalkAllocsOp, run.BatchedAllocsOp)
		}
	}
	if cfg.OutPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
