package main

// The -mode build benchmark pins the index-structure tentpole: the
// arena-backed SoA B+ tree (internal/btree) measured head to head
// against the pointer-node reference tree it replaced
// (internal/btree/reftree). Three numbers matter — bulk-load time
// (snapshot restore and rebuild latency), steady-state insert/delete
// churn (the mutation path), and resident bytes per entry (arena
// footprint from Stats plus the live-heap delta, which for the
// pointer tree includes all the per-node allocations Stats cannot
// see). The report lands in BENCH_build.json; like the other reports
// it accumulates an array across invocations.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"planar/internal/btree"
	"planar/internal/btree/reftree"
)

type buildBenchConfig struct {
	Points  int
	Seed    int64
	OutPath string
}

// buildBenchEngine is one engine's column of the report.
type buildBenchEngine struct {
	Engine        string  `json:"engine"`
	BuildMs       float64 `json:"buildMs"`
	BuildNsPerKey float64 `json:"buildNsPerEntry"`
	ChurnOps      int     `json:"churnOps"`
	ChurnNsPerOp  float64 `json:"churnNsPerOp"`
	StatsBytes    int     `json:"statsBytes"`
	BytesPerEntry float64 `json:"bytesPerEntry"`
	HeapBytes     uint64  `json:"heapBytes"`
	HeapPerEntry  float64 `json:"heapBytesPerEntry"`
	GCMs          float64 `json:"gcMs"`
	Height        int     `json:"height"`
	Leaves        int     `json:"leaves"`
}

type buildBenchReport struct {
	Points       int              `json:"points"`
	Seed         int64            `json:"seed"`
	GoMaxProcs   int              `json:"gomaxprocs"`
	NumCPU       int              `json:"numcpu,omitempty"`
	Arena        buildBenchEngine `json:"arena"`
	Reftree      buildBenchEngine `json:"reftree"`
	BuildSpeedup float64          `json:"buildSpeedup"`
	ChurnSpeedup float64          `json:"churnSpeedup"`
	GCSpeedup    float64          `json:"gcSpeedup"`
	BytesRatio   float64          `json:"arenaToReftreeBytes"`
}

// mutableTree is the churn surface both engines share.
type mutableTree interface {
	Insert(key float64, id uint32) bool
	Delete(key float64, id uint32) bool
	Len() int
}

// liveHeap forces a collection and returns the live heap, so the
// difference across a tree build counts only surviving allocations.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// benchGC times a forced collection with the tree resident (best of
// three). The arena holds no GC-traced pointers, so this is where the
// structural difference to a node-per-allocation tree shows up: the
// collector must trace every pointer-tree node on every cycle.
func benchGC() float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		runtime.GC()
		if ms := time.Since(start).Seconds() * 1e3; i == 0 || ms < best {
			best = ms
		}
	}
	return best
}

// benchChurn runs delete+insert pairs against a warm tree: a random
// resident entry is evicted and a fresh key takes its place, so the
// tree stays at its steady-state size while splits, merges and
// borrows all fire. ents is mutated to track residency.
func benchChurn(t mutableTree, ents []btree.Entry, rng *rand.Rand, pairs int) (int, float64) {
	nextID := uint32(len(ents))
	start := time.Now()
	for i := 0; i < pairs; i++ {
		j := rng.Intn(len(ents))
		if !t.Delete(ents[j].Key, ents[j].ID) {
			panic("build bench: resident entry missing")
		}
		e := btree.Entry{Key: rng.Float64() * 1e6, ID: nextID}
		nextID++
		if !t.Insert(e.Key, e.ID) {
			panic("build bench: churn insert collided")
		}
		ents[j] = e
	}
	ops := 2 * pairs
	return ops, float64(time.Since(start).Nanoseconds()) / float64(ops)
}

func runBuildBench(cfg buildBenchConfig, w io.Writer) error {
	if cfg.Points < 1 {
		return fmt.Errorf("build bench: -points must be >= 1 (got %d)", cfg.Points)
	}
	n := cfg.Points
	rng := rand.New(rand.NewSource(cfg.Seed))
	base := make([]btree.Entry, n)
	for i := range base {
		base[i] = btree.Entry{Key: rng.Float64() * 1e6, ID: uint32(i)}
	}
	// Churn pairs: enough to cycle a good fraction of the tree without
	// making the smoke run crawl on one core.
	pairs := n / 2
	if pairs > 100000 {
		pairs = 100000
	}
	if pairs < 1 {
		pairs = 1
	}

	fmt.Fprintf(w, "index build bench: %d entries, %d churn pairs, seed %d\n", n, pairs, cfg.Seed)
	fmt.Fprintf(w, "%-8s %10s %12s %12s %12s %12s %8s %7s\n",
		"engine", "build ms", "ns/entry", "churn ns/op", "bytes/entry", "heap B/entry", "gc ms", "height")

	measure := func(name string, load func([]btree.Entry) (mutableTree, int, int, int)) buildBenchEngine {
		ents := make([]btree.Entry, len(base))
		copy(ents, base)
		before := liveHeap()
		start := time.Now()
		t, bytes, height, leaves := load(ents)
		buildNs := time.Since(start).Nanoseconds()
		heap := liveHeap()
		var heapDelta uint64
		if heap > before {
			heapDelta = heap - before
		}
		eng := buildBenchEngine{
			Engine:        name,
			BuildMs:       float64(buildNs) / 1e6,
			BuildNsPerKey: float64(buildNs) / float64(n),
			StatsBytes:    bytes,
			BytesPerEntry: float64(bytes) / float64(n),
			HeapBytes:     heapDelta,
			HeapPerEntry:  float64(heapDelta) / float64(n),
			Height:        height,
			Leaves:        leaves,
		}
		crng := rand.New(rand.NewSource(cfg.Seed + 1))
		eng.ChurnOps, eng.ChurnNsPerOp = benchChurn(t, ents, crng, pairs)
		if t.Len() != n {
			panic("build bench: churn changed tree size")
		}
		eng.GCMs = benchGC()
		runtime.KeepAlive(t)
		fmt.Fprintf(w, "%-8s %10.1f %12.1f %12.1f %12.1f %12.1f %8.2f %7d\n",
			name, eng.BuildMs, eng.BuildNsPerKey, eng.ChurnNsPerOp, eng.BytesPerEntry, eng.HeapPerEntry, eng.GCMs, eng.Height)
		return eng
	}

	arena := measure("arena", func(ents []btree.Entry) (mutableTree, int, int, int) {
		t := btree.BulkLoad(ents)
		s := t.Stats()
		return t, s.Bytes, s.Height, s.Leaves
	})
	ref := measure("reftree", func(ents []btree.Entry) (mutableTree, int, int, int) {
		res := make([]reftree.Entry, len(ents))
		for i, e := range ents {
			res[i] = reftree.Entry{Key: e.Key, ID: e.ID}
		}
		t := reftree.BulkLoad(res)
		s := t.Stats()
		return t, s.Bytes, s.Height, s.Leaves
	})

	report := buildBenchReport{
		Points:     n,
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Arena:      arena,
		Reftree:    ref,
	}
	if arena.BuildMs > 0 {
		report.BuildSpeedup = ref.BuildMs / arena.BuildMs
	}
	if arena.ChurnNsPerOp > 0 {
		report.ChurnSpeedup = ref.ChurnNsPerOp / arena.ChurnNsPerOp
	}
	if arena.GCMs > 0 {
		report.GCSpeedup = ref.GCMs / arena.GCMs
	}
	if ref.StatsBytes > 0 {
		report.BytesRatio = float64(arena.StatsBytes) / float64(ref.StatsBytes)
	}
	fmt.Fprintf(w, "build %.2fx, churn %.2fx, gc %.2fx, arena footprint %.2fx of pointer tree\n",
		report.BuildSpeedup, report.ChurnSpeedup, report.GCSpeedup, report.BytesRatio)

	if cfg.OutPath != "" {
		// Accumulating array, like the shard and replica reports.
		var reports []buildBenchReport
		if prev, err := os.ReadFile(cfg.OutPath); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single buildBenchReport
				if json.Unmarshal(prev, &single) == nil {
					reports = append(reports, single)
				}
			}
		}
		reports = append(reports, report)
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
