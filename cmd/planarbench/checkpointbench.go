// Checkpoint-latency benchmark for the paged tier (-mode checkpoint).
//
// A write-heavy churn workload (skewed updates plus appends) runs
// against two otherwise-identical paged stores: one checkpointing the
// old way (no background writer, every data page rewritten under the
// store lock) and one with the background page writer plus
// incremental checkpoints. Each round mutates, then checkpoints; we
// record the wall time of the checkpoint call, the lock-held window
// the store reports, the pages each checkpoint wrote, and the
// dirty-frame / resident-set high-water marks sampled during churn.
// The report lands in BENCH_checkpoint.json as an accumulating array.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"time"

	"planar/internal/service"
	"planar/internal/vecmath"
)

type checkpointBenchConfig struct {
	Points   int           // initial dataset cardinality
	Dim      int           // point dimensionality
	Rounds   int           // churn+checkpoint cycles per engine
	Muts     int           // mutations per round
	Seed     int64         // workload RNG seed
	Interval time.Duration // background writer cadence (incremental side)
	OutPath  string        // JSON report path ("" = stdout only)
}

type checkpointBenchSide struct {
	Mode               string  `json:"mode"`
	WallMsP50          float64 `json:"checkpointMsP50"`
	WallMsP90          float64 `json:"checkpointMsP90"`
	WallMsMax          float64 `json:"checkpointMsMax"`
	LockMsP50          float64 `json:"lockMsP50"`
	LockMsP90          float64 `json:"lockMsP90"`
	LockMsMax          float64 `json:"lockMsMax"`
	PagesPerCheckpoint float64 `json:"pagesPerCheckpoint"`
	DirtyHighWater     int     `json:"dirtyFrameHighWater"`
	ResidentHighWater  int     `json:"residentHighWater"`
	WritebackPages     uint64  `json:"writebackPages"`
	MutsPerSec         float64 `json:"mutationsPerSec"`
}

type checkpointBenchReport struct {
	Points         int                 `json:"points"`
	Dim            int                 `json:"dim"`
	Rounds         int                 `json:"rounds"`
	Muts           int                 `json:"mutationsPerRound"`
	Seed           int64               `json:"seed"`
	Full           checkpointBenchSide `json:"fullFlush"`
	Incremental    checkpointBenchSide `json:"incremental"`
	WallSpeedupP50 float64             `json:"checkpointSpeedupP50"`
	LockSpeedupP50 float64             `json:"lockWindowSpeedupP50"`
}

// checkpointPercentile returns the pth percentile of a sorted sample.
func checkpointPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p/100*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runCheckpointSide builds a paged store, churns it for cfg.Rounds
// cycles and returns the measured side. The churn has the locality
// real write-heavy workloads have: 70% appends clustered around a
// per-round ingest front (time-correlated arrivals land in one key
// region), 30% small perturbations of a hot cluster of points
// (moving objects drift, they do not teleport). Uniform-random churn
// would dirty every leaf of every tree each round and measure only
// the store-blob rewrite; locality is the regime incremental
// checkpoints are built for.
func runCheckpointSide(cfg checkpointBenchConfig, mode string, opts service.Options) (checkpointBenchSide, error) {
	side := checkpointBenchSide{Mode: mode}
	dir, err := os.MkdirTemp("", "planarbench-checkpoint-*")
	if err != nil {
		return side, err
	}
	defer os.RemoveAll(dir)

	opts.Dim = cfg.Dim
	db, err := service.Open(dir, opts)
	if err != nil {
		return side, err
	}
	closed := false
	defer func() {
		if !closed {
			db.Close()
		}
	}()

	signs := make(vecmath.SignPattern, cfg.Dim)
	for i := range signs {
		signs[i] = 1
	}
	a := make([]float64, cfg.Dim)
	for i := range a {
		a[i] = 0.5 + float64(i)*0.25
	}
	if _, err := db.AddNormal(a, signs); err != nil {
		return side, err
	}
	for i := range a {
		a[i] = 2.0 - float64(i)*0.2
	}
	if _, err := db.AddNormal(a, signs); err != nil {
		return side, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	v := make([]float64, cfg.Dim)
	for i := 0; i < cfg.Points; i++ {
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		if _, err := db.Append(v); err != nil {
			return side, err
		}
	}
	// Hot cluster: a contiguous id range whose vectors share a small
	// key region, appended last so its store rows are dense too.
	hot := cfg.Points / 50
	if hot < 64 {
		hot = 64
	}
	hotIDs := make([]uint32, 0, hot)
	hotVecs := make([][]float64, 0, hot)
	for i := 0; i < hot; i++ {
		hv := make([]float64, cfg.Dim)
		for j := range hv {
			hv[j] = 48 + rng.Float64()*4
		}
		id, err := db.Append(hv)
		if err != nil {
			return side, err
		}
		hotIDs = append(hotIDs, id)
		hotVecs = append(hotVecs, hv)
	}
	// Baseline checkpoint, then reopen: freshly built trees live in
	// RAM and only fault through the page cache after a cold open, so
	// the measured rounds must run against the reopened store.
	if err := db.Checkpoint(); err != nil {
		return side, err
	}
	if err := db.Close(); err != nil {
		return side, err
	}
	db, err = service.Open(dir, opts)
	if err != nil {
		return side, err
	}

	var (
		wallMs    []float64
		lockMs    []float64
		pagesSum  int64
		mutTotal  int
		mutStart  = time.Now()
		mutSpent  time.Duration
		sampleDHW = func() {
			if st, ok := db.PageStats(); ok {
				if st.DirtyFrames > side.DirtyHighWater {
					side.DirtyHighWater = st.DirtyFrames
				}
				if st.Resident > side.ResidentHighWater {
					side.ResidentHighWater = st.Resident
				}
			}
		}
	)
	front := make([]float64, cfg.Dim)
	for round := 0; round < cfg.Rounds; round++ {
		// The ingest front moves each round; arrivals cluster near it.
		for j := range front {
			front[j] = rng.Float64() * 96
		}
		mutStart = time.Now()
		for m := 0; m < cfg.Muts; m++ {
			if rng.Float64() < 0.7 {
				for j := range v {
					v[j] = front[j] + rng.Float64()*4
				}
				if _, err := db.Append(v); err != nil {
					return side, err
				}
			} else {
				k := rng.Intn(len(hotIDs))
				hv := hotVecs[k]
				for j := range hv {
					hv[j] += (rng.Float64() - 0.5) * 0.5
				}
				if err := db.Update(hotIDs[k], hv); err != nil {
					return side, err
				}
			}
			mutTotal++
			if m%128 == 127 {
				sampleDHW()
			}
		}
		mutSpent += time.Since(mutStart)
		sampleDHW()

		start := time.Now()
		if err := db.Checkpoint(); err != nil {
			return side, err
		}
		wallMs = append(wallMs, float64(time.Since(start).Nanoseconds())/1e6)
		st, ok := db.PageStats()
		if !ok {
			return side, fmt.Errorf("checkpoint bench: PageStats unavailable on paged store")
		}
		lockMs = append(lockMs, st.LastCheckpointMs)
		pagesSum += st.IncrementalPages
	}

	if st, ok := db.PageStats(); ok {
		side.WritebackPages = st.WritebackPages
	}
	sort.Float64s(wallMs)
	sort.Float64s(lockMs)
	side.WallMsP50 = checkpointPercentile(wallMs, 50)
	side.WallMsP90 = checkpointPercentile(wallMs, 90)
	side.WallMsMax = wallMs[len(wallMs)-1]
	side.LockMsP50 = checkpointPercentile(lockMs, 50)
	side.LockMsP90 = checkpointPercentile(lockMs, 90)
	side.LockMsMax = lockMs[len(lockMs)-1]
	side.PagesPerCheckpoint = float64(pagesSum) / float64(cfg.Rounds)
	if secs := mutSpent.Seconds(); secs > 0 {
		side.MutsPerSec = float64(mutTotal) / secs
	}
	closed = true
	return side, db.Close()
}

func runCheckpointBench(cfg checkpointBenchConfig, w io.Writer) error {
	if cfg.Points < 1 {
		return fmt.Errorf("checkpoint bench: -points must be >= 1 (got %d)", cfg.Points)
	}
	if cfg.Rounds < 1 {
		return fmt.Errorf("checkpoint bench: -rounds must be >= 1 (got %d)", cfg.Rounds)
	}
	fmt.Fprintf(w, "checkpoint bench: %d points (dim %d), %d rounds x %d mutations, seed %d\n",
		cfg.Points, cfg.Dim, cfg.Rounds, cfg.Muts, cfg.Seed)

	full, err := runCheckpointSide(cfg, "full-flush", service.Options{
		Paged:            true,
		DisableWriteback: true,
		FullCheckpoints:  true,
	})
	if err != nil {
		return err
	}
	incr, err := runCheckpointSide(cfg, "incremental", service.Options{
		Paged:             true,
		WritebackInterval: cfg.Interval,
	})
	if err != nil {
		return err
	}

	report := checkpointBenchReport{
		Points:      cfg.Points,
		Dim:         cfg.Dim,
		Rounds:      cfg.Rounds,
		Muts:        cfg.Muts,
		Seed:        cfg.Seed,
		Full:        full,
		Incremental: incr,
	}
	if incr.WallMsP50 > 0 {
		report.WallSpeedupP50 = full.WallMsP50 / incr.WallMsP50
	}
	if incr.LockMsP50 > 0 {
		report.LockSpeedupP50 = full.LockMsP50 / incr.LockMsP50
	}

	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %11s %10s %10s\n",
		"mode", "cp p50 ms", "cp p90 ms", "cp max ms", "lock p50", "pages/ckpt", "dirty hw", "wb pages")
	for _, s := range []checkpointBenchSide{full, incr} {
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %10.2f %10.2f %11.0f %10d %10d\n",
			s.Mode, s.WallMsP50, s.WallMsP90, s.WallMsMax, s.LockMsP50, s.PagesPerCheckpoint, s.DirtyHighWater, s.WritebackPages)
	}
	fmt.Fprintf(w, "checkpoint p50 %.2fx faster incremental; lock window %.2fx smaller\n",
		report.WallSpeedupP50, report.LockSpeedupP50)

	if cfg.OutPath != "" {
		// Accumulating array, like the paged and shard reports.
		var reports []checkpointBenchReport
		if prev, err := os.ReadFile(cfg.OutPath); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single checkpointBenchReport
				if json.Unmarshal(prev, &single) == nil {
					reports = append(reports, single)
				}
			}
		}
		reports = append(reports, report)
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
