package main

// The -mode ingest benchmark measures what group commit buys on the
// write path: N writer goroutines append into a durable on-disk store,
// once against the synchronous per-request-fsync path and once against
// the ingest pipeline (batched WAL frames, one fsync per batch).
// Writers on the grouped run keep a small window of submissions in
// flight — the whole point of an async front-end — while every ack is
// still measured from submission to durability. The report
// (BENCH_ingest.json) carries sustained QPS, ack p50/p99, and the
// pipeline's batch accounting so the fsync amortisation is visible.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"planar/internal/ingest"
	"planar/internal/service"
)

type ingestBenchRun struct {
	Mode         string  `json:"mode"` // "sync" or "grouped"
	Writers      int     `json:"writers"`
	Ops          int     `json:"ops"`
	Seconds      float64 `json:"seconds"`
	QPS          float64 `json:"qps"`
	AckP50Micros int64   `json:"ackP50Micros"`
	AckP99Micros int64   `json:"ackP99Micros"`
	Batches      uint64  `json:"batches,omitempty"`
	AvgBatch     float64 `json:"avgBatch,omitempty"`
	FsyncsSaved  uint64  `json:"fsyncsSaved,omitempty"`
	Shed         uint64  `json:"shed,omitempty"`
}

type ingestBenchReport struct {
	Dim                 int              `json:"dim"`
	Writers             int              `json:"writers"`
	Window              int              `json:"window"`
	BatchSize           int              `json:"batchSize"`
	FlushIntervalMicros int64            `json:"flushIntervalMicros"`
	Duration            string           `json:"duration"`
	GoMaxProc           int              `json:"gomaxprocs"`
	NumCPU              int              `json:"numcpu,omitempty"`
	Runs                []ingestBenchRun `json:"runs"`
	Speedup             float64          `json:"speedup"` // grouped QPS / sync QPS
}

type ingestBenchConfig struct {
	Writers  int
	Window   int // in-flight submissions per writer on the grouped run
	Dim      int
	Batch    int
	Flush    time.Duration
	Duration time.Duration
	Seed     int64
	OutPath  string
}

// ackHist is a power-of-two microsecond latency histogram, the same
// bucketing the pipeline uses, so bench-side and stats-side
// percentiles are directly comparable.
type ackHist [32]uint64

func (h *ackHist) observe(d time.Duration) {
	i := bits.Len64(uint64(d / time.Microsecond))
	if i >= len(h) {
		i = len(h) - 1
	}
	h[i]++
}

func (h *ackHist) merge(o *ackHist) {
	for i, c := range o {
		h[i] += c
	}
}

// percentileMicros returns the upper bound of the bucket holding the
// p-th percentile, in microseconds.
func (h *ackHist) percentileMicros(p int) int64 {
	var total uint64
	for _, c := range h {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := (total*uint64(p) + 99) / 100
	var cum uint64
	for i, c := range h {
		cum += c
		if cum >= rank {
			return int64(1) << i
		}
	}
	return int64(1) << (len(h) - 1)
}

// ingestOneRun drives cfg.Writers goroutines against a fresh durable
// store until the deadline. grouped selects the pipeline path.
func ingestOneRun(grouped bool, cfg ingestBenchConfig) (ingestBenchRun, error) {
	dir, err := os.MkdirTemp("", "planar-ingestbench-")
	if err != nil {
		return ingestBenchRun{}, err
	}
	defer os.RemoveAll(dir)

	opts := service.Options{Dim: cfg.Dim, SyncEveryWrite: true}
	if grouped {
		opts.IngestBatch = cfg.Batch
		opts.IngestFlushInterval = cfg.Flush
		opts.IngestBlock = true
	}
	db, err := service.Open(dir, opts)
	if err != nil {
		return ingestBenchRun{}, err
	}

	hists := make([]ackHist, cfg.Writers)
	ops := make([]int, cfg.Writers)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for c := 0; c < cfg.Writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(c) + 1))
			if !grouped {
				for time.Now().Before(deadline) {
					t0 := time.Now()
					if _, err := db.Append(benchVec(rng, cfg.Dim)); err != nil {
						return
					}
					hists[c].observe(time.Since(t0))
					ops[c]++
				}
				return
			}
			// Grouped path: keep up to cfg.Window appends in flight so
			// the committer sees real batches; ack latency still runs
			// submission → durable resolution for every op.
			futs := make([]*ingest.Future, 0, cfg.Window)
			starts := make([]time.Time, 0, cfg.Window)
			reap := func() bool {
				res := futs[0].Wait()
				hists[c].observe(time.Since(starts[0]))
				futs = futs[1:]
				starts = starts[1:]
				if res.Err != nil {
					return false
				}
				ops[c]++
				return true
			}
			for time.Now().Before(deadline) {
				t0 := time.Now()
				f, err := db.AppendAsync(benchVec(rng, cfg.Dim))
				if err != nil {
					break
				}
				futs = append(futs, f)
				starts = append(starts, t0)
				if len(futs) == cfg.Window && !reap() {
					break
				}
			}
			for len(futs) > 0 {
				reap()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	run := ingestBenchRun{Mode: "sync", Writers: cfg.Writers, Seconds: elapsed.Seconds()}
	if grouped {
		run.Mode = "grouped"
	}
	var all ackHist
	for c := range hists {
		run.Ops += ops[c]
		all.merge(&hists[c])
	}
	run.QPS = float64(run.Ops) / elapsed.Seconds()
	run.AckP50Micros = all.percentileMicros(50)
	run.AckP99Micros = all.percentileMicros(99)
	if st, ok := db.IngestStats(); ok {
		run.Batches = st.Batches
		run.FsyncsSaved = st.FsyncsSaved
		run.Shed = st.Shed
		if st.Batches > 0 {
			run.AvgBatch = float64(st.Records) / float64(st.Batches)
		}
	}
	return run, db.Close()
}

func runIngestBench(cfg ingestBenchConfig, w io.Writer) error {
	if cfg.Writers < 1 {
		return fmt.Errorf("ingest bench: -writers must be >= 1 (got %d)", cfg.Writers)
	}
	report := ingestBenchReport{
		Dim:                 cfg.Dim,
		Writers:             cfg.Writers,
		Window:              cfg.Window,
		BatchSize:           cfg.Batch,
		FlushIntervalMicros: cfg.Flush.Microseconds(),
		Duration:            cfg.Duration.String(),
		GoMaxProc:           runtime.GOMAXPROCS(0),
		NumCPU:              runtime.NumCPU(),
	}
	fmt.Fprintf(w, "ingest bench: %d writers (dim %d), grouped batch %d / flush %s / window %d, %s per run\n",
		cfg.Writers, cfg.Dim, cfg.Batch, cfg.Flush, cfg.Window, cfg.Duration)
	fmt.Fprintf(w, "%8s %10s %12s %10s %10s %10s %10s\n",
		"mode", "ops", "qps", "p50(µs)", "p99(µs)", "avgBatch", "noFsync")
	for _, grouped := range []bool{false, true} {
		run, err := ingestOneRun(grouped, cfg)
		if err != nil {
			return err
		}
		report.Runs = append(report.Runs, run)
		fmt.Fprintf(w, "%8s %10d %12.0f %10d %10d %10.1f %10d\n",
			run.Mode, run.Ops, run.QPS, run.AckP50Micros, run.AckP99Micros, run.AvgBatch, run.FsyncsSaved)
	}
	if report.Runs[0].QPS > 0 {
		report.Speedup = report.Runs[1].QPS / report.Runs[0].QPS
	}
	fmt.Fprintf(w, "grouped/sync speedup: %.2fx\n", report.Speedup)
	if cfg.OutPath != "" {
		// Append-array convention shared with the other reports: each
		// invocation appends so runs under different configurations sit
		// side by side; a legacy single object migrates to a one-element
		// array.
		var reports []ingestBenchReport
		if prev, err := os.ReadFile(cfg.OutPath); err == nil {
			if json.Unmarshal(prev, &reports) != nil {
				var single ingestBenchReport
				if json.Unmarshal(prev, &single) == nil {
					reports = append(reports, single)
				}
			}
		}
		reports = append(reports, report)
		blob, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.OutPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "report written to %s\n", cfg.OutPath)
	}
	return nil
}
