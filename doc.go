// Package planar is a Go reproduction of "Towards Indexing
// Functions: Answering Scalar Product Queries" (Khan, Yanki,
// Dimcheva, Kossmann — SIGMOD 2014).
//
// The implementation lives under internal/: the planar index itself
// in internal/core, its substrates (B+ tree, vector math, top-k
// buffer) and the paper's applications (complex SQL functions,
// moving-object intersection, active learning) in sibling packages.
// Executables are under cmd/, runnable examples under examples/, and
// the benchmark suite reproducing every table and figure of the
// paper's evaluation is in bench_test.go next to this file.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured
// results.
package planar

// Version identifies this reproduction's release.
const Version = "1.0.0"
