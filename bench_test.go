// Benchmark suite reproducing every table and figure of the paper's
// evaluation (Section 7), plus the ablations called out in DESIGN.md.
// Each benchmark measures the operation the corresponding figure
// plots, at a laptop-scale workload; cmd/planarbench regenerates the
// full tables (including at paper scale with -paper).
package planar

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"planar/internal/adaptive"
	"planar/internal/btree"
	"planar/internal/constraint"
	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/exec"
	"planar/internal/mbrtree"
	"planar/internal/moving"
	"planar/internal/queries"
	"planar/internal/reduce"
	"planar/internal/scan"
	"planar/internal/sqlfunc"
	"planar/internal/vecmath"
)

const (
	benchPoints = 50000
	benchReal   = 20000
	benchMoving = 300
)

// synthFixture lazily builds and caches synthetic stores with index
// sets, keyed by configuration, so repeated benchmarks share setup.
type synthKey struct {
	kind   dataset.Kind
	dim    int
	rq     int
	budget int
}

type synthFix struct {
	store *core.PointStore
	multi *core.Multi
	gen   queries.Eq18
}

var (
	synthMu    sync.Mutex
	synthCache = map[synthKey]*synthFix{}
)

func getSynth(b *testing.B, kind dataset.Kind, dim, rq, budget int) *synthFix {
	b.Helper()
	synthMu.Lock()
	defer synthMu.Unlock()
	key := synthKey{kind, dim, rq, budget}
	if f, ok := synthCache[key]; ok {
		return f
	}
	d := dataset.Synthetic(kind, benchPoints, dim, 1)
	store, err := d.Store()
	if err != nil {
		b.Fatal(err)
	}
	g, err := queries.NewEq18(d.AxisMaxes(), rq)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMulti(store)
	if err != nil {
		b.Fatal(err)
	}
	if budget > 0 {
		if _, err := g.BuildIndexes(m, budget, rand.New(rand.NewSource(7))); err != nil {
			b.Fatal(err)
		}
	}
	f := &synthFix{store: store, multi: m, gen: g}
	synthCache[key] = f
	return f
}

func queryList(g queries.Eq18, n int, seed int64) []core.Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.Query, n)
	for i := range out {
		out[i] = g.Query(rng)
	}
	return out
}

// benchIndexed runs one indexed inequality query per iteration and
// reports the average pruning fraction as a metric.
func benchIndexed(b *testing.B, m *core.Multi, qs []core.Query) {
	b.Helper()
	var pruned float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := m.Inequality(qs[i%len(qs)], func(uint32) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
		pruned += st.PruningFraction()
	}
	b.ReportMetric(100*pruned/float64(b.N), "pruned%")
}

func benchScan(b *testing.B, store *core.PointStore, qs []core.Query) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan.Count(store, qs[i%len(qs)])
	}
}

// ---------------------------------------------------------------
// Figure 6(a): Consumption SQL function.

var consumptionOnce struct {
	sync.Once
	cc  *sqlfunc.CriticalConsume
	err error
}

func getConsumption(b *testing.B) *sqlfunc.CriticalConsume {
	b.Helper()
	consumptionOnce.Do(func() {
		d := dataset.Consumption(benchReal, 1)
		tbl, err := sqlfunc.FromData(d, dataset.ConsumptionColumns)
		if err != nil {
			consumptionOnce.err = err
			return
		}
		consumptionOnce.cc, consumptionOnce.err = sqlfunc.NewCriticalConsume(
			tbl, "active_power", "voltage", "current",
			core.Domain{Lo: 0.1, Hi: 1.0}, 100, rand.New(rand.NewSource(2)))
	})
	if consumptionOnce.err != nil {
		b.Fatal(consumptionOnce.err)
	}
	return consumptionOnce.cc
}

func BenchmarkFig6a_Consumption(b *testing.B) {
	cc := getConsumption(b)
	thresholds := make([]float64, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range thresholds {
		thresholds[i] = 0.1 + 0.9*rng.Float64()
	}
	b.Run("planar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := cc.Query(thresholds[i%len(thresholds)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.QueryScan(thresholds[i%len(thresholds)])
		}
	})
}

// ---------------------------------------------------------------
// Figures 6(b,c): image feature datasets.

func benchImage(b *testing.B, d *dataset.Data) {
	store, err := d.Store()
	if err != nil {
		b.Fatal(err)
	}
	g, err := queries.NewEq18(d.AxisMaxes(), 4)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMulti(store)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.BuildIndexes(m, 100, rand.New(rand.NewSource(4))); err != nil {
		b.Fatal(err)
	}
	qs := queryList(g, 64, 5)
	b.Run("planar", func(b *testing.B) { benchIndexed(b, m, qs) })
	b.Run("baseline", func(b *testing.B) { benchScan(b, store, qs) })
}

func BenchmarkFig6b_CMoment(b *testing.B) {
	benchImage(b, dataset.CMoment(benchReal, 1))
}

func BenchmarkFig6c_CTexture(b *testing.B) {
	benchImage(b, dataset.CTexture(benchReal, 1))
}

// ---------------------------------------------------------------
// Figure 6(d) / 13(a): index construction.

func BenchmarkFig6d_IndexBuild(b *testing.B) {
	for _, mk := range []struct {
		name string
		data *dataset.Data
	}{
		{"cmoment", dataset.CMoment(benchReal, 1)},
		{"ctexture", dataset.CTexture(benchReal, 1)},
		{"consumption", dataset.Consumption(benchReal, 1)},
	} {
		b.Run(mk.name, func(b *testing.B) {
			store, err := mk.data.Store()
			if err != nil {
				b.Fatal(err)
			}
			doms := make([]core.Domain, mk.data.Dim())
			for i := range doms {
				doms[i] = core.Domain{Lo: 1, Hi: 12}
			}
			rng := rand.New(rand.NewSource(6))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.NewMulti(store)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.SampleBudget(1, doms, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------
// Figures 7 and 9: dim × RQ sweep at 100 indexes.

func BenchmarkFig7Fig9_QueryByDimRQ(b *testing.B) {
	for _, dim := range []int{2, 6, 10, 14} {
		for _, rq := range []int{2, 12} {
			f := getSynth(b, dataset.KindIndependent, dim, rq, 100)
			qs := queryList(f.gen, 64, 8)
			b.Run(fmt.Sprintf("dim%d/RQ%d/planar", dim, rq), func(b *testing.B) {
				benchIndexed(b, f.multi, qs)
			})
		}
		f := getSynth(b, dataset.KindIndependent, dim, 4, 100)
		qs := queryList(f.gen, 64, 8)
		b.Run(fmt.Sprintf("dim%d/baseline", dim), func(b *testing.B) {
			benchScan(b, f.store, qs)
		})
	}
}

// ---------------------------------------------------------------
// Figures 8 and 10: budget sweep at RQ=4.

func BenchmarkFig8Fig10_QueryByBudget(b *testing.B) {
	for _, budget := range []int{1, 10, 100} {
		for _, kind := range dataset.Kinds {
			f := getSynth(b, kind, 6, 4, budget)
			qs := queryList(f.gen, 64, 9)
			b.Run(fmt.Sprintf("%s/ind%d", kind, budget), func(b *testing.B) {
				benchIndexed(b, f.multi, qs)
			})
		}
	}
}

// ---------------------------------------------------------------
// Figure 11: inequality-parameter sweep.

func BenchmarkFig11_InequalityParameter(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 6, 4, 100)
	for _, ineq := range []float64{0.10, 0.50, 1.00} {
		g := f.gen
		g.Ineq = ineq
		qs := queryList(g, 64, 10)
		b.Run(fmt.Sprintf("ineq%.2f", ineq), func(b *testing.B) {
			benchIndexed(b, f.multi, qs)
		})
	}
}

// ---------------------------------------------------------------
// Figure 12: scalability in n.

func BenchmarkFig12_Scalability(b *testing.B) {
	for _, n := range []int{10000, 50000, 100000} {
		d := dataset.Independent(n, 6, 1)
		store, err := d.Store()
		if err != nil {
			b.Fatal(err)
		}
		g, err := queries.NewEq18(d.AxisMaxes(), 4)
		if err != nil {
			b.Fatal(err)
		}
		m, err := core.NewMulti(store)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.BuildIndexes(m, 50, rand.New(rand.NewSource(11))); err != nil {
			b.Fatal(err)
		}
		qs := queryList(g, 64, 12)
		b.Run(fmt.Sprintf("n%d/planar", n), func(b *testing.B) { benchIndexed(b, m, qs) })
		b.Run(fmt.Sprintf("n%d/baseline", n), func(b *testing.B) { benchScan(b, store, qs) })
	}
}

// ---------------------------------------------------------------
// Figure 13(a): build time by dimension.

func BenchmarkFig13a_BuildByDim(b *testing.B) {
	for _, dim := range []int{2, 6, 10, 14} {
		d := dataset.Independent(benchPoints, dim, 1)
		store, err := d.Store()
		if err != nil {
			b.Fatal(err)
		}
		g, err := queries.NewEq18(d.AxisMaxes(), 12)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("dim%d", dim), func(b *testing.B) {
			rng := rand.New(rand.NewSource(13))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := core.NewMulti(store)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := g.BuildIndexes(m, 1, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------
// Figure 13(b): memory footprint (reported as a metric).

func BenchmarkFig13b_Memory(b *testing.B) {
	for _, dim := range []int{2, 14} {
		f := getSynth(b, dataset.KindIndependent, dim, 12, 10)
		b.Run(fmt.Sprintf("dim%d_ind10", dim), func(b *testing.B) {
			var bytes int
			for i := 0; i < b.N; i++ {
				bytes = f.multi.MemoryBytes()
			}
			b.ReportMetric(float64(bytes)/(1<<20), "MB")
		})
	}
}

// ---------------------------------------------------------------
// Figure 13(c): dynamic updates.

func BenchmarkFig13c_Update(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 10, 12, 1)
	rng := rand.New(rand.NewSource(14))
	vec := make([]float64, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint32(rng.Intn(benchPoints))
		for j := range vec {
			vec[j] = 1 + 99*rng.Float64()
		}
		if err := f.multi.Update(id, vec); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------
// Figure 14: moving-object intersection.

func BenchmarkFig14a_LinearIntersection(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	setA := moving.GenLinear2D(benchMoving, 1000, 0.1, 1, rng)
	setB := moving.GenLinear2D(benchMoving, 1000, 0.1, 1, rng)
	space := &moving.LinearSpace{A: setA, B: setB}
	join, err := moving.NewJoin(space, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		b.Fatal(err)
	}
	tree, err := mbrtree.Build(setB)
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10, 11.5, 13, 15}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			moving.Baseline(space, times[i%len(times)], 10)
		}
	})
	b.Run("planar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := join.AtPairs(times[i%len(times)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mbrtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.Join(setA, times[i%len(times)], 10)
		}
	})
}

func BenchmarkFig14b_CircularIntersection(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	omegas := []float64{moving.DegPerMin(1), moving.DegPerMin(3), moving.DegPerMin(5)}
	circ, ws := moving.GenCircular(benchMoving, moving.Vec2{X: 50, Y: 50}, 1, 100, omegas, rng)
	lin := moving.GenLinear2D(benchMoving, 100, 0.1, 1, rng)
	work, err := moving.NewCircularWorkload(circ, ws, lin, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10, 12.5, 15}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			work.Baseline(times[i%len(times)], 10)
		}
	})
	b.Run("planar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := work.At(times[i%len(times)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFig14c_AccelIntersection(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	space := &moving.AccelSpace{
		A: moving.GenAccel3D(benchMoving, 1000, 0.1, 1, 0.01, 0.05, rng),
		L: moving.GenLinear3D(benchMoving, 1000, 0.1, 1, rng),
	}
	join, err := moving.NewJoin(space, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		b.Fatal(err)
	}
	times := []float64{10, 12.5, 15}
	b.Run("baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			moving.Baseline(space, times[i%len(times)], 10)
		}
	})
	b.Run("planar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := join.AtPairs(times[i%len(times)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------
// Table 3: top-k nearest neighbours.

func BenchmarkTable3_TopK(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 6, 4, 100)
	qs := queryList(f.gen, 64, 18)
	for _, k := range []int{50, 1000} {
		b.Run(fmt.Sprintf("k%d/planar", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := f.multi.TopK(qs[i%len(qs)], k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("k%d/baseline", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scan.TopK(f.store, qs[i%len(qs)], k)
			}
		})
	}
}

// ---------------------------------------------------------------
// Ablation A: best-index selection heuristic.

func BenchmarkAblationSelect(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 6, 8, 30)
	angle, err := core.NewMulti(f.store, core.WithSelection(core.SelectAngle))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < f.multi.NumIndexes(); i++ {
		ix := f.multi.Index(i)
		if _, err := angle.AddNormal(ix.Normal(), ix.Signs()); err != nil {
			b.Fatal(err)
		}
	}
	qs := queryList(f.gen, 64, 19)
	b.Run("volume", func(b *testing.B) { benchIndexed(b, f.multi, qs) })
	b.Run("angle", func(b *testing.B) { benchIndexed(b, angle, qs) })
}

// ---------------------------------------------------------------
// Ablation B: B+ tree backing store vs a plain sorted slice.

func BenchmarkAblationStore(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 6, 4, 1)
	ix := f.multi.Index(0)
	qs := queryList(f.gen, 64, 20)

	// Sorted-slice twin: same keys, answered with binary search and
	// linear scans over the slice.
	normal := ix.EffectiveNormal()
	type ent struct {
		key float64
		id  uint32
	}
	ents := make([]ent, 0, f.store.Len())
	f.store.Each(func(id uint32, v []float64) bool {
		var key float64
		for i, c := range normal {
			key += c * v[i]
		}
		ents = append(ents, ent{key, id})
		return true
	})
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })

	b.Run("btree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.InequalityIDs(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sortedslice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			// Same three-interval algorithm on the slice.
			tmin, tmax := thresholdsFor(q, ix.Normal())
			lo := sort.Search(len(ents), func(j int) bool { return ents[j].key > tmin })
			hi := sort.Search(len(ents), func(j int) bool { return ents[j].key > tmax })
			count := lo
			for j := lo; j < hi; j++ {
				if q.Satisfies(f.store.Vector(ents[j].id)) {
					count++
				}
			}
			_ = count
		}
	})
}

// thresholdsFor recomputes first-octant interval thresholds for the
// sorted-slice ablation (queries here are all-positive, δ = 0).
func thresholdsFor(q core.Query, c []float64) (tmin, tmax float64) {
	tmin, tmax = 1e308, -1e308
	for i, a := range q.A {
		if a == 0 {
			continue
		}
		t := c[i] * q.B / a
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	return tmin, tmax
}

// ---------------------------------------------------------------
// Ablation C: parallel intermediate-interval verification.

func BenchmarkAblationParallel(b *testing.B) {
	// RQ=12 with a single index yields a fat intermediate interval —
	// the regime where parallel verification can pay off.
	f := getSynth(b, dataset.KindIndependent, 10, 12, 1)
	qs := queryList(f.gen, 64, 21)
	ix := f.multi.Index(0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ix.InequalityParallelIDs(qs[i%len(qs)], workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------
// Extension benchmarks (DESIGN.md extensions beyond the paper).

func BenchmarkExtCount(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 6, 4, 100)
	qs := queryList(f.gen, 64, 23)
	b.Run("indexedCount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := f.multi.Count(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("selectivityBounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := f.multi.SelectivityBounds(qs[i%len(qs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scanCount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scan.Count(f.store, qs[i%len(qs)])
		}
	})
}

func BenchmarkExtConstraint(b *testing.B) {
	f := getSynth(b, dataset.KindIndependent, 3, 4, 20)
	ev, err := constraint.NewEvaluator(f.multi)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	cs := make([]constraint.Conjunction, 32)
	for i := range cs {
		cs[i] = constraint.Conjunction{}.
			And(core.Query{A: []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3, 1 + rng.Float64()*3}, B: 100 + rng.Float64()*150, Op: core.LE}).
			And(core.Query{A: []float64{2, 1, 3}, B: 200 + rng.Float64()*150, Op: core.LE})
	}
	b.Run("evaluator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ev.Count(cs[i%len(cs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := constraint.Scan(f.store, cs[i%len(cs)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExtAdaptive(b *testing.B) {
	d := dataset.Independent(benchPoints, 4, 1)
	store, err := d.Store()
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewMulti(store)
	if err != nil {
		b.Fatal(err)
	}
	tn, err := adaptive.NewTuner(m, 4, 20)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	dir := []float64{2, 1, 3, 1.5}
	query := func() core.Query {
		a := make([]float64, 4)
		for i, v := range dir {
			a[i] = v * (1 + 0.002*rng.Float64())
		}
		return core.Query{A: a, B: 0.25 * 100 * 7.5, Op: core.LE}
	}
	// Warm the tuner past its first retune.
	for i := 0; i < 40; i++ {
		if _, _, err := tn.InequalityIDs(query()); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tn.Inequality(query(), func(uint32) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtReduce(b *testing.B) {
	d := dataset.Correlated(benchPoints, 10, 1)
	store, err := d.Store()
	if err != nil {
		b.Fatal(err)
	}
	g, err := queries.NewEq18(d.AxisMaxes(), 4)
	if err != nil {
		b.Fatal(err)
	}
	f, err := reduce.NewFilter(store, 2)
	if err != nil {
		b.Fatal(err)
	}
	qs := queryList(g, 64, 26)
	b.Run("pcafilter", func(b *testing.B) {
		var pruned float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := f.Inequality(qs[i%len(qs)], func(uint32) bool { return true })
			if err != nil {
				b.Fatal(err)
			}
			pruned += st.PruningFraction()
		}
		b.ReportMetric(100*pruned/float64(b.N), "pruned%")
	})
	b.Run("scan", func(b *testing.B) { benchScan(b, store, qs) })
}

// BenchmarkBtreeBulkLoad tracks the core build primitive (Figure 12a
// is built from this).
func BenchmarkBtreeBulkLoad(b *testing.B) {
	ents := make([]btree.Entry, benchPoints)
	rng := rand.New(rand.NewSource(22))
	for i := range ents {
		ents[i] = btree.Entry{Key: rng.Float64(), ID: uint32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := append([]btree.Entry(nil), ents...)
		btree.BulkLoad(cp)
	}
}

// ---------------------------------------------------------------
// Execution-pipeline benchmarks: plan-cache hit vs miss, and the
// abstraction overhead of internal/exec against an inline port of the
// pre-refactor three-interval loop.

// planCacheFixture builds two Multis over the same store and index
// set, one with the default plan cache and one with caching disabled,
// so hit and miss planning costs are compared on identical data.
func planCacheFixture(b *testing.B) (cached, uncached *core.Multi, q core.Query) {
	b.Helper()
	d := dataset.Synthetic(dataset.KindIndependent, benchPoints, 6, 1)
	store, err := d.Store()
	if err != nil {
		b.Fatal(err)
	}
	g, err := queries.NewEq18(d.AxisMaxes(), 4)
	if err != nil {
		b.Fatal(err)
	}
	build := func(opts ...core.MultiOption) *core.Multi {
		m, err := core.NewMulti(store, opts...)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.BuildIndexes(m, 100, rand.New(rand.NewSource(7))); err != nil {
			b.Fatal(err)
		}
		return m
	}
	q = queryList(g, 1, 33)[0]
	return build(), build(core.WithPlanCache(0)), q
}

// planOnlyFixture builds an exec.Source with many candidate indexes
// directly, so BenchmarkPlanCache can time the planner alone — no
// per-index read locks, no interval-size estimation, no execution.
func planOnlyFixture(b *testing.B, numIndexes int) (*exec.Source, exec.Query) {
	b.Helper()
	rng := rand.New(rand.NewSource(53))
	dim := 6
	n := 5000
	points := make([][]float64, n)
	for i := range points {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		points[i] = v
	}
	infos := make([]exec.IndexInfo, numIndexes)
	for x := range infos {
		normal := make([]float64, dim)
		for j := range normal {
			normal[j] = 1 + rng.Float64()*9
		}
		ents := make([]btree.Entry, n)
		for id, v := range points {
			k := 0.0
			for j := range v {
				k += normal[j] * v[j]
			}
			ents[id] = btree.Entry{Key: k, ID: uint32(id)}
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Key < ents[j].Key })
		infos[x] = exec.IndexInfo{
			Tree:  btree.BulkLoad(ents),
			C:     normal,
			Delta: make([]float64, dim),
			CS:    normal,
			Signs: vecmath.FirstOctant(dim),
			Guard: core.DefaultGuard,
		}
	}
	src := &exec.Source{
		N:       n,
		Indexes: infos,
		Vector:  func(id uint32) []float64 { return points[id] },
		Each: func(fn func(id uint32, v []float64) bool) {
			for id, v := range points {
				if !fn(uint32(id), v) {
					return
				}
			}
		},
	}
	q := exec.Query{A: []float64{2, 5, 1, 3, 4, 2}, B: 9000}
	return src, q
}

// BenchmarkPlanCache isolates the planning stage: "hit" serves the
// index selection from the direction-keyed cache, "miss" re-scores
// every candidate index's interval thresholds each time.
func BenchmarkPlanCache(b *testing.B) {
	src, q := planOnlyFixture(b, 100)
	b.Run("hit", func(b *testing.B) {
		src.Cache = exec.NewPlanCache(core.DefaultPlanCacheSize)
		if _, err := exec.PlanQuery(src, q); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.B = float64(i % 1000) // vary threshold, keep direction
			if _, err := exec.PlanQuery(src, q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		hits, misses := src.Cache.Counters()
		b.ReportMetric(float64(hits)/float64(hits+misses), "hit-rate")
	})
	b.Run("miss", func(b *testing.B) {
		src.Cache = nil
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.B = float64(i % 1000)
			if _, err := exec.PlanQuery(src, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlanCacheQueries measures the cache's effect on whole
// queries (plan + execute) with a repeated-direction workload.
func BenchmarkPlanCacheQueries(b *testing.B) {
	cached, uncached, q := planCacheFixture(b)
	run := func(m *core.Multi) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.B = float64(i % 1000)
				if _, _, err := m.Count(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cache", run(cached))
	b.Run("nocache", run(uncached))
}

// pipelineOverheadFixture assembles an exec.Source over one index the
// way internal/core does, so the pipeline and an inline loop can be
// timed on identical trees.
func pipelineOverheadFixture(b *testing.B) (*exec.Source, []exec.Query, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(41))
	dim := 4
	points := make([][]float64, benchPoints)
	for i := range points {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		points[i] = v
	}
	normal := []float64{1, 2, 1, 3}
	cs := append([]float64(nil), normal...)
	ents := make([]btree.Entry, len(points))
	for id, v := range points {
		k := 0.0
		for j := range v {
			k += cs[j] * v[j]
		}
		ents[id] = btree.Entry{Key: k, ID: uint32(id)}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Key < ents[j].Key })
	info := exec.IndexInfo{
		Tree:  btree.BulkLoad(ents),
		C:     normal,
		Delta: make([]float64, dim),
		CS:    cs,
		Signs: vecmath.FirstOctant(dim),
		Guard: core.DefaultGuard,
	}
	src := &exec.Source{
		N:       len(points),
		Indexes: []exec.IndexInfo{info},
		Single:  true,
		Vector:  func(id uint32) []float64 { return points[id] },
		Each: func(fn func(id uint32, v []float64) bool) {
			for id, v := range points {
				if !fn(uint32(id), v) {
					return
				}
			}
		},
	}
	qs := make([]exec.Query, 32)
	for i := range qs {
		qs[i] = exec.Query{
			A: []float64{1 + rng.Float64()*4, 1 + rng.Float64()*4, 1 + rng.Float64()*4, 1 + rng.Float64()*4},
			B: rng.Float64() * 12000,
		}
	}
	return src, qs, points
}

// BenchmarkPipelineOverhead compares exec.Run against an inline port
// of the pre-refactor Algorithm-1 loop (plan once, then walk the
// smaller and intermediate intervals directly). The delta is the cost
// of the sink/dispatch abstraction.
func BenchmarkPipelineOverhead(b *testing.B) {
	src, qs, points := pipelineOverheadFixture(b)
	b.Run("inline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := qs[i%len(qs)]
			plan, err := exec.PlanQuery(src, q)
			if err != nil {
				b.Fatal(err)
			}
			matched := 0
			tree := src.Indexes[0].Tree
			tree.AscendLE(plan.Tmin, func(e btree.Entry) bool { matched++; return true })
			tree.AscendRange(plan.Tmin, plan.Tmax, func(e btree.Entry) bool {
				if q.Satisfies(points[e.ID]) {
					matched++
				}
				return true
			})
			_ = matched
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matched := 0
			_, err := exec.Run(src, qs[i%len(qs)], exec.FuncSink(func(uint32) bool {
				matched++
				return true
			}), exec.Options{})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
