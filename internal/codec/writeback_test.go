package codec

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"planar/internal/core"
	"planar/internal/pager"
	"planar/internal/vecmath"
)

// mutateMulti applies a deterministic append/update/remove stream.
func mutateMulti(t *testing.T, rng *rand.Rand, m *core.Multi, dim, ops int) {
	t.Helper()
	for i := 0; i < ops; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		switch rng.Intn(4) {
		case 0, 1:
			if _, err := m.Append(v); err != nil {
				t.Fatal(err)
			}
		case 2:
			id := uint32(rng.Intn(m.Store().Cap()))
			if m.Store().Live(id) {
				if err := m.Update(id, v); err != nil {
					t.Fatal(err)
				}
			}
		case 3:
			id := uint32(rng.Intn(m.Store().Cap()))
			if m.Store().Live(id) {
				if err := m.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// storeState deep-copies the observable point-store state.
func storeState(m *core.Multi) (data []float64, live []bool, free []uint32) {
	d, l := m.Store().RawRows()
	return append([]float64(nil), d...), append([]bool(nil), l...), m.Store().FreeList()
}

// TestIncrementalMatchesFullCheckpoint is the golden equivalence pin:
// two stores take the same mutation stream, one checkpoints the dirty
// delta and the other rewrites everything; after recovery the two
// states must be identical down to the raw rows.
func TestIncrementalMatchesFullCheckpoint(t *testing.T) {
	const dim = 4
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "incr.plnr"), filepath.Join(dir, "full.plnr")}
	for _, p := range paths {
		m := buildPagedMulti(t, rand.New(rand.NewSource(77)), dim, 1200)
		ps, err := CreatePaged(p, dim, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.Checkpoint(m, 1); err != nil {
			t.Fatal(err)
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen both, mutate identically, checkpoint each its own way
	// across several epochs (re-dirtied rows, frees, recycled pages).
	finish := make([]*core.Multi, 2)
	for i, p := range paths {
		ps, m, err := OpenPaged(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(78))
		for epoch := 0; epoch < 3; epoch++ {
			mutateMulti(t, rng, m, dim, 400)
			cp := ps.Checkpoint
			if i == 1 {
				cp = ps.CheckpointFull
			}
			if err := cp(m, uint64(2+epoch)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ps.Close(); err != nil {
			t.Fatal(err)
		}
		_, finish[i], err = OpenPaged(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
	}

	di, li, fi := storeState(finish[0])
	df, lf, ff := storeState(finish[1])
	if !reflect.DeepEqual(di, df) {
		t.Fatal("incremental and full checkpoints recovered different row data")
	}
	if !reflect.DeepEqual(li, lf) {
		t.Fatal("incremental and full checkpoints recovered different live sets")
	}
	if !reflect.DeepEqual(fi, ff) {
		t.Fatal("incremental and full checkpoints recovered different free lists")
	}
	compareMultis(t, rand.New(rand.NewSource(79)), finish[0], finish[1], dim)
}

// TestCheckpointWithWriterEnabled runs the real background writer
// against a paged store across mutation epochs: writeback must make
// progress (pages counted) and checkpoints must still recover exactly.
func TestCheckpointWithWriterEnabled(t *testing.T) {
	const dim = 4
	path := filepath.Join(t.TempDir(), "writer.plnr")
	m := buildPagedMulti(t, rand.New(rand.NewSource(70)), dim, 1500)
	ps, err := CreatePaged(path, dim, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Checkpoint(m, 1); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2, m2, err := OpenPaged(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	ps2.StartWriter(pager.WriterOptions{Interval: time.Millisecond, BatchPages: 16}, m2.WritebackIndexes)
	rng := rand.New(rand.NewSource(71))
	for epoch := 0; epoch < 3; epoch++ {
		mutateMulti(t, rng, m2, dim, 500)
		// Callers drain before checkpointing (the service layer does
		// this outside its write lock); it also makes the writeback
		// page counter deterministic for the assertion below.
		if err := ps2.DrainWriteback(); err != nil {
			t.Fatal(err)
		}
		if err := ps2.Checkpoint(m2, uint64(2+epoch)); err != nil {
			t.Fatal(err)
		}
	}
	st := ps2.Stats()
	if st.WritebackPages == 0 {
		t.Fatalf("background writer flushed nothing across 3 epochs (stats %+v)", st)
	}
	if st.WritebackErrors != 0 {
		t.Fatalf("background writer reported %d errors", st.WritebackErrors)
	}
	wantData, wantLive, wantFree := storeState(m2)
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}

	_, m3, err := OpenPaged(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	gotData, gotLive, gotFree := storeState(m3)
	if !reflect.DeepEqual(wantData, gotData) || !reflect.DeepEqual(wantLive, gotLive) || !reflect.DeepEqual(wantFree, gotFree) {
		t.Fatal("writer-enabled checkpoints recovered different store state")
	}
	compareMultis(t, rand.New(rand.NewSource(72)), m2, m3, dim)
}

// TestCrashDuringWritebackEveryOffset kills the store at every byte
// offset while background writeback is in flight: a committed epoch,
// then uncommitted mutations whose dirty tree frames were shadow-
// written (but never published by a superblock flip). Every truncation
// and every flipped byte must either fail loudly on open or recover
// the committed epoch byte-identically — the shadow writes are dead
// bytes until the flip.
func TestCrashDuringWritebackEveryOffset(t *testing.T) {
	const dim = 3
	dir := t.TempDir()
	path := filepath.Join(dir, "wb.plnr")

	// One small index keeps the file (and the sweep) small.
	store, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMulti(store)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < 25; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		if _, err := m.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	signs := make(vecmath.SignPattern, dim)
	for i := range signs {
		signs[i] = 1
	}
	if _, err := m.AddNormal([]float64{0.3, 0.5, 0.7}, signs); err != nil {
		t.Fatal(err)
	}

	ps, err := CreatePaged(path, dim, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Checkpoint(m, 1); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2, m2, err := OpenPaged(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	wantData, wantLive, wantFree := storeState(m2)

	// Uncommitted epoch: mutate, then shadow-write the dirty frames
	// exactly as the background writer would — and crash before any
	// commit.
	mutateMulti(t, rng, m2, dim, 40)
	n, err := m2.WritebackIndexes(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("writeback wrote nothing: the crash sweep would prove nothing")
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	mpath := filepath.Join(dir, "mut.plnr")
	verify := func(t *testing.T, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(mpath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		gps, gm, err := OpenPaged(mpath, 1<<20)
		if err != nil {
			return // loud failure is an allowed outcome
		}
		lsn := gps.CheckpointLSN()
		switch lsn {
		case 1:
			d, l, f := storeState(gm)
			if !reflect.DeepEqual(d, wantData) || !reflect.DeepEqual(l, wantLive) || !reflect.DeepEqual(f, wantFree) {
				gps.Close()
				t.Fatalf("recovered LSN 1 with different store state")
			}
		case 0:
			// The create-time superblock: only reachable when the
			// corruption killed the LSN-1 superblock. An empty store.
			if gm.Store().Len() != 0 {
				gps.Close()
				t.Fatalf("recovered LSN 0 with %d points", gm.Store().Len())
			}
		default:
			gps.Close()
			t.Fatalf("recovered impossible LSN %d (no commit ever wrote it)", lsn)
		}
		gps.Close()
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut < len(blob); cut++ {
			verify(t, blob[:cut])
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		mut := make([]byte, len(blob))
		for off := 0; off < len(blob); off++ {
			copy(mut, blob)
			mut[off] ^= 0x5a
			verify(t, mut)
		}
	})
}
