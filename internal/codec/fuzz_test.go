package codec

import (
	"bytes"
	"testing"

	"planar/internal/vecmath"
)

// FuzzRead throws arbitrary bytes at the snapshot reader: it must
// either return a valid snapshot or an error — never panic or hang.
func FuzzRead(f *testing.F) {
	// Seed with a valid snapshot and a few mutations of it.
	s := &Snapshot{
		Dim:  2,
		Data: []float64{1, 2, 3, 4},
		Live: []bool{true, true},
		Indexes: []IndexSpec{{
			Normal: []float64{1, 2},
			Signs:  vecmath.SignPattern{1, -1},
		}},
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[8] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4e, 0x4c, 0x50}) // magic only

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the reader accepts must be internally consistent.
		if len(snap.Data) != len(snap.Live)*snap.Dim {
			t.Fatalf("accepted inconsistent snapshot: %d data, %d rows, dim %d",
				len(snap.Data), len(snap.Live), snap.Dim)
		}
	})
}
