package codec

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/vecmath"
)

func buildPagedMulti(t *testing.T, rng *rand.Rand, dim, n int) *core.Multi {
	t.Helper()
	store, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMulti(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		if _, err := m.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	signs := make(vecmath.SignPattern, dim)
	for i := range signs {
		signs[i] = 1
	}
	for k := 0; k < 3; k++ {
		normal := make([]float64, dim)
		for j := range normal {
			normal[j] = 0.1 + rng.Float64()
		}
		if _, err := m.AddNormal(normal, signs); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func queryIDs(t *testing.T, m *core.Multi, a []float64, b float64) []uint32 {
	t.Helper()
	ids, _, err := m.InequalityIDs(core.Query{A: a, B: b, Op: core.LE})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func compareMultis(t *testing.T, rng *rand.Rand, want, got *core.Multi, dim int) {
	t.Helper()
	if want.Store().Len() != got.Store().Len() {
		t.Fatalf("store length: want %d, got %d", want.Store().Len(), got.Store().Len())
	}
	if want.NumIndexes() != got.NumIndexes() {
		t.Fatalf("index count: want %d, got %d", want.NumIndexes(), got.NumIndexes())
	}
	for q := 0; q < 25; q++ {
		a := make([]float64, dim)
		for j := range a {
			a[j] = 0.01 + rng.Float64()
		}
		b := rng.Float64() * 100 * float64(dim)
		w, g := queryIDs(t, want, a, b), queryIDs(t, got, a, b)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("query %d: want %d ids, got %d", q, len(w), len(g))
		}
	}
}

// TestPagedStoreRoundtrip checkpoints a Multi, reopens it cold (trees
// in paged mode), verifies query identity, mutates the restored copy,
// checkpoints again through the paged-tree flush path, and reopens
// once more.
func TestPagedStoreRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dim = 4
	path := filepath.Join(t.TempDir(), "pages.plnr")

	m := buildPagedMulti(t, rng, dim, 3000)
	ps, err := CreatePaged(path, dim, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Checkpoint(m, 7); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	ps2, m2, err := OpenPaged(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := ps2.CheckpointLSN(); got != 7 {
		t.Fatalf("checkpoint LSN = %d, want 7", got)
	}
	compareMultis(t, rand.New(rand.NewSource(1)), m, m2, dim)
	for i := 0; i < m2.NumIndexes(); i++ {
		if !m2.Index(i).Tree().Paged() {
			t.Fatalf("restored index %d is not paged", i)
		}
	}

	// Mutate both copies identically, checkpoint the paged one (its
	// trees flush copy-on-write pages), and reopen.
	for i := 0; i < 500; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		if _, err := m.Append(v); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Append(v); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			id := uint32(rng.Intn(3000))
			if err := m.Remove(id); err != nil {
				t.Fatal(err)
			}
			if err := m2.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareMultis(t, rand.New(rand.NewSource(2)), m, m2, dim)
	if err := ps2.Checkpoint(m2, 8); err != nil {
		t.Fatal(err)
	}
	if err := ps2.Close(); err != nil {
		t.Fatal(err)
	}

	ps3, m3, err := OpenPaged(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer ps3.Close()
	compareMultis(t, rand.New(rand.NewSource(3)), m, m3, dim)
}

// TestPagedStoreReclaimsPages repeatedly checkpoints the same RAM
// Multi: each pass dumps fresh tree pages and frees the previous set,
// so the file must stop growing after the free list warms up.
func TestPagedStoreReclaimsPages(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const dim = 3
	m := buildPagedMulti(t, rng, dim, 2000)
	ps, err := CreatePaged(filepath.Join(t.TempDir(), "p.plnr"), dim, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	for lsn := uint64(1); lsn <= 2; lsn++ {
		if err := ps.Checkpoint(m, lsn); err != nil {
			t.Fatal(err)
		}
	}
	n := ps.NumPages()
	for lsn := uint64(3); lsn <= 8; lsn++ {
		if err := ps.Checkpoint(m, lsn); err != nil {
			t.Fatal(err)
		}
	}
	if grew := ps.NumPages() - n; grew > 0 {
		t.Fatalf("file grew %d pages across steady-state checkpoints", grew)
	}
}

// TestPagedStoreEmpty round-trips a store with no points and no
// indexes (the CreatePaged initial state).
func TestPagedStoreEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.plnr")
	ps, err := CreatePaged(path, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	ps2, m, err := OpenPaged(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ps2.Close()
	if m.Store().Dim() != 5 || m.Store().Len() != 0 || m.NumIndexes() != 0 {
		t.Fatalf("empty store came back dim=%d len=%d idx=%d", m.Store().Dim(), m.Store().Len(), m.NumIndexes())
	}
}
