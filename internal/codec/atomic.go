package codec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// atomicWriteFile publishes a file atomically: the content is written
// to a same-directory temp file, synced, renamed over path, and the
// directory entry is synced so the rename itself survives a crash.
// Readers therefore see either the previous complete file or the new
// complete file, never a torn write. write receives the open temp
// file and must not close it.
func atomicWriteFile(path string, write func(*os.File) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	if err := write(tmp); err != nil {
		err = errors.Join(err, tmp.Close(), os.Remove(tmpPath))
		return fmt.Errorf("codec: writing %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		err = errors.Join(err, tmp.Close(), os.Remove(tmpPath))
		return fmt.Errorf("codec: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return errors.Join(fmt.Errorf("codec: closing %s: %w", path, err), os.Remove(tmpPath))
	}
	if err := os.Rename(tmpPath, path); err != nil {
		return errors.Join(err, os.Remove(tmpPath))
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
