package codec

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"planar/internal/core"
	"planar/internal/vecmath"
)

func buildMulti(t *testing.T, n int) *core.Multi {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	store, err := core.NewPointStore(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		store.Append([]float64{rng.Float64() * 10, rng.Float64()*20 - 10, rng.Float64()})
	}
	m, err := core.NewMulti(store)
	if err != nil {
		t.Fatal(err)
	}
	m.AddNormal([]float64{1, 2, 3}, vecmath.FirstOctant(3))
	m.AddNormal([]float64{2, 1, 1}, vecmath.SignPattern{1, -1, 1})
	return m
}

func TestRoundTrip(t *testing.T) {
	m := buildMulti(t, 200)
	snap := Capture(m)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim != 3 || back.NumLive() != 200 || len(back.Indexes) != 2 {
		t.Fatalf("shape: dim=%d live=%d idx=%d", back.Dim, back.NumLive(), len(back.Indexes))
	}
	restored, err := back.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumIndexes() != 2 || restored.Store().Len() != 200 {
		t.Fatal("restore shape wrong")
	}
	// Restored index answers queries identically.
	q := core.Query{A: []float64{1, 2, 3}, B: 20, Op: core.LE}
	a, _, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := restored.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("restored answers %d vs %d", len(b), len(a))
	}
	// Octants preserved.
	if !restored.Index(1).Signs().Equal(vecmath.SignPattern{1, -1, 1}) {
		t.Fatal("sign pattern lost")
	}
}

func TestRoundTripPreservesIDs(t *testing.T) {
	m := buildMulti(t, 100)
	// Punch holes so the id space is sparse and a free list exists.
	for _, id := range []uint32{3, 50, 99, 7} {
		if err := m.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	snap := Capture(m)
	var buf bytes.Buffer
	if err := snap.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := back.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// Live ids and their vectors match exactly.
	m.Store().Each(func(id uint32, v []float64) bool {
		if !restored.Store().Live(id) {
			t.Fatalf("id %d lost", id)
		}
		rv := restored.Store().Vector(id)
		for i := range v {
			if rv[i] != v[i] {
				t.Fatalf("id %d vector mismatch", id)
			}
		}
		return true
	})
	for _, id := range []uint32{3, 50, 99, 7} {
		if restored.Store().Live(id) {
			t.Fatalf("dead id %d restored live", id)
		}
	}
	// Id recycling order is preserved: the next appends on both
	// stores hand out identical ids.
	for i := 0; i < 4; i++ {
		a, err := m.Append([]float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Append([]float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("append %d: original id %d, restored id %d", i, a, b)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := buildMulti(t, 50)
	snap := Capture(m)
	path := filepath.Join(t.TempDir(), "snap.plnr")
	if err := snap.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLive() != 50 {
		t.Fatalf("live=%d", back.NumLive())
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	m := buildMulti(t, 30)
	var buf bytes.Buffer
	if err := Capture(m).Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte.
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload corruption: err=%v", err)
	}
	// Bad magic.
	bad = append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("magic corruption: err=%v", err)
	}
	// Truncation.
	if _, err := Read(bytes.NewReader(raw[:len(raw)-7])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := Read(bytes.NewReader(raw[:2])); err == nil {
		t.Fatal("tiny snapshot accepted")
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	s := &Snapshot{Dim: 0}
	if err := s.Write(&buf); err == nil {
		t.Fatal("dim 0 accepted")
	}
	s = &Snapshot{Dim: 2, Data: []float64{1}, Live: []bool{true}}
	if err := s.Write(&buf); err == nil {
		t.Fatal("ragged data accepted")
	}
	s = &Snapshot{Dim: 2, Indexes: []IndexSpec{{Normal: []float64{1}, Signs: vecmath.SignPattern{1, 1}}}}
	if err := s.Write(&buf); err == nil {
		t.Fatal("wrong-dim index spec accepted")
	}
}

// Property: any finite snapshot round-trips bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(rows [][3]float64, normSeed uint8) bool {
		s := &Snapshot{Dim: 3}
		for _, r := range rows {
			for _, v := range r {
				if v != v { // NaN round-trips in bits but breaks ==
					return true
				}
			}
			s.Data = append(s.Data, r[0], r[1], r[2])
			s.Live = append(s.Live, true)
		}
		s.Indexes = append(s.Indexes, IndexSpec{
			Normal: []float64{1 + float64(normSeed), 2, 3},
			Signs:  vecmath.SignPattern{1, -1, 1},
		})
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(back.Data) != len(s.Data) || len(back.Live) != len(s.Live) {
			return false
		}
		for i := range s.Data {
			if back.Data[i] != s.Data[i] {
				return false
			}
		}
		return back.Indexes[0].Signs.Equal(s.Indexes[0].Signs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptySnapshot(t *testing.T) {
	s := &Snapshot{Dim: 4}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim != 4 || back.NumRows() != 0 || len(back.Indexes) != 0 {
		t.Fatalf("empty snapshot round trip: %+v", back)
	}
}
