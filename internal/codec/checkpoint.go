package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"planar/internal/btree"
	"planar/internal/core"
	"planar/internal/pager"
	"planar/internal/vecmath"
)

// Paged checkpoints. Where Snapshot rewrites the whole state as one
// flat file and rebuilds every index tree on load, a PagedStore keeps
// the state inside a pager.File: the point store travels as a chain of
// blob pages (read eagerly on open — the verification kernels need the
// rows resident), and each index tree is checkpointed as one page per
// node plus a btree.PagedMeta. Opening is therefore pread-lazy for the
// dominant cost: trees come back in paged-arena mode with only their
// slot metadata in RAM, and node pages fault through a shared cache on
// first touch instead of being rebuilt with an O(n log n) bulk load.
//
// Page ownership is split two ways. Trees that are already paged
// relocate their nodes copy-on-write as they are mutated and free
// their own pages; Checkpoint merely flushes their dirty frames in
// place. Trees living in RAM (freshly built since the last restart)
// are dumped as a brand-new page set each checkpoint, and those pages
// — like the store blob's — are owned by the PagedStore, which frees
// the previous checkpoint's set when the next one supersedes it.
//
// Crash safety comes from the pager: nothing here overwrites a page
// reachable from the durable superblock, and Commit publishes the new
// page set atomically. A failed checkpoint leaves the previous one
// bit-identical on disk.

const (
	pagedMagic   = uint32(0x504c4e43) // "PLNC"
	pagedVersion = byte(1)
)

// PagedStore is an open paged checkpoint file plus the page cache its
// trees fault through.
type PagedStore struct {
	file  *pager.File
	cache *pager.Cache
	dim   int
	// owned is the store-blob and RAM-tree-dump page set of the last
	// committed checkpoint; the next Checkpoint frees it.
	owned []int64
}

// CreatePaged creates a fresh paged checkpoint file for an empty
// dim-dimensional store. cacheBytes sizes the shared page cache (a
// small floor is enforced).
func CreatePaged(path string, dim int, cacheBytes int) (*PagedStore, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("codec: dimension must be positive, got %d", dim)
	}
	meta := encodePagedUserMeta(dim, 0, nil, nil)
	f, err := pager.Create(path, meta, 0)
	if err != nil {
		return nil, err
	}
	return &PagedStore{
		file:  f,
		cache: pager.NewCache(cacheBytes, pager.PayloadSize),
		dim:   dim,
	}, nil
}

// OpenPaged opens an existing paged checkpoint and materialises its
// Multi: the point store is read into RAM, every index is reattached
// with its tree in paged-arena mode. On success the caller owns both
// the returned store (Close it last) and the Multi.
func OpenPaged(path string, cacheBytes int, opts ...core.MultiOption) (*PagedStore, *core.Multi, error) {
	f, err := pager.Open(path)
	if err != nil {
		return nil, nil, err
	}
	ps, m, err := openPagedFile(f, cacheBytes, opts...)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return ps, m, nil
}

func openPagedFile(f *pager.File, cacheBytes int, opts ...core.MultiOption) (*PagedStore, *core.Multi, error) {
	dec, err := decodePagedUserMeta(f.Meta())
	if err != nil {
		return nil, nil, err
	}
	store, err := dec.buildStore(f)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.NewMulti(store, opts...)
	if err != nil {
		return nil, nil, err
	}
	ps := &PagedStore{
		file:  f,
		cache: pager.NewCache(cacheBytes, pager.PayloadSize),
		dim:   dec.dim,
		owned: append([]int64(nil), dec.blobPages...),
	}
	prebuilt := make([]core.PrebuiltIndex, len(dec.indexes))
	for i, ix := range dec.indexes {
		tree, err := btree.OpenPaged(f, ps.cache, ix.meta)
		if err != nil {
			return nil, nil, fmt.Errorf("codec: index %d: %w", i, err)
		}
		prebuilt[i] = core.PrebuiltIndex{
			Normal: ix.normal,
			Signs:  ix.signs,
			Delta:  ix.delta,
			Tree:   tree,
		}
	}
	if err := m.AttachPrebuilt(prebuilt); err != nil {
		return nil, nil, err
	}
	return ps, m, nil
}

// Checkpoint writes m's full state as the file's next durable epoch:
// a fresh store blob, every index tree flushed (paged) or dumped
// (RAM), the previous checkpoint's owned pages freed, and one atomic
// pager.Commit carrying lsn. The caller must exclude concurrent
// mutations of m for the duration; on error the previous checkpoint
// remains the durable state.
func (ps *PagedStore) Checkpoint(m *core.Multi, lsn uint64) error {
	store := m.Store()
	if store.Dim() != ps.dim {
		return fmt.Errorf("codec: checkpoint dimension %d into a %d-dimensional paged store", store.Dim(), ps.dim)
	}
	data, live, free := store.Raw()
	blob := encodeStoreBlob(ps.dim, data, live, free)
	blobPages, err := ps.writeBlob(blob)
	if err != nil {
		return err
	}
	persists, err := m.CheckpointIndexes(ps.file)
	if err != nil {
		return err
	}
	newOwned := append([]int64(nil), blobPages...)
	for _, p := range persists {
		if p.Owned {
			newOwned = p.Meta.Pages(newOwned)
		}
	}
	meta := encodePagedUserMeta(ps.dim, int64(len(blob)), blobPages, persists)

	// Free the superseded page set exactly once: ps.owned is cleared
	// before Commit so a failed commit retried later cannot double-free
	// (the freed pages only become allocatable after a commit succeeds,
	// which also publishes the meta that no longer references them).
	olds := ps.owned
	ps.owned = nil
	for _, p := range olds {
		ps.file.Free(p)
	}
	if err := ps.file.Commit(meta, lsn); err != nil {
		return err
	}
	ps.owned = newOwned
	return nil
}

// writeBlob chunks blob into PageBlob pages.
func (ps *PagedStore) writeBlob(blob []byte) ([]int64, error) {
	var pages []int64
	for off := 0; off < len(blob); off += pager.PayloadSize {
		end := off + pager.PayloadSize
		if end > len(blob) {
			end = len(blob)
		}
		p := ps.file.Alloc()
		if err := ps.file.WritePage(p, pager.PageBlob, blob[off:end]); err != nil {
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// PageTierStats is the observable state of one paged store: cache
// counters plus file size and the durable checkpoint position. Sharded
// deployments aggregate one per partition with Add.
type PageTierStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Resident      int // frames currently resident
	Target        int // soft cache capacity in frames
	Pages         int64
	CheckpointLSN uint64
}

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (s PageTierStats) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Add merges another store's counters (sizes sum; the checkpoint LSN
// keeps the maximum).
func (s PageTierStats) Add(o PageTierStats) PageTierStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Resident += o.Resident
	s.Target += o.Target
	s.Pages += o.Pages
	if o.CheckpointLSN > s.CheckpointLSN {
		s.CheckpointLSN = o.CheckpointLSN
	}
	return s
}

// Stats snapshots the store's page-tier counters.
func (ps *PagedStore) Stats() PageTierStats {
	cs := ps.cache.Stats()
	return PageTierStats{
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Evictions:     cs.Evictions,
		Resident:      cs.Resident,
		Target:        cs.Target,
		Pages:         ps.file.NumPages(),
		CheckpointLSN: ps.file.CheckpointLSN(),
	}
}

// Cache returns the shared page cache (trees opened from this store
// fault through it).
func (ps *PagedStore) Cache() *pager.Cache { return ps.cache }

// CacheStats returns the page cache counters.
func (ps *PagedStore) CacheStats() pager.CacheStats { return ps.cache.Stats() }

// CheckpointLSN returns the WAL LSN the durable checkpoint covers;
// replay resumes after it.
func (ps *PagedStore) CheckpointLSN() uint64 { return ps.file.CheckpointLSN() }

// NumPages returns the page-file length in pages.
func (ps *PagedStore) NumPages() int64 { return ps.file.NumPages() }

// Path returns the page file's path.
func (ps *PagedStore) Path() string { return ps.file.Path() }

// Dim returns the store dimensionality recorded in the file.
func (ps *PagedStore) Dim() int { return ps.dim }

// Close closes the underlying page file. Trees opened from this store
// must not be used afterwards.
func (ps *PagedStore) Close() error { return ps.file.Close() }

// ---- store blob ----

// encodeStoreBlob serialises the point store's exact raw layout:
// dim, row/free counts, live bitmap, row data, free list. Integrity
// is the pager's per-page CRC; the blob carries no extra checksum.
func encodeStoreBlob(dim int, data []float64, live []bool, free []uint32) []byte {
	buf := make([]byte, 0, 12+len(live)+8*len(data)+4*len(free))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(live)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(free)))
	for _, lv := range live {
		b := byte(0)
		if lv {
			b = 1
		}
		buf = append(buf, b)
	}
	for _, v := range data {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	for _, id := range free {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	return buf
}

func decodeStoreBlob(blob []byte, wantDim int) (*core.PointStore, error) {
	if len(blob) < 12 {
		return nil, fmt.Errorf("%w: store blob truncated (%d bytes)", ErrCorrupt, len(blob))
	}
	dim := int(binary.LittleEndian.Uint32(blob[0:]))
	nRows := int(binary.LittleEndian.Uint32(blob[4:]))
	nFree := int(binary.LittleEndian.Uint32(blob[8:]))
	if dim != wantDim {
		return nil, fmt.Errorf("%w: store blob dimension %d, meta says %d", ErrCorrupt, dim, wantDim)
	}
	need := 12 + nRows + 8*nRows*dim + 4*nFree
	if nRows < 0 || nFree < 0 || len(blob) != need {
		return nil, fmt.Errorf("%w: store blob is %d bytes, header implies %d", ErrCorrupt, len(blob), need)
	}
	live := make([]bool, nRows)
	off := 12
	for i := range live {
		live[i] = blob[off+i] != 0
	}
	off += nRows
	data := make([]float64, nRows*dim)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[off:]))
		off += 8
	}
	free := make([]uint32, nFree)
	for i := range free {
		free[i] = binary.LittleEndian.Uint32(blob[off:])
		off += 4
	}
	store, err := core.NewPointStoreFromRaw(dim, data, live, free)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return store, nil
}

// ---- user meta ----

type pagedIndexMeta struct {
	normal []float64
	signs  vecmath.SignPattern
	delta  []float64
	meta   *btree.PagedMeta
}

type pagedUserMeta struct {
	dim       int
	blobLen   int64
	blobPages []int64
	indexes   []pagedIndexMeta
}

// buildStore reads the blob page chain and decodes the point store.
func (d *pagedUserMeta) buildStore(f *pager.File) (*core.PointStore, error) {
	if len(d.blobPages) == 0 && d.blobLen == 0 {
		return core.NewPointStore(d.dim)
	}
	blob := make([]byte, 0, d.blobLen)
	buf := make([]byte, pager.PayloadSize)
	remaining := d.blobLen
	for _, p := range d.blobPages {
		typ, err := f.ReadPage(p, buf)
		if err != nil {
			return nil, fmt.Errorf("codec: store blob page %d: %w", p, err)
		}
		if typ != pager.PageBlob {
			return nil, fmt.Errorf("%w: store blob page %d has type %d", ErrCorrupt, p, typ)
		}
		n := int64(pager.PayloadSize)
		if n > remaining {
			n = remaining
		}
		blob = append(blob, buf[:n]...)
		remaining -= n
	}
	if remaining != 0 {
		return nil, fmt.Errorf("%w: store blob pages cover %d of %d bytes", ErrCorrupt, d.blobLen-remaining, d.blobLen)
	}
	return decodeStoreBlob(blob, d.dim)
}

func encodePagedUserMeta(dim int, blobLen int64, blobPages []int64, persists []core.IndexPersist) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, pagedMagic)
	buf = append(buf, pagedVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(blobLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blobPages)))
	for _, p := range blobPages {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(p))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(persists)))
	for _, ix := range persists {
		for _, v := range ix.Normal {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, s := range ix.Signs {
			buf = append(buf, byte(s))
		}
		for _, v := range ix.Delta {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		mb := ix.Meta.AppendTo(nil)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mb)))
		buf = append(buf, mb...)
	}
	return buf
}

func decodePagedUserMeta(buf []byte) (*pagedUserMeta, error) {
	if len(buf) < 21 {
		return nil, fmt.Errorf("%w: paged meta truncated (%d bytes)", ErrCorrupt, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf); m != pagedMagic {
		return nil, fmt.Errorf("%w: bad paged meta magic %08x", ErrCorrupt, m)
	}
	if buf[4] != pagedVersion {
		return nil, fmt.Errorf("codec: unsupported paged meta version %d", buf[4])
	}
	d := &pagedUserMeta{
		dim:     int(binary.LittleEndian.Uint32(buf[5:])),
		blobLen: int64(binary.LittleEndian.Uint64(buf[9:])),
	}
	if d.dim <= 0 || d.dim > 1<<16 || d.blobLen < 0 {
		return nil, fmt.Errorf("%w: implausible paged meta (dim=%d blobLen=%d)", ErrCorrupt, d.dim, d.blobLen)
	}
	rest := buf[17:]
	take := func(n int, what string) ([]byte, error) {
		if n < 0 || len(rest) < n {
			return nil, fmt.Errorf("%w: paged meta %s overruns blob", ErrCorrupt, what)
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}
	b, err := take(4, "blob page count")
	if err != nil {
		return nil, err
	}
	nBlob := int(binary.LittleEndian.Uint32(b))
	if b, err = take(8*nBlob, "blob page list"); err != nil {
		return nil, err
	}
	d.blobPages = make([]int64, nBlob)
	for i := range d.blobPages {
		d.blobPages[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	if b, err = take(4, "index count"); err != nil {
		return nil, err
	}
	nIdx := int(binary.LittleEndian.Uint32(b))
	if nIdx > 1<<16 {
		return nil, fmt.Errorf("%w: implausible index count %d", ErrCorrupt, nIdx)
	}
	d.indexes = make([]pagedIndexMeta, nIdx)
	for i := range d.indexes {
		ix := &d.indexes[i]
		if b, err = take(8*d.dim, "index normal"); err != nil {
			return nil, err
		}
		ix.normal = make([]float64, d.dim)
		for j := range ix.normal {
			ix.normal[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
		}
		if b, err = take(d.dim, "index signs"); err != nil {
			return nil, err
		}
		ix.signs = make(vecmath.SignPattern, d.dim)
		for j := range ix.signs {
			ix.signs[j] = int8(b[j])
		}
		if b, err = take(8*d.dim, "index delta"); err != nil {
			return nil, err
		}
		ix.delta = make([]float64, d.dim)
		for j := range ix.delta {
			ix.delta[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
		}
		if b, err = take(4, "index meta length"); err != nil {
			return nil, err
		}
		mlen := int(binary.LittleEndian.Uint32(b))
		if b, err = take(mlen, "index tree meta"); err != nil {
			return nil, err
		}
		if ix.meta, err = btree.DecodePagedMeta(b); err != nil {
			return nil, fmt.Errorf("%w: index %d: %v", ErrCorrupt, i, err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: paged meta has %d trailing bytes", ErrCorrupt, len(rest))
	}
	return d, nil
}
