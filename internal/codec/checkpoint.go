package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"planar/internal/btree"
	"planar/internal/core"
	"planar/internal/pager"
	"planar/internal/vecmath"
)

// Paged checkpoints. Where Snapshot rewrites the whole state as one
// flat file and rebuilds every index tree on load, a PagedStore keeps
// the state inside a pager.File: the point store travels as fixed-size
// data pages plus a small header chain (read eagerly on open — the
// verification kernels need the rows resident), and each index tree is
// checkpointed as one page per node plus a btree.PagedMeta. Opening is
// therefore pread-lazy for the dominant cost: trees come back in
// paged-arena mode with only their slot metadata in RAM, and node
// pages fault through a shared cache on first touch instead of being
// rebuilt with an O(n log n) bulk load.
//
// Checkpoints are incremental. The row array is chunked into fixed
// 510-float data pages tracked by a manifest in the superblock meta;
// the store marks rows dirty as they are appended or overwritten, and
// Checkpoint copy-on-writes only the data pages those rows touch —
// allocate and write the new page first, free the superseded one
// after, so a failed attempt retried later can never free the same
// page twice. The header (live bitmap + free list, ~1 byte/row) is
// small and rewritten every checkpoint as a fresh chain. Index trees
// were already delta-flushed: paged trees relocate mutated nodes
// copy-on-write and FlushPaged writes just the epoch's dirty set.
// Checkpoint cost is therefore proportional to what changed, not to
// the store; CheckpointFull forces the v1-equivalent full rewrite
// (every data page) for comparison and paranoia.
//
// Page ownership is split two ways. Data pages are owned through the
// manifest and freed individually as they are superseded. Header
// pages and RAM-tree dumps (trees freshly built since the last
// restart, rewritten wholesale each checkpoint) live in the owned
// list, freed when the next checkpoint supersedes them.
//
// Crash safety comes from the pager: nothing here overwrites a page
// reachable from the durable superblock, and Commit publishes the new
// page set atomically. A failed checkpoint leaves the previous one
// bit-identical on disk. The same argument covers the background
// writer a PagedStore can host (StartWriter): it shadow-writes dirty
// tree frames between checkpoints so they become clean and evictable,
// and those pages too are invisible until the superblock flip.

const (
	pagedMagic   = uint32(0x504c4e43) // "PLNC"
	pagedVersion = byte(2)

	// valsPerPage is the float64 capacity of one store data page.
	valsPerPage = pager.PayloadSize / 8
)

// PagedStore is an open paged checkpoint file plus the page cache its
// trees fault through and, optionally, the background writer that
// shadow-flushes dirty tree pages between checkpoints.
//
// Checkpoint/CheckpointFull/DrainWriteback/Close and the field set
// below are serialised by the owner (service.DB holds its write lock
// or calls before publishing the store); Stats and the writer's flush
// callback are safe concurrently.
type PagedStore struct {
	file  *pager.File
	cache *pager.Cache
	dim   int
	// owned is the header-chain and RAM-tree-dump page set of the last
	// committed checkpoint; the next Checkpoint frees it.
	owned []int64
	// dataPages maps data-page index → page number (-1 transiently for
	// pages not yet written). Entry i holds rows' floats
	// [i*valsPerPage, (i+1)*valsPerPage).
	dataPages []int64
	// writer is the optional background page writer; set once by
	// StartWriter before the store is shared.
	writer *pager.Writer

	incrPages atomic.Int64 // pages written by the last checkpoint
	lastCpUs  atomic.Int64 // duration of the last checkpoint, µs
}

// CreatePaged creates a fresh paged checkpoint file for an empty
// dim-dimensional store. cacheBytes sizes the shared page cache (a
// small floor is enforced).
func CreatePaged(path string, dim int, cacheBytes int) (*PagedStore, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("codec: dimension must be positive, got %d", dim)
	}
	meta := encodePagedUserMeta(dim, 0, nil, 0, nil, nil)
	f, err := pager.Create(path, meta, 0)
	if err != nil {
		return nil, err
	}
	return &PagedStore{
		file:  f,
		cache: pager.NewCache(cacheBytes, pager.PayloadSize),
		dim:   dim,
	}, nil
}

// OpenPaged opens an existing paged checkpoint and materialises its
// Multi: the point store is read into RAM, every index is reattached
// with its tree in paged-arena mode. On success the caller owns both
// the returned store (Close it last) and the Multi.
func OpenPaged(path string, cacheBytes int, opts ...core.MultiOption) (*PagedStore, *core.Multi, error) {
	f, err := pager.Open(path)
	if err != nil {
		return nil, nil, err
	}
	ps, m, err := openPagedFile(f, cacheBytes, opts...)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return ps, m, nil
}

func openPagedFile(f *pager.File, cacheBytes int, opts ...core.MultiOption) (*PagedStore, *core.Multi, error) {
	dec, err := decodePagedUserMeta(f.Meta())
	if err != nil {
		return nil, nil, err
	}
	store, err := dec.buildStore(f)
	if err != nil {
		return nil, nil, err
	}
	m, err := core.NewMulti(store, opts...)
	if err != nil {
		return nil, nil, err
	}
	ps := &PagedStore{
		file:      f,
		cache:     pager.NewCache(cacheBytes, pager.PayloadSize),
		dim:       dec.dim,
		owned:     append([]int64(nil), dec.headerPages...),
		dataPages: append([]int64(nil), dec.dataPages...),
	}
	prebuilt := make([]core.PrebuiltIndex, len(dec.indexes))
	for i, ix := range dec.indexes {
		tree, err := btree.OpenPaged(f, ps.cache, ix.meta)
		if err != nil {
			return nil, nil, fmt.Errorf("codec: index %d: %w", i, err)
		}
		prebuilt[i] = core.PrebuiltIndex{
			Normal: ix.normal,
			Signs:  ix.signs,
			Delta:  ix.delta,
			Tree:   tree,
		}
	}
	if err := m.AttachPrebuilt(prebuilt); err != nil {
		return nil, nil, err
	}
	return ps, m, nil
}

// StartWriter attaches a background page writer to the store: flush
// is invoked off the writer goroutine to shadow-write up to maxPages
// dirty frames (service wires it to Multi.WritebackIndexes), both on
// an interval and whenever the cache's dirty-frame count crosses the
// writer's high-water mark. Call once, before the store is shared;
// Close (or the next Close of the owning service) joins the
// goroutine.
func (ps *PagedStore) StartWriter(opts pager.WriterOptions, flush func(maxPages int) (int, error)) {
	o := opts.Resolved()
	ps.writer = pager.NewWriter(o, flush)
	ps.cache.SetPressure(o.HighWater, ps.writer.Kick)
}

// DrainWriteback synchronously flushes every currently dirty tree
// page through the background writer. Checkpoint callers run it
// *before* taking their write lock so the locked section only handles
// the residual dirtied since. No-op without a writer.
func (ps *PagedStore) DrainWriteback() error {
	if ps.writer == nil {
		return nil
	}
	return ps.writer.Drain()
}

// Checkpoint writes m's changes since the previous checkpoint as the
// file's next durable epoch: data pages touched by dirty rows are
// copy-on-written, the header chain is rewritten, every index tree is
// delta-flushed (paged) or dumped (RAM), the superseded pages freed,
// and one atomic pager.Commit carrying lsn publishes it all. The
// caller must exclude concurrent mutations of m for the duration; on
// error the previous checkpoint remains the durable state and nothing
// is unmarked, so a retry covers the same delta.
func (ps *PagedStore) Checkpoint(m *core.Multi, lsn uint64) error {
	start := time.Now()
	store := m.Store()
	if store.Dim() != ps.dim {
		return fmt.Errorf("codec: checkpoint dimension %d into a %d-dimensional paged store", store.Dim(), ps.dim)
	}
	dataWritten, err := ps.flushDataPages(store)
	if err != nil {
		return err
	}
	persists, err := m.CheckpointIndexes(ps.file)
	if err != nil {
		return err
	}
	header := encodeStoreHeader(store)
	headerPages, err := ps.writeChain(header)
	if err != nil {
		return err
	}
	newOwned := append([]int64(nil), headerPages...)
	for _, p := range persists {
		if p.Owned {
			newOwned = p.Meta.Pages(newOwned)
		}
	}
	data, _ := store.RawRows()
	meta := encodePagedUserMeta(ps.dim, int64(len(data)), ps.dataPages, int64(len(header)), headerPages, persists)

	// Free the superseded page set exactly once: ps.owned is cleared
	// before Commit so a failed commit retried later cannot double-free
	// (the freed pages only become allocatable after a commit succeeds,
	// which also publishes the meta that no longer references them).
	olds := ps.owned
	ps.owned = nil
	for _, p := range olds {
		ps.file.Free(p)
	}
	if err := ps.file.Commit(meta, lsn); err != nil {
		return err
	}
	ps.owned = newOwned
	store.ResetDirty()
	pages := dataWritten + len(headerPages)
	for _, p := range persists {
		pages += p.DeltaPages
	}
	ps.incrPages.Store(int64(pages))
	ps.lastCpUs.Store(time.Since(start).Microseconds())
	return nil
}

// CheckpointFull marks every row dirty first, forcing Checkpoint to
// rewrite the complete data-page set — the v1 full-flush behaviour.
// The incremental path must recover byte-identical state; this is the
// baseline it is benchmarked (and golden-tested) against.
func (ps *PagedStore) CheckpointFull(m *core.Multi, lsn uint64) error {
	m.Store().MarkAllDirty()
	return ps.Checkpoint(m, lsn)
}

// flushDataPages copy-on-writes every data page touched by a dirty
// row (and writes pages the manifest does not cover yet, from store
// growth). New page first, free the old one after: a failed write
// leaves the manifest on the old page and leaks only the fresh
// allocation until reopen, never a double free.
func (ps *PagedStore) flushDataPages(store *core.PointStore) (int, error) {
	data, _ := store.RawRows()
	need := (len(data) + valsPerPage - 1) / valsPerPage
	for len(ps.dataPages) < need {
		ps.dataPages = append(ps.dataPages, -1)
	}
	mark := make([]bool, need)
	dim := ps.dim
	store.EachDirtyRow(func(row int) {
		lo := row * dim / valsPerPage
		hi := ((row+1)*dim - 1) / valsPerPage
		for i := lo; i <= hi && i < need; i++ {
			mark[i] = true
		}
	})
	for i := 0; i < need; i++ {
		if ps.dataPages[i] < 0 {
			mark[i] = true
		}
	}
	written := 0
	var buf [pager.PageSize]byte
	for i := 0; i < need; i++ {
		if !mark[i] {
			continue
		}
		lo := i * valsPerPage
		hi := lo + valsPerPage
		if hi > len(data) {
			hi = len(data)
		}
		b := buf[:8*(hi-lo)]
		for j, v := range data[lo:hi] {
			binary.LittleEndian.PutUint64(b[8*j:], math.Float64bits(v))
		}
		np := ps.file.Alloc()
		if err := ps.file.WritePage(np, pager.PageBlob, b); err != nil {
			return written, err
		}
		if old := ps.dataPages[i]; old >= 0 {
			ps.file.Free(old)
		}
		ps.dataPages[i] = np
		written++
	}
	return written, nil
}

// writeChain chunks blob into freshly allocated PageBlob pages.
func (ps *PagedStore) writeChain(blob []byte) ([]int64, error) {
	var pages []int64
	for off := 0; off < len(blob); off += pager.PayloadSize {
		end := off + pager.PayloadSize
		if end > len(blob) {
			end = len(blob)
		}
		p := ps.file.Alloc()
		if err := ps.file.WritePage(p, pager.PageBlob, blob[off:end]); err != nil {
			return nil, err
		}
		pages = append(pages, p)
	}
	return pages, nil
}

// PageTierStats is the observable state of one paged store: cache and
// writer counters plus file size and the durable checkpoint position.
// Sharded deployments aggregate one per partition with Add.
type PageTierStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Resident      int // frames currently resident
	Target        int // soft cache capacity in frames
	DirtyFrames   int // resident frames awaiting writeback
	DirtySkips    uint64
	SoftOverflows uint64
	Pages         int64
	CheckpointLSN uint64

	WritebackPages   uint64  // pages shadow-written by the background writer
	WritebackBytes   uint64  // bytes ditto
	WritebackErrors  uint64  // writer flush rounds that failed
	IncrementalPages int64   // pages the last checkpoint wrote
	LastCheckpointMs float64 // duration of the last checkpoint
}

// HitRatio returns hits/(hits+misses), or 0 before any access.
func (s PageTierStats) HitRatio() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Add merges another store's counters (sizes sum; the checkpoint LSN
// and last-checkpoint duration keep the maximum).
func (s PageTierStats) Add(o PageTierStats) PageTierStats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Resident += o.Resident
	s.Target += o.Target
	s.DirtyFrames += o.DirtyFrames
	s.DirtySkips += o.DirtySkips
	s.SoftOverflows += o.SoftOverflows
	s.Pages += o.Pages
	if o.CheckpointLSN > s.CheckpointLSN {
		s.CheckpointLSN = o.CheckpointLSN
	}
	s.WritebackPages += o.WritebackPages
	s.WritebackBytes += o.WritebackBytes
	s.WritebackErrors += o.WritebackErrors
	s.IncrementalPages += o.IncrementalPages
	if o.LastCheckpointMs > s.LastCheckpointMs {
		s.LastCheckpointMs = o.LastCheckpointMs
	}
	return s
}

// Stats snapshots the store's page-tier counters.
func (ps *PagedStore) Stats() PageTierStats {
	cs := ps.cache.Stats()
	st := PageTierStats{
		Hits:             cs.Hits,
		Misses:           cs.Misses,
		Evictions:        cs.Evictions,
		Resident:         cs.Resident,
		Target:           cs.Target,
		DirtyFrames:      cs.DirtyFrames,
		DirtySkips:       cs.DirtySkips,
		SoftOverflows:    cs.SoftOverflows,
		Pages:            ps.file.NumPages(),
		CheckpointLSN:    ps.file.CheckpointLSN(),
		IncrementalPages: ps.incrPages.Load(),
		LastCheckpointMs: float64(ps.lastCpUs.Load()) / 1000,
	}
	if ps.writer != nil {
		ws := ps.writer.Stats()
		st.WritebackPages = ws.Pages
		st.WritebackBytes = ws.Bytes
		st.WritebackErrors = ws.Errors
	}
	return st
}

// Cache returns the shared page cache (trees opened from this store
// fault through it).
func (ps *PagedStore) Cache() *pager.Cache { return ps.cache }

// CacheStats returns the page cache counters.
func (ps *PagedStore) CacheStats() pager.CacheStats { return ps.cache.Stats() }

// CheckpointLSN returns the WAL LSN the durable checkpoint covers;
// replay resumes after it.
func (ps *PagedStore) CheckpointLSN() uint64 { return ps.file.CheckpointLSN() }

// NumPages returns the page-file length in pages.
func (ps *PagedStore) NumPages() int64 { return ps.file.NumPages() }

// Path returns the page file's path.
func (ps *PagedStore) Path() string { return ps.file.Path() }

// Dim returns the store dimensionality recorded in the file.
func (ps *PagedStore) Dim() int { return ps.dim }

// Close stops the background writer (if any) and closes the
// underlying page file. Trees opened from this store must not be used
// afterwards.
func (ps *PagedStore) Close() error {
	if ps.writer != nil {
		ps.writer.Close()
		ps.writer = nil
	}
	return ps.file.Close()
}

// ---- store header ----

// encodeStoreHeader serialises everything about the point store
// except the row data (which lives in the data pages): dim, row/free
// counts, live bitmap, free list. Integrity is the pager's per-page
// CRC; the header carries no extra checksum.
func encodeStoreHeader(store *core.PointStore) []byte {
	_, live := store.RawRows()
	free := store.FreeList()
	buf := make([]byte, 0, 12+len(live)+4*len(free))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(store.Dim()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(live)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(free)))
	for _, lv := range live {
		b := byte(0)
		if lv {
			b = 1
		}
		buf = append(buf, b)
	}
	for _, id := range free {
		buf = binary.LittleEndian.AppendUint32(buf, id)
	}
	return buf
}

func decodeStoreHeader(blob []byte, wantDim int) (live []bool, free []uint32, err error) {
	if len(blob) < 12 {
		return nil, nil, fmt.Errorf("%w: store header truncated (%d bytes)", ErrCorrupt, len(blob))
	}
	dim := int(binary.LittleEndian.Uint32(blob[0:]))
	nRows := int(binary.LittleEndian.Uint32(blob[4:]))
	nFree := int(binary.LittleEndian.Uint32(blob[8:]))
	if dim != wantDim {
		return nil, nil, fmt.Errorf("%w: store header dimension %d, meta says %d", ErrCorrupt, dim, wantDim)
	}
	need := 12 + nRows + 4*nFree
	if nRows < 0 || nFree < 0 || len(blob) != need {
		return nil, nil, fmt.Errorf("%w: store header is %d bytes, counts imply %d", ErrCorrupt, len(blob), need)
	}
	live = make([]bool, nRows)
	off := 12
	for i := range live {
		live[i] = blob[off+i] != 0
	}
	off += nRows
	free = make([]uint32, nFree)
	for i := range free {
		free[i] = binary.LittleEndian.Uint32(blob[off:])
		off += 4
	}
	return live, free, nil
}

// ---- user meta ----

type pagedIndexMeta struct {
	normal []float64
	signs  vecmath.SignPattern
	delta  []float64
	meta   *btree.PagedMeta
}

type pagedUserMeta struct {
	dim         int
	dataLen     int64 // float64 count across all data pages
	dataPages   []int64
	headerLen   int64
	headerPages []int64
	indexes     []pagedIndexMeta
}

// readChain reads a page chain written by writeChain back into one
// blob of the given length.
func readChain(f *pager.File, pages []int64, length int64, what string) ([]byte, error) {
	blob := make([]byte, 0, length)
	buf := make([]byte, pager.PayloadSize)
	remaining := length
	for _, p := range pages {
		typ, err := f.ReadPage(p, buf)
		if err != nil {
			return nil, fmt.Errorf("codec: %s page %d: %w", what, p, err)
		}
		if typ != pager.PageBlob {
			return nil, fmt.Errorf("%w: %s page %d has type %d", ErrCorrupt, what, p, typ)
		}
		n := int64(pager.PayloadSize)
		if n > remaining {
			n = remaining
		}
		blob = append(blob, buf[:n]...)
		remaining -= n
	}
	if remaining != 0 {
		return nil, fmt.Errorf("%w: %s pages cover %d of %d bytes", ErrCorrupt, what, length-remaining, length)
	}
	return blob, nil
}

// buildStore reads the header chain and data pages and reconstructs
// the point store.
func (d *pagedUserMeta) buildStore(f *pager.File) (*core.PointStore, error) {
	if len(d.headerPages) == 0 && d.headerLen == 0 && d.dataLen == 0 {
		return core.NewPointStore(d.dim)
	}
	header, err := readChain(f, d.headerPages, d.headerLen, "store header")
	if err != nil {
		return nil, err
	}
	live, free, err := decodeStoreHeader(header, d.dim)
	if err != nil {
		return nil, err
	}
	if d.dataLen != int64(len(live))*int64(d.dim) {
		return nil, fmt.Errorf("%w: data length %d does not match %d rows of dimension %d", ErrCorrupt, d.dataLen, len(live), d.dim)
	}
	wantPages := int((d.dataLen + valsPerPage - 1) / valsPerPage)
	if len(d.dataPages) != wantPages {
		return nil, fmt.Errorf("%w: manifest has %d data pages, %d floats need %d", ErrCorrupt, len(d.dataPages), d.dataLen, wantPages)
	}
	data := make([]float64, d.dataLen)
	buf := make([]byte, pager.PayloadSize)
	for i, p := range d.dataPages {
		typ, err := f.ReadPage(p, buf)
		if err != nil {
			return nil, fmt.Errorf("codec: store data page %d (#%d): %w", p, i, err)
		}
		if typ != pager.PageBlob {
			return nil, fmt.Errorf("%w: store data page %d has type %d", ErrCorrupt, p, typ)
		}
		lo := i * valsPerPage
		hi := lo + valsPerPage
		if hi > len(data) {
			hi = len(data)
		}
		for j := lo; j < hi; j++ {
			data[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*(j-lo):]))
		}
	}
	store, err := core.NewPointStoreFromRaw(d.dim, data, live, free)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return store, nil
}

func encodePagedUserMeta(dim int, dataLen int64, dataPages []int64, headerLen int64, headerPages []int64, persists []core.IndexPersist) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, pagedMagic)
	buf = append(buf, pagedVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(dataLen))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(headerLen))
	app64 := func(s []int64) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		for _, p := range s {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(p))
		}
	}
	app64(dataPages)
	app64(headerPages)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(persists)))
	for _, ix := range persists {
		for _, v := range ix.Normal {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		for _, s := range ix.Signs {
			buf = append(buf, byte(s))
		}
		for _, v := range ix.Delta {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		mb := ix.Meta.AppendTo(nil)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(mb)))
		buf = append(buf, mb...)
	}
	return buf
}

func decodePagedUserMeta(buf []byte) (*pagedUserMeta, error) {
	if len(buf) < 25 {
		return nil, fmt.Errorf("%w: paged meta truncated (%d bytes)", ErrCorrupt, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf); m != pagedMagic {
		return nil, fmt.Errorf("%w: bad paged meta magic %08x", ErrCorrupt, m)
	}
	if buf[4] != pagedVersion {
		return nil, fmt.Errorf("codec: unsupported paged meta version %d", buf[4])
	}
	d := &pagedUserMeta{
		dim:       int(binary.LittleEndian.Uint32(buf[5:])),
		dataLen:   int64(binary.LittleEndian.Uint64(buf[9:])),
		headerLen: int64(binary.LittleEndian.Uint64(buf[17:])),
	}
	if d.dim <= 0 || d.dim > 1<<16 || d.dataLen < 0 || d.headerLen < 0 {
		return nil, fmt.Errorf("%w: implausible paged meta (dim=%d dataLen=%d headerLen=%d)", ErrCorrupt, d.dim, d.dataLen, d.headerLen)
	}
	rest := buf[25:]
	take := func(n int, what string) ([]byte, error) {
		if n < 0 || len(rest) < n {
			return nil, fmt.Errorf("%w: paged meta %s overruns blob", ErrCorrupt, what)
		}
		b := rest[:n]
		rest = rest[n:]
		return b, nil
	}
	take64 := func(what string) ([]int64, error) {
		b, err := take(4, what+" count")
		if err != nil {
			return nil, err
		}
		n := int(binary.LittleEndian.Uint32(b))
		if b, err = take(8*n, what+" list"); err != nil {
			return nil, err
		}
		s := make([]int64, n)
		for i := range s {
			s[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return s, nil
	}
	var err error
	if d.dataPages, err = take64("data page"); err != nil {
		return nil, err
	}
	if d.headerPages, err = take64("header page"); err != nil {
		return nil, err
	}
	b, err := take(4, "index count")
	if err != nil {
		return nil, err
	}
	nIdx := int(binary.LittleEndian.Uint32(b))
	if nIdx > 1<<16 {
		return nil, fmt.Errorf("%w: implausible index count %d", ErrCorrupt, nIdx)
	}
	d.indexes = make([]pagedIndexMeta, nIdx)
	for i := range d.indexes {
		ix := &d.indexes[i]
		if b, err = take(8*d.dim, "index normal"); err != nil {
			return nil, err
		}
		ix.normal = make([]float64, d.dim)
		for j := range ix.normal {
			ix.normal[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
		}
		if b, err = take(d.dim, "index signs"); err != nil {
			return nil, err
		}
		ix.signs = make(vecmath.SignPattern, d.dim)
		for j := range ix.signs {
			ix.signs[j] = int8(b[j])
		}
		if b, err = take(8*d.dim, "index delta"); err != nil {
			return nil, err
		}
		ix.delta = make([]float64, d.dim)
		for j := range ix.delta {
			ix.delta[j] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*j:]))
		}
		if b, err = take(4, "index meta length"); err != nil {
			return nil, err
		}
		mlen := int(binary.LittleEndian.Uint32(b))
		if b, err = take(mlen, "index tree meta"); err != nil {
			return nil, err
		}
		if ix.meta, err = btree.DecodePagedMeta(b); err != nil {
			return nil, fmt.Errorf("%w: index %d: %v", ErrCorrupt, i, err)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: paged meta has %d trailing bytes", ErrCorrupt, len(rest))
	}
	return d, nil
}
