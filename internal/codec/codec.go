// Package codec persists point stores and planar index
// configurations as compact binary snapshots with CRC-32 integrity
// checks, so large φ-materialisations (e.g. millions of
// moving-object pairs) survive process restarts without
// recomputation. The snapshot preserves the store's exact row layout
// — including dead rows and the id recycling order — so point
// identifiers remain stable, which write-ahead-log replay (package
// wal) depends on. Index trees are rebuilt on load: bulk loading is
// loglinear and avoids versioning the tree layout.
package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// Snapshot is the serialisable state of a point store plus the
// normals/octants of the planar indexes built over it. Data holds
// every allocated row (row-major, dead rows included); Live marks
// which rows hold points; Free is the id recycling order.
type Snapshot struct {
	Dim     int
	Data    []float64
	Live    []bool
	Free    []uint32
	Indexes []IndexSpec
}

// IndexSpec records one planar index's configuration.
type IndexSpec struct {
	Normal []float64
	Signs  vecmath.SignPattern
}

const (
	magic   = uint32(0x504c4e52) // "PLNR"
	version = uint32(2)
)

// ErrCorrupt reports a failed checksum or malformed snapshot.
var ErrCorrupt = errors.New("codec: corrupt snapshot")

// NumRows returns the number of allocated rows (live + dead).
func (s *Snapshot) NumRows() int { return len(s.Live) }

// NumLive returns the number of live points.
func (s *Snapshot) NumLive() int {
	n := 0
	for _, lv := range s.Live {
		if lv {
			n++
		}
	}
	return n
}

// Capture builds a Snapshot of a Multi's store layout and index
// configurations.
func Capture(m *core.Multi) *Snapshot {
	s := &Snapshot{Dim: m.Store().Dim()}
	s.Data, s.Live, s.Free = m.Store().Raw()
	for i := 0; i < m.NumIndexes(); i++ {
		ix := m.Index(i)
		s.Indexes = append(s.Indexes, IndexSpec{Normal: ix.Normal(), Signs: ix.Signs()})
	}
	return s
}

// Restore rebuilds a store and Multi from the snapshot. Point ids
// match the captured store exactly. The snapshot's indexes are
// materialised through core.AddNormals, which bulk-loads their
// arenas in parallel — shard recovery restores every partition's
// full index set through this path.
func (s *Snapshot) Restore(opts ...core.MultiOption) (*core.Multi, error) {
	store, err := core.NewPointStoreFromRaw(s.Dim, s.Data, s.Live, s.Free)
	if err != nil {
		return nil, err
	}
	m, err := core.NewMulti(store, opts...)
	if err != nil {
		return nil, err
	}
	specs := make([]core.NormalSpec, len(s.Indexes))
	for i, spec := range s.Indexes {
		specs[i] = core.NormalSpec{Normal: spec.Normal, Signs: spec.Signs}
	}
	if _, err := m.AddNormals(specs); err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return m, nil
}

// Write serialises the snapshot: magic, then a CRC-protected body of
// version, dim, row/free/index counts, live bitmap, row data, free
// list and index specs, followed by the CRC-32 trailer.
func (s *Snapshot) Write(w io.Writer) error {
	if s.Dim <= 0 {
		return errors.New("codec: snapshot dimension must be positive")
	}
	if len(s.Data) != len(s.Live)*s.Dim {
		return fmt.Errorf("codec: data has %d values for %d rows of dimension %d",
			len(s.Data), len(s.Live), s.Dim)
	}
	if err := binary.Write(w, binary.LittleEndian, magic); err != nil {
		return err
	}
	h := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, h))

	put32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	putF := func(v float64) error {
		return binary.Write(bw, binary.LittleEndian, math.Float64bits(v))
	}

	if err := put32(version); err != nil {
		return err
	}
	if err := put32(uint32(s.Dim)); err != nil {
		return err
	}
	if err := put32(uint32(len(s.Live))); err != nil {
		return err
	}
	if err := put32(uint32(len(s.Free))); err != nil {
		return err
	}
	if err := put32(uint32(len(s.Indexes))); err != nil {
		return err
	}
	for _, lv := range s.Live {
		b := byte(0)
		if lv {
			b = 1
		}
		if err := bw.WriteByte(b); err != nil {
			return err
		}
	}
	for _, v := range s.Data {
		if err := putF(v); err != nil {
			return err
		}
	}
	for _, id := range s.Free {
		if err := put32(id); err != nil {
			return err
		}
	}
	for i, spec := range s.Indexes {
		if len(spec.Normal) != s.Dim || len(spec.Signs) != s.Dim {
			return fmt.Errorf("codec: index %d spec has wrong dimension", i)
		}
		for _, v := range spec.Normal {
			if err := putF(v); err != nil {
				return err
			}
		}
		for _, sg := range spec.Signs {
			if err := bw.WriteByte(byte(sg)); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// hashingReader updates a checksum with every byte the caller
// actually consumes. Buffered read-ahead happens *below* this
// wrapper, so the hash never sees unconsumed trailer bytes.
type hashingReader struct {
	r io.Reader
	h io.Writer
}

func (hr hashingReader) Read(p []byte) (int, error) {
	n, err := hr.r.Read(p)
	if n > 0 {
		hr.h.Write(p[:n])
	}
	return n, err
}

// Read deserialises and verifies a snapshot.
func Read(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("codec: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %08x", ErrCorrupt, m)
	}
	h := crc32.NewIEEE()
	hr := hashingReader{r: br, h: h}

	get32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(hr, binary.LittleEndian, &v)
		return v, err
	}
	getF := func() (float64, error) {
		var b uint64
		err := binary.Read(hr, binary.LittleEndian, &b)
		return math.Float64frombits(b), err
	}

	ver, err := get32()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("codec: unsupported version %d", ver)
	}
	dim32, err := get32()
	if err != nil {
		return nil, err
	}
	nRows, err := get32()
	if err != nil {
		return nil, err
	}
	nFree, err := get32()
	if err != nil {
		return nil, err
	}
	nIdx, err := get32()
	if err != nil {
		return nil, err
	}
	const sanity = 1 << 28
	if dim32 == 0 || dim32 > 1<<16 || nRows > sanity || nFree > nRows || nIdx > 1<<16 {
		return nil, fmt.Errorf("%w: implausible header (dim=%d rows=%d free=%d idx=%d)",
			ErrCorrupt, dim32, nRows, nFree, nIdx)
	}
	s := &Snapshot{Dim: int(dim32)}
	s.Live = make([]bool, nRows)
	buf := make([]byte, 1)
	for i := range s.Live {
		if _, err := io.ReadFull(hr, buf); err != nil {
			return nil, fmt.Errorf("codec: live bitmap: %w", err)
		}
		s.Live[i] = buf[0] != 0
	}
	s.Data = make([]float64, int(nRows)*s.Dim)
	for i := range s.Data {
		if s.Data[i], err = getF(); err != nil {
			return nil, fmt.Errorf("codec: row data: %w", err)
		}
	}
	s.Free = make([]uint32, nFree)
	for i := range s.Free {
		if s.Free[i], err = get32(); err != nil {
			return nil, fmt.Errorf("codec: free list: %w", err)
		}
	}
	for i := uint32(0); i < nIdx; i++ {
		spec := IndexSpec{
			Normal: make([]float64, s.Dim),
			Signs:  make(vecmath.SignPattern, s.Dim),
		}
		for j := range spec.Normal {
			if spec.Normal[j], err = getF(); err != nil {
				return nil, fmt.Errorf("codec: index %d: %w", i, err)
			}
		}
		for j := range spec.Signs {
			var b int8
			if err := binary.Read(hr, binary.LittleEndian, &b); err != nil {
				return nil, fmt.Errorf("codec: index %d signs: %w", i, err)
			}
			spec.Signs[j] = b
		}
		s.Indexes = append(s.Indexes, spec)
	}
	want := h.Sum32()
	// The checksum trailer is read below the hashing wrapper so it
	// does not hash itself.
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("codec: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return s, nil
}

// Save writes the snapshot to a file atomically: the bytes land in a
// temp file that is synced and renamed over path, so a crash mid-save
// leaves any previous snapshot intact rather than a torn file.
func (s *Snapshot) Save(path string) error {
	return atomicWriteFile(path, func(f *os.File) error { return s.Write(f) })
}

// Load reads a snapshot from a file.
func Load(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
