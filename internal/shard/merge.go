package shard

import (
	"sort"

	"planar/internal/core"
)

// MergeStats rolls one query's per-shard pipeline stats up into a
// single Stats: interval counters and stage times sum (the totals are
// cumulative work across shards, not wall clock), FellBack reports
// any shard scanning, CacheHit reports every shard's plan coming from
// its cache, and IndexUsed survives only when all shards selected the
// same index position (the usual case — shards share one index
// configuration — but interval sizes are data-dependent, so they may
// legitimately disagree).
func MergeStats(sts []core.Stats) core.Stats {
	if len(sts) == 0 {
		return core.Stats{}
	}
	out := core.Stats{IndexUsed: sts[0].IndexUsed, CacheHit: true}
	for _, st := range sts {
		out.N += st.N
		out.Accepted += st.Accepted
		out.Verified += st.Verified
		out.Matched += st.Matched
		out.Rejected += st.Rejected
		out.PlanNanos += st.PlanNanos
		out.ExecNanos += st.ExecNanos
		if st.FellBack {
			out.FellBack = true
		}
		if !st.CacheHit {
			out.CacheHit = false
		}
		if st.IndexUsed != out.IndexUsed {
			out.IndexUsed = -1
		}
		if st.Workers > out.Workers {
			out.Workers = st.Workers
		}
	}
	return out
}

// mergeIDs flattens per-shard global id sets into one ascending-id
// answer. Sorting makes the scatter-gather result deterministic
// regardless of shard count and gather order.
func mergeIDs(parts [][]uint32) []uint32 {
	total := 0
	for _, ids := range parts {
		total += len(ids)
	}
	if total == 0 {
		return nil
	}
	out := make([]uint32, 0, total)
	for _, ids := range parts {
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mergeTopK k-way merges per-shard top-k answers. Each shard already
// applied the Claim-3 cut-off to its own smaller interval, so each
// part is a correct local top-k; the global top-k is the k best of
// their union, ordered by (distance, id) — the same tie-break the
// single-store pipeline uses.
func mergeTopK(parts [][]core.Result, k int) []core.Result {
	total := 0
	for _, rs := range parts {
		total += len(rs)
	}
	if total == 0 {
		return nil
	}
	all := make([]core.Result, 0, total)
	for _, rs := range parts {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance { //nolint:floatkey // sort tie-break: tolerance would violate strict weak ordering
			return all[i].Distance < all[j].Distance
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
