package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"planar/internal/codec"
	"planar/internal/core"
	"planar/internal/ingest"
	"planar/internal/replog"
	"planar/internal/vecmath"
	"planar/internal/wal"
)

// metaFile records the shard count and dimensionality at the root of
// a sharded data directory, so reopening never needs them respecified
// and a mismatched -shards flag is caught instead of silently
// resharding.
const metaFile = "shards.meta"

// Options configures a Store.
type Options struct {
	// Shards is the number of hash partitions. Required (≥ 1) when
	// creating a fresh store; validated against the directory's meta
	// file otherwise (0 adopts the stored count).
	Shards int
	// Dim is the φ dimensionality; required when creating a fresh
	// store, validated against the meta file otherwise.
	Dim int
	// SyncEveryWrite fsyncs a shard's log after each mutation.
	SyncEveryWrite bool
	// CheckpointEvery triggers an automatic per-shard checkpoint after
	// this many mutations on that shard (0 disables).
	CheckpointEvery int
	// MultiOptions configure every shard's Multi (selection heuristic,
	// fallback, guard band, plan cache).
	MultiOptions []core.MultiOption
	// Fanout bounds how many shards one query executes on
	// concurrently. 0 means min(Shards, GOMAXPROCS).
	Fanout int
	// RingSize bounds the in-memory tail of committed records kept
	// for replication streaming (0 = replog.DefaultRingSize).
	RingSize int
	// Paged selects the disk-paged storage tier for every shard (see
	// service.Options.Paged). Shard directories holding page files
	// reopen paged regardless.
	Paged bool
	// PageCacheBytes is the store-wide page-cache budget, split evenly
	// across shards (each shard enforces a small floor).
	PageCacheBytes int
	// WritebackInterval is each shard's background page-writer cadence
	// (0 = a 25ms default; see service.Options.WritebackInterval).
	WritebackInterval time.Duration
	// WritebackBatchPages bounds pages flushed per writer round
	// (0 = 128).
	WritebackBatchPages int
	// DisableWriteback turns the per-shard background writers off.
	DisableWriteback bool
	// FullCheckpoints forces full store-page rewrites at every paged
	// checkpoint instead of the delta since the last one.
	FullCheckpoints bool
}

// Store is a hash-partitioned collection of planar index shards with
// scatter-gather query execution. Global point ids are dense across
// the store: global id g lives on shard g mod N as local id g div N.
// All methods are safe for concurrent use; mutations lock only the
// owning shard.
type Store struct {
	parts  []*partition
	fanout int
	dir    string // "" for an ephemeral store
	rr     atomic.Uint64
	seq    *replog.Sequencer
}

// IsSharded reports whether dir holds a sharded store (its meta file
// exists). It is how service.Open decides which mode to reopen in.
func IsSharded(dir string) bool {
	if dir == "" {
		return false
	}
	_, err := os.Stat(filepath.Join(dir, metaFile))
	return err == nil
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// Dir returns the directory of shard i under a sharded store root —
// the layout contract replica bootstrap materialises into.
func Dir(root string, i int) string { return shardDir(root, i) }

// WriteLayout initialises an empty sharded directory (root dir,
// per-shard dirs, meta file) without opening a store. Replica
// bootstrap uses it to lay down a primary's topology before filling
// in the streamed snapshots.
func WriteLayout(dir string, shards, dim int) error {
	if shards <= 0 || dim <= 0 {
		return fmt.Errorf("shard: layout needs shards=%d dim=%d positive", shards, dim)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i := 0; i < shards; i++ {
		if err := os.MkdirAll(shardDir(dir, i), 0o755); err != nil {
			return err
		}
	}
	return writeMeta(filepath.Join(dir, metaFile), shards, dim)
}

// readMeta parses the meta file's "shards=N dim=D" line.
func readMeta(path string) (shards, dim int, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if _, err := fmt.Sscanf(string(b), "shards=%d dim=%d", &shards, &dim); err != nil {
		return 0, 0, fmt.Errorf("shard: malformed meta file %s: %w", path, err)
	}
	if shards <= 0 || dim <= 0 {
		return 0, 0, fmt.Errorf("shard: meta file %s has shards=%d dim=%d", path, shards, dim)
	}
	return shards, dim, nil
}

// writeMeta persists the meta file atomically (write-temp, sync,
// rename) so a crash during creation never leaves a half-written
// configuration.
func writeMeta(path string, shards, dim int) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "shards=%d dim=%d\n", shards, dim); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Open restores (or initialises) a sharded store in dir. An empty dir
// creates an ephemeral store with no durability — the configuration
// used by benchmarks and tests. Crash recovery opens every shard in
// parallel: each shard independently loads its snapshot and replays
// its own WAL segment.
func Open(dir string, opts Options) (*Store, error) {
	n, dim := opts.Shards, opts.Dim
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		metaPath := filepath.Join(dir, metaFile)
		if stored, storedDim, err := readMeta(metaPath); err == nil {
			if n != 0 && n != stored {
				return nil, fmt.Errorf("shard: directory has %d shards, options say %d (resharding is not supported)", stored, n)
			}
			if dim != 0 && dim != storedDim {
				return nil, fmt.Errorf("shard: directory dimension %d, options say %d", storedDim, dim)
			}
			n, dim = stored, storedDim
		} else if errors.Is(err, os.ErrNotExist) {
			if n <= 0 {
				return nil, errors.New("shard: Shards required to create a fresh sharded store")
			}
			if dim <= 0 {
				return nil, errors.New("shard: Dim required to create a fresh sharded store")
			}
			if err := writeMeta(metaPath, n, dim); err != nil {
				return nil, err
			}
		} else {
			return nil, err
		}
	} else {
		if n <= 0 {
			n = 1
		}
		if dim <= 0 {
			return nil, errors.New("shard: Dim required for an ephemeral store")
		}
	}

	fanout := opts.Fanout
	if fanout <= 0 {
		fanout = runtime.GOMAXPROCS(0)
	}
	if fanout > n {
		fanout = n
	}
	s := &Store{parts: make([]*partition, n), fanout: fanout, dir: dir}

	// The page-cache budget is store-wide; each shard gets an equal
	// slice (the per-shard cache enforces its own floor).
	opts.PageCacheBytes /= n

	// Shards recover independently, so open them in parallel: each
	// goroutine loads one snapshot and replays one WAL segment.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pdir := ""
			if dir != "" {
				pdir = shardDir(dir, i)
			}
			s.parts[i], errs[i] = openPartition(pdir, dim, opts)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			s.Close() // release shards that did open
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}

	// The commit sequence resumes one past the highest LSN any shard
	// has journaled (each segment's header pins the position even
	// when the segment is empty).
	next := uint64(1)
	for _, p := range s.parts {
		if n := p.nextLSN(); n > next {
			next = n
		}
	}
	s.seq = replog.NewSequencer(next, opts.RingSize)
	for i, p := range s.parts {
		p.seq = s.seq
		idx := uint32(i)
		p.gid = func(local uint32) uint32 { return local*uint32(n) + idx }
	}
	return s, nil
}

// Seq exposes the store-wide commit sequencer — the LSN authority and
// in-memory replication tail shared by every partition.
func (s *Store) Seq() *replog.Sequencer { return s.seq }

// NumShards returns the number of partitions.
func (s *Store) NumShards() int { return len(s.parts) }

// Dim returns the φ dimensionality.
func (s *Store) Dim() int { return s.parts[0].multi.Store().Dim() }

// shardOf routes a global id to its owning shard and local id.
func (s *Store) shardOf(gid uint32) (shardIdx int, local uint32) {
	n := uint32(len(s.parts))
	return int(gid % n), gid / n
}

// globalID is the inverse mapping: the global id of a shard-local id.
func (s *Store) globalID(shardIdx int, local uint32) uint32 {
	return local*uint32(len(s.parts)) + uint32(shardIdx)
}

// globalize rewrites a shard's local ids to global ids in place.
func (s *Store) globalize(ids []uint32, shardIdx int) []uint32 {
	n, off := uint32(len(s.parts)), uint32(shardIdx)
	for i, id := range ids {
		ids[i] = id*n + off
	}
	return ids
}

// scatter runs fn once per shard on a worker pool bounded by the
// store's fanout, returning the first error. A single-shard store
// runs inline — no goroutine, no pool.
func (s *Store) scatter(fn func(shardIdx int) error) error {
	if len(s.parts) == 1 {
		return fn(0)
	}
	// With no concurrency budget there is nothing to overlap — visit
	// the shards sequentially and skip the goroutine machinery.
	if s.fanout <= 1 {
		for i := range s.parts {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, s.fanout)
	errs := make([]error, len(s.parts))
	var wg sync.WaitGroup
	for i := range s.parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
			<-sem
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of live points across all shards.
func (s *Store) Len() int {
	total := 0
	for _, p := range s.parts {
		p.mu.RLock()
		total += p.multi.Store().Len()
		p.mu.RUnlock()
	}
	return total
}

// NumIndexes returns the number of planar indexes per shard (every
// shard holds the same index configuration).
func (s *Store) NumIndexes() int {
	p := s.parts[0]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.multi.NumIndexes()
}

// MemoryBytes returns the approximate footprint of all shards.
func (s *Store) MemoryBytes() int {
	total := 0
	for _, p := range s.parts {
		p.mu.RLock()
		total += p.multi.MemoryBytes()
		p.mu.RUnlock()
	}
	return total
}

// PlanCacheCounters sums every shard's plan-cache hit and miss
// counts.
func (s *Store) PlanCacheCounters() (hits, misses uint64) {
	for _, p := range s.parts {
		h, m := p.multi.PlanCacheCounters()
		hits += h
		misses += m
	}
	return hits, misses
}

// Live reports whether a global id names a live point.
func (s *Store) Live(gid uint32) bool {
	si, local := s.shardOf(gid)
	p := s.parts[si]
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.multi.Store().Live(local)
}

// Vector returns a copy of a live point's φ vector.
func (s *Store) Vector(gid uint32) ([]float64, error) {
	si, local := s.shardOf(gid)
	p := s.parts[si]
	p.mu.RLock()
	defer p.mu.RUnlock()
	if !p.multi.Store().Live(local) {
		return nil, fmt.Errorf("shard: point %d is not live", gid)
	}
	return vecmath.Clone(p.multi.Store().Vector(local)), nil
}

// Append adds a point to the next shard in round-robin order and
// returns its global id. For an append-only stream the assigned ids
// are the dense sequence 0, 1, 2, … — identical to an unsharded
// store; after removals each shard recycles its own local ids, so
// ids stay unique and stable but the exact values may differ from an
// unsharded store's recycling order.
func (s *Store) Append(v []float64) (uint32, error) {
	si := int(s.rr.Add(1)-1) % len(s.parts)
	local, err := s.parts[si].append(v)
	if err != nil {
		return 0, err
	}
	return s.globalID(si, local), nil
}

// NextAppendLane returns the shard the next append routes to, drawing
// from the same round-robin counter as Append — the grouped and
// synchronous write paths assign points to shards in the same order,
// which is what makes them produce identical stores.
func (s *Store) NextAppendLane() int {
	return int(s.rr.Add(1)-1) % len(s.parts)
}

// LaneOf returns the shard owning a global id — the ingest lane its
// updates and removes must ride so same-key operations commit in
// submission order.
func (s *Store) LaneOf(gid uint32) int {
	si, _ := s.shardOf(gid)
	return si
}

// CommitBatch group-commits one ingest batch on shard lane: apply
// under one shard-lock acquisition, journal as one WAL frame with one
// fsync, allocate a contiguous LSN range. Intent and result ids are
// global; a mis-routed intent (wrong lane for its id) fails scoped to
// its own result.
func (s *Store) CommitBatch(lane int, intents []ingest.Intent, results []ingest.Result) error {
	local := make([]ingest.Intent, len(intents))
	for i, in := range intents {
		if wal.Op(in.Op) != wal.OpAppend {
			si, lid := s.shardOf(in.ID)
			if si != lane {
				results[i] = ingest.Result{Err: fmt.Errorf("shard: point %d belongs to shard %d, batch is on lane %d", in.ID, si, lane)}
			}
			in.ID = lid
		}
		local[i] = in
	}
	return s.parts[lane].commitBatch(local, results)
}

// Update replaces a point's φ vector on its owning shard.
func (s *Store) Update(gid uint32, v []float64) error {
	si, local := s.shardOf(gid)
	if err := s.parts[si].update(local, v); err != nil {
		return fmt.Errorf("shard %d: point %d: %w", si, gid, err)
	}
	return nil
}

// Remove deletes a point from its owning shard.
func (s *Store) Remove(gid uint32) error {
	si, local := s.shardOf(gid)
	if err := s.parts[si].remove(local); err != nil {
		return fmt.Errorf("shard %d: point %d: %w", si, gid, err)
	}
	return nil
}

// AddNormal installs a planar index on every shard (shards must share
// one index configuration for scatter-gather plans to be comparable).
// It reports whether an index was added.
func (s *Store) AddNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	added := false
	for i, p := range s.parts {
		ok, err := p.addNormal(normal, signs)
		if err != nil {
			return false, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			added = ok
		}
	}
	return added, nil
}

// gatherBufs is the pooled per-query scratch of a scatter-gather:
// one id slot and one stats slot per shard. Pooling it keeps the
// scatter overhead of Query and Count off the allocator; the merged
// result is the only allocation that escapes to the caller.
type gatherBufs struct {
	ids    [][]uint32
	sts    []core.Stats
	counts []int
}

var gatherPool = sync.Pool{New: func() any { return new(gatherBufs) }}

func getGather(n int) *gatherBufs {
	g := gatherPool.Get().(*gatherBufs)
	if cap(g.ids) < n {
		g.ids = make([][]uint32, n)
		g.sts = make([]core.Stats, n)
		g.counts = make([]int, n)
	}
	g.ids = g.ids[:n]
	g.sts = g.sts[:n]
	g.counts = g.counts[:n]
	for i := range g.ids {
		g.ids[i] = nil
		g.sts[i] = core.Stats{}
		g.counts[i] = 0
	}
	return g
}

func putGather(g *gatherBufs) { gatherPool.Put(g) }

// Query answers an inequality query scatter-gather: planned once per
// shard, executed concurrently, ids merged in ascending global id
// order with the per-stage stats rolled up.
func (s *Store) Query(q core.Query) ([]uint32, core.Stats, error) {
	g := getGather(len(s.parts))
	defer putGather(g)
	err := s.scatter(func(i int) error {
		p := s.parts[i]
		p.mu.RLock()
		defer p.mu.RUnlock()
		lids, st, err := p.multi.InequalityIDs(q)
		if err != nil {
			return err
		}
		g.ids[i] = s.globalize(lids, i)
		g.sts[i] = st
		return nil
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return mergeIDs(g.ids), MergeStats(g.sts), nil
}

// QueryBatch answers one inequality query per threshold, sharing a
// single plan per shard across the batch.
func (s *Store) QueryBatch(a []float64, op core.Op, bs []float64) ([][]uint32, []core.Stats, error) {
	ids := make([][][]uint32, len(s.parts)) // [shard][threshold]
	sts := make([][]core.Stats, len(s.parts))
	err := s.scatter(func(i int) error {
		p := s.parts[i]
		p.mu.RLock()
		defer p.mu.RUnlock()
		lids, lsts, err := p.multi.InequalityBatch(a, op, bs)
		if err != nil {
			return err
		}
		for t := range lids {
			lids[t] = s.globalize(lids[t], i)
		}
		ids[i], sts[i] = lids, lsts
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	outIDs := make([][]uint32, len(bs))
	outSts := make([]core.Stats, len(bs))
	perShard := make([][]uint32, len(s.parts))
	perStats := make([]core.Stats, len(s.parts))
	for t := range bs {
		for i := range s.parts {
			perShard[i] = ids[i][t]
			perStats[i] = sts[i][t]
		}
		outIDs[t] = mergeIDs(perShard)
		outSts[t] = MergeStats(perStats)
	}
	return outIDs, outSts, nil
}

// TopK answers a top-k nearest-to-hyperplane query scatter-gather:
// each shard runs the pipeline's descending smaller-interval walk
// with the Claim-3 cut-off locally, then the per-shard answers are
// k-way merged on (distance, id).
func (s *Store) TopK(q core.Query, k int) ([]core.Result, core.Stats, error) {
	res := make([][]core.Result, len(s.parts))
	sts := make([]core.Stats, len(s.parts))
	err := s.scatter(func(i int) error {
		p := s.parts[i]
		p.mu.RLock()
		defer p.mu.RUnlock()
		rs, st, err := p.multi.TopK(q, k)
		if err != nil {
			return err
		}
		for j := range rs {
			rs[j].ID = s.globalID(i, rs[j].ID)
		}
		res[i], sts[i] = rs, st
		return nil
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	return mergeTopK(res, k), MergeStats(sts), nil
}

// Count answers an exact COUNT(*) as the sum of per-shard counts.
func (s *Store) Count(q core.Query) (int, core.Stats, error) {
	g := getGather(len(s.parts))
	defer putGather(g)
	err := s.scatter(func(i int) error {
		p := s.parts[i]
		p.mu.RLock()
		defer p.mu.RUnlock()
		n, st, err := p.multi.Count(q)
		if err != nil {
			return err
		}
		g.counts[i], g.sts[i] = n, st
		return nil
	})
	if err != nil {
		return 0, core.Stats{}, err
	}
	total := 0
	for _, n := range g.counts {
		total += n
	}
	return total, MergeStats(g.sts), nil
}

// SelectivityBounds sums per-shard guaranteed cardinality bounds —
// each shard's answer size is individually bracketed, so the sums
// bracket the global answer.
func (s *Store) SelectivityBounds(q core.Query) (lo, hi int, err error) {
	los := make([]int, len(s.parts))
	his := make([]int, len(s.parts))
	err = s.scatter(func(i int) error {
		p := s.parts[i]
		p.mu.RLock()
		defer p.mu.RUnlock()
		plo, phi, err := p.multi.SelectivityBounds(q)
		if err != nil {
			return err
		}
		los[i], his[i] = plo, phi
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	for i := range los {
		lo += los[i]
		hi += his[i]
	}
	return lo, hi, nil
}

// Explain aggregates the per-shard execution plans: interval sizes,
// live counts and cardinality bounds sum across shards, while the
// selection diagnostics (index choice, stretch, |cos|) are shard 0's
// — every shard holds the same index configuration, so shard 0's
// choice is representative even though data-dependent interval sizes
// can occasionally tip another shard toward a different candidate.
func (s *Store) Explain(q core.Query) (core.Plan, error) {
	var out core.Plan
	for i, p := range s.parts {
		p.mu.RLock()
		pl, err := p.multi.Explain(q)
		p.mu.RUnlock()
		if err != nil {
			return core.Plan{}, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			out = pl
			out.Reason = fmt.Sprintf("scatter-gather over %d shards: %s", len(s.parts), pl.Reason)
			continue
		}
		out.Accepted += pl.Accepted
		out.Verified += pl.Verified
		out.Rejected += pl.Rejected
		out.N += pl.N
		out.BoundsLo += pl.BoundsLo
		out.BoundsHi += pl.BoundsHi
	}
	return out, nil
}

// Apply replays one replication record streamed from a primary: the
// global id routes to the owning shard, and replay must reproduce the
// primary's id assignment exactly (any disagreement reports
// replog.ErrDiverged). Records must arrive in LSN order.
func (s *Store) Apply(rec wal.Record) error {
	si, local := s.shardOf(rec.ID)
	if err := s.parts[si].applyReplicated(rec, local); err != nil {
		return fmt.Errorf("shard %d: %w", si, err)
	}
	return nil
}

// CaptureAll snapshots every shard's in-memory state. The caller must
// have drained writers (service holds its commit barrier), so the
// per-shard snapshots are mutually consistent at the current LSN.
func (s *Store) CaptureAll() []*codec.Snapshot {
	snaps := make([]*codec.Snapshot, len(s.parts))
	for i, p := range s.parts {
		snaps[i] = p.capture()
	}
	return snaps
}

// FeedFromDisk serves catch-up replication reads that have fallen off
// the in-memory ring: it flushes every shard's WAL buffer, scans the
// segments for records at or past from, rewrites local ids to global
// ids, and k-way merges by LSN. tooOld reports that the segments no
// longer cover from (a checkpoint truncated them) — the replica must
// re-bootstrap from a snapshot.
func (s *Store) FeedFromDisk(from uint64, max int) (recs []wal.Record, tooOld bool, err error) {
	if s.dir == "" {
		return nil, true, nil // ephemeral: ring is the only history
	}
	for _, p := range s.parts {
		if err := p.flushLog(); err != nil {
			return nil, false, err
		}
	}
	var merged []wal.Record
	for i := range s.parts {
		n, idx := uint32(len(s.parts)), uint32(i)
		part, err := replog.ReadSegmentFrom(
			filepath.Join(shardDir(s.dir, i), walFile), from, max,
			func(local uint32) uint32 { return local*n + idx },
		)
		if err != nil {
			return nil, false, fmt.Errorf("shard %d: %w", i, err)
		}
		merged = append(merged, part...)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].LSN < merged[b].LSN })
	if len(merged) == 0 || merged[0].LSN > from {
		// The requested position predates what the segments retain.
		return nil, true, nil
	}
	// Keep only the dense prefix: a gap means an interleaved
	// checkpoint truncated part of the range mid-scan.
	out := merged[:0]
	for i, rec := range merged {
		if rec.LSN != from+uint64(i) {
			break
		}
		out = append(out, rec)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, false, nil
}

// Paged reports whether the shards run on the disk-paged storage
// tier (all shards share one layout).
func (s *Store) Paged() bool {
	return s.parts[0].pstore != nil
}

// PageStats sums every shard's page-tier counters. ok is false when
// the store runs on the flat-snapshot tier.
func (s *Store) PageStats() (st codec.PageTierStats, ok bool) {
	for _, p := range s.parts {
		p.mu.RLock()
		if p.pstore != nil {
			st = st.Add(p.pstore.Stats())
			ok = true
		}
		p.mu.RUnlock()
	}
	return st, ok
}

// ReplayedRecords sums the WAL records each shard applied at open
// after its checkpoint filter.
func (s *Store) ReplayedRecords() int {
	total := 0
	for _, p := range s.parts {
		total += p.replayed
	}
	return total
}

// Checkpoint snapshots every shard in parallel.
func (s *Store) Checkpoint() error {
	return s.scatter(func(i int) error {
		if err := s.parts[i].checkpoint(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		return nil
	})
}

// Close flushes and releases every shard's log.
func (s *Store) Close() error {
	var first error
	for _, p := range s.parts {
		if p == nil {
			continue
		}
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
