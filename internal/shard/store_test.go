package shard

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"planar/internal/core"
	"planar/internal/vecmath"
)

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{Shards: 4}); err == nil {
		t.Error("ephemeral store without Dim accepted")
	}
	if _, err := Open(t.TempDir(), Options{Dim: 2}); err == nil {
		t.Error("fresh sharded dir without Shards accepted")
	}
	if _, err := Open(t.TempDir(), Options{Shards: 3}); err == nil {
		t.Error("fresh sharded dir without Dim accepted")
	}
}

func TestMetaMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 4, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	if _, err := Open(dir, Options{Shards: 2}); err == nil {
		t.Error("shard-count mismatch accepted")
	}
	if _, err := Open(dir, Options{Dim: 5}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	// 0 adopts the stored configuration.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NumShards() != 4 || st2.Dim() != 2 {
		t.Fatalf("adopted shards=%d dim=%d want 4/2", st2.NumShards(), st2.Dim())
	}
}

func TestIDMappingRoundTrip(t *testing.T) {
	st, err := Open("", Options{Shards: 8, Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, gid := range []uint32{0, 1, 7, 8, 9, 1023, 1 << 20} {
		si, local := st.shardOf(gid)
		if back := st.globalID(si, local); back != gid {
			t.Fatalf("gid %d → (%d, %d) → %d", gid, si, local, back)
		}
	}
}

// TestDurabilityAcrossReopen checkpoints some shards, leaves others
// with un-checkpointed WAL tails, and verifies the reopened store —
// recovered shard-by-shard in parallel — answers identically.
func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	st, err := Open(dir, Options{Shards: 4, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2)); err != nil {
		t.Fatal(err)
	}
	var ids []uint32
	for i := 0; i < 300; i++ {
		id, err := st.Append([]float64{rng.Float64() * 10, rng.Float64() * 10})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 60; i++ {
		if err := st.Update(ids[i], []float64{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 60; i < 90; i++ {
		if err := st.Remove(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot everything, then keep mutating so every shard has a
	// WAL tail to replay on top of its snapshot.
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 90; i < 130; i++ {
		if err := st.Update(ids[i], []float64{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	extra, err := st.Append([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{A: []float64{1, 2}, B: 18, Op: core.LE}
	want, _, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Every shard directory holds its own snapshot and WAL segment.
	for i := 0; i < 4; i++ {
		if _, err := os.Stat(filepath.Join(shardDir(dir, i), snapshotFile)); err != nil {
			t.Fatalf("shard %d snapshot missing: %v", i, err)
		}
		if _, err := os.Stat(filepath.Join(shardDir(dir, i), walFile)); err != nil {
			t.Fatalf("shard %d wal missing: %v", i, err)
		}
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != wantLen || st2.NumShards() != 4 || st2.NumIndexes() != 1 {
		t.Fatalf("reopened Len=%d shards=%d indexes=%d", st2.Len(), st2.NumShards(), st2.NumIndexes())
	}
	if !st2.Live(extra) {
		t.Fatal("post-checkpoint append lost")
	}
	got, _, err := st2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, want) {
		t.Fatalf("reopened answer %d ids, want %d", len(got), len(want))
	}
}

func TestAutomaticPerShardCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 2, Dim: 1, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if _, err := st.Append([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	for i := 0; i < 2; i++ {
		snap, err := os.Stat(filepath.Join(shardDir(dir, i), snapshotFile))
		if err != nil {
			t.Fatalf("shard %d: no snapshot after auto-checkpoint: %v", i, err)
		}
		if snap.Size() == 0 {
			t.Fatalf("shard %d: empty snapshot", i)
		}
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != 24 {
		t.Fatalf("Len=%d want 24", st2.Len())
	}
}

func TestMutationsRouteToOwningShard(t *testing.T) {
	st, err := Open("", Options{Shards: 4, Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 16; i++ {
		id, err := st.Append([]float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		si, local := st.shardOf(id)
		if si != i%4 || local != uint32(i/4) {
			t.Fatalf("append %d landed on shard %d local %d", i, si, local)
		}
	}
	// Removing and re-appending recycles the shard-local id, so the
	// same global id comes back.
	if err := st.Remove(6); err != nil {
		t.Fatal(err)
	}
	if st.Live(6) {
		t.Fatal("removed id still live")
	}
	v, err := st.Vector(7)
	if err != nil || v[0] != 7 {
		t.Fatalf("Vector(7) = %v, %v", v, err)
	}
	if _, err := st.Vector(6); err == nil {
		t.Fatal("Vector on a dead id succeeded")
	}
	if err := st.Update(6, []float64{1}); err == nil {
		t.Fatal("Update on a dead id succeeded")
	}
}

func TestExplainAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := goldenDataset(rng, 600, 3)
	st := goldenShardStore(t, "", 4, vecs)
	defer st.Close()
	q := core.Query{A: []float64{1, 2, 1}, B: 180, Op: core.LE}
	plan, err := st.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.N != 600 {
		t.Fatalf("plan.N=%d want 600", plan.N)
	}
	if plan.Accepted+plan.Verified+plan.Rejected != 600 {
		t.Fatalf("intervals %d+%d+%d != 600", plan.Accepted, plan.Verified, plan.Rejected)
	}
	n, _, err := st.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.BoundsLo > n || plan.BoundsHi < n {
		t.Fatalf("bounds [%d,%d] exclude count %d", plan.BoundsLo, plan.BoundsHi, n)
	}
}

func TestStatsMerge(t *testing.T) {
	merged := MergeStats([]core.Stats{
		{N: 10, Accepted: 2, Verified: 3, Matched: 1, Rejected: 5, PlanNanos: 7, ExecNanos: 11, CacheHit: true, IndexUsed: 1, Workers: 1},
		{N: 20, Accepted: 4, Verified: 6, Matched: 2, Rejected: 10, PlanNanos: 13, ExecNanos: 17, CacheHit: true, IndexUsed: 1, Workers: 3},
	})
	if merged.N != 30 || merged.Accepted != 6 || merged.Verified != 9 || merged.Matched != 3 || merged.Rejected != 15 {
		t.Fatalf("counter merge wrong: %+v", merged)
	}
	if merged.PlanNanos != 20 || merged.ExecNanos != 28 {
		t.Fatalf("stage-time merge wrong: %+v", merged)
	}
	if !merged.CacheHit || merged.IndexUsed != 1 || merged.Workers != 3 {
		t.Fatalf("flag merge wrong: %+v", merged)
	}
	diverged := MergeStats([]core.Stats{{IndexUsed: 0, CacheHit: true}, {IndexUsed: 2, FellBack: true}})
	if diverged.IndexUsed != -1 || !diverged.FellBack || diverged.CacheHit {
		t.Fatalf("divergence merge wrong: %+v", diverged)
	}
}
