package shard

import (
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// goldenDataset is a deterministic point stream shared by the
// unsharded reference and every sharded store under test.
func goldenDataset(rng *rand.Rand, n, dim int) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 60
		}
		vecs[i] = v
	}
	return vecs
}

var goldenNormals = [][]float64{{1, 1, 1}, {1, 3, 1}, {4, 1, 2}}

func goldenReference(t *testing.T, vecs [][]float64) *core.Multi {
	t.Helper()
	s, err := core.NewPointStore(len(vecs[0]))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMulti(s)
	if err != nil {
		t.Fatal(err)
	}
	oct := vecmath.FirstOctant(s.Dim())
	for _, normal := range goldenNormals {
		if _, err := m.AddNormal(normal[:s.Dim()], oct); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range vecs {
		if _, err := m.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func goldenShardStore(t *testing.T, dir string, shards int, vecs [][]float64) *Store {
	t.Helper()
	st, err := Open(dir, Options{Shards: shards, Dim: len(vecs[0])})
	if err != nil {
		t.Fatal(err)
	}
	oct := vecmath.FirstOctant(st.Dim())
	for _, normal := range goldenNormals {
		if _, err := st.AddNormal(normal[:st.Dim()], oct); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range vecs {
		id, err := st.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if id != uint32(i) {
			t.Fatalf("append %d assigned global id %d (round-robin ids must be dense)", i, id)
		}
	}
	return st
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func goldenQueries(rng *rand.Rand, dim, n int) []core.Query {
	qs := make([]core.Query, n)
	for i := range qs {
		a := make([]float64, dim)
		for j := range a {
			a[j] = rng.Float64() * 5
		}
		if i%7 == 0 {
			a[i%dim] = 0
		}
		op := core.LE
		if i%2 == 1 {
			op = core.GE
		}
		qs[i] = core.Query{A: a, B: rng.Float64() * 400, Op: op}
	}
	return qs
}

// TestGoldenShardedMatchesUnsharded is the cross-path identity suite:
// sharded stores with N = 1, 2 and 8 must answer every query —
// inequality ids, counts, batches and top-k — identically to one
// unsharded Multi over the same append-only point stream.
func TestGoldenShardedMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	vecs := goldenDataset(rng, 1500, 3)
	ref := goldenReference(t, vecs)
	queries := goldenQueries(rng, 3, 40)

	for _, shards := range []int{1, 2, 8} {
		st := goldenShardStore(t, "", shards, vecs)
		if st.Len() != ref.Store().Len() {
			t.Fatalf("shards=%d: Len=%d want %d", shards, st.Len(), ref.Store().Len())
		}
		for qi, q := range queries {
			wantIDs, _, err := ref.InequalityIDs(q)
			if err != nil {
				t.Fatal(err)
			}
			want := sortedIDs(wantIDs)

			got, st1, err := st.Query(q)
			if err != nil {
				t.Fatalf("shards=%d query %d: %v", shards, qi, err)
			}
			if !equalIDs(got, want) {
				t.Fatalf("shards=%d query %d: ids differ (%d vs %d results)",
					shards, qi, len(got), len(want))
			}
			if st1.N != ref.Store().Len() {
				t.Fatalf("shards=%d query %d: merged stats N=%d want %d", shards, qi, st1.N, ref.Store().Len())
			}
			if st1.Accepted+st1.Matched != len(want) {
				t.Fatalf("shards=%d query %d: stats report %d results, want %d",
					shards, qi, st1.Accepted+st1.Matched, len(want))
			}

			n, _, err := st.Count(q)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(want) {
				t.Fatalf("shards=%d query %d: count %d want %d", shards, qi, n, len(want))
			}

			lo, hi, err := st.SelectivityBounds(q)
			if err != nil {
				t.Fatal(err)
			}
			if lo > len(want) || hi < len(want) {
				t.Fatalf("shards=%d query %d: bounds [%d,%d] exclude answer %d", shards, qi, lo, hi, len(want))
			}

			batch, bsts, err := st.QueryBatch(q.A, q.Op, []float64{q.B, q.B / 2})
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(batch[0], want) {
				t.Fatalf("shards=%d query %d: batch ids differ", shards, qi)
			}
			refBatch, _, err := ref.InequalityBatch(q.A, q.Op, []float64{q.B, q.B / 2})
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(batch[1], sortedIDs(refBatch[1])) {
				t.Fatalf("shards=%d query %d: second batch threshold differs", shards, qi)
			}
			if len(bsts) != 2 {
				t.Fatalf("shards=%d query %d: %d batch stats", shards, qi, len(bsts))
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGoldenShardedTopK checks the k-way merge against the unsharded
// top-k walk: same ids, same order, same distances.
func TestGoldenShardedTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vecs := goldenDataset(rng, 900, 3)
	ref := goldenReference(t, vecs)

	for _, shards := range []int{1, 2, 8} {
		st := goldenShardStore(t, "", shards, vecs)
		for trial := 0; trial < 25; trial++ {
			q := core.Query{
				A:  []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3, 1 + rng.Float64()*3},
				B:  50 + rng.Float64()*300,
				Op: core.LE,
			}
			k := 1 + rng.Intn(12)
			want, _, err := ref.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := st.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d trial %d: topk sizes %d vs %d", shards, trial, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Distance != want[i].Distance {
					t.Fatalf("shards=%d trial %d: topk[%d] = (%d, %g) want (%d, %g)",
						shards, trial, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
				}
			}
		}
		st.Close()
	}
}

// TestGoldenShardedAfterChurn drives identical update/remove churn
// into the reference and an 8-shard store, then re-checks query
// identity. Ids are assigned append-only before the churn so both
// sides name the same points.
func TestGoldenShardedAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vecs := goldenDataset(rng, 1000, 3)
	ref := goldenReference(t, vecs)
	st := goldenShardStore(t, "", 8, vecs)
	defer st.Close()

	for i := 0; i < 300; i++ {
		id := uint32(rng.Intn(len(vecs)))
		switch rng.Intn(3) {
		case 0:
			if ref.Store().Live(id) {
				v := []float64{rng.Float64() * 60, rng.Float64() * 60, rng.Float64() * 60}
				if err := ref.Update(id, v); err != nil {
					t.Fatal(err)
				}
				if err := st.Update(id, v); err != nil {
					t.Fatal(err)
				}
			}
		case 1:
			if ref.Store().Live(id) {
				if err := ref.Remove(id); err != nil {
					t.Fatal(err)
				}
				if err := st.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
		default:
			// Queries interleaved with churn.
		}
	}
	if st.Len() != ref.Store().Len() {
		t.Fatalf("Len=%d want %d", st.Len(), ref.Store().Len())
	}
	for _, q := range goldenQueries(rng, 3, 20) {
		wantIDs, _, err := ref.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := st.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, sortedIDs(wantIDs)) {
			t.Fatal("post-churn ids differ")
		}
	}
}
