package shard

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"planar/internal/codec"
	"planar/internal/core"
	"planar/internal/ingest"
	"planar/internal/pager"
	"planar/internal/replog"
	"planar/internal/vecmath"
	"planar/internal/wal"
)

const (
	// SnapshotFileName and WALFileName are the per-shard durability
	// files inside a shard directory; exported so replica bootstrap
	// (package replica via service) can materialise a layout.
	SnapshotFileName = "snapshot.plnr"
	WALFileName      = "wal.log"

	snapshotFile = SnapshotFileName
	walFile      = WALFileName
	pagesFile    = "pages.plnr"
)

// partition is one shard: a full vertical slice of the engine
// (point store, indexes, plan cache, WAL segment) behind its own
// RWMutex. All point ids at this level are shard-local; the Store
// translates global ids at the boundary.
//
// The lock discipline mirrors service.DB: mutations and checkpoints
// hold the write lock so the WAL append and the in-memory apply are
// atomic with respect to each other; queries hold the read lock, so
// readers of the same shard proceed concurrently and writers on
// *other* shards are never even consulted. Commits additionally pass
// through the store-wide sequencer (under p.mu, so the lock order is
// always p.mu → seq.mu), which assigns the LSN, journals the record
// and publishes it to the replication ring in one critical section.
type partition struct {
	mu      sync.RWMutex
	dir     string // "" for an ephemeral partition
	multi   *core.Multi
	log     *wal.Writer // nil when ephemeral
	pending int         // mutations since the last checkpoint

	// pstore is this shard's paged checkpoint file (nil in snapshot
	// mode); replayed counts WAL records applied at open after the
	// checkpoint-LSN filter.
	pstore   *codec.PagedStore
	replayed int

	seq *replog.Sequencer
	gid func(uint32) uint32 // shard-local id → global id

	syncEveryWrite  bool
	checkpointEvery int
	fullCheckpoints bool
}

// openPartition restores (or initialises) one shard in dir. An empty
// dir creates an ephemeral in-memory partition.
func openPartition(dir string, dim int, opts Options) (*partition, error) {
	p := &partition{
		dir:             dir,
		syncEveryWrite:  opts.SyncEveryWrite,
		checkpointEvery: opts.CheckpointEvery,
		fullCheckpoints: opts.FullCheckpoints,
	}
	if dir == "" {
		if dim <= 0 {
			return nil, errors.New("shard: Dim required for an ephemeral store")
		}
		store, err := core.NewPointStore(dim)
		if err != nil {
			return nil, err
		}
		p.multi, err = core.NewMulti(store, opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
		return p, nil
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, snapshotFile)
	walPath := filepath.Join(dir, walFile)
	pagePath := filepath.Join(dir, pagesFile)

	_, pageStatErr := os.Stat(pagePath)
	paged := opts.Paged || pageStatErr == nil

	var (
		m     *core.Multi
		cpLSN uint64
	)
	if paged {
		if _, err := os.Stat(snapPath); err == nil {
			return nil, errors.New("shard: directory holds a flat snapshot; converting to the paged layout in place is not supported")
		}
		var err error
		if pageStatErr == nil {
			p.pstore, m, err = codec.OpenPaged(pagePath, opts.PageCacheBytes, opts.MultiOptions...)
			if err != nil {
				return nil, err
			}
			if dim != 0 && dim != p.pstore.Dim() {
				p.pstore.Close()
				return nil, fmt.Errorf("shard: page file dimension %d, store says %d", p.pstore.Dim(), dim)
			}
			dim = p.pstore.Dim()
			cpLSN = p.pstore.CheckpointLSN()
		} else {
			if dim <= 0 {
				return nil, errors.New("shard: Dim required to create a fresh shard")
			}
			if p.pstore, err = codec.CreatePaged(pagePath, dim, opts.PageCacheBytes); err != nil {
				return nil, err
			}
			store, serr := core.NewPointStore(dim)
			if serr == nil {
				m, serr = core.NewMulti(store, opts.MultiOptions...)
			}
			if serr != nil {
				p.pstore.Close()
				return nil, serr
			}
		}
		if !opts.DisableWriteback {
			p.pstore.StartWriter(pager.WriterOptions{
				Interval:   opts.WritebackInterval,
				BatchPages: opts.WritebackBatchPages,
			}, m.WritebackIndexes)
		}
	} else if snap, err := codec.Load(snapPath); err == nil {
		if dim != 0 && dim != snap.Dim {
			return nil, fmt.Errorf("shard: snapshot dimension %d, store says %d", snap.Dim, dim)
		}
		dim = snap.Dim
		m, err = snap.Restore(opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if dim <= 0 {
			return nil, errors.New("shard: Dim required to create a fresh shard")
		}
		store, err := core.NewPointStore(dim)
		if err != nil {
			return nil, err
		}
		m, err = core.NewMulti(store, opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	// Replay mutations logged after the checkpoint. Records carry
	// shard-local ids, so each shard's log is self-contained; in paged
	// mode records the page file's checkpoint already covers are
	// filtered by LSN.
	applied := 0
	_, err := wal.Replay(walPath, func(r wal.Record) error {
		if paged && r.LSN != 0 && r.LSN <= cpLSN {
			return nil
		}
		applied++
		switch r.Op {
		case wal.OpAppend:
			id, err := m.Append(r.Vec)
			if err != nil {
				return err
			}
			if id != r.ID {
				return fmt.Errorf("shard: replay assigned local id %d, log says %d", id, r.ID)
			}
			return nil
		case wal.OpUpdate:
			return m.Update(r.ID, r.Vec)
		case wal.OpRemove:
			return m.Remove(r.ID)
		default:
			return fmt.Errorf("shard: unknown op %d in log", r.Op)
		}
	})
	if err != nil {
		if p.pstore != nil {
			p.pstore.Close()
		}
		return nil, fmt.Errorf("shard: replaying %s: %w", walPath, err)
	}

	w, err := wal.Open(walPath, dim)
	if err != nil {
		if p.pstore != nil {
			p.pstore.Close()
		}
		return nil, err
	}
	if n := w.Recovered(); n > 0 {
		log.Printf("shard: %s: recovered torn tail, truncated %d bytes", walPath, n)
	}
	p.multi = m
	p.log = w
	p.pending = applied
	p.replayed = applied
	return p, nil
}

// nextLSN reports the LSN position this partition's durable state
// implies: one past the last journaled record, or the segment base.
func (p *partition) nextLSN() uint64 {
	if p.log == nil {
		return 1
	}
	return p.log.NextLSN()
}

// journal returns the commit callback that appends the shard-local
// record to this partition's WAL segment, or nil when ephemeral. It
// runs under the sequencer lock, so segment order matches LSN order.
func (p *partition) journal(op wal.Op, local uint32, vec []float64) func(uint64) error {
	if p.log == nil {
		return nil
	}
	return func(lsn uint64) error {
		if err := p.log.Append(wal.Record{Op: op, LSN: lsn, ID: local, Vec: vec}); err != nil {
			return err
		}
		if p.syncEveryWrite {
			return p.log.Sync()
		}
		return nil
	}
}

// append durably adds a point and returns its shard-local id.
func (p *partition) append(v []float64) (uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, err := p.multi.Append(v)
	if err != nil {
		return 0, err
	}
	if _, err := p.seq.Commit(wal.OpAppend, p.gid(id), v, p.journal(wal.OpAppend, id, v)); err != nil {
		return 0, err
	}
	return id, p.bumpLocked()
}

// update durably replaces a local point's φ vector.
func (p *partition) update(id uint32, v []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.multi.Update(id, v); err != nil {
		return err
	}
	if _, err := p.seq.Commit(wal.OpUpdate, p.gid(id), v, p.journal(wal.OpUpdate, id, v)); err != nil {
		return err
	}
	return p.bumpLocked()
}

// remove durably deletes a local point.
func (p *partition) remove(id uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.multi.Remove(id); err != nil {
		return err
	}
	if _, err := p.seq.Commit(wal.OpRemove, p.gid(id), nil, p.journal(wal.OpRemove, id, nil)); err != nil {
		return err
	}
	return p.bumpLocked()
}

// commitBatch group-commits one ingest batch: every intent applies
// under a single acquisition of the shard lock, the survivors journal
// as one multi-record WAL frame with one fsync, and the sequencer
// hands the batch a contiguous LSN range. Intent ids are shard-local
// (the Store translates at the boundary); results carry global ids.
// Entries whose result already holds an error are skipped — the Store
// pre-fails mis-routed intents. Apply errors (bad dimension, dead
// point) stay scoped to their intent and never reach the journal; a
// journal error fails the whole batch.
func (p *partition) commitBatch(intents []ingest.Intent, results []ingest.Result) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	walRecs := make([]wal.Record, 0, len(intents))
	ringRecs := make([]wal.Record, 0, len(intents))
	okIdx := make([]int, 0, len(intents))
	for i, in := range intents {
		if results[i].Err != nil {
			continue
		}
		op := wal.Op(in.Op)
		local := in.ID
		var err error
		switch op {
		case wal.OpAppend:
			local, err = p.multi.Append(in.Vec)
		case wal.OpUpdate:
			err = p.multi.Update(local, in.Vec)
		case wal.OpRemove:
			err = p.multi.Remove(local)
		default:
			err = fmt.Errorf("shard: unknown op %d", in.Op)
		}
		if err != nil {
			results[i] = ingest.Result{Err: err}
			continue
		}
		vec := in.Vec
		if op == wal.OpRemove {
			vec = nil
		}
		results[i] = ingest.Result{ID: p.gid(local)}
		walRecs = append(walRecs, wal.Record{Op: op, ID: local, Vec: vec})
		ringRecs = append(ringRecs, wal.Record{Op: op, ID: p.gid(local), Vec: vec})
		okIdx = append(okIdx, i)
	}
	if len(ringRecs) == 0 {
		return nil
	}
	base, err := p.seq.CommitBatch(ringRecs, p.journalBatch(walRecs))
	if err != nil {
		return err
	}
	for j, i := range okIdx {
		results[i].LSN = base + uint64(j)
	}
	for range okIdx {
		if err := p.bumpLocked(); err != nil {
			return err
		}
	}
	return nil
}

// journalBatch returns the batch commit callback: one frame, one
// fsync. Acks resolve only after this fsync — group commit always
// syncs regardless of syncEveryWrite, that is its durability
// contract. Nil when ephemeral.
func (p *partition) journalBatch(recs []wal.Record) func(uint64) error {
	if p.log == nil {
		return nil
	}
	return func(base uint64) error {
		for j := range recs {
			recs[j].LSN = base + uint64(j)
		}
		if err := p.log.AppendBatch(recs); err != nil {
			return err
		}
		return p.log.Sync()
	}
}

// applyReplicated applies one record streamed from a primary. The
// record carries a global id (already routed to this partition) and
// the primary's LSN; replay must reproduce the primary's id
// assignment exactly, and any disagreement is divergence — the
// replica's state no longer matches the stream and must be rebuilt
// from a snapshot.
func (p *partition) applyReplicated(rec wal.Record, local uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch rec.Op {
	case wal.OpAppend:
		id, err := p.multi.Append(rec.Vec)
		if err != nil {
			return fmt.Errorf("apply append: %v: %w", err, replog.ErrDiverged)
		}
		if id != local {
			return fmt.Errorf("apply assigned local id %d, stream says %d: %w", id, local, replog.ErrDiverged)
		}
	case wal.OpUpdate:
		if err := p.multi.Update(local, rec.Vec); err != nil {
			return fmt.Errorf("apply update: %v: %w", err, replog.ErrDiverged)
		}
	case wal.OpRemove:
		if err := p.multi.Remove(local); err != nil {
			return fmt.Errorf("apply remove: %v: %w", err, replog.ErrDiverged)
		}
	default:
		return fmt.Errorf("apply op %d: %w", rec.Op, replog.ErrDiverged)
	}
	if err := p.seq.CommitAt(rec.LSN, rec.Op, rec.ID, rec.Vec, p.journal(rec.Op, local, rec.Vec)); err != nil {
		return err
	}
	return p.bumpLocked()
}

// bumpLocked advances the pending-mutation counter and triggers the
// automatic per-shard checkpoint. Callers hold the write lock.
func (p *partition) bumpLocked() error {
	p.pending++
	if p.log != nil && p.checkpointEvery > 0 && p.pending >= p.checkpointEvery {
		return p.checkpointLocked()
	}
	return nil
}

// addNormal installs an index on this shard's Multi.
func (p *partition) addNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.multi.AddNormal(normal, signs)
}

// capture snapshots the partition's in-memory state (store layout +
// index configuration) without touching disk.
func (p *partition) capture() *codec.Snapshot {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return codec.Capture(p.multi)
}

// flushLog pushes buffered WAL records to the OS so a concurrent
// segment reader (catch-up feed) sees everything journaled so far.
func (p *partition) flushLog() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log == nil {
		return nil
	}
	return p.log.Flush()
}

// checkpoint snapshots the shard and truncates its log. The paged
// tier's background writer is drained before the write lock so the
// locked section only covers the residual delta.
func (p *partition) checkpoint() error {
	p.mu.RLock()
	ps := p.pstore
	p.mu.RUnlock()
	if ps != nil {
		if err := ps.DrainWriteback(); err != nil {
			return err
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checkpointLocked()
}

func (p *partition) checkpointLocked() error {
	if p.log == nil {
		return nil // ephemeral: nothing to persist
	}
	if err := p.log.Sync(); err != nil {
		return err
	}
	if p.pstore != nil {
		cp := p.pstore.Checkpoint
		if p.fullCheckpoints {
			cp = p.pstore.CheckpointFull
		}
		if err := cp(p.multi, p.seq.Next()-1); err != nil {
			return err
		}
	} else {
		if err := codec.Capture(p.multi).Save(filepath.Join(p.dir, snapshotFile)); err != nil {
			return err
		}
	}
	if err := p.log.Close(); err != nil {
		return err
	}
	// The fresh segment starts at the store-wide sequence position so
	// an empty log still pins the LSN cursor across restarts.
	w, err := wal.Create(filepath.Join(p.dir, walFile), p.multi.Store().Dim(), p.seq.Next())
	if err != nil {
		return err
	}
	p.log = w
	p.pending = 0
	return nil
}

// close flushes and releases the shard's log and page file.
func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var err error
	if p.log != nil {
		err = p.log.Sync()
		if cerr := p.log.Close(); err == nil {
			err = cerr
		}
		p.log = nil
	}
	if p.pstore != nil {
		if cerr := p.pstore.Close(); err == nil {
			err = cerr
		}
		p.pstore = nil
	}
	return err
}
