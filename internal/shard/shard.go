package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"planar/internal/codec"
	"planar/internal/core"
	"planar/internal/vecmath"
	"planar/internal/wal"
)

const (
	snapshotFile = "snapshot.plnr"
	walFile      = "wal.log"
	snapshotTmp  = "snapshot.plnr.tmp"
)

// partition is one shard: a full vertical slice of the engine
// (point store, indexes, plan cache, WAL segment) behind its own
// RWMutex. All point ids at this level are shard-local; the Store
// translates global ids at the boundary.
//
// The lock discipline mirrors service.DB: mutations and checkpoints
// hold the write lock so the WAL append and the in-memory apply are
// atomic with respect to each other; queries hold the read lock, so
// readers of the same shard proceed concurrently and writers on
// *other* shards are never even consulted.
type partition struct {
	mu      sync.RWMutex
	dir     string // "" for an ephemeral partition
	multi   *core.Multi
	log     *wal.Writer // nil when ephemeral
	pending int         // mutations since the last checkpoint

	syncEveryWrite  bool
	checkpointEvery int
}

// openPartition restores (or initialises) one shard in dir. An empty
// dir creates an ephemeral in-memory partition. The returned dim is
// the partition's φ dimensionality (from its snapshot when dim was
// passed as 0).
func openPartition(dir string, dim int, opts Options) (*partition, error) {
	p := &partition{
		dir:             dir,
		syncEveryWrite:  opts.SyncEveryWrite,
		checkpointEvery: opts.CheckpointEvery,
	}
	if dir == "" {
		if dim <= 0 {
			return nil, errors.New("shard: Dim required for an ephemeral store")
		}
		store, err := core.NewPointStore(dim)
		if err != nil {
			return nil, err
		}
		p.multi, err = core.NewMulti(store, opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
		return p, nil
	}

	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	snapPath := filepath.Join(dir, snapshotFile)
	walPath := filepath.Join(dir, walFile)

	var m *core.Multi
	if snap, err := codec.Load(snapPath); err == nil {
		if dim != 0 && dim != snap.Dim {
			return nil, fmt.Errorf("shard: snapshot dimension %d, store says %d", snap.Dim, dim)
		}
		dim = snap.Dim
		m, err = snap.Restore(opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if dim <= 0 {
			return nil, errors.New("shard: Dim required to create a fresh shard")
		}
		store, err := core.NewPointStore(dim)
		if err != nil {
			return nil, err
		}
		m, err = core.NewMulti(store, opts.MultiOptions...)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}

	// Replay mutations logged after the snapshot. Records carry
	// shard-local ids, so each shard's log is self-contained.
	replayed, err := wal.Replay(walPath, func(r wal.Record) error {
		switch r.Op {
		case wal.OpAppend:
			id, err := m.Append(r.Vec)
			if err != nil {
				return err
			}
			if id != r.ID {
				return fmt.Errorf("shard: replay assigned local id %d, log says %d", id, r.ID)
			}
			return nil
		case wal.OpUpdate:
			return m.Update(r.ID, r.Vec)
		case wal.OpRemove:
			return m.Remove(r.ID)
		default:
			return fmt.Errorf("shard: unknown op %d in log", r.Op)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("shard: replaying %s: %w", walPath, err)
	}

	log, err := wal.Open(walPath, dim)
	if err != nil {
		return nil, err
	}
	p.multi = m
	p.log = log
	p.pending = replayed
	return p, nil
}

// append durably adds a point and returns its shard-local id.
func (p *partition) append(v []float64) (uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id, err := p.multi.Append(v)
	if err != nil {
		return 0, err
	}
	if err := p.journal(wal.Record{Op: wal.OpAppend, ID: id, Vec: v}); err != nil {
		return 0, err
	}
	return id, p.bumpLocked()
}

// update durably replaces a local point's φ vector.
func (p *partition) update(id uint32, v []float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.multi.Update(id, v); err != nil {
		return err
	}
	if err := p.journal(wal.Record{Op: wal.OpUpdate, ID: id, Vec: v}); err != nil {
		return err
	}
	return p.bumpLocked()
}

// remove durably deletes a local point.
func (p *partition) remove(id uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.multi.Remove(id); err != nil {
		return err
	}
	if err := p.journal(wal.Record{Op: wal.OpRemove, ID: id}); err != nil {
		return err
	}
	return p.bumpLocked()
}

// journal logs one record (a no-op for ephemeral partitions).
func (p *partition) journal(rec wal.Record) error {
	if p.log == nil {
		return nil
	}
	if err := p.log.Append(rec); err != nil {
		return err
	}
	if p.syncEveryWrite {
		return p.log.Sync()
	}
	return nil
}

// bumpLocked advances the pending-mutation counter and triggers the
// automatic per-shard checkpoint. Callers hold the write lock.
func (p *partition) bumpLocked() error {
	p.pending++
	if p.log != nil && p.checkpointEvery > 0 && p.pending >= p.checkpointEvery {
		return p.checkpointLocked()
	}
	return nil
}

// addNormal installs an index on this shard's Multi.
func (p *partition) addNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.multi.AddNormal(normal, signs)
}

// checkpoint snapshots the shard and truncates its log.
func (p *partition) checkpoint() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.checkpointLocked()
}

func (p *partition) checkpointLocked() error {
	if p.log == nil {
		return nil // ephemeral: nothing to persist
	}
	if err := p.log.Sync(); err != nil {
		return err
	}
	tmp := filepath.Join(p.dir, snapshotTmp)
	if err := codec.Capture(p.multi).Save(tmp); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(p.dir, snapshotFile)); err != nil {
		return err
	}
	if err := p.log.Close(); err != nil {
		return err
	}
	log, err := wal.Create(filepath.Join(p.dir, walFile), p.multi.Store().Dim())
	if err != nil {
		return err
	}
	p.log = log
	p.pending = 0
	return nil
}

// close flushes and releases the shard's log.
func (p *partition) close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.log == nil {
		return nil
	}
	err := p.log.Sync()
	if cerr := p.log.Close(); err == nil {
		err = cerr
	}
	p.log = nil
	return err
}
