// Package shard horizontally partitions a planar index store across
// N independent shards so heavy concurrent traffic scales past a
// single core and a single lock.
//
// Points are hash-partitioned by id: global id g lives on shard
// g mod N as local id g div N, a bijection that keeps every shard's
// local id space dense (exactly what core.PointStore assigns) and
// makes routing a single modulo. Each shard owns a full vertical
// slice of the engine — its own core.Multi (point store, planar
// indexes, plan cache), its own write-ahead-log segment and snapshot
// file, guarded by a per-shard sync.RWMutex — so writers on
// different shards never contend and crash recovery replays all
// shards in parallel.
//
// Queries run scatter-gather through the internal/exec pipeline:
// the query is planned once per shard (each shard's plan cache is
// consulted independently), executed concurrently on a bounded
// worker pool, and the per-shard answers are merged — id sets in
// ascending global id order, counts by summation, top-k by a k-way
// merge on (distance, id) that preserves the per-shard Claim-3
// cut-off. Per-stage execution Stats are rolled up across shards so
// the service and HTTP layers keep one observability vocabulary.
//
// A Store opened with an empty directory is ephemeral (no WAL, no
// snapshots) — the configuration used by benchmarks and tests.
package shard
