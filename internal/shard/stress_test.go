package shard

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// TestStressConcurrentMixedOps hammers one sharded store with
// concurrent appends, updates, removes and every query variant. Run
// under -race (make race-shard) it proves the per-shard lock
// discipline: writers contend only within a shard, readers only take
// read locks, and the scatter-gather merge never observes a torn
// store.
func TestStressConcurrentMixedOps(t *testing.T) {
	st, err := Open("", Options{Shards: 4, Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	oct := vecmath.FirstOctant(3)
	for _, normal := range [][]float64{{1, 1, 1}, {2, 1, 3}} {
		if _, err := st.AddNormal(normal, oct); err != nil {
			t.Fatal(err)
		}
	}
	seed := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		if _, err := st.Append([]float64{seed.Float64() * 60, seed.Float64() * 60, seed.Float64() * 60}); err != nil {
			t.Fatal(err)
		}
	}

	// Liveness errors are expected — two writers may race to remove
	// the same id — but nothing else is.
	acceptable := func(err error) bool {
		return err == nil || strings.Contains(err.Error(), "not live")
	}

	const (
		writers   = 4
		readers   = 4
		opsEach   = 400
		idHorizon = 2600 // appends push live ids a bit past the preload
	)
	var wg sync.WaitGroup
	fail := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < opsEach; i++ {
				v := []float64{rng.Float64() * 60, rng.Float64() * 60, rng.Float64() * 60}
				switch rng.Intn(4) {
				case 0:
					if _, err := st.Append(v); err != nil {
						fail <- err
						return
					}
				case 1:
					if err := st.Update(uint32(rng.Intn(idHorizon)), v); !acceptable(err) {
						fail <- err
						return
					}
				default:
					if err := st.Remove(uint32(rng.Intn(idHorizon))); !acceptable(err) {
						fail <- err
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < opsEach; i++ {
				q := core.Query{
					A:  []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5},
					B:  rng.Float64() * 400,
					Op: core.LE,
				}
				switch rng.Intn(4) {
				case 0:
					ids, stq, err := st.Query(q)
					if err != nil {
						fail <- err
						return
					}
					if stq.Accepted+stq.Matched != len(ids) {
						t.Errorf("stats report %d results, got %d ids", stq.Accepted+stq.Matched, len(ids))
						return
					}
				case 1:
					if _, _, err := st.Count(q); err != nil {
						fail <- err
						return
					}
				case 2:
					q.A = []float64{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()}
					if _, _, err := st.TopK(q, 1+rng.Intn(8)); err != nil {
						fail <- err
						return
					}
				default:
					if _, _, err := st.QueryBatch(q.A, q.Op, []float64{q.B, q.B * 0.5}); err != nil {
						fail <- err
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}

	// The store is still coherent: a fresh query agrees with a
	// per-shard brute-force pass.
	q := core.Query{A: []float64{1, 1, 1}, B: 90, Op: core.LE}
	ids, _, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	brute := 0
	for _, p := range st.parts {
		p.multi.Store().Each(func(_ uint32, v []float64) bool {
			if q.Satisfies(v) {
				brute++
			}
			return true
		})
	}
	if len(ids) != brute {
		t.Fatalf("post-stress query returned %d ids, brute force says %d", len(ids), brute)
	}
}

// TestStressDurableConcurrent runs a shorter mixed workload against a
// durable store (per-shard WALs, auto-checkpoints) and verifies the
// reopened store matches what was in memory at close.
func TestStressDurableConcurrent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Shards: 3, Dim: 2, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				switch rng.Intn(3) {
				case 0:
					st.Append([]float64{rng.Float64() * 10, rng.Float64() * 10})
				case 1:
					st.Update(uint32(rng.Intn(600)), []float64{rng.Float64() * 10, rng.Float64() * 10})
				default:
					st.Query(core.Query{A: []float64{1, 2}, B: rng.Float64() * 30, Op: core.LE})
				}
			}
		}(w)
	}
	wg.Wait()
	q := core.Query{A: []float64{1, 2}, B: 18, Op: core.LE}
	want, _, err := st.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	wantLen := st.Len()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Len() != wantLen {
		t.Fatalf("reopened Len=%d want %d", st2.Len(), wantLen)
	}
	got, _, err := st2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(got, want) {
		t.Fatal("reopened store answers differently")
	}
}
