package queries

import (
	"math"
	"math/rand"
	"testing"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/scan"
)

func TestEq18Validation(t *testing.T) {
	if _, err := NewEq18(nil, 4); err == nil {
		t.Error("empty maxes accepted")
	}
	if _, err := NewEq18([]float64{1, math.NaN()}, 4); err == nil {
		t.Error("NaN max accepted")
	}
	if _, err := NewEq18([]float64{1, 2}, 0); err == nil {
		t.Error("RQ=0 accepted")
	}
	g, err := NewEq18([]float64{10, 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.Dim() != 2 || g.Ineq != DefaultIneq {
		t.Fatalf("Dim=%d Ineq=%v", g.Dim(), g.Ineq)
	}
	g.Ineq = -1
	if err := g.Validate(); err == nil {
		t.Error("negative inequality parameter accepted")
	}
}

func TestEq18QueryShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _ := NewEq18([]float64{100, 100, 100}, 4)
	seen := map[float64]bool{}
	for i := 0; i < 200; i++ {
		q := g.Query(rng)
		if len(q.A) != 3 || q.Op != core.LE {
			t.Fatalf("bad query %+v", q)
		}
		var rhs float64
		for _, a := range q.A {
			if a < 1 || a > 4 || a != math.Trunc(a) {
				t.Fatalf("coefficient %v outside {1..4}", a)
			}
			seen[a] = true
			rhs += a * 100
		}
		if math.Abs(q.B-0.25*rhs) > 1e-9 {
			t.Fatalf("bound %v want %v", q.B, 0.25*rhs)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("coefficients drawn: %v, want all of {1..4}", seen)
	}
}

func TestEq18SelectivityTracksIneqParameter(t *testing.T) {
	d := dataset.Independent(3000, 4, 2)
	s, err := d.Store()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	g, _ := NewEq18(d.AxisMaxes(), 4)
	sel := func(ineq float64) float64 {
		g.Ineq = ineq
		total := 0
		for i := 0; i < 20; i++ {
			total += scan.Count(s, g.Query(rng))
		}
		return float64(total) / (20 * float64(s.Len()))
	}
	low := sel(0.10)
	mid := sel(0.50)
	high := sel(1.00)
	if !(low < mid && mid < high) {
		t.Fatalf("selectivity not monotone: %v %v %v", low, mid, high)
	}
	if low > 0.2 {
		t.Fatalf("ineq=0.10 selectivity %v, want small", low)
	}
	if high < 0.95 {
		t.Fatalf("ineq=1.00 selectivity %v, want ~1", high)
	}
}

func TestBuildIndexes(t *testing.T) {
	d := dataset.Independent(500, 3, 4)
	s, _ := d.Store()
	m, _ := core.NewMulti(s)
	rng := rand.New(rand.NewSource(5))
	g, _ := NewEq18(d.AxisMaxes(), 2)
	added, err := g.BuildIndexes(m, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	// RQ=2 in 3 dimensions: only 8 discrete normals exist and two
	// pairs are parallel directions at most — the budget cannot be
	// met and redundancy removal must kick in.
	if added > 8 {
		t.Fatalf("added %d indexes from an 8-normal domain", added)
	}
	if added < 2 {
		t.Fatalf("added only %d indexes", added)
	}
	if m.NumIndexes() != added {
		t.Fatalf("NumIndexes=%d added=%d", m.NumIndexes(), added)
	}
	if _, err := g.BuildIndexes(m, 0, rng); err == nil {
		t.Error("budget 0 accepted")
	}

	// Queries answered through these indexes are exact.
	for i := 0; i < 30; i++ {
		q := g.Query(rng)
		ids, st, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.FellBack {
			t.Fatal("query fell back despite compatible indexes")
		}
		if len(ids) != scan.Count(s, q) {
			t.Fatalf("query %d: planar %d vs scan %d", i, len(ids), scan.Count(s, q))
		}
	}
}

func TestParallelIndexPrunesEverything(t *testing.T) {
	// With RQ=2 and enough budget the sampler enumerates every
	// normal, so each query finds an exactly-parallel index and the
	// intermediate interval collapses (paper: "the size of the
	// intermediate interval can be zero for carefully designed
	// Planar index").
	d := dataset.Independent(2000, 2, 6)
	s, _ := d.Store()
	m, _ := core.NewMulti(s)
	rng := rand.New(rand.NewSource(7))
	g, _ := NewEq18(d.AxisMaxes(), 2)
	if _, err := g.BuildIndexes(m, 50, rng); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := g.Query(rng)
		_, st, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Verified > 4 {
			t.Fatalf("query %d verified %d points; expected a parallel index (stats %+v)", i, st.Verified, st)
		}
	}
}

func TestDomains(t *testing.T) {
	g, _ := NewEq18([]float64{10, 10}, 6)
	doms := g.Domains()
	if len(doms) != 2 || doms[0].Lo != 1 || doms[0].Hi != 6 {
		t.Fatalf("Domains=%v", doms)
	}
}

// TestDomainLearningDrivesIndexRefresh exercises the Section 4.1
// loop end to end: observe queries, learn domains, rebuild the index
// set from them, and answer subsequent queries exactly and without
// fallback.
func TestDomainLearningDrivesIndexRefresh(t *testing.T) {
	d := dataset.Independent(1000, 3, 9)
	s, _ := d.Store()
	m, _ := core.NewMulti(s)
	tr, _ := NewDomainTracker(3)
	rng := rand.New(rand.NewSource(10))

	// Phase 1: queries arrive with no index; observe their normals.
	makeQuery := func() core.Query {
		a := []float64{2 + rng.Float64(), 5 + rng.Float64()*2, 1 + rng.Float64()*0.5}
		return core.Query{A: a, B: 0.3 * (a[0] + a[1] + a[2]) * 100, Op: core.LE}
	}
	for i := 0; i < 30; i++ {
		q := makeQuery()
		if err := tr.Observe(q.A); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.InequalityIDs(q); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: rebuild indexes from the learned domains.
	doms, err := tr.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SampleBudget(10, doms, rng); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		q := makeQuery()
		ids, st, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.FellBack {
			t.Fatal("learned-domain indexes did not serve the workload")
		}
		if len(ids) != scan.Count(s, q) {
			t.Fatal("learned-domain index answered incorrectly")
		}
		if st.PruningFraction() < 0.3 {
			t.Fatalf("pruning %v with workload-fitted indexes", st.PruningFraction())
		}
	}
}

func TestDomainTracker(t *testing.T) {
	if _, err := NewDomainTracker(0); err == nil {
		t.Error("dim 0 accepted")
	}
	tr, err := NewDomainTracker(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Domains(); err == nil {
		t.Error("Domains before any observation accepted")
	}
	if err := tr.Observe([]float64{1, 2, 3}); err == nil {
		t.Error("wrong-dim observation accepted")
	}
	tr.Observe([]float64{2, 5})
	tr.Observe([]float64{4, 3})
	tr.Observe([]float64{3, 9})
	if tr.Count() != 3 {
		t.Fatalf("Count=%d", tr.Count())
	}
	doms, err := tr.Domains()
	if err != nil {
		t.Fatal(err)
	}
	if doms[0] != (core.Domain{Lo: 2, Hi: 4}) || doms[1] != (core.Domain{Lo: 3, Hi: 9}) {
		t.Fatalf("Domains=%v", doms)
	}
	// Sign-straddling coefficients are rejected at extraction time.
	tr.Observe([]float64{-1, 4})
	if _, err := tr.Domains(); err == nil {
		t.Error("zero-straddling learned domain accepted")
	}
}
