// Package queries generates the paper's query workloads and tracks
// parameter domains.
//
// The generalised scalar-product workload (Equation 18) draws each
// coefficient a_i from a discrete domain {1, …, RQ} — RQ is the
// paper's "randomness of query" — and sets the bound to a fraction
// (the inequality parameter, 0.25 by default) of Σ a_i·max(i), so a
// small share of points qualifies. Index normals are sampled from the
// same domains (Section 5.2).
package queries

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"planar/internal/core"
)

// DefaultIneq is the paper's default inequality parameter.
const DefaultIneq = 0.25

// Eq18 generates the paper's generalised scalar product queries over
// a dataset with known per-axis maxima.
type Eq18 struct {
	// MaxPerAxis is max(i) per dimension of the dataset.
	MaxPerAxis []float64
	// RQ is the domain size of each coefficient; coefficients are
	// drawn uniformly from {1, …, RQ}.
	RQ int
	// Ineq is the inequality parameter multiplying the right-hand
	// side (paper Figure 11 sweeps it from 0.10 to 1.00).
	Ineq float64
}

// NewEq18 validates and constructs a generator with the default
// inequality parameter.
func NewEq18(maxPerAxis []float64, rq int) (Eq18, error) {
	g := Eq18{MaxPerAxis: maxPerAxis, RQ: rq, Ineq: DefaultIneq}
	return g, g.Validate()
}

// Validate reports configuration errors.
func (g Eq18) Validate() error {
	if len(g.MaxPerAxis) == 0 {
		return errors.New("queries: Eq18 needs at least one axis maximum")
	}
	for i, m := range g.MaxPerAxis {
		if math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("queries: axis %d maximum is not finite", i)
		}
	}
	if g.RQ < 1 {
		return fmt.Errorf("queries: RQ must be >= 1, got %d", g.RQ)
	}
	if !(g.Ineq > 0) || math.IsInf(g.Ineq, 0) {
		return fmt.Errorf("queries: inequality parameter must be positive and finite, got %v", g.Ineq)
	}
	return nil
}

// Dim returns the query dimensionality.
func (g Eq18) Dim() int { return len(g.MaxPerAxis) }

// Query draws one query: Σ a_i x_i ≤ Ineq·Σ a_i·max(i) with a_i
// uniform over {1, …, RQ}.
func (g Eq18) Query(rng *rand.Rand) core.Query {
	a := make([]float64, g.Dim())
	var rhs float64
	for i := range a {
		a[i] = float64(1 + rng.Intn(g.RQ))
		rhs += a[i] * g.MaxPerAxis[i]
	}
	return core.Query{A: a, B: g.Ineq * rhs, Op: core.LE}
}

// Domains returns the continuous hull of the coefficient domains,
// suitable for core.Multi.SampleBudget.
func (g Eq18) Domains() []core.Domain {
	out := make([]core.Domain, g.Dim())
	for i := range out {
		out[i] = core.Domain{Lo: 1, Hi: float64(g.RQ)}
	}
	return out
}

// BuildIndexes adds up to budget indexes to m, sampling normals from
// the same discrete domains the queries use. Since only RQ^d distinct
// normals exist (and fewer distinct directions), the number actually
// added can be smaller than the budget once redundant normals are
// removed; that count is returned.
func (g Eq18) BuildIndexes(m *core.Multi, budget int, rng *rand.Rand) (int, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("queries: budget must be positive, got %d", budget)
	}
	d := g.Dim()
	signs := make([]int8, d)
	for i := range signs {
		signs[i] = 1
	}
	added := 0
	normal := make([]float64, d)
	for attempts := 0; added < budget && attempts < budget*20; attempts++ {
		for i := range normal {
			normal[i] = float64(1 + rng.Intn(g.RQ))
		}
		ok, err := m.AddNormal(normal, signs)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// DomainTracker learns per-coefficient domains from past queries
// (Section 4.1: "one may learn the domain ∆a_i for each query
// parameter based on the past queries, and dynamically update their
// domains with time").
type DomainTracker struct {
	lo, hi []float64
	n      int
}

// NewDomainTracker tracks dim coefficients.
func NewDomainTracker(dim int) (*DomainTracker, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("queries: tracker dimension must be positive, got %d", dim)
	}
	return &DomainTracker{lo: make([]float64, dim), hi: make([]float64, dim)}, nil
}

// Observe widens the tracked domains to cover a query's coefficients.
func (t *DomainTracker) Observe(a []float64) error {
	if len(a) != len(t.lo) {
		return fmt.Errorf("queries: observed %d coefficients, tracking %d", len(a), len(t.lo))
	}
	if t.n == 0 {
		copy(t.lo, a)
		copy(t.hi, a)
	} else {
		for i, v := range a {
			if v < t.lo[i] {
				t.lo[i] = v
			}
			if v > t.hi[i] {
				t.hi[i] = v
			}
		}
	}
	t.n++
	return nil
}

// Count returns how many queries have been observed.
func (t *DomainTracker) Count() int { return t.n }

// Domains returns the learned domains. It fails if no queries were
// observed or a coefficient changed sign across observations (such
// workloads must be split by octant before indexing).
func (t *DomainTracker) Domains() ([]core.Domain, error) {
	if t.n == 0 {
		return nil, errors.New("queries: no queries observed")
	}
	out := make([]core.Domain, len(t.lo))
	for i := range out {
		d := core.Domain{Lo: t.lo[i], Hi: t.hi[i]}
		if err := d.Validate(); err != nil {
			return nil, fmt.Errorf("coefficient %d: %w", i, err)
		}
		out[i] = d
	}
	return out, nil
}
