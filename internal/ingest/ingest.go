// Package ingest is the asynchronous write front-end of a planar
// store: a bounded multi-producer submission ring per commit lane
// accepts write intents (append/update/remove) and returns awaitable
// futures, while per-lane committer goroutines drain size- and
// time-bounded batches and hand them to the store as one group
// commit — one lock acquisition, one multi-record WAL frame, one
// fsync, one contiguous LSN range from the sequencer (see DESIGN.md
// §13).
//
// The write QPS of the synchronous path is capped by per-record fsync
// latency; grouping amortizes that latency over the whole batch, so
// sustained throughput scales with batch size while each writer still
// gets a durable ack — a future resolves only after the frame holding
// its record has been fsynced.
//
// Backpressure is explicit: a full ring either blocks the producer
// (Config.Block) or sheds the intent with ErrBacklog, which the HTTP
// layer maps to 429. Close drains — committers flush every queued
// intent, resolve its future, and exit; a submission racing with
// Close gets ErrClosed rather than a silently dropped write.
package ingest

import (
	"errors"
	"sync"
	"time"
)

// ErrBacklog reports a full submission ring in shedding mode; the
// caller should retry later (HTTP 429).
var ErrBacklog = errors.New("ingest: submission ring full")

// ErrClosed reports a submission against a pipeline that is draining
// or closed.
var ErrClosed = errors.New("ingest: pipeline closed")

// Intent is one write the pipeline will group-commit. Op uses the WAL
// op space (wal.OpAppend/OpUpdate/OpRemove); ID is the target point id
// for updates and removes and ignored for appends (the store assigns
// one at apply time).
type Intent struct {
	Op  uint8
	ID  uint32
	Vec []float64
}

// Result is the outcome of one committed intent. For a successful
// intent, ID is the (global) point id and LSN the commit sequence
// number its record received; Err carries a per-intent apply error
// (bad dimension, dead point) or a whole-batch journal failure.
type Result struct {
	ID  uint32
	LSN uint64
	Err error
}

// Future is the awaitable handle a submission returns. Exactly one
// goroutine may Wait on it, exactly once.
type Future struct {
	it *item
}

// Wait blocks until the committer resolves the intent — after the
// batch holding it has been applied and fsynced — and returns the
// outcome. The future is consumed: a second Wait would observe a
// recycled item.
func (f *Future) Wait() Result {
	res := <-f.it.done
	putItem(f.it)
	f.it = nil
	return res
}

// Resolved returns an already-resolved future, letting synchronous
// fallback paths satisfy the async API without a pipeline.
func Resolved(res Result) *Future {
	it := getItem()
	it.done <- res
	return &Future{it: it}
}

// item is the pooled unit flowing through the ring: the intent, its
// enqueue time (for ack-latency accounting), and the resolution
// channel the future waits on.
type item struct {
	intent Intent
	enq    time.Time
	done   chan Result
}

var itemPool = sync.Pool{
	New: func() any { return &item{done: make(chan Result, 1)} },
}

func getItem() *item { return itemPool.Get().(*item) }

func putItem(it *item) {
	it.intent = Intent{}
	it.enq = time.Time{}
	itemPool.Put(it)
}
