package ingest

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// ackBuckets is the ack-latency histogram width: bucket i counts acks
// with latency in [2^(i-1), 2^i) microseconds (bucket 0 is <1µs), so
// the top bucket covers ~34s — far beyond any sane flush interval.
const ackBuckets = 26

// sizeBuckets is the batch-size histogram width: bucket i counts
// batches of size in [2^i, 2^(i+1)), so the top bucket holds
// wal.MaxBatchRecords-sized batches (4096 = 2^12).
const sizeBuckets = 13

// stats is the pipeline's shared counter block. Everything is atomic:
// committers and producers bump counters without a lock, and snapshot
// readers tolerate being a tick behind.
type stats struct {
	submitted atomic.Uint64
	shed      atomic.Uint64
	batches   atomic.Uint64
	records   atomic.Uint64
	acks      [ackBuckets]atomic.Uint64
	sizes     [sizeBuckets]atomic.Uint64
}

func (s *stats) observeBatch(n int) {
	s.batches.Add(1)
	s.records.Add(uint64(n))
	i := bits.Len64(uint64(n)) - 1 // floor(log2 n); n ≥ 1
	if i >= sizeBuckets {
		i = sizeBuckets - 1
	}
	s.sizes[i].Add(1)
}

func (s *stats) observeAck(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= ackBuckets {
		i = ackBuckets - 1
	}
	s.acks[i].Add(1)
}

// Stats is a point-in-time snapshot of pipeline behavior, shaped for
// the /v1/stats ingest block.
type Stats struct {
	// Submitted counts intents accepted into a ring; Shed counts
	// intents refused with ErrBacklog.
	Submitted uint64
	Shed      uint64
	// Batches and Records count group commits and the records they
	// carried; FsyncsSaved is Records-Batches — the fsyncs the
	// synchronous path would have issued but grouping did not.
	Batches     uint64
	Records     uint64
	FsyncsSaved uint64
	// QueueDepth is the current total of queued intents across lanes.
	QueueDepth int
	// BatchSizes[i] counts batches of size in [2^i, 2^(i+1)).
	BatchSizes [sizeBuckets]uint64
	// AckP50 and AckP99 are ack-latency percentiles (submit to
	// resolve, which is after fsync) estimated from a power-of-two
	// microsecond histogram — each reported as its bucket's upper
	// bound.
	AckP50 time.Duration
	AckP99 time.Duration
}

func (s *stats) snapshot(depth int) Stats {
	out := Stats{
		Submitted:  s.submitted.Load(),
		Shed:       s.shed.Load(),
		Batches:    s.batches.Load(),
		Records:    s.records.Load(),
		QueueDepth: depth,
	}
	if out.Records > out.Batches {
		out.FsyncsSaved = out.Records - out.Batches
	}
	for i := range out.BatchSizes {
		out.BatchSizes[i] = s.sizes[i].Load()
	}
	var acks [ackBuckets]uint64
	var total uint64
	for i := range acks {
		acks[i] = s.acks[i].Load()
		total += acks[i]
	}
	out.AckP50 = percentile(acks, total, 50)
	out.AckP99 = percentile(acks, total, 99)
	return out
}

// percentile returns the upper bound of the histogram bucket holding
// the p-th percentile observation (0 when nothing was observed).
// Bucket i's upper bound is 2^i microseconds.
func percentile(h [ackBuckets]uint64, total uint64, p int) time.Duration {
	if total == 0 {
		return 0
	}
	rank := (total*uint64(p) + 99) / 100
	var cum uint64
	for i, c := range h {
		cum += c
		if cum >= rank {
			return time.Duration(uint64(1)<<i) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<(ackBuckets-1)) * time.Microsecond
}
