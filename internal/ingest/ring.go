package ingest

import "sync"

// ring is one lane's bounded MPMC submission queue: a fixed circular
// buffer of pooled items guarded by a mutex, a condition variable for
// producers blocked on a full ring, and a one-token notify channel
// that wakes the lane's committer without a thundering herd.
type ring struct {
	mu      sync.Mutex
	notFull *sync.Cond
	buf     []*item // guarded by mu
	head    int     // guarded by mu; index of the oldest queued item
	n       int     // guarded by mu; queued item count
	closed  bool    // guarded by mu

	notify chan struct{} // one-token committer wakeup
}

func newRing(capacity int) *ring {
	r := &ring{
		buf:    make([]*item, capacity),
		notify: make(chan struct{}, 1),
	}
	r.notFull = sync.NewCond(&r.mu)
	return r
}

// push enqueues an item. With block set, a full ring parks the
// producer until a committer drains space (backpressure); otherwise
// it sheds with ErrBacklog. After close, push always reports
// ErrClosed so drain terminates.
func (r *ring) push(it *item, block bool) error {
	r.mu.Lock()
	for r.n == len(r.buf) && !r.closed {
		if !block {
			r.mu.Unlock()
			return ErrBacklog
		}
		r.notFull.Wait()
	}
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.buf[(r.head+r.n)%len(r.buf)] = it
	r.n++
	r.mu.Unlock()
	select {
	case r.notify <- struct{}{}:
	default:
	}
	return nil
}

// tryPop moves up to max queued items into dst and returns the
// extended slice, waking any producers blocked on a full ring.
func (r *ring) tryPop(dst []*item, max int) []*item {
	r.mu.Lock()
	took := 0
	for r.n > 0 && took < max {
		it := r.buf[r.head]
		r.buf[r.head] = nil
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		took++
		dst = append(dst, it)
	}
	if took > 0 {
		r.notFull.Broadcast()
	}
	r.mu.Unlock()
	return dst
}

// close marks the ring closed and releases blocked producers; queued
// items stay queued for the committer's final drain.
func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	r.notFull.Broadcast()
	r.mu.Unlock()
}

// depth returns the current queue length (stats gauge).
func (r *ring) depth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
