package ingest

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gather starts a pipeline whose commit func records every batch and
// assigns ids/LSNs sequentially, mimicking the store.
type recorder struct {
	mu      sync.Mutex
	batches [][]Intent
	nextLSN uint64
	gate    chan struct{} // when non-nil, commit blocks until it closes
}

func (r *recorder) commit(lane int, intents []Intent, results []Result) error {
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := make([]Intent, len(intents))
	copy(cp, intents)
	r.batches = append(r.batches, cp)
	for i := range intents {
		r.nextLSN++
		results[i] = Result{ID: uint32(i), LSN: r.nextLSN}
	}
	return nil
}

func TestSubmitResolvesInOrder(t *testing.T) {
	rec := &recorder{}
	p, err := New(Config{BatchSize: 8, FlushInterval: time.Millisecond, Commit: rec.commit})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var futs []*Future
	for i := 0; i < 20; i++ {
		f, err := p.Submit(0, Intent{Op: 1, Vec: []float64{float64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	var lastLSN uint64
	for i, f := range futs {
		res := f.Wait()
		if res.Err != nil {
			t.Fatalf("intent %d: %v", i, res.Err)
		}
		if res.LSN <= lastLSN {
			t.Fatalf("intent %d: LSN %d not after %d — lane order broken", i, res.LSN, lastLSN)
		}
		lastLSN = res.LSN
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	total := 0
	for _, b := range rec.batches {
		if len(b) > 8 {
			t.Fatalf("batch of %d exceeds BatchSize 8", len(b))
		}
		total += len(b)
	}
	if total != 20 {
		t.Fatalf("committed %d intents, want 20", total)
	}
	// One lane: intents commit in submission order across batches.
	i := 0
	for _, b := range rec.batches {
		for _, in := range b {
			if in.Vec[0] != float64(i) {
				t.Fatalf("commit order broken at %d: %v", i, in.Vec)
			}
			i++
		}
	}
}

func TestShedOnFullRing(t *testing.T) {
	rec := &recorder{gate: make(chan struct{})}
	p, err := New(Config{BatchSize: 2, QueueDepth: 2, FlushInterval: time.Millisecond, Commit: rec.commit})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// The committer is gated, so submissions pile up: 2 queued in the
	// ring plus up to one batch in flight. Keep pushing until the
	// ring refuses.
	var futs []*Future
	var refused bool
	for i := 0; i < 10; i++ {
		f, err := p.Submit(0, Intent{Op: 3, ID: uint32(i)})
		if errors.Is(err, ErrBacklog) {
			refused = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	if !refused {
		t.Fatal("full ring never shed")
	}
	if got := p.Stats().Shed; got == 0 {
		t.Fatal("shed counter not bumped")
	}
	close(rec.gate)
	for _, f := range futs {
		if res := f.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
}

func TestBlockingBackpressure(t *testing.T) {
	rec := &recorder{gate: make(chan struct{})}
	p, err := New(Config{BatchSize: 2, QueueDepth: 2, Block: true, FlushInterval: time.Millisecond, Commit: rec.commit})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const writers = 6
	var done atomic.Int32
	var wg sync.WaitGroup
	futs := make([]*Future, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := p.Submit(0, Intent{Op: 3, ID: uint32(i)})
			if err != nil {
				t.Error(err)
				return
			}
			futs[i] = f
			done.Add(1)
		}(i)
	}
	// With the committer gated, at most ring+inflight submissions can
	// get through; the rest must be parked, not shed.
	time.Sleep(20 * time.Millisecond)
	if n := done.Load(); n == writers {
		t.Fatal("no producer blocked on the full ring")
	}
	close(rec.gate)
	wg.Wait()
	for _, f := range futs {
		if res := f.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if got := p.Stats().Shed; got != 0 {
		t.Fatalf("blocking mode shed %d intents", got)
	}
}

func TestCloseDrainsQueuedIntents(t *testing.T) {
	rec := &recorder{}
	p, err := New(Config{BatchSize: 4, FlushInterval: 50 * time.Millisecond, Commit: rec.commit})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for i := 0; i < 10; i++ {
		f, err := p.Submit(0, Intent{Op: 3, ID: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	p.Close()
	// Every accepted intent resolved — drain never drops acked work.
	for i, f := range futs {
		if res := f.Wait(); res.Err != nil {
			t.Fatalf("intent %d failed in drain: %v", i, res.Err)
		}
	}
	if _, err := p.Submit(0, Intent{Op: 3}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	p.Close() // idempotent
}

func TestCloseStopsCommitterGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		rec := &recorder{}
		p, err := New(Config{Lanes: 4, BatchSize: 8, Commit: rec.commit})
		if err != nil {
			t.Fatal(err)
		}
		var futs []*Future
		for i := 0; i < 64; i++ {
			f, err := p.Submit(i%4, Intent{Op: 3, ID: uint32(i)})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		p.Close()
		for _, f := range futs {
			f.Wait()
		}
	}
	// Committers exit on Close; allow slack for runtime goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if after := runtime.NumGoroutine(); after <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWholeBatchErrorFansOut(t *testing.T) {
	boom := errors.New("journal: disk full")
	p, err := New(Config{BatchSize: 4, FlushInterval: time.Millisecond,
		Commit: func(int, []Intent, []Result) error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var futs []*Future
	for i := 0; i < 4; i++ {
		f, err := p.Submit(0, Intent{Op: 3, ID: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if res := f.Wait(); !errors.Is(res.Err, boom) {
			t.Fatalf("batch error not fanned out: %v", res.Err)
		}
	}
}

func TestPerIntentErrorsStayScoped(t *testing.T) {
	bad := errors.New("apply: dead point")
	p, err := New(Config{BatchSize: 8, FlushInterval: time.Millisecond,
		Commit: func(_ int, intents []Intent, results []Result) error {
			for i, in := range intents {
				if in.ID%2 == 1 {
					results[i] = Result{Err: bad}
				} else {
					results[i] = Result{ID: in.ID, LSN: uint64(in.ID) + 1}
				}
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var futs []*Future
	for i := 0; i < 8; i++ {
		f, err := p.Submit(0, Intent{Op: 2, ID: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		res := f.Wait()
		if i%2 == 1 && !errors.Is(res.Err, bad) {
			t.Fatalf("intent %d: want scoped error, got %v", i, res.Err)
		}
		if i%2 == 0 && res.Err != nil {
			t.Fatalf("intent %d: neighbor's error leaked: %v", i, res.Err)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	rec := &recorder{}
	p, err := New(Config{BatchSize: 64, FlushInterval: 5 * time.Millisecond, Commit: rec.commit})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for i := 0; i < 32; i++ {
		f, err := p.Submit(0, Intent{Op: 3, ID: uint32(i)})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		f.Wait()
	}
	p.Close()
	st := p.Stats()
	if st.Submitted != 32 || st.Records != 32 {
		t.Fatalf("submitted=%d records=%d, want 32", st.Submitted, st.Records)
	}
	if st.Batches == 0 || st.Batches > 32 {
		t.Fatalf("batches=%d", st.Batches)
	}
	if st.FsyncsSaved != st.Records-st.Batches {
		t.Fatalf("fsyncsSaved=%d, want %d", st.FsyncsSaved, st.Records-st.Batches)
	}
	if st.AckP50 == 0 || st.AckP99 < st.AckP50 {
		t.Fatalf("ack percentiles p50=%v p99=%v", st.AckP50, st.AckP99)
	}
	var sized uint64
	for _, c := range st.BatchSizes {
		sized += c
	}
	if sized != st.Batches {
		t.Fatalf("batch-size histogram holds %d batches, want %d", sized, st.Batches)
	}
	if st.QueueDepth != 0 {
		t.Fatalf("drained pipeline reports depth %d", st.QueueDepth)
	}
}

func TestResolvedFuture(t *testing.T) {
	f := Resolved(Result{ID: 7, LSN: 9})
	res := f.Wait()
	if res.ID != 7 || res.LSN != 9 || res.Err != nil {
		t.Fatalf("resolved future: %+v", res)
	}
}

func TestRaceManyWriters(t *testing.T) {
	rec := &recorder{}
	p, err := New(Config{Lanes: 4, BatchSize: 32, QueueDepth: 64, Block: true,
		FlushInterval: time.Millisecond, Commit: rec.commit})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f, err := p.Submit((w*perWriter+i)%4, Intent{Op: 1, Vec: []float64{float64(w), float64(i)}})
				if err != nil {
					t.Error(err)
					return
				}
				if res := f.Wait(); res.Err != nil {
					t.Error(res.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	p.Close()
	if st := p.Stats(); st.Records != writers*perWriter {
		t.Fatalf("records=%d, want %d", st.Records, writers*perWriter)
	}
}
