package ingest

import (
	"fmt"
	"sync"
	"time"
)

// CommitFunc applies one drained batch to the store: apply every
// intent under one lock acquisition, journal the survivors as one WAL
// frame with one fsync, and fill results[i] for each intent (id, LSN,
// or per-intent apply error). A returned error is a whole-batch
// failure — typically the journal append — and fails every future in
// the batch.
type CommitFunc func(lane int, intents []Intent, results []Result) error

// Config sizes a pipeline.
type Config struct {
	// Lanes is the number of independent commit lanes — 1 for a
	// single store, the shard fan-out for a sharded one. Intents in
	// one lane commit in submission order.
	Lanes int
	// BatchSize caps records per group commit (default 256, hard
	// ceiling wal.MaxBatchRecords via the committer's WAL).
	BatchSize int
	// FlushInterval bounds how long the first intent of a batch waits
	// for the batch to fill (default 2ms). It is the ack-latency
	// ceiling under light load.
	FlushInterval time.Duration
	// QueueDepth is the per-lane ring capacity (default 4×BatchSize).
	QueueDepth int
	// Block selects backpressure mode: block producers on a full ring
	// (true) or shed with ErrBacklog (false, the default — the HTTP
	// layer answers 429).
	Block bool
	// Commit applies drained batches.
	Commit CommitFunc
}

// DefaultBatchSize is the records-per-group-commit cap when Config
// leaves BatchSize zero.
const DefaultBatchSize = 256

// DefaultFlushInterval is the batch-fill wait ceiling when Config
// leaves FlushInterval zero.
const DefaultFlushInterval = 2 * time.Millisecond

// Pipeline is the running subsystem: one ring and one committer
// goroutine per lane, plus shared stats.
type Pipeline struct {
	cfg       Config
	lanes     []*lane
	stats     stats
	done      chan struct{} // closed by Close; committers drain and exit
	committer sync.WaitGroup
	closeOnce sync.Once
}

type lane struct {
	idx  int
	ring *ring
	// committer-private scratch, reused across batches.
	items   []*item
	intents []Intent
	results []Result
}

// New starts a pipeline. Commit must be set; zero sizing fields take
// defaults.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Commit == nil {
		return nil, fmt.Errorf("ingest: Config.Commit is required")
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.BatchSize
	}
	p := &Pipeline{cfg: cfg, done: make(chan struct{})}
	for i := 0; i < cfg.Lanes; i++ {
		p.lanes = append(p.lanes, &lane{
			idx:     i,
			ring:    newRing(cfg.QueueDepth),
			items:   make([]*item, 0, cfg.BatchSize),
			intents: make([]Intent, 0, cfg.BatchSize),
			results: make([]Result, cfg.BatchSize),
		})
	}
	p.committer.Add(len(p.lanes))
	for _, l := range p.lanes {
		go func(l *lane) {
			defer p.committer.Done()
			p.run(l)
		}(l)
	}
	return p, nil
}

// Lanes returns the pipeline's lane count (the store's routing
// modulus).
func (p *Pipeline) Lanes() int { return len(p.lanes) }

// Submit enqueues one intent on a lane and returns its future. The
// caller picks the lane (the store routes same-key intents to a fixed
// lane so per-key order is preserved). A full ring blocks or sheds
// per Config.Block; a closed pipeline reports ErrClosed.
func (p *Pipeline) Submit(laneIdx int, in Intent) (*Future, error) {
	l := p.lanes[laneIdx]
	it := getItem()
	it.intent = in
	it.enq = time.Now()
	if err := l.ring.push(it, p.cfg.Block); err != nil {
		putItem(it)
		if err == ErrBacklog {
			p.stats.shed.Add(1)
		}
		return nil, err
	}
	p.stats.submitted.Add(1)
	return &Future{it: it}, nil
}

// Close drains the pipeline: rings stop accepting work, committers
// flush and resolve everything still queued, and Close returns once
// the last committer has exited. Safe to call more than once.
func (p *Pipeline) Close() {
	p.closeOnce.Do(func() {
		for _, l := range p.lanes {
			l.ring.close()
		}
		close(p.done)
	})
	p.committer.Wait()
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats {
	depth := 0
	for _, l := range p.lanes {
		depth += l.ring.depth()
	}
	return p.stats.snapshot(depth)
}

// run is the committer loop for one lane: collect a batch (bounded by
// BatchSize and FlushInterval), commit it, resolve its futures;
// repeat until the ring is closed and drained.
func (p *Pipeline) run(l *lane) {
	for {
		batch := p.collect(l)
		if len(batch) == 0 {
			return
		}
		p.commit(l, batch)
	}
}

// collect blocks for the first queued item, then tops the batch up
// until it is full or the flush interval from first arrival elapses.
// After Close it returns whatever remains, then an empty batch.
func (p *Pipeline) collect(l *lane) []*item {
	max := p.cfg.BatchSize
	batch := l.items[:0]
	for {
		batch = l.ring.tryPop(batch, max)
		if len(batch) > 0 {
			break
		}
		select {
		case <-l.ring.notify:
		case <-p.done:
			// Final drain: pick up anything pushed before close won
			// the race; an empty result ends the committer.
			return l.ring.tryPop(batch, max)
		}
	}
	if len(batch) < max {
		t := time.NewTimer(p.cfg.FlushInterval)
		for len(batch) < max {
			select {
			case <-l.ring.notify:
				batch = l.ring.tryPop(batch, max-len(batch))
			case <-p.done:
				t.Stop()
				return l.ring.tryPop(batch, max-len(batch))
			case <-t.C:
				return batch
			}
		}
		t.Stop()
	}
	return batch
}

// commit hands one batch to the store and resolves every future; a
// whole-batch error fans out to each of them.
func (p *Pipeline) commit(l *lane, batch []*item) {
	intents := l.intents[:0]
	for _, it := range batch {
		intents = append(intents, it.intent)
	}
	results := l.results[:len(batch)]
	for i := range results {
		results[i] = Result{}
	}
	err := p.cfg.Commit(l.idx, intents, results)
	now := time.Now()
	for i, it := range batch {
		res := results[i]
		if err != nil {
			res = Result{Err: err}
		}
		p.stats.observeAck(now.Sub(it.enq))
		it.done <- res
		batch[i] = nil
	}
	p.stats.observeBatch(len(batch))
}
