package core

import (
	"math/rand"
	"sync"
	"testing"

	"planar/internal/vecmath"
)

// TestConcurrentQueriesAndUpdates hammers a Multi with concurrent
// readers (inequality, top-k, count) and writers (update, append,
// remove). Run with -race; correctness of the final state is then
// checked against brute force.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := randomStore(t, rng, 2000, 3, 1, 100)
	m, err := NewMulti(s)
	if err != nil {
		t.Fatal(err)
	}
	m.AddNormal([]float64{1, 1, 1}, vecmath.FirstOctant(3))
	m.AddNormal([]float64{3, 1, 2}, vecmath.FirstOctant(3))

	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 32)

	// Readers run until the writers finish.
	for g := 0; g < 8; g++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			r := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := Query{
					A:  []float64{1 + r.Float64()*4, 1 + r.Float64()*4, 1 + r.Float64()*4},
					B:  r.Float64() * 500,
					Op: LE,
				}
				switch r.Intn(3) {
				case 0:
					if _, _, err := m.InequalityIDs(q); err != nil {
						errCh <- err
						return
					}
				case 1:
					if _, _, err := m.TopK(q, 5); err != nil {
						errCh <- err
						return
					}
				default:
					if _, _, err := m.Count(q); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(g))
	}

	// Writers.
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			r := rand.New(rand.NewSource(seed + 100))
			for i := 0; i < 500; i++ {
				id := uint32(r.Intn(2000))
				v := []float64{1 + r.Float64()*99, 1 + r.Float64()*99, 1 + r.Float64()*99}
				if err := m.Update(id, v); err != nil {
					// Another writer may have removed the point; only
					// report unexpected failures.
					continue
				}
				if i%50 == 0 {
					if _, err := m.Append(v); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(int64(g))
	}

	writers.Wait()
	close(stop)
	readers.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Final state must still answer exactly.
	for trial := 0; trial < 20; trial++ {
		q := Query{
			A:  []float64{1 + rng.Float64()*4, 1 + rng.Float64()*4, 1 + rng.Float64()*4},
			B:  rng.Float64() * 500,
			Op: LE,
		}
		ids, _, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
			t.Fatalf("trial %d: state corrupted by concurrent load", trial)
		}
	}
	for i := 0; i < m.NumIndexes(); i++ {
		if m.Index(i).Len() != s.Len() {
			t.Fatalf("index %d size %d, store %d", i, m.Index(i).Len(), s.Len())
		}
	}
}
