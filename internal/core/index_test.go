package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"planar/internal/vecmath"
)

// randomStore builds a store of n points with coordinates drawn
// uniformly from [lo, hi) per axis.
func randomStore(t testing.TB, rng *rand.Rand, n, dim int, lo, hi float64) *PointStore {
	t.Helper()
	s, err := NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = lo + rng.Float64()*(hi-lo)
		}
		if _, err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// bruteForce returns the sorted ids satisfying q by scanning.
func bruteForce(s *PointStore, q Query) []uint32 {
	var ids []uint32
	s.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			ids = append(ids, id)
		}
		return true
	})
	return ids
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewIndexValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randomStore(t, rng, 10, 3, 0, 1)
	oct := vecmath.FirstOctant(3)
	if _, err := NewIndex(nil, []float64{1, 1, 1}, oct); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewIndex(s, []float64{1, 1}, oct); err == nil {
		t.Error("wrong-dim normal accepted")
	}
	if _, err := NewIndex(s, []float64{1, 0, 1}, oct); err == nil {
		t.Error("zero normal component accepted")
	}
	if _, err := NewIndex(s, []float64{1, -1, 1}, oct); err == nil {
		t.Error("negative normal component accepted")
	}
	if _, err := NewIndex(s, []float64{1, math.NaN(), 1}, oct); err == nil {
		t.Error("NaN normal accepted")
	}
	if _, err := NewIndex(s, []float64{1, 1, 1}, vecmath.SignPattern{1, 1}); err == nil {
		t.Error("wrong-dim signs accepted")
	}
	if _, err := NewIndex(s, []float64{1, 1, 1}, vecmath.SignPattern{1, 0, 1}); err == nil {
		t.Error("zero sign accepted")
	}
	ix, err := NewIndex(s, []float64{1, 2, 3}, oct)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 10 {
		t.Fatalf("Len=%d", ix.Len())
	}
	if got := ix.Normal(); got[2] != 3 {
		t.Fatalf("Normal=%v", got)
	}
	if got := ix.Signs(); !got.Equal(oct) {
		t.Fatalf("Signs=%v", got)
	}
	if got := ix.EffectiveNormal(); got[0] != 1 {
		t.Fatalf("EffectiveNormal=%v", got)
	}
	if ix.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes non-positive")
	}
}

func TestInequalityMatchesBruteForceFirstOctant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dim := range []int{1, 2, 3, 6} {
		s := randomStore(t, rng, 500, dim, 1, 100)
		normal := make([]float64, dim)
		for i := range normal {
			normal[i] = 1 + rng.Float64()*5
		}
		ix, err := NewIndex(s, normal, vecmath.FirstOctant(dim))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			a := make([]float64, dim)
			for i := range a {
				a[i] = 1 + rng.Float64()*10
			}
			// Bounds spanning empty through full selectivity.
			b := rng.Float64() * 200 * float64(dim) * 5
			q := Query{A: a, B: b, Op: LE}
			ids, st, err := ix.InequalityIDs(q)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(s, q)
			if !equalIDs(sortedIDs(ids), want) {
				t.Fatalf("dim=%d trial=%d: got %d ids want %d", dim, trial, len(ids), len(want))
			}
			if st.Accepted+st.Verified+st.Rejected != st.N {
				t.Fatalf("stats do not add up: %+v", st)
			}
			if st.Results() != len(ids) {
				t.Fatalf("Results()=%d want %d", st.Results(), len(ids))
			}
		}
	}
}

func TestInequalityAllOctantsAndOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dim := 3
	// Data spread across all octants, including negative coords.
	s := randomStore(t, rng, 400, dim, -50, 50)
	for oct := 0; oct < 8; oct++ {
		signs := make(vecmath.SignPattern, dim)
		for i := range signs {
			if oct>>i&1 == 1 {
				signs[i] = -1
			} else {
				signs[i] = 1
			}
		}
		normal := []float64{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()}
		ix, err := NewIndex(s, normal, signs)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			a := make([]float64, dim)
			for i := range a {
				a[i] = float64(signs[i]) * (rng.Float64() * 5)
			}
			if trial%5 == 0 {
				a[rng.Intn(dim)] = 0 // exercise ignored axes
			}
			b := (rng.Float64() - 0.3) * 300
			q := Query{A: a, B: b, Op: LE}
			ids, st, err := ix.InequalityIDs(q)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForce(s, q)
			if !equalIDs(sortedIDs(ids), want) {
				t.Fatalf("oct=%s trial=%d: got %d want %d (stats %+v)",
					signs, trial, len(ids), len(want), st)
			}
		}
	}
}

func TestGEQueriesViaNegatedOctant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dim := 2
	s := randomStore(t, rng, 300, dim, 0, 10)
	// A GE query with positive coefficients normalises to an LE query
	// with all-negative coefficients, so the serving index must be
	// built for the all-negative octant.
	neg := vecmath.FirstOctant(dim).Negate()
	ix, err := NewIndex(s, []float64{1, 1}, neg)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		q := Query{
			A:  []float64{rng.Float64() * 4, rng.Float64() * 4},
			B:  rng.Float64() * 60,
			Op: GE,
		}
		if q.A[0] == 0 && q.A[1] == 0 {
			continue
		}
		ids, _, err := ix.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(s, q)
		if !equalIDs(sortedIDs(ids), want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(ids), len(want))
		}
	}
	// The positive octant index must refuse the same GE query.
	pos, _ := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(dim))
	_, _, err = pos.InequalityIDs(Query{A: []float64{1, 1}, B: 5, Op: GE})
	if err != ErrIncompatibleOctant {
		t.Fatalf("expected ErrIncompatibleOctant, got %v", err)
	}
}

func TestDegenerateQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomStore(t, rng, 100, 2, 1, 10)
	ix, _ := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))

	// All-zero coefficients, non-negative bound: everything matches.
	ids, st, err := ix.InequalityIDs(Query{A: []float64{0, 0}, B: 0, Op: LE})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 100 || st.Accepted != 100 {
		t.Fatalf("all-match case: ids=%d stats=%+v", len(ids), st)
	}
	// All-zero coefficients, negative bound: nothing matches.
	ids, st, err = ix.InequalityIDs(Query{A: []float64{0, 0}, B: -1, Op: LE})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 || st.Rejected != 100 {
		t.Fatalf("none-match case: ids=%d stats=%+v", len(ids), st)
	}
	// Negative bound with positive data: empty without verification.
	ids, st, err = ix.InequalityIDs(Query{A: []float64{1, 1}, B: -5, Op: LE})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 || st.Verified != 0 {
		t.Fatalf("b<0 case: ids=%d stats=%+v", len(ids), st)
	}
	// Invalid queries.
	if _, _, err := ix.InequalityIDs(Query{A: []float64{1}, B: 0, Op: LE}); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if _, _, err := ix.InequalityIDs(Query{A: []float64{1, math.NaN()}, B: 0, Op: LE}); err == nil {
		t.Error("NaN query accepted")
	}
	if _, _, err := ix.InequalityIDs(Query{A: []float64{1, 1}, B: math.Inf(1), Op: LE}); err == nil {
		t.Error("infinite bound accepted")
	}
	if _, _, err := ix.InequalityIDs(Query{A: []float64{1, 1}, B: 0, Op: Op(9)}); err == nil {
		t.Error("bad op accepted")
	}
}

func TestParallelIndexGivesEmptyIntermediateInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomStore(t, rng, 1000, 3, 1, 100)
	normal := []float64{2, 3, 4}
	ix, _ := NewIndex(s, normal, vecmath.FirstOctant(3))
	// Query hyperplane parallel to the index family (same normal):
	// Corollary 1 says stretch is 0 and the II is (nearly) empty.
	q := Query{A: normal, B: 500, Op: LE}
	_, st, err := ix.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Verified > 2 { // guard band may catch boundary points
		t.Fatalf("parallel query verified %d points, want ~0", st.Verified)
	}
	if got := ix.Stretch(q); got > 1e-6 {
		t.Fatalf("Stretch=%v want ~0", got)
	}
	if got := ix.CosToQuery(q); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CosToQuery=%v want 1", got)
	}
}

func TestEarlyStopVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomStore(t, rng, 200, 2, 1, 10)
	ix, _ := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))
	count := 0
	_, err := ix.Inequality(Query{A: []float64{1, 1}, B: 1e6, Op: LE}, func(uint32) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("visited %d want 5", count)
	}
}

func TestDynamicAddAndGuardRebuild(t *testing.T) {
	s, _ := NewPointStore(2)
	for i := 0; i < 50; i++ {
		s.Append([]float64{float64(i), float64(50 - i)})
	}
	ix, err := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))
	if err != nil {
		t.Fatal(err)
	}
	// Adding a point with a negative coordinate violates the
	// first-octant translation (δ was 0) and must trigger a rebuild
	// rather than a corrupt index.
	id, _ := s.Append([]float64{-10, 5})
	if err := ix.Add(id); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 51 {
		t.Fatalf("Len=%d", ix.Len())
	}
	q := Query{A: []float64{2, 3}, B: 40, Op: LE}
	ids, _, err := ix.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
		t.Fatal("index wrong after rebuild-on-add")
	}
	if err := ix.Add(9999); err == nil {
		t.Error("Add of dead id succeeded")
	}
}

func TestEmptyStoreQueries(t *testing.T) {
	s, err := NewPointStore(2)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{A: []float64{1, 1}, B: 10, Op: LE}
	ids, st, err := ix.InequalityIDs(q)
	if err != nil || len(ids) != 0 || st.N != 0 {
		t.Fatalf("empty inequality: ids=%v st=%+v err=%v", ids, st, err)
	}
	res, _, err := ix.TopK(q, 3)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty topk: res=%v err=%v", res, err)
	}
	count, _, err := ix.Count(q)
	if err != nil || count != 0 {
		t.Fatalf("empty count: %d err=%v", count, err)
	}
	lo, hi, err := ix.SelectivityBounds(q)
	if err != nil || lo != 0 || hi != 0 {
		t.Fatalf("empty bounds: [%d,%d] err=%v", lo, hi, err)
	}
	// Points added after construction are indexed.
	id, _ := s.Append([]float64{1, 2})
	if err := ix.Add(id); err != nil {
		t.Fatal(err)
	}
	ids, _, _ = ix.InequalityIDs(q)
	if len(ids) != 1 {
		t.Fatalf("after add: ids=%v", ids)
	}
}

func TestStatsPruningFraction(t *testing.T) {
	st := Stats{N: 100, Accepted: 30, Verified: 20, Matched: 5, Rejected: 50}
	if got := st.PruningFraction(); got != 0.8 {
		t.Fatalf("PruningFraction=%v", got)
	}
	if got := (Stats{}).PruningFraction(); got != 0 {
		t.Fatalf("empty PruningFraction=%v", got)
	}
	if st.Results() != 35 {
		t.Fatalf("Results=%d", st.Results())
	}
}

func TestQueryHelpers(t *testing.T) {
	q, err := NewQuery([]float64{3, 4}, 10, LE)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Satisfies([]float64{1, 1}) { // 7 <= 10
		t.Error("Satisfies LE wrong")
	}
	if q.Satisfies([]float64{10, 10}) {
		t.Error("Satisfies LE wrong (should fail)")
	}
	g := Query{A: []float64{3, 4}, B: 10, Op: GE}
	if g.Satisfies([]float64{1, 1}) {
		t.Error("Satisfies GE wrong")
	}
	if !g.Satisfies([]float64{10, 10}) {
		t.Error("Satisfies GE wrong (should pass)")
	}
	if d := q.Distance([]float64{2, 1}); d != 0 {
		t.Errorf("Distance=%v", d)
	}
	h, err := q.Hyperplane()
	if err != nil || h.Offset != 10 {
		t.Errorf("Hyperplane=%v err=%v", h, err)
	}
	if LE.String() != "<=" || GE.String() != ">=" || Op(7).String() == "" {
		t.Error("Op.String broken")
	}
	if _, err := NewQuery([]float64{1}, math.NaN(), LE); err == nil {
		t.Error("NaN bound accepted")
	}
}

// Property: for random data, random octant-consistent queries, the
// planar answer always equals brute force and the stats always add
// up. This is the library's central exactness guarantee.
func TestInequalityExactnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		dim := 1 + rng.Intn(5)
		n := 50 + rng.Intn(300)
		lo := -100 + rng.Float64()*100
		hi := lo + rng.Float64()*200
		s := randomStore(t, rng, n, dim, lo, hi)
		signs := make(vecmath.SignPattern, dim)
		for i := range signs {
			if rng.Intn(2) == 0 {
				signs[i] = 1
			} else {
				signs[i] = -1
			}
		}
		normal := make([]float64, dim)
		for i := range normal {
			normal[i] = 0.1 + rng.Float64()*9.9
		}
		ix, err := NewIndex(s, normal, signs)
		if err != nil {
			t.Fatal(err)
		}
		for qt := 0; qt < 10; qt++ {
			a := make([]float64, dim)
			for i := range a {
				a[i] = float64(signs[i]) * rng.Float64() * 10
			}
			b := (rng.Float64()*2 - 0.5) * 1000
			op := LE
			if rng.Intn(2) == 0 {
				// GE flips the octant; negate coefficients so the
				// normalized query matches this index.
				op = GE
				for i := range a {
					a[i] = -a[i]
				}
				b = -b
			}
			q := Query{A: a, B: b, Op: op}
			ids, st, err := ix.InequalityIDs(q)
			if err != nil {
				t.Fatalf("trial=%d qt=%d: %v", trial, qt, err)
			}
			if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
				t.Fatalf("trial=%d qt=%d: mismatch (dim=%d n=%d)", trial, qt, dim, n)
			}
			if st.Accepted+st.Verified+st.Rejected != st.N {
				t.Fatalf("stats inconsistent: %+v", st)
			}
		}
	}
}
