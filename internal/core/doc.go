// Package core implements the Planar index of Khan et al., "Towards
// Indexing Functions: Answering Scalar Product Queries" (SIGMOD
// 2014).
//
// A scalar product query asks, over a set of data points x whose
// feature vectors φ(x) ∈ R^d' are known ahead of time, for all points
// satisfying ⟨a, φ(x)⟩ ≤ b (or ≥ b), where the parameters (a, b)
// arrive only at query time. The Planar index keys every point by its
// scalar product with a fixed normal vector c and keeps those keys
// sorted; at query time the sorted order yields three key ranges —
// the smaller interval (all points accepted without computing the
// product), the larger interval (all rejected), and the intermediate
// interval (verified exactly).
//
// The package provides:
//
//   - PointStore: shared, flat storage of φ vectors, so many indexes
//     over the same points cost O(n) each rather than O(n·d').
//   - Index: a single planar index — construction (with the paper's
//     octant translation, Section 4.5), inequality queries
//     (Algorithm 1), top-k nearest-neighbour queries (Algorithm 2),
//     and O(log n) dynamic updates backed by a B+ tree.
//   - Multi: a budgeted collection of indexes with the paper's two
//     best-index selection heuristics (volume/stretch minimisation
//     and angle minimisation, Section 5) plus uniform normal sampling
//     from parameter domains and redundancy elimination.
//
// All query answers are exact: the interval thresholds carry a small
// conservative guard band so that floating-point rounding can only
// move points from the accept/reject ranges into the verified range,
// never the other way.
package core
