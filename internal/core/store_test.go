package core

import (
	"math"
	"testing"
)

func TestNewPointStoreValidation(t *testing.T) {
	if _, err := NewPointStore(0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := NewPointStore(-3); err == nil {
		t.Error("negative dim accepted")
	}
	s, err := NewPointStore(2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 2 || s.Len() != 0 {
		t.Fatalf("Dim=%d Len=%d", s.Dim(), s.Len())
	}
}

func TestAppendSetRemove(t *testing.T) {
	s, _ := NewPointStore(2)
	id0, err := s.Append([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := s.Append([]float64{3, 4})
	if id0 == id1 {
		t.Fatal("duplicate ids")
	}
	if s.Len() != 2 || s.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d", s.Len(), s.Cap())
	}
	v := s.Vector(id1)
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("Vector=%v", v)
	}
	if err := s.Set(id0, []float64{9, 8}); err != nil {
		t.Fatal(err)
	}
	if s.Vector(id0)[0] != 9 {
		t.Fatal("Set did not take effect")
	}
	if err := s.Remove(id0); err != nil {
		t.Fatal(err)
	}
	if s.Live(id0) {
		t.Fatal("removed point still live")
	}
	if err := s.Remove(id0); err == nil {
		t.Fatal("double remove succeeded")
	}
	if err := s.Set(id0, []float64{1, 1}); err == nil {
		t.Fatal("Set on dead point succeeded")
	}
	// Row recycling.
	id2, _ := s.Append([]float64{5, 6})
	if id2 != id0 {
		t.Fatalf("expected recycled id %d, got %d", id0, id2)
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d", s.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := NewPointStore(2)
	if _, err := s.Append([]float64{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if _, err := s.Append([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := s.Append([]float64{1, math.Inf(-1)}); err == nil {
		t.Error("-Inf accepted")
	}
}

func TestFromMatrix(t *testing.T) {
	s, err := FromMatrix([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if _, err := FromMatrix(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := FromMatrix([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestEachAndAxisRange(t *testing.T) {
	s, _ := FromMatrix([][]float64{{1, -5}, {3, 7}, {2, 0}})
	count := 0
	s.Each(func(id uint32, v []float64) bool { count++; return true })
	if count != 3 {
		t.Fatalf("Each visited %d", count)
	}
	count = 0
	s.Each(func(id uint32, v []float64) bool { count++; return false })
	if count != 1 {
		t.Fatalf("Each early stop visited %d", count)
	}
	lo, hi, ok := s.AxisRange(1)
	if !ok || lo != -5 || hi != 7 {
		t.Fatalf("AxisRange=(%v,%v,%v)", lo, hi, ok)
	}
	// Removing the extremes changes the range.
	s.Remove(0)
	lo, hi, _ = s.AxisRange(1)
	if lo != 0 || hi != 7 {
		t.Fatalf("AxisRange after remove=(%v,%v)", lo, hi)
	}
	empty, _ := NewPointStore(1)
	if _, _, ok := empty.AxisRange(0); ok {
		t.Fatal("AxisRange ok on empty store")
	}
}

func TestVectorIsView(t *testing.T) {
	s, _ := FromMatrix([][]float64{{1, 2}})
	v := s.Vector(0)
	s.Set(0, []float64{7, 8})
	if v[0] != 7 {
		t.Fatal("Vector should alias storage")
	}
	if s.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes non-positive")
	}
}
