package core

import (
	"errors"
	"fmt"

	"planar/internal/vecmath"
)

// PointStore holds the φ(x) vectors of every data point in a flat,
// row-major []float64. It is shared between all planar indexes over
// the same points, so a budget of r indexes costs O(n·d' + r·n)
// memory (paper Section 5.2).
//
// Point identifiers are dense uint32 row numbers assigned by Append.
// Removed rows are recycled. PointStore itself is not synchronised;
// Multi serialises mutations across the store and its indexes.
type PointStore struct {
	dim  int
	data []float64
	live []bool
	free []uint32
	n    int // live count
	// dirty marks rows whose data changed since the last checkpoint
	// reset — the incremental checkpoint's delta set. Append and Set
	// mark; Remove does not (it only flips live/free, which travel in
	// the checkpoint header, so the row bytes on disk stay correct).
	dirty []bool
}

// ErrBadPoint reports an invalid point vector.
var ErrBadPoint = errors.New("core: invalid point")

// NewPointStore creates an empty store for dim-dimensional φ vectors.
func NewPointStore(dim int) (*PointStore, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("core: dimension must be positive, got %d", dim)
	}
	return &PointStore{dim: dim}, nil
}

// FromMatrix builds a store from a slice of equal-length rows.
func FromMatrix(rows [][]float64) (*PointStore, error) {
	if len(rows) == 0 {
		return nil, errors.New("core: FromMatrix needs at least one row")
	}
	s, err := NewPointStore(len(rows[0]))
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if _, err := s.Append(r); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return s, nil
}

// Dim returns the dimensionality d' of the stored vectors.
func (s *PointStore) Dim() int { return s.dim }

// Len returns the number of live points.
func (s *PointStore) Len() int { return s.n }

// Cap returns the number of allocated rows (live + recycled).
func (s *PointStore) Cap() int { return len(s.live) }

// Append adds a point and returns its identifier.
func (s *PointStore) Append(v []float64) (uint32, error) {
	if err := s.check(v); err != nil {
		return 0, err
	}
	var id uint32
	if len(s.free) > 0 {
		id = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		copy(s.data[int(id)*s.dim:], v)
		s.live[id] = true
	} else {
		id = uint32(len(s.live))
		s.data = append(s.data, v...)
		s.live = append(s.live, true)
		s.dirty = append(s.dirty, false)
	}
	s.dirty[id] = true
	s.n++
	return id, nil
}

// Set replaces the vector of an existing live point.
func (s *PointStore) Set(id uint32, v []float64) error {
	if err := s.check(v); err != nil {
		return err
	}
	if !s.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	copy(s.data[int(id)*s.dim:], v)
	s.dirty[id] = true
	return nil
}

// Remove frees a point's row. The identifier may be reused by a later
// Append.
func (s *PointStore) Remove(id uint32) error {
	if !s.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	s.live[id] = false
	s.free = append(s.free, id)
	s.n--
	return nil
}

// Live reports whether id names a live point.
func (s *PointStore) Live(id uint32) bool {
	return int(id) < len(s.live) && s.live[id]
}

// Vector returns a read-only view of the point's φ vector. The slice
// aliases internal storage and must not be modified or retained
// across mutations.
func (s *PointStore) Vector(id uint32) []float64 {
	off := int(id) * s.dim
	return s.data[off : off+s.dim : off+s.dim]
}

// Each calls fn for every live point until fn returns false.
func (s *PointStore) Each(fn func(id uint32, v []float64) bool) {
	for id := range s.live {
		if s.live[id] {
			if !fn(uint32(id), s.Vector(uint32(id))) {
				return
			}
		}
	}
}

// AxisRange returns the minimum and maximum of coordinate i over all
// live points. With no live points it returns (0, 0, false).
func (s *PointStore) AxisRange(i int) (lo, hi float64, ok bool) {
	first := true
	s.Each(func(_ uint32, v []float64) bool {
		if first {
			lo, hi = v[i], v[i]
			first = false
		} else {
			if v[i] < lo {
				lo = v[i]
			}
			if v[i] > hi {
				hi = v[i]
			}
		}
		return true
	})
	return lo, hi, !first
}

// RawRows returns the store's row-major backing array and live bitmap
// aliased, not copied — the zero-copy feed for the batched
// verification engine. Dead rows hold stale values; consumers filter
// on live. The slices are invalidated by any mutation; callers must
// hold the owning synchronisation (Multi's read lock) while using
// them.
func (s *PointStore) RawRows() (data []float64, live []bool) {
	return s.data, s.live
}

// FreeList returns a copy of the free list in recycling order.
func (s *PointStore) FreeList() []uint32 {
	return append([]uint32(nil), s.free...)
}

// EachDirtyRow calls fn for every row marked dirty since the last
// ResetDirty, in row order.
func (s *PointStore) EachDirtyRow(fn func(row int)) {
	for i, d := range s.dirty {
		if d {
			fn(i)
		}
	}
}

// DirtyRowCount returns the number of rows in the delta set.
func (s *PointStore) DirtyRowCount() int {
	n := 0
	for _, d := range s.dirty {
		if d {
			n++
		}
	}
	return n
}

// MarkAllDirty puts every row in the delta set, forcing the next
// checkpoint to rewrite the complete data-page set.
func (s *PointStore) MarkAllDirty() {
	for i := range s.dirty {
		s.dirty[i] = true
	}
}

// ResetDirty empties the delta set; a checkpoint calls it after its
// commit succeeds.
func (s *PointStore) ResetDirty() {
	for i := range s.dirty {
		s.dirty[i] = false
	}
}

// Raw exports the store's exact internal layout — row-major data
// (including dead rows), the live bitmap, and the free list in
// recycling order — so snapshots can preserve point identifiers
// across restarts. All returned slices are copies.
func (s *PointStore) Raw() (data []float64, live []bool, free []uint32) {
	return append([]float64(nil), s.data...),
		append([]bool(nil), s.live...),
		append([]uint32(nil), s.free...)
}

// NewPointStoreFromRaw reconstructs a store from the layout returned
// by Raw. Identifiers (row numbers and the recycling order of freed
// rows) are preserved exactly, which write-ahead-log replay depends
// on.
func NewPointStoreFromRaw(dim int, data []float64, live []bool, free []uint32) (*PointStore, error) {
	s, err := NewPointStore(dim)
	if err != nil {
		return nil, err
	}
	if len(data) != len(live)*dim {
		return nil, fmt.Errorf("core: raw data has %d values for %d rows of dimension %d", len(data), len(live), dim)
	}
	seen := make([]bool, len(live))
	for _, id := range free {
		if int(id) >= len(live) {
			return nil, fmt.Errorf("core: free id %d out of range", id)
		}
		if live[id] {
			return nil, fmt.Errorf("core: free id %d marked live", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("core: free id %d repeated", id)
		}
		seen[id] = true
	}
	n := 0
	for i, lv := range live {
		if lv {
			n++
			if !vecmath.AllFinite(data[i*dim : (i+1)*dim]) {
				return nil, fmt.Errorf("core: raw row %d has non-finite coordinates", i)
			}
		} else if !seen[i] {
			return nil, fmt.Errorf("core: dead row %d missing from the free list", i)
		}
	}
	s.data = append([]float64(nil), data...)
	s.live = append([]bool(nil), live...)
	s.free = append([]uint32(nil), free...)
	s.dirty = make([]bool, len(live))
	s.n = n
	return s, nil
}

// MemoryBytes returns the approximate heap footprint of the store.
func (s *PointStore) MemoryBytes() int {
	return 8*cap(s.data) + cap(s.live) + 4*cap(s.free)
}

func (s *PointStore) check(v []float64) error {
	if len(v) != s.dim {
		return fmt.Errorf("core: point has dimension %d, want %d: %w", len(v), s.dim, ErrBadPoint)
	}
	if !vecmath.AllFinite(v) {
		return fmt.Errorf("core: point has non-finite coordinates: %w", ErrBadPoint)
	}
	return nil
}
