//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this
// build. Under -race, sync.Pool bypasses its per-P caches, so
// allocation-count assertions are meaningless and are skipped.
const raceEnabled = true
