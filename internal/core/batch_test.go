package core

import (
	"math/rand"
	"runtime/debug"
	"sort"
	"testing"

	"planar/internal/exec"
)

// treeWalkIDs answers q through the same Multi but with the batched
// engine disabled — the classic per-entry B-tree walk.
func treeWalkIDs(t *testing.T, m *Multi, q Query) []uint32 {
	t.Helper()
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(true)
	defer lease.Release()
	var sink exec.IDSink
	if _, err := exec.Run(&lease.src, q.LE(), &sink, exec.Options{ForceTreeWalk: true}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(sink.IDs, func(i, j int) bool { return sink.IDs[i] < sink.IDs[j] })
	return sink.IDs
}

func idsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGoldenBatchedIdentity is the end-to-end golden test of the
// batched verification engine: a store with deleted-row holes, a
// Multi with several indexes, and random LE/GE queries must produce
// identical answers through the batched path, the forced tree walk,
// and brute force.
func TestGoldenBatchedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, d := range []int{2, 3, 4} {
		store, err := NewPointStore(d)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMulti(store)
		if err != nil {
			t.Fatal(err)
		}
		var ids []uint32
		for i := 0; i < 1500; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rng.Float64() * 100
			}
			id, err := m.Append(v)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		// Punch holes so Rows contains stale dead rows, then refill a
		// few so the free list is exercised too.
		for i := 0; i < 300; i++ {
			if err := m.Remove(ids[rng.Intn(len(ids))]); err == nil {
				continue
			}
		}
		for i := 0; i < 50; i++ {
			v := make([]float64, d)
			for j := range v {
				v[j] = rng.Float64() * 100
			}
			if _, err := m.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3; i++ {
			normal := make([]float64, d)
			for j := range normal {
				normal[j] = 0.3 + rng.Float64()*3
			}
			signs := make([]int8, d)
			for j := range signs {
				signs[j] = 1
			}
			if _, err := m.AddNormal(normal, signs); err != nil {
				t.Fatal(err)
			}
		}

		for trial := 0; trial < 60; trial++ {
			a := make([]float64, d)
			for j := range a {
				a[j] = rng.Float64() * 4
			}
			if trial%6 == 0 {
				a[rng.Intn(d)] = 0
			}
			op := LE
			if trial%2 == 1 {
				op = GE
			}
			q := Query{A: a, B: rng.Float64() * float64(d) * 250, Op: op}

			got, _, err := m.InequalityIDs(q)
			if err != nil {
				t.Fatalf("d=%d trial=%d: %v", d, trial, err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := bruteForce(store, q)
			if !idsEqual(got, want) {
				t.Fatalf("d=%d trial=%d: batched answer has %d ids, brute force %d", d, trial, len(got), len(want))
			}
			walk := treeWalkIDs(t, m, q)
			if !idsEqual(walk, want) {
				t.Fatalf("d=%d trial=%d: tree walk answer has %d ids, brute force %d", d, trial, len(walk), len(want))
			}
		}
	}
}

// TestMutationVisibility checks the freshness contract: every kind of
// mutation (append, update, remove) rebuilds the leaf arena the
// batched engine reads, so the next query sees current data.
func TestMutationVisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	store, _ := NewPointStore(3)
	m, _ := NewMulti(store)
	for i := 0; i < 400; i++ {
		if _, err := m.Append([]float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AddNormal([]float64{1, 1, 1}, []int8{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	q := Query{A: []float64{1, 2, 3}, B: 25, Op: LE}

	check := func(stage string) {
		t.Helper()
		got, _, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !idsEqual(got, bruteForce(store, q)) {
			t.Fatalf("%s: batched answer diverged from brute force", stage)
		}
	}

	check("initial")
	id, err := m.Append([]float64{0.1, 0.1, 0.1}) // certain match
	if err != nil {
		t.Fatal(err)
	}
	check("after append")
	if err := m.Update(id, []float64{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	check("after update")
	if err := m.Remove(id); err != nil {
		t.Fatal(err)
	}
	check("after remove")
}

// TestSteadyStateQueryAllocs pins the tentpole's headline claim: a
// warmed-up inequality query through Multi — validate, lease, plan
// cache, batched execute, sink — allocates zero bytes. GC is paused
// for the measurement so a collection cannot empty the pools
// mid-run.
func TestSteadyStateQueryAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool; allocation counts are meaningless")
	}
	rng := rand.New(rand.NewSource(71))
	store, _ := NewPointStore(4)
	m, _ := NewMulti(store)
	for i := 0; i < 4096; i++ {
		if _, err := m.Append([]float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.AddNormal([]float64{1, 1, 1, 1}, []int8{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	q := Query{A: []float64{3, 0.2, 0.2, 0.2}, B: 1.2, Op: LE}
	visit := func(uint32) bool { return true }

	run := func() {
		if _, err := m.Inequality(q, visit); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		run() // warm the plan cache and pools
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	if allocs := testing.AllocsPerRun(200, run); allocs != 0 {
		t.Fatalf("steady-state query allocated %v times per run, want 0", allocs)
	}
}
