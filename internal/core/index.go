package core

import (
	"errors"
	"fmt"
	"sync"

	"planar/internal/btree"
	"planar/internal/exec"
	"planar/internal/vecmath"
)

// DefaultGuard is the relative width of the conservative band added
// around the interval thresholds so floating-point rounding can only
// enlarge the verified range, never corrupt an accept/reject
// decision.
const DefaultGuard = 1e-9

// ErrIncompatibleOctant is returned when a query's coefficient signs
// do not match the octant an index was built for (paper Section 4.5:
// each index serves one hyper-octant of query normals). It is the
// pipeline's error value, re-exported so existing == comparisons keep
// working.
var ErrIncompatibleOctant = exec.ErrIncompatibleOctant

// Index is a single Planar index: a family of parallel hyperplanes
// with normal c, one through each point's φ vector, realised as a B+
// tree over the keys ⟨c, z(x)⟩ where z is the octant translation of
// φ (Section 4.5).
type Index struct {
	mu    sync.RWMutex
	store *PointStore
	c     []float64           // normal in the translated frame; all entries > 0
	signs vecmath.SignPattern // octant the index serves
	delta []float64           // translation offsets; all entries >= 0
	cs    []float64           // cs[i] = c[i]*signs[i]: effective normal in φ space
	base  float64             // ⟨c, delta⟩, so key = ⟨cs, φ⟩ + base
	tree  *btree.Tree
	guard float64

	// Bound once at construction so building an exec.Source does not
	// allocate closures per query. The batched engine reads keys and
	// ids directly out of the tree's leaf arena — there is no packed
	// mirror to maintain.
	vecFn  func(uint32) []float64
	eachFn func(func(uint32, []float64) bool)
}

// IndexOption customises index construction.
type IndexOption func(*Index)

// WithGuard overrides the conservative threshold band (0 disables
// it; exactness then depends on the data being away from query
// boundaries).
func WithGuard(g float64) IndexOption {
	return func(ix *Index) { ix.guard = g }
}

// NewIndex builds a planar index over every live point of store. The
// normal must be strictly positive (it lives in the translated
// first-octant frame); signs selects the hyper-octant of query
// coefficient vectors the index will serve. Build time is
// O(n log n), memory O(n) (paper Section 4.2).
func NewIndex(store *PointStore, normal []float64, signs vecmath.SignPattern, opts ...IndexOption) (*Index, error) {
	if store == nil {
		return nil, errors.New("core: nil point store")
	}
	d := store.Dim()
	if err := vecmath.CheckDim("index normal", normal, d); err != nil {
		return nil, err
	}
	if !vecmath.AllFinite(normal) {
		return nil, errors.New("core: index normal must be finite")
	}
	for i, v := range normal {
		if v <= 0 {
			return nil, fmt.Errorf("core: index normal component %d is %v, must be > 0", i, v)
		}
	}
	if len(signs) != d {
		return nil, fmt.Errorf("core: sign pattern has dimension %d, want %d", len(signs), d)
	}
	for i, s := range signs {
		if s != 1 && s != -1 {
			return nil, fmt.Errorf("core: sign pattern component %d is %d, must be ±1", i, s)
		}
	}
	ix := &Index{
		store: store,
		c:     vecmath.Clone(normal),
		signs: append(vecmath.SignPattern(nil), signs...),
		guard: DefaultGuard,
	}
	for _, o := range opts {
		o(ix)
	}
	ix.vecFn = store.Vector
	ix.eachFn = store.Each
	ix.rebuild()
	return ix, nil
}

// rebuild recomputes the translation offsets from the current store
// contents and bulk-loads the key tree. Callers hold ix.mu.
func (ix *Index) rebuild() {
	d := ix.store.Dim()
	ix.delta = make([]float64, d)
	ix.store.Each(func(_ uint32, v []float64) bool {
		for i := 0; i < d; i++ {
			if z := float64(ix.signs[i]) * v[i]; -z > ix.delta[i] {
				ix.delta[i] = -z
			}
		}
		return true
	})
	ix.cs = make([]float64, d)
	for i := 0; i < d; i++ {
		ix.cs[i] = ix.c[i] * float64(ix.signs[i])
	}
	ix.base = vecmath.Dot(ix.c, ix.delta)

	entries := make([]btree.Entry, 0, ix.store.Len())
	ix.store.Each(func(id uint32, v []float64) bool {
		entries = append(entries, btree.Entry{Key: ix.key(v), ID: id})
		return true
	})
	if ix.tree != nil {
		ix.tree.Release()
	}
	ix.tree = btree.BulkLoad(entries)
}

// key returns ⟨c, z(v)⟩ in the translated frame.
func (ix *Index) key(v []float64) float64 {
	return vecmath.Dot(ix.cs, v) + ix.base
}

// fits reports whether v respects the current translation, i.e. its
// translated coordinates are all non-negative.
func (ix *Index) fits(v []float64) bool {
	for i := range v {
		if float64(ix.signs[i])*v[i]+ix.delta[i] < 0 {
			return false
		}
	}
	return true
}

// Normal returns a copy of the index normal (translated frame).
func (ix *Index) Normal() []float64 { return vecmath.Clone(ix.c) }

// EffectiveNormal returns a copy of the index normal expressed in the
// original φ space (c_i·s_i); this is the vector used for angle
// comparisons with query hyperplanes.
func (ix *Index) EffectiveNormal() []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return vecmath.Clone(ix.cs)
}

// Signs returns a copy of the octant sign pattern.
func (ix *Index) Signs() vecmath.SignPattern {
	return append(vecmath.SignPattern(nil), ix.signs...)
}

// Len returns the number of indexed points.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// MemoryBytes returns the approximate heap footprint of the index
// structure itself (excluding the shared point store).
func (ix *Index) MemoryBytes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Stats().Bytes + 8*(len(ix.c)+len(ix.delta)+len(ix.cs)) + len(ix.signs)
}

// add indexes a point already present in the store. If the point
// breaks the translation invariant the whole index is rebuilt with
// fresh offsets. Callers hold ix.mu.
func (ix *Index) add(id uint32, v []float64) {
	if !ix.fits(v) {
		ix.rebuild()
		return
	}
	ix.tree.Insert(ix.key(v), id)
}

// remove unindexes a point given the φ vector it was indexed under.
// Callers hold ix.mu.
func (ix *Index) remove(id uint32, old []float64) {
	ix.tree.Delete(ix.key(old), id)
}

// update re-keys a point whose φ vector changed from old to new.
// Callers hold ix.mu. Per Section 4.4 this costs O(d' log n).
func (ix *Index) update(id uint32, old, new []float64) {
	ix.tree.Delete(ix.key(old), id)
	ix.add(id, new)
}

// Add indexes a point that was appended to the shared store. Use
// Multi for multi-index maintenance; Add is the standalone
// single-index path.
func (ix *Index) Add(id uint32) error {
	if !ix.store.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.add(id, ix.store.Vector(id))
	return nil
}

// info returns the planner's view of this index. The slices are
// shared, not copied; callers hold ix.mu for the lifetime of the
// returned value.
func (ix *Index) info() exec.IndexInfo {
	return exec.IndexInfo{
		Tree:  ix.tree,
		C:     ix.c,
		Delta: ix.delta,
		CS:    ix.cs,
		Signs: ix.signs,
		Guard: ix.guard,
	}
}

// sourcePool recycles exec.Source values across queries (standalone
// Index and Multi leases both draw from it) so acquiring a pipeline
// view allocates nothing in the steady state.
var sourcePool = sync.Pool{New: func() any { return new(exec.Source) }}

// source wraps the standalone index as a single-candidate pipeline
// source, drawn from sourcePool. Callers hold ix.mu for the lifetime
// of the returned value and must hand it back with putSource.
func (ix *Index) source() *exec.Source {
	s := sourcePool.Get().(*exec.Source)
	rows, live := ix.store.RawRows()
	*s = exec.Source{
		N:       ix.tree.Len(),
		Indexes: append(s.Indexes[:0], ix.info()),
		Single:  true,
		Vector:  ix.vecFn,
		Each:    ix.eachFn,
		Rows:    rows,
		RowLive: live,
		RowDim:  ix.store.Dim(),
	}
	return s
}

// putSource returns a Source acquired from sourcePool.
func putSource(s *exec.Source) { sourcePool.Put(s) }

// Inequality answers Problem 1 with Algorithm 1 through the execution
// pipeline: points in the smaller interval are reported without
// verification, points in the intermediate interval are verified by
// computing the true scalar product, and the larger interval is
// rejected wholesale. visit is called once per matching point id, in
// no particular order; a false return stops early (Stats are then
// partial).
func (ix *Index) Inequality(q Query, visit func(id uint32) bool) (Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return Stats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	src := ix.source()
	defer putSource(src)
	return exec.Run(src, q.LE(), exec.FuncSink(visit), exec.Options{})
}

// InequalityIDs is a convenience wrapper collecting all matching ids.
func (ix *Index) InequalityIDs(q Query) ([]uint32, Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	src := ix.source()
	defer putSource(src)
	var sink exec.IDSink
	st, err := exec.Run(src, q.LE(), &sink, exec.Options{})
	if err != nil {
		return nil, Stats{}, err
	}
	return sink.IDs, st, nil
}

// Stretch evaluates the paper's Problem 3 objective for this index
// against a query: the maximum stretch of the intermediate interval
// along any axis, (tmax − tmin) / min_i c_i. Smaller is better; 0
// means the index normal is parallel to the query hyperplane and the
// intermediate interval is empty (Corollary 1). It returns +Inf for
// incompatible octants or degenerate queries.
func (ix *Index) Stretch(q Query) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	info := ix.info()
	return exec.Stretch(&info, q.LE())
}

// CosToQuery returns |cos| of the angle between the query hyperplane
// normal and the index's effective normal — the angle-minimisation
// selection criterion of Section 5.1.2 (larger is better).
func (ix *Index) CosToQuery(q Query) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	info := ix.info()
	return exec.CosToQuery(&info, q.A)
}
