package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"planar/internal/btree"
	"planar/internal/vecmath"
)

// DefaultGuard is the relative width of the conservative band added
// around the interval thresholds so floating-point rounding can only
// enlarge the verified range, never corrupt an accept/reject
// decision.
const DefaultGuard = 1e-9

// ErrIncompatibleOctant is returned when a query's coefficient signs
// do not match the octant an index was built for (paper Section 4.5:
// each index serves one hyper-octant of query normals).
var ErrIncompatibleOctant = errors.New("core: query signs incompatible with index octant")

// Index is a single Planar index: a family of parallel hyperplanes
// with normal c, one through each point's φ vector, realised as a B+
// tree over the keys ⟨c, z(x)⟩ where z is the octant translation of
// φ (Section 4.5).
type Index struct {
	mu    sync.RWMutex
	store *PointStore
	c     []float64           // normal in the translated frame; all entries > 0
	signs vecmath.SignPattern // octant the index serves
	delta []float64           // translation offsets; all entries >= 0
	cs    []float64           // cs[i] = c[i]*signs[i]: effective normal in φ space
	base  float64             // ⟨c, delta⟩, so key = ⟨cs, φ⟩ + base
	tree  *btree.Tree
	guard float64
}

// IndexOption customises index construction.
type IndexOption func(*Index)

// WithGuard overrides the conservative threshold band (0 disables
// it; exactness then depends on the data being away from query
// boundaries).
func WithGuard(g float64) IndexOption {
	return func(ix *Index) { ix.guard = g }
}

// NewIndex builds a planar index over every live point of store. The
// normal must be strictly positive (it lives in the translated
// first-octant frame); signs selects the hyper-octant of query
// coefficient vectors the index will serve. Build time is
// O(n log n), memory O(n) (paper Section 4.2).
func NewIndex(store *PointStore, normal []float64, signs vecmath.SignPattern, opts ...IndexOption) (*Index, error) {
	if store == nil {
		return nil, errors.New("core: nil point store")
	}
	d := store.Dim()
	if err := vecmath.CheckDim("index normal", normal, d); err != nil {
		return nil, err
	}
	if !vecmath.AllFinite(normal) {
		return nil, errors.New("core: index normal must be finite")
	}
	for i, v := range normal {
		if v <= 0 {
			return nil, fmt.Errorf("core: index normal component %d is %v, must be > 0", i, v)
		}
	}
	if len(signs) != d {
		return nil, fmt.Errorf("core: sign pattern has dimension %d, want %d", len(signs), d)
	}
	for i, s := range signs {
		if s != 1 && s != -1 {
			return nil, fmt.Errorf("core: sign pattern component %d is %d, must be ±1", i, s)
		}
	}
	ix := &Index{
		store: store,
		c:     vecmath.Clone(normal),
		signs: append(vecmath.SignPattern(nil), signs...),
		guard: DefaultGuard,
	}
	for _, o := range opts {
		o(ix)
	}
	ix.rebuild()
	return ix, nil
}

// rebuild recomputes the translation offsets from the current store
// contents and bulk-loads the key tree. Callers hold ix.mu.
func (ix *Index) rebuild() {
	d := ix.store.Dim()
	ix.delta = make([]float64, d)
	ix.store.Each(func(_ uint32, v []float64) bool {
		for i := 0; i < d; i++ {
			if z := float64(ix.signs[i]) * v[i]; -z > ix.delta[i] {
				ix.delta[i] = -z
			}
		}
		return true
	})
	ix.cs = make([]float64, d)
	for i := 0; i < d; i++ {
		ix.cs[i] = ix.c[i] * float64(ix.signs[i])
	}
	ix.base = vecmath.Dot(ix.c, ix.delta)

	entries := make([]btree.Entry, 0, ix.store.Len())
	ix.store.Each(func(id uint32, v []float64) bool {
		entries = append(entries, btree.Entry{Key: ix.key(v), ID: id})
		return true
	})
	ix.tree = btree.BulkLoad(entries)
}

// key returns ⟨c, z(v)⟩ in the translated frame.
func (ix *Index) key(v []float64) float64 {
	return vecmath.Dot(ix.cs, v) + ix.base
}

// fits reports whether v respects the current translation, i.e. its
// translated coordinates are all non-negative.
func (ix *Index) fits(v []float64) bool {
	for i := range v {
		if float64(ix.signs[i])*v[i]+ix.delta[i] < 0 {
			return false
		}
	}
	return true
}

// Normal returns a copy of the index normal (translated frame).
func (ix *Index) Normal() []float64 { return vecmath.Clone(ix.c) }

// EffectiveNormal returns a copy of the index normal expressed in the
// original φ space (c_i·s_i); this is the vector used for angle
// comparisons with query hyperplanes.
func (ix *Index) EffectiveNormal() []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return vecmath.Clone(ix.cs)
}

// Signs returns a copy of the octant sign pattern.
func (ix *Index) Signs() vecmath.SignPattern {
	return append(vecmath.SignPattern(nil), ix.signs...)
}

// Len returns the number of indexed points.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// MemoryBytes returns the approximate heap footprint of the index
// structure itself (excluding the shared point store).
func (ix *Index) MemoryBytes() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Stats().Bytes + 8*(len(ix.c)+len(ix.delta)+len(ix.cs)) + len(ix.signs)
}

// add indexes a point already present in the store. If the point
// breaks the translation invariant the whole index is rebuilt with
// fresh offsets. Callers hold ix.mu.
func (ix *Index) add(id uint32, v []float64) {
	if !ix.fits(v) {
		ix.rebuild()
		return
	}
	ix.tree.Insert(ix.key(v), id)
}

// remove unindexes a point given the φ vector it was indexed under.
// Callers hold ix.mu.
func (ix *Index) remove(id uint32, old []float64) {
	ix.tree.Delete(ix.key(old), id)
}

// update re-keys a point whose φ vector changed from old to new.
// Callers hold ix.mu. Per Section 4.4 this costs O(d' log n).
func (ix *Index) update(id uint32, old, new []float64) {
	ix.tree.Delete(ix.key(old), id)
	ix.add(id, new)
}

// Add indexes a point that was appended to the shared store. Use
// Multi for multi-index maintenance; Add is the standalone
// single-index path.
func (ix *Index) Add(id uint32) error {
	if !ix.store.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.add(id, ix.store.Vector(id))
	return nil
}

// thresholds computes the interval boundaries for a normalized (LE)
// query. Callers hold ix.mu (read).
//
// Returned cases:
//   - all:   every point matches (all coefficients zero, B >= 0)
//   - none:  no point can match (all zero with B < 0, or b' < 0)
//   - else tmin/tmax delimit SI/II/LI in key space; tmax may be +Inf
//     when some coefficient is zero (rejection impossible, paper
//     Section 4.1).
func (ix *Index) thresholds(q Query) (tmin, tmax, bPrime float64, all, none bool, err error) {
	if !ix.signs.Matches(q.A) {
		return 0, 0, 0, false, false, ErrIncompatibleOctant
	}
	bPrime = q.B
	nonZero := 0
	for i, a := range q.A {
		bPrime += math.Abs(a) * ix.delta[i]
		if a != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		if q.B >= 0 {
			return 0, 0, bPrime, true, false, nil
		}
		return 0, 0, bPrime, false, true, nil
	}
	if bPrime < 0 {
		return 0, 0, bPrime, false, true, nil
	}
	tmin = math.Inf(1)
	tmax = math.Inf(-1)
	for i, a := range q.A {
		if a == 0 {
			tmax = math.Inf(1) // rejection impossible on ignored axes
			continue
		}
		t := ix.c[i] * bPrime / math.Abs(a)
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	// Conservative band: only ever widens the verified range.
	if ix.guard > 0 {
		g := ix.guard * (1 + math.Abs(tmin))
		tmin -= g
		if !math.IsInf(tmax, 1) {
			tmax += ix.guard * (1 + math.Abs(tmax))
		}
	}
	return tmin, tmax, bPrime, false, false, nil
}

// Inequality answers Problem 1 with Algorithm 1: points in the
// smaller interval are reported without verification, points in the
// intermediate interval are verified by computing the true scalar
// product, and the larger interval is rejected wholesale. visit is
// called once per matching point id, in no particular order; a false
// return stops early (Stats are then partial).
func (ix *Index) Inequality(q Query, visit func(id uint32) bool) (Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return Stats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	st := Stats{N: ix.tree.Len(), IndexUsed: -1}
	nq := q.normalized()
	tmin, tmax, _, all, none, err := ix.thresholds(nq)
	if err != nil {
		return Stats{}, err
	}
	if none {
		st.Rejected = st.N
		return st, nil
	}
	if all {
		st.Accepted = st.N
		ix.tree.Ascend(func(e btree.Entry) bool { return visit(e.ID) })
		return st, nil
	}

	stopped := false
	ix.tree.AscendLE(tmin, func(e btree.Entry) bool {
		st.Accepted++
		if !visit(e.ID) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return st, nil
	}
	ix.tree.AscendRange(tmin, tmax, func(e btree.Entry) bool {
		st.Verified++
		if nq.Satisfies(ix.store.Vector(e.ID)) {
			st.Matched++
			if !visit(e.ID) {
				stopped = true
				return false
			}
		}
		return true
	})
	st.Rejected = st.N - st.Accepted - st.Verified
	return st, nil
}

// InequalityIDs is a convenience wrapper collecting all matching ids.
func (ix *Index) InequalityIDs(q Query) ([]uint32, Stats, error) {
	var ids []uint32
	st, err := ix.Inequality(q, func(id uint32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, st, err
}

// Stretch evaluates the paper's Problem 3 objective for this index
// against a query: the maximum stretch of the intermediate interval
// along any axis, (tmax − tmin) / min_i c_i. Smaller is better; 0
// means the index normal is parallel to the query hyperplane and the
// intermediate interval is empty (Corollary 1). It returns +Inf for
// incompatible octants or degenerate queries.
func (ix *Index) Stretch(q Query) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nq := q.normalized()
	tmin, tmax, _, all, none, err := ix.thresholds(nq)
	if err != nil {
		return math.Inf(1)
	}
	if all || none {
		return 0 // trivially answered without any verification
	}
	if math.IsInf(tmax, 1) {
		return math.Inf(1)
	}
	cmin := ix.c[0]
	for _, v := range ix.c[1:] {
		if v < cmin {
			cmin = v
		}
	}
	return (tmax - tmin) / cmin
}

// CosToQuery returns |cos| of the angle between the query hyperplane
// normal and the index's effective normal — the angle-minimisation
// selection criterion of Section 5.1.2 (larger is better).
func (ix *Index) CosToQuery(q Query) float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return math.Abs(vecmath.CosAngle(q.A, ix.cs))
}
