package core

import (
	"math/rand"
	"strings"
	"testing"

	"planar/internal/vecmath"
)

func TestExplainIndexedPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	s := randomStore(t, rng, 1000, 3, 1, 100)
	m, _ := NewMulti(s)
	m.AddNormal([]float64{1, 1, 1}, vecmath.FirstOctant(3))
	m.AddNormal([]float64{4, 1, 2}, vecmath.FirstOctant(3))

	q := Query{A: []float64{2, 2, 2}, B: 300, Op: LE}
	plan, err := m.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != 0 { // parallel to index 0
		t.Fatalf("IndexUsed=%d (plan %+v)", plan.IndexUsed, plan)
	}
	if plan.Compatible != 2 || plan.N != 1000 {
		t.Fatalf("plan %+v", plan)
	}
	// The conservative guard band leaves a tiny nonzero stretch even
	// for an exactly parallel query.
	if plan.Stretch > 1e-5 || plan.Cos < 0.999999 {
		t.Fatalf("parallel query: stretch=%v cos=%v", plan.Stretch, plan.Cos)
	}
	if plan.Accepted+plan.Verified+plan.Rejected != plan.N {
		t.Fatalf("intervals do not add up: %+v", plan)
	}
	// The plan's interval sizes must match what execution reports.
	_, st, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != plan.Accepted || st.Verified != plan.Verified {
		t.Fatalf("plan predicted %d/%d, execution saw %d/%d",
			plan.Accepted, plan.Verified, st.Accepted, st.Verified)
	}
	if st.Results() < plan.BoundsLo || st.Results() > plan.BoundsHi {
		t.Fatalf("answer %d outside plan bounds [%d,%d]",
			st.Results(), plan.BoundsLo, plan.BoundsHi)
	}
	if !strings.Contains(plan.String(), "index 0") {
		t.Fatalf("String() = %q", plan.String())
	}
}

func TestExplainScanPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	s := randomStore(t, rng, 500, 2, 1, 100)

	// No compatible octant.
	m, _ := NewMulti(s)
	m.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2))
	plan, err := m.Explain(Query{A: []float64{1, -1}, B: 0, Op: LE})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != -1 || plan.Verified != 500 {
		t.Fatalf("octant-miss plan %+v", plan)
	}
	if !strings.Contains(plan.String(), "sequential scan") {
		t.Fatalf("String() = %q", plan.String())
	}

	// Cost model rejects the index for an unselective query.
	cb, _ := NewMulti(s, WithCostBased(2.5))
	cb.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2))
	plan, err = cb.Explain(Query{A: []float64{5, 1}, B: 1e9, Op: LE})
	if err != nil {
		t.Fatal(err)
	}
	if plan.IndexUsed != -1 || !strings.Contains(plan.Reason, "cost model") {
		t.Fatalf("cost-based plan %+v", plan)
	}

	// Validation.
	if _, err := m.Explain(Query{A: []float64{1}, B: 0, Op: LE}); err == nil {
		t.Fatal("wrong-dim query accepted")
	}
}
