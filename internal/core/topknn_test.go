package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"planar/internal/vecmath"
)

// bruteTopK computes the reference top-k answer by scanning.
func bruteTopK(s *PointStore, q Query, k int) []Result {
	var all []Result
	s.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			all = append(all, Result{ID: id, Distance: q.Distance(v)})
		}
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sameTopK compares answers allowing distance ties to resolve to
// different ids.
func sameTopK(a, b []Result, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i].Distance-b[i].Distance) > eps*(1+a[i].Distance) {
			return false
		}
	}
	return true
}

func TestTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dim := range []int{2, 4, 6} {
		s := randomStore(t, rng, 600, dim, 1, 100)
		normal := make([]float64, dim)
		for i := range normal {
			normal[i] = 1 + rng.Float64()*3
		}
		ix, err := NewIndex(s, normal, vecmath.FirstOctant(dim))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 25; trial++ {
			a := make([]float64, dim)
			for i := range a {
				a[i] = 1 + rng.Float64()*6
			}
			b := rng.Float64() * 150 * float64(dim)
			q := Query{A: a, B: b, Op: LE}
			for _, k := range []int{1, 5, 50, 1000} {
				got, st, err := ix.TopK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want := bruteTopK(s, q, k)
				if !sameTopK(got, want, 1e-9) {
					t.Fatalf("dim=%d trial=%d k=%d: got %d results, want %d",
						dim, trial, k, len(got), len(want))
				}
				// Distances must be non-decreasing.
				for i := 1; i < len(got); i++ {
					if got[i].Distance < got[i-1].Distance {
						t.Fatal("results not sorted by distance")
					}
				}
				if st.N != 600 {
					t.Fatalf("stats N=%d", st.N)
				}
			}
		}
	}
}

func TestTopKPruningActuallyPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := randomStore(t, rng, 5000, 3, 1, 100)
	normal := []float64{1, 1, 1}
	ix, _ := NewIndex(s, normal, vecmath.FirstOctant(3))
	// Query parallel to the index: II empty, SI walk should stop
	// after roughly k points (paper best case k1 ≈ k+1).
	q := Query{A: []float64{2, 2, 2}, B: 300, Op: LE}
	_, st, err := ix.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted > 100 {
		t.Fatalf("examined %d SI points for k=10 with a parallel index", st.Accepted)
	}
}

func TestTopKGEQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randomStore(t, rng, 400, 2, 1, 50)
	neg := vecmath.FirstOctant(2).Negate()
	ix, _ := NewIndex(s, []float64{1, 2}, neg)
	q := Query{A: []float64{1, 1}, B: 60, Op: GE}
	got, _, err := ix.TopK(q, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteTopK(s, q, 7)
	if !sameTopK(got, want, 1e-9) {
		t.Fatalf("GE top-k mismatch: got %v want %v", got, want)
	}
}

func TestTopKValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	s := randomStore(t, rng, 50, 2, 1, 10)
	ix, _ := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))
	if _, _, err := ix.TopK(Query{A: []float64{1, 1}, B: 5, Op: LE}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := ix.TopK(Query{A: []float64{0, 0}, B: 5, Op: LE}, 3); err == nil {
		t.Error("zero coefficient vector accepted")
	}
	if _, _, err := ix.TopK(Query{A: []float64{1}, B: 5, Op: LE}, 3); err == nil {
		t.Error("wrong-dim query accepted")
	}
	// Unsatisfiable query: empty result, no error.
	res, _, err := ix.TopK(Query{A: []float64{1, 1}, B: -10, Op: LE}, 3)
	if err != nil || len(res) != 0 {
		t.Errorf("unsatisfiable: res=%v err=%v", res, err)
	}
}

func TestTopKWithKLargerThanMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	s := randomStore(t, rng, 100, 2, 1, 10)
	ix, _ := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))
	q := Query{A: []float64{1, 1}, B: 6, Op: LE}
	want := bruteTopK(s, q, 1<<30)
	got, _, err := ix.TopK(q, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results want %d", len(got), len(want))
	}
}

func TestTopKZeroCoefficientAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	s := randomStore(t, rng, 300, 3, 1, 20)
	ix, _ := NewIndex(s, []float64{1, 1, 1}, vecmath.FirstOctant(3))
	q := Query{A: []float64{2, 0, 1}, B: 30, Op: LE}
	got, _, err := ix.TopK(q, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !sameTopK(got, bruteTopK(s, q, 9), 1e-9) {
		t.Fatal("top-k with a zero coefficient axis mismatched brute force")
	}
}
