package core

import (
	"errors"
	"fmt"

	"planar/internal/exec"
	"planar/internal/vecmath"
)

// Result is one answer of a top-k nearest-neighbour query: a point
// satisfying the inequality together with its Euclidean distance to
// the query hyperplane. It is an alias of the pipeline's result type.
type Result = exec.Result

// topKSink builds the pipeline sink for a top-k query: distances are
// measured from the store's φ vectors to the normalized query
// hyperplane.
func topKSink(store *PointStore, nq exec.Query, k int) *exec.TopKSink {
	return exec.NewTopKSink(k, func(id uint32) float64 {
		return nq.Distance(store.Vector(id))
	})
}

// TopK answers Problem 2 with Algorithm 2 through the execution
// pipeline: among points satisfying the inequality, return the k with
// the smallest distance |⟨A,φ(x)⟩ − B| / |A| to the query hyperplane.
// The intermediate interval is verified exhaustively; the smaller
// interval is walked in descending key order and cut off by the
// lower-bound-distance pruning rule of Claim 3.
//
// Stats.Verified counts intermediate-interval points examined and
// Stats.Accepted counts smaller-interval points examined before the
// pruning rule fired (the paper's k1).
func (ix *Index) TopK(q Query, k int) ([]Result, Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: TopK requires k > 0, got %d", k)
	}
	if vecmath.Norm(q.A) == 0 {
		return nil, Stats{}, errors.New("core: TopK requires a non-zero coefficient vector")
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	nq := q.LE()
	sink := topKSink(ix.store, nq, k)
	src := ix.source()
	defer putSource(src)
	st, err := exec.Run(src, nq, sink, exec.Options{})
	if err != nil {
		return nil, Stats{}, err
	}
	return sink.Results(), st, nil
}
