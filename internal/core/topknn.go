package core

import (
	"errors"
	"fmt"
	"math"

	"planar/internal/btree"
	"planar/internal/topk"
	"planar/internal/vecmath"
)

// Result is one answer of a top-k nearest-neighbour query: a point
// satisfying the inequality together with its Euclidean distance to
// the query hyperplane.
type Result struct {
	ID       uint32
	Distance float64
}

// TopK answers Problem 2 with Algorithm 2: among points satisfying
// the inequality, return the k with the smallest distance
// |⟨A,φ(x)⟩ − B| / |A| to the query hyperplane. The intermediate
// interval is verified exhaustively; the smaller interval is walked
// in descending key order and cut off by the lower-bound-distance
// pruning rule of Claim 3.
//
// Stats.Verified counts intermediate-interval points examined and
// Stats.Accepted counts smaller-interval points examined before the
// pruning rule fired (the paper's k1).
func (ix *Index) TopK(q Query, k int) ([]Result, Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: TopK requires k > 0, got %d", k)
	}
	normA := vecmath.Norm(q.A)
	if normA == 0 {
		return nil, Stats{}, errors.New("core: TopK requires a non-zero coefficient vector")
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()

	st := Stats{N: ix.tree.Len(), IndexUsed: -1}
	nq := q.normalized()
	tmin, tmax, bPrime, all, none, err := ix.thresholds(nq)
	if err != nil {
		return nil, Stats{}, err
	}
	if none {
		st.Rejected = st.N
		return nil, st, nil
	}
	if all {
		// Cannot happen: all-zero coefficient vectors were rejected
		// above, so at least one threshold axis exists.
		return nil, Stats{}, errors.New("core: internal: degenerate thresholds")
	}

	buf := topk.New(k)

	// Intermediate interval: verify, then buffer the satisfiers.
	ix.tree.AscendRange(tmin, tmax, func(e btree.Entry) bool {
		st.Verified++
		v := ix.store.Vector(e.ID)
		if nq.Satisfies(v) {
			st.Matched++
			buf.Push(topk.Item{ID: e.ID, Score: nq.Distance(v)})
		}
		return true
	})

	// Smaller interval in descending key order, pruned via the
	// lower-bound distance (Definition 5).
	invCoef := make([]float64, 0, len(nq.A))
	for i, a := range nq.A {
		if a != 0 {
			invCoef = append(invCoef, math.Abs(a)/ix.c[i])
		}
	}
	ix.tree.DescendLE(tmin, func(e btree.Entry) bool {
		if bound, full := buf.Bound(); full {
			lbs := math.Inf(1)
			for _, r := range invCoef {
				if d := math.Abs(r*e.Key - bPrime); d < lbs {
					lbs = d
				}
			}
			lbs /= normA
			if lbs > bound {
				return false // Claim 3: no remaining point can improve
			}
		}
		st.Accepted++
		buf.Push(topk.Item{ID: e.ID, Score: nq.Distance(ix.store.Vector(e.ID))})
		return true
	})
	st.Rejected = st.N - st.Accepted - st.Verified

	items := buf.Items()
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Distance: it.Score}
	}
	return out, st, nil
}
