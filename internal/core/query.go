package core

import (
	"errors"
	"fmt"
	"math"

	"planar/internal/vecmath"
)

// Op is the comparison direction of a scalar product query.
type Op int

const (
	// LE asks for ⟨a, φ(x)⟩ ≤ b.
	LE Op = iota
	// GE asks for ⟨a, φ(x)⟩ ≥ b.
	GE
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Query is a scalar product query ⟨A, φ(x)⟩ Op B (paper Problem 1).
// Both A and B are known only at query time.
type Query struct {
	A  []float64
	B  float64
	Op Op
}

// NewQuery validates and returns a query.
func NewQuery(a []float64, b float64, op Op) (Query, error) {
	q := Query{A: a, B: b, Op: op}
	return q, q.Validate(len(a))
}

// Validate checks the query against an expected dimensionality.
func (q Query) Validate(dim int) error {
	if err := vecmath.CheckDim("query coefficient vector", q.A, dim); err != nil {
		return err
	}
	if !vecmath.AllFinite(q.A) {
		return errors.New("core: query coefficients must be finite")
	}
	if math.IsNaN(q.B) || math.IsInf(q.B, 0) {
		return errors.New("core: query bound must be finite")
	}
	if q.Op != LE && q.Op != GE {
		return fmt.Errorf("core: unknown op %d", int(q.Op))
	}
	return nil
}

// normalized returns the query rewritten in LE form: a GE query is
// negated on both sides (⟨a,φ⟩ ≥ b ⇔ ⟨−a,φ⟩ ≤ −b).
func (q Query) normalized() Query {
	if q.Op == LE {
		return q
	}
	neg := make([]float64, len(q.A))
	for i, v := range q.A {
		neg[i] = -v
	}
	return Query{A: neg, B: -q.B, Op: LE}
}

// NormalizedCoefficients returns the coefficient vector of the
// query's LE form (GE queries are negated), which determines the
// hyper-octant an index must serve. The result is a fresh slice.
func (q Query) NormalizedCoefficients() []float64 {
	return vecmath.Clone(q.normalized().A)
}

// Satisfies evaluates the predicate directly on a φ vector.
func (q Query) Satisfies(phi []float64) bool {
	p := vecmath.Dot(q.A, phi)
	if q.Op == LE {
		return p <= q.B
	}
	return p >= q.B
}

// Distance returns the Euclidean distance from φ to the query
// hyperplane ⟨A, y⟩ = B: |⟨A,φ⟩ − B| / |A|.
func (q Query) Distance(phi []float64) float64 {
	return math.Abs(vecmath.Dot(q.A, phi)-q.B) / vecmath.Norm(q.A)
}

// Hyperplane returns the query hyperplane H(q) (Equation 2).
func (q Query) Hyperplane() (vecmath.Hyperplane, error) {
	return vecmath.NewHyperplane(q.A, q.B)
}

// Stats reports how a single inequality query was answered. It is
// the source of the paper's "pruning percentage" figures (Figures 9
// and 10): Accepted + Rejected points never had their scalar product
// computed.
type Stats struct {
	// N is the number of live points considered.
	N int
	// Accepted is the size of the smaller interval (accepted without
	// verification).
	Accepted int
	// Verified is the size of the intermediate interval.
	Verified int
	// Matched is how many verified points satisfied the query.
	Matched int
	// Rejected is the size of the larger interval.
	Rejected int
	// FellBack reports that no compatible index existed and the
	// answer came from a sequential scan.
	FellBack bool
	// IndexUsed is the position of the selected index inside a Multi
	// (-1 for a direct Index query or a fallback scan).
	IndexUsed int
}

// Results returns the total number of points reported.
func (s Stats) Results() int { return s.Accepted + s.Matched }

// PruningFraction is the fraction of points whose scalar product was
// never computed (the paper's pruning percentage, divided by 100).
func (s Stats) PruningFraction() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.N-s.Verified) / float64(s.N)
}
