package core

import (
	"errors"
	"fmt"
	"math"

	"planar/internal/exec"
	"planar/internal/vecmath"
)

// Op is the comparison direction of a scalar product query.
type Op int

const (
	// LE asks for ⟨a, φ(x)⟩ ≤ b.
	LE Op = iota
	// GE asks for ⟨a, φ(x)⟩ ≥ b.
	GE
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Query is a scalar product query ⟨A, φ(x)⟩ Op B (paper Problem 1).
// Both A and B are known only at query time.
type Query struct {
	A  []float64
	B  float64
	Op Op
}

// NewQuery validates and returns a query.
func NewQuery(a []float64, b float64, op Op) (Query, error) {
	q := Query{A: a, B: b, Op: op}
	return q, q.Validate(len(a))
}

// Validate checks the query against an expected dimensionality.
func (q Query) Validate(dim int) error {
	if err := vecmath.CheckDim("query coefficient vector", q.A, dim); err != nil {
		return err
	}
	if !vecmath.AllFinite(q.A) {
		return errors.New("core: query coefficients must be finite")
	}
	if math.IsNaN(q.B) || math.IsInf(q.B, 0) {
		return errors.New("core: query bound must be finite")
	}
	if q.Op != LE && q.Op != GE {
		return fmt.Errorf("core: unknown op %d", int(q.Op))
	}
	return nil
}

// normalized returns the query rewritten in LE form: a GE query is
// negated on both sides (⟨a,φ⟩ ≥ b ⇔ ⟨−a,φ⟩ ≤ −b).
func (q Query) normalized() Query {
	if q.Op == LE {
		return q
	}
	neg := make([]float64, len(q.A))
	for i, v := range q.A {
		neg[i] = -v
	}
	return Query{A: neg, B: -q.B, Op: LE}
}

// NormalizedCoefficients returns the coefficient vector of the
// query's LE form (GE queries are negated), which determines the
// hyper-octant an index must serve. The result is a fresh slice.
func (q Query) NormalizedCoefficients() []float64 {
	return vecmath.Clone(q.normalized().A)
}

// LE returns the query in the execution pipeline's normalized ≤ form
// (GE queries are negated on both sides). The coefficient slice may
// be shared with the receiver; the pipeline only reads it.
func (q Query) LE() exec.Query {
	nq := q.normalized()
	return exec.Query{A: nq.A, B: nq.B}
}

// Satisfies evaluates the predicate directly on a φ vector.
func (q Query) Satisfies(phi []float64) bool {
	p := vecmath.Dot(q.A, phi)
	if q.Op == LE {
		return p <= q.B
	}
	return p >= q.B
}

// Distance returns the Euclidean distance from φ to the query
// hyperplane ⟨A, y⟩ = B: |⟨A,φ⟩ − B| / |A|.
func (q Query) Distance(phi []float64) float64 {
	return math.Abs(vecmath.Dot(q.A, phi)-q.B) / vecmath.Norm(q.A)
}

// Hyperplane returns the query hyperplane H(q) (Equation 2).
func (q Query) Hyperplane() (vecmath.Hyperplane, error) {
	return vecmath.NewHyperplane(q.A, q.B)
}

// Stats reports how a single query travelled through the execution
// pipeline. It is an alias of the pipeline's stats type, so every
// layer (core, service, HTTP API, CLI) shares one vocabulary: the
// interval counters behind the paper's "pruning percentage" figures
// plus per-stage observability (planning and execution time, plan
// cache hits, verification workers).
type Stats = exec.Stats
