package core

import (
	"fmt"
	"math"
	"strings"
)

// Plan describes how a Multi would answer a query, without running
// it — the EXPLAIN of this index. All estimates are exact interval
// cardinalities computed in O(log n) from the chosen index's order
// statistics; only the split of the intermediate interval into
// matches and non-matches is unknown before verification.
type Plan struct {
	// IndexUsed is the position of the selected index, or −1 when
	// the query would be answered by a sequential scan.
	IndexUsed int
	// Reason explains the choice in one sentence.
	Reason string
	// Compatible counts octant-compatible indexes.
	Compatible int
	// Stretch is the chosen index's Problem-3 objective (0 = query
	// hyperplane parallel to the index family).
	Stretch float64
	// Cos is |cos| of the angle between the query hyperplane and the
	// chosen index family.
	Cos float64
	// Accepted, Verified and Rejected are the exact interval sizes
	// the indexed plan would see. For a scan plan, Verified = N.
	Accepted, Verified, Rejected int
	// N is the number of live points.
	N int
	// BoundsLo and BoundsHi bracket the answer cardinality
	// (intersected across all compatible indexes).
	BoundsLo, BoundsHi int
}

// String renders the plan for humans.
func (p Plan) String() string {
	var b strings.Builder
	if p.IndexUsed < 0 {
		fmt.Fprintf(&b, "plan: sequential scan (%s)\n", p.Reason)
	} else {
		fmt.Fprintf(&b, "plan: index %d (%s)\n", p.IndexUsed, p.Reason)
		fmt.Fprintf(&b, "  stretch=%.4g |cos|=%.4f\n", p.Stretch, p.Cos)
	}
	fmt.Fprintf(&b, "  intervals: accept=%d verify=%d reject=%d of %d (pruning %.1f%%)\n",
		p.Accepted, p.Verified, p.Rejected, p.N,
		100*float64(p.N-p.Verified)/math.Max(1, float64(p.N)))
	fmt.Fprintf(&b, "  answer cardinality in [%d, %d]", p.BoundsLo, p.BoundsHi)
	return b.String()
}

// Explain returns the execution plan for q under the Multi's current
// configuration (selection heuristic, cost model, fallback policy)
// without visiting any data point.
func (m *Multi) Explain(q Query) (Plan, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return Plan{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()

	nq := q.normalized()
	plan := Plan{IndexUsed: -1, N: m.store.Len(), BoundsLo: 0, BoundsHi: m.store.Len()}
	for _, ix := range m.indexes {
		if ix.signs.Matches(nq.A) {
			plan.Compatible++
		}
	}
	ix, pos, err := m.bestLocked(q)
	if err != nil {
		plan.Reason = "no index serves the query's hyper-octant"
		plan.Verified = plan.N
		return plan, nil
	}

	// Interval sizes for the chosen index.
	ix.mu.RLock()
	tmin, tmax, _, all, none, terr := ix.thresholds(nq)
	n := ix.tree.Len()
	var si, ii int
	switch {
	case terr != nil:
		// bestLocked only returns compatible indexes, so this cannot
		// happen; fall through with zero intervals.
	case none:
		// everything rejected
	case all:
		si = n
	default:
		si = ix.tree.RankLE(tmin)
		if math.IsInf(tmax, 1) {
			ii = n - si
		} else {
			ii = ix.tree.CountRange(tmin, tmax)
		}
	}
	ix.mu.RUnlock()

	if m.costPenalty > 0 && m.scanCheaper(ix, nq) {
		plan.Reason = fmt.Sprintf("cost model prefers scan (accept %d + %.1f×verify %d ≥ n %d)",
			si, m.costPenalty, ii, n)
		plan.Verified = plan.N
	} else {
		plan.IndexUsed = pos
		plan.Reason = fmt.Sprintf("best of %d compatible indexes by %s minimisation", plan.Compatible, m.sel)
		plan.Stretch = ix.Stretch(nq)
		plan.Cos = ix.CosToQuery(nq)
		plan.Accepted = si
		plan.Verified = ii
		plan.Rejected = n - si - ii
	}

	// Tightest guaranteed bounds across every compatible index.
	for _, cand := range m.indexes {
		if !cand.signs.Matches(nq.A) {
			continue
		}
		lo, hi, err := cand.SelectivityBounds(q)
		if err != nil {
			continue
		}
		if lo > plan.BoundsLo {
			plan.BoundsLo = lo
		}
		if hi < plan.BoundsHi {
			plan.BoundsHi = hi
		}
	}
	return plan, nil
}
