package core

import (
	"fmt"
	"math"
	"strings"

	"planar/internal/exec"
)

// Plan describes how a Multi would answer a query, without running
// it — the EXPLAIN of this index. All estimates are exact interval
// cardinalities computed in O(log n) from the chosen index's order
// statistics; only the split of the intermediate interval into
// matches and non-matches is unknown before verification.
type Plan struct {
	// IndexUsed is the position of the selected index, or −1 when
	// the query would be answered by a sequential scan.
	IndexUsed int
	// Reason explains the choice in one sentence.
	Reason string
	// Compatible counts octant-compatible indexes.
	Compatible int
	// Stretch is the chosen index's Problem-3 objective (0 = query
	// hyperplane parallel to the index family).
	Stretch float64
	// Cos is |cos| of the angle between the query hyperplane and the
	// chosen index family.
	Cos float64
	// Accepted, Verified and Rejected are the exact interval sizes
	// the indexed plan would see. For a scan plan, Verified = N.
	Accepted, Verified, Rejected int
	// N is the number of live points.
	N int
	// BoundsLo and BoundsHi bracket the answer cardinality
	// (intersected across all compatible indexes).
	BoundsLo, BoundsHi int
}

// String renders the plan for humans.
func (p Plan) String() string {
	var b strings.Builder
	if p.IndexUsed < 0 {
		fmt.Fprintf(&b, "plan: sequential scan (%s)\n", p.Reason)
	} else {
		fmt.Fprintf(&b, "plan: index %d (%s)\n", p.IndexUsed, p.Reason)
		fmt.Fprintf(&b, "  stretch=%.4g |cos|=%.4f\n", p.Stretch, p.Cos)
	}
	fmt.Fprintf(&b, "  intervals: accept=%d verify=%d reject=%d of %d (pruning %.1f%%)\n",
		p.Accepted, p.Verified, p.Rejected, p.N,
		100*float64(p.N-p.Verified)/math.Max(1, float64(p.N)))
	fmt.Fprintf(&b, "  answer cardinality in [%d, %d]", p.BoundsLo, p.BoundsHi)
	return b.String()
}

// Explain returns the execution plan for q under the Multi's current
// configuration (selection heuristic, cost model, fallback policy)
// without visiting any data point. It runs the pipeline's Plan stage
// only.
func (m *Multi) Explain(q Query) (Plan, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return Plan{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(true)
	defer lease.Release()
	src := &lease.src
	pi, err := exec.Explain(src, q.LE())
	if err != nil {
		return Plan{}, err
	}
	return Plan{
		IndexUsed:  pi.Plan.IndexPos,
		Reason:     pi.Plan.Reason,
		Compatible: pi.Plan.Compatible,
		Stretch:    pi.Stretch,
		Cos:        pi.Cos,
		Accepted:   pi.Accepted,
		Verified:   pi.Verified,
		Rejected:   pi.Rejected,
		N:          pi.N,
		BoundsLo:   pi.BoundsLo,
		BoundsHi:   pi.BoundsHi,
	}, nil
}
