package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"planar/internal/vecmath"
)

// pipelineMulti builds a store plus a Multi with two first-octant
// indexes, the shared fixture for the plan-cache and batch tests.
func pipelineMulti(t *testing.T, opts ...MultiOption) (*PointStore, *Multi) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	s := randomStore(t, rng, 800, 3, 1, 50)
	m, err := NewMulti(s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	oct := vecmath.FirstOctant(3)
	for _, normal := range [][]float64{{1, 2, 3}, {3, 1, 1}} {
		if ok, err := m.AddNormal(normal, oct); err != nil || !ok {
			t.Fatalf("AddNormal(%v): ok=%v err=%v", normal, ok, err)
		}
	}
	return s, m
}

func TestPlanCacheEndToEnd(t *testing.T) {
	s, m := pipelineMulti(t)
	a := []float64{1, 1, 2}

	q := Query{A: a, B: 90, Op: LE}
	ids1, st1, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Error("first query reported a cache hit")
	}
	// Same direction, different threshold: the selection is served
	// from the cache but the answer must stay exact.
	for _, b := range []float64{-10, 40, 90, 200, 5000} {
		q := Query{A: a, B: b, Op: LE}
		ids, st, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !st.CacheHit {
			t.Errorf("b=%v: repeated direction missed the plan cache", b)
		}
		if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
			t.Fatalf("b=%v: cached plan returned wrong ids", b)
		}
	}
	if !equalIDs(sortedIDs(ids1), bruteForce(s, q)) {
		t.Fatal("cold plan returned wrong ids")
	}
	hits, misses := m.PlanCacheCounters()
	if hits < 5 || misses < 1 {
		t.Fatalf("cache counters hits=%d misses=%d", hits, misses)
	}

	// Any mutation bumps the epoch and invalidates cached selections.
	if _, err := m.Append([]float64{100, 100, 100}); err != nil {
		t.Fatal(err)
	}
	_, st2, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CacheHit {
		t.Error("query after mutation still reported a cache hit")
	}
	_, st3, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if !st3.CacheHit {
		t.Error("second query after mutation should re-hit the cache")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	s, m := pipelineMulti(t, WithPlanCache(0))
	a := []float64{2, 1, 1}
	for _, b := range []float64{50, 50, 120} {
		q := Query{A: a, B: b, Op: LE}
		ids, st, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHit {
			t.Fatal("disabled cache reported a hit")
		}
		if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
			t.Fatalf("b=%v: wrong ids with cache disabled", b)
		}
	}
	if hits, misses := m.PlanCacheCounters(); hits != 0 || misses != 0 {
		t.Fatalf("disabled cache has counters hits=%d misses=%d", hits, misses)
	}
}

// TestPlanCacheAgreesWithUncached runs the same random query stream
// through a cached and an uncached Multi over the same store and
// demands identical answers and identical index selections.
func TestPlanCacheAgreesWithUncached(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	s := randomStore(t, rng, 600, 3, 1, 40)
	build := func(opts ...MultiOption) *Multi {
		m, err := NewMulti(s, opts...)
		if err != nil {
			t.Fatal(err)
		}
		oct := vecmath.FirstOctant(3)
		for _, normal := range [][]float64{{1, 1, 1}, {1, 4, 2}, {5, 1, 1}} {
			if _, err := m.AddNormal(normal, oct); err != nil {
				t.Fatal(err)
			}
		}
		return m
	}
	cached, uncached := build(), build(WithPlanCache(0))

	dirs := [][]float64{{1, 2, 1}, {3, 1, 2}, {1, 1, 5}}
	for trial := 0; trial < 60; trial++ {
		q := Query{A: dirs[trial%len(dirs)], B: rng.Float64() * 2000, Op: LE}
		got, st1, err := cached.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		want, st2, err := uncached.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("trial %d: cached ids differ from uncached", trial)
		}
		if st1.IndexUsed != st2.IndexUsed {
			t.Fatalf("trial %d: cached selection chose index %d, uncached %d",
				trial, st1.IndexUsed, st2.IndexUsed)
		}
	}
}

func TestInequalityBatchMatchesSingles(t *testing.T) {
	s, m := pipelineMulti(t)
	a := []float64{1, 3, 1}
	bs := []float64{-50, 0, 60, 130, 400, 10000}

	for _, op := range []Op{LE, GE} {
		batch, sts, err := m.InequalityBatch(a, op, bs)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(bs) || len(sts) != len(bs) {
			t.Fatalf("op %v: batch returned %d/%d results for %d thresholds",
				op, len(batch), len(sts), len(bs))
		}
		for i, b := range bs {
			q := Query{A: a, B: b, Op: op}
			single, st, err := m.InequalityIDs(q)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(sortedIDs(batch[i]), sortedIDs(single)) {
				t.Fatalf("op %v b=%v: batch ids differ from single query", op, b)
			}
			if !equalIDs(sortedIDs(batch[i]), bruteForce(s, q)) {
				t.Fatalf("op %v b=%v: batch ids differ from brute force", op, b)
			}
			if sts[i].Accepted != st.Accepted || sts[i].Verified != st.Verified ||
				sts[i].Matched != st.Matched || sts[i].Rejected != st.Rejected ||
				sts[i].IndexUsed != st.IndexUsed {
				t.Fatalf("op %v b=%v: batch stats %+v differ from single %+v", op, b, sts[i], st)
			}
		}
	}

	// Validation: bad coefficients and non-finite thresholds error.
	if _, _, err := m.InequalityBatch(nil, LE, bs); err == nil {
		t.Error("empty coefficient vector accepted")
	}
	if _, _, err := m.InequalityBatch(a, LE, []float64{1, math.NaN()}); err == nil {
		t.Error("NaN threshold accepted")
	}
	if out, sts, err := m.InequalityBatch(a, LE, nil); err != nil || len(out) != 0 || len(sts) != 0 {
		t.Errorf("empty batch: out=%d sts=%d err=%v", len(out), len(sts), err)
	}
}

// TestParallelWorkersClampedBeforeDispatch pins the fix for the
// worker-clamp ordering bug: with GOMAXPROCS=1 a request for many
// workers must degrade to the serial path (Workers stays 0) instead
// of spinning up a one-goroutine "parallel" run.
func TestParallelWorkersClampedBeforeDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := randomStore(t, rng, 1500, 3, 1, 100)
	ix, err := NewIndex(s, []float64{1, 1, 1}, vecmath.FirstOctant(3))
	if err != nil {
		t.Fatal(err)
	}
	q := Query{A: []float64{2, 1, 3}, B: 350, Op: LE}
	serial, stSerial, err := ix.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	ids, st, err := ix.InequalityParallelIDs(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 0 {
		t.Errorf("GOMAXPROCS=1 request spawned %d workers, want serial path", st.Workers)
	}
	if !equalIDs(sortedIDs(ids), sortedIDs(serial)) {
		t.Error("clamped run returned different ids")
	}
	if st.Matched != stSerial.Matched || st.Verified != stSerial.Verified {
		t.Errorf("clamped stats %+v differ from serial %+v", st, stSerial)
	}
	runtime.GOMAXPROCS(prev)

	if prev >= 2 {
		ids, st, err = ix.InequalityParallelIDs(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if st.Workers < 2 {
			t.Errorf("parallel run recorded Workers=%d, want >=2", st.Workers)
		}
		if !equalIDs(sortedIDs(ids), sortedIDs(serial)) {
			t.Error("parallel run returned different ids")
		}
	}
}

// TestPipelineStatsStages checks the new per-stage fields are wired
// through the public query paths.
func TestPipelineStatsStages(t *testing.T) {
	_, m := pipelineMulti(t)
	q := Query{A: []float64{1, 1, 1}, B: 80, Op: LE}
	_, st, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanNanos < 0 || st.ExecNanos < 0 {
		t.Fatalf("negative stage times: %+v", st)
	}
	if st.N == 0 {
		t.Fatal("stats missing population size")
	}
	if st.Accepted+st.Verified+st.Rejected > st.N {
		t.Fatalf("interval counters exceed N: %+v", st)
	}
}
