package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"planar/internal/exec"
	"planar/internal/vecmath"
)

// Selection names a best-index selection heuristic (Section 5.1). It
// is an alias of the pipeline's selection type.
type Selection = exec.Selection

const (
	// SelectVolume picks the index minimising the maximum stretch of
	// the intermediate interval (Problem 3). The paper finds this
	// usually superior; it is the default.
	SelectVolume = exec.SelectVolume
	// SelectAngle picks the index whose hyperplane family makes the
	// smallest angle with the query hyperplane.
	SelectAngle = exec.SelectAngle
)

// ErrNoCompatibleIndex is returned (or causes a scan fallback) when
// no index in a Multi serves the query's hyper-octant. It is the
// pipeline's error value, re-exported so errors.Is and == comparisons
// keep working.
var ErrNoCompatibleIndex = exec.ErrNoCompatibleIndex

// DefaultPlanCacheSize is the number of distinct query coefficient
// directions whose index selection a Multi memoises by default.
const DefaultPlanCacheSize = 128

// Domain is the a-priori range of one query coefficient (paper
// Section 4.1). Lo and Hi must not straddle zero: the octant of each
// coefficient must be known for indexes to be built.
type Domain struct {
	Lo, Hi float64
}

// Sign returns the coefficient sign implied by the domain.
func (d Domain) Sign() int8 {
	if d.Lo >= 0 {
		return 1
	}
	return -1
}

// Validate rejects empty, non-finite or zero-straddling domains.
func (d Domain) Validate() error {
	if math.IsNaN(d.Lo) || math.IsNaN(d.Hi) || math.IsInf(d.Lo, 0) || math.IsInf(d.Hi, 0) {
		return errors.New("core: domain bounds must be finite")
	}
	if d.Lo > d.Hi {
		return fmt.Errorf("core: empty domain [%v, %v]", d.Lo, d.Hi)
	}
	if d.Lo < 0 && d.Hi > 0 {
		return fmt.Errorf("core: domain [%v, %v] straddles zero; split the workload by octant", d.Lo, d.Hi)
	}
	return nil
}

// sample draws a magnitude uniformly from the domain's absolute
// range, clamped away from zero (index normals must be positive).
func (d Domain) sample(rng *rand.Rand) float64 {
	lo, hi := math.Abs(d.Lo), math.Abs(d.Hi)
	if lo > hi {
		lo, hi = hi, lo
	}
	v := lo + rng.Float64()*(hi-lo)
	if v <= 0 {
		v = hi * 1e-6
		if v <= 0 {
			v = 1e-9
		}
	}
	return v
}

// Multi is a budgeted collection of planar indexes over one shared
// point store, with best-index selection at query time (Section 5)
// and coordinated dynamic updates (Section 4.4). All methods are
// safe for concurrent use; mutations are serialised. Queries run on
// the internal/exec pipeline; repeated coefficient directions hit the
// plan cache.
type Multi struct {
	mu          sync.RWMutex
	store       *PointStore
	indexes     []*Index
	sel         Selection
	fallback    bool
	guard       float64
	costPenalty float64 // >0 enables cost-based index-vs-scan choice
	epoch       uint64  // bumped on every mutation; invalidates cached plans
	cache       *exec.PlanCache
	execOpts    exec.Options // per-Multi execution tuning (batching, workers)

	// Store accessors bound once so building a lease allocates no
	// closures.
	vecFn  func(uint32) []float64
	eachFn func(func(uint32, []float64) bool)
}

// MultiOption customises a Multi.
type MultiOption func(*Multi)

// WithSelection sets the best-index heuristic.
func WithSelection(s Selection) MultiOption {
	return func(m *Multi) { m.sel = s }
}

// WithFallback controls whether queries with no compatible index are
// answered by a sequential scan (default true) or fail with
// ErrNoCompatibleIndex.
func WithFallback(on bool) MultiOption {
	return func(m *Multi) { m.fallback = on }
}

// WithIndexGuard sets the conservative threshold band used by
// indexes subsequently added to this Multi.
func WithIndexGuard(g float64) MultiOption {
	return func(m *Multi) { m.guard = g }
}

// WithPlanCache overrides the plan cache's capacity (number of
// distinct coefficient directions memoised). capacity <= 0 disables
// plan caching entirely.
func WithPlanCache(capacity int) MultiOption {
	return func(m *Multi) { m.cache = exec.NewPlanCache(capacity) }
}

// WithCostBased enables cost-based execution for inequality queries
// (top-k always prefers an index: its SI walk is pruned early, so
// the scan rarely wins there). Before answering through an index,
// the Multi estimates the indexed plan's cost in
// O(log n) from the interval cardinalities — |SI| accepted
// sequentially plus |II| verified with random point accesses, the
// latter weighted by penalty (how much a random access costs
// relative to one sequential scan step; 2–4 is typical) — and falls
// back to the sequential scan when that estimate exceeds n. This
// captures the paper's observation that with high dimensionality and
// query randomness "the points in the intermediate interval require
// a random access — which takes more time" than the baseline's
// sequential pass (Section 7.2.2). penalty <= 0 disables the model.
func WithCostBased(penalty float64) MultiOption {
	return func(m *Multi) { m.costPenalty = penalty }
}

// WithBatchedVerify toggles the batched verification engine (default
// on). Off pins the classic per-entry B-tree walk — the escape hatch
// benchmarks and bisections use to compare the two paths.
func WithBatchedVerify(on bool) MultiOption {
	return func(m *Multi) { m.execOpts.ForceTreeWalk = !on }
}

// WithVerifyWorkers sets the goroutine count used to verify the
// intermediate interval (clamped to [1, GOMAXPROCS] at query time; 0
// or 1 verifies serially).
func WithVerifyWorkers(n int) MultiOption {
	return func(m *Multi) { m.execOpts.Workers = n }
}

// NewMulti creates an empty index collection over store.
func NewMulti(store *PointStore, opts ...MultiOption) (*Multi, error) {
	if store == nil {
		return nil, errors.New("core: nil point store")
	}
	m := &Multi{
		store:    store,
		sel:      SelectVolume,
		fallback: true,
		guard:    DefaultGuard,
		cache:    exec.NewPlanCache(DefaultPlanCacheSize),
		vecFn:    store.Vector,
		eachFn:   store.Each,
	}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Store returns the shared point store.
func (m *Multi) Store() *PointStore { return m.store }

// NumIndexes returns the number of planar indexes held.
func (m *Multi) NumIndexes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.indexes)
}

// Index returns the i-th index (for inspection and ablation).
func (m *Multi) Index(i int) *Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexes[i]
}

// PlanCacheCounters returns the plan cache's cumulative hit and miss
// counts (both zero when caching is disabled).
func (m *Multi) PlanCacheCounters() (hits, misses uint64) {
	return m.cache.Counters()
}

// sourceLease is one query's pipeline view of a Multi plus the set of
// per-index read locks it holds. Leases are pooled: a steady-state
// query reuses the previous query's slices and allocates nothing.
type sourceLease struct {
	src     exec.Source
	indexes []*Index // read-locked until Release
}

var leasePool = sync.Pool{New: func() any { return new(sourceLease) }}

// Release unlocks every index the lease pinned and recycles it. Must
// be called exactly once, after the pipeline finishes.
func (l *sourceLease) Release() {
	for _, ix := range l.indexes {
		ix.mu.RUnlock()
	}
	leasePool.Put(l)
}

// sourceLocked snapshots the pipeline's view of the Multi: every
// index's geometry plus the point access paths. It read-locks each
// index so concurrent standalone mutations (Index.Add) cannot race
// with the run; the returned lease must be Released once the pipeline
// finishes. Callers hold m.mu (read). costBased controls whether the
// cost-based index-vs-scan choice applies — it is sound only for
// plans that walk the smaller interval sequentially.
func (m *Multi) sourceLocked(costBased bool) *sourceLease {
	l := leasePool.Get().(*sourceLease)
	l.indexes = append(l.indexes[:0], m.indexes...)
	infos := l.src.Indexes[:0]
	for _, ix := range l.indexes {
		ix.mu.RLock()
		infos = append(infos, ix.info())
	}
	rows, live := m.store.RawRows()
	l.src = exec.Source{
		N:        m.store.Len(),
		Indexes:  infos,
		Sel:      m.sel,
		Fallback: m.fallback,
		Vector:   m.vecFn,
		Each:     m.eachFn,
		Rows:     rows,
		RowLive:  live,
		RowDim:   m.store.Dim(),
		Epoch:    m.epoch,
		Cache:    m.cache,
	}
	if costBased {
		l.src.CostPenalty = m.costPenalty
	}
	return l
}

// AddNormal builds and adds an index with the given normal and
// octant, unless a redundant index (parallel normal, same octant) is
// already present (Section 5.2). It reports whether an index was
// added.
func (m *Multi) AddNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ix := range m.indexes {
		if ix.signs.Equal(signs) && vecmath.Parallel(ix.c, normal, 1e-9) {
			return false, nil
		}
	}
	ix, err := NewIndex(m.store, normal, signs, WithGuard(m.guard))
	if err != nil {
		return false, err
	}
	m.indexes = append(m.indexes, ix)
	m.epoch++
	return true, nil
}

// NormalSpec describes one index to install: its normal (translated
// frame) and the hyper-octant of query coefficients it serves.
type NormalSpec struct {
	Normal []float64
	Signs  vecmath.SignPattern
}

// AddNormals installs a batch of indexes at once, bulk-loading their
// arenas on up to GOMAXPROCS goroutines. This is the recovery path:
// snapshot restore and shard bootstrap rebuild every index of a store
// from its spec list, and each build is an independent O(n log n)
// BulkLoad over the shared (read-only) point store. Redundant specs —
// parallel normal, same octant, against existing indexes or an
// earlier spec in the batch — are skipped exactly as repeated
// AddNormal calls would skip them. It returns how many indexes were
// added.
func (m *Multi) AddNormals(specs []NormalSpec) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// The redundancy filter stays sequential so batch order has the
	// same meaning as call order.
	type job struct {
		pos  int
		spec NormalSpec
	}
	var jobs []job
	for i, sp := range specs {
		redundant := false
		for _, ix := range m.indexes {
			if ix.signs.Equal(sp.Signs) && vecmath.Parallel(ix.c, sp.Normal, 1e-9) {
				redundant = true
				break
			}
		}
		for _, j := range jobs {
			if redundant {
				break
			}
			if j.spec.Signs.Equal(sp.Signs) && vecmath.Parallel(j.spec.Normal, sp.Normal, 1e-9) {
				redundant = true
			}
		}
		if !redundant {
			jobs = append(jobs, job{pos: i, spec: sp})
		}
	}
	if len(jobs) == 0 {
		return 0, nil
	}

	built := make([]*Index, len(jobs))
	errs := make([]error, len(jobs))
	workers := exec.ClampWorkers(len(jobs))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= len(jobs) {
					return
				}
				ix, err := NewIndex(m.store, jobs[i].spec.Normal, jobs[i].spec.Signs, WithGuard(m.guard))
				if err != nil {
					errs[i] = fmt.Errorf("core: index %d: %w", jobs[i].pos, err)
					continue
				}
				built[i] = ix
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	m.indexes = append(m.indexes, built...)
	m.epoch++
	return len(built), nil
}

// SampleBudget draws up to budget index normals uniformly from the
// per-coefficient domains (Section 5.2), skipping redundant ones. It
// returns how many indexes were actually added. The rng makes index
// construction reproducible.
func (m *Multi) SampleBudget(budget int, domains []Domain, rng *rand.Rand) (int, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("core: budget must be positive, got %d", budget)
	}
	if len(domains) != m.store.Dim() {
		return 0, fmt.Errorf("core: got %d domains, want %d", len(domains), m.store.Dim())
	}
	signs := make(vecmath.SignPattern, len(domains))
	for i, d := range domains {
		if err := d.Validate(); err != nil {
			return 0, fmt.Errorf("domain %d: %w", i, err)
		}
		signs[i] = d.Sign()
	}
	added := 0
	normal := make([]float64, len(domains))
	// Sampling can hit redundant normals (especially on discrete
	// domains); allow a generous number of retries before giving up.
	for attempts := 0; added < budget && attempts < budget*20; attempts++ {
		for i, d := range domains {
			normal[i] = d.sample(rng)
		}
		ok, err := m.AddNormal(normal, signs)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// RemoveAllIndexes drops every index (the MOVIES-style "throw the
// index away" step for moving-object workloads) while keeping the
// point store.
func (m *Multi) RemoveAllIndexes() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.indexes = nil
	m.epoch++
}

// Best returns the index the selection heuristic prefers for q,
// along with its position. Only octant-compatible indexes are
// considered.
func (m *Multi) Best(q Query) (*Index, int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	nq := q.normalized()
	bestIdx := -1
	bestScore := math.Inf(1)
	for i, ix := range m.indexes {
		if !ix.signs.Matches(nq.A) {
			continue
		}
		var score float64
		switch m.sel {
		case SelectAngle:
			score = -ix.CosToQuery(nq) // maximise |cos|
		default:
			score = ix.Stretch(nq)
		}
		if score < bestScore {
			bestScore, bestIdx = score, i
		}
	}
	if bestIdx < 0 {
		return nil, -1, ErrNoCompatibleIndex
	}
	return m.indexes[bestIdx], bestIdx, nil
}

// Inequality answers Problem 1 using the best compatible index, or a
// sequential scan when none exists and fallback is enabled.
//
// The Multi's read lock is held for the whole operation: it is what
// makes concurrent queries safe against Update/Append/Remove, which
// mutate the shared point store under the write lock.
func (m *Multi) Inequality(q Query, visit func(id uint32) bool) (Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return Stats{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(true)
	defer lease.Release()
	src := &lease.src
	return exec.Run(src, q.LE(), exec.FuncSink(visit), m.execOpts)
}

// InequalityIDs collects all matching point ids.
func (m *Multi) InequalityIDs(q Query) ([]uint32, Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(true)
	defer lease.Release()
	src := &lease.src
	var sink exec.IDSink
	st, err := exec.Run(src, q.LE(), &sink, m.execOpts)
	if err != nil {
		return nil, Stats{}, err
	}
	return sink.IDs, st, nil
}

// InequalityBatch answers one inequality query per threshold in bs,
// all sharing the coefficient vector a: octant checks and best-index
// selection run once and the interval thresholds are recomputed per
// threshold — the natural shape for moving-object ticks and
// threshold sweeps where a is fixed and b varies. ids[i] and
// stats[i] answer ⟨a, φ(x)⟩ op bs[i].
func (m *Multi) InequalityBatch(a []float64, op Op, bs []float64) (ids [][]uint32, stats []Stats, err error) {
	if err := (Query{A: a, B: 0, Op: op}).Validate(m.store.Dim()); err != nil {
		return nil, nil, err
	}
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, nil, fmt.Errorf("core: batch threshold %d is %v, must be finite", i, b)
		}
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(true)
	defer lease.Release()
	src := &lease.src

	// Normalize once: a GE batch is a LE batch on (−a, −b).
	na, nbs := a, bs
	if op == GE {
		na = make([]float64, len(a))
		for i, v := range a {
			na[i] = -v
		}
		nbs = make([]float64, len(bs))
		for i, b := range bs {
			nbs[i] = -b
		}
	}
	sinks := make([]*exec.IDSink, len(bs))
	stats, err = exec.RunBatch(src, na, nbs, func(i int, _ float64) exec.Sink {
		sinks[i] = &exec.IDSink{}
		return sinks[i]
	}, m.execOpts)
	if err != nil {
		return nil, nil, err
	}
	ids = make([][]uint32, len(bs))
	for i, s := range sinks {
		ids[i] = s.IDs
	}
	return ids, stats, nil
}

// TopK answers Problem 2 using the best compatible index, or a
// sequential scan fallback. Like Inequality, it holds the read lock
// for the whole operation.
func (m *Multi) TopK(q Query, k int) ([]Result, Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: TopK requires k > 0, got %d", k)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	// A zero coefficient vector is octant-compatible with every
	// index, so whenever one exists the indexed top-k path would be
	// selected and its distance measure is undefined; only the
	// index-free scan fallback can serve it.
	if vecmath.Norm(q.A) == 0 && len(m.indexes) > 0 {
		return nil, Stats{}, errors.New("core: TopK requires a non-zero coefficient vector")
	}
	lease := m.sourceLocked(false)
	defer lease.Release()
	src := &lease.src
	nq := q.LE()
	sink := topKSink(m.store, nq, k)
	st, err := exec.Run(src, nq, sink, m.execOpts)
	if err != nil {
		return nil, Stats{}, err
	}
	return sink.Results(), st, nil
}

// Append adds a point to the store and to every index. It returns
// the new point id.
func (m *Multi) Append(v []float64) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, err := m.store.Append(v)
	if err != nil {
		return 0, err
	}
	for _, ix := range m.indexes {
		ix.mu.Lock()
		ix.add(id, m.store.Vector(id))
		ix.mu.Unlock()
	}
	m.epoch++
	return id, nil
}

// Update replaces a point's φ vector and re-keys it in every index —
// the O(d'·log n)-per-index dynamic update of Section 4.4.
func (m *Multi) Update(id uint32, v []float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.store.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	old := vecmath.Clone(m.store.Vector(id))
	if err := m.store.Set(id, v); err != nil {
		return err
	}
	cur := m.store.Vector(id)
	for _, ix := range m.indexes {
		ix.mu.Lock()
		ix.update(id, old, cur)
		ix.mu.Unlock()
	}
	m.epoch++
	return nil
}

// Remove deletes a point from the store and every index.
func (m *Multi) Remove(id uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.store.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	old := vecmath.Clone(m.store.Vector(id))
	for _, ix := range m.indexes {
		ix.mu.Lock()
		ix.remove(id, old)
		ix.mu.Unlock()
	}
	m.epoch++
	return m.store.Remove(id)
}

// MemoryBytes returns the approximate footprint of all indexes plus
// the shared store.
func (m *Multi) MemoryBytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := m.store.MemoryBytes()
	for _, ix := range m.indexes {
		total += ix.MemoryBytes()
	}
	return total
}
