package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"planar/internal/vecmath"
)

// Selection names a best-index selection heuristic (Section 5.1).
type Selection int

const (
	// SelectVolume picks the index minimising the maximum stretch of
	// the intermediate interval (Problem 3). The paper finds this
	// usually superior; it is the default.
	SelectVolume Selection = iota
	// SelectAngle picks the index whose hyperplane family makes the
	// smallest angle with the query hyperplane.
	SelectAngle
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case SelectVolume:
		return "volume"
	case SelectAngle:
		return "angle"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// ErrNoCompatibleIndex is returned (or causes a scan fallback) when
// no index in a Multi serves the query's hyper-octant.
var ErrNoCompatibleIndex = errors.New("core: no index compatible with query octant")

// Domain is the a-priori range of one query coefficient (paper
// Section 4.1). Lo and Hi must not straddle zero: the octant of each
// coefficient must be known for indexes to be built.
type Domain struct {
	Lo, Hi float64
}

// Sign returns the coefficient sign implied by the domain.
func (d Domain) Sign() int8 {
	if d.Lo >= 0 {
		return 1
	}
	return -1
}

// Validate rejects empty, non-finite or zero-straddling domains.
func (d Domain) Validate() error {
	if math.IsNaN(d.Lo) || math.IsNaN(d.Hi) || math.IsInf(d.Lo, 0) || math.IsInf(d.Hi, 0) {
		return errors.New("core: domain bounds must be finite")
	}
	if d.Lo > d.Hi {
		return fmt.Errorf("core: empty domain [%v, %v]", d.Lo, d.Hi)
	}
	if d.Lo < 0 && d.Hi > 0 {
		return fmt.Errorf("core: domain [%v, %v] straddles zero; split the workload by octant", d.Lo, d.Hi)
	}
	return nil
}

// sample draws a magnitude uniformly from the domain's absolute
// range, clamped away from zero (index normals must be positive).
func (d Domain) sample(rng *rand.Rand) float64 {
	lo, hi := math.Abs(d.Lo), math.Abs(d.Hi)
	if lo > hi {
		lo, hi = hi, lo
	}
	v := lo + rng.Float64()*(hi-lo)
	if v <= 0 {
		v = hi * 1e-6
		if v <= 0 {
			v = 1e-9
		}
	}
	return v
}

// Multi is a budgeted collection of planar indexes over one shared
// point store, with best-index selection at query time (Section 5)
// and coordinated dynamic updates (Section 4.4). All methods are
// safe for concurrent use; mutations are serialised.
type Multi struct {
	mu          sync.RWMutex
	store       *PointStore
	indexes     []*Index
	sel         Selection
	fallback    bool
	guard       float64
	costPenalty float64 // >0 enables cost-based index-vs-scan choice
}

// MultiOption customises a Multi.
type MultiOption func(*Multi)

// WithSelection sets the best-index heuristic.
func WithSelection(s Selection) MultiOption {
	return func(m *Multi) { m.sel = s }
}

// WithFallback controls whether queries with no compatible index are
// answered by a sequential scan (default true) or fail with
// ErrNoCompatibleIndex.
func WithFallback(on bool) MultiOption {
	return func(m *Multi) { m.fallback = on }
}

// WithIndexGuard sets the conservative threshold band used by
// indexes subsequently added to this Multi.
func WithIndexGuard(g float64) MultiOption {
	return func(m *Multi) { m.guard = g }
}

// WithCostBased enables cost-based execution for inequality queries
// (top-k always prefers an index: its SI walk is pruned early, so
// the scan rarely wins there). Before answering through an index,
// the Multi estimates the indexed plan's cost in
// O(log n) from the interval cardinalities — |SI| accepted
// sequentially plus |II| verified with random point accesses, the
// latter weighted by penalty (how much a random access costs
// relative to one sequential scan step; 2–4 is typical) — and falls
// back to the sequential scan when that estimate exceeds n. This
// captures the paper's observation that with high dimensionality and
// query randomness "the points in the intermediate interval require
// a random access — which takes more time" than the baseline's
// sequential pass (Section 7.2.2). penalty <= 0 disables the model.
func WithCostBased(penalty float64) MultiOption {
	return func(m *Multi) { m.costPenalty = penalty }
}

// scanCheaper estimates whether a sequential scan would beat the
// indexed plan for this (already normalized) query. Callers hold
// m.mu (read).
func (m *Multi) scanCheaper(ix *Index, nq Query) bool {
	if m.costPenalty <= 0 {
		return false
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	tmin, tmax, _, all, none, err := ix.thresholds(nq)
	if err != nil || all || none {
		return false
	}
	n := ix.tree.Len()
	si := ix.tree.RankLE(tmin)
	var ii int
	if math.IsInf(tmax, 1) {
		ii = n - si
	} else {
		ii = ix.tree.CountRange(tmin, tmax)
	}
	return float64(si)+m.costPenalty*float64(ii) >= float64(n)
}

// NewMulti creates an empty index collection over store.
func NewMulti(store *PointStore, opts ...MultiOption) (*Multi, error) {
	if store == nil {
		return nil, errors.New("core: nil point store")
	}
	m := &Multi{store: store, sel: SelectVolume, fallback: true, guard: DefaultGuard}
	for _, o := range opts {
		o(m)
	}
	return m, nil
}

// Store returns the shared point store.
func (m *Multi) Store() *PointStore { return m.store }

// NumIndexes returns the number of planar indexes held.
func (m *Multi) NumIndexes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.indexes)
}

// Index returns the i-th index (for inspection and ablation).
func (m *Multi) Index(i int) *Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.indexes[i]
}

// AddNormal builds and adds an index with the given normal and
// octant, unless a redundant index (parallel normal, same octant) is
// already present (Section 5.2). It reports whether an index was
// added.
func (m *Multi) AddNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ix := range m.indexes {
		if ix.signs.Equal(signs) && vecmath.Parallel(ix.c, normal, 1e-9) {
			return false, nil
		}
	}
	ix, err := NewIndex(m.store, normal, signs, WithGuard(m.guard))
	if err != nil {
		return false, err
	}
	m.indexes = append(m.indexes, ix)
	return true, nil
}

// SampleBudget draws up to budget index normals uniformly from the
// per-coefficient domains (Section 5.2), skipping redundant ones. It
// returns how many indexes were actually added. The rng makes index
// construction reproducible.
func (m *Multi) SampleBudget(budget int, domains []Domain, rng *rand.Rand) (int, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("core: budget must be positive, got %d", budget)
	}
	if len(domains) != m.store.Dim() {
		return 0, fmt.Errorf("core: got %d domains, want %d", len(domains), m.store.Dim())
	}
	signs := make(vecmath.SignPattern, len(domains))
	for i, d := range domains {
		if err := d.Validate(); err != nil {
			return 0, fmt.Errorf("domain %d: %w", i, err)
		}
		signs[i] = d.Sign()
	}
	added := 0
	normal := make([]float64, len(domains))
	// Sampling can hit redundant normals (especially on discrete
	// domains); allow a generous number of retries before giving up.
	for attempts := 0; added < budget && attempts < budget*20; attempts++ {
		for i, d := range domains {
			normal[i] = d.sample(rng)
		}
		ok, err := m.AddNormal(normal, signs)
		if err != nil {
			return added, err
		}
		if ok {
			added++
		}
	}
	return added, nil
}

// RemoveAllIndexes drops every index (the MOVIES-style "throw the
// index away" step for moving-object workloads) while keeping the
// point store.
func (m *Multi) RemoveAllIndexes() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.indexes = nil
}

// Best returns the index the selection heuristic prefers for q,
// along with its position. Only octant-compatible indexes are
// considered.
func (m *Multi) Best(q Query) (*Index, int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bestLocked(q)
}

func (m *Multi) bestLocked(q Query) (*Index, int, error) {
	nq := q.normalized()
	bestIdx := -1
	bestScore := math.Inf(1)
	for i, ix := range m.indexes {
		if !ix.signs.Matches(nq.A) {
			continue
		}
		var score float64
		switch m.sel {
		case SelectAngle:
			score = -ix.CosToQuery(nq) // maximise |cos|
		default:
			score = ix.Stretch(nq)
		}
		if score < bestScore {
			bestScore, bestIdx = score, i
		}
	}
	if bestIdx < 0 {
		return nil, -1, ErrNoCompatibleIndex
	}
	return m.indexes[bestIdx], bestIdx, nil
}

// Inequality answers Problem 1 using the best compatible index, or a
// sequential scan when none exists and fallback is enabled.
//
// The Multi's read lock is held for the whole operation: it is what
// makes concurrent queries safe against Update/Append/Remove, which
// mutate the shared point store under the write lock.
func (m *Multi) Inequality(q Query, visit func(id uint32) bool) (Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return Stats{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	ix, pos, err := m.bestLocked(q)
	if err != nil {
		if !m.fallback {
			return Stats{}, err
		}
		return m.scanInequality(q, visit), nil
	}
	if m.scanCheaper(ix, q.normalized()) {
		return m.scanInequality(q, visit), nil
	}
	st, err := ix.Inequality(q, visit)
	st.IndexUsed = pos
	return st, err
}

// InequalityIDs collects all matching point ids.
func (m *Multi) InequalityIDs(q Query) ([]uint32, Stats, error) {
	var ids []uint32
	st, err := m.Inequality(q, func(id uint32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, st, err
}

// TopK answers Problem 2 using the best compatible index, or a
// sequential scan fallback. Like Inequality, it holds the read lock
// for the whole operation.
func (m *Multi) TopK(q Query, k int) ([]Result, Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	if k <= 0 {
		return nil, Stats{}, fmt.Errorf("core: TopK requires k > 0, got %d", k)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	ix, pos, err := m.bestLocked(q)
	if err != nil {
		if !m.fallback {
			return nil, Stats{}, err
		}
		res, st := m.scanTopK(q, k)
		return res, st, nil
	}
	res, st, err := ix.TopK(q, k)
	st.IndexUsed = pos
	return res, st, err
}

// scanInequality is the naive baseline path for incompatible queries.
func (m *Multi) scanInequality(q Query, visit func(id uint32) bool) Stats {
	st := Stats{N: m.store.Len(), FellBack: true, IndexUsed: -1}
	st.Verified = st.N
	m.store.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			st.Matched++
			return visit(id)
		}
		return true
	})
	return st
}

func (m *Multi) scanTopK(q Query, k int) ([]Result, Stats) {
	st := Stats{N: m.store.Len(), FellBack: true, IndexUsed: -1}
	st.Verified = st.N
	type cand struct {
		id uint32
		d  float64
	}
	var cands []cand
	m.store.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			st.Matched++
			cands = append(cands, cand{id, q.Distance(v)})
		}
		return true
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: c.id, Distance: c.d}
	}
	return out, st
}

// Append adds a point to the store and to every index. It returns
// the new point id.
func (m *Multi) Append(v []float64) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, err := m.store.Append(v)
	if err != nil {
		return 0, err
	}
	for _, ix := range m.indexes {
		ix.mu.Lock()
		ix.add(id, m.store.Vector(id))
		ix.mu.Unlock()
	}
	return id, nil
}

// Update replaces a point's φ vector and re-keys it in every index —
// the O(d'·log n)-per-index dynamic update of Section 4.4.
func (m *Multi) Update(id uint32, v []float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.store.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	old := vecmath.Clone(m.store.Vector(id))
	if err := m.store.Set(id, v); err != nil {
		return err
	}
	cur := m.store.Vector(id)
	for _, ix := range m.indexes {
		ix.mu.Lock()
		ix.update(id, old, cur)
		ix.mu.Unlock()
	}
	return nil
}

// Remove deletes a point from the store and every index.
func (m *Multi) Remove(id uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.store.Live(id) {
		return fmt.Errorf("core: point %d is not live", id)
	}
	old := vecmath.Clone(m.store.Vector(id))
	for _, ix := range m.indexes {
		ix.mu.Lock()
		ix.remove(id, old)
		ix.mu.Unlock()
	}
	return m.store.Remove(id)
}

// MemoryBytes returns the approximate footprint of all indexes plus
// the shared store.
func (m *Multi) MemoryBytes() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := m.store.MemoryBytes()
	for _, ix := range m.indexes {
		total += ix.MemoryBytes()
	}
	return total
}
