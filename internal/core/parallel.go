package core

import (
	"runtime"
	"sync"

	"planar/internal/btree"
)

// InequalityParallelIDs answers an inequality query like
// InequalityIDs but verifies the intermediate interval on `workers`
// goroutines. This is an extension beyond the paper (whose
// experiments are single-core); it pays off when the intermediate
// interval is large relative to per-point verification cost. With
// workers <= 1 it behaves exactly like InequalityIDs.
//
// The returned ids are in no particular order.
func (ix *Index) InequalityParallelIDs(q Query, workers int) ([]uint32, Stats, error) {
	if workers <= 1 {
		return ix.InequalityIDs(q)
	}
	if err := q.Validate(ix.store.Dim()); err != nil {
		return nil, Stats{}, err
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()

	st := Stats{N: ix.tree.Len(), IndexUsed: -1}
	nq := q.normalized()
	tmin, tmax, _, all, none, err := ix.thresholds(nq)
	if err != nil {
		return nil, Stats{}, err
	}
	if none {
		st.Rejected = st.N
		return nil, st, nil
	}

	var ids []uint32
	if all {
		st.Accepted = st.N
		ix.tree.Ascend(func(e btree.Entry) bool {
			ids = append(ids, e.ID)
			return true
		})
		return ids, st, nil
	}

	ix.tree.AscendLE(tmin, func(e btree.Entry) bool {
		ids = append(ids, e.ID)
		return true
	})
	st.Accepted = len(ids)

	var middle []uint32
	ix.tree.AscendRange(tmin, tmax, func(e btree.Entry) bool {
		middle = append(middle, e.ID)
		return true
	})
	st.Verified = len(middle)
	st.Rejected = st.N - st.Accepted - st.Verified

	if len(middle) == 0 {
		return ids, st, nil
	}
	if workers > len(middle) {
		workers = len(middle)
	}
	matched := make([][]uint32, workers)
	var wg sync.WaitGroup
	chunk := (len(middle) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(middle) {
			hi = len(middle)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local []uint32
			for _, id := range middle[lo:hi] {
				if nq.Satisfies(ix.store.Vector(id)) {
					local = append(local, id)
				}
			}
			matched[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, local := range matched {
		st.Matched += len(local)
		ids = append(ids, local...)
	}
	return ids, st, nil
}
