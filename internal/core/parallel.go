package core

import (
	"planar/internal/exec"
)

// InequalityParallelIDs answers an inequality query like
// InequalityIDs but verifies the intermediate interval on `workers`
// goroutines. This is an extension beyond the paper (whose
// experiments are single-core); it pays off when the intermediate
// interval is large relative to per-point verification cost. With
// workers <= 1 (after clamping to GOMAXPROCS) it behaves exactly like
// InequalityIDs.
//
// The returned ids are in no particular order.
func (ix *Index) InequalityParallelIDs(q Query, workers int) ([]uint32, Stats, error) {
	// Clamp before the serial-path check: a request for more workers
	// than the scheduler will run must degrade to however many it
	// will, including all the way down to the serial path on a
	// single-CPU host. exec.ClampWorkers is the same clamp the
	// pipeline applies internally.
	if workers = exec.ClampWorkers(workers); workers <= 1 {
		return ix.InequalityIDs(q)
	}
	if err := q.Validate(ix.store.Dim()); err != nil {
		return nil, Stats{}, err
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	src := ix.source()
	defer putSource(src)
	var sink exec.IDSink
	st, err := exec.Run(src, q.LE(), &sink, exec.Options{Workers: workers})
	if err != nil {
		return nil, Stats{}, err
	}
	return sink.IDs, st, nil
}
