package core

import (
	"planar/internal/exec"
)

// Count returns the exact number of points satisfying q. The counting
// sink's AcceptCount capability lets the pipeline resolve the smaller
// and larger intervals in O(log n) through the key tree's order
// statistics; only the intermediate interval is verified point by
// point, so a well-aligned index answers COUNT(*) queries in
// logarithmic time.
func (ix *Index) Count(q Query) (int, Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return 0, Stats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	src := ix.source()
	defer putSource(src)
	var sink exec.CountSink
	st, err := exec.Run(src, q.LE(), &sink, exec.Options{})
	if err != nil {
		return 0, Stats{}, err
	}
	return sink.N, st, nil
}

// SelectivityBounds returns guaranteed bounds lo <= |answer| <= hi
// in O(d'·log n) without computing a single scalar product: lo is
// the smaller interval's cardinality, hi adds the intermediate
// interval. A parallel index gives lo == hi — an exact COUNT in
// logarithmic time. Query optimisers can use this for cardinality
// estimation with hard guarantees.
func (ix *Index) SelectivityBounds(q Query) (lo, hi int, err error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return 0, 0, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	info := ix.info()
	return exec.Bounds(&info, q.LE())
}

// Count answers an exact COUNT(*) through the best compatible index,
// falling back to a scan when none exists (if fallback is enabled).
// The cost model is not consulted: the counting plan touches the
// smaller interval in O(log n), so the indexed plan's cost estimate
// would be wrong for it.
func (m *Multi) Count(q Query) (int, Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return 0, Stats{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(false)
	defer lease.Release()
	src := &lease.src
	var sink exec.CountSink
	st, err := exec.Run(src, q.LE(), &sink, m.execOpts)
	if err != nil {
		return 0, Stats{}, err
	}
	return sink.N, st, nil
}

// SelectivityBounds intersects the per-index bounds of every
// compatible index — each is individually guaranteed, so the
// tightest combination [max lo, min hi] is too. With no compatible
// index it returns the trivial bounds [0, n].
func (m *Multi) SelectivityBounds(q Query) (lo, hi int, err error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return 0, 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	lease := m.sourceLocked(false)
	defer lease.Release()
	src := &lease.src
	nq := q.LE()
	lo, hi = 0, m.store.Len()
	for i := range src.Indexes {
		info := &src.Indexes[i]
		if !info.Signs.Matches(nq.A) {
			continue
		}
		ilo, ihi, err := exec.Bounds(info, nq)
		if err != nil {
			return 0, 0, err
		}
		if ilo > lo {
			lo = ilo
		}
		if ihi < hi {
			hi = ihi
		}
	}
	return lo, hi, nil
}
