package core

import (
	"planar/internal/btree"
)

// Count returns the exact number of points satisfying q. The smaller
// and larger intervals are counted in O(log n) through the key
// tree's order statistics; only the intermediate interval is
// verified point by point, so a well-aligned index answers COUNT(*)
// queries in logarithmic time.
func (ix *Index) Count(q Query) (int, Stats, error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return 0, Stats{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	st := Stats{N: ix.tree.Len(), IndexUsed: -1}
	nq := q.normalized()
	tmin, tmax, _, all, none, err := ix.thresholds(nq)
	if err != nil {
		return 0, Stats{}, err
	}
	if none {
		st.Rejected = st.N
		return 0, st, nil
	}
	if all {
		st.Accepted = st.N
		return st.N, st, nil
	}
	st.Accepted = ix.tree.RankLE(tmin)
	ix.tree.AscendRange(tmin, tmax, func(e btree.Entry) bool {
		st.Verified++
		if nq.Satisfies(ix.store.Vector(e.ID)) {
			st.Matched++
		}
		return true
	})
	st.Rejected = st.N - st.Accepted - st.Verified
	return st.Accepted + st.Matched, st, nil
}

// SelectivityBounds returns guaranteed bounds lo <= |answer| <= hi
// in O(d'·log n) without computing a single scalar product: lo is
// the smaller interval's cardinality, hi adds the intermediate
// interval. A parallel index gives lo == hi — an exact COUNT in
// logarithmic time. Query optimisers can use this for cardinality
// estimation with hard guarantees.
func (ix *Index) SelectivityBounds(q Query) (lo, hi int, err error) {
	if err := q.Validate(ix.store.Dim()); err != nil {
		return 0, 0, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	nq := q.normalized()
	tmin, tmax, _, all, none, err := ix.thresholds(nq)
	if err != nil {
		return 0, 0, err
	}
	n := ix.tree.Len()
	if none {
		return 0, 0, nil
	}
	if all {
		return n, n, nil
	}
	lo = ix.tree.RankLE(tmin)
	hi = lo + ix.tree.CountRange(tmin, tmax)
	return lo, hi, nil
}

// Count answers an exact COUNT(*) through the best compatible index,
// falling back to a scan when none exists (if fallback is enabled).
func (m *Multi) Count(q Query) (int, Stats, error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return 0, Stats{}, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	ix, pos, err := m.bestLocked(q)
	if err != nil {
		if !m.fallback {
			return 0, Stats{}, err
		}
		st := Stats{N: m.store.Len(), FellBack: true, IndexUsed: -1}
		st.Verified = st.N
		count := 0
		m.store.Each(func(_ uint32, v []float64) bool {
			if q.Satisfies(v) {
				count++
			}
			return true
		})
		st.Matched = count
		return count, st, nil
	}
	count, st, err := ix.Count(q)
	st.IndexUsed = pos
	return count, st, err
}

// SelectivityBounds intersects the per-index bounds of every
// compatible index — each is individually guaranteed, so the
// tightest combination [max lo, min hi] is too. With no compatible
// index it returns the trivial bounds [0, n].
func (m *Multi) SelectivityBounds(q Query) (lo, hi int, err error) {
	if err := q.Validate(m.store.Dim()); err != nil {
		return 0, 0, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	nq := q.normalized()
	lo, hi = 0, m.store.Len()
	for _, ix := range m.indexes {
		if !ix.signs.Matches(nq.A) {
			continue
		}
		ilo, ihi, err := ix.SelectivityBounds(q)
		if err != nil {
			return 0, 0, err
		}
		if ilo > lo {
			lo = ilo
		}
		if ihi < hi {
			hi = ihi
		}
	}
	return lo, hi, nil
}
