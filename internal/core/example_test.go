package core_test

import (
	"fmt"
	"math/rand"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// ExampleIndex demonstrates a single planar index answering an
// inequality query exactly.
func ExampleIndex() {
	store, _ := core.NewPointStore(2)
	for _, v := range [][]float64{{1, 1}, {3, 3}, {2, 5}, {8, 2}, {9, 9}, {4, 4}} {
		store.Append(v)
	}
	ix, _ := core.NewIndex(store, []float64{1, 1}, vecmath.FirstOctant(2))

	// ⟨(1, 2), φ(x)⟩ ≤ 10
	q, _ := core.NewQuery([]float64{1, 2}, 10, core.LE)
	ids, st, _ := ix.InequalityIDs(q)
	fmt.Printf("matches=%d accepted-without-verification=%d\n", len(ids), st.Accepted)
	// Output:
	// matches=2 accepted-without-verification=1
}

// ExampleMulti shows budgeted index construction from parameter
// domains and a top-k nearest-neighbour query.
func ExampleMulti() {
	store, _ := core.NewPointStore(2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		store.Append([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	m, _ := core.NewMulti(store)
	m.SampleBudget(10, []core.Domain{{Lo: 1, Hi: 3}, {Lo: 1, Hi: 3}}, rng)

	q, _ := core.NewQuery([]float64{2, 1}, 12, core.LE)
	top, _, _ := m.TopK(q, 3)
	fmt.Printf("results=%d closest-first=%v\n", len(top), top[0].Distance <= top[2].Distance)
	// Output:
	// results=3 closest-first=true
}

// ExampleIndex_Count shows the O(log n) COUNT(*) path: only the
// intermediate interval is verified.
func ExampleIndex_Count() {
	store, _ := core.NewPointStore(2)
	for i := 0; i < 100; i++ {
		store.Append([]float64{float64(i), float64(i)})
	}
	ix, _ := core.NewIndex(store, []float64{1, 1}, vecmath.FirstOctant(2))

	// Parallel to the index family: counted with zero verification.
	q, _ := core.NewQuery([]float64{2, 2}, 150, core.LE)
	count, st, _ := ix.Count(q)
	fmt.Printf("count=%d verified=%d\n", count, st.Verified)
	// Output:
	// count=38 verified=0
}
