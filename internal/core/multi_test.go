package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"planar/internal/vecmath"
)

func TestDomainValidation(t *testing.T) {
	cases := []struct {
		d  Domain
		ok bool
	}{
		{Domain{1, 5}, true},
		{Domain{0, 5}, true},
		{Domain{-5, -1}, true},
		{Domain{-5, 0}, true},
		{Domain{5, 1}, false},
		{Domain{-1, 1}, false},
	}
	for _, c := range cases {
		err := c.d.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Domain%v.Validate()=%v want ok=%v", c.d, err, c.ok)
		}
	}
	if (Domain{1, 5}).Sign() != 1 || (Domain{-5, -1}).Sign() != -1 {
		t.Error("Domain.Sign wrong")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := (Domain{0, 3}).sample(rng)
		if v <= 0 || v > 3 {
			t.Fatalf("sample out of range: %v", v)
		}
		w := (Domain{-4, -2}).sample(rng)
		if w < 2 || w > 4 {
			t.Fatalf("negative-domain sample magnitude out of range: %v", w)
		}
	}
}

func TestMultiAddNormalDedupes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomStore(t, rng, 100, 2, 1, 10)
	m, err := NewMulti(s)
	if err != nil {
		t.Fatal(err)
	}
	oct := vecmath.FirstOctant(2)
	if ok, err := m.AddNormal([]float64{1, 2}, oct); err != nil || !ok {
		t.Fatalf("first AddNormal: ok=%v err=%v", ok, err)
	}
	// Parallel normal, same octant: redundant (Section 5.2).
	if ok, _ := m.AddNormal([]float64{2, 4}, oct); ok {
		t.Error("redundant parallel normal accepted")
	}
	// Same direction but different octant: a distinct index.
	if ok, _ := m.AddNormal([]float64{1, 2}, vecmath.SignPattern{1, -1}); !ok {
		t.Error("different-octant normal rejected")
	}
	// Different direction: accepted.
	if ok, _ := m.AddNormal([]float64{5, 1}, oct); !ok {
		t.Error("distinct normal rejected")
	}
	if m.NumIndexes() != 3 {
		t.Fatalf("NumIndexes=%d", m.NumIndexes())
	}
	if m.Index(0) == nil {
		t.Fatal("Index accessor broken")
	}
	if _, err := m.AddNormal([]float64{-1, 1}, oct); err == nil {
		t.Error("invalid normal accepted")
	}
}

func TestSampleBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randomStore(t, rng, 200, 3, 1, 100)
	m, _ := NewMulti(s)
	doms := []Domain{{1, 10}, {1, 10}, {1, 10}}
	added, err := m.SampleBudget(20, doms, rng)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 || m.NumIndexes() != added {
		t.Fatalf("added=%d NumIndexes=%d", added, m.NumIndexes())
	}
	if _, err := m.SampleBudget(0, doms, rng); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := m.SampleBudget(5, doms[:2], rng); err == nil {
		t.Error("wrong domain count accepted")
	}
	if _, err := m.SampleBudget(5, []Domain{{-1, 1}, {1, 2}, {1, 2}}, rng); err == nil {
		t.Error("zero-straddling domain accepted")
	}
	if m.MemoryBytes() <= 0 {
		t.Error("MemoryBytes non-positive")
	}
	m.RemoveAllIndexes()
	if m.NumIndexes() != 0 {
		t.Error("RemoveAllIndexes left indexes behind")
	}
}

func TestMultiQueryMatchesBruteForceAndSelectsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randomStore(t, rng, 800, 3, 1, 100)
	m, _ := NewMulti(s)
	oct := vecmath.FirstOctant(3)
	m.AddNormal([]float64{1, 1, 1}, oct)
	m.AddNormal([]float64{5, 1, 1}, oct)
	m.AddNormal([]float64{2, 3, 4}, oct)

	// A query parallel to the third index must select it under both
	// heuristics.
	q := Query{A: []float64{4, 6, 8}, B: 900, Op: LE}
	ix, pos, err := m.Best(q)
	if err != nil {
		t.Fatal(err)
	}
	if pos != 2 {
		t.Fatalf("volume selection picked index %d, want 2 (stretch=%v)", pos, ix.Stretch(q))
	}
	mAngle, _ := NewMulti(s, WithSelection(SelectAngle))
	mAngle.AddNormal([]float64{1, 1, 1}, oct)
	mAngle.AddNormal([]float64{5, 1, 1}, oct)
	mAngle.AddNormal([]float64{2, 3, 4}, oct)
	if _, pos, _ := mAngle.Best(q); pos != 2 {
		t.Fatalf("angle selection picked index %d, want 2", pos)
	}

	for trial := 0; trial < 40; trial++ {
		a := []float64{rng.Float64() * 9, rng.Float64() * 9, rng.Float64() * 9}
		b := rng.Float64() * 500
		q := Query{A: a, B: b, Op: LE}
		st, err := m.Inequality(q, func(uint32) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		gotIDs, st2, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Results() != st2.Results() {
			t.Fatalf("inconsistent stats between calls: %+v vs %+v", st, st2)
		}
		if !equalIDs(sortedIDs(gotIDs), bruteForce(s, q)) {
			t.Fatalf("trial %d: multi answer mismatched brute force", trial)
		}
		if st2.IndexUsed < 0 || st2.FellBack {
			t.Fatalf("expected an index to be used: %+v", st2)
		}
	}
}

func TestMultiFallbackScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := randomStore(t, rng, 300, 2, -10, 10)
	m, _ := NewMulti(s)
	m.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2))
	// Mixed-sign query: no compatible octant.
	q := Query{A: []float64{1, -1}, B: 3, Op: LE}
	ids, st, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack {
		t.Fatalf("expected fallback, stats=%+v", st)
	}
	if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
		t.Fatal("fallback scan wrong")
	}
	// TopK fallback.
	res, st2, err := m.TopK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.FellBack {
		t.Fatal("TopK should have fallen back")
	}
	if !sameTopK(res, bruteTopK(s, q, 5), 1e-9) {
		t.Fatal("fallback top-k wrong")
	}
	// Without fallback, the error surfaces.
	strict, _ := NewMulti(s, WithFallback(false))
	strict.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2))
	if _, _, err := strict.InequalityIDs(q); !errors.Is(err, ErrNoCompatibleIndex) {
		t.Fatalf("want ErrNoCompatibleIndex, got %v", err)
	}
	if _, _, err := strict.TopK(q, 5); !errors.Is(err, ErrNoCompatibleIndex) {
		t.Fatalf("want ErrNoCompatibleIndex, got %v", err)
	}
	// Empty Multi with fallback answers by scan.
	empty, _ := NewMulti(s)
	ids2, st3, err := empty.InequalityIDs(Query{A: []float64{1, 1}, B: 0, Op: LE})
	if err != nil || !st3.FellBack {
		t.Fatalf("empty multi: err=%v stats=%+v", err, st3)
	}
	if !equalIDs(sortedIDs(ids2), bruteForce(s, Query{A: []float64{1, 1}, B: 0, Op: LE})) {
		t.Fatal("empty multi scan wrong")
	}
}

func TestMultiTopKUsesIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := randomStore(t, rng, 500, 2, 1, 100)
	m, _ := NewMulti(s)
	m.AddNormal([]float64{1, 2}, vecmath.FirstOctant(2))
	q := Query{A: []float64{2, 4}, B: 150, Op: LE}
	res, st, err := m.TopK(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack || st.IndexUsed != 0 {
		t.Fatalf("stats=%+v", st)
	}
	if !sameTopK(res, bruteTopK(s, q, 10), 1e-9) {
		t.Fatal("multi top-k wrong")
	}
}

func TestMultiDynamicUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randomStore(t, rng, 200, 2, 1, 100)
	m, _ := NewMulti(s)
	m.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2))
	m.AddNormal([]float64{3, 1}, vecmath.FirstOctant(2))

	// Append.
	id, err := m.Append([]float64{42, 17})
	if err != nil {
		t.Fatal(err)
	}
	// Update half the points (the paper's Figure 13c workload).
	for i := 0; i < 100; i++ {
		v := []float64{1 + rng.Float64()*99, 1 + rng.Float64()*99}
		if err := m.Update(uint32(i), v); err != nil {
			t.Fatal(err)
		}
	}
	// Remove some.
	for i := 100; i < 120; i++ {
		if err := m.Remove(uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Update(uint32(110), []float64{1, 1}); err == nil {
		t.Error("Update of removed point succeeded")
	}
	if err := m.Remove(uint32(110)); err == nil {
		t.Error("double Remove succeeded")
	}
	_ = id

	for trial := 0; trial < 30; trial++ {
		q := Query{
			A:  []float64{rng.Float64() * 5, rng.Float64() * 5},
			B:  rng.Float64() * 400,
			Op: LE,
		}
		ids, _, err := m.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(ids), bruteForce(s, q)) {
			t.Fatalf("trial %d: stale index after updates", trial)
		}
	}
	// Index sizes must track the store.
	for i := 0; i < m.NumIndexes(); i++ {
		if m.Index(i).Len() != s.Len() {
			t.Fatalf("index %d has %d entries, store has %d", i, m.Index(i).Len(), s.Len())
		}
	}
}

func TestMultiConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := randomStore(t, rng, 500, 2, 1, 100)
	m, _ := NewMulti(s)
	m.SampleBudget(5, []Domain{{1, 10}, {1, 10}}, rng)
	q := Query{A: []float64{2, 3}, B: 200, Op: LE}
	want := bruteForce(s, q)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ids, _, err := m.InequalityIDs(q)
				if err != nil {
					errs <- err
					return
				}
				if !equalIDs(sortedIDs(ids), want) {
					errs <- errors.New("concurrent read mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCostBasedExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := randomStore(t, rng, 3000, 6, 1, 100)
	m, _ := NewMulti(s, WithCostBased(2.5))
	// One poorly-aligned index: most queries will have a fat II.
	m.AddNormal([]float64{1, 1, 1, 1, 1, 1}, vecmath.FirstOctant(6))

	// Unselective query with large II: the model should pick the scan.
	wide := Query{A: []float64{5, 1, 1, 1, 1, 5}, B: 1e6, Op: LE}
	ids, st, err := m.InequalityIDs(wide)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack {
		t.Fatalf("cost model kept the index for an all-matching query: %+v", st)
	}
	if !equalIDs(sortedIDs(ids), bruteForce(s, wide)) {
		t.Fatal("cost-based scan answered incorrectly")
	}
	// Highly selective, well-aligned query: the index must be used.
	narrow := Query{A: []float64{1, 1, 1, 1, 1, 1}, B: 60, Op: LE}
	ids, st, err = m.InequalityIDs(narrow)
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatalf("cost model rejected the index for a selective parallel query: %+v", st)
	}
	if !equalIDs(sortedIDs(ids), bruteForce(s, narrow)) {
		t.Fatal("indexed answer incorrect")
	}
	// Without the model, the index is used even for the wide query.
	plain, _ := NewMulti(s)
	plain.AddNormal([]float64{1, 1, 1, 1, 1, 1}, vecmath.FirstOctant(6))
	_, st, err = plain.InequalityIDs(wide)
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatal("plain multi should not fall back")
	}
}

func TestSelectionString(t *testing.T) {
	if SelectVolume.String() != "volume" || SelectAngle.String() != "angle" {
		t.Error("Selection.String wrong")
	}
	// Unknown values render Go-style with the numeric value preserved,
	// so a log reader can round-trip them back to the constant.
	if got := Selection(9).String(); got != "Selection(9)" {
		t.Errorf("unknown selection rendered %q, want Selection(9)", got)
	}
	if got := Selection(-3).String(); got != "Selection(-3)" {
		t.Errorf("negative selection rendered %q, want Selection(-3)", got)
	}
	var _ fmt.Stringer = SelectVolume
}

func TestParallelVerificationMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := randomStore(t, rng, 2000, 4, 1, 100)
	ix, _ := NewIndex(s, []float64{1, 1, 1, 1}, vecmath.FirstOctant(4))
	for trial := 0; trial < 20; trial++ {
		q := Query{
			A:  []float64{1 + rng.Float64()*8, 1 + rng.Float64()*8, 1 + rng.Float64()*8, 1 + rng.Float64()*8},
			B:  rng.Float64() * 1200,
			Op: LE,
		}
		serial, st1, err := ix.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			par, st2, err := ix.InequalityParallelIDs(q, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !equalIDs(sortedIDs(par), sortedIDs(serial)) {
				t.Fatalf("workers=%d mismatch", workers)
			}
			if st1.Matched != st2.Matched || st1.Verified != st2.Verified {
				t.Fatalf("stats diverge: %+v vs %+v", st1, st2)
			}
		}
	}
	// Degenerate parallel paths.
	if _, _, err := ix.InequalityParallelIDs(Query{A: []float64{1}, B: 0, Op: LE}, 4); err == nil {
		t.Error("bad query accepted")
	}
	ids, _, err := ix.InequalityParallelIDs(Query{A: []float64{0, 0, 0, 0}, B: 1, Op: LE}, 4)
	if err != nil || len(ids) != 2000 {
		t.Errorf("all-match parallel: %d ids err=%v", len(ids), err)
	}
	ids, _, err = ix.InequalityParallelIDs(Query{A: []float64{1, 1, 1, 1}, B: -1, Op: LE}, 4)
	if err != nil || len(ids) != 0 {
		t.Errorf("none-match parallel: %d ids err=%v", len(ids), err)
	}
}
