package core

import (
	"math/rand"
	"testing"

	"planar/internal/vecmath"
)

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := randomStore(t, rng, 700, 4, -20, 80)
	signs := vecmath.SignPattern{1, -1, 1, 1}
	ix, err := NewIndex(s, []float64{1, 2, 0.5, 3}, signs)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		a := make([]float64, 4)
		for i := range a {
			a[i] = float64(signs[i]) * rng.Float64() * 5
		}
		if trial%7 == 0 {
			a[trial%4] = 0
		}
		b := (rng.Float64() - 0.2) * 400
		q := Query{A: a, B: b, Op: LE}
		count, st, err := ix.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		want := len(bruteForce(s, q))
		if count != want {
			t.Fatalf("trial %d: Count=%d want %d", trial, count, want)
		}
		if st.Accepted+st.Verified+st.Rejected != st.N {
			t.Fatalf("stats inconsistent: %+v", st)
		}
		// Bounds must bracket the truth.
		lo, hi, err := ix.SelectivityBounds(q)
		if err != nil {
			t.Fatal(err)
		}
		if lo > want || hi < want {
			t.Fatalf("trial %d: bounds [%d,%d] miss true count %d", trial, lo, hi, want)
		}
	}
}

func TestCountDegenerateCases(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := randomStore(t, rng, 100, 2, 1, 10)
	ix, _ := NewIndex(s, []float64{1, 1}, vecmath.FirstOctant(2))
	// All match.
	if c, _, err := ix.Count(Query{A: []float64{0, 0}, B: 1, Op: LE}); err != nil || c != 100 {
		t.Fatalf("all-match Count=%d err=%v", c, err)
	}
	if lo, hi, _ := ix.SelectivityBounds(Query{A: []float64{0, 0}, B: 1, Op: LE}); lo != 100 || hi != 100 {
		t.Fatalf("all-match bounds [%d,%d]", lo, hi)
	}
	// None match.
	if c, _, err := ix.Count(Query{A: []float64{1, 1}, B: -5, Op: LE}); err != nil || c != 0 {
		t.Fatalf("none-match Count=%d err=%v", c, err)
	}
	if lo, hi, _ := ix.SelectivityBounds(Query{A: []float64{1, 1}, B: -5, Op: LE}); lo != 0 || hi != 0 {
		t.Fatalf("none-match bounds [%d,%d]", lo, hi)
	}
	// Validation.
	if _, _, err := ix.Count(Query{A: []float64{1}, B: 0, Op: LE}); err == nil {
		t.Error("wrong-dim Count accepted")
	}
	if _, _, err := ix.SelectivityBounds(Query{A: []float64{1}, B: 0, Op: LE}); err == nil {
		t.Error("wrong-dim bounds accepted")
	}
	// Wrong octant.
	if _, _, err := ix.Count(Query{A: []float64{-1, 1}, B: 5, Op: LE}); err != ErrIncompatibleOctant {
		t.Errorf("expected octant error, got %v", err)
	}
}

func TestParallelIndexGivesExactBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := randomStore(t, rng, 1000, 3, 1, 100)
	ix, _ := NewIndex(s, []float64{2, 3, 4}, vecmath.FirstOctant(3))
	q := Query{A: []float64{2, 3, 4}, B: 600, Op: LE}
	lo, hi, err := ix.SelectivityBounds(q)
	if err != nil {
		t.Fatal(err)
	}
	if hi-lo > 2 { // guard band can leave a couple of boundary points
		t.Fatalf("parallel index bounds [%d,%d] not tight", lo, hi)
	}
	want := len(bruteForce(s, q))
	if lo > want || hi < want {
		t.Fatalf("bounds [%d,%d] miss %d", lo, hi, want)
	}
}

func TestMultiCountAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := randomStore(t, rng, 800, 3, 1, 100)
	m, _ := NewMulti(s)
	m.AddNormal([]float64{1, 1, 1}, vecmath.FirstOctant(3))
	m.AddNormal([]float64{4, 1, 2}, vecmath.FirstOctant(3))
	for trial := 0; trial < 30; trial++ {
		q := Query{
			A:  []float64{1 + rng.Float64()*4, 1 + rng.Float64()*4, 1 + rng.Float64()*4},
			B:  rng.Float64() * 600,
			Op: LE,
		}
		want := len(bruteForce(s, q))
		count, st, err := m.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if count != want || st.FellBack {
			t.Fatalf("trial %d: Count=%d want %d (stats %+v)", trial, count, want, st)
		}
		lo, hi, err := m.SelectivityBounds(q)
		if err != nil {
			t.Fatal(err)
		}
		if lo > want || hi < want {
			t.Fatalf("trial %d: multi bounds [%d,%d] miss %d", trial, lo, hi, want)
		}
		// The intersection must be at least as tight as each index.
		l0, h0, _ := m.Index(0).SelectivityBounds(q)
		l1, h1, _ := m.Index(1).SelectivityBounds(q)
		if lo < max(l0, l1) || hi > min(h0, h1) {
			t.Fatalf("bounds not intersected: [%d,%d] vs [%d,%d] and [%d,%d]", lo, hi, l0, h0, l1, h1)
		}
	}
	// Fallback count.
	q := Query{A: []float64{-1, 1, 1}, B: 100, Op: LE}
	count, st, err := m.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack || count != len(bruteForce(s, q)) {
		t.Fatalf("fallback count=%d stats=%+v", count, st)
	}
	// No compatible index: trivial bounds.
	lo, hi, err := m.SelectivityBounds(q)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != s.Len() {
		t.Fatalf("trivial bounds [%d,%d]", lo, hi)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
