package core

import (
	"errors"
	"fmt"

	"planar/internal/btree"
	"planar/internal/pager"
	"planar/internal/vecmath"
)

// This file is the index side of the disk-paged checkpoint protocol
// (package codec owns the file format). Two flows meet here:
//
//   - Checkpoint: CheckpointIndexes turns every index into an
//     IndexPersist — geometry plus a btree.PagedMeta whose pages are
//     durable once the caller commits the pager file.
//   - Restart: AttachPrebuilt installs indexes whose trees were opened
//     straight from those pages (btree.OpenPaged), skipping the
//     O(n log n) bulk rebuild that Snapshot.Restore pays.
//
// The translation offsets (delta) are part of the persisted geometry:
// tree keys are ⟨cs, φ⟩ + ⟨c, delta⟩, and a live index's delta can be
// wider than what rebuild() would recompute from the current points
// (deletes never shrink it). Restoring with a recomputed delta would
// silently shift every key, so the exact vector travels with the tree.

// PrebuiltIndex is the restart-path constructor input for one index:
// its geometry plus an already-materialised tree (typically paged).
type PrebuiltIndex struct {
	Normal []float64
	Signs  vecmath.SignPattern
	Delta  []float64
	Tree   *btree.Tree
}

// IndexPersist is the durable state of one index at a checkpoint.
// Owned reports that the meta's pages were freshly written by this
// checkpoint pass (a RAM tree dumped via WritePaged) and are therefore
// owned — and later freed — by the checkpoint writer; paged trees
// manage their own pages copy-on-write and Owned is false.
// DeltaPages counts the pages this checkpoint actually touched for
// the index (the incremental cost: epoch delta for paged trees, the
// whole dump for RAM trees).
type IndexPersist struct {
	Normal     []float64
	Signs      vecmath.SignPattern
	Delta      []float64
	Meta       *btree.PagedMeta
	Owned      bool
	DeltaPages int
}

// newPrebuiltIndex validates a PrebuiltIndex against store and wires
// it up without rebuilding its tree.
func newPrebuiltIndex(store *PointStore, p PrebuiltIndex, guard float64) (*Index, error) {
	if store == nil {
		return nil, errors.New("core: nil point store")
	}
	if p.Tree == nil {
		return nil, errors.New("core: prebuilt index has nil tree")
	}
	d := store.Dim()
	if err := vecmath.CheckDim("index normal", p.Normal, d); err != nil {
		return nil, err
	}
	if !vecmath.AllFinite(p.Normal) {
		return nil, errors.New("core: index normal must be finite")
	}
	for i, v := range p.Normal {
		if v <= 0 {
			return nil, fmt.Errorf("core: index normal component %d is %v, must be > 0", i, v)
		}
	}
	if len(p.Signs) != d {
		return nil, fmt.Errorf("core: sign pattern has dimension %d, want %d", len(p.Signs), d)
	}
	for i, s := range p.Signs {
		if s != 1 && s != -1 {
			return nil, fmt.Errorf("core: sign pattern component %d is %d, must be ±1", i, s)
		}
	}
	if err := vecmath.CheckDim("index delta", p.Delta, d); err != nil {
		return nil, err
	}
	if !vecmath.AllFinite(p.Delta) {
		return nil, errors.New("core: index delta must be finite")
	}
	for i, v := range p.Delta {
		if v < 0 {
			return nil, fmt.Errorf("core: index delta component %d is %v, must be >= 0", i, v)
		}
	}
	ix := &Index{
		store: store,
		c:     vecmath.Clone(p.Normal),
		signs: append(vecmath.SignPattern(nil), p.Signs...),
		delta: vecmath.Clone(p.Delta),
		tree:  p.Tree,
		guard: guard,
	}
	ix.cs = make([]float64, d)
	for i := 0; i < d; i++ {
		ix.cs[i] = ix.c[i] * float64(ix.signs[i])
	}
	ix.base = vecmath.Dot(ix.c, ix.delta)
	ix.vecFn = store.Vector
	ix.eachFn = store.Each
	return ix, nil
}

// AttachPrebuilt installs restored indexes without rebuilding their
// trees — the restart path mirroring Snapshot.Restore's AddNormals.
// No redundancy filtering is applied: a checkpoint records exactly the
// index set that was live, so it is reattached verbatim.
func (m *Multi) AttachPrebuilt(ps []PrebuiltIndex) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	built := make([]*Index, len(ps))
	for i, p := range ps {
		ix, err := newPrebuiltIndex(m.store, p, m.guard)
		if err != nil {
			return fmt.Errorf("core: prebuilt index %d: %w", i, err)
		}
		built[i] = ix
	}
	m.indexes = append(m.indexes, built...)
	m.epoch++
	return nil
}

// Tree exposes the index's underlying key tree for inspection (e.g.
// checking paged mode after a restart). Callers must not mutate it.
func (ix *Index) Tree() *btree.Tree {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree
}

// persist checkpoints one index's tree into file: paged trees flush
// their dirty pages in place (copy-on-write already relocated them),
// RAM trees are dumped as a fresh page set the caller owns.
func (ix *Index) persist(file *pager.File) (IndexPersist, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	p := IndexPersist{
		Normal: vecmath.Clone(ix.c),
		Signs:  append(vecmath.SignPattern(nil), ix.signs...),
		Delta:  vecmath.Clone(ix.delta),
	}
	var err error
	if ix.tree.Paged() {
		p.Meta, p.DeltaPages, err = ix.tree.FlushPaged()
	} else {
		p.Meta, err = ix.tree.WritePaged(file)
		p.Owned = true
		if p.Meta != nil {
			p.DeltaPages = len(p.Meta.Pages(nil))
		}
	}
	if err != nil {
		return IndexPersist{}, err
	}
	return p, nil
}

// writeback shadow-flushes up to max of one index's dirty tree pages;
// see Tree.WritebackPaged. RAM trees have nothing to write back.
func (ix *Index) writeback(max int) (int, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if !ix.tree.Paged() {
		return 0, nil
	}
	return ix.tree.WritebackPaged(max)
}

// WritebackIndexes is the background writer's flush callback target:
// it walks the indexes shadow-writing dirty tree pages until max
// pages are written or every index is clean. Safe concurrently with
// queries and mutations — each tree serializes internally and the
// pages being written are invisible to the durable superblock until
// the next commit.
func (m *Multi) WritebackIndexes(max int) (int, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	total := 0
	for _, ix := range m.indexes {
		if total >= max {
			break
		}
		n, err := ix.writeback(max - total)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// CheckpointIndexes flushes or dumps every index's tree into file and
// returns the persistent spec list in index order. Pages written here
// are durable only after the caller's pager.Commit; on error the
// durable state is untouched (pages allocated by a failed pass leak
// in memory until the next reopen, never on disk). The caller must
// exclude concurrent mutations of the Multi for the duration.
func (m *Multi) CheckpointIndexes(file *pager.File) ([]IndexPersist, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]IndexPersist, len(m.indexes))
	for i, ix := range m.indexes {
		p, err := ix.persist(file)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint index %d: %w", i, err)
		}
		out[i] = p
	}
	return out, nil
}
