package mbrtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"planar/internal/moving"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty object set accepted")
	}
	bad := []moving.Linear2D{{P: moving.Vec2{X: math.NaN()}}}
	if _, err := Build(bad); err == nil {
		t.Error("NaN state accepted")
	}
}

func TestRectMinDist(t *testing.T) {
	r := rect{0, 0, 10, 10}
	if d := r.minDistSq(5, 5); d != 0 {
		t.Fatalf("inside dist=%v", d)
	}
	if d := r.minDistSq(13, 14); d != 9+16 {
		t.Fatalf("corner dist=%v", d)
	}
	if d := r.minDistSq(-2, 5); d != 4 {
		t.Fatalf("edge dist=%v", d)
	}
}

func TestTPBoxExpansion(t *testing.T) {
	b := tpBox{pos: rect{0, 0, 1, 1}, vel: rect{-1, 0, 2, 1}}
	at2 := b.at(2)
	if at2.minX != -2 || at2.maxX != 5 || at2.minY != 0 || at2.maxY != 3 {
		t.Fatalf("at(2)=%+v", at2)
	}
}

func TestWithinAtExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	objs := moving.GenLinear2D(500, 1000, 0.1, 1, rng)
	tr, err := Build(objs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for trial := 0; trial < 30; trial++ {
		q := moving.Vec2{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		tm := 10 + rng.Float64()*5
		s := 10 + rng.Float64()*40
		var got []int
		tr.WithinAt(q, tm, s, func(i int) bool { got = append(got, i); return true })
		var want []int
		for i, o := range objs {
			if o.At(tm).Sub(q).Norm2() <= s*s {
				want = append(want, i)
			}
		}
		sort.Ints(got)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d mismatch", trial)
			}
		}
	}
}

func TestWithinAtEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	objs := moving.GenLinear2D(200, 100, 0.1, 0.2, rng)
	tr, _ := Build(objs)
	count := 0
	tr.WithinAt(moving.Vec2{X: 50, Y: 50}, 0, 100, func(int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestJoinMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	setA := moving.GenLinear2D(80, 500, 0.1, 1, rng)
	setB := moving.GenLinear2D(90, 500, 0.1, 1, rng)
	tr, err := Build(setB)
	if err != nil {
		t.Fatal(err)
	}
	space := &moving.LinearSpace{A: setA, B: setB}
	for _, tm := range []float64{10, 12.5, 15} {
		got := tr.Join(setA, tm, 20)
		want := moving.Baseline(space, tm, 20)
		sortPairs := func(ps []moving.IntersectionPair) {
			sort.Slice(ps, func(i, j int) bool {
				if ps[i].I != ps[j].I {
					return ps[i].I < ps[j].I
				}
				return ps[i].J < ps[j].J
			})
		}
		sortPairs(got)
		sortPairs(want)
		if len(got) != len(want) {
			t.Fatalf("t=%v: join %d baseline %d", tm, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("t=%v: pair mismatch at %d", tm, i)
			}
		}
	}
}

func TestSingleObjectTree(t *testing.T) {
	tr, err := Build([]moving.Linear2D{{P: moving.Vec2{X: 5, Y: 5}, V: moving.Vec2{X: 1, Y: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	tr.WithinAt(moving.Vec2{X: 15, Y: 5}, 10, 1, func(int) bool { found++; return true })
	if found != 1 {
		t.Fatalf("found=%d", found)
	}
	found = 0
	tr.WithinAt(moving.Vec2{X: 0, Y: 0}, 10, 1, func(int) bool { found++; return true })
	if found != 0 {
		t.Fatalf("found=%d for a miss", found)
	}
}
