// Package mbrtree implements a time-parameterised R-tree over
// linearly moving 2-D objects — the state-of-the-art comparator used
// in the paper's Figure 14(a) (Zhang et al.'s highly optimised
// MBR-tree for continuous intersection joins; the original C++
// implementation is not public, so this package provides an
// equivalent TPR-style index: STR bulk loading, per-node bounding
// boxes that expand with the node's velocity bounds, and exact leaf
// verification).
//
// Like all such spatio-temporal indexes it is specialised to
// straight-line, constant-velocity motion: that restriction is
// exactly the gap the planar index fills for circular and
// accelerating workloads.
package mbrtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"planar/internal/moving"
)

const (
	maxNodeEntries = 16
)

// rect is a 2-D box.
type rect struct {
	minX, minY, maxX, maxY float64
}

func (r rect) expandRect(o rect) rect {
	return rect{
		math.Min(r.minX, o.minX), math.Min(r.minY, o.minY),
		math.Max(r.maxX, o.maxX), math.Max(r.maxY, o.maxY),
	}
}

// tpBox is a time-parameterised box: position bounds at reference
// time 0 plus velocity bounds. Its extent at time t is the position
// box expanded by the velocity box scaled by t (the TPR-tree
// construction).
type tpBox struct {
	pos, vel rect
}

func (b tpBox) at(t float64) rect {
	return rect{
		b.pos.minX + b.vel.minX*t, b.pos.minY + b.vel.minY*t,
		b.pos.maxX + b.vel.maxX*t, b.pos.maxY + b.vel.maxY*t,
	}
}

func (b tpBox) expand(o tpBox) tpBox {
	return tpBox{pos: b.pos.expandRect(o.pos), vel: b.vel.expandRect(o.vel)}
}

// minDistSq returns the squared distance from point (x, y) to the
// rectangle (0 if inside).
func (r rect) minDistSq(x, y float64) float64 {
	dx := 0.0
	if x < r.minX {
		dx = r.minX - x
	} else if x > r.maxX {
		dx = x - r.maxX
	}
	dy := 0.0
	if y < r.minY {
		dy = r.minY - y
	} else if y > r.maxY {
		dy = y - r.maxY
	}
	return dx*dx + dy*dy
}

type node struct {
	box  tpBox
	kids []*node
	objs []int // leaf: indexes into the object slice
}

// Tree is a TPR-style R-tree over linearly moving objects.
type Tree struct {
	objs []moving.Linear2D
	root *node
}

// Build bulk-loads a tree over the objects using Sort-Tile-Recursive
// packing on the initial positions.
func Build(objs []moving.Linear2D) (*Tree, error) {
	if len(objs) == 0 {
		return nil, errors.New("mbrtree: no objects")
	}
	for i, o := range objs {
		for _, v := range []float64{o.P.X, o.P.Y, o.V.X, o.V.Y} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("mbrtree: object %d has non-finite state", i)
			}
		}
	}
	t := &Tree{objs: objs}

	idx := make([]int, len(objs))
	for i := range idx {
		idx[i] = i
	}
	// STR: sort by x, slice into vertical strips, sort each strip by
	// y, pack runs of maxNodeEntries.
	sort.Slice(idx, func(a, b int) bool { return objs[idx[a]].P.X < objs[idx[b]].P.X })
	nLeaves := (len(idx) + maxNodeEntries - 1) / maxNodeEntries
	strips := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perStrip := (len(idx) + strips - 1) / strips

	var leaves []*node
	for s := 0; s < len(idx); s += perStrip {
		e := s + perStrip
		if e > len(idx) {
			e = len(idx)
		}
		strip := idx[s:e]
		sort.Slice(strip, func(a, b int) bool { return objs[strip[a]].P.Y < objs[strip[b]].P.Y })
		for o := 0; o < len(strip); o += maxNodeEntries {
			oe := o + maxNodeEntries
			if oe > len(strip) {
				oe = len(strip)
			}
			lf := &node{objs: append([]int(nil), strip[o:oe]...)}
			lf.box = t.leafBox(lf.objs)
			leaves = append(leaves, lf)
		}
	}

	level := leaves
	for len(level) > 1 {
		var parents []*node
		for s := 0; s < len(level); s += maxNodeEntries {
			e := s + maxNodeEntries
			if e > len(level) {
				e = len(level)
			}
			in := &node{kids: append([]*node(nil), level[s:e]...)}
			in.box = in.kids[0].box
			for _, k := range in.kids[1:] {
				in.box = in.box.expand(k.box)
			}
			parents = append(parents, in)
		}
		level = parents
	}
	t.root = level[0]
	return t, nil
}

func (t *Tree) leafBox(objIdx []int) tpBox {
	o := t.objs[objIdx[0]]
	b := tpBox{
		pos: rect{o.P.X, o.P.Y, o.P.X, o.P.Y},
		vel: rect{o.V.X, o.V.Y, o.V.X, o.V.Y},
	}
	for _, i := range objIdx[1:] {
		o := t.objs[i]
		b = b.expand(tpBox{
			pos: rect{o.P.X, o.P.Y, o.P.X, o.P.Y},
			vel: rect{o.V.X, o.V.Y, o.V.X, o.V.Y},
		})
	}
	return b
}

// Len returns the number of indexed objects.
func (t *Tree) Len() int { return len(t.objs) }

// WithinAt calls visit with the index of every object whose position
// at time tm lies within distance s of point q. Candidates are
// pruned via time-parameterised node boxes and verified exactly at
// the leaves.
func (t *Tree) WithinAt(q moving.Vec2, tm, s float64, visit func(obj int) bool) {
	s2 := s * s
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.box.at(tm).minDistSq(q.X, q.Y) > s2 {
			return true
		}
		if n.kids == nil {
			for _, oi := range n.objs {
				p := t.objs[oi].At(tm)
				if p.Sub(q).Norm2() <= s2 {
					if !visit(oi) {
						return false
					}
				}
			}
			return true
		}
		for _, k := range n.kids {
			if !walk(k) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// Join returns all pairs (i from setA, j from the tree's objects)
// within distance s at time tm. setA objects are probed one by one —
// the standard index-nested-loop spatial join.
func (t *Tree) Join(setA []moving.Linear2D, tm, s float64) []moving.IntersectionPair {
	var out []moving.IntersectionPair
	for i, a := range setA {
		q := a.At(tm)
		t.WithinAt(q, tm, s, func(j int) bool {
			out = append(out, moving.IntersectionPair{I: i, J: j})
			return true
		})
	}
	return out
}
