package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestIndependentShape(t *testing.T) {
	d := Independent(1000, 6, 1)
	if d.Len() != 1000 || d.Dim() != 6 {
		t.Fatalf("Len=%d Dim=%d", d.Len(), d.Dim())
	}
	for _, r := range d.Rows {
		for _, v := range r {
			if v < 1 || v > 100 {
				t.Fatalf("value %v out of range", v)
			}
		}
	}
	// Uniformity sanity: mean near 50.5.
	var sum float64
	for _, r := range d.Rows {
		sum += r[0]
	}
	mean := sum / 1000
	if mean < 45 || mean > 56 {
		t.Fatalf("mean %v implausible for uniform(1,100)", mean)
	}
}

func TestDeterminism(t *testing.T) {
	a := Independent(50, 3, 7)
	b := Independent(50, 3, 7)
	c := Independent(50, 3, 8)
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	same := true
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != c.Rows[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

// pearson computes the sample correlation of two columns.
func pearson(d *Data, i, j int) float64 {
	n := float64(d.Len())
	var si, sj, sii, sjj, sij float64
	for _, r := range d.Rows {
		si += r[i]
		sj += r[j]
		sii += r[i] * r[i]
		sjj += r[j] * r[j]
		sij += r[i] * r[j]
	}
	cov := sij/n - si/n*sj/n
	vi := sii/n - si/n*si/n
	vj := sjj/n - sj/n*sj/n
	return cov / math.Sqrt(vi*vj)
}

func TestCorrelationStructure(t *testing.T) {
	corr := Correlated(5000, 4, 2)
	anti := AntiCorrelated(5000, 4, 3)
	indp := Independent(5000, 4, 4)
	if c := pearson(corr, 0, 1); c < 0.7 {
		t.Fatalf("correlated data has pairwise correlation %v, want > 0.7", c)
	}
	if c := pearson(anti, 0, 1); c > -0.1 {
		t.Fatalf("anti-correlated data has pairwise correlation %v, want < -0.1", c)
	}
	if c := pearson(indp, 0, 1); math.Abs(c) > 0.08 {
		t.Fatalf("independent data has pairwise correlation %v, want ~0", c)
	}
	for _, d := range []*Data{corr, anti} {
		for _, r := range d.Rows {
			for _, v := range r {
				if v < 1 || v > 100 {
					t.Fatalf("%s value %v out of range", d.Name, v)
				}
			}
		}
	}
}

func TestConsumptionRangesAndPhysics(t *testing.T) {
	d := Consumption(5000, 5)
	if d.Dim() != 4 {
		t.Fatalf("Dim=%d", d.Dim())
	}
	inRange := func(v, lo, hi float64) bool { return v >= lo && v <= hi }
	lowPF := 0
	for _, r := range d.Rows {
		active, reactive, voltage, current := r[0], r[1], r[2], r[3]
		if !inRange(active, 0, 11) || !inRange(reactive, 0, 1) ||
			!inRange(voltage, 223, 254) || !inRange(current, 0, 48) {
			t.Fatalf("row out of published ranges: %v", r)
		}
		// Power factor = active / (V·I/1000) should mostly lie in
		// (0, 1] — that is the quantity Example 1 queries.
		pf := active / (voltage * current / 1000)
		if pf > 1.2 {
			t.Fatalf("power factor %v > 1.2 breaks the workload's physics", pf)
		}
		if pf < 0.5 {
			lowPF++
		}
	}
	// The Critical_Consume query needs a non-trivial fraction of
	// households below moderate thresholds.
	if lowPF == 0 || lowPF == d.Len() {
		t.Fatalf("degenerate power-factor distribution: %d/%d below 0.5", lowPF, d.Len())
	}
}

func TestImageFeatureRanges(t *testing.T) {
	cm := CMoment(2000, 6)
	if cm.Dim() != 9 {
		t.Fatalf("CMoment Dim=%d", cm.Dim())
	}
	for _, r := range cm.Rows {
		for _, v := range r {
			if v < -4.15 || v > 4.59 {
				t.Fatalf("CMoment value %v out of range", v)
			}
		}
	}
	ct := CTexture(2000, 7)
	if ct.Dim() != 16 {
		t.Fatalf("CTexture Dim=%d", ct.Dim())
	}
	for _, r := range ct.Rows {
		for _, v := range r {
			if v < -5.25 || v > 50.21 {
				t.Fatalf("CTexture value %v out of range", v)
			}
		}
	}
}

func TestStoreAndAxisHelpers(t *testing.T) {
	d := &Data{Name: "x", Rows: [][]float64{{1, 9}, {5, 2}, {3, 4}}}
	s, err := d.Store()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 2 {
		t.Fatalf("store Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if d.AxisMax(0) != 5 || d.AxisMax(1) != 9 {
		t.Fatal("AxisMax wrong")
	}
	if d.AxisMin(1) != 2 {
		t.Fatal("AxisMin wrong")
	}
	maxes := d.AxisMaxes()
	if maxes[0] != 5 || maxes[1] != 9 {
		t.Fatal("AxisMaxes wrong")
	}
	empty := &Data{Name: "e"}
	if empty.Dim() != 0 {
		t.Fatal("empty Dim")
	}
	if _, err := empty.Store(); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestSyntheticDispatchAndKindString(t *testing.T) {
	for _, k := range Kinds {
		d := Synthetic(k, 10, 2, 1)
		if d.Name != k.String() {
			t.Fatalf("Synthetic(%v).Name=%s", k, d.Name)
		}
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind string empty")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := Independent(20, 3, 9)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()), "round", true)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != d.Len() || back.Dim() != d.Dim() {
		t.Fatalf("round trip shape: %d×%d", back.Len(), back.Dim())
	}
	for i := range d.Rows {
		for j := range d.Rows[i] {
			if back.Rows[i][j] != d.Rows[i][j] {
				t.Fatalf("round trip value mismatch at %d,%d", i, j)
			}
		}
	}
	// Header mismatch.
	if err := d.WriteCSV(&buf, []string{"a"}); err == nil {
		t.Fatal("wrong header width accepted")
	}
	// Parse errors.
	if _, err := ReadCSV(strings.NewReader("1,2\n3,oops\n"), "bad", false); err == nil {
		t.Fatal("non-numeric field accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), "ragged", false); err == nil {
		t.Fatal("ragged csv accepted")
	}
}
