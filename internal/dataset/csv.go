package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the dataset with an optional header row of column
// names (pass nil for no header).
func (d *Data) WriteCSV(w io.Writer, columns []string) error {
	cw := csv.NewWriter(w)
	if columns != nil {
		if len(columns) != d.Dim() {
			return fmt.Errorf("dataset: %d column names for dimension %d", len(columns), d.Dim())
		}
		if err := cw.Write(columns); err != nil {
			return err
		}
	}
	rec := make([]string, d.Dim())
	for _, row := range d.Rows {
		for j, v := range row {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the dataset to a file.
func (d *Data) SaveCSV(path string, columns []string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return d.WriteCSV(f, columns)
}

// ReadCSV parses a dataset from CSV. When header is true the first
// record is skipped. Every field must parse as a float64 and every
// row must have the same width.
func ReadCSV(r io.Reader, name string, header bool) (*Data, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	d := &Data{Name: name}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv line %d: %w", line+1, err)
		}
		line++
		if header && line == 1 {
			continue
		}
		row := make([]float64, len(rec))
		for j, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv line %d field %d: %w", line, j+1, err)
			}
			row[j] = v
		}
		if len(d.Rows) > 0 && len(row) != d.Dim() {
			return nil, fmt.Errorf("dataset: csv line %d has %d fields, want %d", line, len(row), d.Dim())
		}
		d.Rows = append(d.Rows, row)
	}
	return d, nil
}

// LoadCSV reads a dataset from a file.
func LoadCSV(path, name string, header bool) (*Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, name, header)
}
