// Package dataset provides the workloads of the paper's evaluation
// (Section 7.1): the three synthetic distributions of the Börzsönyi
// skyline generator (independent, correlated, anti-correlated) and
// synthetic stand-ins for the three real-world datasets (Consumption,
// CMoment, CTexture), generated to match the published
// dimensionalities, value ranges and broad attribute relationships.
// See DESIGN.md ("Substitutions") for why stand-ins are used: the
// original UCI / Corel files are not available offline, and the
// experiments' shape depends only on range and correlation structure.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"planar/internal/core"
)

// Data is an in-memory dataset: named rows of equal dimensionality.
type Data struct {
	Name string
	Rows [][]float64
}

// Dim returns the dimensionality (0 for an empty dataset).
func (d *Data) Dim() int {
	if len(d.Rows) == 0 {
		return 0
	}
	return len(d.Rows[0])
}

// Len returns the number of rows.
func (d *Data) Len() int { return len(d.Rows) }

// Store copies the rows into a fresh core.PointStore.
func (d *Data) Store() (*core.PointStore, error) {
	s, err := core.NewPointStore(d.Dim())
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", d.Name, err)
	}
	for i, r := range d.Rows {
		if _, err := s.Append(r); err != nil {
			return nil, fmt.Errorf("dataset %q row %d: %w", d.Name, i, err)
		}
	}
	return s, nil
}

// AxisMax returns max(i) over the rows — the quantity used on the
// right-hand side of the paper's generalised query (Equation 18).
func (d *Data) AxisMax(i int) float64 {
	m := math.Inf(-1)
	for _, r := range d.Rows {
		if r[i] > m {
			m = r[i]
		}
	}
	return m
}

// AxisMin returns min(i) over the rows.
func (d *Data) AxisMin(i int) float64 {
	m := math.Inf(1)
	for _, r := range d.Rows {
		if r[i] < m {
			m = r[i]
		}
	}
	return m
}

// AxisMaxes returns AxisMax for every axis.
func (d *Data) AxisMaxes() []float64 {
	out := make([]float64, d.Dim())
	for i := range out {
		out[i] = d.AxisMax(i)
	}
	return out
}

// Synthetic attribute range used throughout the paper: (1, 100).
const (
	synthLo = 1.0
	synthHi = 100.0
)

func clip(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Independent generates n points of dimension dim with every
// attribute drawn independently and uniformly from (1, 100).
func Independent(n, dim int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, dim)
		for j := range r {
			r[j] = synthLo + rng.Float64()*(synthHi-synthLo)
		}
		rows[i] = r
	}
	return &Data{Name: "indp", Rows: rows}
}

// Correlated generates points where a high value in one dimension
// implies high values in the others: each point is a common diagonal
// value plus small independent jitter (Börzsönyi et al., ICDE 2001).
func Correlated(n, dim int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	const jitter = 6.0
	rows := make([][]float64, n)
	for i := range rows {
		base := synthLo + rng.Float64()*(synthHi-synthLo)
		r := make([]float64, dim)
		for j := range r {
			r[j] = clip(base+rng.NormFloat64()*jitter, synthLo, synthHi)
		}
		rows[i] = r
	}
	return &Data{Name: "corr", Rows: rows}
}

// AntiCorrelated generates points near the anti-diagonal hyperplane
// Σx_i ≈ dim·midpoint: a high value in one dimension forces low
// values elsewhere. This distribution maximises the intermediate
// interval for most planar indexes (paper Section 7.2.2).
func AntiCorrelated(n, dim int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	mid := (synthLo + synthHi) / 2
	const planeJitter = 8.0
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, dim)
		// Sample a direction inside the plane by drawing uniform
		// coordinates and retargeting their sum.
		sum := 0.0
		for j := range r {
			r[j] = rng.Float64()
			sum += r[j]
		}
		target := float64(dim)*mid + rng.NormFloat64()*planeJitter
		scale := target / sum
		for j := range r {
			r[j] = clip(r[j]*scale, synthLo, synthHi)
		}
		rows[i] = r
	}
	return &Data{Name: "anti", Rows: rows}
}

// Consumption synthesises the UCI household electric power
// consumption dataset's shape: columns (active power [kW], reactive
// power [kW], voltage [V], current [A]) with active ≈ pf·V·I/1000 for
// a power factor pf in (0.2, 1). Published ranges: 0-11, 0-1,
// 223-254, 0-48.
func Consumption(n int, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		voltage := 223 + rng.Float64()*(254-223)
		// Household current is heavy-tailed: most readings small,
		// occasional large appliances.
		current := clip(rng.ExpFloat64()*5, 0.05, 48)
		pf := 0.2 + 0.8*math.Sqrt(rng.Float64())
		apparent := voltage * current / 1000 // kVA
		// Multiplicative measurement noise keeps active <= apparent,
		// so the power factor the workload queries stays in (0, 1].
		active := clip(pf*apparent*(1+0.02*rng.NormFloat64()), 0, math.Min(11, apparent))
		reactive := clip(math.Sqrt(1-pf*pf)*apparent*(1+0.02*rng.NormFloat64()), 0, 1)
		rows[i] = []float64{active, reactive, voltage, current}
	}
	return &Data{Name: "consumption", Rows: rows}
}

// ConsumptionColumns names the Consumption attributes in order.
var ConsumptionColumns = []string{"active_power", "reactive_power", "voltage", "current"}

// CMoment synthesises the 9-dimensional Corel colour-moment features:
// a Gaussian mixture clipped to the published range (-4.15, 4.59).
func CMoment(n int, seed int64) *Data {
	return gaussianMixture("cmoment", n, 9, 8, -4.15, 4.59, 0.9, seed)
}

// CTexture synthesises the 16-dimensional Corel co-occurrence texture
// features clipped to the published range (-5.25, 50.21). Real
// texture energies are heavily right-skewed — most values are small
// with a long tail toward the maximum — which is exactly the
// distribution shape the planar index exploits on this dataset
// (paper Figure 6(c)): clusters of per-dimension exponential scales
// produce that skew.
func CTexture(n int, seed int64) *Data {
	const (
		dim = 16
		k   = 10
		lo  = -5.25
		hi  = 50.21
	)
	rng := rand.New(rand.NewSource(seed))
	scales := make([][]float64, k)
	for c := range scales {
		s := make([]float64, dim)
		for j := range s {
			s[j] = 0.5 + rng.Float64()*4.5
		}
		scales[c] = s
	}
	rows := make([][]float64, n)
	for i := range rows {
		s := scales[rng.Intn(k)]
		r := make([]float64, dim)
		for j := range r {
			r[j] = clip(rng.NormFloat64()*0.4+rng.ExpFloat64()*s[j], lo, hi)
		}
		rows[i] = r
	}
	return &Data{Name: "ctexture", Rows: rows}
}

// gaussianMixture draws points from k Gaussian clusters with centres
// uniform in the lower half of [lo, hi] (image features cluster near
// small magnitudes) and standard deviation sigma, clipped to range.
func gaussianMixture(name string, n, dim, k int, lo, hi, sigma float64, seed int64) *Data {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	span := hi - lo
	for c := range centers {
		ctr := make([]float64, dim)
		for j := range ctr {
			// Bias centres toward the lower part of the range.
			u := rng.Float64()
			ctr[j] = lo + span*u*u
		}
		centers[c] = ctr
	}
	rows := make([][]float64, n)
	for i := range rows {
		ctr := centers[rng.Intn(k)]
		r := make([]float64, dim)
		for j := range r {
			r[j] = clip(ctr[j]+rng.NormFloat64()*sigma, lo, hi)
		}
		rows[i] = r
	}
	return &Data{Name: name, Rows: rows}
}

// Kind names one of the paper's synthetic distributions.
type Kind int

const (
	// KindIndependent is the uniform, independent distribution.
	KindIndependent Kind = iota
	// KindCorrelated is the correlated distribution.
	KindCorrelated
	// KindAntiCorrelated is the anti-correlated distribution.
	KindAntiCorrelated
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindIndependent:
		return "indp"
	case KindCorrelated:
		return "corr"
	case KindAntiCorrelated:
		return "anti"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Synthetic dispatches to the named synthetic generator.
func Synthetic(k Kind, n, dim int, seed int64) *Data {
	switch k {
	case KindCorrelated:
		return Correlated(n, dim, seed)
	case KindAntiCorrelated:
		return AntiCorrelated(n, dim, seed)
	default:
		return Independent(n, dim, seed)
	}
}

// Kinds lists the three synthetic distributions in the order the
// paper's figures present them.
var Kinds = []Kind{KindIndependent, KindCorrelated, KindAntiCorrelated}
