package scan

import (
	"math/rand"
	"testing"

	"planar/internal/core"
)

func testStore(t *testing.T, n, dim int, seed int64) *core.PointStore {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		if _, err := s.Append(v); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestInequalityAndCount(t *testing.T) {
	s := testStore(t, 500, 3, 1)
	q := core.Query{A: []float64{1, 2, 3}, B: 300, Op: core.LE}
	ids := IDs(s, q)
	if len(ids) != Count(s, q) {
		t.Fatalf("IDs=%d Count=%d", len(ids), Count(s, q))
	}
	for _, id := range ids {
		if !q.Satisfies(s.Vector(id)) {
			t.Fatalf("id %d does not satisfy", id)
		}
	}
	// Complement check.
	total := 0
	s.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			total++
		}
		return true
	})
	if total != len(ids) {
		t.Fatalf("missed matches: %d vs %d", total, len(ids))
	}
	// Early stop.
	visited := 0
	Inequality(s, q, func(uint32) bool { visited++; return visited < 3 })
	if visited != 3 {
		t.Fatalf("early stop visited %d", visited)
	}
}

func TestTopK(t *testing.T) {
	s := testStore(t, 400, 2, 2)
	q := core.Query{A: []float64{1, 1}, B: 120, Op: core.LE}
	res := TopK(s, q, 10)
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Distance < res[i-1].Distance {
			t.Fatal("results not sorted")
		}
	}
	for _, r := range res {
		if !q.Satisfies(s.Vector(r.ID)) {
			t.Fatalf("result %d does not satisfy query", r.ID)
		}
	}
	if got := TopK(s, q, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	// k greater than match count returns all matches.
	all := TopK(s, q, 1<<20)
	if len(all) != Count(s, q) {
		t.Fatalf("k>matches: got %d want %d", len(all), Count(s, q))
	}
}

func TestGEQuery(t *testing.T) {
	s := testStore(t, 300, 2, 3)
	le := core.Query{A: []float64{1, 1}, B: 100, Op: core.LE}
	ge := core.Query{A: []float64{1, 1}, B: 100, Op: core.GE}
	// Every point satisfies exactly one side unless it sits on the
	// boundary (measure zero for random data), where it satisfies
	// both.
	if Count(s, le)+Count(s, ge) < 300 {
		t.Fatal("LE and GE do not cover the store")
	}
}
