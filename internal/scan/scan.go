// Package scan implements the naive sequential-scan baseline the
// paper compares against (Section 7.1, "Competing Method"): every
// query computes the scalar product for every live point. It costs
// O(n·d') per inequality query and O(n·d' + k log k) per top-k query.
package scan

import (
	"sort"

	"planar/internal/core"
	"planar/internal/topk"
)

// Inequality scans the store and calls visit for every point
// satisfying q. It returns the number of matches (even if visit
// stopped the scan early, the count reflects points visited so far).
func Inequality(s *core.PointStore, q core.Query, visit func(id uint32) bool) int {
	matched := 0
	s.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			matched++
			return visit(id)
		}
		return true
	})
	return matched
}

// IDs collects all point ids satisfying q.
func IDs(s *core.PointStore, q core.Query) []uint32 {
	var ids []uint32
	Inequality(s, q, func(id uint32) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// Count returns how many points satisfy q without materialising ids.
func Count(s *core.PointStore, q core.Query) int {
	n := 0
	s.Each(func(_ uint32, v []float64) bool {
		if q.Satisfies(v) {
			n++
		}
		return true
	})
	return n
}

// TopK returns the k points satisfying q that lie closest to the
// query hyperplane, by brute force.
func TopK(s *core.PointStore, q core.Query, k int) []core.Result {
	if k <= 0 {
		return nil
	}
	buf := topk.New(k)
	s.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			buf.Push(topk.Item{ID: id, Score: q.Distance(v)})
		}
		return true
	})
	items := buf.Items()
	out := make([]core.Result, len(items))
	for i, it := range items {
		out[i] = core.Result{ID: it.ID, Distance: it.Score}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}
