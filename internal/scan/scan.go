// Package scan implements the naive sequential-scan baseline the
// paper compares against (Section 7.1, "Competing Method"): every
// query computes the scalar product for every live point. It costs
// O(n·d') per inequality query and O(n·d' + k log k) per top-k query.
// Execution runs on the internal/exec pipeline as a pure scan source
// (no candidate indexes), so the baseline and the indexed paths share
// one delivery and stats implementation.
package scan

import (
	"planar/internal/core"
	"planar/internal/exec"
)

// source wraps the bare point store as an index-free pipeline source;
// every query planned against it becomes a sequential scan.
func source(s *core.PointStore) *exec.Source {
	return &exec.Source{
		N:        s.Len(),
		Fallback: true,
		Vector:   s.Vector,
		Each:     s.Each,
	}
}

// Inequality scans the store and calls visit for every point
// satisfying q. It returns the number of matches (even if visit
// stopped the scan early, the count reflects points visited so far).
func Inequality(s *core.PointStore, q core.Query, visit func(id uint32) bool) int {
	st, _ := exec.Run(source(s), q.LE(), exec.FuncSink(visit), exec.Options{})
	return st.Matched
}

// IDs collects all point ids satisfying q.
func IDs(s *core.PointStore, q core.Query) []uint32 {
	var sink exec.IDSink
	_, _ = exec.Run(source(s), q.LE(), &sink, exec.Options{})
	return sink.IDs
}

// Count returns how many points satisfy q without materialising ids.
func Count(s *core.PointStore, q core.Query) int {
	var sink exec.CountSink
	_, _ = exec.Run(source(s), q.LE(), &sink, exec.Options{})
	return sink.N
}

// TopK returns the k points satisfying q that lie closest to the
// query hyperplane, by brute force.
func TopK(s *core.PointStore, q core.Query, k int) []core.Result {
	if k <= 0 {
		return nil
	}
	nq := q.LE()
	sink := exec.NewTopKSink(k, func(id uint32) float64 {
		return nq.Distance(s.Vector(id))
	})
	_, _ = exec.Run(source(s), nq, sink, exec.Options{})
	return sink.Results()
}
