package vecmath

import (
	"math"
	"testing"
)

func TestEqKey(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1.5, 1.5, true},
		{0, 1e-12, true},                 // absolute tolerance near zero
		{0, 2e-9, false},                 // outside the absolute band
		{1e12, 1e12 * (1 + 1e-12), true}, // relative tolerance at magnitude
		{1e12, 1e12 * (1 + 1e-8), false}, // relative difference too large
		{-3.25, -3.25 + 1e-13, true},     // accumulated-rounding case
		{1, 2, false},
		{-1, 1, false},
		{math.Inf(1), math.Inf(1), true}, // exact fast path
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e308, false},
		{math.NaN(), math.NaN(), false}, // NaN equals nothing, matching ==
		{math.NaN(), 0, false},
	}
	for _, c := range cases {
		if got := EqKey(c.a, c.b); got != c.want {
			t.Errorf("EqKey(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := EqKey(c.b, c.a); got != c.want {
			t.Errorf("EqKey(%g, %g) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}
