// Package vecmath provides the small dense linear-algebra helpers the
// planar index is built on: dot products, norms, hyperplanes and sign
// patterns (hyper-octants).
//
// All functions operate on []float64 treated as fixed-dimension
// vectors. Dimension mismatches are programming errors and panic, as
// with out-of-range slice indexing; query-level validation is done at
// the API boundary in package core.
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned by validating helpers when two vectors (or
// a vector and an expected dimensionality) disagree.
var ErrDimension = errors.New("vecmath: dimension mismatch")

// Dot returns the scalar product ⟨a, b⟩. It panics if the lengths
// differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm returns the Euclidean norm |a|.
func Norm(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm Σ|a_i|.
func Norm1(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// Scale returns a new vector k·a.
func Scale(a []float64, k float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = k * v
	}
	return out
}

// Add returns a new vector a+b. It panics on length mismatch.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Add length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v + b[i]
	}
	return out
}

// Sub returns a new vector a−b. It panics on length mismatch.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Sub length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Abs returns a new vector of |a_i|.
func Abs(a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = math.Abs(v)
	}
	return out
}

// CosAngle returns cos of the angle between a and b, clamped to
// [−1, 1]. If either vector is zero it returns 0.
func CosAngle(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	c := Dot(a, b) / (na * nb)
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return c
}

// Angle returns the angle in radians between a and b, in [0, π].
func Angle(a, b []float64) float64 {
	return math.Acos(CosAngle(a, b))
}

// AllFinite reports whether every component of a is finite (not NaN
// and not ±Inf).
func AllFinite(a []float64) bool {
	for _, v := range a {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// CheckDim returns ErrDimension (wrapped with context) unless
// len(a) == d.
func CheckDim(name string, a []float64, d int) error {
	if len(a) != d {
		return fmt.Errorf("%s has dimension %d, want %d: %w", name, len(a), d, ErrDimension)
	}
	return nil
}

// Hyperplane represents ⟨Normal, y⟩ = Offset in R^d.
type Hyperplane struct {
	Normal []float64
	Offset float64
}

// NewHyperplane validates and constructs a hyperplane. The normal
// must be non-empty, finite and non-zero.
func NewHyperplane(normal []float64, offset float64) (Hyperplane, error) {
	if len(normal) == 0 {
		return Hyperplane{}, errors.New("vecmath: hyperplane needs a non-empty normal")
	}
	if !AllFinite(normal) || math.IsNaN(offset) || math.IsInf(offset, 0) {
		return Hyperplane{}, errors.New("vecmath: hyperplane coefficients must be finite")
	}
	if Norm(normal) == 0 {
		return Hyperplane{}, errors.New("vecmath: hyperplane normal must be non-zero")
	}
	return Hyperplane{Normal: Clone(normal), Offset: offset}, nil
}

// Eval returns ⟨Normal, y⟩ − Offset: negative on the "less-than" side.
func (h Hyperplane) Eval(y []float64) float64 {
	return Dot(h.Normal, y) - h.Offset
}

// Distance returns the Euclidean distance from y to the hyperplane,
// |⟨Normal, y⟩ − Offset| / |Normal|.
func (h Hyperplane) Distance(y []float64) float64 {
	return math.Abs(h.Eval(y)) / Norm(h.Normal)
}

// Dim returns the dimensionality of the hyperplane's ambient space.
func (h Hyperplane) Dim() int { return len(h.Normal) }

// Intercept returns the i-th axis intercept Offset / Normal[i]. It
// returns +Inf when Normal[i] == 0 and Offset > 0, −Inf for negative
// offsets, and NaN when both are zero.
func (h Hyperplane) Intercept(i int) float64 {
	return h.Offset / h.Normal[i]
}

// SignPattern identifies a hyper-octant of R^d: entry i is +1 or −1.
type SignPattern []int8

// FirstOctant returns the all-positive sign pattern of dimension d.
func FirstOctant(d int) SignPattern {
	s := make(SignPattern, d)
	for i := range s {
		s[i] = 1
	}
	return s
}

// SignsOf returns the sign pattern of vector a, mapping zero
// components to +1 (a zero coefficient means the axis is ignored, so
// either octant choice is compatible).
func SignsOf(a []float64) SignPattern {
	s := make(SignPattern, len(a))
	for i, v := range a {
		if v < 0 {
			s[i] = -1
		} else {
			s[i] = 1
		}
	}
	return s
}

// Negate returns the opposite octant.
func (s SignPattern) Negate() SignPattern {
	out := make(SignPattern, len(s))
	for i, v := range s {
		out[i] = -v
	}
	return out
}

// Matches reports whether a query coefficient vector a is compatible
// with the octant: for every non-zero a_i, sign(a_i) must equal s[i].
// Zero coefficients are compatible with anything.
func (s SignPattern) Matches(a []float64) bool {
	if len(s) != len(a) {
		return false
	}
	for i, v := range a {
		if v > 0 && s[i] != 1 {
			return false
		}
		if v < 0 && s[i] != -1 {
			return false
		}
	}
	return true
}

// Equal reports whether two sign patterns are identical.
func (s SignPattern) Equal(t SignPattern) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// String renders the pattern as e.g. "+-+".
func (s SignPattern) String() string {
	b := make([]byte, len(s))
	for i, v := range s {
		if v >= 0 {
			b[i] = '+'
		} else {
			b[i] = '-'
		}
	}
	return string(b)
}

// Parallel reports whether vectors a and b are parallel (same or
// opposite direction) within relative tolerance tol on the cosine.
func Parallel(a, b []float64, tol float64) bool {
	c := CosAngle(a, b)
	return math.Abs(math.Abs(c)-1) <= tol
}

// KeyEps is the tolerance EqKey allows between two computed keys. A
// key here is an accumulated scalar product (a·q over up to a few
// thousand terms), so the worst-case relative rounding error is on
// the order of d·ulp ≈ 1e-13 for the dimensions this system targets;
// 1e-9 leaves three orders of magnitude of slack while staying far
// below any separation the index can meaningfully distinguish.
const KeyEps = 1e-9

// EqKey reports whether two computed keys (scalar products,
// thresholds derived from them) are equal up to accumulated rounding.
// It is the approved comparator the floatkey analyzer points at:
// exact == between computed float64 keys is almost never what a
// caller means. The comparison is absolute near zero and relative
// away from it, so it behaves sensibly at every magnitude. NaN equals
// nothing, matching ==.
func EqKey(a, b float64) bool {
	if a == b { // also handles equal infinities
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // an infinity equals nothing finite
	}
	d := math.Abs(a - b)
	if d <= KeyEps {
		return true
	}
	return d <= KeyEps*math.Max(math.Abs(a), math.Abs(b))
}
