package vecmath

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestDot(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{[]float64{0, 0}, []float64{1, 1}, 0},
		{[]float64{-1, 2}, []float64{3, 4}, 5},
		{nil, nil, 0},
		{[]float64{2.5}, []float64{4}, 10},
	}
	for _, c := range cases {
		if got := Dot(c.a, c.b); got != c.want {
			t.Errorf("Dot(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorms(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm(3,4)=%v want 5", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil)=%v want 0", got)
	}
	if got := Norm1([]float64{-3, 4, -5}); got != 12 {
		t.Errorf("Norm1=%v want 12", got)
	}
}

func TestScaleAddSubCloneAbs(t *testing.T) {
	a := []float64{1, -2, 3}
	b := []float64{4, 5, -6}
	if got := Scale(a, 2); got[0] != 2 || got[1] != -4 || got[2] != 6 {
		t.Errorf("Scale=%v", got)
	}
	if got := Add(a, b); got[0] != 5 || got[1] != 3 || got[2] != -3 {
		t.Errorf("Add=%v", got)
	}
	if got := Sub(a, b); got[0] != -3 || got[1] != -7 || got[2] != 9 {
		t.Errorf("Sub=%v", got)
	}
	c := Clone(a)
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone aliases input")
	}
	if got := Abs(a); got[1] != 2 {
		t.Errorf("Abs=%v", got)
	}
}

func TestCosAngle(t *testing.T) {
	if got := CosAngle([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("perpendicular cos=%v want 0", got)
	}
	if got := CosAngle([]float64{2, 0}, []float64{5, 0}); got != 1 {
		t.Errorf("parallel cos=%v want 1", got)
	}
	if got := CosAngle([]float64{1, 0}, []float64{-3, 0}); got != -1 {
		t.Errorf("antiparallel cos=%v want -1", got)
	}
	if got := CosAngle([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cos=%v want 0", got)
	}
	if got := Angle([]float64{1, 0}, []float64{1, 1}); !almostEqual(got, math.Pi/4, 1e-12) {
		t.Errorf("Angle=%v want π/4", got)
	}
}

func TestCosAngleClamped(t *testing.T) {
	// Nearly-parallel vectors can produce cos slightly above 1 in
	// floating point; the clamp must hold.
	a := []float64{1e9, 1e-9, 3}
	c := CosAngle(a, a)
	if c > 1 || c < -1 {
		t.Errorf("CosAngle not clamped: %v", c)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Error("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Error("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Error("+Inf not detected")
	}
	if AllFinite([]float64{math.Inf(-1)}) {
		t.Error("-Inf not detected")
	}
}

func TestCheckDim(t *testing.T) {
	if err := CheckDim("v", []float64{1, 2}, 2); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	err := CheckDim("v", []float64{1, 2}, 3)
	if err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestHyperplane(t *testing.T) {
	h, err := NewHyperplane([]float64{3, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Eval([]float64{2, 1}); got != 0 {
		t.Errorf("Eval on plane=%v want 0", got)
	}
	if got := h.Distance([]float64{2, 1}); got != 0 {
		t.Errorf("Distance on plane=%v want 0", got)
	}
	// (0,0): |0-10|/5 = 2
	if got := h.Distance([]float64{0, 0}); got != 2 {
		t.Errorf("Distance origin=%v want 2", got)
	}
	if h.Dim() != 2 {
		t.Errorf("Dim=%d", h.Dim())
	}
	if got := h.Intercept(0); !almostEqual(got, 10.0/3, 1e-12) {
		t.Errorf("Intercept=%v", got)
	}
}

func TestNewHyperplaneErrors(t *testing.T) {
	if _, err := NewHyperplane(nil, 0); err == nil {
		t.Error("empty normal accepted")
	}
	if _, err := NewHyperplane([]float64{0, 0}, 1); err == nil {
		t.Error("zero normal accepted")
	}
	if _, err := NewHyperplane([]float64{1, math.NaN()}, 1); err == nil {
		t.Error("NaN normal accepted")
	}
	if _, err := NewHyperplane([]float64{1}, math.Inf(1)); err == nil {
		t.Error("infinite offset accepted")
	}
}

func TestSignPattern(t *testing.T) {
	s := FirstOctant(3)
	if s.String() != "+++" {
		t.Errorf("FirstOctant=%s", s)
	}
	q := SignsOf([]float64{-1, 0, 2})
	if q.String() != "-++" {
		t.Errorf("SignsOf=%s", q)
	}
	if !q.Matches([]float64{-5, 0, 1}) {
		t.Error("compatible vector rejected")
	}
	if !q.Matches([]float64{-5, 0, 0}) {
		t.Error("zero coefficients should match any octant")
	}
	if q.Matches([]float64{5, 0, 1}) {
		t.Error("incompatible vector accepted")
	}
	if q.Matches([]float64{-5, 0}) {
		t.Error("wrong dimension accepted")
	}
	n := q.Negate()
	if n.String() != "+--" {
		t.Errorf("Negate=%s", n)
	}
	if !q.Equal(SignsOf([]float64{-1, 1, 1})) {
		t.Error("Equal failed on identical patterns")
	}
	if q.Equal(n) {
		t.Error("Equal true for different patterns")
	}
	if q.Equal(SignPattern{1}) {
		t.Error("Equal true across dimensions")
	}
}

func TestParallel(t *testing.T) {
	if !Parallel([]float64{1, 2}, []float64{2, 4}, 1e-12) {
		t.Error("parallel vectors not detected")
	}
	if !Parallel([]float64{1, 2}, []float64{-3, -6}, 1e-12) {
		t.Error("antiparallel vectors not detected")
	}
	if Parallel([]float64{1, 0}, []float64{1, 1}, 1e-6) {
		t.Error("non-parallel vectors reported parallel")
	}
}

// Property: Cauchy–Schwarz, |⟨a,b⟩| ≤ |a||b| (within float tolerance).
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [5]float64) bool {
		av, bv := a[:], b[:]
		if !AllFinite(av) || !AllFinite(bv) {
			return true
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm(av) * Norm(bv)
		return lhs <= rhs*(1+1e-9) || math.IsInf(rhs, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: distance to a hyperplane is translation-consistent —
// moving a point along the unit normal by δ changes distance by at
// most |δ|.
func TestHyperplaneDistanceLipschitz(t *testing.T) {
	f := func(n [3]float64, off float64, p [3]float64, delta float64) bool {
		nv := n[:]
		if !AllFinite(nv) || Norm(nv) == 0 || math.IsNaN(off) || math.IsInf(off, 0) {
			return true
		}
		if !AllFinite(p[:]) || math.IsNaN(delta) || math.IsInf(delta, 0) {
			return true
		}
		if math.Abs(delta) > 1e6 || Norm(p[:]) > 1e6 || Norm(nv) > 1e6 || math.Abs(off) > 1e6 {
			return true // keep float error bounded
		}
		h, err := NewHyperplane(nv, off)
		if err != nil {
			return true
		}
		unit := Scale(nv, 1/Norm(nv))
		q := Add(p[:], Scale(unit, delta))
		d0 := h.Distance(p[:])
		d1 := h.Distance(q)
		return math.Abs(d1-d0) <= math.Abs(delta)+1e-6*(1+d0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
