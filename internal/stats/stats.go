// Package stats provides the timing helpers and plain-text table
// rendering the experiment harness uses to reproduce the paper's
// figures as terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Timer measures wall-clock durations of repeated runs.
type Timer struct {
	samples []time.Duration
}

// Measure runs fn once and records its duration, which is also
// returned.
func (t *Timer) Measure(fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	t.samples = append(t.samples, d)
	return d
}

// Add records an externally measured duration.
func (t *Timer) Add(d time.Duration) { t.samples = append(t.samples, d) }

// N returns the number of recorded samples.
func (t *Timer) N() int { return len(t.samples) }

// Mean returns the average duration (0 with no samples).
func (t *Timer) Mean() time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range t.samples {
		total += d
	}
	return total / time.Duration(len(t.samples))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) duration.
func (t *Timer) Percentile(p float64) time.Duration {
	if len(t.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), t.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Reset clears all samples.
func (t *Timer) Reset() { t.samples = t.samples[:0] }

// Ms renders a duration as fractional milliseconds, the unit the
// paper's figures use.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Nanoseconds())/1e6)
}

// Mean returns the mean of a float slice (0 if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case time.Duration:
			row[i] = Ms(x) + "ms"
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 { //nolint:floatkey // exact integrality test for display formatting
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.3f", x)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
