package stats

import (
	"strings"
	"testing"
	"time"
)

func TestTimerBasics(t *testing.T) {
	var tm Timer
	if tm.Mean() != 0 || tm.Percentile(50) != 0 || tm.N() != 0 {
		t.Fatal("empty timer not zero")
	}
	d := tm.Measure(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("measured %v", d)
	}
	if tm.N() != 1 {
		t.Fatalf("N=%d", tm.N())
	}
	tm.Reset()
	if tm.N() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestTimerStats(t *testing.T) {
	var tm Timer
	for _, ms := range []int{10, 20, 30, 40} {
		tm.Add(time.Duration(ms) * time.Millisecond)
	}
	if got := tm.Mean(); got != 25*time.Millisecond {
		t.Fatalf("Mean=%v", got)
	}
	if got := tm.Percentile(0); got != 10*time.Millisecond {
		t.Fatalf("P0=%v", got)
	}
	if got := tm.Percentile(100); got != 40*time.Millisecond {
		t.Fatalf("P100=%v", got)
	}
	if got := tm.Percentile(50); got != 25*time.Millisecond {
		t.Fatalf("P50=%v", got)
	}
	if got := tm.Percentile(150); got != 40*time.Millisecond {
		t.Fatalf("P>100=%v", got)
	}
}

func TestMsAndMean(t *testing.T) {
	if got := Ms(1500 * time.Microsecond); got != "1.500" {
		t.Fatalf("Ms=%q", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean=%v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil)=%v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Figure X", "name", "time", "frac", "count")
	tbl.AddRow("alpha", 2*time.Millisecond, 0.5, 7)
	tbl.AddRow("beta-long-name", 10*time.Millisecond, 3.0, 100)
	out := tbl.String()
	if !strings.HasPrefix(out, "Figure X\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "2.000ms") || !strings.Contains(lines[3], "0.500") {
		t.Fatalf("row formatting:\n%s", out)
	}
	// Whole floats render without decimals.
	if !strings.Contains(lines[4], " 3 ") && !strings.HasSuffix(lines[4], " 3  100") {
		if !strings.Contains(lines[4], "3") {
			t.Fatalf("whole float rendering:\n%s", out)
		}
	}
	// Columns align: header and rows share the position of column 2.
	hIdx := strings.Index(lines[1], "time")
	if hIdx < 0 {
		t.Fatal("header missing")
	}
	untitled := NewTable("", "a")
	untitled.AddRow(1)
	if strings.HasPrefix(untitled.String(), "\n") {
		t.Fatal("empty title should not emit a blank line")
	}
}
