package replog

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"planar/internal/wal"
)

func TestCommitAssignsDenseLSNs(t *testing.T) {
	s := NewSequencer(1, 8)
	for i := 0; i < 5; i++ {
		lsn, err := s.Commit(wal.OpAppend, uint32(i), []float64{1}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("commit %d got LSN %d", i, lsn)
		}
	}
	if s.Last() != 5 || s.Next() != 6 {
		t.Fatalf("last=%d next=%d", s.Last(), s.Next())
	}
}

func TestReadFromRingAndTooOld(t *testing.T) {
	s := NewSequencer(1, 4)
	for i := 0; i < 10; i++ {
		if _, err := s.Commit(wal.OpAppend, uint32(i), []float64{float64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Ring holds LSNs 7..10.
	if base := s.RingBase(); base != 7 {
		t.Fatalf("ring base %d, want 7", base)
	}
	recs, tooOld := s.ReadFrom(8, 0)
	if tooOld || len(recs) != 3 || recs[0].LSN != 8 || recs[2].LSN != 10 {
		t.Fatalf("ReadFrom(8): tooOld=%v recs=%v", tooOld, recs)
	}
	if _, tooOld = s.ReadFrom(3, 0); !tooOld {
		t.Fatal("evicted LSN not reported tooOld")
	}
	recs, tooOld = s.ReadFrom(11, 0)
	if tooOld || recs != nil {
		t.Fatalf("future LSN: tooOld=%v recs=%v", tooOld, recs)
	}
	recs, _ = s.ReadFrom(7, 2)
	if len(recs) != 2 || recs[0].LSN != 7 {
		t.Fatalf("max clamp: %v", recs)
	}
}

func TestCommitBatchAssignsContiguousRange(t *testing.T) {
	s := NewSequencer(1, 8)
	if _, err := s.Commit(wal.OpAppend, 0, []float64{0}, nil); err != nil {
		t.Fatal(err)
	}
	recs := []wal.Record{
		{Op: wal.OpAppend, ID: 1, Vec: []float64{1}},
		{Op: wal.OpUpdate, ID: 0, Vec: []float64{2}},
		{Op: wal.OpRemove, ID: 1},
	}
	var journaled uint64
	base, err := s.CommitBatch(recs, func(b uint64) error {
		journaled = b
		// LSNs are assigned before the journal runs so the WAL
		// append can frame the batch.
		for j, r := range recs {
			if r.LSN != b+uint64(j) {
				t.Errorf("journal saw record %d with LSN %d, want %d", j, r.LSN, b+uint64(j))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if base != 2 || journaled != 2 {
		t.Fatalf("base=%d journaled=%d, want 2", base, journaled)
	}
	if s.Last() != 4 || s.Next() != 5 {
		t.Fatalf("last=%d next=%d, want 4/5", s.Last(), s.Next())
	}
	got, tooOld := s.ReadFrom(1, 0)
	if tooOld || len(got) != 4 {
		t.Fatalf("ReadFrom(1): tooOld=%v n=%d", tooOld, len(got))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("ring LSN order: %v", got)
		}
	}
	// Ring vectors are clones: mutating the caller's batch must not
	// reach replication readers.
	recs[0].Vec[0] = 99
	if got[1].Vec[0] != 1 {
		t.Fatal("ring shares vector storage with the committed batch")
	}

	// A failed journal assigns nothing.
	wantErr := errors.New("disk full")
	if _, err := s.CommitBatch([]wal.Record{{Op: wal.OpRemove, ID: 0}}, func(uint64) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("journal error not surfaced: %v", err)
	}
	if s.Next() != 5 {
		t.Fatalf("failed batch advanced sequence to %d", s.Next())
	}
	if _, err := s.CommitBatch(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestCommitBatchWakesWaiters(t *testing.T) {
	s := NewSequencer(1, 8)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Wait(ctx, 3)
	}()
	time.Sleep(5 * time.Millisecond)
	recs := []wal.Record{
		{Op: wal.OpRemove, ID: 0},
		{Op: wal.OpRemove, ID: 1},
		{Op: wal.OpRemove, ID: 2},
	}
	if _, err := s.CommitBatch(recs, nil); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("wait across batch commit: %v", err)
	}
}

func TestCommitAtEnforcesSequence(t *testing.T) {
	s := NewSequencer(5, 8)
	if err := s.CommitAt(5, wal.OpAppend, 0, []float64{1}, nil); err != nil {
		t.Fatal(err)
	}
	err := s.CommitAt(7, wal.OpAppend, 1, []float64{1}, nil)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("gap accepted: %v", err)
	}
	err = s.CommitAt(5, wal.OpAppend, 1, []float64{1}, nil)
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("replayed LSN accepted: %v", err)
	}
}

func TestJournalRunsUnderSequenceLock(t *testing.T) {
	s := NewSequencer(1, 8)
	var order []uint64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Commit(wal.OpRemove, 0, nil, func(lsn uint64) error {
				order = append(order, lsn) // safe: called under s.mu
				return nil
			})
		}()
	}
	wg.Wait()
	if len(order) != 32 {
		t.Fatalf("journaled %d records", len(order))
	}
	for i, lsn := range order {
		if lsn != uint64(i+1) {
			t.Fatalf("journal order %v", order)
		}
	}
}

func TestWaitBlocksUntilCommit(t *testing.T) {
	s := NewSequencer(1, 8)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Wait(ctx, 3)
	}()
	for i := 0; i < 3; i++ {
		time.Sleep(5 * time.Millisecond)
		s.Commit(wal.OpRemove, 0, nil, nil)
	}
	if err := <-done; err != nil {
		t.Fatalf("wait: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Wait(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait on future LSN: %v", err)
	}
}

func TestReadSegmentFrom(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg.log")
	w, err := wal.Create(path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if err := w.Append(wal.Record{Op: wal.OpAppend, LSN: uint64(i), ID: uint32(i), Vec: []float64{1}}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	recs, err := ReadSegmentFrom(path, 4, 0, func(id uint32) uint32 { return id * 10 })
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].LSN != 4 || recs[0].ID != 40 {
		t.Fatalf("recs=%v", recs)
	}
	recs, err = ReadSegmentFrom(path, 1, 2, nil)
	if err != nil || len(recs) != 2 {
		t.Fatalf("max: recs=%v err=%v", recs, err)
	}
	recs, err = ReadSegmentFrom(filepath.Join(t.TempDir(), "missing.log"), 1, 0, nil)
	if err != nil || recs != nil {
		t.Fatalf("missing file: recs=%v err=%v", recs, err)
	}
}
