// Package replog owns the commit sequence of a planar store: a
// Sequencer assigns log sequence numbers (LSNs) to mutations at
// commit time, keeps a bounded in-memory ring of recently committed
// records in the global id space, and lets readers wait for an LSN to
// commit. It is the meeting point of the durability layer (per-shard
// WAL segments journal records under the sequencer's lock, so segment
// order always matches LSN order) and the replication subsystem
// (package replica), which streams the ring to read replicas and uses
// LSN waits to honor monotonic read barriers.
//
// The ring is deliberately lossy: when a replica falls further behind
// than the ring capacity, the primary serves the gap from its on-disk
// WAL segments if they still cover it, and otherwise tells the
// replica to re-bootstrap from a snapshot. A slow replica therefore
// never applies backpressure to the primary's write path.
package replog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"planar/internal/wal"
)

// ErrDiverged reports that an applied replication record contradicts
// local state — an id the primary assigned is not the id replay
// produced, an LSN arrived out of order, or an op targeted a dead
// point. The only safe recovery is a fresh snapshot bootstrap.
var ErrDiverged = errors.New("replog: replica diverged from primary")

// DefaultRingSize is the number of recently committed records kept in
// memory for tail-following replicas.
const DefaultRingSize = 1 << 14

// Sequencer assigns LSNs at commit and retains the recent commit
// tail. All methods are safe for concurrent use.
type Sequencer struct {
	mu       sync.Mutex
	next     uint64       // guarded by mu; next LSN to assign (≥ 1)
	ring     []wal.Record // guarded by mu
	ringCap  int
	ringBase uint64        // guarded by mu; LSN of ring[0]; ring holds [ringBase, next)
	notify   chan struct{} // guarded by mu

	// last mirrors next-1 so Last — called on every read to stamp the
	// X-Planar-LSN header — never contends with commits holding mu
	// across a journal fsync.
	last atomic.Uint64
}

// NewSequencer starts the sequence at next (the first LSN it will
// assign; 0 is treated as 1 — LSN 0 means "nothing"). ringSize ≤ 0
// selects DefaultRingSize.
func NewSequencer(next uint64, ringSize int) *Sequencer {
	if next == 0 {
		next = 1
	}
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	s := &Sequencer{
		next:     next,
		ringCap:  ringSize,
		ringBase: next,
		notify:   make(chan struct{}),
	}
	s.last.Store(next - 1)
	return s
}

// Next returns the LSN the next commit will receive.
func (s *Sequencer) Next() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Last returns the most recently committed LSN (0 if none). It is
// lock-free: reads stamping LSN headers never wait behind a commit's
// journal fsync.
func (s *Sequencer) Last() uint64 { return s.last.Load() }

// Commit assigns the next LSN to a mutation in the global id space,
// runs the journal callback (the per-shard WAL append) under the
// sequence lock so on-disk order matches LSN order, and publishes the
// record to the ring. The caller must already have applied the
// mutation to the in-memory store, holding its shard lock across this
// call so same-key operations sequence correctly.
func (s *Sequencer) Commit(op wal.Op, gid uint32, vec []float64, journal func(lsn uint64) error) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lsn := s.next
	if journal != nil {
		if err := journal(lsn); err != nil {
			return 0, err
		}
	}
	s.publishLocked(wal.Record{Op: op, LSN: lsn, ID: gid, Vec: cloneVec(vec)})
	return lsn, nil
}

// CommitAt is the replica-side commit: the LSN comes from the primary
// and must be exactly the next in sequence, keeping the replica's own
// WAL segments aligned with the primary's LSN space. Out-of-order
// LSNs report ErrDiverged.
func (s *Sequencer) CommitAt(lsn uint64, op wal.Op, gid uint32, vec []float64, journal func(lsn uint64) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if lsn != s.next {
		return fmt.Errorf("commit at LSN %d, sequence expects %d: %w", lsn, s.next, ErrDiverged)
	}
	if journal != nil {
		if err := journal(lsn); err != nil {
			return err
		}
	}
	s.publishLocked(wal.Record{Op: op, LSN: lsn, ID: gid, Vec: cloneVec(vec)})
	return nil
}

// CommitBatch assigns a contiguous LSN range to a group-committed
// batch: recs[j] receives base+j in place, the journal callback (one
// multi-record WAL append plus one fsync) runs under the sequence
// lock so on-disk order matches LSN order, and all records publish to
// the ring with a single waiter wakeup. The record ids must already
// be global; vectors are cloned into the ring. The caller holds its
// shard lock across this call, exactly as for Commit.
func (s *Sequencer) CommitBatch(recs []wal.Record, journal func(base uint64) error) (uint64, error) {
	if len(recs) == 0 {
		return 0, errors.New("replog: empty batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.next
	for j := range recs {
		recs[j].LSN = base + uint64(j)
	}
	if journal != nil {
		if err := journal(base); err != nil {
			return 0, err
		}
	}
	for _, r := range recs {
		r.Vec = cloneVec(r.Vec)
		s.ring = append(s.ring, r)
	}
	if over := len(s.ring) - s.ringCap; over > 0 {
		s.ring = append(s.ring[:0], s.ring[over:]...)
		s.ringBase += uint64(over)
	}
	s.advanceLocked(base + uint64(len(recs)))
	return base, nil
}

// publishLocked appends one record to the ring and wakes waiters.
func (s *Sequencer) publishLocked(rec wal.Record) {
	s.ring = append(s.ring, rec)
	if over := len(s.ring) - s.ringCap; over > 0 {
		s.ring = append(s.ring[:0], s.ring[over:]...)
		s.ringBase += uint64(over)
	}
	s.advanceLocked(rec.LSN + 1)
}

// advanceLocked moves the sequence to next, mirrors it for lock-free
// Last readers, and wakes waiters.
func (s *Sequencer) advanceLocked(next uint64) {
	s.next = next
	s.last.Store(next - 1)
	close(s.notify)
	s.notify = make(chan struct{})
}

// ReadFrom returns up to max committed records starting at LSN from,
// in LSN order. tooOld reports that the ring no longer covers from —
// the caller must fall back to on-disk segments or a snapshot. An
// empty, non-tooOld result means from has not been committed yet.
// The returned records share vector storage with the ring and must
// not be mutated.
func (s *Sequencer) ReadFrom(from uint64, max int) (recs []wal.Record, tooOld bool) {
	if from == 0 {
		from = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if from >= s.next {
		return nil, false
	}
	if from < s.ringBase {
		return nil, true
	}
	lo := int(from - s.ringBase)
	hi := len(s.ring)
	if max > 0 && hi-lo > max {
		hi = lo + max
	}
	out := make([]wal.Record, hi-lo)
	copy(out, s.ring[lo:hi])
	return out, false
}

// RingBase returns the oldest LSN the ring still covers (== Next when
// the ring is empty).
func (s *Sequencer) RingBase() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ringBase
}

// Wait blocks until LSN lsn has committed (Last() ≥ lsn) or the
// context is done. It is the primitive behind monotonic read
// barriers: on a primary it waits for a commit, on a replica —
// whose sequencer advances in CommitAt as records apply — it waits
// for the apply to catch up.
func (s *Sequencer) Wait(ctx context.Context, lsn uint64) error {
	for {
		s.mu.Lock()
		if s.next > lsn {
			s.mu.Unlock()
			return nil
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

func cloneVec(v []float64) []float64 {
	if len(v) == 0 {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// ReadSegmentFrom scans one on-disk WAL segment and returns up to max
// records with LSN ≥ from, translating shard-local ids to global ids
// through globalize (pass nil for an unsharded store). A torn tail
// ends the scan cleanly. It underpins catch-up streaming when a
// replica's cursor has fallen off the in-memory ring but the segment
// files still cover it.
func ReadSegmentFrom(path string, from uint64, max int, globalize func(uint32) uint32) ([]wal.Record, error) {
	seg, err := wal.OpenSegment(path)
	if err != nil {
		// A missing or headerless file holds no committed records.
		if errors.Is(err, os.ErrNotExist) || wal.IsTail(err) {
			return nil, nil
		}
		return nil, err
	}
	// Read-only iteration: a close failure here cannot lose data.
	defer func() { _ = seg.Close() }()
	var out []wal.Record
	for max <= 0 || len(out) < max {
		rec, err := seg.Next()
		if err != nil {
			if wal.IsTail(err) {
				break
			}
			return out, err
		}
		if rec.LSN < from {
			continue
		}
		if globalize != nil {
			rec.ID = globalize(rec.ID)
		}
		out = append(out, rec)
	}
	return out, nil
}
