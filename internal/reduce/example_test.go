package reduce_test

import (
	"fmt"
	"math/rand"

	"planar/internal/core"
	"planar/internal/reduce"
)

// Example shows the exact PCA filter: almost all of this strongly
// correlated 8-d data is decided from 1 reduced coordinate plus a
// residual bound, and only the thin uncertain band is verified in
// full dimension.
func Example() {
	store, _ := core.NewPointStore(8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		base := rng.Float64() * 100
		row := make([]float64, 8)
		for j := range row {
			row[j] = base + rng.NormFloat64()
		}
		store.Append(row)
	}
	f, _ := reduce.NewFilter(store, 1)

	q, _ := core.NewQuery([]float64{1, 1, 1, 1, 1, 1, 1, 1}, 400, core.LE)
	ids, st, _ := f.InequalityIDs(q)
	fmt.Printf("matches=%d pruned=%.0f%% varianceExplained>0.99=%v\n",
		len(ids), 100*st.PruningFraction(), f.VarianceExplained() > 0.99)
	// Output:
	// matches=2439 pruned=100% varianceExplained>0.99=true
}
