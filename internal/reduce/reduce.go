// Package reduce implements the paper's first future-work item
// (Section 8): "since Planar index has high pruning capacity for
// low-dimensional datasets, it would be interesting to apply various
// dimensionality reduction techniques as a preprocessing method."
//
// FitPCA computes a principal-component basis of the φ vectors with
// power iteration (stdlib only). Filter then stores, per point, the
// r reduced coordinates y = Vᵀ(φ−μ) plus the residual norm
// ρ = |φ − μ − V·y|. For a query ⟨a, φ⟩ ≤ b, split a the same way
// (â = Vᵀa with residual norm α); Cauchy–Schwarz gives
//
//	⟨â, y⟩ + ⟨a, μ⟩ − α·ρ  ≤  ⟨a, φ⟩  ≤  ⟨â, y⟩ + ⟨a, μ⟩ + α·ρ
//
// so points whose upper bound is ≤ b are accepted and points whose
// lower bound is > b are rejected — both without touching the full
// d'-dimensional vector — and only the remainder is verified
// exactly. Answers are therefore exact, with per-point filter cost
// O(r) instead of O(d').
package reduce

import (
	"errors"
	"fmt"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// Reducer is a fitted PCA basis.
type Reducer struct {
	mean  []float64
	basis [][]float64 // r orthonormal rows of length d'
	evals []float64   // eigenvalue estimates, descending
}

// FitPCA fits an r-component basis to the live points of store using
// power iteration with deflation. iters bounds the iterations per
// component (50 is plenty for well-separated spectra).
func FitPCA(store *core.PointStore, r, iters int) (*Reducer, error) {
	if store == nil || store.Len() == 0 {
		return nil, errors.New("reduce: empty store")
	}
	d := store.Dim()
	if r <= 0 || r > d {
		return nil, fmt.Errorf("reduce: components must be in [1, %d], got %d", d, r)
	}
	if iters <= 0 {
		iters = 50
	}
	n := float64(store.Len())

	mean := make([]float64, d)
	store.Each(func(_ uint32, v []float64) bool {
		for i, x := range v {
			mean[i] += x
		}
		return true
	})
	for i := range mean {
		mean[i] /= n
	}

	// Covariance matrix, O(n·d²) once.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	cen := make([]float64, d)
	store.Each(func(_ uint32, v []float64) bool {
		for i := range cen {
			cen[i] = v[i] - mean[i]
		}
		for i := 0; i < d; i++ {
			ci := cen[i]
			row := cov[i]
			for j := i; j < d; j++ {
				row[j] += ci * cen[j]
			}
		}
		return true
	})
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			cov[i][j] /= n
			cov[j][i] = cov[i][j]
		}
	}

	red := &Reducer{mean: mean}
	vec := make([]float64, d)
	next := make([]float64, d)
	for comp := 0; comp < r; comp++ {
		// Deterministic start that is unlikely to be orthogonal to
		// the dominant eigenvector.
		for i := range vec {
			vec[i] = 1 / float64(i+comp+1)
		}
		var lambda float64
		for it := 0; it < iters; it++ {
			for i := 0; i < d; i++ {
				s := 0.0
				for j := 0; j < d; j++ {
					s += cov[i][j] * vec[j]
				}
				next[i] = s
			}
			lambda = vecmath.Norm(next)
			if lambda < 1e-12 {
				break
			}
			for i := range vec {
				vec[i] = next[i] / lambda
			}
		}
		if lambda < 1e-12 {
			break // remaining variance is numerically zero
		}
		red.basis = append(red.basis, vecmath.Clone(vec))
		red.evals = append(red.evals, lambda)
		// Deflate: C ← C − λ·v·vᵀ.
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov[i][j] -= lambda * vec[i] * vec[j]
			}
		}
	}
	if len(red.basis) == 0 {
		return nil, errors.New("reduce: data has no variance")
	}
	return red, nil
}

// Components returns the number of fitted components.
func (r *Reducer) Components() int { return len(r.basis) }

// Eigenvalues returns the variance captured by each component.
func (r *Reducer) Eigenvalues() []float64 {
	return append([]float64(nil), r.evals...)
}

// Project returns the reduced coordinates of x and the norm of the
// part of (x − mean) outside the basis.
func (r *Reducer) Project(x []float64) (y []float64, residual float64) {
	d := len(r.mean)
	cen := make([]float64, d)
	for i := range cen {
		cen[i] = x[i] - r.mean[i]
	}
	y = make([]float64, len(r.basis))
	for k, v := range r.basis {
		y[k] = vecmath.Dot(v, cen)
	}
	// residual = |cen − Σ y_k v_k|
	res := append([]float64(nil), cen...)
	for k, v := range r.basis {
		for i := range res {
			res[i] -= y[k] * v[i]
		}
	}
	return y, vecmath.Norm(res)
}

// splitQuery decomposes query coefficients like a point: â in the
// basis, α the out-of-basis norm, plus the constant ⟨a, mean⟩.
func (r *Reducer) splitQuery(a []float64) (ahat []float64, alpha, shift float64) {
	ahat = make([]float64, len(r.basis))
	for k, v := range r.basis {
		ahat[k] = vecmath.Dot(v, a)
	}
	res := append([]float64(nil), a...)
	for k, v := range r.basis {
		for i := range res {
			res[i] -= ahat[k] * v[i]
		}
	}
	return ahat, vecmath.Norm(res), vecmath.Dot(a, r.mean)
}

// Stats describes how a filtered query was answered.
type Stats struct {
	N        int // points considered
	Accepted int // accepted from reduced bounds alone
	Rejected int // rejected from reduced bounds alone
	Verified int // full-dimension verifications
	Matched  int // verified points that satisfied the query
}

// PruningFraction is the share of points never touched in full
// dimension.
func (s Stats) PruningFraction() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.N-s.Verified) / float64(s.N)
}

// Filter answers scalar product queries through the reduced
// representation, verifying only the uncertain band in full
// dimension. It is exact for any query.
type Filter struct {
	store *core.PointStore
	red   *Reducer
	// Reduced data, row-major: r coords + residual per point, aligned
	// with point ids.
	rdim int
	rows []float64
	ids  []uint32
}

// NewFilter fits PCA (r components, default iterations) over store
// and materialises the reduced representation.
func NewFilter(store *core.PointStore, r int) (*Filter, error) {
	red, err := FitPCA(store, r, 0)
	if err != nil {
		return nil, err
	}
	f := &Filter{store: store, red: red, rdim: red.Components() + 1}
	store.Each(func(id uint32, v []float64) bool {
		y, rho := red.Project(v)
		f.rows = append(f.rows, y...)
		f.rows = append(f.rows, rho)
		f.ids = append(f.ids, id)
		return true
	})
	return f, nil
}

// Reducer exposes the fitted basis.
func (f *Filter) Reducer() *Reducer { return f.red }

// Inequality answers ⟨a, φ(x)⟩ op b exactly, touching full vectors
// only for points the reduced bounds cannot decide.
func (f *Filter) Inequality(q core.Query, visit func(id uint32) bool) (Stats, error) {
	if err := q.Validate(f.store.Dim()); err != nil {
		return Stats{}, err
	}
	// Normalise to LE form.
	a, b := q.A, q.B
	if q.Op == core.GE {
		a = vecmath.Scale(a, -1)
		b = -b
	}
	ahat, alpha, shift := f.red.splitQuery(a)
	st := Stats{N: len(f.ids)}
	r := f.red.Components()
	for row, id := range f.ids {
		off := row * f.rdim
		y := f.rows[off : off+r]
		rho := f.rows[off+r]
		mid := vecmath.Dot(ahat, y) + shift
		slack := alpha * rho
		switch {
		case mid+slack <= b:
			st.Accepted++
			if !visit(id) {
				return st, nil
			}
		case mid-slack > b:
			st.Rejected++
		default:
			st.Verified++
			if q.Satisfies(f.store.Vector(id)) {
				st.Matched++
				if !visit(id) {
					return st, nil
				}
			}
		}
	}
	return st, nil
}

// InequalityIDs collects all matching ids.
func (f *Filter) InequalityIDs(q core.Query) ([]uint32, Stats, error) {
	var ids []uint32
	st, err := f.Inequality(q, func(id uint32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, st, err
}

// VarianceExplained returns the fraction of total variance captured
// by the basis, a fitting diagnostic.
func (f *Filter) VarianceExplained() float64 {
	var captured float64
	for _, ev := range f.red.evals {
		captured += ev
	}
	var total float64
	f.store.Each(func(_ uint32, v []float64) bool {
		for i, x := range v {
			d := x - f.red.mean[i]
			total += d * d
		}
		return true
	})
	total /= float64(f.store.Len())
	if total == 0 {
		return 1
	}
	if frac := captured / total; frac < 1 {
		return frac
	}
	return 1
}
