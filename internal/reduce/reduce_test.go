package reduce

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/scan"
	"planar/internal/vecmath"
)

// lineStore builds points concentrated along one direction plus
// small isotropic noise — the regime PCA is made for.
func lineStore(t *testing.T, n, dim int, seed int64) *core.PointStore {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dir := make([]float64, dim)
	for i := range dir {
		dir[i] = 1 + float64(i)
	}
	norm := vecmath.Norm(dir)
	for i := range dir {
		dir[i] /= norm
	}
	s, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		c := rng.NormFloat64() * 20
		for j := range v {
			v[j] = 50 + c*dir[j] + rng.NormFloat64()*0.5
		}
		s.Append(v)
	}
	return s
}

func TestFitPCAValidation(t *testing.T) {
	if _, err := FitPCA(nil, 1, 0); err == nil {
		t.Error("nil store accepted")
	}
	empty, _ := core.NewPointStore(2)
	if _, err := FitPCA(empty, 1, 0); err == nil {
		t.Error("empty store accepted")
	}
	s := lineStore(t, 50, 3, 1)
	if _, err := FitPCA(s, 0, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := FitPCA(s, 4, 0); err == nil {
		t.Error("r>dim accepted")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	dim := 5
	s := lineStore(t, 3000, dim, 2)
	red, err := FitPCA(s, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if red.Components() != 2 {
		t.Fatalf("Components=%d", red.Components())
	}
	evals := red.Eigenvalues()
	if evals[0] < 50*evals[1] {
		t.Fatalf("eigenvalue gap too small: %v", evals)
	}
	// The first basis vector must be (anti)parallel to the true
	// direction (1,2,3,4,5)/|·|.
	truth := []float64{1, 2, 3, 4, 5}
	cos := math.Abs(vecmath.CosAngle(red.basis[0], truth))
	if cos < 0.999 {
		t.Fatalf("dominant direction cos=%v", cos)
	}
	// Basis is orthonormal.
	if math.Abs(vecmath.Norm(red.basis[0])-1) > 1e-9 ||
		math.Abs(vecmath.Norm(red.basis[1])-1) > 1e-9 {
		t.Fatal("basis vectors not unit length")
	}
	if math.Abs(vecmath.Dot(red.basis[0], red.basis[1])) > 1e-6 {
		t.Fatal("basis vectors not orthogonal")
	}
}

func TestProjectionReconstructs(t *testing.T) {
	s := lineStore(t, 500, 4, 3)
	red, err := FitPCA(s, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	// With a full-rank basis the residual must (numerically) vanish —
	// trailing power-iteration components carry a little noise, so
	// compare against the data scale (~50).
	s.Each(func(_ uint32, v []float64) bool {
		_, rho := red.Project(v)
		if rho > 1e-3 {
			t.Fatalf("full-rank residual %v", rho)
		}
		return true
	})
}

func sortIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFilterExactness(t *testing.T) {
	s := lineStore(t, 2000, 8, 4)
	f, err := NewFilter(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		a := make([]float64, 8)
		for i := range a {
			a[i] = rng.NormFloat64() * 3 // arbitrary signs: no octant limits
		}
		b := rng.NormFloat64() * 800
		op := core.LE
		if trial%2 == 0 {
			op = core.GE
		}
		q := core.Query{A: a, B: b, Op: op}
		ids, st, err := f.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.IDs(s, q)
		if !equalIDs(sortIDs(ids), sortIDs(want)) {
			t.Fatalf("trial %d: filter %d ids, scan %d", trial, len(ids), len(want))
		}
		if st.Accepted+st.Rejected+st.Verified != st.N {
			t.Fatalf("stats inconsistent: %+v", st)
		}
	}
}

func TestFilterPrunesOnCorrelatedData(t *testing.T) {
	// Correlated data lives near the diagonal: 1–2 components capture
	// nearly all variance, so most points are decided in reduced
	// space.
	d := dataset.Correlated(5000, 10, 6)
	s, err := d.Store()
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFilter(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ve := f.VarianceExplained(); ve < 0.9 {
		t.Fatalf("variance explained %v on correlated data", ve)
	}
	rng := rand.New(rand.NewSource(7))
	var pruned float64
	const trials = 20
	for i := 0; i < trials; i++ {
		a := make([]float64, 10)
		var rhs float64
		for j := range a {
			a[j] = 1 + rng.Float64()*3
			rhs += a[j] * 100
		}
		q := core.Query{A: a, B: 0.25 * rhs, Op: core.LE}
		ids, st, err := f.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortIDs(ids), sortIDs(scan.IDs(s, q))) {
			t.Fatalf("trial %d mismatch", i)
		}
		pruned += st.PruningFraction()
	}
	if avg := pruned / trials; avg < 0.8 {
		t.Fatalf("average pruning %v, want >0.8 on correlated data", avg)
	}
}

func TestFilterValidation(t *testing.T) {
	s := lineStore(t, 100, 3, 8)
	f, err := NewFilter(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.InequalityIDs(core.Query{A: []float64{1}, B: 0, Op: core.LE}); err == nil {
		t.Error("wrong-dim query accepted")
	}
	if f.Reducer() == nil {
		t.Error("Reducer accessor nil")
	}
	// Early stop.
	count := 0
	_, err = f.Inequality(core.Query{A: []float64{0, 0, 0}, B: 1, Op: core.LE}, func(uint32) bool {
		count++
		return count < 3
	})
	if err != nil || count != 3 {
		t.Fatalf("early stop count=%d err=%v", count, err)
	}
}

func TestZeroVarianceData(t *testing.T) {
	s, _ := core.NewPointStore(2)
	for i := 0; i < 10; i++ {
		s.Append([]float64{5, 5})
	}
	if _, err := FitPCA(s, 1, 0); err == nil {
		t.Error("zero-variance data accepted")
	}
}
