package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/queries"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig13a",
		Title: "Figure 13(a): index build time vs dimensionality and budget",
		Run:   fig13a,
	})
	register(Experiment{
		ID:    "fig13b",
		Title: "Figure 13(b): memory consumption vs budget and dimensionality",
		Run:   fig13b,
	})
	register(Experiment{
		ID:    "fig13c",
		Title: "Figure 13(c): dynamic index update time vs update percentage",
		Run:   fig13c,
	})
}

func fig13a(cfg Config, w io.Writer) error {
	out := stats.NewTable(
		fmt.Sprintf("Figure 13(a) — index build time (n=%d)", cfg.Points),
		"dim", "#ind=1", "#ind=10", "#ind=50", "#ind=100")
	for _, dim := range sweepDims {
		d := dataset.Independent(cfg.Points, dim, cfg.Seed)
		store, err := d.Store()
		if err != nil {
			return err
		}
		g, err := queries.NewEq18(d.AxisMaxes(), 12)
		if err != nil {
			return err
		}
		row := []interface{}{dim}
		for _, budget := range sweepBudgets {
			m, err := core.NewMulti(store)
			if err != nil {
				return err
			}
			start := time.Now()
			if _, err := g.BuildIndexes(m, budget, rand.New(rand.NewSource(cfg.Seed))); err != nil {
				return err
			}
			row = append(row, time.Since(start))
		}
		out.AddRow(row...)
	}
	_, err := io.WriteString(w, out.String())
	return err
}

func fig13b(cfg Config, w io.Writer) error {
	out := stats.NewTable(
		fmt.Sprintf("Figure 13(b) — memory consumption (n=%d)", cfg.Points),
		"#index", "dim=2(MB)", "dim=6(MB)", "dim=10(MB)", "dim=14(MB)")
	mb := func(b int) float64 { return float64(b) / (1 << 20) }
	// Build once per dim with the largest budget; intermediate rows
	// reuse prefix sums of per-index footprints.
	type dimState struct {
		storeBytes int
		indexBytes []int
	}
	var dims []dimState
	for _, dim := range sweepDims {
		d := dataset.Independent(cfg.Points, dim, cfg.Seed)
		store, err := d.Store()
		if err != nil {
			return err
		}
		g, err := queries.NewEq18(d.AxisMaxes(), 12)
		if err != nil {
			return err
		}
		m, err := core.NewMulti(store)
		if err != nil {
			return err
		}
		if _, err := g.BuildIndexes(m, 100, rand.New(rand.NewSource(cfg.Seed))); err != nil {
			return err
		}
		st := dimState{storeBytes: store.MemoryBytes()}
		for i := 0; i < m.NumIndexes(); i++ {
			st.indexBytes = append(st.indexBytes, m.Index(i).MemoryBytes())
		}
		dims = append(dims, st)
	}
	for _, budget := range sweepBudgets {
		row := []interface{}{budget}
		for _, st := range dims {
			total := st.storeBytes
			for i := 0; i < budget && i < len(st.indexBytes); i++ {
				total += st.indexBytes[i]
			}
			row = append(row, mb(total))
		}
		out.AddRow(row...)
	}
	// Baseline: the raw data alone.
	row := []interface{}{"baseline"}
	for _, st := range dims {
		row = append(row, mb(st.storeBytes))
	}
	out.AddRow(row...)
	_, err := io.WriteString(w, out.String())
	return err
}

// fig13c updates a growing percentage of points and reports the
// total and per-point per-index update cost. The paper reports 170ms
// per index for 5% of 1M 10-d points (3.4 µs per point per index in
// our units — they write 3.4 ms for 1K points).
func fig13c(cfg Config, w io.Writer) error {
	out := stats.NewTable(
		fmt.Sprintf("Figure 13(c) — dynamic updates (n=%d, 1 index)", cfg.Points),
		"dim", "update%", "total", "per-point")
	for _, dim := range []int{6, 10} {
		for _, pct := range []int{1, 5, 10, 25} {
			d := dataset.Independent(cfg.Points, dim, cfg.Seed)
			store, err := d.Store()
			if err != nil {
				return err
			}
			g, err := queries.NewEq18(d.AxisMaxes(), 12)
			if err != nil {
				return err
			}
			m, err := core.NewMulti(store)
			if err != nil {
				return err
			}
			if _, err := g.BuildIndexes(m, 1, rand.New(rand.NewSource(cfg.Seed))); err != nil {
				return err
			}
			k := cfg.Points * pct / 100
			if k < 1 {
				k = 1
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(pct)))
			vec := make([]float64, dim)
			start := time.Now()
			for i := 0; i < k; i++ {
				id := uint32(rng.Intn(cfg.Points))
				for j := range vec {
					vec[j] = 1 + 99*rng.Float64()
				}
				if err := m.Update(id, vec); err != nil {
					return err
				}
			}
			total := time.Since(start)
			out.AddRow(dim, pct, total, total/time.Duration(k))
		}
	}
	_, err := io.WriteString(w, out.String())
	return err
}
