// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7) as plain-text tables. Each
// experiment is registered under the paper's figure/table id and is
// runnable through cmd/planarbench or the root benchmark suite.
//
// Absolute times depend on the machine; what the experiments are
// meant to reproduce is the paper's shape: who wins, by roughly what
// factor, and where the crossovers are. EXPERIMENTS.md records
// paper-vs-measured for each id.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/queries"
	"planar/internal/scan"
)

// Config scales the workloads. The paper's settings (1M synthetic
// points, 100-run averages, 5K objects per moving set) are available
// through PaperConfig; DefaultConfig is laptop-scale and preserves
// every experiment's shape.
type Config struct {
	Points     int   // synthetic dataset cardinality
	RealPoints int   // rows for the simulated real-world datasets
	Queries    int   // queries averaged per measurement
	MovingN    int   // moving objects per set
	Seed       int64 // global reproducibility seed
}

// DefaultConfig returns laptop-scale settings.
func DefaultConfig() Config {
	return Config{Points: 100000, RealPoints: 20000, Queries: 20, MovingN: 400, Seed: 1}
}

// PaperConfig returns the paper's full-scale settings.
func PaperConfig() Config {
	return Config{Points: 1000000, RealPoints: 68040, Queries: 100, MovingN: 5000, Seed: 1}
}

// TinyConfig returns settings small enough for unit tests.
func TinyConfig() Config {
	return Config{Points: 2000, RealPoints: 1500, Queries: 5, MovingN: 60, Seed: 1}
}

// Validate rejects degenerate configurations.
func (c Config) Validate() error {
	if c.Points <= 0 || c.RealPoints <= 0 || c.Queries <= 0 || c.MovingN <= 0 {
		return fmt.Errorf("experiments: all config sizes must be positive: %+v", c)
	}
	return nil
}

// Experiment is one reproducible figure or table.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every registered experiment sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find looks an experiment up by id.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config, w io.Writer) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	e, ok := Find(id)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (use one of %v)", id, ids())
	}
	return e.Run(cfg, w)
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// measured aggregates one query-set measurement.
type measured struct {
	avg      time.Duration
	pruning  float64 // mean pruning fraction, 0..1
	matched  float64 // mean result-set size
	fellBack int
}

// runIndexed averages nq generated queries through m.
func runIndexed(m *core.Multi, gen func() core.Query, nq int) (measured, error) {
	var out measured
	var total time.Duration
	for i := 0; i < nq; i++ {
		q := gen()
		start := time.Now()
		st, err := m.Inequality(q, func(uint32) bool { return true })
		total += time.Since(start)
		if err != nil {
			return out, err
		}
		out.pruning += st.PruningFraction()
		out.matched += float64(st.Results())
		if st.FellBack {
			out.fellBack++
		}
	}
	out.avg = total / time.Duration(nq)
	out.pruning /= float64(nq)
	out.matched /= float64(nq)
	return out, nil
}

// runBaseline averages nq generated queries via sequential scan.
func runBaseline(store *core.PointStore, gen func() core.Query, nq int) time.Duration {
	var total time.Duration
	for i := 0; i < nq; i++ {
		q := gen()
		start := time.Now()
		n := 0
		scan.Inequality(store, q, func(uint32) bool { n++; return true })
		total += time.Since(start)
	}
	return total / time.Duration(nq)
}

// synthSetup builds a synthetic dataset, its store, an Eq18
// generator and a Multi with the requested index budget.
func synthSetup(kind dataset.Kind, n, dim, rq, budget int, seed int64) (*core.PointStore, *core.Multi, queries.Eq18, error) {
	d := dataset.Synthetic(kind, n, dim, seed)
	store, err := d.Store()
	if err != nil {
		return nil, nil, queries.Eq18{}, err
	}
	g, err := queries.NewEq18(d.AxisMaxes(), rq)
	if err != nil {
		return nil, nil, queries.Eq18{}, err
	}
	m, err := core.NewMulti(store)
	if err != nil {
		return nil, nil, queries.Eq18{}, err
	}
	if budget > 0 {
		if _, err := g.BuildIndexes(m, budget, rand.New(rand.NewSource(seed+1000))); err != nil {
			return nil, nil, queries.Eq18{}, err
		}
	}
	return store, m, g, nil
}

// cloneWithSelection rebuilds a Multi over the same store and
// normals but with angle-minimisation selection, for the selection
// ablation.
func cloneWithSelection(m *core.Multi) (*core.Multi, error) {
	out, err := core.NewMulti(m.Store(), core.WithSelection(core.SelectAngle))
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.NumIndexes(); i++ {
		ix := m.Index(i)
		if _, err := out.AddNormal(ix.Normal(), ix.Signs()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// genFor returns a deterministic query generator for a given seed.
func genFor(g queries.Eq18, seed int64) func() core.Query {
	rng := rand.New(rand.NewSource(seed))
	return func() core.Query { return g.Query(rng) }
}
