package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/queries"
	"planar/internal/sqlfunc"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig6a",
		Title: "Figure 6(a): query time, Consumption SQL function (Critical_Consume)",
		Run:   fig6a,
	})
	register(Experiment{
		ID:    "fig6b",
		Title: "Figure 6(b): query time, CMoment, RQ × #index",
		Run:   func(cfg Config, w io.Writer) error { return fig6bc(cfg, w, "cmoment") },
	})
	register(Experiment{
		ID:    "fig6c",
		Title: "Figure 6(c): query time, CTexture, RQ × #index",
		Run:   func(cfg Config, w io.Writer) error { return fig6bc(cfg, w, "ctexture") },
	})
	register(Experiment{
		ID:    "fig6d",
		Title: "Figure 6(d): index construction time, real-world datasets",
		Run:   fig6d,
	})
}

// fig6a reproduces the Consumption experiment: the Critical_Consume
// SQL function answered with 10..200 planar indexes versus a
// sequential scan. The paper reports 62ms baseline vs 9ms with 200
// indexes (~7× speed-up) on 2.07M rows.
func fig6a(cfg Config, w io.Writer) error {
	d := dataset.Consumption(cfg.RealPoints, cfg.Seed)
	tbl, err := sqlfunc.FromData(d, dataset.ConsumptionColumns)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := stats.NewTable(
		fmt.Sprintf("Figure 6(a) — Consumption (n=%d), threshold ~ U(0.1, 1.0)", cfg.RealPoints),
		"#index", "query", "pruned%", "fellback")

	// One CriticalConsume reused; budgets grow incrementally.
	cc, err := sqlfunc.NewCriticalConsume(tbl, "active_power", "voltage", "current",
		core.Domain{Lo: 0.1, Hi: 1.0}, 10, rng)
	if err != nil {
		return err
	}
	thresholds := func(seed int64) func() float64 {
		r := rand.New(rand.NewSource(seed))
		return func() float64 { return 0.1 + 0.9*r.Float64() }
	}
	measure := func() (time.Duration, float64, int, error) {
		next := thresholds(cfg.Seed + 7)
		var total time.Duration
		var pruning float64
		fellBack := 0
		for i := 0; i < cfg.Queries; i++ {
			th := next()
			start := time.Now()
			_, st, err := cc.Query(th)
			total += time.Since(start)
			if err != nil {
				return 0, 0, 0, err
			}
			pruning += st.PruningFraction()
			if st.FellBack {
				fellBack++
			}
		}
		return total / time.Duration(cfg.Queries), pruning / float64(cfg.Queries), fellBack, nil
	}

	have := 10
	for _, budget := range []int{10, 50, 100, 200} {
		if budget > have {
			doms := []core.Domain{{Lo: 1, Hi: 1}, {Lo: -1.0, Hi: -0.1}}
			if _, err := cc.Index().AddIndexes(budget-have, doms, rng); err != nil {
				return err
			}
			have = budget
		}
		avg, pruning, fb, err := measure()
		if err != nil {
			return err
		}
		out.AddRow(cc.Index().Multi().NumIndexes(), avg, 100*pruning, fb)
	}

	// Baseline scan.
	next := thresholds(cfg.Seed + 7)
	var total time.Duration
	for i := 0; i < cfg.Queries; i++ {
		th := next()
		start := time.Now()
		cc.QueryScan(th)
		total += time.Since(start)
	}
	out.AddRow("baseline", total/time.Duration(cfg.Queries), 0.0, 0)
	_, err = io.WriteString(w, out.String())
	return err
}

// fig6bc reproduces the image-feature experiments: Equation 18
// queries over CMoment (9-d) or CTexture (16-d) sweeping RQ and the
// index budget.
func fig6bc(cfg Config, w io.Writer, which string) error {
	var d *dataset.Data
	if which == "cmoment" {
		d = dataset.CMoment(cfg.RealPoints, cfg.Seed)
	} else {
		d = dataset.CTexture(cfg.RealPoints, cfg.Seed)
	}
	store, err := d.Store()
	if err != nil {
		return err
	}
	out := stats.NewTable(
		fmt.Sprintf("Figure 6 — %s (n=%d, d=%d)", d.Name, d.Len(), d.Dim()),
		"RQ", "#index", "query", "pruned%", "baseline")
	for _, rq := range []int{2, 4, 8, 12} {
		g, err := queries.NewEq18(d.AxisMaxes(), rq)
		if err != nil {
			return err
		}
		m, err := core.NewMulti(store)
		if err != nil {
			return err
		}
		base := runBaseline(store, genFor(g, cfg.Seed+99), cfg.Queries)
		have := 0
		for _, budget := range []int{1, 10, 50, 100} {
			if budget > have {
				added, err := g.BuildIndexes(m, budget-have, rand.New(rand.NewSource(cfg.Seed+int64(budget))))
				if err != nil {
					return err
				}
				have += added
			}
			res, err := runIndexed(m, genFor(g, cfg.Seed+99), cfg.Queries)
			if err != nil {
				return err
			}
			out.AddRow(rq, m.NumIndexes(), res.avg, 100*res.pruning, base)
		}
	}
	_, err = io.WriteString(w, out.String())
	return err
}

// fig6d times planar index construction over the three real-world
// datasets for growing budgets. The paper reports 0.12–3.11 s per
// index at full scale.
func fig6d(cfg Config, w io.Writer) error {
	sets := []*dataset.Data{
		dataset.CMoment(cfg.RealPoints, cfg.Seed),
		dataset.CTexture(cfg.RealPoints, cfg.Seed),
		dataset.Consumption(cfg.RealPoints, cfg.Seed),
	}
	out := stats.NewTable("Figure 6(d) — index construction time (total for the budget)",
		"dataset", "#index", "build", "per-index")
	for _, d := range sets {
		store, err := d.Store()
		if err != nil {
			return err
		}
		doms := make([]core.Domain, d.Dim())
		for i := range doms {
			doms[i] = core.Domain{Lo: 1, Hi: 12}
		}
		for _, budget := range []int{1, 10, 50, 100, 200} {
			m, err := core.NewMulti(store)
			if err != nil {
				return err
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			start := time.Now()
			added, err := m.SampleBudget(budget, doms, rng)
			build := time.Since(start)
			if err != nil {
				return err
			}
			if added == 0 {
				return fmt.Errorf("experiments: no indexes added for %s", d.Name)
			}
			out.AddRow(d.Name, added, build, build/time.Duration(added))
		}
	}
	_, err := io.WriteString(w, out.String())
	return err
}
