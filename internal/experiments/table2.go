package experiments

import (
	"fmt"
	"io"
	"math"

	"planar/internal/dataset"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Table 2: dataset characteristics (computed from the generators)",
		Run:   table2,
	})
}

// table2 regenerates the paper's dataset characteristics table from
// the actual workload generators, so the substitution datasets can be
// audited against the published cardinalities, dimensionalities and
// attribute ranges (paper Table 2: Indp/Corr/Anti 1M × 2–14 in
// (1,100); CMoment 68,040 × 9 in (−4.15, 4.59); CTexture 68,040 × 16
// in (−5.25, 50.21); Consumption 2,075,259 × 4 in (0, 254)).
func table2(cfg Config, w io.Writer) error {
	out := stats.NewTable(
		fmt.Sprintf("Table 2 — dataset characteristics (generated at n=%d / %d)", cfg.Points, cfg.RealPoints),
		"dataset", "#points", "#dim", "range")
	add := func(d *dataset.Data) {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < d.Dim(); i++ {
			if v := d.AxisMin(i); v < lo {
				lo = v
			}
			if v := d.AxisMax(i); v > hi {
				hi = v
			}
		}
		out.AddRow(d.Name, d.Len(), d.Dim(), fmt.Sprintf("(%.2f, %.2f)", lo, hi))
	}
	for _, kind := range dataset.Kinds {
		add(dataset.Synthetic(kind, cfg.Points, 6, cfg.Seed))
	}
	add(dataset.CMoment(cfg.RealPoints, cfg.Seed))
	add(dataset.CTexture(cfg.RealPoints, cfg.Seed))
	add(dataset.Consumption(cfg.RealPoints, cfg.Seed))
	_, err := io.WriteString(w, out.String())
	return err
}
