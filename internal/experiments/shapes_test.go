package experiments

import (
	"math/rand"
	"testing"
	"time"

	"planar/internal/dataset"
	"planar/internal/moving"
)

// TestPaperShapes asserts the paper's qualitative findings as
// regression checks, at a scale small enough for CI. If any of these
// fail after a change, the reproduction no longer reproduces.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks skipped in -short mode")
	}
	const n = 20000
	const seed = 1

	pruningAt := func(dim, rq, budget int) float64 {
		t.Helper()
		_, m, g, err := synthSetup(dataset.KindIndependent, n, dim, rq, budget, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runIndexed(m, genFor(g, seed+42), 10)
		if err != nil {
			t.Fatal(err)
		}
		return res.pruning
	}

	t.Run("PruningFallsWithRQ", func(t *testing.T) {
		// Paper Figure 9: more query randomness → less pruning.
		lo, hi := pruningAt(6, 12, 50), pruningAt(6, 2, 50)
		if hi < lo {
			t.Fatalf("pruning at RQ=2 (%v) below RQ=12 (%v)", hi, lo)
		}
		if hi < 0.9 {
			t.Fatalf("pruning at dim=6/RQ=2 is %v, paper says ~100%%", hi)
		}
	})

	t.Run("PruningGrowsWithBudget", func(t *testing.T) {
		// Paper Figure 10: more indexes → more pruning.
		one, many := pruningAt(6, 4, 1), pruningAt(6, 4, 50)
		if many < one {
			t.Fatalf("pruning with 50 indexes (%v) below 1 index (%v)", many, one)
		}
	})

	t.Run("PruningFallsWithDimension", func(t *testing.T) {
		// Paper Figures 9-10: higher dimensionality → less pruning.
		low, high := pruningAt(2, 4, 50), pruningAt(14, 4, 50)
		if low < high {
			t.Fatalf("pruning at dim=2 (%v) below dim=14 (%v)", low, high)
		}
	})

	t.Run("VerificationPeaksMidSelectivity", func(t *testing.T) {
		// Paper Figure 11: query cost peaks at mid selectivity. The
		// mechanism is the intermediate interval (the verified
		// fraction = 1 − pruning), which is deterministic — wall
		// clock at this scale is too noisy to assert on.
		_, m, g, err := synthSetup(dataset.KindIndependent, n, 6, 4, 50, seed)
		if err != nil {
			t.Fatal(err)
		}
		verifiedAt := func(ineq float64) float64 {
			gg := g
			gg.Ineq = ineq
			res, err := runIndexed(m, genFor(gg, seed+42), 10)
			if err != nil {
				t.Fatal(err)
			}
			return 1 - res.pruning
		}
		low, mid, high := verifiedAt(0.10), verifiedAt(0.50), verifiedAt(1.00)
		if mid < low || mid < high {
			t.Fatalf("no mid-selectivity verification peak: %v / %v / %v", low, mid, high)
		}
	})

	t.Run("CircularIntersectionBeatsBaseline", func(t *testing.T) {
		// Paper Figure 14(b): planar wins 2.5-75x on circular motion.
		rng := rand.New(rand.NewSource(seed))
		omegas := []float64{moving.DegPerMin(1), moving.DegPerMin(3), moving.DegPerMin(5)}
		circ, ws := moving.GenCircular(150, moving.Vec2{X: 50, Y: 50}, 1, 100, omegas, rng)
		lin := moving.GenLinear2D(150, 100, 0.1, 1, rng)
		w, err := moving.NewCircularWorkload(circ, ws, lin, []float64{10, 11, 12, 13, 14, 15})
		if err != nil {
			t.Fatal(err)
		}
		var planar, base time.Duration
		for _, tm := range []float64{10, 12, 14} {
			start := time.Now()
			got, _, err := w.At(tm, 10)
			planar += time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			start = time.Now()
			want := w.Baseline(tm, 10)
			base += time.Since(start)
			if len(got) != len(want) {
				t.Fatalf("t=%v: planar %d pairs, baseline %d", tm, len(got), len(want))
			}
		}
		if base < 2*planar {
			t.Fatalf("circular speedup only %vx (planar %v, baseline %v)",
				float64(base)/float64(planar), planar, base)
		}
	})
}
