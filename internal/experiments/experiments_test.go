package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-select",
		"ext-adaptive", "ext-constraint", "ext-count", "ext-reduce",
		"fig10", "fig11", "fig12", "fig13a", "fig13b", "fig13c",
		"fig14a", "fig14b", "fig14c",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7", "fig8", "fig9",
		"table2", "table3",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Fatalf("experiment %d is %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q lacks title or runner", e.ID)
		}
	}
	if _, ok := Find("fig7"); !ok {
		t.Fatal("Find(fig7) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find(nope) succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := PaperConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.Points = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero points accepted")
	}
	var buf bytes.Buffer
	if err := Run("fig7", bad, &buf); err == nil {
		t.Fatal("Run with bad config accepted")
	}
	if err := Run("nope", DefaultConfig(), &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes the full registry at tiny scale
// and sanity-checks the rendered output. This is the integration
// test that the whole reproduction pipeline is wired correctly.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep skipped in -short mode")
	}
	cfg := TinyConfig()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			// Every experiment renders at least one table with a
			// header separator.
			if !strings.Contains(out, "--") {
				t.Fatalf("%s output lacks a table:\n%s", e.ID, out)
			}
		})
	}
}

func TestFig14aAnswersAgree(t *testing.T) {
	// fig14a already cross-checks planar, MBR-tree and baseline pair
	// counts internally and fails on mismatch; run it at a slightly
	// larger scale to make that check meaningful.
	cfg := TinyConfig()
	cfg.MovingN = 120
	var buf bytes.Buffer
	if err := Run("fig14a", cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mbr-tree") {
		t.Fatal("fig14a output missing MBR-tree column")
	}
}
