package experiments

import (
	"fmt"
	"io"
	"time"

	"planar/internal/dataset"
	"planar/internal/scan"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Table 3: top-k nearest-neighbour time, Indp, dim=6, RQ=4, 100 indexes",
		Run:   table3,
	})
	register(Experiment{
		ID:    "ablation-select",
		Title: "Ablation: volume-minimisation vs angle-minimisation index selection",
		Run:   ablationSelect,
	})
}

// table3 reproduces the top-k experiment: how many points the planar
// method examines (checked/total) and the query time versus a scan,
// for k in {50, 1000, 10000}. The paper reports ~11–13% checked and
// ~2.5× speed-up.
func table3(cfg Config, w io.Writer) error {
	store, m, g, err := synthSetup(dataset.KindIndependent, cfg.Points, 6, 4, 100, cfg.Seed)
	if err != nil {
		return err
	}
	out := stats.NewTable(
		fmt.Sprintf("Table 3 — top-k nearest neighbours (Indp, n=%d, dim=6, RQ=4, #index=100)", cfg.Points),
		"k", "checked/total%", "planar", "baseline")
	ks := []int{50, 1000, 10000}
	for _, k := range ks {
		if k > cfg.Points {
			k = cfg.Points
		}
		gen := genFor(g, cfg.Seed+42)
		var planarTotal time.Duration
		var checked float64
		for i := 0; i < cfg.Queries; i++ {
			q := gen()
			start := time.Now()
			_, st, err := m.TopK(q, k)
			planarTotal += time.Since(start)
			if err != nil {
				return err
			}
			checked += float64(st.Accepted+st.Verified) / float64(st.N)
		}
		gen = genFor(g, cfg.Seed+42)
		var baseTotal time.Duration
		for i := 0; i < cfg.Queries; i++ {
			q := gen()
			start := time.Now()
			scan.TopK(store, q, k)
			baseTotal += time.Since(start)
		}
		nq := time.Duration(cfg.Queries)
		out.AddRow(k, 100*checked/float64(cfg.Queries), planarTotal/nq, baseTotal/nq)
	}
	_, err = io.WriteString(w, out.String())
	return err
}

// ablationSelect compares the paper's two best-index selection
// heuristics (Section 5.1) on the same index set. The paper states
// volume minimisation "usually outperforms" angle minimisation.
func ablationSelect(cfg Config, w io.Writer) error {
	out := stats.NewTable(
		fmt.Sprintf("Ablation — best-index selection (n=%d, RQ=8, #index=30)", cfg.Points),
		"dim", "dataset", "volume", "vol-pruned%", "angle", "ang-pruned%")
	for _, dim := range []int{6, 10} {
		for _, kind := range dataset.Kinds {
			_, m, g, err := synthSetup(kind, cfg.Points, dim, 8, 30, cfg.Seed)
			if err != nil {
				return err
			}
			// Same Multi, switched selection: build an angle variant
			// sharing the store and normals.
			mAngle, err := cloneWithSelection(m)
			if err != nil {
				return err
			}
			resV, err := runIndexed(m, genFor(g, cfg.Seed+42), cfg.Queries)
			if err != nil {
				return err
			}
			resA, err := runIndexed(mAngle, genFor(g, cfg.Seed+42), cfg.Queries)
			if err != nil {
				return err
			}
			out.AddRow(dim, kind.String(), resV.avg, 100*resV.pruning, resA.avg, 100*resA.pruning)
		}
	}
	_, err := io.WriteString(w, out.String())
	return err
}
