package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"planar/internal/adaptive"
	"planar/internal/constraint"
	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/queries"
	"planar/internal/reduce"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "ext-count",
		Title: "Extension: O(log n) COUNT(*) and selectivity bounds via order statistics",
		Run:   extCount,
	})
	register(Experiment{
		ID:    "ext-constraint",
		Title: "Extension: linear constraint (conjunctive) queries over planar indexes",
		Run:   extConstraint,
	})
	register(Experiment{
		ID:    "ext-adaptive",
		Title: "Extension: workload-adaptive index tuning (the paper's future work)",
		Run:   extAdaptive,
	})
	register(Experiment{
		ID:    "ext-reduce",
		Title: "Extension: PCA dimensionality-reduction filter (the paper's future work)",
		Run:   extReduce,
	})
}

// extReduce runs the exact PCA filter on correlated high-dimensional
// data — the regime the paper's future-work remark targets — and
// compares against the full-dimension scan.
func extReduce(cfg Config, w io.Writer) error {
	d := dataset.Correlated(cfg.Points, 10, cfg.Seed)
	store, err := d.Store()
	if err != nil {
		return err
	}
	g, err := queries.NewEq18(d.AxisMaxes(), 4)
	if err != nil {
		return err
	}
	out := stats.NewTable(
		fmt.Sprintf("Extension — PCA filter (Corr, n=%d, d=10, RQ=4)", cfg.Points),
		"components", "varexpl%", "filter", "pruned%", "scan")
	for _, r := range []int{1, 2, 4} {
		f, err := reduce.NewFilter(store, r)
		if err != nil {
			return err
		}
		gen := genFor(g, cfg.Seed+42)
		var filterT time.Duration
		var pruned float64
		for i := 0; i < cfg.Queries; i++ {
			q := gen()
			start := time.Now()
			st, err := f.Inequality(q, func(uint32) bool { return true })
			filterT += time.Since(start)
			if err != nil {
				return err
			}
			pruned += st.PruningFraction()
		}
		base := runBaseline(store, genFor(g, cfg.Seed+42), cfg.Queries)
		nq := time.Duration(cfg.Queries)
		out.AddRow(f.Reducer().Components(), 100*f.VarianceExplained(),
			filterT/nq, 100*pruned/float64(cfg.Queries), base)
	}
	_, err = io.WriteString(w, out.String())
	return err
}

// extCount compares exact COUNT(*) through the index (order
// statistics + II verification) against counting by scan, and shows
// the width of the zero-cost selectivity bounds.
func extCount(cfg Config, w io.Writer) error {
	store, m, g, err := synthSetup(dataset.KindIndependent, cfg.Points, 6, 4, 100, cfg.Seed)
	if err != nil {
		return err
	}
	out := stats.NewTable(
		fmt.Sprintf("Extension — COUNT(*) (Indp, n=%d, dim=6, RQ=4, #index=100)", cfg.Points),
		"metric", "value")
	gen := genFor(g, cfg.Seed+42)
	var indexT, scanT time.Duration
	var width float64
	for i := 0; i < cfg.Queries; i++ {
		q := gen()
		start := time.Now()
		cnt, _, err := m.Count(q)
		indexT += time.Since(start)
		if err != nil {
			return err
		}
		lo, hi, err := m.SelectivityBounds(q)
		if err != nil {
			return err
		}
		if lo > cnt || hi < cnt {
			return fmt.Errorf("experiments: bounds [%d,%d] miss count %d", lo, hi, cnt)
		}
		width += float64(hi-lo) / float64(store.Len())
		start = time.Now()
		scanCnt := 0
		store.Each(func(_ uint32, v []float64) bool {
			if q.Satisfies(v) {
				scanCnt++
			}
			return true
		})
		scanT += time.Since(start)
		if scanCnt != cnt {
			return fmt.Errorf("experiments: index count %d, scan count %d", cnt, scanCnt)
		}
	}
	nq := time.Duration(cfg.Queries)
	out.AddRow("indexed COUNT(*)", indexT/nq)
	out.AddRow("scan COUNT(*)", scanT/nq)
	out.AddRow("avg bounds width (% of n)", 100*width/float64(cfg.Queries))
	_, err = io.WriteString(w, out.String())
	return err
}

// extConstraint runs conjunctions of three half-spaces and compares
// the bound-driven evaluator with a full scan.
func extConstraint(cfg Config, w io.Writer) error {
	_, m, _, err := synthSetup(dataset.KindIndependent, cfg.Points, 3, 4, 30, cfg.Seed)
	if err != nil {
		return err
	}
	// Negative-octant indexes so GE constraints are also indexable.
	negDoms := []core.Domain{{Lo: -4, Hi: -1}, {Lo: -4, Hi: -1}, {Lo: -4, Hi: -1}}
	if _, err := m.SampleBudget(30, negDoms, rand.New(rand.NewSource(cfg.Seed+5))); err != nil {
		return err
	}
	ev, err := constraint.NewEvaluator(m)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	out := stats.NewTable(
		fmt.Sprintf("Extension — conjunctive queries (Indp, n=%d, dim=3)", cfg.Points),
		"metric", "value")
	var evalT, scanT time.Duration
	var candidates, results int
	for i := 0; i < cfg.Queries; i++ {
		c := constraint.Conjunction{}.
			And(core.Query{A: []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3, 1 + rng.Float64()*3}, B: 150 + rng.Float64()*150, Op: core.LE}).
			And(core.Query{A: []float64{1, 2, 1}, B: 60 + rng.Float64()*60, Op: core.GE}).
			And(core.Query{A: []float64{2, 1, 3}, B: 200 + rng.Float64()*200, Op: core.LE})
		start := time.Now()
		ids, plan, err := ev.IDs(c)
		evalT += time.Since(start)
		if err != nil {
			return err
		}
		candidates += plan.Candidates
		results += plan.Results
		start = time.Now()
		want, err := constraint.Scan(m.Store(), c)
		scanT += time.Since(start)
		if err != nil {
			return err
		}
		if len(ids) != len(want) {
			return fmt.Errorf("experiments: conjunction answer %d vs scan %d", len(ids), len(want))
		}
	}
	nq := time.Duration(cfg.Queries)
	out.AddRow("evaluator", evalT/nq)
	out.AddRow("scan", scanT/nq)
	out.AddRow("avg candidates", float64(candidates)/float64(cfg.Queries))
	out.AddRow("avg results", float64(results)/float64(cfg.Queries))
	_, err = io.WriteString(w, out.String())
	return err
}

// extAdaptive replays a drifting workload through the adaptive tuner
// and reports pruning before and after it locks on.
func extAdaptive(cfg Config, w io.Writer) error {
	d := dataset.Independent(cfg.Points, 4, cfg.Seed)
	store, err := d.Store()
	if err != nil {
		return err
	}
	m, err := core.NewMulti(store)
	if err != nil {
		return err
	}
	tn, err := adaptive.NewTuner(m, 4, 20)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 42))
	out := stats.NewTable(
		fmt.Sprintf("Extension — adaptive index tuning (Indp, n=%d, dim=4, budget=4)", cfg.Points),
		"phase", "queries", "avg time", "avg pruned%", "retunes")
	phase := func(name string, dir []float64, n int) error {
		var total time.Duration
		var pruned float64
		for i := 0; i < n; i++ {
			a := make([]float64, 4)
			for j, v := range dir {
				a[j] = v * (1 + 0.002*rng.Float64())
			}
			q := core.Query{A: a, B: 0.25 * 100 * (a[0] + a[1] + a[2] + a[3]), Op: core.LE}
			start := time.Now()
			_, st, err := tn.InequalityIDs(q)
			total += time.Since(start)
			if err != nil {
				return err
			}
			pruned += st.PruningFraction()
		}
		out.AddRow(name, n, total/time.Duration(n), 100*pruned/float64(n), tn.Retunes())
		return nil
	}
	if err := phase("direction A (cold)", []float64{2, 1, 3, 1}, 25); err != nil {
		return err
	}
	if err := phase("direction A (tuned)", []float64{2, 1, 3, 1}, 50); err != nil {
		return err
	}
	if err := phase("drift to B", []float64{1, 4, 1, 2}, 25); err != nil {
		return err
	}
	if err := phase("direction B (tuned)", []float64{1, 4, 1, 2}, 50); err != nil {
		return err
	}
	_, err = io.WriteString(w, out.String())
	return err
}
