package experiments

import (
	"testing"

	"planar/internal/dataset"
	"planar/internal/scan"
)

func TestSynthSetupAndHelpers(t *testing.T) {
	store, m, g, err := synthSetup(dataset.KindCorrelated, 500, 3, 4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != 500 || store.Dim() != 3 {
		t.Fatalf("store %d×%d", store.Len(), store.Dim())
	}
	if m.NumIndexes() == 0 {
		t.Fatal("no indexes built")
	}
	if g.RQ != 4 || g.Dim() != 3 {
		t.Fatalf("generator %+v", g)
	}

	// genFor is deterministic per seed.
	g1, g2 := genFor(g, 42), genFor(g, 42)
	for i := 0; i < 5; i++ {
		a, b := g1(), g2()
		if a.B != b.B {
			t.Fatal("genFor not deterministic")
		}
		for j := range a.A {
			if a.A[j] != b.A[j] {
				t.Fatal("genFor not deterministic")
			}
		}
	}

	// runIndexed aggregates sane statistics and matches the scan.
	res, err := runIndexed(m, genFor(g, 7), 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.avg <= 0 {
		t.Fatal("non-positive average time")
	}
	if res.pruning < 0 || res.pruning > 1 {
		t.Fatalf("pruning=%v", res.pruning)
	}
	if res.fellBack != 0 {
		t.Fatalf("fellBack=%d", res.fellBack)
	}
	gen := genFor(g, 7)
	var matched float64
	for i := 0; i < 5; i++ {
		matched += float64(scan.Count(store, gen()))
	}
	if matched/5 != res.matched {
		t.Fatalf("matched %v vs scan %v", res.matched, matched/5)
	}
	if d := runBaseline(store, genFor(g, 7), 3); d <= 0 {
		t.Fatalf("baseline time %v", d)
	}

	// cloneWithSelection mirrors the index set.
	angle, err := cloneWithSelection(m)
	if err != nil {
		t.Fatal(err)
	}
	if angle.NumIndexes() != m.NumIndexes() {
		t.Fatalf("clone has %d indexes, original %d", angle.NumIndexes(), m.NumIndexes())
	}
	q := genFor(g, 9)()
	a, _, err := m.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := angle.InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("clone answers differently")
	}
}

func TestSynthSetupErrors(t *testing.T) {
	if _, _, _, err := synthSetup(dataset.KindIndependent, 100, 2, 0, 5, 1); err == nil {
		t.Fatal("RQ=0 accepted")
	}
}
