package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"planar/internal/core"
	"planar/internal/dataset"
	"planar/internal/queries"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "Figure 7: query time, synthetic datasets, dim × RQ, 100 indexes",
		Run:   func(cfg Config, w io.Writer) error { return synthSweepRQ(cfg, w, false) },
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Figure 8: query time, synthetic datasets, dim × #index, RQ=4",
		Run:   func(cfg Config, w io.Writer) error { return synthSweepBudget(cfg, w, false) },
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: pruning percentage, synthetic datasets, dim × RQ, 100 indexes",
		Run:   func(cfg Config, w io.Writer) error { return synthSweepRQ(cfg, w, true) },
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: pruning percentage, synthetic datasets, dim × #index, RQ=4",
		Run:   func(cfg Config, w io.Writer) error { return synthSweepBudget(cfg, w, true) },
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: selectivity and query time vs inequality parameter",
		Run:   fig11,
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: scalability with the number of data points",
		Run:   fig12,
	})
}

var (
	sweepDims    = []int{2, 6, 10, 14}
	sweepRQs     = []int{2, 4, 8, 12}
	sweepBudgets = []int{1, 10, 50, 100}
)

// synthSweepRQ reproduces Figures 7 (times) and 9 (pruning): 100
// indexes, dimensions 2–14, RQ 2–12, all three synthetic
// distributions.
func synthSweepRQ(cfg Config, w io.Writer, pruningOnly bool) error {
	what := "query time"
	if pruningOnly {
		what = "pruning %"
	}
	for _, dim := range sweepDims {
		out := stats.NewTable(
			fmt.Sprintf("dim=%d (%s, n=%d, #index=100)", dim, what, cfg.Points),
			"RQ", "indp", "corr", "anti", "baseline")
		for _, rq := range sweepRQs {
			row := []interface{}{rq}
			var base interface{}
			for _, kind := range dataset.Kinds {
				store, m, g, err := synthSetup(kind, cfg.Points, dim, rq, 100, cfg.Seed)
				if err != nil {
					return err
				}
				res, err := runIndexed(m, genFor(g, cfg.Seed+42), cfg.Queries)
				if err != nil {
					return err
				}
				if pruningOnly {
					row = append(row, 100*res.pruning)
					base = "-"
				} else {
					row = append(row, res.avg)
					if kind == dataset.KindIndependent {
						base = runBaseline(store, genFor(g, cfg.Seed+42), cfg.Queries)
					}
				}
			}
			row = append(row, base)
			out.AddRow(row...)
		}
		if _, err := io.WriteString(w, out.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// synthSweepBudget reproduces Figures 8 (times) and 10 (pruning):
// RQ=4, budgets 1–100.
func synthSweepBudget(cfg Config, w io.Writer, pruningOnly bool) error {
	what := "query time"
	if pruningOnly {
		what = "pruning %"
	}
	const rq = 4
	for _, dim := range sweepDims {
		out := stats.NewTable(
			fmt.Sprintf("dim=%d (%s, n=%d, RQ=%d)", dim, what, cfg.Points, rq),
			"#index", "indp", "corr", "anti", "baseline")
		type state struct {
			store *core.PointStore
			m     *core.Multi
			g     queries.Eq18
			have  int
		}
		var sts []*state
		for _, kind := range dataset.Kinds {
			store, m, g, err := synthSetup(kind, cfg.Points, dim, rq, 0, cfg.Seed)
			if err != nil {
				return err
			}
			sts = append(sts, &state{store: store, m: m, g: g})
		}
		for _, budget := range sweepBudgets {
			row := []interface{}{budget}
			var base interface{} = "-"
			for si, st := range sts {
				if budget > st.have {
					added, err := st.g.BuildIndexes(st.m, budget-st.have,
						rand.New(rand.NewSource(cfg.Seed+int64(budget))))
					if err != nil {
						return err
					}
					st.have += added
				}
				res, err := runIndexed(st.m, genFor(st.g, cfg.Seed+42), cfg.Queries)
				if err != nil {
					return err
				}
				if pruningOnly {
					row = append(row, 100*res.pruning)
				} else {
					row = append(row, res.avg)
					if si == 0 {
						base = runBaseline(st.store, genFor(st.g, cfg.Seed+42), cfg.Queries)
					}
				}
			}
			row = append(row, base)
			out.AddRow(row...)
		}
		if _, err := io.WriteString(w, out.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// fig11 sweeps the inequality parameter from 0.10 to 1.00 at RQ=4
// and 100 indexes, reporting selectivity and query time. The paper
// observes time peaking around 0.50–0.75.
func fig11(cfg Config, w io.Writer) error {
	ineqs := []float64{0.10, 0.25, 0.50, 0.75, 1.00}
	for _, dim := range []int{6, 10} {
		out := stats.NewTable(
			fmt.Sprintf("Figure 11 — dim=%d (n=%d, RQ=4, #index=100)", dim, cfg.Points),
			"ineq", "sel-indp%", "t-indp", "sel-corr%", "t-corr", "sel-anti%", "t-anti", "baseline")
		type state struct {
			store *core.PointStore
			m     *core.Multi
			g     queries.Eq18
		}
		var sts []*state
		for _, kind := range dataset.Kinds {
			store, m, g, err := synthSetup(kind, cfg.Points, dim, 4, 100, cfg.Seed)
			if err != nil {
				return err
			}
			sts = append(sts, &state{store, m, g})
		}
		for _, ineq := range ineqs {
			row := []interface{}{ineq}
			var base interface{}
			for si, st := range sts {
				g := st.g
				g.Ineq = ineq
				res, err := runIndexed(st.m, genFor(g, cfg.Seed+42), cfg.Queries)
				if err != nil {
					return err
				}
				row = append(row, 100*res.matched/float64(st.store.Len()), res.avg)
				if si == 0 {
					base = runBaseline(st.store, genFor(g, cfg.Seed+42), cfg.Queries)
				}
			}
			row = append(row, base)
			out.AddRow(row...)
		}
		if _, err := io.WriteString(w, out.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// fig12 measures build and query time while growing the dataset from
// 10% to 100% of cfg.Points (dim=6, RQ=4). Index time should grow
// loglinearly and query time sublinearly.
func fig12(cfg Config, w io.Writer) error {
	fractions := []float64{0.1, 0.3, 0.5, 0.7, 1.0}
	budgets := []int{1, 10, 50, 100}

	build := stats.NewTable(
		fmt.Sprintf("Figure 12(a) — index build time (dim=6, up to n=%d)", cfg.Points),
		"n", "#ind=1", "#ind=10", "#ind=50", "#ind=100")
	type qrow struct {
		kind dataset.Kind
		tbl  *stats.Table
	}
	var qtables []qrow
	for _, kind := range dataset.Kinds {
		qtables = append(qtables, qrow{kind, stats.NewTable(
			fmt.Sprintf("Figure 12 — query time, %s (dim=6, RQ=4)", kind),
			"n", "#ind=1", "#ind=10", "#ind=50", "#ind=100", "baseline")})
	}

	for _, frac := range fractions {
		n := int(frac * float64(cfg.Points))
		if n < 10 {
			n = 10
		}
		buildRow := []interface{}{n}
		measuredBuild := false
		for qi, kind := range dataset.Kinds {
			row := []interface{}{n}
			store, _, g, err := synthSetup(kind, n, 6, 4, 0, cfg.Seed)
			if err != nil {
				return err
			}
			for _, budget := range budgets {
				m, err := core.NewMulti(store)
				if err != nil {
					return err
				}
				timer := stats.Timer{}
				timer.Measure(func() {
					_, err = g.BuildIndexes(m, budget, rand.New(rand.NewSource(cfg.Seed+int64(budget))))
				})
				if err != nil {
					return err
				}
				if !measuredBuild {
					buildRow = append(buildRow, timer.Mean())
				}
				res, err := runIndexed(m, genFor(g, cfg.Seed+42), cfg.Queries)
				if err != nil {
					return err
				}
				row = append(row, res.avg)
			}
			measuredBuild = true
			row = append(row, runBaseline(store, genFor(g, cfg.Seed+42), cfg.Queries))
			qtables[qi].tbl.AddRow(row...)
		}
		build.AddRow(buildRow...)
	}
	if _, err := io.WriteString(w, build.String()+"\n"); err != nil {
		return err
	}
	for _, q := range qtables {
		if _, err := io.WriteString(w, q.tbl.String()+"\n"); err != nil {
			return err
		}
	}
	return nil
}
