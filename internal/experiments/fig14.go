package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"planar/internal/mbrtree"
	"planar/internal/moving"
	"planar/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "fig14a",
		Title: "Figure 14(a): moving-object intersection, linear motion (baseline vs planar vs MBR-tree)",
		Run:   fig14a,
	})
	register(Experiment{
		ID:    "fig14b",
		Title: "Figure 14(b): moving-object intersection, circular motion (baseline vs planar)",
		Run:   fig14b,
	})
	register(Experiment{
		ID:    "fig14c",
		Title: "Figure 14(c): moving-object intersection, accelerating objects (baseline vs planar)",
		Run:   fig14c,
	})
}

var movingTimes = []float64{10, 11, 11.5, 12, 13, 14, 15}

var movingSlots = []float64{10, 11, 12, 13, 14, 15}

// fig14a: two 5K sets of linearly moving objects in 1000×1000 mile²,
// speeds 0.1–1 mile/min, intersection distance 10 miles, queried at
// future minutes 10–15. The paper finds the planar index comparable
// to the MBR-tree on exact slots, at most ~4× slower between slots,
// and both far ahead of the 25M-pair baseline.
func fig14a(cfg Config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	setA := moving.GenLinear2D(cfg.MovingN, 1000, 0.1, 1, rng)
	setB := moving.GenLinear2D(cfg.MovingN, 1000, 0.1, 1, rng)
	space := &moving.LinearSpace{A: setA, B: setB}

	buildStart := time.Now()
	join, err := moving.NewJoin(space, movingSlots)
	if err != nil {
		return err
	}
	planarBuild := time.Since(buildStart)

	buildStart = time.Now()
	tree, err := mbrtree.Build(setB)
	if err != nil {
		return err
	}
	mbrBuild := time.Since(buildStart)

	out := stats.NewTable(
		fmt.Sprintf("Figure 14(a) — linear motion, %d×%d pairs, S=10 (planar build %s, MBR build %s)",
			cfg.MovingN, cfg.MovingN, planarBuild, mbrBuild),
		"t(min)", "baseline", "planar", "mbr-tree", "pairs")
	const s = 10.0
	for _, t := range movingTimes {
		start := time.Now()
		basePairs := moving.Baseline(space, t, s)
		baseT := time.Since(start)

		start = time.Now()
		pPairs, _, err := join.AtPairs(t, s)
		if err != nil {
			return err
		}
		planarT := time.Since(start)

		start = time.Now()
		mPairs := tree.Join(setA, t, s)
		mbrT := time.Since(start)

		if len(pPairs) != len(basePairs) || len(mPairs) != len(basePairs) {
			return fmt.Errorf("experiments: answer mismatch at t=%v: baseline %d planar %d mbr %d",
				t, len(basePairs), len(pPairs), len(mPairs))
		}
		out.AddRow(t, baseT, planarT, mbrT, len(basePairs))
	}
	_, err = io.WriteString(w, out.String())
	return err
}

// fig14b: circular objects (radius 1–100 within a 100×100 mile²
// area, angular velocity 1–5 degree/min) against linear movers,
// S=10 miles. No spatio-temporal comparator applies; the paper
// reports 2.5–75× over the baseline.
func fig14b(cfg Config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	omegas := []float64{
		moving.DegPerMin(1), moving.DegPerMin(2), moving.DegPerMin(3),
		moving.DegPerMin(4), moving.DegPerMin(5),
	}
	circ, ws := moving.GenCircular(cfg.MovingN, moving.Vec2{X: 50, Y: 50}, 1, 100, omegas, rng)
	lin := moving.GenLinear2D(cfg.MovingN, 100, 0.1, 1, rng)

	buildStart := time.Now()
	work, err := moving.NewCircularWorkload(circ, ws, lin, movingSlots)
	if err != nil {
		return err
	}
	build := time.Since(buildStart)

	out := stats.NewTable(
		fmt.Sprintf("Figure 14(b) — circular motion, %d×%d pairs, %d ω-groups, S=10 (build %s)",
			cfg.MovingN, cfg.MovingN, work.NumGroups(), build),
		"t(min)", "baseline", "planar", "pairs")
	const s = 10.0
	for _, t := range movingTimes {
		start := time.Now()
		basePairs := work.Baseline(t, s)
		baseT := time.Since(start)

		start = time.Now()
		pPairs, _, err := work.At(t, s)
		if err != nil {
			return err
		}
		planarT := time.Since(start)
		if len(pPairs) != len(basePairs) {
			return fmt.Errorf("experiments: answer mismatch at t=%v: baseline %d planar %d",
				t, len(basePairs), len(pPairs))
		}
		out.AddRow(t, baseT, planarT, len(basePairs))
	}
	_, err = io.WriteString(w, out.String())
	return err
}

// fig14c: 3-D accelerating objects (speeds 0.1–1 mile/min,
// accelerations 0.01–0.05 mile/min²) against linear movers in a
// 1000³ mile³ cube, S=10. The paper reports 25–50× over the
// baseline.
func fig14c(cfg Config, w io.Writer) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	acc := moving.GenAccel3D(cfg.MovingN, 1000, 0.1, 1, 0.01, 0.05, rng)
	lin := moving.GenLinear3D(cfg.MovingN, 1000, 0.1, 1, rng)
	space := &moving.AccelSpace{A: acc, L: lin}

	buildStart := time.Now()
	join, err := moving.NewJoin(space, movingSlots)
	if err != nil {
		return err
	}
	build := time.Since(buildStart)

	out := stats.NewTable(
		fmt.Sprintf("Figure 14(c) — accelerating objects, %d×%d pairs, S=10 (build %s)",
			cfg.MovingN, cfg.MovingN, build),
		"t(min)", "baseline", "planar", "pairs")
	const s = 10.0
	for _, t := range movingTimes {
		start := time.Now()
		basePairs := moving.Baseline(space, t, s)
		baseT := time.Since(start)

		start = time.Now()
		pPairs, _, err := join.AtPairs(t, s)
		if err != nil {
			return err
		}
		planarT := time.Since(start)
		if len(pPairs) != len(basePairs) {
			return fmt.Errorf("experiments: answer mismatch at t=%v: baseline %d planar %d",
				t, len(basePairs), len(pPairs))
		}
		out.AddRow(t, baseT, planarT, len(basePairs))
	}
	_, err = io.WriteString(w, out.String())
	return err
}
