package sqlfunc

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/dataset"
)

func TestParseAndEval(t *testing.T) {
	tbl, err := NewTable("t", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert([]float64{2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		src  string
		want float64
	}{
		{"a", 2},
		{"A", 2}, // case-insensitive
		{"a+b", 5},
		{"a*b+c", 10},
		{"a*(b+c)", 14},
		{"a-b-c", -5}, // left-assoc
		{"12/a/b", 2}, // left-assoc
		{"-a", -2},
		{"--a", 2},
		{"a^b", 8},
		{"2^b^a", 512}, // right-assoc: 2^(3^2)
		{"-a^2", -4},   // power binds tighter than unary minus
		{"1.5e1 + a", 17},
		{"a * b - c / 2", 4},
		{" a\t+\nb ", 5},
		{"3", 3},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got, err := tbl.Eval(e, 0)
		if err != nil {
			t.Errorf("Eval(%q): %v", c.src, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%q)=%v want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "a+", "(a", "a)", "a b", "*a", "1..2", "a+()", "a @ b"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("a+")
}

func TestExprColumns(t *testing.T) {
	e := MustParse("Voltage * Current + voltage - 3")
	cols := e.Columns()
	if len(cols) != 2 || cols[0] != "voltage" || cols[1] != "current" {
		t.Fatalf("Columns=%v", cols)
	}
	if e.String() != "Voltage * Current + voltage - 3" {
		t.Fatalf("String=%q", e.String())
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("t", nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := NewTable("t", []string{"a", "A"}); err == nil {
		t.Error("duplicate columns accepted")
	}
	if _, err := NewTable("t", []string{"a", " "}); err == nil {
		t.Error("blank column accepted")
	}
	tbl, _ := NewTable("t", []string{"x", "y"})
	if err := tbl.Insert([]float64{1}); err == nil {
		t.Error("short row accepted")
	}
	tbl.Insert([]float64{1, 2})
	if v, err := tbl.Value(0, "Y"); err != nil || v != 2 {
		t.Errorf("Value=%v err=%v", v, err)
	}
	if _, err := tbl.Value(0, "zzz"); err == nil {
		t.Error("unknown column accepted")
	}
	if tbl.Name() != "t" || len(tbl.Columns()) != 2 || tbl.Len() != 1 {
		t.Error("table accessors wrong")
	}
	e := MustParse("x + zzz")
	if _, err := tbl.Eval(e, 0); err == nil {
		t.Error("expression over unknown column accepted")
	}
}

func TestFromData(t *testing.T) {
	d := dataset.Consumption(100, 1)
	tbl, err := FromData(d, dataset.ConsumptionColumns)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len=%d", tbl.Len())
	}
	if _, err := FromData(d, []string{"only_one"}); err == nil {
		t.Error("wrong column count accepted")
	}
}

func TestFunctionIndexValidation(t *testing.T) {
	tbl, _ := NewTable("t", []string{"a", "b"})
	if _, err := NewFunctionIndex(nil, []string{"a"}); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewFunctionIndex(tbl, nil); err == nil {
		t.Error("no expressions accepted")
	}
	if _, err := NewFunctionIndex(tbl, []string{"a"}); err == nil {
		t.Error("empty table accepted")
	}
	tbl.Insert([]float64{1, 2})
	if _, err := NewFunctionIndex(tbl, []string{"a+"}); err == nil {
		t.Error("bad expression accepted")
	}
	if _, err := NewFunctionIndex(tbl, []string{"zzz"}); err == nil {
		t.Error("unknown column accepted")
	}
	fi, err := NewFunctionIndex(tbl, []string{"a", "a*b"})
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Exprs(); len(got) != 2 || got[1] != "a*b" {
		t.Fatalf("Exprs=%v", got)
	}
	if fi.Store().Len() != 1 || fi.Multi() == nil {
		t.Error("store/multi wiring broken")
	}
	if _, _, err := fi.Select([]float64{1}, 0, core.LE); err == nil {
		t.Error("wrong parameter count accepted")
	}
}

func sortIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCriticalConsumeMatchesScanAndTruth(t *testing.T) {
	d := dataset.Consumption(5000, 11)
	tbl, err := FromData(d, dataset.ConsumptionColumns)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	cc, err := NewCriticalConsume(tbl, "active_power", "voltage", "current",
		core.Domain{Lo: 0.1, Hi: 1.0}, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []float64{0.15, 0.3, 0.5, 0.75, 0.99} {
		ids, st, err := cc.Query(threshold)
		if err != nil {
			t.Fatal(err)
		}
		base := cc.QueryScan(threshold)
		if !equal(sortIDs(ids), sortIDs(base)) {
			t.Fatalf("threshold %v: index %d rows vs scan %d rows", threshold, len(ids), len(base))
		}
		if st.FellBack {
			t.Fatalf("threshold %v: fell back to scan, no compatible index", threshold)
		}
		// Ground truth: every returned row has power factor ≤ threshold.
		for _, id := range ids {
			active, _ := tbl.Value(int(id), "active_power")
			voltage, _ := tbl.Value(int(id), "voltage")
			current, _ := tbl.Value(int(id), "current")
			if active-threshold*voltage*current/1000 > 1e-9 {
				t.Fatalf("row %d does not satisfy the SQL predicate", id)
			}
		}
		// The sweep must have non-trivial, varying selectivity —
		// otherwise the units are off and the workload degenerates.
		if threshold == 0.3 && (len(ids) == 0 || len(ids) == tbl.Len()) {
			t.Fatalf("threshold 0.3 selected %d of %d rows", len(ids), tbl.Len())
		}
	}
	if _, _, err := cc.Query(0); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, _, err := cc.Query(-1); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestCriticalConsumeValidation(t *testing.T) {
	d := dataset.Consumption(100, 12)
	tbl, _ := FromData(d, dataset.ConsumptionColumns)
	rng := rand.New(rand.NewSource(2))
	if _, err := NewCriticalConsume(tbl, "active_power", "voltage", "current",
		core.Domain{Lo: -1, Hi: 1}, 10, rng); err == nil {
		t.Error("zero-straddling threshold domain accepted")
	}
	if _, err := NewCriticalConsume(tbl, "active_power", "voltage", "current",
		core.Domain{Lo: 0, Hi: 1}, 10, rng); err == nil {
		t.Error("threshold domain touching 0 accepted")
	}
	if _, err := NewCriticalConsume(tbl, "nope", "voltage", "current",
		core.Domain{Lo: 0.1, Hi: 1}, 10, rng); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestGenericSelectGE(t *testing.T) {
	tbl, _ := NewTable("t", []string{"x", "y"})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tbl.Insert([]float64{rng.Float64() * 10, rng.Float64() * 10})
	}
	fi, err := NewFunctionIndex(tbl, []string{"x*x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	// GE query with positive params normalises to the all-negative
	// octant.
	doms := []core.Domain{{Lo: -3, Hi: -1}, {Lo: -3, Hi: -1}}
	if _, err := fi.AddIndexes(20, doms, rng); err != nil {
		t.Fatal(err)
	}
	params := []float64{2, 1.5}
	ids, st, err := fi.Select(params, 60, core.GE)
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatal("GE query fell back despite negative-octant indexes")
	}
	if !equal(sortIDs(ids), sortIDs(fi.SelectScan(params, 60, core.GE))) {
		t.Fatal("GE select mismatched scan")
	}
}
