// Package sqlfunc implements the complex-SQL-function application of
// the paper (Example 1): an in-memory relation, a small arithmetic
// expression language over its columns, and a parameterised function
// index that answers predicates of the form
//
//	param_1·expr_1(row) + … + param_k·expr_k(row) ≤ bound
//
// through the planar index. The expressions (the φ part) are fixed
// when the index is created — like Oracle's function-based indexes —
// while the parameters arrive with each query, which is precisely
// what plain function-based indexes cannot support and the planar
// index can.
package sqlfunc

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Expr is a compiled arithmetic expression over table columns.
type Expr struct {
	src  string
	root exprNode
	cols []string // referenced column names, in first-use order
}

// String returns the source text.
func (e *Expr) String() string { return e.src }

// Columns returns the column names the expression references.
func (e *Expr) Columns() []string { return append([]string(nil), e.cols...) }

type exprNode interface {
	eval(row []float64, colIdx map[string]int) float64
}

type numNode float64

func (n numNode) eval([]float64, map[string]int) float64 { return float64(n) }

type colNode string

func (c colNode) eval(row []float64, colIdx map[string]int) float64 {
	return row[colIdx[string(c)]]
}

type binNode struct {
	op   byte
	l, r exprNode
}

func (b binNode) eval(row []float64, colIdx map[string]int) float64 {
	l := b.l.eval(row, colIdx)
	r := b.r.eval(row, colIdx)
	switch b.op {
	case '+':
		return l + r
	case '-':
		return l - r
	case '*':
		return l * r
	case '/':
		return l / r
	case '^':
		return math.Pow(l, r)
	default:
		panic("sqlfunc: unknown operator " + string(b.op))
	}
}

type negNode struct{ x exprNode }

func (n negNode) eval(row []float64, colIdx map[string]int) float64 {
	return -n.x.eval(row, colIdx)
}

// Parse compiles an expression. Supported syntax: float literals,
// column identifiers ([A-Za-z_][A-Za-z0-9_]*), binary + - * / ^
// (power binds tightest, then * /, then + -), unary minus, and
// parentheses. Column names are matched case-insensitively against
// the table at evaluation time.
func Parse(src string) (*Expr, error) {
	p := &parser{src: src}
	p.next()
	root, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if p.tok != tokEOF {
		return nil, fmt.Errorf("sqlfunc: unexpected %q at offset %d in %q", p.text, p.pos, src)
	}
	e := &Expr{src: src, root: root}
	seen := map[string]bool{}
	var walk func(n exprNode)
	walk = func(n exprNode) {
		switch v := n.(type) {
		case colNode:
			if !seen[string(v)] {
				seen[string(v)] = true
				e.cols = append(e.cols, string(v))
			}
		case binNode:
			walk(v.l)
			walk(v.r)
		case negNode:
			walk(v.x)
		}
	}
	walk(root)
	return e, nil
}

// MustParse is Parse for static expressions; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type token int

const (
	tokEOF token = iota
	tokNum
	tokIdent
	tokOp
	tokLParen
	tokRParen
)

type parser struct {
	src  string
	pos  int // offset of current token
	off  int // scan offset
	tok  token
	text string
	num  float64
}

func (p *parser) next() {
	for p.off < len(p.src) && (p.src[p.off] == ' ' || p.src[p.off] == '\t' || p.src[p.off] == '\n') {
		p.off++
	}
	p.pos = p.off
	if p.off >= len(p.src) {
		p.tok = tokEOF
		p.text = ""
		return
	}
	c := p.src[p.off]
	switch {
	case c >= '0' && c <= '9' || c == '.':
		start := p.off
		for p.off < len(p.src) {
			ch := p.src[p.off]
			if ch >= '0' && ch <= '9' || ch == '.' || ch == 'e' || ch == 'E' {
				p.off++
				continue
			}
			// Exponent sign.
			if (ch == '+' || ch == '-') && p.off > start &&
				(p.src[p.off-1] == 'e' || p.src[p.off-1] == 'E') {
				p.off++
				continue
			}
			break
		}
		p.text = p.src[start:p.off]
		p.tok = tokNum
		v, err := strconv.ParseFloat(p.text, 64)
		if err != nil {
			p.num = math.NaN() // reported by parsePrimary
		} else {
			p.num = v
		}
	case isIdentStart(c):
		start := p.off
		for p.off < len(p.src) && isIdentPart(p.src[p.off]) {
			p.off++
		}
		p.text = p.src[start:p.off]
		p.tok = tokIdent
	case c == '(':
		p.off++
		p.tok = tokLParen
		p.text = "("
	case c == ')':
		p.off++
		p.tok = tokRParen
		p.text = ")"
	case strings.IndexByte("+-*/^", c) >= 0:
		p.off++
		p.tok = tokOp
		p.text = string(c)
	default:
		p.tok = tokOp
		p.text = string(c)
		p.off++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (p *parser) parseSum() (exprNode, error) {
	l, err := p.parseProduct()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && (p.text == "+" || p.text == "-") {
		op := p.text[0]
		p.next()
		r, err := p.parseProduct()
		if err != nil {
			return nil, err
		}
		l = binNode{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseProduct() (exprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok == tokOp && (p.text == "*" || p.text == "/") {
		op := p.text[0]
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binNode{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (exprNode, error) {
	if p.tok == tokOp && p.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negNode{x: x}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (exprNode, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok == tokOp && p.text == "^" {
		p.next()
		// Right-associative.
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return binNode{op: '^', l: l, r: r}, nil
	}
	return l, nil
}

func (p *parser) parsePrimary() (exprNode, error) {
	switch p.tok {
	case tokNum:
		if math.IsNaN(p.num) {
			return nil, fmt.Errorf("sqlfunc: bad number %q at offset %d", p.text, p.pos)
		}
		n := numNode(p.num)
		p.next()
		return n, nil
	case tokIdent:
		c := colNode(strings.ToLower(p.text))
		p.next()
		return c, nil
	case tokLParen:
		p.next()
		inner, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		if p.tok != tokRParen {
			return nil, fmt.Errorf("sqlfunc: missing ')' at offset %d in %q", p.pos, p.src)
		}
		p.next()
		return inner, nil
	case tokEOF:
		return nil, fmt.Errorf("sqlfunc: unexpected end of expression in %q", p.src)
	default:
		return nil, fmt.Errorf("sqlfunc: unexpected %q at offset %d in %q", p.text, p.pos, p.src)
	}
}
