package sqlfunc_test

import (
	"fmt"
	"math/rand"

	"planar/internal/core"
	"planar/internal/sqlfunc"
)

// ExampleCriticalConsume shows Example 1 of the paper end to end: a
// CREATE FUNCTION-style predicate whose threshold arrives at query
// time, answered through a function-based planar index.
func ExampleCriticalConsume() {
	table, _ := sqlfunc.NewTable("consumption",
		[]string{"active_power", "reactive_power", "voltage", "current"})
	// (active kW, reactive kW, voltage V, current A); power factor is
	// active·1000/(V·I).
	rows := [][]float64{
		{2.0, 0.2, 230, 10}, // pf ≈ 0.87
		{0.5, 0.3, 240, 10}, // pf ≈ 0.21
		{1.0, 0.1, 230, 5},  // pf ≈ 0.87
		{0.2, 0.4, 250, 4},  // pf ≈ 0.20
	}
	for _, r := range rows {
		table.Insert(r)
	}
	cc, _ := sqlfunc.NewCriticalConsume(table, "active_power", "voltage", "current",
		core.Domain{Lo: 0.1, Hi: 1.0}, 10, rand.New(rand.NewSource(1)))

	ids, _, _ := cc.Query(0.5) // households with power factor below 0.5
	fmt.Println("critical households:", ids)
	// Output:
	// critical households: [1 3]
}

// ExampleParse demonstrates the arithmetic expression language used
// to declare indexable functions over table columns.
func ExampleParse() {
	table, _ := sqlfunc.NewTable("t", []string{"x", "y"})
	table.Insert([]float64{3, 4})
	expr, _ := sqlfunc.Parse("(x^2 + y^2) / 5")
	v, _ := table.Eval(expr, 0)
	fmt.Println(v, expr.Columns())
	// Output:
	// 5 [x y]
}
