package sqlfunc

import (
	"math"
	"testing"
)

// FuzzParse checks the expression parser never panics and that every
// accepted expression evaluates without panicking on a fixed row.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a", "a+b", "a*(b-c)/2", "-a^2", "1.5e3*b", "((a))",
		"a+", "*", "", "a b", "1..", "voltage * current / 1000",
		"a^b^c", "-(-a)", "2^-1",
	} {
		f.Add(seed)
	}
	tbl, err := NewTable("t", []string{"a", "b", "c", "voltage", "current"})
	if err != nil {
		f.Fatal(err)
	}
	if err := tbl.Insert([]float64{1, 2, 3, 230, 5}); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		got, err := tbl.Eval(e, 0)
		if err != nil {
			return // unknown columns are rejected at eval time
		}
		// Any finite or non-finite float is acceptable; we only care
		// that evaluation terminates.
		_ = math.IsNaN(got)
	})
}
