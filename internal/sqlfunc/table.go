package sqlfunc

import (
	"errors"
	"fmt"
	"strings"

	"planar/internal/dataset"
)

// Table is a minimal in-memory relation: named numeric columns and
// row-major float64 rows. Row numbers serve as the tuple identifiers
// returned by queries.
type Table struct {
	name   string
	cols   []string
	colIdx map[string]int
	rows   [][]float64
}

// NewTable creates an empty relation. Column names are
// case-insensitive and must be unique.
func NewTable(name string, columns []string) (*Table, error) {
	if len(columns) == 0 {
		return nil, errors.New("sqlfunc: table needs at least one column")
	}
	t := &Table{name: name, cols: make([]string, len(columns)), colIdx: map[string]int{}}
	for i, c := range columns {
		lc := strings.ToLower(strings.TrimSpace(c))
		if lc == "" {
			return nil, fmt.Errorf("sqlfunc: column %d has an empty name", i)
		}
		if _, dup := t.colIdx[lc]; dup {
			return nil, fmt.Errorf("sqlfunc: duplicate column %q", lc)
		}
		t.cols[i] = lc
		t.colIdx[lc] = i
	}
	return t, nil
}

// FromData wraps a dataset.Data as a relation.
func FromData(d *dataset.Data, columns []string) (*Table, error) {
	t, err := NewTable(d.Name, columns)
	if err != nil {
		return nil, err
	}
	for i, r := range d.Rows {
		if err := t.Insert(r); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	return t, nil
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return append([]string(nil), t.cols...) }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Insert appends a row.
func (t *Table) Insert(row []float64) error {
	if len(row) != len(t.cols) {
		return fmt.Errorf("sqlfunc: row has %d values, table %q has %d columns", len(row), t.name, len(t.cols))
	}
	t.rows = append(t.rows, append([]float64(nil), row...))
	return nil
}

// Row returns a read-only view of row i.
func (t *Table) Row(i int) []float64 { return t.rows[i] }

// Value returns the named column of row i.
func (t *Table) Value(i int, column string) (float64, error) {
	ci, ok := t.colIdx[strings.ToLower(column)]
	if !ok {
		return 0, fmt.Errorf("sqlfunc: table %q has no column %q", t.name, column)
	}
	return t.rows[i][ci], nil
}

// checkExpr verifies every column an expression references exists.
func (t *Table) checkExpr(e *Expr) error {
	for _, c := range e.cols {
		if _, ok := t.colIdx[c]; !ok {
			return fmt.Errorf("sqlfunc: expression %q references unknown column %q of table %q", e.src, c, t.name)
		}
	}
	return nil
}

// Eval evaluates a compiled expression on row i.
func (t *Table) Eval(e *Expr, i int) (float64, error) {
	if err := t.checkExpr(e); err != nil {
		return 0, err
	}
	return e.root.eval(t.rows[i], t.colIdx), nil
}
