package sqlfunc

import (
	"errors"
	"fmt"
	"math/rand"

	"planar/internal/core"
	"planar/internal/scan"
	"planar/internal/vecmath"
)

// FunctionIndex indexes a list of expressions φ = (expr_1, …,
// expr_k) over a table so that parameterised predicates
//
//	Σ param_j · expr_j(row)  ≤/≥  bound
//
// are answered through planar indexes. The expressions are the
// "functional part known apriori" of Example 1; the parameters and
// bound are supplied per query.
type FunctionIndex struct {
	table *Table
	exprs []*Expr
	store *core.PointStore
	multi *core.Multi
}

// NewFunctionIndex compiles and materialises the expression vector
// for every row. It does not yet add planar indexes; call
// AddIndexes with the expected parameter domains.
func NewFunctionIndex(t *Table, exprSrcs []string, opts ...core.MultiOption) (*FunctionIndex, error) {
	if t == nil {
		return nil, errors.New("sqlfunc: nil table")
	}
	if len(exprSrcs) == 0 {
		return nil, errors.New("sqlfunc: need at least one expression")
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("sqlfunc: table %q is empty", t.Name())
	}
	fi := &FunctionIndex{table: t}
	for _, src := range exprSrcs {
		e, err := Parse(src)
		if err != nil {
			return nil, err
		}
		if err := t.checkExpr(e); err != nil {
			return nil, err
		}
		fi.exprs = append(fi.exprs, e)
	}
	store, err := core.NewPointStore(len(fi.exprs))
	if err != nil {
		return nil, err
	}
	phi := make([]float64, len(fi.exprs))
	for i := 0; i < t.Len(); i++ {
		for j, e := range fi.exprs {
			phi[j] = e.root.eval(t.rows[i], t.colIdx)
		}
		if _, err := store.Append(phi); err != nil {
			return nil, fmt.Errorf("sqlfunc: row %d: %w", i, err)
		}
	}
	fi.store = store
	fi.multi, err = core.NewMulti(store, opts...)
	if err != nil {
		return nil, err
	}
	return fi, nil
}

// Exprs returns the indexed expression sources.
func (fi *FunctionIndex) Exprs() []string {
	out := make([]string, len(fi.exprs))
	for i, e := range fi.exprs {
		out[i] = e.src
	}
	return out
}

// Store exposes the materialised φ vectors (for baselines and
// tests).
func (fi *FunctionIndex) Store() *core.PointStore { return fi.store }

// Multi exposes the underlying index collection.
func (fi *FunctionIndex) Multi() *core.Multi { return fi.multi }

// AddIndexes samples up to budget planar indexes from the expected
// parameter domains (one Domain per expression). It returns the
// number of non-redundant indexes added.
func (fi *FunctionIndex) AddIndexes(budget int, domains []core.Domain, rng *rand.Rand) (int, error) {
	return fi.multi.SampleBudget(budget, domains, rng)
}

// AddNormal adds one specific index normal (positive components)
// serving the octant implied by signs.
func (fi *FunctionIndex) AddNormal(normal []float64, signs vecmath.SignPattern) (bool, error) {
	return fi.multi.AddNormal(normal, signs)
}

// Select returns the row numbers satisfying
// Σ params_j·expr_j(row) op bound, answered through the best planar
// index (or a scan fallback when none is compatible).
func (fi *FunctionIndex) Select(params []float64, bound float64, op core.Op) ([]uint32, core.Stats, error) {
	if len(params) != len(fi.exprs) {
		return nil, core.Stats{}, fmt.Errorf("sqlfunc: got %d parameters, index has %d expressions", len(params), len(fi.exprs))
	}
	return fi.multi.InequalityIDs(core.Query{A: params, B: bound, Op: op})
}

// SelectScan answers the same predicate by sequential scan — the
// paper's baseline.
func (fi *FunctionIndex) SelectScan(params []float64, bound float64, op core.Op) []uint32 {
	return scan.IDs(fi.store, core.Query{A: params, B: bound, Op: op})
}

// CriticalConsume is Example 1's SQL function over a relation with
// active-power, voltage and current columns:
//
//	SELECT rows WHERE active_power - threshold·voltage·current ≤ 0
//
// i.e. power factor below threshold. It wraps a FunctionIndex over
// φ = (active_power, voltage·current) queried with parameters
// (1, −threshold) and bound 0.
type CriticalConsume struct {
	fi *FunctionIndex
}

// NewCriticalConsume builds the function index for Example 1. The
// column names identify the active power, voltage and current
// attributes of t. thresholdDomain is the expected range of query
// thresholds (the paper uses (0.100, 1.000)); indexes are sampled
// from it.
func NewCriticalConsume(t *Table, activeCol, voltageCol, currentCol string, thresholdDomain core.Domain, budget int, rng *rand.Rand) (*CriticalConsume, error) {
	if err := thresholdDomain.Validate(); err != nil {
		return nil, err
	}
	if thresholdDomain.Lo <= 0 {
		return nil, errors.New("sqlfunc: threshold domain must be positive")
	}
	// Active power is recorded in kilowatts while voltage·current is
	// in volt-amperes (the UCI dataset's units); dividing by 1000
	// aligns the units so the queried ratio is the true power factor
	// in (0, 1], matching the paper's threshold domain (0.1, 1.0).
	fi, err := NewFunctionIndex(t, []string{
		activeCol,
		fmt.Sprintf("(%s * %s) / 1000", voltageCol, currentCol),
	})
	if err != nil {
		return nil, err
	}
	// Parameters are (1, −threshold): octant (+, −).
	doms := []core.Domain{
		{Lo: 1, Hi: 1},
		{Lo: -thresholdDomain.Hi, Hi: -thresholdDomain.Lo},
	}
	if _, err := fi.AddIndexes(budget, doms, rng); err != nil {
		return nil, err
	}
	return &CriticalConsume{fi: fi}, nil
}

// Query returns the rows whose power factor is below threshold.
func (c *CriticalConsume) Query(threshold float64) ([]uint32, core.Stats, error) {
	if !(threshold > 0) {
		return nil, core.Stats{}, fmt.Errorf("sqlfunc: threshold must be positive, got %v", threshold)
	}
	return c.fi.Select([]float64{1, -threshold}, 0, core.LE)
}

// QueryScan is the sequential-scan baseline for the same predicate.
func (c *CriticalConsume) QueryScan(threshold float64) []uint32 {
	return c.fi.SelectScan([]float64{1, -threshold}, 0, core.LE)
}

// Index exposes the underlying function index.
func (c *CriticalConsume) Index() *FunctionIndex { return c.fi }
