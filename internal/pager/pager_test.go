package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func tempFile(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "pages.plnr")
}

func payloadFor(seed byte) []byte {
	p := make([]byte, PayloadSize)
	for i := range p {
		p[i] = seed + byte(i)
	}
	return p
}

func TestCreateOpenRoundtrip(t *testing.T) {
	path := tempFile(t)
	f, err := Create(path, []byte("hello meta"), 42)
	if err != nil {
		t.Fatal(err)
	}
	p1 := f.Alloc()
	p2 := f.Alloc()
	if err := f.WritePage(p1, PageBlob, payloadFor(1)); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(p2, PageLeaf, payloadFor(2)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit([]byte("meta2"), 99); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if got := string(g.Meta()); got != "meta2" {
		t.Fatalf("meta = %q, want meta2", got)
	}
	if g.CheckpointLSN() != 99 {
		t.Fatalf("cpLSN = %d, want 99", g.CheckpointLSN())
	}
	buf := make([]byte, PayloadSize)
	typ, err := g.ReadPage(p1, buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != PageBlob || !bytes.Equal(buf, payloadFor(1)) {
		t.Fatalf("page %d contents wrong (type %d)", p1, typ)
	}
	typ, err = g.ReadPage(p2, buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != PageLeaf || !bytes.Equal(buf, payloadFor(2)) {
		t.Fatalf("page %d contents wrong (type %d)", p2, typ)
	}
}

// Freed pages must not be reusable until after the next commit, and
// must be reusable after it.
func TestFreePendingUntilCommit(t *testing.T) {
	path := tempFile(t)
	f, err := Create(path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := f.Alloc()
	if err := f.WritePage(p, PageBlob, payloadFor(7)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(nil, 1); err != nil {
		t.Fatal(err)
	}
	f.Free(p)
	seen := map[int64]bool{}
	for i := 0; i < 4; i++ {
		q := f.Alloc()
		if q == p {
			t.Fatalf("freed page %d reallocated before commit", p)
		}
		seen[q] = true
	}
	for q := range seen {
		f.Free(q)
	}
	if err := f.Commit(nil, 2); err != nil {
		t.Fatal(err)
	}
	// All freed pages (p plus the probes) are now allocatable: drain
	// well past the free list and look for p.
	got := map[int64]bool{}
	for i := 0; i < len(seen)+8; i++ {
		got[f.Alloc()] = true
	}
	if !got[p] {
		t.Fatalf("page %d not recycled after commit (got %v)", p, got)
	}
}

func TestChecksumFailureIsLoud(t *testing.T) {
	path := tempFile(t)
	f, err := Create(path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := f.Alloc()
	if err := f.WritePage(p, PageBlob, payloadFor(3)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(nil, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[p*PageSize+headerSize+100] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	buf := make([]byte, PayloadSize)
	if _, err := g.ReadPage(p, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("ReadPage on corrupted page: err = %v, want ErrChecksum", err)
	}
}

func TestLargeMetaChain(t *testing.T) {
	path := tempFile(t)
	meta := make([]byte, 3*PayloadSize+123)
	for i := range meta {
		meta[i] = byte(i * 31)
	}
	f, err := Create(path, meta, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if !bytes.Equal(g.Meta(), meta) {
		t.Fatal("multi-page meta chain did not round-trip")
	}
	// The next commit must retire the whole old chain: after two
	// commits with empty meta the file stops growing.
	if err := g.Commit(nil, 6); err != nil {
		t.Fatal(err)
	}
	n := g.NumPages()
	for i := 0; i < 6; i++ {
		if err := g.Commit(nil, uint64(7+i)); err != nil {
			t.Fatal(err)
		}
	}
	if g.NumPages() != n {
		t.Fatalf("file grew across empty commits: %d -> %d pages (meta chain leak)", n, g.NumPages())
	}
}

// crashState captures one durable checkpoint of the test file: the
// user meta plus the expected payload of every referenced page. The
// test meta encodes the referenced page list so recovery can verify
// contents from the file alone.
type crashState struct {
	meta  []byte
	pages map[int64]byte // page -> payload seed
}

func encodeCrashMeta(gen byte, pages []int64) []byte {
	b := []byte{gen}
	for _, p := range pages {
		b = binary.LittleEndian.AppendUint64(b, uint64(p))
	}
	return b
}

func decodeCrashMeta(b []byte) (gen byte, pages []int64, ok bool) {
	if len(b) < 1 || (len(b)-1)%8 != 0 {
		return 0, nil, false
	}
	gen = b[0]
	for i := 1; i < len(b); i += 8 {
		pages = append(pages, int64(binary.LittleEndian.Uint64(b[i:])))
	}
	return gen, pages, true
}

// TestCrashRecoveryEveryOffset is the mirror of the WAL torn-tail
// property test for the page file: build a file with two committed
// checkpoints, then for every byte offset (a) truncate the file there
// and (b) flip the byte there, and assert Open either fails loudly or
// recovers a state that is exactly one of the two checkpoints — with
// every page the recovered meta references either reading back its
// exact committed contents or failing with a checksum error. Silent
// garbage is the only forbidden outcome.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.plnr")

	// Checkpoint 1: pages seeded 10,11,12.
	var cp1, cp2 crashState
	f, err := Create(path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	writeGen := func(f *File, seeds []byte, gen byte) crashState {
		st := crashState{pages: map[int64]byte{}}
		var ids []int64
		for _, s := range seeds {
			p := f.Alloc()
			if err := f.WritePage(p, PageBlob, payloadFor(s)); err != nil {
				t.Fatal(err)
			}
			st.pages[p] = s
			ids = append(ids, p)
		}
		st.meta = encodeCrashMeta(gen, ids)
		if err := f.Commit(st.meta, uint64(gen)); err != nil {
			t.Fatal(err)
		}
		return st
	}
	cp1 = writeGen(f, []byte{10, 11, 12}, 1)
	// Checkpoint 2 rewrites one page copy-on-write style and adds one.
	var firstPage int64
	for p := range cp1.pages {
		firstPage = p
		break
	}
	f.Free(firstPage)
	cp2 = writeGen(f, []byte{20, 21}, 2)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	verify := func(t *testing.T, mutated []byte) {
		t.Helper()
		mpath := filepath.Join(dir, "mut.plnr")
		if err := os.WriteFile(mpath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Open(mpath)
		if err != nil {
			// Loud failure is an allowed outcome.
			return
		}
		defer g.Close()
		gen, pages, ok := decodeCrashMeta(g.Meta())
		if !ok {
			t.Fatalf("recovered meta is garbage: %x", g.Meta())
		}
		var want crashState
		switch gen {
		case 1:
			want = cp1
		case 2:
			want = cp2
		default:
			t.Fatalf("recovered unknown generation %d", gen)
		}
		if !bytes.Equal(g.Meta(), want.meta) {
			t.Fatalf("recovered meta differs from checkpoint %d", gen)
		}
		buf := make([]byte, PayloadSize)
		for _, p := range pages {
			typ, err := g.ReadPage(p, buf)
			if err != nil {
				if errors.Is(err, ErrChecksum) || (p+1)*PageSize > int64(len(mutated)) {
					continue // loud, or truncated away: both fine
				}
				t.Fatalf("page %d: unexpected error %v", p, err)
			}
			seed, ok := want.pages[p]
			if !ok {
				t.Fatalf("recovered meta references page %d not in checkpoint %d", p, gen)
			}
			if typ != PageBlob || !bytes.Equal(buf, payloadFor(seed)) {
				t.Fatalf("page %d silently returned wrong contents", p)
			}
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut < len(golden); cut += 1 {
			verify(t, golden[:cut])
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		mut := make([]byte, len(golden))
		for off := 0; off < len(golden); off++ {
			copy(mut, golden)
			mut[off] ^= 0x5a
			verify(t, mut)
		}
	})
}
