package pager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Cache is a sharded page cache keyed by page number. Frames carry
// pin refcounts (a pinned frame is never evicted and its buffer is
// stable) and dirty bits (a dirty frame is never evicted either: it
// stays resident until the background writer or a checkpoint writes
// it back and calls MarkClean, so eviction policy only ever discards
// frames whose bytes are on disk). Eviction is CLOCK over the
// clean, unpinned frames of a shard; when every frame is pinned or
// dirty the shard grows past its target instead of failing, so the
// capacity is a soft bound.
//
// Frame buffers are carved from []uint64 allocations, so their base
// is 8-byte aligned and callers may reinterpret payload regions as
// float64/uint32/int32 columns.
type Cache struct {
	frameBytes int
	shards     []cacheShard

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64

	// dirty counts resident dirty frames cache-wide; the background
	// writer uses it as its pressure signal and Stats surfaces it.
	dirty atomic.Int64
	// dirtySkips counts CLOCK passes over dirty frames during victim
	// search — the cache-pressure symptom of an unflushed write burst.
	dirtySkips atomic.Uint64
	// softOverflows counts frame allocations that grew a shard past
	// its target because every candidate was pinned or dirty.
	softOverflows atomic.Uint64

	// pressure, when set, is invoked (outside any shard lock) each
	// time the dirty-frame count crosses pressureAt from below — the
	// background writer's kick.
	pressureAt int64
	pressure   func()
}

type cacheShard struct {
	mu     sync.Mutex
	frames map[uint64]*Frame // guarded by mu
	ring   []*Frame          // guarded by mu
	hand   int               // guarded by mu
	target int               // guarded by mu
}

// Frame is one resident page. The payload buffer is valid while the
// caller holds a pin.
type Frame struct {
	key   uint64
	buf   []byte
	pins  int32 // guarded by cacheShard.mu
	dirty bool  // guarded by cacheShard.mu
	ref   bool  // guarded by cacheShard.mu
}

// Bytes returns the frame's payload buffer (frameBytes long). The
// caller must hold a pin.
func (fr *Frame) Bytes() []byte { return fr.buf }

const cacheShards = 8

// NewCache builds a cache targeting roughly capacityBytes of resident
// frames of frameBytes each. The target is floored at a few frames
// per shard so tiny configurations still operate.
func NewCache(capacityBytes, frameBytes int) *Cache {
	total := capacityBytes / frameBytes
	per := total / cacheShards
	if per < 4 {
		per = 4
	}
	c := &Cache{frameBytes: frameBytes, shards: make([]cacheShard, cacheShards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{frames: make(map[uint64]*Frame), target: per}
	}
	return c
}

// SetPressure arranges for fn to run whenever the dirty-frame count
// reaches threshold from below. fn must be non-blocking (the caller is
// a mutator path); the background writer installs a channel nudge.
// Call before the cache is shared; the fields are not synchronised.
func (c *Cache) SetPressure(threshold int, fn func()) {
	c.pressureAt = int64(threshold)
	c.pressure = fn
}

// noteDirty maintains the dirty counter and fires the pressure hook
// on an upward crossing. Called outside the shard locks.
func (c *Cache) noteDirty() {
	n := c.dirty.Add(1)
	if c.pressure != nil && n == c.pressureAt {
		c.pressure()
	}
}

// DirtyFrames returns the number of resident dirty frames.
func (c *Cache) DirtyFrames() int { return int(c.dirty.Load()) }

func (c *Cache) shardOf(key uint64) *cacheShard {
	// Fibonacci hash of the page number spreads sequential pages
	// across shards.
	return &c.shards[(key*0x9e3779b97f4a7c15)>>61&(cacheShards-1)]
}

func (c *Cache) newBuf() []byte {
	words := make([]uint64, (c.frameBytes+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), c.frameBytes)
}

// Get returns a pinned frame for key, calling fill to populate the
// buffer on a miss. On fill failure the frame is discarded and the
// error returned. Release the pin with Unpin.
func (c *Cache) Get(key uint64, fill func(buf []byte) error) (*Frame, error) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if fr, ok := sh.frames[key]; ok {
		fr.pins++
		fr.ref = true
		sh.mu.Unlock()
		c.hits.Add(1)
		return fr, nil
	}
	c.misses.Add(1)
	fr := c.takeFrameLocked(sh, key)
	// Fill under the shard lock: the paged tree serializes its own
	// faults anyway, and this keeps a concurrent Get for the same key
	// from observing an unfilled frame.
	if err := fill(fr.buf); err != nil {
		delete(sh.frames, key)
		sh.ring = sh.ring[:len(sh.ring)-1]
		sh.mu.Unlock()
		return nil, err
	}
	sh.mu.Unlock()
	return fr, nil
}

// Lookup returns a pinned frame for key only if it is resident.
func (c *Cache) Lookup(key uint64) (*Frame, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fr, ok := sh.frames[key]
	if !ok {
		return nil, false
	}
	fr.pins++
	fr.ref = true
	return fr, true
}

// NewFrame returns a pinned, dirty, zeroed frame for a key that is
// not resident — the fault path for freshly allocated pages that have
// no on-disk contents yet.
func (c *Cache) NewFrame(key uint64) *Frame {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if _, ok := sh.frames[key]; ok {
		sh.mu.Unlock()
		panic(fmt.Sprintf("pager: NewFrame for resident page %d", key))
	}
	fr := c.takeFrameLocked(sh, key)
	for i := range fr.buf {
		fr.buf[i] = 0
	}
	fr.dirty = true
	sh.mu.Unlock()
	c.noteDirty()
	return fr
}

// takeFrameLocked produces a pinned frame registered under key,
// evicting a clean unpinned frame when the shard is at target.
func (c *Cache) takeFrameLocked(sh *cacheShard, key uint64) *Frame {
	var fr *Frame
	if len(sh.ring) >= sh.target {
		if v := c.evictLocked(sh); v != nil {
			fr = v
		} else {
			// Every candidate was pinned or dirty: grow past the
			// soft capacity and record the overflow so stalls from
			// an unflushed write burst are diagnosable.
			c.softOverflows.Add(1)
		}
	}
	if fr == nil {
		fr = &Frame{buf: c.newBuf()}
	}
	fr.key = key
	fr.pins = 1
	fr.dirty = false
	fr.ref = true
	sh.frames[key] = fr
	sh.ring = append(sh.ring, fr)
	return fr
}

// evictLocked runs the CLOCK hand over the shard, returning a victim
// frame (already deregistered) or nil when every frame is pinned or
// dirty.
func (c *Cache) evictLocked(sh *cacheShard) *Frame {
	for pass := 0; pass < 2*len(sh.ring); pass++ {
		if sh.hand >= len(sh.ring) {
			sh.hand = 0
		}
		fr := sh.ring[sh.hand]
		if fr.pins > 0 || fr.dirty {
			if fr.dirty && fr.pins == 0 {
				c.dirtySkips.Add(1)
			}
			sh.hand++
			continue
		}
		if fr.ref {
			fr.ref = false
			sh.hand++
			continue
		}
		// Victim: swap-remove from the ring.
		last := len(sh.ring) - 1
		sh.ring[sh.hand] = sh.ring[last]
		sh.ring = sh.ring[:last]
		delete(sh.frames, fr.key)
		c.evictions.Add(1)
		return fr
	}
	return nil
}

// Unpin releases one pin.
func (c *Cache) Unpin(fr *Frame) {
	sh := c.shardOf(fr.key)
	sh.mu.Lock()
	fr.pins--
	if fr.pins < 0 {
		sh.mu.Unlock()
		panic("pager: frame unpinned below zero")
	}
	sh.mu.Unlock()
}

// MarkDirty flags a pinned frame's contents as newer than its page.
// Dirty frames stay resident until MarkClean.
func (c *Cache) MarkDirty(fr *Frame) {
	sh := c.shardOf(fr.key)
	sh.mu.Lock()
	was := fr.dirty
	fr.dirty = true
	sh.mu.Unlock()
	if !was {
		c.noteDirty()
	}
}

// MarkClean clears the dirty flag after the caller has written the
// frame back to its page.
func (c *Cache) MarkClean(fr *Frame) {
	sh := c.shardOf(fr.key)
	sh.mu.Lock()
	was := fr.dirty
	fr.dirty = false
	sh.mu.Unlock()
	if was {
		c.dirty.Add(-1)
	}
}

// Rekey atomically re-registers a pinned frame under a new page
// number (the copy-on-write page relocation: same bytes, new home).
func (c *Cache) Rekey(fr *Frame, newKey uint64) {
	oldSh, newSh := c.shardOf(fr.key), c.shardOf(newKey)
	if oldSh == newSh {
		oldSh.mu.Lock()
		delete(oldSh.frames, fr.key)
		fr.key = newKey
		oldSh.frames[newKey] = fr
		oldSh.mu.Unlock()
		return
	}
	// Lock both shards in address order.
	a, b := oldSh, newSh
	if uintptr(unsafe.Pointer(a)) > uintptr(unsafe.Pointer(b)) {
		a, b = b, a
	}
	a.mu.Lock()
	b.mu.Lock() //nolint:locknesting // distinct shards (checked above), locked in address order
	delete(oldSh.frames, fr.key)
	for i, r := range oldSh.ring {
		if r == fr {
			last := len(oldSh.ring) - 1
			oldSh.ring[i] = oldSh.ring[last]
			oldSh.ring = oldSh.ring[:last]
			break
		}
	}
	fr.key = newKey
	newSh.frames[newKey] = fr
	newSh.ring = append(newSh.ring, fr)
	b.mu.Unlock()
	a.mu.Unlock()
}

// Drop removes the key's frame from the cache if resident, regardless
// of pins or dirtiness: the caller is declaring the page dead (slot
// freed, tree released). Outstanding pins stay valid — the buffer is
// simply never reused by the cache.
func (c *Cache) Drop(key uint64) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	fr, ok := sh.frames[key]
	wasDirty := false
	if ok {
		wasDirty = fr.dirty
		fr.dirty = false
		delete(sh.frames, key)
		for i, r := range sh.ring {
			if r == fr {
				last := len(sh.ring) - 1
				sh.ring[i] = sh.ring[last]
				sh.ring = sh.ring[:last]
				break
			}
		}
	}
	sh.mu.Unlock()
	if wasDirty {
		c.dirty.Add(-1)
	}
}

// CacheStats is a point-in-time snapshot of cache counters.
type CacheStats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Resident      int    // frames currently resident
	Target        int    // soft capacity in frames
	DirtyFrames   int    // resident frames awaiting writeback
	DirtySkips    uint64 // CLOCK passes over dirty frames
	SoftOverflows uint64 // allocations that grew a shard past target
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		DirtyFrames:   int(c.dirty.Load()),
		DirtySkips:    c.dirtySkips.Load(),
		SoftOverflows: c.softOverflows.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Resident += len(sh.ring)
		st.Target += sh.target
		sh.mu.Unlock()
	}
	return st
}
