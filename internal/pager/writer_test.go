package pager

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to 5s; the writer runs on wall-clock
// ticks, so tests observe its effects instead of sleeping fixed
// amounts.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCacheDirtyCounter(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	fr, err := c.Get(1, fillSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DirtyFrames(); got != 0 {
		t.Fatalf("clean cache reports %d dirty frames", got)
	}
	c.MarkDirty(fr)
	c.MarkDirty(fr) // idempotent: must not double-count
	if got := c.DirtyFrames(); got != 1 {
		t.Fatalf("one dirty frame counted as %d", got)
	}
	nf := c.NewFrame(2) // born dirty
	if got := c.DirtyFrames(); got != 2 {
		t.Fatalf("NewFrame did not count as dirty: %d", got)
	}
	c.MarkClean(fr)
	c.MarkClean(fr) // idempotent the other way
	if got := c.DirtyFrames(); got != 1 {
		t.Fatalf("MarkClean left %d dirty frames, want 1", got)
	}
	c.Unpin(fr)
	c.Unpin(nf)
	c.Drop(2) // dropping a dirty frame must release its count
	if got := c.DirtyFrames(); got != 0 {
		t.Fatalf("Drop left %d dirty frames", got)
	}
	if st := c.Stats(); st.DirtyFrames != 0 {
		t.Fatalf("Stats dirty frames = %d, want 0", st.DirtyFrames)
	}
}

// TestCacheDirtySkipsAndSoftOverflow fills a floor-sized cache with
// dirty unpinned frames and streams clean reads through: eviction
// must spin past the dirty frames (counted, not silent) and record
// the soft-capacity overflow when nothing was evictable.
func TestCacheDirtySkipsAndSoftOverflow(t *testing.T) {
	c := NewCache(0, PayloadSize) // floor capacity
	target := c.Stats().Target
	for k := uint64(0); k < uint64(target)+8; k++ {
		fr, err := c.Get(k, fillSeed(byte(k)))
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(fr)
		c.Unpin(fr)
	}
	st := c.Stats()
	if st.DirtySkips == 0 {
		t.Fatalf("eviction never recorded a dirty skip (stats %+v)", st)
	}
	if st.SoftOverflows == 0 {
		t.Fatalf("overflowing an all-dirty cache recorded no soft overflow (stats %+v)", st)
	}
	if st.DirtyFrames != st.Resident {
		t.Fatalf("dirty frames %d != resident %d: a dirty frame was evicted", st.DirtyFrames, st.Resident)
	}
}

func TestCachePressureHook(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	var fired atomic.Int64
	c.SetPressure(3, func() { fired.Add(1) })
	frames := make([]*Frame, 0, 5)
	for k := uint64(0); k < 5; k++ {
		fr, err := c.Get(k, fillSeed(byte(k)))
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(fr)
		frames = append(frames, fr)
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("pressure hook fired %d times crossing the threshold once, want 1", got)
	}
	for _, fr := range frames {
		c.MarkClean(fr)
	}
	for _, fr := range frames {
		c.MarkDirty(fr)
	}
	if got := fired.Load(); got != 2 {
		t.Fatalf("pressure hook fired %d times after a second crossing, want 2", got)
	}
	for _, fr := range frames {
		c.Unpin(fr)
	}
}

func TestWriterIntervalFlush(t *testing.T) {
	var remaining atomic.Int64
	remaining.Store(10)
	w := NewWriter(WriterOptions{Interval: time.Millisecond, BatchPages: 4}, func(max int) (int, error) {
		n := remaining.Load()
		if n > int64(max) {
			n = int64(max)
		}
		remaining.Add(-n)
		return int(n), nil
	})
	defer w.Close()
	waitFor(t, "interval writeback to drain the backlog", func() bool { return remaining.Load() == 0 })
	st := w.Stats()
	if st.Pages != 10 {
		t.Fatalf("writer flushed %d pages, want 10", st.Pages)
	}
	if st.Bytes != 10*PageSize {
		t.Fatalf("writer bytes %d, want %d", st.Bytes, 10*PageSize)
	}
	if st.Rounds == 0 || st.Errors != 0 {
		t.Fatalf("stats %+v: want rounds > 0, errors == 0", st)
	}
}

func TestWriterKick(t *testing.T) {
	var remaining atomic.Int64
	remaining.Store(5)
	// Interval effectively never fires; only Kick can explain a flush.
	w := NewWriter(WriterOptions{Interval: time.Hour, BatchPages: 8}, func(max int) (int, error) {
		n := remaining.Swap(0)
		return int(n), nil
	})
	defer w.Close()
	time.Sleep(5 * time.Millisecond)
	if remaining.Load() != 5 {
		t.Fatal("writer flushed without a kick before its interval")
	}
	w.Kick()
	waitFor(t, "kicked writeback round", func() bool { return remaining.Load() == 0 })
}

func TestWriterDrainAndClose(t *testing.T) {
	var remaining atomic.Int64
	remaining.Store(17)
	w := NewWriter(WriterOptions{Interval: time.Hour, BatchPages: 4}, func(max int) (int, error) {
		n := remaining.Load()
		if n > int64(max) {
			n = int64(max)
		}
		remaining.Add(-n)
		return int(n), nil
	})
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if remaining.Load() != 0 {
		t.Fatalf("Drain left %d pages behind", remaining.Load())
	}
	if st := w.Stats(); st.Pages != 17 {
		t.Fatalf("Drain accounted %d pages, want 17", st.Pages)
	}
	w.Close()
	w.Close() // idempotent
	w.Kick()  // harmless after Close
}

func TestWriterErrorIsAdvisory(t *testing.T) {
	boom := errors.New("disk full")
	var fail atomic.Bool
	fail.Store(true)
	var backlog atomic.Int64
	backlog.Store(2)
	w := NewWriter(WriterOptions{Interval: time.Hour, BatchPages: 4}, func(max int) (int, error) {
		if fail.Load() {
			return 0, boom
		}
		if backlog.Load() > 0 {
			backlog.Add(-1)
			return 1, nil
		}
		return 0, nil
	})
	defer w.Close()
	w.Kick()
	waitFor(t, "failed round to be counted", func() bool { return w.Stats().Errors == 1 })
	// The writer must survive the error and serve later rounds.
	fail.Store(false)
	w.Kick()
	waitFor(t, "post-error round", func() bool { return backlog.Load() < 2 })
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if backlog.Load() != 0 {
		t.Fatalf("Drain left %d pages behind", backlog.Load())
	}
}

// TestWriterPressureIntegration wires a cache's pressure hook to a
// writer whose flush callback cleans frames, and checks that dirtying
// past the high-water mark alone (no interval, no manual kick) brings
// the dirty count back down.
func TestWriterPressureIntegration(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	var mu sync.Mutex
	var backlog []*Frame
	w := NewWriter(WriterOptions{Interval: time.Hour, BatchPages: 4}, func(max int) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for len(backlog) > 0 && n < max {
			fr := backlog[len(backlog)-1]
			backlog = backlog[:len(backlog)-1]
			c.MarkClean(fr)
			c.Unpin(fr)
			n++
		}
		return n, nil
	})
	defer w.Close()
	c.SetPressure(6, w.Kick)
	for k := uint64(0); k < 10; k++ {
		fr, err := c.Get(k, fillSeed(byte(k)))
		if err != nil {
			t.Fatal(err)
		}
		c.MarkDirty(fr)
		mu.Lock()
		backlog = append(backlog, fr)
		mu.Unlock()
	}
	waitFor(t, "pressure kick to clean the cache", func() bool { return c.DirtyFrames() == 0 })
}
