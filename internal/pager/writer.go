package pager

import (
	"sync"
	"sync/atomic"
	"time"
)

// Writer is the background page writer: a single goroutine that
// periodically (and on cache-pressure kicks) invokes a flush callback
// to write dirty frames to their shadow pages ahead of the next
// checkpoint. The callback is supplied by the tier that owns the
// pages (codec.PagedStore routes it to the paged B+ tree arenas); it
// flushes at most maxPages frames and returns how many it wrote.
//
// Safety: under the COW-per-epoch discipline every dirty frame maps
// to a page that the durable superblock does not reference (it was
// freshly allocated or recycled from the committed free list this
// epoch), so writing it early is invisible to crash recovery — the
// superblock flip at Commit is what publishes the epoch, and a torn
// shadow write before that flip is simply dead bytes.
type Writer struct {
	flush    func(maxPages int) (int, error)
	interval time.Duration
	batch    int

	kick     chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	pages  atomic.Uint64
	bytes  atomic.Uint64
	rounds atomic.Uint64
	errs   atomic.Uint64
}

// WriterOptions configures a background Writer.
type WriterOptions struct {
	// Interval between unprompted writeback rounds. Zero means
	// DefaultWriterInterval.
	Interval time.Duration
	// BatchPages is the flush granularity per callback invocation.
	// Zero means DefaultWriterBatchPages.
	BatchPages int
	// HighWater is the dirty-frame count at which the cache pressure
	// hook kicks the writer immediately rather than waiting for the
	// interval. Zero means 2×BatchPages. The caller wires this to
	// Cache.SetPressure.
	HighWater int
}

// Defaults for WriterOptions zero values.
const (
	DefaultWriterInterval   = 25 * time.Millisecond
	DefaultWriterBatchPages = 128
)

// Resolved returns a copy with zero fields replaced by defaults.
func (o WriterOptions) Resolved() WriterOptions {
	w := o
	if w.Interval <= 0 {
		w.Interval = DefaultWriterInterval
	}
	if w.BatchPages <= 0 {
		w.BatchPages = DefaultWriterBatchPages
	}
	if w.HighWater <= 0 {
		w.HighWater = 2 * w.BatchPages
	}
	return w
}

// NewWriter starts the background writer goroutine. flush must be
// safe to call from the writer goroutine concurrently with foreground
// mutations (the paged arenas serialize internally) and must return
// the number of pages it wrote. Close joins the goroutine.
func NewWriter(opts WriterOptions, flush func(maxPages int) (int, error)) *Writer {
	o := opts.Resolved()
	w := &Writer{
		flush:    flush,
		interval: o.Interval,
		batch:    o.BatchPages,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.run()
	}()
	return w
}

// Kick nudges the writer to run a round now. Non-blocking; used as
// the cache-pressure hook.
func (w *Writer) Kick() {
	select {
	case w.kick <- struct{}{}:
	default:
	}
}

func (w *Writer) run() {
	t := time.NewTimer(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-w.kick:
			if !t.Stop() {
				select {
				case <-t.C:
				default:
				}
			}
		case <-t.C:
		}
		w.round()
		t.Reset(w.interval)
	}
}

// round flushes until the tier reports a partial batch (no more dirty
// pages than one callback could take) or stop is signalled.
func (w *Writer) round() {
	w.rounds.Add(1)
	for {
		select {
		case <-w.stop:
			return
		default:
		}
		n, err := w.flush(w.batch)
		if err != nil {
			// Writeback is advisory: the checkpoint path will retry
			// the same pages under the store lock and surface the
			// error there. Count it and back off to the next tick.
			w.errs.Add(1)
			return
		}
		w.pages.Add(uint64(n))
		w.bytes.Add(uint64(n) * PageSize)
		if n < w.batch {
			return
		}
	}
}

// Drain synchronously flushes until the tier reports nothing left.
// Callers run it before taking a checkpoint's write lock so the
// locked section only handles the residual dirtied since.
func (w *Writer) Drain() error {
	for {
		n, err := w.flush(w.batch)
		if err != nil {
			w.errs.Add(1)
			return err
		}
		w.pages.Add(uint64(n))
		w.bytes.Add(uint64(n) * PageSize)
		if n == 0 {
			return nil
		}
	}
}

// Close stops the writer and joins its goroutine. Idempotent.
func (w *Writer) Close() {
	w.stopOnce.Do(func() { close(w.stop) })
	w.wg.Wait()
}

// WriterStats is a point-in-time snapshot of writer counters.
type WriterStats struct {
	Pages  uint64 // frames flushed to shadow pages
	Bytes  uint64 // bytes written (Pages × PageSize)
	Rounds uint64 // writeback rounds started
	Errors uint64 // flush callbacks that returned an error
}

// Stats returns current counters.
func (w *Writer) Stats() WriterStats {
	return WriterStats{
		Pages:  w.pages.Load(),
		Bytes:  w.bytes.Load(),
		Rounds: w.rounds.Load(),
		Errors: w.errs.Load(),
	}
}
