// Package pager implements the on-disk half of the disk-paged storage
// tier: a checksummed page file with shadow-paging checkpoints, plus a
// sharded pinning page cache (cache.go) that the upper layers fault
// pages through.
//
// # Page file
//
// The file is an array of fixed 4 KiB pages. Pages 0 and 1 hold two
// superblock generations; every other page carries a 16-byte header
// (CRC32C over the rest of the page, a type tag, and a chain pointer
// used by the metadata chain) followed by 4080 payload bytes.
//
// Durability is shadow-paged: between checkpoints nothing referenced
// by the last durable superblock is ever overwritten. Mutators
// allocate replacement pages (Alloc), write them, and Free the old
// ones; Free parks the page in a pending list that becomes
// allocatable only after the next Commit. Commit writes the metadata
// chain (free list + caller metadata) to fresh pages, fsyncs, then
// publishes the new epoch by writing the *inactive* superblock slot
// and fsyncing again. A crash at any byte offset therefore leaves the
// previous superblock — and every page it references — bit-identical
// on disk; Open falls back across the two superblock generations and
// fails loudly (ErrCorrupt/ErrChecksum) when neither verifies. The
// crash property test exercises this at every file offset.
//
// Page payloads are written in native byte order (the file is a
// single-machine store, not an interchange format); the CRC detects
// torn or corrupted pages regardless of endianness.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

const (
	// PageSize is the fixed on-disk page size.
	PageSize = 4096
	// headerSize is the per-page header: crc32c u32, type u8, three
	// reserved bytes, and an int64 chain pointer.
	headerSize = 16
	// PayloadSize is the usable payload per page.
	PayloadSize = PageSize - headerSize

	pagerMagic   = "PLNRPAGE"
	pagerVersion = 1

	// superblockSize is the encoded superblock prefix (the rest of
	// its two pages is zero padding).
	superblockSize = 60
)

// Page type tags. The pager reserves PageMeta for its metadata chain;
// the remaining tags classify caller payloads so a misdirected read
// fails loudly instead of decoding garbage.
const (
	PageMeta  byte = 1
	PageLeaf  byte = 2
	PageInner byte = 3
	PageBlob  byte = 4
)

// Sentinel errors. ErrCorrupt means the file has no recoverable
// superblock/metadata; ErrChecksum means a specific page failed its
// CRC. Both are wrapped with positional detail.
var (
	ErrCorrupt  = errors.New("pager: no valid superblock")
	ErrChecksum = errors.New("pager: page checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// File is an open page file. Alloc/Free/WritePage/Commit are guarded
// by an internal mutex; ReadPage is lock-free (positional reads into
// a caller buffer) so concurrent faults from several trees do not
// serialize on the allocator.
type File struct {
	mu sync.Mutex

	f    *os.File
	path string

	epoch    uint64  // guarded by mu
	slot     int     // guarded by mu; superblock slot holding the current epoch (0 or 1)
	nPages   int64   // guarded by mu; allocation high-water mark, including the 2 superblocks
	cpLSN    uint64  // guarded by mu
	meta     []byte  // guarded by mu; caller metadata from the last commit
	metaPage []int64 // guarded by mu

	freeList    []int64 // guarded by mu; unreferenced by the durable checkpoint: writable now
	pendingFree []int64 // guarded by mu; freed this epoch but still referenced: writable after Commit
}

type superblock struct {
	epoch    uint64
	nPages   int64
	metaRoot int64
	metaLen  uint32
	cpLSN    uint64
}

func encodeSuperblock(buf []byte, sb superblock) {
	for i := range buf {
		buf[i] = 0
	}
	copy(buf[0:8], pagerMagic)
	binary.LittleEndian.PutUint32(buf[8:12], pagerVersion)
	binary.LittleEndian.PutUint32(buf[12:16], PageSize)
	binary.LittleEndian.PutUint64(buf[16:24], sb.epoch)
	binary.LittleEndian.PutUint64(buf[24:32], uint64(sb.nPages))
	binary.LittleEndian.PutUint64(buf[32:40], uint64(sb.metaRoot))
	binary.LittleEndian.PutUint32(buf[40:44], sb.metaLen)
	binary.LittleEndian.PutUint64(buf[44:52], sb.cpLSN)
	crc := crc32.Checksum(buf[0:superblockSize-8], castagnoli)
	binary.LittleEndian.PutUint32(buf[superblockSize-8:superblockSize-4], crc)
}

func decodeSuperblock(buf []byte) (superblock, bool) {
	var sb superblock
	if len(buf) < superblockSize {
		return sb, false
	}
	if string(buf[0:8]) != pagerMagic {
		return sb, false
	}
	if binary.LittleEndian.Uint32(buf[8:12]) != pagerVersion {
		return sb, false
	}
	if binary.LittleEndian.Uint32(buf[12:16]) != PageSize {
		return sb, false
	}
	crc := crc32.Checksum(buf[0:superblockSize-8], castagnoli)
	if crc != binary.LittleEndian.Uint32(buf[superblockSize-8:superblockSize-4]) {
		return sb, false
	}
	sb.epoch = binary.LittleEndian.Uint64(buf[16:24])
	sb.nPages = int64(binary.LittleEndian.Uint64(buf[24:32]))
	sb.metaRoot = int64(binary.LittleEndian.Uint64(buf[32:40]))
	sb.metaLen = binary.LittleEndian.Uint32(buf[40:44])
	sb.cpLSN = binary.LittleEndian.Uint64(buf[44:52])
	if sb.nPages < 2 {
		return sb, false
	}
	return sb, true
}

// Create builds a fresh page file at path whose first checkpoint
// (epoch 1, the given metadata and LSN) is already durable. The file
// is assembled under a temporary name and renamed into place with a
// directory fsync, so a crash mid-create leaves either no file or a
// complete one — never a torn superblock at the live path.
func Create(path string, userMeta []byte, cpLSN uint64) (*File, error) {
	tmp := path + ".tmp"
	osf, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	f := &File{
		f:      osf,
		path:   path,
		epoch:  0,
		slot:   1, // first Commit writes slot 0
		nPages: 2,
	}
	if err := f.commitLocked(userMeta, cpLSN); err != nil {
		err = errors.Join(err, osf.Close(), os.Remove(tmp))
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, errors.Join(err, osf.Close())
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, errors.Join(err, osf.Close())
	}
	return f, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	return errors.Join(err, d.Close())
}

// Open opens an existing page file, picking the newest superblock
// whose metadata chain verifies and falling back to the older
// generation otherwise. It returns ErrCorrupt (wrapped) when neither
// generation is recoverable.
func Open(path string) (*File, error) {
	osf, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	f := &File{f: osf, path: path}
	if err := f.recover(); err != nil {
		return nil, errors.Join(err, osf.Close())
	}
	return f, nil
}

// recover runs from Open before the File is published to any other
// goroutine, so it initialises mu-guarded fields without the lock.
//
//planar:locked
func (f *File) recover() error {
	var buf [2 * PageSize]byte
	n, err := f.f.ReadAt(buf[:], 0)
	if err != nil && n < 2*PageSize {
		return fmt.Errorf("%w: short superblock region (%d bytes): %v", ErrCorrupt, n, err)
	}
	type cand struct {
		sb   superblock
		slot int
	}
	var cands []cand
	for slot := 0; slot < 2; slot++ {
		if sb, ok := decodeSuperblock(buf[slot*PageSize:]); ok {
			cands = append(cands, cand{sb, slot})
		}
	}
	if len(cands) == 2 && cands[0].sb.epoch < cands[1].sb.epoch {
		cands[0], cands[1] = cands[1], cands[0]
	}
	var firstErr error
	for _, c := range cands {
		meta, pages, err := f.readMetaChain(c.sb)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		free, user, err := decodeMetaBlob(meta)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.epoch = c.sb.epoch
		f.slot = c.slot
		f.nPages = c.sb.nPages
		f.cpLSN = c.sb.cpLSN
		f.meta = user
		f.metaPage = pages
		f.freeList = free
		f.pendingFree = nil
		return nil
	}
	if firstErr != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, firstErr)
	}
	return ErrCorrupt
}

// readMetaChain walks the metadata chain rooted at sb.metaRoot and
// returns the concatenated blob plus the chain's page numbers.
func (f *File) readMetaChain(sb superblock) ([]byte, []int64, error) {
	if sb.metaRoot < 0 {
		if sb.metaLen != 0 {
			return nil, nil, fmt.Errorf("pager: superblock epoch %d has no meta root but %d meta bytes", sb.epoch, sb.metaLen)
		}
		return nil, nil, nil
	}
	// Walk to the chain terminator, not just to metaLen: a chain can
	// carry zero-padding tail pages (the commit sizes it before the
	// final free list is known) and those must be tracked so the next
	// commit retires them.
	blob := make([]byte, 0, sb.metaLen+PayloadSize)
	var pages []int64
	var buf [PageSize]byte
	for page := sb.metaRoot; page != -1; {
		if page < 2 || page >= sb.nPages {
			return nil, nil, fmt.Errorf("pager: meta chain page %d out of range [2,%d)", page, sb.nPages)
		}
		if int64(len(pages)) >= sb.nPages {
			return nil, nil, fmt.Errorf("pager: meta chain cycle at page %d", page)
		}
		typ, next, err := f.readPageInto(page, buf[:])
		if err != nil {
			return nil, nil, err
		}
		if typ != PageMeta {
			return nil, nil, fmt.Errorf("pager: meta chain page %d has type %d", page, typ)
		}
		pages = append(pages, page)
		blob = append(blob, buf[headerSize:]...)
		page = next
	}
	if len(blob) < int(sb.metaLen) {
		return nil, nil, fmt.Errorf("pager: meta chain holds %d bytes, superblock says %d", len(blob), sb.metaLen)
	}
	return blob[:sb.metaLen], pages, nil
}

// encodeMetaBlob serializes the post-commit free list plus the caller
// metadata.
func encodeMetaBlob(free []int64, user []byte) []byte {
	blob := make([]byte, 0, 4+8*len(free)+4+len(user))
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(free)))
	for _, p := range free {
		blob = binary.LittleEndian.AppendUint64(blob, uint64(p))
	}
	blob = binary.LittleEndian.AppendUint32(blob, uint32(len(user)))
	blob = append(blob, user...)
	return blob
}

func decodeMetaBlob(blob []byte) (free []int64, user []byte, err error) {
	if len(blob) == 0 {
		return nil, nil, nil
	}
	if len(blob) < 4 {
		return nil, nil, fmt.Errorf("pager: meta blob truncated (%d bytes)", len(blob))
	}
	nf := int(binary.LittleEndian.Uint32(blob))
	blob = blob[4:]
	if len(blob) < 8*nf+4 {
		return nil, nil, fmt.Errorf("pager: meta blob truncated (free list wants %d entries)", nf)
	}
	free = make([]int64, nf)
	for i := range free {
		free[i] = int64(binary.LittleEndian.Uint64(blob[8*i:]))
	}
	blob = blob[8*nf:]
	nu := int(binary.LittleEndian.Uint32(blob))
	blob = blob[4:]
	if len(blob) != nu {
		return nil, nil, fmt.Errorf("pager: meta blob has %d user bytes, header says %d", len(blob), nu)
	}
	return free, blob, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Meta returns the caller metadata recorded by the last durable
// commit. The slice must not be modified.
func (f *File) Meta() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meta
}

// CheckpointLSN returns the LSN recorded by the last durable commit.
func (f *File) CheckpointLSN() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.cpLSN
}

// NumPages returns the allocation high-water mark in pages, including
// the two superblocks.
func (f *File) NumPages() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nPages
}

// Alloc returns a page number that is safe to write before the next
// Commit: either a recycled page the durable checkpoint no longer
// references, or a fresh page past the end of the file.
func (f *File) Alloc() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.allocLocked()
}

func (f *File) allocLocked() int64 {
	if n := len(f.freeList); n > 0 {
		p := f.freeList[n-1]
		f.freeList = f.freeList[:n-1]
		return p
	}
	p := f.nPages
	f.nPages++
	return p
}

// Free releases a page. Because the durable checkpoint may still
// reference it, the page joins the pending list and only becomes
// allocatable after the next Commit.
func (f *File) Free(page int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pendingFree = append(f.pendingFree, page)
}

// WritePage writes a payload (at most PayloadSize bytes; shorter
// payloads are zero-padded) to the given page with the given type
// tag. The write is not synced; Commit's fsync covers it.
func (f *File) WritePage(page int64, typ byte, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writePageLocked(page, typ, -1, payload)
}

func (f *File) writePageLocked(page int64, typ byte, next int64, payload []byte) error {
	if len(payload) > PayloadSize {
		return fmt.Errorf("pager: payload %d exceeds page payload %d", len(payload), PayloadSize)
	}
	if page < 2 {
		return fmt.Errorf("pager: write to reserved page %d", page)
	}
	var buf [PageSize]byte
	buf[4] = typ
	binary.LittleEndian.PutUint64(buf[8:16], uint64(next))
	copy(buf[headerSize:], payload)
	crc := crc32.Checksum(buf[4:], castagnoli)
	binary.LittleEndian.PutUint32(buf[0:4], crc)
	_, err := f.f.WriteAt(buf[:], page*PageSize)
	return err
}

// ReadPage reads the page's payload into buf (which must hold at
// least PayloadSize bytes), verifying the checksum, and returns the
// page's type tag. It is safe for concurrent use.
func (f *File) ReadPage(page int64, buf []byte) (byte, error) {
	var pb [PageSize]byte
	typ, _, err := f.readPageInto(page, pb[:])
	if err != nil {
		return 0, err
	}
	copy(buf, pb[headerSize:])
	return typ, nil
}

func (f *File) readPageInto(page int64, buf []byte) (typ byte, next int64, err error) {
	if page < 2 {
		return 0, 0, fmt.Errorf("pager: read of reserved page %d", page)
	}
	if _, err := f.f.ReadAt(buf[:PageSize], page*PageSize); err != nil {
		return 0, 0, fmt.Errorf("pager: read page %d: %w", page, err)
	}
	crc := crc32.Checksum(buf[4:PageSize], castagnoli)
	if crc != binary.LittleEndian.Uint32(buf[0:4]) {
		return 0, 0, fmt.Errorf("%w: page %d", ErrChecksum, page)
	}
	return buf[4], int64(binary.LittleEndian.Uint64(buf[8:16])), nil
}

// Commit durably publishes the current state: it writes the metadata
// chain (post-commit free list + userMeta) to freshly allocated
// pages, fsyncs all page writes since the last commit, flips the
// inactive superblock slot to the new epoch, and fsyncs again. After
// Commit returns, pages freed before the call are allocatable.
func (f *File) Commit(userMeta []byte, cpLSN uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.commitLocked(userMeta, cpLSN)
}

func (f *File) commitLocked(userMeta []byte, cpLSN uint64) error {
	// Retire the old metadata chain; the new one must not reuse its
	// pages before the superblock flip, and Alloc only serves the
	// free list, so parking them in pendingFree is enough.
	f.pendingFree = append(f.pendingFree, f.metaPage...)
	f.metaPage = nil

	// The blob embeds the post-commit free list, but allocating the
	// chain's own pages can shrink the current free list. Size the
	// chain for the worst case, allocate, then encode the final
	// lists; the blob can only have shrunk, so it still fits.
	worst := 4 + 8*(len(f.freeList)+len(f.pendingFree)) + 4 + len(userMeta)
	nChain := (worst + PayloadSize - 1) / PayloadSize
	chain := make([]int64, nChain)
	for i := range chain {
		chain[i] = f.allocLocked()
	}
	nextFree := make([]int64, 0, len(f.freeList)+len(f.pendingFree))
	nextFree = append(nextFree, f.freeList...)
	nextFree = append(nextFree, f.pendingFree...)
	blob := encodeMetaBlob(nextFree, userMeta)

	for i, page := range chain {
		next := int64(-1)
		if i+1 < len(chain) {
			next = chain[i+1]
		}
		lo := i * PayloadSize
		hi := lo + PayloadSize
		if hi > len(blob) {
			hi = len(blob)
		}
		var payload []byte
		if lo < len(blob) {
			payload = blob[lo:hi]
		}
		if err := f.writePageLocked(page, PageMeta, next, payload); err != nil {
			return err
		}
	}
	if err := f.f.Sync(); err != nil {
		return err
	}

	sb := superblock{
		epoch:  f.epoch + 1,
		nPages: f.nPages,
		cpLSN:  cpLSN,
	}
	sb.metaRoot = -1
	if len(chain) > 0 {
		sb.metaRoot = chain[0]
	}
	sb.metaLen = uint32(len(blob))
	var sbuf [PageSize]byte
	encodeSuperblock(sbuf[:], sb)
	slot := 1 - f.slot
	if _, err := f.f.WriteAt(sbuf[:], int64(slot)*PageSize); err != nil {
		return err
	}
	if err := f.f.Sync(); err != nil {
		return err
	}

	f.epoch = sb.epoch
	f.slot = slot
	f.cpLSN = cpLSN
	f.meta = append([]byte(nil), userMeta...)
	f.metaPage = chain
	f.freeList = nextFree
	f.pendingFree = nil
	return nil
}

// Close closes the file without committing: in-memory state that was
// never committed is discarded, and the next Open recovers the last
// durable checkpoint.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.f == nil {
		return nil
	}
	err := f.f.Close()
	f.f = nil
	return err
}
