package pager

import (
	"fmt"
	"testing"
)

func fillSeed(seed byte) func([]byte) error {
	return func(buf []byte) error {
		for i := range buf {
			buf[i] = seed
		}
		return nil
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	fr, err := c.Get(7, fillSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Bytes()[0] != 9 {
		t.Fatal("fill did not run")
	}
	c.Unpin(fr)
	fr2, err := c.Get(7, func([]byte) error {
		t.Fatal("fill ran on a resident page")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin(fr2)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestCacheEvictsOnlyCleanUnpinned(t *testing.T) {
	c := NewCache(0, PayloadSize) // floor capacity: 4 frames per shard
	// Pin one frame and dirty another; then stream many keys through.
	pinned, err := c.Get(1, fillSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := c.Get(2, fillSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	c.MarkDirty(dirty)
	c.Unpin(dirty)
	for k := uint64(100); k < 400; k++ {
		fr, err := c.Get(k, fillSeed(byte(k)))
		if err != nil {
			t.Fatal(err)
		}
		c.Unpin(fr)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("streaming through a floor-sized cache evicted nothing")
	}
	if _, ok := c.Lookup(1); !ok {
		t.Fatal("pinned frame was evicted")
	}
	if _, ok := c.Lookup(2); !ok {
		t.Fatal("dirty frame was evicted")
	}
	if pinned.Bytes()[0] != 1 || dirty.Bytes()[0] != 2 {
		t.Fatal("protected frame contents clobbered")
	}
}

func TestCacheRekey(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	fr, err := c.Get(5, fillSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	c.Rekey(fr, 900)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("old key still resident after Rekey")
	}
	got, ok := c.Lookup(900)
	if !ok {
		t.Fatal("new key not resident after Rekey")
	}
	if got != fr || got.Bytes()[0] != 5 {
		t.Fatal("Rekey moved the wrong frame")
	}
	c.Unpin(got)
	c.Unpin(fr)
}

func TestCacheDrop(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	fr, err := c.Get(5, fillSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	c.MarkDirty(fr)
	c.Drop(5)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("dropped key still resident")
	}
	// The outstanding pin stays valid and releasable.
	if fr.Bytes()[0] != 5 {
		t.Fatal("dropped frame buffer reused while pinned")
	}
	c.Unpin(fr)
}

func TestCacheFillError(t *testing.T) {
	c := NewCache(1<<20, PayloadSize)
	wantErr := fmt.Errorf("boom")
	if _, err := c.Get(3, func([]byte) error { return wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The failed frame must not be resident.
	if _, ok := c.Lookup(3); ok {
		t.Fatal("failed fill left a frame resident")
	}
	// And a retry must re-run fill.
	fr, err := c.Get(3, fillSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	c.Unpin(fr)
}

func TestCacheSoftCapacityGrowsWhenAllProtected(t *testing.T) {
	c := NewCache(0, PayloadSize)
	var frames []*Frame
	// Pin far more frames than the floor capacity; Get must keep
	// succeeding (soft cap) rather than deadlock or fail.
	for k := uint64(0); k < 200; k++ {
		fr, err := c.Get(k, fillSeed(byte(k)))
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	if got := c.Stats().Resident; got < 200 {
		t.Fatalf("resident = %d, want >= 200", got)
	}
	for i, fr := range frames {
		if fr.Bytes()[0] != byte(i) {
			t.Fatalf("pinned frame %d clobbered", i)
		}
		c.Unpin(fr)
	}
}
