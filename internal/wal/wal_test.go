package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(logPath(t), 0); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := Open(logPath(t), -1); err == nil {
		t.Error("negative dim accepted")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := logPath(t)
	w, err := Create(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Op: OpAppend, ID: 0, Vec: []float64{1, 2}},
		{Op: OpAppend, ID: 1, Vec: []float64{3, 4}},
		{Op: OpUpdate, ID: 0, Vec: []float64{5, 6}},
		{Op: OpRemove, ID: 1},
		{Op: OpAppend, ID: 1, Vec: []float64{7, 8}},
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) || len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", n, len(records))
	}
	for i, r := range records {
		g := got[i]
		if g.Op != r.Op || g.ID != r.ID || len(g.Vec) != len(r.Vec) {
			t.Fatalf("record %d: got %+v want %+v", i, g, r)
		}
		for j := range r.Vec {
			if g.Vec[j] != r.Vec[j] {
				t.Fatalf("record %d vec mismatch", i)
			}
		}
	}
}

func TestAppendValidation(t *testing.T) {
	w, err := Create(logPath(t), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Op: Op(9), ID: 0, Vec: []float64{1, 2}}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := w.Append(Record{Op: OpAppend, ID: 0, Vec: []float64{1}}); err == nil {
		t.Error("wrong-dim vector accepted")
	}
	if err := w.Append(Record{Op: OpRemove, ID: 0, Vec: []float64{1, 2}}); err == nil {
		t.Error("remove with vector accepted")
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nothing.log"), func(Record) error {
		t.Fatal("callback invoked")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTornTailStopsReplay(t *testing.T) {
	path := logPath(t)
	w, _ := Create(path, 2)
	w.Append(Record{Op: OpAppend, ID: 0, Vec: []float64{1, 2}})
	w.Append(Record{Op: OpAppend, ID: 1, Vec: []float64{3, 4}})
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record: only the first record should replay.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("torn tail: n=%d err=%v", n, err)
	}

	// Corrupt the second record's payload: same outcome.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err = Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("corrupt record: n=%d err=%v", n, err)
	}
}

func TestOpenAppendsToExisting(t *testing.T) {
	path := logPath(t)
	w, _ := Create(path, 1)
	w.Append(Record{Op: OpAppend, ID: 0, Vec: []float64{1}})
	w.Close()
	w2, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2.Append(Record{Op: OpAppend, ID: 1, Vec: []float64{2}})
	w2.Close()
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
