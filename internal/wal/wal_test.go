package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func logPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(logPath(t), 0, 1); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := Open(logPath(t), -1); err == nil {
		t.Error("negative dim accepted")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := logPath(t)
	w, err := Create(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	records := []Record{
		{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}},
		{Op: OpAppend, LSN: 2, ID: 1, Vec: []float64{3, 4}},
		{Op: OpUpdate, LSN: 3, ID: 0, Vec: []float64{5, 6}},
		{Op: OpRemove, LSN: 4, ID: 1},
		{Op: OpAppend, LSN: 5, ID: 1, Vec: []float64{7, 8}},
	}
	for _, r := range records {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	n, err := Replay(path, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(records) || len(got) != len(records) {
		t.Fatalf("replayed %d records, want %d", n, len(records))
	}
	for i, r := range records {
		g := got[i]
		if g.Op != r.Op || g.ID != r.ID || g.LSN != r.LSN || len(g.Vec) != len(r.Vec) {
			t.Fatalf("record %d: got %+v want %+v", i, g, r)
		}
		for j := range r.Vec {
			if g.Vec[j] != r.Vec[j] {
				t.Fatalf("record %d vec mismatch", i)
			}
		}
	}
}

func TestAppendValidation(t *testing.T) {
	w, err := Create(logPath(t), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Op: Op(9), LSN: 1, ID: 0, Vec: []float64{1, 2}}); err == nil {
		t.Error("unknown op accepted")
	}
	if err := w.Append(Record{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1}}); err == nil {
		t.Error("wrong-dim vector accepted")
	}
	if err := w.Append(Record{Op: OpRemove, LSN: 1, ID: 0, Vec: []float64{1, 2}}); err == nil {
		t.Error("remove with vector accepted")
	}
	if err := w.Append(Record{Op: OpAppend, LSN: 0, ID: 0, Vec: []float64{1, 2}}); err == nil {
		t.Error("LSN 0 (below base) accepted")
	}
	if err := w.Append(Record{Op: OpAppend, LSN: 7, ID: 0, Vec: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Op: OpAppend, LSN: 7, ID: 1, Vec: []float64{3, 4}}); err == nil {
		t.Error("repeated LSN accepted")
	}
	if got := w.NextLSN(); got != 8 {
		t.Errorf("NextLSN = %d, want 8", got)
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nothing.log"), func(Record) error {
		t.Fatal("callback invoked")
		return nil
	})
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTornTailStopsReplay(t *testing.T) {
	path := logPath(t)
	w, _ := Create(path, 2, 1)
	w.Append(Record{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}})
	w.Append(Record{Op: OpAppend, LSN: 2, ID: 1, Vec: []float64{3, 4}})
	w.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record: only the first record should replay.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("torn tail: n=%d err=%v", n, err)
	}

	// Corrupt the second record's payload: same outcome.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err = Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("corrupt record: n=%d err=%v", n, err)
	}
}

func TestOpenAppendsToExisting(t *testing.T) {
	path := logPath(t)
	w, _ := Create(path, 1, 1)
	w.Append(Record{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1}})
	w.Close()
	w2, err := Open(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w2.NextLSN() != 2 {
		t.Fatalf("NextLSN = %d, want 2", w2.NextLSN())
	}
	w2.Append(Record{Op: OpAppend, LSN: 2, ID: 1, Vec: []float64{2}})
	w2.Close()
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestEmptySegmentKeepsBase(t *testing.T) {
	path := logPath(t)
	w, err := Create(path, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := Open(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.BaseLSN() != 42 || w2.NextLSN() != 42 {
		t.Fatalf("base=%d next=%d, want 42/42", w2.BaseLSN(), w2.NextLSN())
	}
}

func TestSegmentPositions(t *testing.T) {
	path := logPath(t)
	w, _ := Create(path, 2, 1)
	w.Append(Record{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}})
	w.Append(Record{Op: OpRemove, LSN: 2, ID: 0})
	w.Close()

	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	if seg.Pos() != HeaderSize {
		t.Fatalf("initial pos %d", seg.Pos())
	}
	if _, err := seg.Next(); err != nil {
		t.Fatal(err)
	}
	// op(1) lsn(8) id(4) n(2) vec(16) crc(4) = 35 bytes.
	if seg.Pos() != HeaderSize+35 {
		t.Fatalf("pos after dim-2 append: %d", seg.Pos())
	}
	if _, err := seg.Next(); err != nil {
		t.Fatal(err)
	}
	if seg.Pos() != HeaderSize+35+19 || seg.LastLSN() != 2 {
		t.Fatalf("pos=%d last=%d", seg.Pos(), seg.LastLSN())
	}
	if _, err := seg.Next(); !IsTail(err) {
		t.Fatalf("expected tail, got %v", err)
	}
}

// TestTornTailRecoveryEveryOffset is the torn-write property test: a
// log of k records chopped at every byte offset inside the last
// record must recover exactly k-1 records, truncate the torn bytes,
// and accept new appends at the right LSN.
func TestTornTailRecoveryEveryOffset(t *testing.T) {
	dir := t.TempDir()
	build := func(path string) (lastStart int64, total int64) {
		w, err := Create(path, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := w.Append(Record{Op: OpAppend, LSN: uint64(i + 1), ID: uint32(i), Vec: []float64{float64(i), 1}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Append(Record{Op: OpUpdate, LSN: 5, ID: 2, Vec: []float64{9, 9}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Records are fixed-size here: 19+8*2 = 35 bytes each.
		return st.Size() - 35, st.Size()
	}

	ref := filepath.Join(dir, "ref.log")
	lastStart, total := build(ref)
	raw, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	for cut := lastStart; cut < total; cut++ {
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := Replay(path, func(Record) error { return nil })
		if err != nil || n != 4 {
			t.Fatalf("cut %d: replayed n=%d err=%v", cut, n, err)
		}
		w, err := Open(path, 2)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if cut > lastStart && w.Recovered() != cut-lastStart {
			t.Fatalf("cut %d: recovered %d bytes, want %d", cut, w.Recovered(), cut-lastStart)
		}
		if w.NextLSN() != 5 {
			t.Fatalf("cut %d: NextLSN=%d, want 5", cut, w.NextLSN())
		}
		if st, _ := os.Stat(path); st.Size() != lastStart {
			t.Fatalf("cut %d: file not truncated to %d (got %d)", cut, lastStart, st.Size())
		}
		// The log must remain appendable after recovery.
		if err := w.Append(Record{Op: OpRemove, LSN: 5, ID: 0}); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		n, err = Replay(path, func(Record) error { return nil })
		if err != nil || n != 5 {
			t.Fatalf("cut %d: post-recovery replay n=%d err=%v", cut, n, err)
		}
	}

	// CRC corruption in the final record: same recovery, every byte.
	for off := lastStart; off < total; off++ {
		path := filepath.Join(dir, "corrupt.log")
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xA5
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := Open(path, 2)
		if err != nil {
			t.Fatalf("corrupt at %d: open: %v", off, err)
		}
		if w.NextLSN() != 5 {
			// Flipping a bit inside the LSN field can still yield a
			// valid-looking record only if the CRC matches, which it
			// cannot; so recovery must always land on LSN 5.
			t.Fatalf("corrupt at %d: NextLSN=%d, want 5", off, w.NextLSN())
		}
		w.Close()
	}
}

func TestAppendBatchReplayRoundTrip(t *testing.T) {
	path := logPath(t)
	w, err := Create(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A plain record, a 3-record batch, and a trailing plain record:
	// replay must see one flat sequence with dense LSNs.
	if err := w.Append(Record{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		{Op: OpAppend, LSN: 2, ID: 1, Vec: []float64{3, 4}},
		{Op: OpUpdate, LSN: 3, ID: 0, Vec: []float64{5, 6}},
		{Op: OpRemove, LSN: 4, ID: 1},
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if w.NextLSN() != 5 {
		t.Fatalf("NextLSN after batch = %d, want 5", w.NextLSN())
	}
	if err := w.Append(Record{Op: OpAppend, LSN: 5, ID: 1, Vec: []float64{7, 8}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	if _, err := Replay(path, func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	want := []Record{
		{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}},
		{Op: OpAppend, LSN: 2, ID: 1, Vec: []float64{3, 4}},
		{Op: OpUpdate, LSN: 3, ID: 0, Vec: []float64{5, 6}},
		{Op: OpRemove, LSN: 4, ID: 1},
		{Op: OpAppend, LSN: 5, ID: 1, Vec: []float64{7, 8}},
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range want {
		g := got[i]
		if g.Op != r.Op || g.ID != r.ID || g.LSN != r.LSN || len(g.Vec) != len(r.Vec) {
			t.Fatalf("record %d: got %+v want %+v", i, g, r)
		}
		for j := range r.Vec {
			if g.Vec[j] != r.Vec[j] {
				t.Fatalf("record %d vec mismatch", i)
			}
		}
	}

	// Reopen lands past the batch and stays appendable.
	w2, err := Open(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.NextLSN() != 6 {
		t.Fatalf("reopened NextLSN = %d, want 6", w2.NextLSN())
	}
}

func TestAppendBatchValidation(t *testing.T) {
	w, err := Create(logPath(t), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if err := w.AppendBatch([]Record{
		{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}},
		{Op: OpAppend, LSN: 3, ID: 1, Vec: []float64{3, 4}},
	}); err == nil {
		t.Error("gapped batch LSNs accepted")
	}
	if err := w.AppendBatch([]Record{
		{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}},
		{Op: OpAppend, LSN: 2, ID: 1, Vec: []float64{3}},
	}); err == nil {
		t.Error("wrong-dim vector in batch accepted")
	}
	if err := w.AppendBatch([]Record{
		{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}},
		{Op: Op(9), LSN: 2, ID: 1, Vec: []float64{3, 4}},
	}); err == nil {
		t.Error("unknown op in batch accepted")
	}
	// Single-record batches degrade to plain appends: a flat decoder
	// (the replication stream) must be able to read the result.
	if err := w.AppendBatch([]Record{{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatch([]Record{
		{Op: OpAppend, LSN: 1, ID: 1, Vec: []float64{1, 2}},
		{Op: OpAppend, LSN: 2, ID: 2, Vec: []float64{3, 4}},
	}); err == nil {
		t.Error("batch base below segment position accepted")
	}
}

// TestTornBatchRecoveryEveryOffset extends the torn-write property to
// group commit: a segment ending in a batch frame chopped (or
// corrupted) at every byte offset inside the frame must either drop
// the whole batch or replay the whole batch — never a prefix.
func TestTornBatchRecoveryEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	w, err := Create(ref, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Two plain records, then a 3-record batch frame at the tail.
	for i := 0; i < 2; i++ {
		if err := w.Append(Record{Op: OpAppend, LSN: uint64(i + 1), ID: uint32(i), Vec: []float64{float64(i), 1}}); err != nil {
			t.Fatal(err)
		}
	}
	batch := []Record{
		{Op: OpAppend, LSN: 3, ID: 2, Vec: []float64{2, 1}},
		{Op: OpUpdate, LSN: 4, ID: 0, Vec: []float64{9, 9}},
		{Op: OpRemove, LSN: 5, ID: 1},
	}
	if err := w.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Frame layout: op(1) base(8) count(2) + append(7+16) + update(7+16)
	// + remove(7) + crc(4).
	frameSize := int64(11 + 23 + 23 + 7 + 4)
	frameStart := int64(len(raw)) - frameSize
	if frameStart != HeaderSize+2*35 {
		t.Fatalf("frame start %d, want %d", frameStart, HeaderSize+2*35)
	}

	check := func(tag string, data []byte, wantN int, wantNext uint64) {
		t.Helper()
		path := filepath.Join(dir, "cut.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n, err := Replay(path, func(Record) error { return nil })
		if err != nil || n != wantN {
			t.Fatalf("%s: replayed n=%d err=%v, want %d", tag, n, err, wantN)
		}
		w, err := Open(path, 2)
		if err != nil {
			t.Fatalf("%s: open: %v", tag, err)
		}
		if w.NextLSN() != wantNext {
			t.Fatalf("%s: NextLSN=%d, want %d", tag, w.NextLSN(), wantNext)
		}
		w.Close()
	}

	// Chopped anywhere inside the frame: the whole batch drops.
	for cut := frameStart; cut < int64(len(raw)); cut++ {
		check(fmt.Sprintf("cut %d", cut), raw[:cut], 2, 3)
	}
	// Intact frame: the whole batch replays.
	check("intact", raw, 5, 6)
	// A bit flipped anywhere inside the frame: CRC rejects the whole
	// batch as one unit.
	for off := frameStart; off < int64(len(raw)); off++ {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xA5
		check(fmt.Sprintf("corrupt %d", off), bad, 2, 3)
	}
}

func TestDecodeRecordRejectsBatchFrame(t *testing.T) {
	var buf bytes.Buffer
	recs := []Record{
		{Op: OpAppend, LSN: 1, ID: 0, Vec: []float64{1, 2}},
		{Op: OpRemove, LSN: 2, ID: 0},
	}
	if err := EncodeBatch(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// The replication stream carries only flat records; a batch frame
	// arriving there is wire corruption, not something to expand.
	if _, err := DecodeRecord(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("DecodeRecord on batch frame: %v, want ErrCorrupt", err)
	}
}
