// Package wal implements a write-ahead log for dynamic planar index
// maintenance: every Append/Update/Remove against the point store is
// recorded as a CRC-protected binary record before being applied, so
// a process restart can rebuild the exact store state by replaying
// the log on top of the last snapshot (package codec). Indexes are
// rebuilt from their recorded normals — bulk loading is loglinear,
// which the paper measures as cheap (Figure 13(a)).
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Op is the kind of a logged mutation.
type Op uint8

const (
	// OpAppend adds a point (the id it received is recorded).
	OpAppend Op = 1
	// OpUpdate replaces a point's φ vector.
	OpUpdate Op = 2
	// OpRemove deletes a point.
	OpRemove Op = 3
)

// Record is one logged mutation.
type Record struct {
	Op  Op
	ID  uint32
	Vec []float64 // empty for OpRemove
}

// ErrCorrupt reports a record that failed its checksum; replay stops
// at the last good record (standard torn-write handling).
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends records to a log file.
type Writer struct {
	f   *os.File
	bw  *bufio.Writer
	dim int
}

// Create opens a fresh log (truncating any existing file) for
// dim-dimensional vectors.
func Create(path string, dim int) (*Writer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("wal: dimension must be positive, got %d", dim)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), dim: dim}, nil
}

// Open opens an existing log for appending.
func Open(path string, dim int) (*Writer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("wal: dimension must be positive, got %d", dim)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), dim: dim}, nil
}

// Append logs one record. The record is buffered; call Sync to force
// it to stable storage.
func (w *Writer) Append(r Record) error {
	if r.Op != OpAppend && r.Op != OpUpdate && r.Op != OpRemove {
		return fmt.Errorf("wal: unknown op %d", r.Op)
	}
	if r.Op == OpRemove {
		if len(r.Vec) != 0 {
			return errors.New("wal: remove record must not carry a vector")
		}
	} else if len(r.Vec) != w.dim {
		return fmt.Errorf("wal: vector has dimension %d, want %d", len(r.Vec), w.dim)
	}
	// Record layout: op(1) id(4) n(2) vec(8n) crc(4), crc over all
	// preceding bytes.
	h := crc32.NewIEEE()
	out := io.MultiWriter(w.bw, h)
	if err := binary.Write(out, binary.LittleEndian, uint8(r.Op)); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, r.ID); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint16(len(r.Vec))); err != nil {
		return err
	}
	for _, v := range r.Vec {
		if err := binary.Write(out, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return binary.Write(w.bw, binary.LittleEndian, h.Sum32())
}

// Sync flushes buffered records and fsyncs the file.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Replay reads records from path and calls fn for each valid record
// in order. A record that fails its checksum or is truncated ends
// the replay silently (torn tail); any earlier corruption is
// indistinguishable from a torn tail and also ends the replay. The
// number of applied records is returned. A missing file replays
// zero records.
func Replay(path string, fn func(Record) error) (int, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	applied := 0
	for {
		r, err := readRecord(br)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt) {
				return applied, nil
			}
			return applied, err
		}
		if err := fn(r); err != nil {
			return applied, err
		}
		applied++
	}
}

func readRecord(br *bufio.Reader) (Record, error) {
	h := crc32.NewIEEE()
	hr := io.TeeReader(br, h)

	var op uint8
	if err := binary.Read(hr, binary.LittleEndian, &op); err != nil {
		return Record{}, err
	}
	var id uint32
	if err := binary.Read(hr, binary.LittleEndian, &id); err != nil {
		return Record{}, io.ErrUnexpectedEOF
	}
	var n uint16
	if err := binary.Read(hr, binary.LittleEndian, &n); err != nil {
		return Record{}, io.ErrUnexpectedEOF
	}
	if n > 1<<12 {
		return Record{}, ErrCorrupt
	}
	vec := make([]float64, n)
	for i := range vec {
		var b uint64
		if err := binary.Read(hr, binary.LittleEndian, &b); err != nil {
			return Record{}, io.ErrUnexpectedEOF
		}
		vec[i] = math.Float64frombits(b)
	}
	want := h.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return Record{}, io.ErrUnexpectedEOF
	}
	if got != want {
		return Record{}, ErrCorrupt
	}
	if n == 0 {
		vec = nil
	}
	return Record{Op: Op(op), ID: id, Vec: vec}, nil
}
