// Package wal implements a write-ahead log for dynamic planar index
// maintenance: every Append/Update/Remove against the point store is
// recorded as a CRC-protected binary record before being applied, so
// a process restart can rebuild the exact store state by replaying
// the log on top of the last snapshot (package codec). Indexes are
// rebuilt from their recorded normals — bulk loading is loglinear,
// which the paper measures as cheap (Figure 13(a)).
//
// Every record carries a log sequence number (LSN) assigned at commit
// time by the owner of the log (package replog). LSNs are global to a
// store, strictly increasing within one segment file, and are the
// cursor currency of the replication subsystem (package replica): a
// replica resumes streaming from its last applied LSN, and a segment
// file's header records the base LSN the segment starts at so an
// empty post-checkpoint segment still pins the sequence.
//
// Segment files are self-describing: a 16-byte header (magic + base
// LSN) followed by records laid out as
//
//	op(1) lsn(8) id(4) n(2) vec(8n) crc(4)
//
// with the CRC-32 covering all preceding bytes of the record. A
// truncated or CRC-broken final record is a torn tail: Open recovers
// by truncating the file back to the last good record, and iteration
// treats it as a clean end of log.
//
// Group commit (package ingest) journals a whole batch as one frame:
//
//	op(1)=batch baseLSN(8) count(2) {op(1) id(4) n(2) vec(8n)}×count crc(4)
//
// Sub-records carry implicit contiguous LSNs baseLSN, baseLSN+1, …
// and share the single trailing CRC, so a batch is atomic on disk by
// construction: a torn or corrupt batch frame fails as one unit and
// recovery truncates the whole batch — a partially fsynced group
// commit can never replay a prefix of its records. Segment iteration
// expands batch frames transparently, so replay and the catch-up feed
// see the same flat record sequence either way.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// Op is the kind of a logged mutation.
type Op uint8

const (
	// OpAppend adds a point (the id it received is recorded).
	OpAppend Op = 1
	// OpUpdate replaces a point's φ vector.
	OpUpdate Op = 2
	// OpRemove deletes a point.
	OpRemove Op = 3

	// opBatch frames a group-committed batch of records inside a
	// segment file. It never appears in Record.Op: iteration expands
	// the frame into its constituent mutation records.
	opBatch Op = 4
)

// MaxBatchRecords bounds how many records one batch frame may carry —
// both a sanity cap on decode (a corrupt count cannot allocate
// unboundedly) and the ceiling for the ingest pipeline's batch size.
const MaxBatchRecords = 1 << 12

// Record is one logged mutation. LSN is the commit sequence number;
// ID is shard-local in on-disk segments and global in replication
// streams (the translation happens at the shard boundary).
type Record struct {
	Op  Op
	LSN uint64
	ID  uint32
	Vec []float64 // empty for OpRemove
}

// ErrCorrupt reports a record that failed its checksum; replay stops
// at the last good record (standard torn-write handling).
var ErrCorrupt = errors.New("wal: corrupt record")

// segment header: 8-byte magic, 8-byte little-endian base LSN.
var segmentMagic = [8]byte{'P', 'W', 'A', 'L', '0', '0', '0', '1'}

// HeaderSize is the byte length of a segment file's header; the first
// record starts at this offset.
const HeaderSize = 16

// IsTail reports whether an iteration error marks the (possibly torn)
// end of a segment rather than an I/O failure: clean EOF, a record
// cut short mid-write, or a record that fails its checksum.
func IsTail(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrCorrupt)
}

// EncodeRecord writes one record in the segment wire format. The same
// encoding is used on disk and on the replication stream, so the
// receiver re-verifies the CRC the committer computed.
func EncodeRecord(w io.Writer, r Record) error {
	h := crc32.NewIEEE()
	out := io.MultiWriter(w, h)
	if err := binary.Write(out, binary.LittleEndian, uint8(r.Op)); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, r.LSN); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, r.ID); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint16(len(r.Vec))); err != nil {
		return err
	}
	for _, v := range r.Vec {
		if err := binary.Write(out, binary.LittleEndian, math.Float64bits(v)); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// DecodeRecord reads one record, re-verifying its CRC. It returns
// io.EOF at a clean boundary, io.ErrUnexpectedEOF for a record cut
// short, and ErrCorrupt for a checksum failure. Batch frames are a
// segment-file construct and report ErrCorrupt here; replication
// streams carry only flat records (use Segment to read a file).
func DecodeRecord(br io.Reader) (Record, error) {
	recs, _, err := decodeFrame(br, false)
	if err != nil {
		return Record{}, err
	}
	return recs[0], nil
}

// EncodeBatch writes a batch frame: the records share one header and
// one trailing CRC, so the whole group is atomic under torn-tail
// recovery. Records must carry contiguous LSNs starting at the
// frame's base; each is encoded as op(1) id(4) n(2) vec(8n) with the
// LSN left implicit.
func EncodeBatch(w io.Writer, recs []Record) error {
	if len(recs) < 2 {
		return errors.New("wal: batch frame needs at least two records")
	}
	if len(recs) > MaxBatchRecords {
		return fmt.Errorf("wal: batch of %d records exceeds %d", len(recs), MaxBatchRecords)
	}
	h := crc32.NewIEEE()
	out := io.MultiWriter(w, h)
	if err := binary.Write(out, binary.LittleEndian, uint8(opBatch)); err != nil {
		return err
	}
	base := recs[0].LSN
	if err := binary.Write(out, binary.LittleEndian, base); err != nil {
		return err
	}
	if err := binary.Write(out, binary.LittleEndian, uint16(len(recs))); err != nil {
		return err
	}
	for i, r := range recs {
		if r.LSN != base+uint64(i) {
			return fmt.Errorf("wal: batch LSNs not contiguous: record %d has %d, want %d", i, r.LSN, base+uint64(i))
		}
		if err := binary.Write(out, binary.LittleEndian, uint8(r.Op)); err != nil {
			return err
		}
		if err := binary.Write(out, binary.LittleEndian, r.ID); err != nil {
			return err
		}
		if err := binary.Write(out, binary.LittleEndian, uint16(len(r.Vec))); err != nil {
			return err
		}
		for _, v := range r.Vec {
			if err := binary.Write(out, binary.LittleEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return binary.Write(w, binary.LittleEndian, h.Sum32())
}

// decodeFrame reads one wire frame — a flat record or (when
// allowBatch) a batch frame — returning the records it carries and
// its full on-disk byte length. Errors follow DecodeRecord: io.EOF at
// a clean boundary, io.ErrUnexpectedEOF for a frame cut short,
// ErrCorrupt for a checksum failure or implausible field.
func decodeFrame(br io.Reader, allowBatch bool) ([]Record, int64, error) {
	h := crc32.NewIEEE()
	hr := io.TeeReader(br, h)

	var op uint8
	if err := binary.Read(hr, binary.LittleEndian, &op); err != nil {
		return nil, 0, err
	}
	if Op(op) == opBatch {
		if !allowBatch {
			return nil, 0, ErrCorrupt
		}
		return decodeBatchBody(br, hr, h)
	}
	var lsn uint64
	if err := binary.Read(hr, binary.LittleEndian, &lsn); err != nil {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var id uint32
	if err := binary.Read(hr, binary.LittleEndian, &id); err != nil {
		return nil, 0, io.ErrUnexpectedEOF
	}
	vec, err := decodeVec(hr)
	if err != nil {
		return nil, 0, err
	}
	if err := checkCRC(br, h); err != nil {
		return nil, 0, err
	}
	return []Record{{Op: Op(op), LSN: lsn, ID: id, Vec: vec}}, recordSize(len(vec)), nil
}

// decodeBatchBody reads a batch frame after its op byte. Every short
// read or checksum failure rejects the frame as a unit: the caller
// never sees a prefix of a torn batch.
func decodeBatchBody(br io.Reader, hr io.Reader, h hash32) ([]Record, int64, error) {
	var base uint64
	if err := binary.Read(hr, binary.LittleEndian, &base); err != nil {
		return nil, 0, io.ErrUnexpectedEOF
	}
	var count uint16
	if err := binary.Read(hr, binary.LittleEndian, &count); err != nil {
		return nil, 0, io.ErrUnexpectedEOF
	}
	if count < 2 || int(count) > MaxBatchRecords {
		return nil, 0, ErrCorrupt
	}
	size := int64(11 + 4) // op + base + count + trailing crc
	recs := make([]Record, count)
	for i := range recs {
		var op uint8
		if err := binary.Read(hr, binary.LittleEndian, &op); err != nil {
			return nil, 0, io.ErrUnexpectedEOF
		}
		if Op(op) != OpAppend && Op(op) != OpUpdate && Op(op) != OpRemove {
			return nil, 0, ErrCorrupt
		}
		var id uint32
		if err := binary.Read(hr, binary.LittleEndian, &id); err != nil {
			return nil, 0, io.ErrUnexpectedEOF
		}
		vec, err := decodeVec(hr)
		if err != nil {
			return nil, 0, err
		}
		recs[i] = Record{Op: Op(op), LSN: base + uint64(i), ID: id, Vec: vec}
		size += 7 + 8*int64(len(vec))
	}
	if err := checkCRC(br, h); err != nil {
		return nil, 0, err
	}
	return recs, size, nil
}

// hash32 is the slice of hash.Hash32 the decoder needs.
type hash32 interface{ Sum32() uint32 }

// decodeVec reads the n(2) vec(8n) tail shared by flat records and
// batch sub-records.
func decodeVec(hr io.Reader) ([]float64, error) {
	var n uint16
	if err := binary.Read(hr, binary.LittleEndian, &n); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	if n > 1<<12 {
		return nil, ErrCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	vec := make([]float64, n)
	for i := range vec {
		var b uint64
		if err := binary.Read(hr, binary.LittleEndian, &b); err != nil {
			return nil, io.ErrUnexpectedEOF
		}
		vec[i] = math.Float64frombits(b)
	}
	return vec, nil
}

// checkCRC reads the trailing checksum and compares it against the
// hash accumulated over the frame body.
func checkCRC(br io.Reader, h hash32) error {
	want := h.Sum32()
	var got uint32
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return io.ErrUnexpectedEOF
	}
	if got != want {
		return ErrCorrupt
	}
	return nil
}

// recordSize is the on-disk byte length of a flat record with n
// vector components: op(1) lsn(8) id(4) n(2) vec(8n) crc(4).
func recordSize(n int) int64 { return 19 + 8*int64(n) }

// Writer appends records to a segment file.
type Writer struct {
	f         *os.File
	bw        *bufio.Writer
	dim       int
	base      uint64 // header base LSN
	next      uint64 // lowest LSN the next Append may carry
	recovered int64  // torn-tail bytes truncated by Open (0 if clean)
}

// Create opens a fresh segment (truncating any existing file) for
// dim-dimensional vectors, starting at base (the first LSN the
// segment may hold; 0 is treated as 1). The header is synced to disk
// immediately so a crash right after a checkpoint cannot lose the
// sequence position.
func Create(path string, dim int, base uint64) (*Writer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("wal: dimension must be positive, got %d", dim)
	}
	if base == 0 {
		base = 1
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	var hdr [HeaderSize]byte
	copy(hdr[:8], segmentMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], base)
	if _, err := f.Write(hdr[:]); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	if err := f.Sync(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), dim: dim, base: base, next: base}, nil
}

// Open opens an existing segment for appending, recovering a torn
// tail by truncating the file back to the last good record (the
// truncated byte count is reported by Recovered). A missing file — or
// one so short it cannot even hold a header, which means no record
// was ever committed — is (re)created with base LSN 1.
func Open(path string, dim int) (*Writer, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("wal: dimension must be positive, got %d", dim)
	}
	st, err := os.Stat(path)
	if errors.Is(err, os.ErrNotExist) {
		return Create(path, dim, 1)
	}
	if err != nil {
		return nil, err
	}
	if st.Size() < HeaderSize {
		return Create(path, dim, 1)
	}

	seg, err := OpenSegment(path)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := seg.Next(); err != nil {
			if IsTail(err) {
				break
			}
			return nil, errors.Join(err, seg.Close())
		}
	}
	base, last, end := seg.Base(), seg.LastLSN(), seg.Pos()
	if err := seg.Close(); err != nil {
		return nil, err
	}

	var recovered int64
	if end < st.Size() {
		recovered = st.Size() - end
		if err := os.Truncate(path, end); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	next := base
	if last >= base {
		next = last + 1
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), dim: dim, base: base, next: next, recovered: recovered}, nil
}

// BaseLSN returns the segment's first admissible LSN.
func (w *Writer) BaseLSN() uint64 { return w.base }

// NextLSN returns the lowest LSN the next appended record may carry —
// one past the last record, or the base for an empty segment.
func (w *Writer) NextLSN() uint64 { return w.next }

// Recovered returns how many torn-tail bytes Open truncated, so the
// caller can log the repair; 0 means the segment was clean.
func (w *Writer) Recovered() int64 { return w.recovered }

// Append logs one record. The record must carry an LSN at or above
// NextLSN — per-shard segments hold an increasing subsequence of the
// store-wide LSN space, not necessarily a dense one. The record is
// buffered; call Sync to force it to stable storage.
func (w *Writer) Append(r Record) error {
	if r.Op != OpAppend && r.Op != OpUpdate && r.Op != OpRemove {
		return fmt.Errorf("wal: unknown op %d", r.Op)
	}
	if r.Op == OpRemove {
		if len(r.Vec) != 0 {
			return errors.New("wal: remove record must not carry a vector")
		}
	} else if len(r.Vec) != w.dim {
		return fmt.Errorf("wal: vector has dimension %d, want %d", len(r.Vec), w.dim)
	}
	if r.LSN < w.next {
		return fmt.Errorf("wal: record LSN %d below segment position %d", r.LSN, w.next)
	}
	if err := EncodeRecord(w.bw, r); err != nil {
		return err
	}
	w.next = r.LSN + 1
	return nil
}

// AppendBatch logs a group-committed batch as one frame sharing a
// single CRC, so the whole batch is atomic under torn-tail recovery.
// Records must carry contiguous LSNs starting at or above NextLSN. A
// single record is logged as a plain frame (there is nothing to
// group); an empty batch is a no-op. Like Append, the frame is
// buffered — call Sync to force it to stable storage.
func (w *Writer) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	if len(recs) == 1 {
		return w.Append(recs[0])
	}
	if len(recs) > MaxBatchRecords {
		return fmt.Errorf("wal: batch of %d records exceeds %d", len(recs), MaxBatchRecords)
	}
	base := recs[0].LSN
	if base < w.next {
		return fmt.Errorf("wal: batch base LSN %d below segment position %d", base, w.next)
	}
	for i, r := range recs {
		if r.Op != OpAppend && r.Op != OpUpdate && r.Op != OpRemove {
			return fmt.Errorf("wal: unknown op %d", r.Op)
		}
		if r.Op == OpRemove {
			if len(r.Vec) != 0 {
				return errors.New("wal: remove record must not carry a vector")
			}
		} else if len(r.Vec) != w.dim {
			return fmt.Errorf("wal: vector has dimension %d, want %d", len(r.Vec), w.dim)
		}
		if r.LSN != base+uint64(i) {
			return fmt.Errorf("wal: batch LSNs not contiguous: record %d has %d, want %d", i, r.LSN, base+uint64(i))
		}
	}
	if err := EncodeBatch(w.bw, recs); err != nil {
		return err
	}
	w.next = base + uint64(len(recs))
	return nil
}

// Flush pushes buffered records to the OS without fsyncing — enough
// for a concurrent segment reader (the catch-up feed) to see them.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Sync flushes buffered records and fsyncs the file.
func (w *Writer) Sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log. The file is closed even when the
// flush fails, and a close failure after a clean flush is still an
// error: on ext4-style writeback an error surfacing at close is the
// last chance to learn an acknowledged write never hit the disk.
func (w *Writer) Close() error {
	return errors.Join(w.bw.Flush(), w.f.Close())
}

// Segment iterates a segment file's records with byte positions — the
// cursor primitive for recovery (where to truncate a torn tail) and
// for the replication catch-up feed (stream from an offset without
// re-reading the whole file).
type Segment struct {
	f       *os.File
	br      *bufio.Reader
	base    uint64
	pos     int64    // end offset of the last good frame
	last    uint64   // LSN of the last good record (0 before any)
	pending []Record // batch-frame records not yet handed out
}

// OpenSegment opens a segment file for iteration, validating its
// header.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, errors.Join(fmt.Errorf("wal: segment %s: short header: %w", path, ErrCorrupt), f.Close())
	}
	if [8]byte(hdr[:8]) != segmentMagic {
		return nil, errors.Join(fmt.Errorf("wal: segment %s: bad magic: %w", path, ErrCorrupt), f.Close())
	}
	return &Segment{
		f:    f,
		br:   bufio.NewReader(f),
		base: binary.LittleEndian.Uint64(hdr[8:]),
		pos:  HeaderSize,
	}, nil
}

// Base returns the segment's base LSN from its header.
func (s *Segment) Base() uint64 { return s.base }

// Pos returns the byte offset just past the last successfully decoded
// record — the truncation point when the tail is torn.
func (s *Segment) Pos() int64 { return s.pos }

// LastLSN returns the LSN of the last successfully decoded record, or
// 0 if none has been read yet.
func (s *Segment) LastLSN() uint64 { return s.last }

// Next decodes the next record, expanding batch frames into their
// constituent records. It returns io.EOF at a clean end;
// io.ErrUnexpectedEOF or ErrCorrupt mark a torn tail (use IsTail).
// Pos is only advanced past frames that decode successfully — a batch
// frame advances it all at once when its first record is returned, so
// a torn batch never contributes a partial prefix.
func (s *Segment) Next() (Record, error) {
	if len(s.pending) == 0 {
		recs, size, err := decodeFrame(s.br, true)
		if err != nil {
			return Record{}, err
		}
		s.pos += size
		s.pending = recs
	}
	r := s.pending[0]
	s.pending = s.pending[1:]
	s.last = r.LSN
	return r, nil
}

// Close releases the underlying file.
func (s *Segment) Close() error { return s.f.Close() }

// Replay reads records from path and calls fn for each valid record
// in order. A torn tail (truncated or CRC-broken final record) ends
// the replay as a clean EOF; any earlier corruption is
// indistinguishable from a torn tail and also ends the replay. The
// number of applied records is returned. A missing file — or one too
// short to hold a header — replays zero records.
func Replay(path string, fn func(Record) error) (int, error) {
	seg, err := OpenSegment(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if errors.Is(err, ErrCorrupt) {
		// No full header was ever written: the segment holds no
		// committed records.
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	// Read-only iteration: a close failure here cannot lose data.
	defer func() { _ = seg.Close() }()
	applied := 0
	for {
		r, err := seg.Next()
		if err != nil {
			if IsTail(err) {
				return applied, nil
			}
			return applied, err
		}
		if err := fn(r); err != nil {
			return applied, err
		}
		applied++
	}
}
