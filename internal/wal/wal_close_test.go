package wal

// Regression tests for the error paths planarlint's errsink sweep
// tightened: Writer.Close must surface close errors (they are the
// last chance to learn a buffered write never reached disk), and the
// segment-open error paths must keep their ErrCorrupt identity now
// that close errors are joined in.

import (
	"errors"
	"os"
	"testing"
)

func TestWriterCloseReportsCloseError(t *testing.T) {
	path := logPath(t)
	w, err := Create(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Op: OpAppend, LSN: 1, ID: 1, Vec: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Yank the descriptor out from under the writer: Close must not
	// swallow the resulting failure.
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatalf("Close on a writer whose file is already closed reported success")
	}
}

func TestWriterCloseFlushErrorStillCloses(t *testing.T) {
	path := logPath(t)
	w, err := Create(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Buffer a record, then close the descriptor so the flush inside
	// Close fails; both the flush and close errors must surface.
	if err := w.Append(Record{Op: OpAppend, LSN: 1, ID: 1, Vec: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.f.Close(); err != nil {
		t.Fatal(err)
	}
	err = w.Close()
	if err == nil {
		t.Fatalf("Close with a failing flush reported success")
	}
	if errors.Is(err, os.ErrClosed) != true {
		t.Fatalf("Close error lost the underlying cause: %v", err)
	}
}

func TestOpenSegmentCorruptKeepsIdentity(t *testing.T) {
	path := logPath(t)
	if err := os.WriteFile(path, []byte("definitely-not-a-wal-segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenSegment(path)
	if err == nil {
		t.Fatalf("OpenSegment accepted garbage")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt segment error lost ErrCorrupt identity: %v", err)
	}
}
