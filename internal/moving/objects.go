// Package moving implements the moving-objects-intersection
// application of the paper (Example 2 and Section 7.5.1): kinematic
// object models (linear, circular, accelerating), exact
// scalar-product decompositions of pairwise squared distance, and a
// planar-index-backed intersection join with MOVIES-style
// time-slotted indexes.
//
// For every scenario the squared distance between a pair of objects
// at a future time t factors exactly as ⟨params(t), φ(pair)⟩, where
// φ depends only on the pair's kinematic state (indexable ahead of
// time) and params depends only on t (known at query time):
//
//	linear–linear (2-D or 3-D):  d' = 3,  params = (1, t, t²)
//	circular–linear (2-D):       d' = 7,  params = (1, t, t², cos ωt,
//	                                        t·cos ωt, sin ωt, t·sin ωt)
//	accelerating–linear (3-D):   d' = 5,  params = (1, t, t², t³, t⁴)
//
// The circular decomposition requires the angular velocity ω to be
// shared by all circular objects covered by one query; workloads with
// several angular velocities issue one query per ω group (see
// CircularWorkload). The paper's Example 2 makes the same implicit
// assumption.
package moving

import "math"

// Vec2 is a 2-D vector.
type Vec2 struct{ X, Y float64 }

// Add returns v+w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v−w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns k·v.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{k * v.X, k * v.Y} }

// Dot returns ⟨v, w⟩.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm2 returns |v|².
func (v Vec2) Norm2() float64 { return v.Dot(v) }

// Vec3 is a 3-D vector.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v+w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v−w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns k·v.
func (v Vec3) Scale(k float64) Vec3 { return Vec3{k * v.X, k * v.Y, k * v.Z} }

// Dot returns ⟨v, w⟩.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Linear2D moves in a straight line: position(t) = P + V·t.
type Linear2D struct {
	P Vec2 // initial position
	V Vec2 // velocity
}

// At returns the position at time t.
func (o Linear2D) At(t float64) Vec2 { return o.P.Add(o.V.Scale(t)) }

// Circular orbits a centre at fixed radius: position(t) =
// Center + R·(cos(ωt+Phase), sin(ωt+Phase)). The angular velocity ω
// is a property of the object's group (see CircularSpace), not of
// the object, so that queries can factor it into the parametric
// part.
type Circular struct {
	Center Vec2
	R      float64 // radius
	Phase  float64 // initial angle, radians
}

// At returns the position at time t for angular velocity omega
// (radians per time unit).
func (o Circular) At(t, omega float64) Vec2 {
	a := omega*t + o.Phase
	return Vec2{o.Center.X + o.R*math.Cos(a), o.Center.Y + o.R*math.Sin(a)}
}

// Linear3D moves in a straight line in 3-D.
type Linear3D struct {
	P Vec3
	V Vec3
}

// At returns the position at time t.
func (o Linear3D) At(t float64) Vec3 { return o.P.Add(o.V.Scale(t)) }

// Accel3D moves with constant acceleration: position(t) =
// P + V·t + ½·A·t².
type Accel3D struct {
	P Vec3
	V Vec3
	A Vec3
}

// At returns the position at time t.
func (o Accel3D) At(t float64) Vec3 {
	return o.P.Add(o.V.Scale(t)).Add(o.A.Scale(0.5 * t * t))
}
