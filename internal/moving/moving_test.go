package moving

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"planar/internal/vecmath"
)

// checkDecomposition verifies ⟨params(t), φ(pair)⟩ equals the exact
// squared distance for every pair at several times.
func checkDecomposition(t *testing.T, s PairSpace, times []float64) {
	t.Helper()
	phi := make([]float64, s.Dim())
	for _, tm := range times {
		params := s.Params(tm)
		if len(params) != s.Dim() {
			t.Fatalf("params dim %d want %d", len(params), s.Dim())
		}
		for p := 0; p < s.NumPairs(); p++ {
			s.Feature(p, phi)
			got := vecmath.Dot(params, phi)
			want := s.SqDist(p, tm)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("pair %d t=%v: scalar product %v, exact %v", p, tm, got, want)
			}
		}
	}
}

func TestLinearDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := &LinearSpace{
		A: GenLinear2D(20, 1000, 0.1, 1, rng),
		B: GenLinear2D(25, 1000, 0.1, 1, rng),
	}
	checkDecomposition(t, s, []float64{0, 1, 10, 12.5, 15})
}

func TestCircularDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lin := GenLinear2D(15, 100, 0.1, 1, rng)
	circ, _ := GenCircular(12, Vec2{50, 50}, 1, 49, []float64{DegPerMin(3)}, rng)
	s := &CircularSpace{C: circ, L: lin, Omega: DegPerMin(3)}
	checkDecomposition(t, s, []float64{0, 5, 10, 11.5, 15, 40})
}

func TestAccelDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := &AccelSpace{
		A: GenAccel3D(10, 1000, 0.1, 1, 0.01, 0.05, rng),
		L: GenLinear3D(12, 1000, 0.1, 1, rng),
	}
	checkDecomposition(t, s, []float64{0, 1, 10, 13.7, 15})
}

func TestCircularCircularDecompositionAndJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	center := Vec2{50, 50}
	a, _ := GenCircular(15, center, 1, 40, []float64{DegPerMin(2)}, rng)
	b, _ := GenCircular(18, center, 1, 40, []float64{DegPerMin(5)}, rng)
	s := &CircularCircularSpace{A: a, B: b, OmegaA: DegPerMin(2), OmegaB: DegPerMin(5)}
	checkDecomposition(t, s, []float64{0, 7, 10, 12.3, 15, 100})

	j, err := NewCircularCircularJoin(s, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{10, 12.5, 15} {
		got, _, err := j.AtPairs(tm, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(sortPairs(got), sortPairs(Baseline(s, tm, 8))) {
			t.Fatalf("t=%v: circular-circular join mismatched baseline", tm)
		}
	}

	// Non-concentric sets are rejected (the decomposition needs a
	// shared centre).
	bad := &CircularCircularSpace{
		A:      []Circular{{Center: Vec2{0, 0}, R: 5}},
		B:      []Circular{{Center: Vec2{1, 0}, R: 5}},
		OmegaA: 1, OmegaB: 2,
	}
	if _, err := NewCircularCircularJoin(bad, []float64{10}); err == nil {
		t.Fatal("non-concentric sets accepted")
	}
	if _, err := NewCircularCircularJoin(&CircularCircularSpace{}, []float64{10}); err == nil {
		t.Fatal("empty sets accepted")
	}
}

// Property: the scalar-product decomposition equals the exact
// squared distance for arbitrary kinematic states and times — the
// identity every moving-object experiment rests on.
func TestDecompositionProperty(t *testing.T) {
	f := func(px, py, ux, uy, r, phase, omega, qx, qy, vx, vy, tRaw float64) bool {
		clamp := func(x, lim float64) float64 {
			if x != x || x > lim {
				return lim
			}
			if x < -lim {
				return -lim
			}
			return x
		}
		tm := math.Abs(clamp(tRaw, 100))
		lin := Linear2D{
			P: Vec2{clamp(px, 1e3), clamp(py, 1e3)},
			V: Vec2{clamp(ux, 10), clamp(uy, 10)},
		}
		lin2 := Linear2D{
			P: Vec2{clamp(qx, 1e3), clamp(qy, 1e3)},
			V: Vec2{clamp(vx, 10), clamp(vy, 10)},
		}
		circ := Circular{
			Center: Vec2{clamp(qx, 1e3), clamp(qy, 1e3)},
			R:      math.Abs(clamp(r, 1e3)),
			Phase:  clamp(phase, 10),
		}
		w := clamp(omega, 3)

		ls := &LinearSpace{A: []Linear2D{lin}, B: []Linear2D{lin2}}
		cs := &CircularSpace{C: []Circular{circ}, L: []Linear2D{lin}, Omega: w}
		phi := make([]float64, 7)
		for _, s := range []PairSpace{ls, cs} {
			s.Feature(0, phi[:s.Dim()])
			got := 0.0
			for i, p := range s.Params(tm) {
				got += p * phi[i]
			}
			want := s.SqDist(0, tm)
			if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestObjectKinematics(t *testing.T) {
	l := Linear2D{P: Vec2{1, 2}, V: Vec2{3, -1}}
	if got := l.At(2); got != (Vec2{7, 0}) {
		t.Fatalf("Linear2D.At=%v", got)
	}
	c := Circular{Center: Vec2{10, 10}, R: 5, Phase: 0}
	p := c.At(0, 1)
	if math.Abs(p.X-15) > 1e-12 || math.Abs(p.Y-10) > 1e-12 {
		t.Fatalf("Circular.At(0)=%v", p)
	}
	// Quarter turn at ω=π/2 per unit time.
	p = c.At(1, math.Pi/2)
	if math.Abs(p.X-10) > 1e-9 || math.Abs(p.Y-15) > 1e-9 {
		t.Fatalf("Circular.At quarter=%v", p)
	}
	a := Accel3D{P: Vec3{0, 0, 0}, V: Vec3{1, 0, 0}, A: Vec3{0, 2, 0}}
	q := a.At(2)
	if q != (Vec3{2, 4, 0}) {
		t.Fatalf("Accel3D.At=%v", q)
	}
	l3 := Linear3D{P: Vec3{1, 1, 1}, V: Vec3{0, 0, 1}}
	if l3.At(3) != (Vec3{1, 1, 4}) {
		t.Fatal("Linear3D.At wrong")
	}
}

func pairKey(p IntersectionPair) int { return p.I*1000000 + p.J }

func sortPairs(ps []IntersectionPair) []IntersectionPair {
	out := append([]IntersectionPair(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return pairKey(out[i]) < pairKey(out[j]) })
	return out
}

func equalPairs(a, b []IntersectionPair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLinearJoinMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := &LinearSpace{
		A: GenLinear2D(60, 300, 0.1, 1, rng),
		B: GenLinear2D(70, 300, 0.1, 1, rng),
	}
	slots := []float64{10, 11, 12, 13, 14, 15}
	j, err := NewJoin(s, slots)
	if err != nil {
		t.Fatal(err)
	}
	if j.NumIndexes() != 6 {
		t.Fatalf("NumIndexes=%d", j.NumIndexes())
	}
	for _, tm := range []float64{10, 11.5, 13, 15} {
		got, st, err := j.AtPairs(tm, 25)
		if err != nil {
			t.Fatal(err)
		}
		want := Baseline(s, tm, 25)
		if !equalPairs(sortPairs(got), sortPairs(want)) {
			t.Fatalf("t=%v: join %d pairs, baseline %d", tm, len(got), len(want))
		}
		if st.FellBack {
			t.Fatalf("t=%v fell back to scan", tm)
		}
		// On an exact slot the chosen index is parallel: II ~ 0.
		if tm == 13 && st.Verified > 10 {
			t.Fatalf("t=13 verified %d pairs despite a parallel slot index", st.Verified)
		}
	}
}

func TestCircularWorkloadMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	omegas := []float64{DegPerMin(1), DegPerMin(2), DegPerMin(5)}
	circ, ws := GenCircular(30, Vec2{50, 50}, 1, 49, omegas, rng)
	lin := GenLinear2D(40, 100, 0.1, 1, rng)
	w, err := NewCircularWorkload(circ, ws, lin, []float64{10, 11, 12, 13, 14, 15})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumGroups() < 2 || w.NumGroups() > 3 {
		t.Fatalf("NumGroups=%d", w.NumGroups())
	}
	for _, tm := range []float64{10, 12.3, 15} {
		got, st, err := w.At(tm, 10)
		if err != nil {
			t.Fatal(err)
		}
		want := w.Baseline(tm, 10)
		if !equalPairs(sortPairs(got), sortPairs(want)) {
			t.Fatalf("t=%v: workload %d pairs, baseline %d", tm, len(got), len(want))
		}
		if st.N != 30*40 {
			t.Fatalf("aggregate N=%d", st.N)
		}
	}
}

func TestAccelJoinMatchesBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := &AccelSpace{
		A: GenAccel3D(40, 500, 0.1, 1, 0.01, 0.05, rng),
		L: GenLinear3D(40, 500, 0.1, 1, rng),
	}
	j, err := NewJoin(s, []float64{10, 12, 14})
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range []float64{10, 11, 14.9} {
		got, _, err := j.AtPairs(tm, 40)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPairs(sortPairs(got), sortPairs(Baseline(s, tm, 40))) {
			t.Fatalf("t=%v mismatch", tm)
		}
	}
}

func TestJoinValidationAndReset(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := &LinearSpace{A: GenLinear2D(5, 100, 0.1, 1, rng), B: GenLinear2D(5, 100, 0.1, 1, rng)}
	if _, err := NewJoin(s, nil); err == nil {
		t.Error("no time slots accepted")
	}
	if _, err := NewJoin(&LinearSpace{}, []float64{10}); err == nil {
		t.Error("empty space accepted")
	}
	j, err := NewJoin(s, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AddTimeSlot(math.NaN()); err == nil {
		t.Error("NaN slot accepted")
	}
	if _, _, err := j.AtPairs(10, -1); err == nil {
		t.Error("negative distance accepted")
	}
	if err := j.ResetTimeSlots([]float64{20, 21}); err != nil {
		t.Fatal(err)
	}
	if j.NumIndexes() != 2 {
		t.Fatalf("NumIndexes after reset=%d", j.NumIndexes())
	}
	got, _, err := j.AtPairs(20.5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(sortPairs(got), sortPairs(Baseline(s, 20.5, 30))) {
		t.Fatal("join wrong after reset")
	}
	if j.Multi() == nil {
		t.Fatal("Multi accessor nil")
	}
}

func TestUpdatePairs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := &LinearSpace{
		A: GenLinear2D(20, 200, 0.1, 1, rng),
		B: GenLinear2D(20, 200, 0.1, 1, rng),
	}
	j, err := NewJoin(s, []float64{10, 12, 15})
	if err != nil {
		t.Fatal(err)
	}
	// Object 3 of set A changes velocity: all its pairs re-key.
	s.A[3].V = Vec2{0.9, -0.9}
	var affected []int
	for p := 0; p < s.NumPairs(); p++ {
		if i, _ := s.Pair(p); i == 3 {
			affected = append(affected, p)
		}
	}
	if err := j.UpdatePairs(affected); err != nil {
		t.Fatal(err)
	}
	got, _, err := j.AtPairs(12, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !equalPairs(sortPairs(got), sortPairs(Baseline(s, 12, 40))) {
		t.Fatal("join stale after UpdatePairs")
	}
	if err := j.UpdatePairs([]int{-1}); err == nil {
		t.Error("negative pair id accepted")
	}
	if err := j.UpdatePairs([]int{s.NumPairs()}); err == nil {
		t.Error("out-of-range pair id accepted")
	}
}

func TestCircularWorkloadValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	circ, ws := GenCircular(3, Vec2{0, 0}, 1, 10, []float64{0.1}, rng)
	lin := GenLinear2D(3, 10, 0.1, 1, rng)
	if _, err := NewCircularWorkload(circ, ws[:2], lin, []float64{10}); err == nil {
		t.Error("mismatched omegas accepted")
	}
	if _, err := NewCircularWorkload(nil, nil, lin, []float64{10}); err == nil {
		t.Error("empty circular set accepted")
	}
	if _, err := NewCircularWorkload(circ, ws, nil, []float64{10}); err == nil {
		t.Error("empty linear set accepted")
	}
	if _, err := NewCircularWorkload(circ, []float64{0.1, math.NaN(), 0.1}, lin, []float64{10}); err == nil {
		t.Error("NaN omega accepted")
	}
}

func TestVecHelpers(t *testing.T) {
	a, b := Vec2{1, 2}, Vec2{3, 4}
	if a.Add(b) != (Vec2{4, 6}) || a.Sub(b) != (Vec2{-2, -2}) {
		t.Fatal("Vec2 add/sub")
	}
	if a.Scale(2) != (Vec2{2, 4}) || a.Dot(b) != 11 || b.Norm2() != 25 {
		t.Fatal("Vec2 scale/dot/norm")
	}
	u, v := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if u.Add(v) != (Vec3{5, 7, 9}) || u.Sub(v) != (Vec3{-3, -3, -3}) {
		t.Fatal("Vec3 add/sub")
	}
	if u.Scale(2) != (Vec3{2, 4, 6}) || u.Dot(v) != 32 || u.Norm2() != 14 {
		t.Fatal("Vec3 scale/dot/norm")
	}
	if math.Abs(DegPerMin(180)-math.Pi) > 1e-15 {
		t.Fatal("DegPerMin")
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lin := GenLinear2D(100, 1000, 0.1, 1, rng)
	for _, o := range lin {
		if o.P.X < 0 || o.P.X > 1000 || o.P.Y < 0 || o.P.Y > 1000 {
			t.Fatal("position out of area")
		}
		for _, v := range []float64{o.V.X, o.V.Y} {
			if math.Abs(v) < 0.1 || math.Abs(v) > 1 {
				t.Fatalf("speed %v out of range", v)
			}
		}
	}
	circ, ws := GenCircular(100, Vec2{50, 50}, 1, 100, []float64{0.1, 0.2}, rng)
	for i, o := range circ {
		if o.R < 1 || o.R > 100 {
			t.Fatalf("radius %v out of range", o.R)
		}
		if ws[i] != 0.1 && ws[i] != 0.2 {
			t.Fatalf("omega %v not from the discrete set", ws[i])
		}
	}
	acc := GenAccel3D(50, 1000, 0.1, 1, 0.01, 0.05, rng)
	for _, o := range acc {
		for _, a := range []float64{o.A.X, o.A.Y, o.A.Z} {
			if math.Abs(a) < 0.01 || math.Abs(a) > 0.05 {
				t.Fatalf("acceleration %v out of range", a)
			}
		}
	}
}
