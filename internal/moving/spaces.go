package moving

import (
	"fmt"
	"math"
)

// PairSpace abstracts a scenario's set of object pairs: it exposes
// the φ feature vector of each pair, the params(t) map, and the
// exact squared distance used by baselines and verification.
type PairSpace interface {
	// Dim is the dimensionality d' of the scalar product.
	Dim() int
	// NumPairs is the number of candidate pairs (|set1|·|set2|).
	NumPairs() int
	// Feature writes φ(pair) into out (len Dim).
	Feature(pair int, out []float64)
	// Params returns the parametric part for query time t.
	Params(t float64) []float64
	// SqDist computes the exact squared distance of the pair at t
	// directly from the kinematic state.
	SqDist(pair int, t float64) float64
	// Pair decodes a pair index into (i, j) positions in the two
	// object sets.
	Pair(pair int) (i, j int)
}

// LinearSpace pairs two sets of linearly moving 2-D objects
// (Section 7.5.1, "objects moving with uniform velocity").
type LinearSpace struct {
	A, B []Linear2D
}

// Dim implements PairSpace.
func (s *LinearSpace) Dim() int { return 3 }

// NumPairs implements PairSpace.
func (s *LinearSpace) NumPairs() int { return len(s.A) * len(s.B) }

// Pair implements PairSpace.
func (s *LinearSpace) Pair(pair int) (int, int) { return pair / len(s.B), pair % len(s.B) }

// Feature implements PairSpace: with Δp = p−q, Δu = u−v,
// d(t)² = |Δp|² + 2Δp·Δu·t + |Δu|²·t², so
// φ = (|Δp|², 2Δp·Δu, |Δu|²).
func (s *LinearSpace) Feature(pair int, out []float64) {
	i, j := s.Pair(pair)
	dp := s.A[i].P.Sub(s.B[j].P)
	du := s.A[i].V.Sub(s.B[j].V)
	out[0] = dp.Norm2()
	out[1] = 2 * dp.Dot(du)
	out[2] = du.Norm2()
}

// Params implements PairSpace: (1, t, t²).
func (s *LinearSpace) Params(t float64) []float64 { return []float64{1, t, t * t} }

// SqDist implements PairSpace.
func (s *LinearSpace) SqDist(pair int, t float64) float64 {
	i, j := s.Pair(pair)
	return s.A[i].At(t).Sub(s.B[j].At(t)).Norm2()
}

// CircularSpace pairs circular objects sharing one angular velocity
// Omega (radians per time unit) with linearly moving objects.
type CircularSpace struct {
	C     []Circular
	L     []Linear2D
	Omega float64
}

// Dim implements PairSpace.
func (s *CircularSpace) Dim() int { return 7 }

// NumPairs implements PairSpace.
func (s *CircularSpace) NumPairs() int { return len(s.C) * len(s.L) }

// Pair implements PairSpace.
func (s *CircularSpace) Pair(pair int) (int, int) { return pair / len(s.L), pair % len(s.L) }

// Feature implements PairSpace. With the linear object's state taken
// relative to the circle centre (p = P_lin − Center, u = V_lin) and
// the circular object at radius r, phase θ:
//
//	d(t)² = r² + |p+ut|² − 2r[cos(ωt+θ)(p_x+u_x t) + sin(ωt+θ)(p_y+u_y t)]
//
// which expands over params (1, t, t², cos ωt, t·cos ωt, sin ωt,
// t·sin ωt) with coefficients
//
//	φ = ( r²+|p|², 2p·u, |u|²,
//	      −2r(p_x cosθ + p_y sinθ), −2r(u_x cosθ + u_y sinθ),
//	      −2r(p_y cosθ − p_x sinθ), −2r(u_y cosθ − u_x sinθ) )
func (s *CircularSpace) Feature(pair int, out []float64) {
	i, j := s.Pair(pair)
	c := s.C[i]
	p := s.L[j].P.Sub(c.Center)
	u := s.L[j].V
	sin, cos := math.Sincos(c.Phase)
	out[0] = c.R*c.R + p.Norm2()
	out[1] = 2 * p.Dot(u)
	out[2] = u.Norm2()
	out[3] = -2 * c.R * (p.X*cos + p.Y*sin)
	out[4] = -2 * c.R * (u.X*cos + u.Y*sin)
	out[5] = -2 * c.R * (p.Y*cos - p.X*sin)
	out[6] = -2 * c.R * (u.Y*cos - u.X*sin)
}

// Params implements PairSpace.
func (s *CircularSpace) Params(t float64) []float64 {
	sin, cos := math.Sincos(s.Omega * t)
	return []float64{1, t, t * t, cos, t * cos, sin, t * sin}
}

// SqDist implements PairSpace.
func (s *CircularSpace) SqDist(pair int, t float64) float64 {
	i, j := s.Pair(pair)
	return s.C[i].At(t, s.Omega).Sub(s.L[j].At(t)).Norm2()
}

// CircularCircularSpace pairs two sets of objects orbiting a common
// centre. With angular velocities ωa (set A) and ωb (set B) shared
// per space, the angle difference is Δω·t + Δθ and the squared
// distance factors over params (1, cos Δωt, sin Δωt) — showing the
// scalar-product reduction extends beyond the paper's
// circular-versus-linear case.
type CircularCircularSpace struct {
	A, B           []Circular
	OmegaA, OmegaB float64
}

// Dim implements PairSpace.
func (s *CircularCircularSpace) Dim() int { return 3 }

// NumPairs implements PairSpace.
func (s *CircularCircularSpace) NumPairs() int { return len(s.A) * len(s.B) }

// Pair implements PairSpace.
func (s *CircularCircularSpace) Pair(pair int) (int, int) { return pair / len(s.B), pair % len(s.B) }

// Feature implements PairSpace. For concentric orbits with radii
// r₁, r₂ and phases θ₁, θ₂:
//
//	d(t)² = r₁² + r₂² − 2r₁r₂·cos(Δω·t + Δθ)
//
// and expanding the cosine gives
// φ = (r₁²+r₂², −2r₁r₂·cos Δθ, 2r₁r₂·sin Δθ).
// Non-concentric pairs would add separate cos ωa·t / sin ωa·t terms,
// so this space requires a shared centre, validated at join time.
func (s *CircularCircularSpace) Feature(pair int, out []float64) {
	i, j := s.Pair(pair)
	a, b := s.A[i], s.B[j]
	dTheta := a.Phase - b.Phase
	sin, cos := math.Sincos(dTheta)
	out[0] = a.R*a.R + b.R*b.R
	out[1] = -2 * a.R * b.R * cos
	out[2] = 2 * a.R * b.R * sin
}

// Params implements PairSpace: (1, cos Δω·t, sin Δω·t).
func (s *CircularCircularSpace) Params(t float64) []float64 {
	sin, cos := math.Sincos((s.OmegaA - s.OmegaB) * t)
	return []float64{1, cos, sin}
}

// SqDist implements PairSpace.
func (s *CircularCircularSpace) SqDist(pair int, t float64) float64 {
	i, j := s.Pair(pair)
	return s.A[i].At(t, s.OmegaA).Sub(s.B[j].At(t, s.OmegaB)).Norm2()
}

// validateConcentric reports an error unless every object in both
// sets shares one centre (the decomposition above requires it).
func (s *CircularCircularSpace) validateConcentric() error {
	if len(s.A) == 0 || len(s.B) == 0 {
		return fmt.Errorf("moving: both circular sets must be non-empty")
	}
	c := s.A[0].Center
	for i, o := range s.A {
		if o.Center != c {
			return fmt.Errorf("moving: set A object %d is not concentric", i)
		}
	}
	for j, o := range s.B {
		if o.Center != c {
			return fmt.Errorf("moving: set B object %d is not concentric", j)
		}
	}
	return nil
}

// NewCircularCircularJoin builds a Join over concentric
// circular-circular pairs, validating concentricity first.
func NewCircularCircularJoin(s *CircularCircularSpace, timeSlots []float64) (*Join, error) {
	if err := s.validateConcentric(); err != nil {
		return nil, err
	}
	return NewJoin(s, timeSlots)
}

// AccelSpace pairs 3-D objects under constant acceleration with
// linearly moving 3-D objects (the paper's non-uniform workload).
type AccelSpace struct {
	A []Accel3D
	L []Linear3D
}

// Dim implements PairSpace.
func (s *AccelSpace) Dim() int { return 5 }

// NumPairs implements PairSpace.
func (s *AccelSpace) NumPairs() int { return len(s.A) * len(s.L) }

// Pair implements PairSpace.
func (s *AccelSpace) Pair(pair int) (int, int) { return pair / len(s.L), pair % len(s.L) }

// Feature implements PairSpace. With Δp = p−q, Δu = u−v and
// acceleration a of the first object,
// R(t) = Δp + Δu·t + ½a·t² and
//
//	|R(t)|² = |Δp|² + 2Δp·Δu·t + (|Δu|² + Δp·a)·t² + (Δu·a)·t³ + ¼|a|²·t⁴
//
// (this corrects the typos in the paper's Example 2 expansion).
func (s *AccelSpace) Feature(pair int, out []float64) {
	i, j := s.Pair(pair)
	dp := s.A[i].P.Sub(s.L[j].P)
	du := s.A[i].V.Sub(s.L[j].V)
	a := s.A[i].A
	out[0] = dp.Norm2()
	out[1] = 2 * dp.Dot(du)
	out[2] = du.Norm2() + dp.Dot(a)
	out[3] = du.Dot(a)
	out[4] = 0.25 * a.Norm2()
}

// Params implements PairSpace.
func (s *AccelSpace) Params(t float64) []float64 {
	t2 := t * t
	return []float64{1, t, t2, t2 * t, t2 * t2}
}

// SqDist implements PairSpace.
func (s *AccelSpace) SqDist(pair int, t float64) float64 {
	i, j := s.Pair(pair)
	return s.A[i].At(t).Sub(s.L[j].At(t)).Norm2()
}

// checkSpace validates common PairSpace preconditions.
func checkSpace(s PairSpace) error {
	if s.NumPairs() == 0 {
		return fmt.Errorf("moving: pair space is empty")
	}
	return nil
}
