package moving

import (
	"fmt"
	"math"
	"math/rand"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// IntersectionPair is one answer of an intersection query: objects i
// (first set) and j (second set) within the query distance at the
// query time.
type IntersectionPair struct{ I, J int }

// Join answers intersection queries over a PairSpace through planar
// indexes, following the paper's MOVIES-style setup: one index per
// anticipated future time slot, with the best-matching index chosen
// per query. Every index's normal is |params(t_slot)| — exactly
// parallel to the query hyperplane when t equals the slot, which
// collapses the intermediate interval (Corollary 1).
type Join struct {
	space PairSpace
	store *core.PointStore
	multi *core.Multi
}

// NewJoin materialises φ for every pair and builds one planar index
// per entry of timeSlots.
func NewJoin(space PairSpace, timeSlots []float64) (*Join, error) {
	if err := checkSpace(space); err != nil {
		return nil, err
	}
	if len(timeSlots) == 0 {
		return nil, fmt.Errorf("moving: need at least one time slot")
	}
	store, err := core.NewPointStore(space.Dim())
	if err != nil {
		return nil, err
	}
	phi := make([]float64, space.Dim())
	for p := 0; p < space.NumPairs(); p++ {
		space.Feature(p, phi)
		if _, err := store.Append(phi); err != nil {
			return nil, fmt.Errorf("moving: pair %d: %w", p, err)
		}
	}
	multi, err := core.NewMulti(store)
	if err != nil {
		return nil, err
	}
	j := &Join{space: space, store: store, multi: multi}
	for _, t := range timeSlots {
		if err := j.AddTimeSlot(t); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// AddTimeSlot builds one more index tuned to queries near time t.
func (j *Join) AddTimeSlot(t float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("moving: time slot must be finite, got %v", t)
	}
	params := j.space.Params(t)
	normal := make([]float64, len(params))
	signs := vecmath.SignsOf(params)
	for i, p := range params {
		normal[i] = math.Abs(p)
		if normal[i] < 1e-9 {
			// A zero parametric component (e.g. cos ωt = 0) cannot be
			// an index normal component; nudge it while keeping the
			// direction essentially parallel.
			normal[i] = 1e-9
		}
	}
	_, err := j.multi.AddNormal(normal, signs)
	return err
}

// ResetTimeSlots drops all indexes and installs new slots — the
// MOVIES "throw the index away and use a new one" step as the query
// horizon advances.
func (j *Join) ResetTimeSlots(timeSlots []float64) error {
	j.multi.RemoveAllIndexes()
	for _, t := range timeSlots {
		if err := j.AddTimeSlot(t); err != nil {
			return err
		}
	}
	return nil
}

// NumIndexes returns the number of time-slot indexes held.
func (j *Join) NumIndexes() int { return j.multi.NumIndexes() }

// Multi exposes the underlying index collection (for stats).
func (j *Join) Multi() *core.Multi { return j.multi }

// At returns the pairs within distance s of each other at future
// time t, answered through the best planar index. The returned stats
// describe the pruning achieved.
func (j *Join) At(t, s float64, visit func(IntersectionPair) bool) (core.Stats, error) {
	if !(s >= 0) {
		return core.Stats{}, fmt.Errorf("moving: distance must be non-negative, got %v", s)
	}
	q := core.Query{A: j.space.Params(t), B: s * s, Op: core.LE}
	return j.multi.Inequality(q, func(id uint32) bool {
		i, jj := j.space.Pair(int(id))
		return visit(IntersectionPair{I: i, J: jj})
	})
}

// AtPairs collects the intersecting pairs at time t.
func (j *Join) AtPairs(t, s float64) ([]IntersectionPair, core.Stats, error) {
	var out []IntersectionPair
	st, err := j.At(t, s, func(p IntersectionPair) bool {
		out = append(out, p)
		return true
	})
	return out, st, err
}

// Baseline verifies every pair by computing its exact distance at t —
// the naive method of Example 2.
func Baseline(space PairSpace, t, s float64) []IntersectionPair {
	var out []IntersectionPair
	s2 := s * s
	for p := 0; p < space.NumPairs(); p++ {
		if space.SqDist(p, t) <= s2 {
			i, j := space.Pair(p)
			out = append(out, IntersectionPair{I: i, J: j})
		}
	}
	return out
}

// UpdatePairs re-keys every pair whose φ changed after an object's
// kinematic state was modified. pairIDs are pair indexes as produced
// by the space's enumeration. Cost is O(d'·log n) per pair per index
// (Section 4.4).
func (j *Join) UpdatePairs(pairIDs []int) error {
	phi := make([]float64, j.space.Dim())
	for _, p := range pairIDs {
		if p < 0 || p >= j.space.NumPairs() {
			return fmt.Errorf("moving: pair %d out of range", p)
		}
		j.space.Feature(p, phi)
		if err := j.multi.Update(uint32(p), phi); err != nil {
			return err
		}
	}
	return nil
}

// CircularWorkload answers circular-versus-linear intersection
// queries when circular objects have several angular velocities: one
// Join (and one scalar-product query) per distinct ω group, results
// merged. Object indexes in the answers refer to positions within
// the original slices.
type CircularWorkload struct {
	groups []*circGroup
}

type circGroup struct {
	join    *Join
	space   *CircularSpace
	origIdx []int // position of each group member in the original C slice
}

// NewCircularWorkload groups circular objects by exact angular
// velocity and builds one Join per group. omegas[i] is the angular
// velocity of circ[i].
func NewCircularWorkload(circ []Circular, omegas []float64, lin []Linear2D, timeSlots []float64) (*CircularWorkload, error) {
	if len(circ) != len(omegas) {
		return nil, fmt.Errorf("moving: %d circular objects but %d angular velocities", len(circ), len(omegas))
	}
	if len(circ) == 0 || len(lin) == 0 {
		return nil, fmt.Errorf("moving: both object sets must be non-empty")
	}
	byOmega := map[float64][]int{}
	for i, w := range omegas {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("moving: angular velocity %d is not finite", i)
		}
		byOmega[w] = append(byOmega[w], i)
	}
	w := &CircularWorkload{}
	for omega, members := range byOmega {
		sp := &CircularSpace{Omega: omega, L: lin}
		for _, m := range members {
			sp.C = append(sp.C, circ[m])
		}
		jn, err := NewJoin(sp, timeSlots)
		if err != nil {
			return nil, err
		}
		w.groups = append(w.groups, &circGroup{join: jn, space: sp, origIdx: members})
	}
	return w, nil
}

// NumGroups returns the number of distinct angular velocities.
func (w *CircularWorkload) NumGroups() int { return len(w.groups) }

// At returns all (circular, linear) pairs within distance s at time
// t, and aggregate stats summed over the per-group queries.
func (w *CircularWorkload) At(t, s float64) ([]IntersectionPair, core.Stats, error) {
	var out []IntersectionPair
	var agg core.Stats
	agg.IndexUsed = -1
	for _, g := range w.groups {
		pairs, st, err := g.join.AtPairs(t, s)
		if err != nil {
			return nil, agg, err
		}
		for _, p := range pairs {
			out = append(out, IntersectionPair{I: g.origIdx[p.I], J: p.J})
		}
		agg.N += st.N
		agg.Accepted += st.Accepted
		agg.Verified += st.Verified
		agg.Matched += st.Matched
		agg.Rejected += st.Rejected
		agg.FellBack = agg.FellBack || st.FellBack
	}
	return out, agg, nil
}

// Baseline computes the same answer naively across all groups.
func (w *CircularWorkload) Baseline(t, s float64) []IntersectionPair {
	var out []IntersectionPair
	for _, g := range w.groups {
		for _, p := range Baseline(g.space, t, s) {
			out = append(out, IntersectionPair{I: g.origIdx[p.I], J: p.J})
		}
	}
	return out
}

// Workload generators matching Section 7.5.1's simulation setups.

// GenLinear2D generates n objects uniform in a side×side square with
// per-axis speeds uniform in ±[vmin, vmax].
func GenLinear2D(n int, side, vmin, vmax float64, rng *rand.Rand) []Linear2D {
	out := make([]Linear2D, n)
	for i := range out {
		out[i] = Linear2D{
			P: Vec2{rng.Float64() * side, rng.Float64() * side},
			V: Vec2{randSpeed(rng, vmin, vmax), randSpeed(rng, vmin, vmax)},
		}
	}
	return out
}

// GenCircular generates n objects on concentric circles around
// center with radius uniform in [rmin, rmax] and random phase; the
// angular velocities are drawn uniformly from the discrete set
// omegas (radians per time unit) and returned alongside.
func GenCircular(n int, center Vec2, rmin, rmax float64, omegas []float64, rng *rand.Rand) ([]Circular, []float64) {
	objs := make([]Circular, n)
	ws := make([]float64, n)
	for i := range objs {
		objs[i] = Circular{
			Center: center,
			R:      rmin + rng.Float64()*(rmax-rmin),
			Phase:  rng.Float64() * 2 * math.Pi,
		}
		ws[i] = omegas[rng.Intn(len(omegas))]
	}
	return objs, ws
}

// GenLinear3D generates n linearly moving 3-D objects in a
// side-cube with per-axis speeds in ±[vmin, vmax].
func GenLinear3D(n int, side, vmin, vmax float64, rng *rand.Rand) []Linear3D {
	out := make([]Linear3D, n)
	for i := range out {
		out[i] = Linear3D{
			P: Vec3{rng.Float64() * side, rng.Float64() * side, rng.Float64() * side},
			V: Vec3{randSpeed(rng, vmin, vmax), randSpeed(rng, vmin, vmax), randSpeed(rng, vmin, vmax)},
		}
	}
	return out
}

// GenAccel3D generates n accelerating 3-D objects with per-axis
// speeds in ±[vmin, vmax] and per-axis accelerations in ±[amin,
// amax].
func GenAccel3D(n int, side, vmin, vmax, amin, amax float64, rng *rand.Rand) []Accel3D {
	out := make([]Accel3D, n)
	for i := range out {
		out[i] = Accel3D{
			P: Vec3{rng.Float64() * side, rng.Float64() * side, rng.Float64() * side},
			V: Vec3{randSpeed(rng, vmin, vmax), randSpeed(rng, vmin, vmax), randSpeed(rng, vmin, vmax)},
			A: Vec3{randSpeed(rng, amin, amax), randSpeed(rng, amin, amax), randSpeed(rng, amin, amax)},
		}
	}
	return out
}

// randSpeed draws a magnitude in [lo, hi] with random sign.
func randSpeed(rng *rand.Rand, lo, hi float64) float64 {
	v := lo + rng.Float64()*(hi-lo)
	if rng.Intn(2) == 0 {
		return -v
	}
	return v
}

// DegPerMin converts degrees/minute to radians/minute.
func DegPerMin(deg float64) float64 { return deg * math.Pi / 180 }
