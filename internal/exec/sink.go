package exec

import (
	"planar/internal/topk"
)

// Sink consumes the points a query reports. The Execute stage calls
// Accept for points proven to match without verification (the smaller
// interval, or an all-match plan) and Match for points that passed
// scalar-product verification (the intermediate interval, or a
// sequential scan). Either call may return false to stop execution
// early; Stats then reflect the work done so far.
//
// Sinks are used from a single goroutine even when verification runs
// on a worker pool — workers hand matches back to the calling
// goroutine for delivery.
type Sink interface {
	Accept(id uint32) bool
	Match(id uint32) bool
}

// AcceptCounter is an optional Sink capability: a sink that only
// needs the *number* of unverified accepts, not their ids. The
// Execute stage then counts the smaller interval in O(log n) through
// the key tree's order statistics instead of walking it.
type AcceptCounter interface {
	AcceptCount(n int)
}

// Bounded is an optional Sink capability marking a top-k style
// consumer: Bound reports the score a candidate must beat once the
// sink is saturated (ok=false while unsaturated). The Execute stage
// then walks the smaller interval in descending key order and cuts it
// off with the paper's lower-bound-distance pruning rule (Claim 3).
type Bounded interface {
	Bound() (score float64, ok bool)
}

// IDSink collects matching point ids in delivery order.
type IDSink struct {
	IDs []uint32
}

func (s *IDSink) Accept(id uint32) bool { s.IDs = append(s.IDs, id); return true }
func (s *IDSink) Match(id uint32) bool  { s.IDs = append(s.IDs, id); return true }

// FuncSink streams every reported id to a callback; a false return
// stops execution early.
type FuncSink func(id uint32) bool

func (f FuncSink) Accept(id uint32) bool { return f(id) }
func (f FuncSink) Match(id uint32) bool  { return f(id) }

// CountSink counts matches without materialising ids. Its
// AcceptCounter capability lets range plans resolve the smaller
// interval in O(log n), so a well-aligned index answers COUNT(*)
// queries in logarithmic time.
type CountSink struct {
	N int
}

func (s *CountSink) Accept(id uint32) bool { s.N++; return true }
func (s *CountSink) Match(id uint32) bool  { s.N++; return true }
func (s *CountSink) AcceptCount(n int)     { s.N += n }

// TopKSink retains the k reported points closest to the query
// hyperplane. Its Bounded capability drives the descending
// smaller-interval walk with lower-bound pruning (Algorithm 2).
type TopKSink struct {
	buf  *topk.Buffer
	dist func(id uint32) float64
}

// NewTopKSink returns a sink retaining the k smallest-distance
// points; dist resolves a point id to its distance from the query
// hyperplane. It panics if k <= 0 (callers validate first).
func NewTopKSink(k int, dist func(id uint32) float64) *TopKSink {
	return &TopKSink{buf: topk.New(k), dist: dist}
}

func (s *TopKSink) Accept(id uint32) bool {
	s.buf.Push(topk.Item{ID: id, Score: s.dist(id)})
	return true
}

func (s *TopKSink) Match(id uint32) bool {
	s.buf.Push(topk.Item{ID: id, Score: s.dist(id)})
	return true
}

// Bound implements Bounded, exposing the buffer's pruning bound.
func (s *TopKSink) Bound() (float64, bool) { return s.buf.Bound() }

// Results returns the retained points sorted by ascending distance
// (ties broken by id), or nil when nothing was retained.
func (s *TopKSink) Results() []Result {
	items := s.buf.Items()
	if len(items) == 0 {
		return nil
	}
	out := make([]Result, len(items))
	for i, it := range items {
		out[i] = Result{ID: it.ID, Distance: it.Score}
	}
	return out
}

// TraceSink records how many points flowed through each delivery path
// and optionally forwards them to an inner sink. It deliberately
// exposes none of the optional capabilities, so the Execute stage
// takes the generic walks and the trace observes every delivery — the
// EXPLAIN ANALYZE of the pipeline.
type TraceSink struct {
	Inner   Sink // may be nil
	Accepts int  // ids delivered without verification
	Matches int  // ids delivered after verification
	Stopped bool // the inner sink stopped execution early
}

func (s *TraceSink) Accept(id uint32) bool {
	s.Accepts++
	if s.Inner != nil && !s.Inner.Accept(id) {
		s.Stopped = true
		return false
	}
	return true
}

func (s *TraceSink) Match(id uint32) bool {
	s.Matches++
	if s.Inner != nil && !s.Inner.Match(id) {
		s.Stopped = true
		return false
	}
	return true
}
