package exec

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"planar/internal/btree"
	"planar/internal/vecmath"
)

// Options tunes the Execute stage.
type Options struct {
	// Workers > 1 verifies the intermediate interval on a goroutine
	// pool (clamped to GOMAXPROCS). Values below 1 — including 0 and
	// negatives — verify serially.
	Workers int
	// ForceTreeWalk selects the scalar per-entry verification walk
	// instead of the batched kernel engine. Both read the same leaf
	// arena; the scalar walk is the reference implementation that
	// correctness tests pin the kernels against.
	ForceTreeWalk bool
}

// ClampWorkers normalizes a worker count to [1, GOMAXPROCS]. It is
// the single clamp shared by every parallel stage (exec verification,
// core parallel queries), so 0, negative and oversized requests mean
// the same thing everywhere.
func ClampWorkers(workers int) int {
	if workers < 1 {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		return p
	}
	return workers
}

// Run is the whole pipeline for one query: Plan, then Execute into
// sink. It is the single entry point behind every query variant in
// internal/core.
func Run(src *Source, q Query, sink Sink, opts Options) (Stats, error) {
	plan, err := PlanQuery(src, q)
	if err != nil {
		return Stats{}, err
	}
	return Execute(src, q, plan, sink, opts)
}

// Execute runs a previously planned query into sink, timing the stage
// and merging the plan's timing and cache fields into the Stats.
func Execute(src *Source, q Query, plan Plan, sink Sink, opts Options) (Stats, error) {
	start := time.Now()
	st, err := execute(src, q, plan, sink, opts)
	st.ExecNanos = time.Since(start).Nanoseconds()
	st.PlanNanos = plan.PlanNanos
	st.CacheHit = plan.CacheHit
	return st, err
}

func execute(src *Source, q Query, plan Plan, sink Sink, opts Options) (Stats, error) {
	if plan.Kind == KindScan {
		if !opts.ForceTreeWalk && src.Rows != nil && src.RowLive != nil && src.RowDim > 0 {
			return executeScanBatched(src, q, sink), nil
		}
		return executeScan(src, q, sink), nil
	}

	info := &src.Indexes[plan.IndexPos]
	st := Stats{N: info.Tree.Len(), IndexUsed: plan.IndexPos}
	if src.Single {
		st.IndexUsed = -1
	}

	switch plan.Kind {
	case KindNone:
		st.Rejected = st.N
		return st, nil

	case KindAll:
		if _, ok := sink.(Bounded); ok {
			// Cannot happen through the public API: all-zero
			// coefficient vectors are rejected before top-k planning.
			return Stats{}, errors.New("core: internal: degenerate thresholds")
		}
		st.Accepted = st.N
		if ac, ok := sink.(AcceptCounter); ok {
			ac.AcceptCount(st.N)
			return st, nil
		}
		info.Tree.Ascend(func(e btree.Entry) bool { return sink.Accept(e.ID) })
		return st, nil
	}

	// KindRange: the three-interval walk.
	if b, ok := sink.(Bounded); ok {
		return executeTopK(src, q, plan, info, sink, b, st)
	}

	// Batched engine: when the store exposes its raw rows, the
	// interval boundaries are rank queries and the intermediate
	// interval streams straight out of the leaf arena through the
	// block kernels. The scalar walk below is the reference engine,
	// kept for verification-path tests behind ForceTreeWalk.
	if !opts.ForceTreeWalk && src.Rows != nil && src.RowDim > 0 {
		return executeBatched(src, q, plan, info, sink, ClampWorkers(opts.Workers), st)
	}

	// Smaller interval: accepted without verification. An early stop
	// here leaves Rejected at 0 (the larger interval was never
	// classified) — the legacy contract of Index.Inequality.
	if ac, ok := sink.(AcceptCounter); ok {
		st.Accepted = info.Tree.RankLE(plan.Tmin)
		ac.AcceptCount(st.Accepted)
	} else {
		stopped := false
		info.Tree.AscendLE(plan.Tmin, func(e btree.Entry) bool {
			st.Accepted++
			if !sink.Accept(e.ID) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return st, nil
		}
	}

	// Intermediate interval: verify, serially or on a worker pool.
	workers := ClampWorkers(opts.Workers)
	if workers > 1 {
		executeParallelII(src, q, plan, info, sink, workers, &st)
	} else {
		info.Tree.AscendRange(plan.Tmin, plan.Tmax, func(e btree.Entry) bool {
			st.Verified++
			if q.Satisfies(src.Vector(e.ID)) {
				st.Matched++
				if !sink.Match(e.ID) {
					return false
				}
			}
			return true
		})
		st.Rejected = st.N - st.Accepted - st.Verified
	}
	return st, nil
}

// executeScan answers the query with a sequential pass over the
// store: every point is verified.
func executeScan(src *Source, q Query, sink Sink) Stats {
	st := Stats{N: src.N, FellBack: true, IndexUsed: -1}
	st.Verified = st.N
	src.Each(func(id uint32, v []float64) bool {
		if q.Satisfies(v) {
			st.Matched++
			return sink.Match(id)
		}
		return true
	})
	return st
}

// executeParallelII verifies the intermediate interval on a worker
// pool. The interval's ids are collected first (so Verified and
// Rejected are final before verification starts), split into
// contiguous chunks, and each worker's matches are handed back to the
// calling goroutine in worker order — sinks never see concurrent
// calls.
func executeParallelII(src *Source, q Query, plan Plan, info *IndexInfo, sink Sink, workers int, st *Stats) {
	var middle []uint32
	info.Tree.AscendRange(plan.Tmin, plan.Tmax, func(e btree.Entry) bool {
		middle = append(middle, e.ID)
		return true
	})
	st.Verified = len(middle)
	st.Rejected = st.N - st.Accepted - st.Verified
	if len(middle) == 0 {
		return
	}
	if workers > len(middle) {
		workers = len(middle)
	}
	st.Workers = workers

	matched := make([][]uint32, workers)
	var wg sync.WaitGroup
	chunk := (len(middle) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(middle) {
			hi = len(middle)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var local []uint32
			for _, id := range middle[lo:hi] {
				if q.Satisfies(src.Vector(id)) {
					local = append(local, id)
				}
			}
			matched[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	for _, local := range matched {
		st.Matched += len(local)
		for _, id := range local {
			if !sink.Match(id) {
				return
			}
		}
	}
}

// executeTopK is the range walk for Bounded (top-k) sinks: the
// intermediate interval is verified exhaustively, then the smaller
// interval is walked in descending key order and cut off by the
// lower-bound-distance pruning rule of Claim 3. Stats.Verified counts
// intermediate-interval points examined and Stats.Accepted counts
// smaller-interval points examined before the rule fired (the paper's
// k1).
func executeTopK(src *Source, q Query, plan Plan, info *IndexInfo, sink Sink, bounded Bounded, st Stats) (Stats, error) {
	info.Tree.AscendRange(plan.Tmin, plan.Tmax, func(e btree.Entry) bool {
		st.Verified++
		if q.Satisfies(src.Vector(e.ID)) {
			st.Matched++
			return sink.Match(e.ID)
		}
		return true
	})

	// Lower-bound distance from a key to the query hyperplane
	// (Definition 5): min over nonzero axes of ||a_i|/c_i·key − b′|,
	// scaled by 1/|a|.
	normA := vecmath.Norm(q.A)
	invCoef := make([]float64, 0, len(q.A))
	for i, a := range q.A {
		if a != 0 {
			invCoef = append(invCoef, math.Abs(a)/info.C[i])
		}
	}
	info.Tree.DescendLE(plan.Tmin, func(e btree.Entry) bool {
		if bound, full := bounded.Bound(); full {
			lbs := math.Inf(1)
			for _, r := range invCoef {
				if d := math.Abs(r*e.Key - plan.BPrime); d < lbs {
					lbs = d
				}
			}
			lbs /= normA
			if lbs > bound {
				return false // Claim 3: no remaining point can improve
			}
		}
		st.Accepted++
		return sink.Accept(e.ID)
	})
	st.Rejected = st.N - st.Accepted - st.Verified
	return st, nil
}

// RunBatch answers one query per entry of bs, all sharing the
// coefficient vector a: the Plan stage's octant checks and index
// selection run once, and only the interval thresholds are recomputed
// per threshold — the hot pattern of repeated queries that differ
// only in their bound. sinkFor supplies a fresh sink for each
// threshold; out[i] is the Stats for bs[i].
func RunBatch(src *Source, a []float64, bs []float64, sinkFor func(i int, b float64) Sink, opts Options) ([]Stats, error) {
	out := make([]Stats, len(bs))
	if len(bs) == 0 {
		return out, nil
	}
	selStart := time.Now()
	base, err := planQuery(src, Query{A: a, B: bs[0]})
	selNanos := time.Since(selStart).Nanoseconds()
	if err != nil {
		return nil, err
	}
	for i, b := range bs {
		q := Query{A: a, B: b}
		var p Plan
		switch {
		case i == 0:
			p = base
			p.PlanNanos = selNanos
		case base.IndexPos >= 0:
			t0 := time.Now()
			p, err = finishPlan(src, q, base.IndexPos, base.Compatible)
			if err != nil {
				return nil, err
			}
			p.CacheHit = base.CacheHit
			p.PlanNanos = time.Since(t0).Nanoseconds()
		default:
			// The shared plan is a scan; every threshold scans.
			p = Plan{Kind: KindScan, IndexPos: -1, Compatible: base.Compatible,
				Reason: base.Reason, CacheHit: base.CacheHit}
		}
		st, err := Execute(src, q, p, sinkFor(i, b), opts)
		if err != nil {
			return nil, err
		}
		out[i] = st
	}
	return out, nil
}
