package exec

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"planar/internal/btree"
	"planar/internal/vecmath"
)

// buildInfo assembles an IndexInfo the way internal/core does: octant
// translation offsets from the data, keys ⟨c, z(x)⟩ over the
// translated frame.
func buildInfo(points [][]float64, normal []float64, signs vecmath.SignPattern, guard float64) IndexInfo {
	d := len(normal)
	delta := make([]float64, d)
	for _, v := range points {
		for i := 0; i < d; i++ {
			if z := float64(signs[i]) * v[i]; -z > delta[i] {
				delta[i] = -z
			}
		}
	}
	cs := make([]float64, d)
	for i := 0; i < d; i++ {
		cs[i] = normal[i] * float64(signs[i])
	}
	base := vecmath.Dot(normal, delta)
	entries := make([]btree.Entry, len(points))
	for id, v := range points {
		entries[id] = btree.Entry{Key: vecmath.Dot(cs, v) + base, ID: uint32(id)}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	return IndexInfo{
		Tree:  btree.BulkLoad(entries),
		C:     append([]float64(nil), normal...),
		Delta: delta,
		CS:    cs,
		Signs: append(vecmath.SignPattern(nil), signs...),
		Guard: guard,
	}
}

func randPoints(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		v := make([]float64, d)
		for j := range v {
			v[j] = (rng.Float64() - 0.5) * 100
		}
		pts[i] = v
	}
	return pts
}

func makeSource(points [][]float64, infos []IndexInfo) *Source {
	return &Source{
		N:       len(points),
		Indexes: infos,
		Vector:  func(id uint32) []float64 { return points[id] },
		Each: func(fn func(id uint32, v []float64) bool) {
			for id, v := range points {
				if !fn(uint32(id), v) {
					return
				}
			}
		},
	}
}

func sortedCopy(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteIDs(points [][]float64, q Query) []uint32 {
	var out []uint32
	for id, v := range points {
		if q.Satisfies(v) {
			out = append(out, uint32(id))
		}
	}
	return out
}

// TestPartitionProperty checks the paper's core invariant for random
// indexes and queries: the smaller, intermediate and larger intervals
// form an exhaustive, disjoint partition of the indexed points, every
// smaller-interval point satisfies the query, and no larger-interval
// point does.
func TestPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(4)
		n := 1 + rng.Intn(120)
		points := randPoints(rng, n, d)

		signs := make(vecmath.SignPattern, d)
		a := make([]float64, d)
		normal := make([]float64, d)
		for i := 0; i < d; i++ {
			if rng.Intn(2) == 0 {
				signs[i] = 1
			} else {
				signs[i] = -1
			}
			a[i] = float64(signs[i]) * rng.Float64() * 5
			normal[i] = 0.5 + rng.Float64()*3
		}
		if trial%4 == 0 {
			a[rng.Intn(d)] = 0 // exercise ignored axes
		}
		b := (rng.Float64() - 0.4) * 400
		q := Query{A: a, B: b}

		info := buildInfo(points, normal, signs, 1e-9)
		src := makeSource(points, []IndexInfo{info})
		src.Single = true // standalone index: no competitive scoring
		plan, err := PlanQuery(src, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var si, ii, li []uint32
		switch plan.Kind {
		case KindNone:
			info.Tree.Ascend(func(e btree.Entry) bool { li = append(li, e.ID); return true })
		case KindAll:
			info.Tree.Ascend(func(e btree.Entry) bool { si = append(si, e.ID); return true })
		case KindRange:
			info.Tree.AscendLE(plan.Tmin, func(e btree.Entry) bool { si = append(si, e.ID); return true })
			info.Tree.AscendRange(plan.Tmin, plan.Tmax, func(e btree.Entry) bool { ii = append(ii, e.ID); return true })
			if !math.IsInf(plan.Tmax, 1) {
				info.Tree.Ascend(func(e btree.Entry) bool {
					if e.Key > plan.Tmax {
						li = append(li, e.ID)
					}
					return true
				})
			}
		default:
			t.Fatalf("trial %d: unexpected plan kind %v", trial, plan.Kind)
		}

		if got := len(si) + len(ii) + len(li); got != n {
			t.Fatalf("trial %d: partition covers %d of %d points (plan %+v)", trial, got, n, plan)
		}
		seen := make(map[uint32]bool, n)
		for _, part := range [][]uint32{si, ii, li} {
			for _, id := range part {
				if seen[id] {
					t.Fatalf("trial %d: id %d in two intervals", trial, id)
				}
				seen[id] = true
			}
		}
		for _, id := range si {
			if !q.Satisfies(points[id]) {
				t.Fatalf("trial %d: smaller-interval id %d does not satisfy", trial, id)
			}
		}
		for _, id := range li {
			if q.Satisfies(points[id]) {
				t.Fatalf("trial %d: larger-interval id %d satisfies", trial, id)
			}
		}

		// Interval accounting must agree with the order statistics the
		// counting plans use.
		lo, hi, err := Bounds(&info, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if lo != len(si) || hi != len(si)+len(ii) {
			t.Fatalf("trial %d: Bounds (%d,%d), walked (%d,%d)", trial, lo, hi, len(si), len(si)+len(ii))
		}
	}
}

// TestRunMatchesBruteForce drives the full pipeline across every sink
// against a brute-force oracle.
func TestRunMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		d := 1 + rng.Intn(3)
		points := randPoints(rng, 1+rng.Intn(200), d)
		signs := vecmath.FirstOctant(d)
		a := make([]float64, d)
		normal := make([]float64, d)
		for i := range a {
			a[i] = rng.Float64() * 4
			normal[i] = 0.5 + rng.Float64()*2
		}
		q := Query{A: a, B: (rng.Float64() - 0.3) * 300}
		infos := []IndexInfo{buildInfo(points, normal, signs, 1e-9)}
		src := makeSource(points, infos)
		want := sortedCopy(bruteIDs(points, q))

		var ids IDSink
		if _, err := Run(src, q, &ids, Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(sortedCopy(ids.IDs), want) {
			t.Fatalf("trial %d: IDSink mismatch: got %d want %d", trial, len(ids.IDs), len(want))
		}

		var cnt CountSink
		if _, err := Run(src, q, &cnt, Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if cnt.N != len(want) {
			t.Fatalf("trial %d: CountSink %d want %d", trial, cnt.N, len(want))
		}

		var parallel IDSink
		if _, err := Run(src, q, &parallel, Options{Workers: 4}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(sortedCopy(parallel.IDs), want) {
			t.Fatalf("trial %d: parallel mismatch", trial)
		}

		var got []uint32
		_, err := Run(src, q, FuncSink(func(id uint32) bool { got = append(got, id); return true }), Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(sortedCopy(got), want) {
			t.Fatalf("trial %d: FuncSink mismatch", trial)
		}

		trace := &TraceSink{Inner: &IDSink{}}
		st, err := Run(src, q, trace, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if trace.Accepts != st.Accepted || trace.Matches != st.Matched {
			t.Fatalf("trial %d: trace (%d,%d) disagrees with stats (%d,%d)",
				trial, trace.Accepts, trace.Matches, st.Accepted, st.Matched)
		}
	}
}

func TestFuncSinkEarlyStop(t *testing.T) {
	points := [][]float64{{1}, {2}, {3}, {4}}
	info := buildInfo(points, []float64{1}, vecmath.FirstOctant(1), 0)
	src := makeSource(points, []IndexInfo{info})
	calls := 0
	st, err := Run(src, Query{A: []float64{1}, B: 100}, FuncSink(func(uint32) bool {
		calls++
		return calls < 2
	}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("visited %d points, want 2", calls)
	}
	// The legacy early-stop contract: stats are partial, the larger
	// interval is left unclassified.
	if st.Rejected != 0 {
		t.Fatalf("early stop classified %d rejected points", st.Rejected)
	}
}

func TestPlanCacheHitAndInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	points := randPoints(rng, 300, 3)
	signs := vecmath.FirstOctant(3)
	infos := []IndexInfo{
		buildInfo(points, []float64{1, 2, 3}, signs, 1e-9),
		buildInfo(points, []float64{3, 1, 1}, signs, 1e-9),
	}
	src := makeSource(points, infos)
	src.Cache = NewPlanCache(8)

	a := []float64{1, 1, 2}
	p1, err := PlanQuery(src, Query{A: a, B: 40})
	if err != nil {
		t.Fatal(err)
	}
	if p1.CacheHit {
		t.Fatal("first plan reported a cache hit")
	}
	p2, err := PlanQuery(src, Query{A: a, B: -20})
	if err != nil {
		t.Fatal(err)
	}
	if !p2.CacheHit {
		t.Fatal("second plan with the same direction missed the cache")
	}
	// Scaling the coefficients by a power of two is exact in floating
	// point, so the normalized direction key is identical.
	p3, err := PlanQuery(src, Query{A: []float64{4, 4, 8}, B: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !p3.CacheHit {
		t.Fatal("scaled coefficients missed the cache")
	}
	hits, misses := src.Cache.Counters()
	if hits != 2 || misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 2/1", hits, misses)
	}

	// A mutation epoch bump invalidates the entry.
	src.Epoch++
	p4, err := PlanQuery(src, Query{A: a, B: 40})
	if err != nil {
		t.Fatal(err)
	}
	if p4.CacheHit {
		t.Fatal("stale-epoch entry served a cache hit")
	}

	// Cached and uncached plans must deliver identical answers.
	for _, b := range []float64{-50, 0, 35, 90, 400} {
		q := Query{A: a, B: b}
		var cold, warm IDSink
		uncached := *src
		uncached.Cache = nil
		if _, err := Run(&uncached, q, &cold, Options{}); err != nil {
			t.Fatal(err)
		}
		if _, err := Run(src, q, &warm, Options{}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedCopy(cold.IDs), sortedCopy(warm.IDs)) {
			t.Fatalf("b=%v: cached answer differs from uncached", b)
		}
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	c := NewPlanCache(2)
	e := func() *planEntry { return &planEntry{} }
	c.insert([]byte("a"), e())
	c.insert([]byte("b"), e())
	if c.lookup([]byte("a"), 0) == nil { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.insert([]byte("c"), e())
	if c.lookup([]byte("b"), 0) != nil {
		t.Fatal("b should have been evicted")
	}
	if c.lookup([]byte("a"), 0) == nil || c.lookup([]byte("c"), 0) == nil {
		t.Fatal("a and c should survive")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("Len after Purge = %d", c.Len())
	}
}

func TestDirKey(t *testing.T) {
	k1, ok := dirKey([]float64{1, 2, 2})
	if !ok {
		t.Fatal("finite vector not cacheable")
	}
	k2, _ := dirKey([]float64{0.5, 1, 1})
	if k1 != k2 {
		t.Fatal("scaled vectors should share a key")
	}
	k3, _ := dirKey([]float64{1, 2, 2.0001})
	if k1 == k3 {
		t.Fatal("different directions share a key")
	}
	if _, ok := dirKey([]float64{0, 0}); ok {
		t.Fatal("zero vector should not be cacheable")
	}
	if _, ok := dirKey([]float64{math.Inf(1), 1}); ok {
		t.Fatal("non-finite vector should not be cacheable")
	}
}

func TestRunBatchMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	points := randPoints(rng, 250, 2)
	signs := vecmath.FirstOctant(2)
	infos := []IndexInfo{
		buildInfo(points, []float64{1, 1}, signs, 1e-9),
		buildInfo(points, []float64{1, 4}, signs, 1e-9),
	}
	src := makeSource(points, infos)
	a := []float64{2, 3}
	bs := []float64{-100, -5, 0, 25, 80, 150, 1000}

	sinks := make([]*IDSink, len(bs))
	sts, err := RunBatch(src, a, bs, func(i int, _ float64) Sink {
		sinks[i] = &IDSink{}
		return sinks[i]
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bs {
		q := Query{A: a, B: b}
		var single IDSink
		st, err := Run(src, q, &single, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedCopy(sinks[i].IDs), sortedCopy(single.IDs)) {
			t.Fatalf("b=%v: batch answer differs from single query", b)
		}
		if sts[i].Accepted != st.Accepted || sts[i].Verified != st.Verified ||
			sts[i].Matched != st.Matched || sts[i].Rejected != st.Rejected {
			t.Fatalf("b=%v: batch stats %+v differ from single %+v", b, sts[i], st)
		}
		if !reflect.DeepEqual(sortedCopy(sinks[i].IDs), sortedCopy(bruteIDs(points, q))) {
			t.Fatalf("b=%v: batch answer differs from brute force", b)
		}
	}
}

func TestSelectionString(t *testing.T) {
	cases := []struct {
		sel  Selection
		want string
	}{
		{SelectVolume, "volume"},
		{SelectAngle, "angle"},
		{Selection(7), "Selection(7)"},
		{Selection(-1), "Selection(-1)"},
	}
	for _, c := range cases {
		if got := c.sel.String(); got != c.want {
			t.Errorf("Selection(%d).String() = %q, want %q", int(c.sel), got, c.want)
		}
	}
	// Unknown-value round-trip: the numeric value survives formatting.
	if got := Selection(7).String(); got != "Selection(7)" {
		t.Fatalf("round-trip failed: %q", got)
	}
}

func TestStatsHelpers(t *testing.T) {
	st := Stats{N: 100, Accepted: 30, Verified: 20, Matched: 5, Rejected: 50}
	if st.Results() != 35 {
		t.Fatalf("Results = %d", st.Results())
	}
	if got := st.PruningFraction(); got != 0.8 {
		t.Fatalf("PruningFraction = %v", got)
	}
	if (Stats{}).PruningFraction() != 0 {
		t.Fatal("empty stats should report zero pruning")
	}
}
