package exec

import (
	"math"
	"sync"
	"sync/atomic"

	"planar/internal/kernel"
)

// This file is the batched verification engine: the KindRange and
// KindScan execution strategies re-expressed over contiguous arrays.
// The interval boundaries come from two binary searches on the
// index's packed key column, the smaller interval resolves to index
// arithmetic on the packed id column, and the intermediate interval
// is verified block-by-block through the dimension-specialized
// kernels in internal/kernel. All scratch memory is pooled, so a
// steady-state query allocates nothing.
//
// The engine declines (and execute falls back to the B-tree walk)
// when the source exposes no packed column or raw rows, when another
// query holds the mirror mid-rebuild, or when the intermediate
// interval is too small to amortise a gather (kernel.MinBatch).

// scratch is the per-query working set of the batched engine: a
// gather buffer of one block of φ rows and a match-offset buffer.
type scratch struct {
	gather  []float64
	matches []uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(dim int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if need := kernel.BlockRows * dim; cap(sc.gather) < need {
		sc.gather = make([]float64, need)
	}
	if cap(sc.matches) < kernel.BlockRows {
		sc.matches = make([]uint32, kernel.BlockRows)
	}
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// hitBuf is a pooled grow-able id buffer used by parallel workers to
// collect their matches before ordered delivery.
type hitBuf struct{ ids []uint32 }

var hitPool = sync.Pool{New: func() any { return new(hitBuf) }}

// upperBound returns the number of keys ≤ x — the packed-column
// equivalent of Tree.RankLE. keys is sorted ascending.
func upperBound(keys []float64, x float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// packedColumn resolves the source's packed mirror for one index, or
// ok=false when the engine must fall back to the tree walk.
func packedColumn(src *Source, info *IndexInfo) (keys []float64, ids []uint32, ok bool) {
	if info.Packed == nil || src.Rows == nil || src.RowDim <= 0 {
		return nil, nil, false
	}
	return info.Packed()
}

// executeBatched is the three-interval walk over the packed column.
// Contract differences from the tree walk are deliberate and
// documented: once the intermediate phase starts, Verified and
// Rejected are final (as in the parallel walk) even if the sink stops
// early.
func executeBatched(src *Source, q Query, plan Plan, sink Sink, keys []float64, ids []uint32, workers int, st Stats) (Stats, error) {
	// Smaller interval: index arithmetic instead of a walk.
	si := upperBound(keys, plan.Tmin)
	if ac, ok := sink.(AcceptCounter); ok {
		st.Accepted = si
		ac.AcceptCount(si)
	} else {
		for _, id := range ids[:si] {
			st.Accepted++
			if !sink.Accept(id) {
				// Legacy early-stop contract: partial stats, larger
				// interval unclassified.
				return st, nil
			}
		}
	}

	// Intermediate interval: a contiguous slice of the packed column.
	hi := len(keys)
	if !math.IsInf(plan.Tmax, 1) {
		hi = upperBound(keys, plan.Tmax)
	}
	middle := ids[si:hi]
	st.Verified = len(middle)
	st.Rejected = st.N - st.Accepted - st.Verified
	if len(middle) == 0 {
		return st, nil
	}

	if workers > 1 && len(middle) >= 2*kernel.BlockRows {
		executeParallelBatched(src, q, middle, sink, workers, &st)
		return st, nil
	}

	// Tiny intervals skip the gather: a direct pass over the
	// contiguous ids already beats the tree walk.
	if len(middle) < kernel.MinBatch {
		for _, id := range middle {
			if q.Satisfies(src.Vector(id)) {
				st.Matched++
				if !sink.Match(id) {
					return st, nil
				}
			}
		}
		return st, nil
	}

	sc := getScratch(src.RowDim)
	defer putScratch(sc)
	d := src.RowDim
	for lo := 0; lo < len(middle); lo += kernel.BlockRows {
		end := lo + kernel.BlockRows
		if end > len(middle) {
			end = len(middle)
		}
		blk := middle[lo:end]
		kernel.Gather(src.Rows, d, blk, sc.gather)
		m := kernel.FilterLE(q.A, q.B, sc.gather[:len(blk)*d], sc.matches)
		for _, off := range sc.matches[:m] {
			st.Matched++
			if !sink.Match(blk[off]) {
				return st, nil
			}
		}
	}
	return st, nil
}

// executeParallelBatched verifies the intermediate interval with
// block-granular work stealing: workers claim BlockRows-sized blocks
// of the packed id slice off a shared atomic cursor, so a skewed
// match distribution cannot leave one goroutine holding the tail.
// Matches are handed back to the calling goroutine in worker order —
// sinks never see concurrent calls.
func executeParallelBatched(src *Source, q Query, middle []uint32, sink Sink, workers int, st *Stats) {
	blocks := (len(middle) + kernel.BlockRows - 1) / kernel.BlockRows
	if workers > blocks {
		workers = blocks
	}
	st.Workers = workers

	hits := make([]*hitBuf, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	d := src.RowDim
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := getScratch(d)
			defer putScratch(sc)
			hb := hitPool.Get().(*hitBuf)
			hb.ids = hb.ids[:0]
			for {
				bi := int(next.Add(1) - 1)
				if bi >= blocks {
					break
				}
				lo := bi * kernel.BlockRows
				end := lo + kernel.BlockRows
				if end > len(middle) {
					end = len(middle)
				}
				blk := middle[lo:end]
				kernel.Gather(src.Rows, d, blk, sc.gather)
				m := kernel.FilterLE(q.A, q.B, sc.gather[:len(blk)*d], sc.matches)
				for _, off := range sc.matches[:m] {
					hb.ids = append(hb.ids, blk[off])
				}
			}
			hits[w] = hb
		}(w)
	}
	wg.Wait()
	stopped := false
	for _, hb := range hits {
		for _, id := range hb.ids {
			if !stopped {
				st.Matched++
				if !sink.Match(id) {
					stopped = true
				}
			}
		}
		hitPool.Put(hb)
	}
}

// executeScanBatched answers a scan plan with block kernels over the
// raw row array: every complete block of rows (live and dead) runs
// through FilterLE, and dead rows are dropped at delivery. Verified
// counts live points only, matching the per-point scan.
func executeScanBatched(src *Source, q Query, sink Sink) Stats {
	st := Stats{N: src.N, FellBack: true, IndexUsed: -1}
	st.Verified = st.N
	sc := getScratch(src.RowDim)
	defer putScratch(sc)
	d := src.RowDim
	rows := len(src.RowLive)
	for lo := 0; lo < rows; lo += kernel.BlockRows {
		end := lo + kernel.BlockRows
		if end > rows {
			end = rows
		}
		m := kernel.FilterLE(q.A, q.B, src.Rows[lo*d:end*d], sc.matches)
		for _, off := range sc.matches[:m] {
			id := uint32(lo) + off
			if !src.RowLive[id] {
				continue
			}
			st.Matched++
			if !sink.Match(id) {
				return st
			}
		}
	}
	return st
}
