package exec

import (
	"sync"
	"sync/atomic"

	"planar/internal/btree"
	"planar/internal/kernel"
)

// This file is the batched verification engine: the KindRange and
// KindScan execution strategies re-expressed over contiguous arrays.
// The interval boundaries are rank queries on the index tree, the
// smaller interval resolves to a single rank, and the intermediate
// interval is verified block-by-block through the
// dimension-specialized kernels in internal/kernel. The key/id
// columns are not copied anywhere: the tree's leaf arena IS the
// packed column, and RangeChunks hands out slices that alias it
// directly. All scratch memory is pooled, so a steady-state query
// allocates nothing.
//
// The engine runs whenever the source exposes raw rows; ForceTreeWalk
// pins the scalar per-entry walk in run.go instead, which remains the
// reference implementation for correctness tests.

// One RangeChunks chunk stays within one leaf, and one leaf is
// exactly one kernel block. The two uint conversions reject a drift
// in either direction at compile time.
const (
	_ = uint(kernel.BlockRows - btree.LeafCap)
	_ = uint(btree.LeafCap - kernel.BlockRows)
)

// scratch is the per-query working set of the batched engine: a
// gather buffer of one block of φ rows and a match-offset buffer.
type scratch struct {
	gather  []float64
	matches []uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch(dim int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if need := kernel.BlockRows * dim; cap(sc.gather) < need {
		sc.gather = make([]float64, need)
	}
	if cap(sc.matches) < kernel.BlockRows {
		sc.matches = make([]uint32, kernel.BlockRows)
	}
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// hitBuf is a pooled grow-able id buffer: parallel workers collect
// their matches in one before ordered delivery, and the parallel
// driver flattens the intermediate interval into one.
type hitBuf struct{ ids []uint32 }

var hitPool = sync.Pool{New: func() any { return new(hitBuf) }}

// executeBatched is the three-interval walk over the leaf arena.
// Contract differences from the tree walk are deliberate and
// documented: once the intermediate phase starts, Verified and
// Rejected are final (as in the parallel walk) even if the sink stops
// early.
func executeBatched(src *Source, q Query, plan Plan, info *IndexInfo, sink Sink, workers int, st Stats) (Stats, error) {
	tree := info.Tree

	// Smaller interval: accepted without verification, by rank
	// arithmetic when the sink only counts.
	if ac, ok := sink.(AcceptCounter); ok {
		st.Accepted = tree.RankLE(plan.Tmin)
		ac.AcceptCount(st.Accepted)
	} else {
		stopped := false
		tree.AscendLE(plan.Tmin, func(e btree.Entry) bool {
			st.Accepted++
			if !sink.Accept(e.ID) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			// Legacy early-stop contract: partial stats, larger
			// interval unclassified.
			return st, nil
		}
	}

	// Intermediate interval: the rank difference fixes Verified and
	// Rejected before verification starts.
	middleN := tree.CountRange(plan.Tmin, plan.Tmax)
	st.Verified = middleN
	st.Rejected = st.N - st.Accepted - st.Verified
	if middleN == 0 {
		return st, nil
	}

	if workers > 1 && middleN >= 2*kernel.BlockRows {
		executeParallelBatched(src, q, plan, tree, sink, workers, &st)
		return st, nil
	}

	// Tiny intervals skip the gather: a direct pass over the arena
	// ids already beats the per-entry tree walk.
	if middleN < kernel.MinBatch {
		tree.RangeChunks(plan.Tmin, plan.Tmax, func(_ []float64, ids []uint32) bool {
			for _, id := range ids {
				if q.Satisfies(src.Vector(id)) {
					st.Matched++
					if !sink.Match(id) {
						return false
					}
				}
			}
			return true
		})
		return st, nil
	}

	sc := getScratch(src.RowDim)
	defer putScratch(sc)
	d := src.RowDim
	tree.RangeChunks(plan.Tmin, plan.Tmax, func(_ []float64, ids []uint32) bool {
		kernel.Gather(src.Rows, d, ids, sc.gather)
		m := kernel.FilterLE(q.A, q.B, sc.gather[:len(ids)*d], sc.matches)
		for _, off := range sc.matches[:m] {
			st.Matched++
			if !sink.Match(ids[off]) {
				return false
			}
		}
		return true
	})
	return st, nil
}

// executeParallelBatched verifies the intermediate interval with
// block-granular work stealing: the interval's ids are flattened out
// of the leaf arena into a pooled buffer, workers claim
// BlockRows-sized blocks off a shared atomic cursor, so a skewed
// match distribution cannot leave one goroutine holding the tail.
// Matches are handed back to the calling goroutine in worker order —
// sinks never see concurrent calls.
func executeParallelBatched(src *Source, q Query, plan Plan, tree *btree.Tree, sink Sink, workers int, st *Stats) {
	mb := hitPool.Get().(*hitBuf)
	defer hitPool.Put(mb)
	mb.ids = tree.CollectRange(plan.Tmin, plan.Tmax, mb.ids[:0])
	middle := mb.ids

	blocks := (len(middle) + kernel.BlockRows - 1) / kernel.BlockRows
	if workers > blocks {
		workers = blocks
	}
	st.Workers = workers

	hits := make([]*hitBuf, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	d := src.RowDim
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := getScratch(d)
			defer putScratch(sc)
			hb := hitPool.Get().(*hitBuf)
			hb.ids = hb.ids[:0]
			for {
				bi := int(next.Add(1) - 1)
				if bi >= blocks {
					break
				}
				lo := bi * kernel.BlockRows
				end := lo + kernel.BlockRows
				if end > len(middle) {
					end = len(middle)
				}
				blk := middle[lo:end]
				kernel.Gather(src.Rows, d, blk, sc.gather)
				m := kernel.FilterLE(q.A, q.B, sc.gather[:len(blk)*d], sc.matches)
				for _, off := range sc.matches[:m] {
					hb.ids = append(hb.ids, blk[off])
				}
			}
			hits[w] = hb
		}(w)
	}
	wg.Wait()
	stopped := false
	for _, hb := range hits {
		for _, id := range hb.ids {
			if !stopped {
				st.Matched++
				if !sink.Match(id) {
					stopped = true
				}
			}
		}
		hitPool.Put(hb)
	}
}

// executeScanBatched answers a scan plan with block kernels over the
// raw row array: every complete block of rows (live and dead) runs
// through FilterLE, and dead rows are dropped at delivery. Verified
// counts live points only, matching the per-point scan.
func executeScanBatched(src *Source, q Query, sink Sink) Stats {
	st := Stats{N: src.N, FellBack: true, IndexUsed: -1}
	st.Verified = st.N
	sc := getScratch(src.RowDim)
	defer putScratch(sc)
	d := src.RowDim
	rows := len(src.RowLive)
	for lo := 0; lo < rows; lo += kernel.BlockRows {
		end := lo + kernel.BlockRows
		if end > rows {
			end = rows
		}
		m := kernel.FilterLE(q.A, q.B, src.Rows[lo*d:end*d], sc.matches)
		for _, off := range sc.matches[:m] {
			id := uint32(lo) + off
			if !src.RowLive[id] {
				continue
			}
			st.Matched++
			if !sink.Match(id) {
				return st
			}
		}
	}
	return st
}
