package exec

import (
	"fmt"
	"math"
	"time"

	"planar/internal/vecmath"
)

// Kind classifies how a plan answers its query.
type Kind int

const (
	// KindNone: no point can match; reject everything.
	KindNone Kind = iota
	// KindAll: every point matches; accept everything.
	KindAll
	// KindRange: three-interval execution on the chosen index.
	KindRange
	// KindScan: sequential scan (no compatible index, or the cost
	// model preferred it).
	KindScan
)

// Plan is the Plan stage's output: which index (if any) answers the
// query and where its interval thresholds lie. All estimates needed
// later by the Execute stage are already computed; Explain adds the
// exact interval cardinalities on top.
type Plan struct {
	// Kind selects the execution strategy.
	Kind Kind
	// IndexPos is the chosen index's position in Source.Indexes, or
	// −1 for scan plans.
	IndexPos int
	// Compatible counts octant-compatible candidate indexes.
	Compatible int
	// Tmin and Tmax delimit SI/II/LI in key space (KindRange only);
	// Tmax may be +Inf when some coefficient is zero.
	Tmin, Tmax float64
	// BPrime is the translated query bound b′ (KindRange only), used
	// by the top-k lower-bound pruning rule.
	BPrime float64
	// Reason explains the choice in one sentence.
	Reason string
	// PlanNanos is the time the Plan stage took.
	PlanNanos int64
	// CacheHit reports that selection came from the plan cache.
	CacheHit bool
}

// intervals is the raw threshold computation for one index (the
// paper's Section 4.1 arithmetic, moved here verbatim from the old
// per-variant copies in internal/core).
type intervals struct {
	tmin, tmax, bPrime float64
	all, none          bool
}

// thresholds computes the interval boundaries for a normalized (≤)
// query against one index.
//
// Returned cases:
//   - all:   every point matches (all coefficients zero, B ≥ 0)
//   - none:  no point can match (all zero with B < 0, or b′ < 0)
//   - else tmin/tmax delimit SI/II/LI in key space; tmax may be +Inf
//     when some coefficient is zero (rejection impossible).
func thresholds(info *IndexInfo, q Query) (intervals, error) {
	if !info.Signs.Matches(q.A) {
		return intervals{}, ErrIncompatibleOctant
	}
	iv := intervals{bPrime: q.B}
	nonZero := 0
	for i, a := range q.A {
		iv.bPrime += math.Abs(a) * info.Delta[i]
		if a != 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		if q.B >= 0 {
			iv.all = true
		} else {
			iv.none = true
		}
		return iv, nil
	}
	if iv.bPrime < 0 {
		iv.none = true
		return iv, nil
	}
	iv.tmin = math.Inf(1)
	iv.tmax = math.Inf(-1)
	for i, a := range q.A {
		if a == 0 {
			iv.tmax = math.Inf(1) // rejection impossible on ignored axes
			continue
		}
		t := info.C[i] * iv.bPrime / math.Abs(a)
		if t < iv.tmin {
			iv.tmin = t
		}
		if t > iv.tmax {
			iv.tmax = t
		}
	}
	// Conservative band: only ever widens the verified range.
	if info.Guard > 0 {
		g := info.Guard * (1 + math.Abs(iv.tmin))
		iv.tmin -= g
		if !math.IsInf(iv.tmax, 1) {
			iv.tmax += info.Guard * (1 + math.Abs(iv.tmax))
		}
	}
	return iv, nil
}

// Stretch evaluates the paper's Problem 3 objective for one index
// against a normalized query: the maximum stretch of the intermediate
// interval along any axis, (tmax − tmin) / min_i c_i. Smaller is
// better; 0 means the index normal is parallel to the query
// hyperplane (Corollary 1). It returns +Inf for incompatible octants
// or degenerate queries.
func Stretch(info *IndexInfo, q Query) float64 {
	iv, err := thresholds(info, q)
	if err != nil {
		return math.Inf(1)
	}
	if iv.all || iv.none {
		return 0 // trivially answered without any verification
	}
	if math.IsInf(iv.tmax, 1) {
		return math.Inf(1)
	}
	cmin := info.C[0]
	for _, v := range info.C[1:] {
		if v < cmin {
			cmin = v
		}
	}
	return (iv.tmax - iv.tmin) / cmin
}

// CosToQuery returns |cos| of the angle between the query hyperplane
// normal a and the index's effective normal — the angle-minimisation
// selection criterion of Section 5.1.2 (larger is better).
func CosToQuery(info *IndexInfo, a []float64) float64 {
	return math.Abs(vecmath.CosAngle(a, info.CS))
}

// Bounds returns guaranteed cardinality bounds lo ≤ |answer| ≤ hi for
// q on one index in O(d·log n): lo is the smaller interval's size, hi
// adds the intermediate interval.
func Bounds(info *IndexInfo, q Query) (lo, hi int, err error) {
	iv, err := thresholds(info, q)
	if err != nil {
		return 0, 0, err
	}
	n := info.Tree.Len()
	if iv.none {
		return 0, 0, nil
	}
	if iv.all {
		return n, n, nil
	}
	lo = info.Tree.RankLE(iv.tmin)
	hi = lo + info.Tree.CountRange(iv.tmin, iv.tmax)
	return lo, hi, nil
}

// intervalSizes returns the exact SI and II cardinalities implied by
// iv on info's key tree.
func intervalSizes(info *IndexInfo, iv intervals) (si, ii int) {
	n := info.Tree.Len()
	switch {
	case iv.none:
		return 0, 0
	case iv.all:
		return n, 0
	}
	si = info.Tree.RankLE(iv.tmin)
	if math.IsInf(iv.tmax, 1) {
		ii = n - si
	} else {
		ii = info.Tree.CountRange(iv.tmin, iv.tmax)
	}
	return si, ii
}

// PlanQuery runs the Plan stage: octant compatibility, best-index
// selection (through the plan cache when available), interval
// thresholds and the cost-based scan choice.
func PlanQuery(src *Source, q Query) (Plan, error) {
	start := time.Now()
	p, err := planQuery(src, q)
	p.PlanNanos = time.Since(start).Nanoseconds()
	return p, err
}

func planQuery(src *Source, q Query) (Plan, error) {
	if src.Cache != nil && !src.Single {
		kb := keyBufPool.Get().(*[]byte)
		key, ok := dirKeyInto(q.A, (*kb)[:0])
		*kb = key
		if ok {
			if e := src.Cache.lookup(key, src.Epoch); e != nil {
				keyBufPool.Put(kb)
				return planFromEntry(src, q, e)
			}
			p, e, err := planScored(src, q, true)
			if err == nil && e != nil {
				src.Cache.insert(key, e)
			}
			keyBufPool.Put(kb)
			return p, err
		}
		keyBufPool.Put(kb)
	}
	p, _, err := planScored(src, q, false)
	return p, err
}

// planScored is the uncached Plan stage: every candidate index is
// octant-checked and scored. When memo is set it also builds the
// plan-cache entry for the query's coefficient direction.
func planScored(src *Source, q Query, memo bool) (Plan, *planEntry, error) {
	best, bestScore := -1, math.Inf(1)
	compatible := 0
	var entry *planEntry
	if memo {
		entry = &planEntry{epoch: src.Epoch}
	}
	for i := range src.Indexes {
		info := &src.Indexes[i]
		if !info.Signs.Matches(q.A) {
			continue
		}
		compatible++
		if src.Single {
			// A standalone index is not competing with anything; its
			// score is irrelevant (and may legitimately be +Inf, e.g.
			// a zero coefficient axis making rejection impossible).
			best = i
			continue
		}
		var score float64
		switch src.Sel {
		case SelectAngle:
			score = -CosToQuery(info, q.A) // maximise |cos|
		default:
			score = Stretch(info, q)
		}
		if score < bestScore {
			bestScore, best = score, i
		}
		if memo {
			entry.idx = append(entry.idx, makeCachedIndex(info, q, i))
		}
	}
	if memo {
		entry.compatible = compatible
	}
	p, err := finishPlan(src, q, best, compatible)
	return p, entry, err
}

// planFromEntry is the cached Plan stage: the octant checks and
// per-index scoring collapse to O(compatible) arithmetic on the
// cached direction constants. Thresholds for the chosen index are
// still computed with the exact per-query arithmetic, so cached and
// uncached plans execute identically.
func planFromEntry(src *Source, q Query, e *planEntry) (Plan, error) {
	s := vecmath.Norm(q.A)
	beta := q.B / s
	best, bestScore := -1, math.Inf(1)
	for i := range e.idx {
		ci := &e.idx[i]
		var score float64
		if src.Sel == SelectAngle {
			score = -ci.cos
		} else {
			score = ci.stretchAt(beta)
		}
		if score < bestScore {
			bestScore, best = score, ci.pos
		}
	}
	p, err := finishPlan(src, q, best, e.compatible)
	p.CacheHit = true
	return p, err
}

// finishPlan turns a selection outcome into an executable plan:
// no-compatible-index handling, exact thresholds for the chosen
// index, and the cost-based scan decision.
func finishPlan(src *Source, q Query, best, compatible int) (Plan, error) {
	if best < 0 {
		if !src.Fallback {
			if src.Single {
				return Plan{}, ErrIncompatibleOctant
			}
			return Plan{}, ErrNoCompatibleIndex
		}
		return Plan{
			Kind:       KindScan,
			IndexPos:   -1,
			Compatible: compatible,
			Reason:     "no index serves the query's hyper-octant",
		}, nil
	}
	info := &src.Indexes[best]
	iv, err := thresholds(info, q)
	if err != nil {
		// Selection only returns compatible indexes, so this cannot
		// happen; surface it rather than mask a bug.
		return Plan{}, err
	}
	p := Plan{
		IndexPos:   best,
		Compatible: compatible,
		Tmin:       iv.tmin,
		Tmax:       iv.tmax,
		BPrime:     iv.bPrime,
	}
	switch {
	case iv.none:
		p.Kind = KindNone
	case iv.all:
		p.Kind = KindAll
	default:
		p.Kind = KindRange
		if src.CostPenalty > 0 {
			n := info.Tree.Len()
			si, ii := intervalSizes(info, iv)
			if float64(si)+src.CostPenalty*float64(ii) >= float64(n) {
				return Plan{
					Kind:       KindScan,
					IndexPos:   -1,
					Compatible: compatible,
					Reason: fmt.Sprintf("cost model prefers scan (accept %d + %.1f×verify %d ≥ n %d)",
						si, src.CostPenalty, ii, n),
				}, nil
			}
		}
	}
	// Constant strings, not fmt.Sprintf: Reason is built on every
	// range plan and a formatted string would be the only allocation
	// left on the steady-state query path.
	if src.Sel == SelectAngle {
		p.Reason = "best compatible index by angle minimisation"
	} else {
		p.Reason = "best compatible index by stretch minimisation"
	}
	return p, nil
}

// PlanInfo is the EXPLAIN view of a plan: the plan itself plus the
// exact interval cardinalities and guaranteed answer bounds, all
// computed in O(log n) per compatible index without visiting a single
// data point.
type PlanInfo struct {
	Plan Plan
	// Stretch and Cos are the chosen index's selection diagnostics.
	Stretch, Cos float64
	// Accepted, Verified and Rejected are the exact interval sizes
	// the plan would see. For a scan plan, Verified = N.
	Accepted, Verified, Rejected int
	// N is the number of live points.
	N int
	// BoundsLo and BoundsHi bracket the answer cardinality
	// (intersected across all compatible indexes).
	BoundsLo, BoundsHi int
}

// Explain runs the Plan stage and describes the outcome without
// executing anything. Unlike PlanQuery it never fails on a missing
// index — it reports the scan plan that would be used instead.
func Explain(src *Source, q Query) (PlanInfo, error) {
	forced := *src
	forced.Fallback = true
	plan, err := PlanQuery(&forced, q)
	if err != nil {
		return PlanInfo{}, err
	}
	pi := PlanInfo{Plan: plan, N: src.N, BoundsLo: 0, BoundsHi: src.N}
	if plan.Kind == KindScan {
		pi.Verified = pi.N
	} else {
		info := &src.Indexes[plan.IndexPos]
		iv, terr := thresholds(info, q)
		if terr == nil {
			si, ii := intervalSizes(info, iv)
			pi.Accepted = si
			pi.Verified = ii
			pi.Rejected = info.Tree.Len() - si - ii
		}
		pi.Stretch = Stretch(info, q)
		pi.Cos = CosToQuery(info, q.A)
	}
	// Tightest guaranteed bounds across every compatible index.
	for i := range src.Indexes {
		info := &src.Indexes[i]
		if !info.Signs.Matches(q.A) {
			continue
		}
		lo, hi, err := Bounds(info, q)
		if err != nil {
			continue
		}
		if lo > pi.BoundsLo {
			pi.BoundsLo = lo
		}
		if hi < pi.BoundsHi {
			pi.BoundsHi = hi
		}
	}
	return pi, nil
}
