package exec

import (
	"math/rand"
	"runtime"
	"testing"

	"planar/internal/vecmath"
)

// packSource upgrades a classic test source to a batched one: the
// points are flattened into a row-major Rows array (with optional
// dead rows), which is all the batched engine needs — the key column
// is read straight out of each tree's leaf arena.
func packSource(points [][]float64, infos []IndexInfo, live []bool) *Source {
	src := makeSource(points, infos)
	d := 0
	if len(points) > 0 {
		d = len(points[0])
	}
	rows := make([]float64, 0, len(points)*d)
	for _, v := range points {
		rows = append(rows, v...)
	}
	if live == nil {
		live = make([]bool, len(points))
		for i := range live {
			live[i] = true
		}
	}
	src.Rows = rows
	src.RowLive = live
	src.RowDim = d
	src.Fallback = true // mirror Multi's default scan fallback
	return src
}

// TestBatchedMatchesTreeWalk is the engine's golden identity at the
// exec layer: for random indexes and queries the batched path, the
// forced tree walk, and brute force must report the same id set and
// a consistent interval partition.
func TestBatchedMatchesTreeWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		d := 1 + rng.Intn(4)
		n := 1 + rng.Intn(900)
		points := randPoints(rng, n, d)

		signs := make(vecmath.SignPattern, d)
		a := make([]float64, d)
		normal := make([]float64, d)
		for i := 0; i < d; i++ {
			if rng.Intn(2) == 0 {
				signs[i] = 1
			} else {
				signs[i] = -1
			}
			a[i] = float64(signs[i]) * rng.Float64() * 5
			normal[i] = 0.5 + rng.Float64()*3
		}
		if trial%5 == 0 {
			a[rng.Intn(d)] = 0
		}
		q := Query{A: a, B: (rng.Float64() - 0.4) * 400}

		infos := []IndexInfo{buildInfo(points, normal, signs, 1e-9)}
		src := packSource(points, infos, nil)

		var batched, walked IDSink
		stB, err := Run(src, q, &batched, Options{})
		if err != nil {
			t.Fatal(err)
		}
		stW, err := Run(src, q, &walked, Options{ForceTreeWalk: true})
		if err != nil {
			t.Fatal(err)
		}

		want := sortedCopy(bruteIDs(points, q))
		if !equalIDs(sortedCopy(batched.IDs), want) {
			t.Fatalf("trial %d: batched ids differ from brute force", trial)
		}
		if !equalIDs(sortedCopy(walked.IDs), want) {
			t.Fatalf("trial %d: tree walk ids differ from brute force", trial)
		}
		if stB.Accepted != stW.Accepted || stB.Verified != stW.Verified || stB.Rejected != stW.Rejected {
			t.Fatalf("trial %d: interval stats differ: batched %+v, walk %+v", trial, stB, stW)
		}
		if stB.Accepted+stB.Verified+stB.Rejected != n {
			t.Fatalf("trial %d: intervals do not partition n=%d: %+v", trial, n, stB)
		}
	}
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchedScanSkipsDeadRows checks the scan kernel path against a
// Rows array containing stale dead rows: the kernel filters every row
// but dead ones must never be delivered.
func TestBatchedScanSkipsDeadRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	all := randPoints(rng, 700, 3)
	live := make([]bool, len(all))
	var alive [][]float64
	aliveIdx := map[uint32]bool{}
	for i := range all {
		live[i] = rng.Intn(4) != 0
		if live[i] {
			alive = append(alive, all[i])
			aliveIdx[uint32(i)] = true
		} else {
			// Poison dead rows with values that would match everything.
			for j := range all[i] {
				all[i][j] = -1e17
			}
		}
	}
	src := packSource(all, nil, live)
	src.Fallback = true
	// Each must only visit live rows, like PointStore.Each.
	src.Each = func(fn func(id uint32, v []float64) bool) {
		for id, v := range all {
			if live[id] && !fn(uint32(id), v) {
				return
			}
		}
	}
	src.N = len(alive)

	q := Query{A: []float64{1, -2, 0.5}, B: 10}
	var batched, classic IDSink
	if _, err := Run(src, q, &batched, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(src, q, &classic, Options{ForceTreeWalk: true}); err != nil {
		t.Fatal(err)
	}
	for _, id := range batched.IDs {
		if !aliveIdx[id] {
			t.Fatalf("batched scan delivered dead row %d", id)
		}
	}
	if !equalIDs(sortedCopy(batched.IDs), sortedCopy(classic.IDs)) {
		t.Fatal("batched scan ids differ from classic scan")
	}
}

// TestOptionsWorkerClamp pins the hardened clamp: zero, negative, and
// oversized Workers values all normalize into [1, GOMAXPROCS] and
// produce identical answers.
func TestOptionsWorkerClamp(t *testing.T) {
	if got := ClampWorkers(0); got != 1 {
		t.Fatalf("ClampWorkers(0) = %d, want 1", got)
	}
	if got := ClampWorkers(-8); got != 1 {
		t.Fatalf("ClampWorkers(-8) = %d, want 1", got)
	}
	if max := runtime.GOMAXPROCS(0); ClampWorkers(max+100) != max {
		t.Fatalf("ClampWorkers(max+100) = %d, want %d", ClampWorkers(max+100), max)
	}

	rng := rand.New(rand.NewSource(13))
	points := randPoints(rng, 600, 3)
	signs := vecmath.SignPattern{1, 1, 1}
	infos := []IndexInfo{buildInfo(points, []float64{1, 1.5, 2}, signs, 1e-9)}
	src := packSource(points, infos, nil)
	q := Query{A: []float64{1, 2, 0.5}, B: 20}

	want := sortedCopy(bruteIDs(points, q))
	for _, workers := range []int{-3, 0, 1, 2, 1 << 20} {
		var sink IDSink
		if _, err := Run(src, q, &sink, Options{Workers: workers}); err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !equalIDs(sortedCopy(sink.IDs), want) {
			t.Fatalf("Workers=%d: wrong answer", workers)
		}
	}
}

// TestBatchedParallelWorkStealing exercises the block-stealing
// parallel verifier (GOMAXPROCS is raised so the clamp does not
// collapse it to the serial path on single-CPU machines).
func TestBatchedParallelWorkStealing(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	rng := rand.New(rand.NewSource(29))
	points := randPoints(rng, 5000, 4)
	signs := vecmath.SignPattern{1, 1, 1, 1}
	// A deliberately misaligned normal so the intermediate interval is
	// large enough to split into many blocks.
	infos := []IndexInfo{buildInfo(points, []float64{1, 1, 1, 1}, signs, 1e-9)}
	src := packSource(points, infos, nil)
	q := Query{A: []float64{5, 0.1, 0.1, 0.1}, B: 30}

	var serial, parallel IDSink
	stS, err := Run(src, q, &serial, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stP, err := Run(src, q, &parallel, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stS.Verified < 2*512 {
		t.Fatalf("intermediate interval too small (%d) to exercise stealing", stS.Verified)
	}
	if stP.Workers < 2 {
		t.Fatalf("parallel run used %d workers", stP.Workers)
	}
	if !equalIDs(sortedCopy(serial.IDs), sortedCopy(parallel.IDs)) {
		t.Fatal("parallel batched ids differ from serial")
	}
	if stS.Matched != stP.Matched || stS.Verified != stP.Verified {
		t.Fatalf("stats differ: serial %+v parallel %+v", stS, stP)
	}
}

// TestBatchedEarlyStop checks the sink-stop contract on the batched
// path: stopping during the smaller interval leaves partial stats,
// stopping during verification keeps Verified/Rejected final.
func TestBatchedEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	points := randPoints(rng, 800, 2)
	signs := vecmath.SignPattern{1, 1}
	infos := []IndexInfo{buildInfo(points, []float64{1, 2}, signs, 1e-9)}
	src := packSource(points, infos, nil)
	q := Query{A: []float64{1, 1}, B: 60}

	seen := 0
	stop := FuncSink(func(uint32) bool {
		seen++
		return seen < 3
	})
	st, err := Run(src, q, stop, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Fatalf("sink saw %d ids after asking to stop at 3", seen)
	}
	if st.Accepted+st.Matched < 3 {
		t.Fatalf("stats lost deliveries: %+v", st)
	}
}

func BenchmarkExecHotPath(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	points := randPoints(rng, 20000, 4)
	signs := vecmath.SignPattern{1, 1, 1, 1}
	infos := []IndexInfo{buildInfo(points, []float64{1, 1, 1, 1}, signs, 1e-9)}
	src := packSource(points, infos, nil)
	q := Query{A: []float64{5, 0.1, 0.1, 0.1}, B: 30}

	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"batched", Options{}},
		{"treewalk", Options{ForceTreeWalk: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			count := CountSink{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				count.N = 0
				if _, err := Run(src, q, &count, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
