// Package exec is the unified query planner/executor pipeline every
// planar query variant runs on. It factors the paper's three-interval
// scheme (smaller interval accept / larger interval reject /
// intermediate interval verify, Section 4.3) into three explicit
// stages so batching, parallelism, caching and observability are
// implemented once instead of per query type:
//
//	Plan    octant compatibility, best-index selection (volume or
//	        angle minimisation, Section 5.1), interval thresholds
//	        tmin/tmax with the conservative guard band, and the
//	        cost-based index-vs-scan choice. Plans for repeated
//	        coefficient directions come from an LRU plan cache.
//	Execute key-range iteration over the smaller and intermediate
//	        intervals of the chosen index — or a sequential scan —
//	        with optional worker-pool verification of the
//	        intermediate interval.
//	Sink    pluggable result collectors: raw ids (IDSink), exact
//	        counts in O(log n) (CountSink), top-k nearest to the
//	        query hyperplane with lower-bound pruning (TopKSink),
//	        callback streaming (FuncSink), and a stage-event
//	        recorder (TraceSink).
//
// The package deliberately depends only on the btree, topk and
// vecmath primitives; internal/core builds its public query API on
// top of this pipeline, and internal/service, internal/httpapi and
// the CLIs inherit the per-stage Stats (planning time, interval
// sizes, cache hits) uniformly.
package exec
