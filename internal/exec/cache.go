package exec

import (
	"container/list"
	"encoding/binary"
	"math"
	"sync"

	"planar/internal/vecmath"
)

// The hot production pattern (moving-object ticks, active-learning
// rounds, SQL-function thresholds) re-issues queries with the same
// coefficient vector a and a varying bound b. Index selection only
// depends on a through its direction, so the cache key is the unit
// vector a/‖a‖ and the entry stores, per compatible index, the few
// direction constants that turn selection into O(compatible)
// arithmetic — no octant checks, no O(d) scoring per index.
//
// Correctness note: cached entries only influence *which* index is
// chosen (a heuristic); the chosen index's thresholds are always
// recomputed with the exact per-query arithmetic, so a stale or
// rounded cache entry can degrade plan quality but never answers.

// cachedIndex holds one compatible index's direction constants.
type cachedIndex struct {
	pos         int
	sumAbsDelta float64 // Σ |u_i|·δ_i for the unit direction u
	minRatio    float64 // min over nonzero u_i of c_i/|u_i|
	maxRatio    float64 // max over nonzero u_i of c_i/|u_i|
	cmin        float64 // min_i c_i
	zeroAxis    bool    // some u_i == 0 → rejection impossible → stretch +Inf
	cos         float64 // |cos(u, cs)|
}

// stretchAt evaluates the volume-selection score for bound β = b/‖a‖.
// It equals Stretch (up to rounding and the tiny guard-band term) but
// costs a multiply-add instead of an O(d) pass.
func (ci *cachedIndex) stretchAt(beta float64) float64 {
	bPrime := beta + ci.sumAbsDelta
	if bPrime < 0 {
		return 0 // "none" plans are trivially answered
	}
	if ci.zeroAxis {
		return math.Inf(1)
	}
	return bPrime * (ci.maxRatio - ci.minRatio) / ci.cmin
}

func makeCachedIndex(info *IndexInfo, q Query, pos int) cachedIndex {
	s := vecmath.Norm(q.A)
	ci := cachedIndex{
		pos:      pos,
		minRatio: math.Inf(1),
		maxRatio: math.Inf(-1),
		cos:      CosToQuery(info, q.A),
	}
	if s == 0 {
		// Degenerate all-zero direction: never consulted (dirKey
		// rejects it), but keep the entry well-formed.
		ci.zeroAxis = true
		return ci
	}
	cmin := info.C[0]
	for i, a := range q.A {
		u := math.Abs(a) / s
		ci.sumAbsDelta += u * info.Delta[i]
		if u == 0 {
			ci.zeroAxis = true
		} else {
			r := info.C[i] / u
			if r < ci.minRatio {
				ci.minRatio = r
			}
			if r > ci.maxRatio {
				ci.maxRatio = r
			}
		}
		if info.C[i] < cmin {
			cmin = info.C[i]
		}
	}
	ci.cmin = cmin
	return ci
}

// planEntry is one cached direction: the compatible index set with
// direction constants, valid for a single source epoch.
type planEntry struct {
	epoch      uint64
	compatible int
	idx        []cachedIndex
}

// dirKeyInto appends the cache key for coefficient vector a — the raw
// bytes of its unit direction — to buf and returns the extended slice.
// All-zero or non-finite vectors are not cacheable. Callers recycle
// buf through keyBufPool so steady-state lookups allocate nothing.
func dirKeyInto(a []float64, buf []byte) ([]byte, bool) {
	s := vecmath.Norm(a)
	if s == 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		return buf, false
	}
	for _, v := range a {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v/s))
	}
	return buf, true
}

// dirKey is the allocating convenience form of dirKeyInto.
func dirKey(a []float64) (string, bool) {
	buf, ok := dirKeyInto(a, nil)
	return string(buf), ok
}

// keyBufPool recycles dirKeyInto buffers across queries.
var keyBufPool = sync.Pool{New: func() any { return new([]byte) }}

// PlanCache is a thread-safe LRU cache of plan entries keyed by
// normalized query coefficient direction.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

type cacheSlot struct {
	key   string
	entry *planEntry
}

// NewPlanCache returns a cache retaining up to capacity directions.
// A capacity ≤ 0 returns nil (caching disabled).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// lookup returns the entry for key if present and current, updating
// recency and hit/miss counters. Stale entries are evicted. key is
// raw bytes; the string conversion in the map index compiles to a
// no-alloc lookup.
func (c *PlanCache) lookup(key []byte, epoch uint64) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[string(key)]
	if ok {
		slot := el.Value.(*cacheSlot)
		if slot.entry.epoch == epoch {
			c.order.MoveToFront(el)
			c.hits++
			return slot.entry
		}
		c.order.Remove(el)
		delete(c.entries, string(key))
	}
	c.misses++
	return nil
}

// insert stores an entry, evicting the least recently used direction
// when full. The key bytes are copied into an owned string here — the
// one allocation per *new* direction, not per query.
func (c *PlanCache) insert(key []byte, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[string(key)]; ok {
		el.Value.(*cacheSlot).entry = e
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheSlot).key)
	}
	owned := string(key)
	c.entries[owned] = c.order.PushFront(&cacheSlot{key: owned, entry: e})
}

// Len returns the number of cached directions.
func (c *PlanCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Counters returns cumulative hit and miss counts.
func (c *PlanCache) Counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge empties the cache, retaining counters.
func (c *PlanCache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[string]*list.Element, c.cap)
}
