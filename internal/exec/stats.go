package exec

import "fmt"

// Selection names a best-index selection heuristic (paper Section
// 5.1).
type Selection int

const (
	// SelectVolume picks the index minimising the maximum stretch of
	// the intermediate interval (Problem 3). The paper finds this
	// usually superior; it is the default.
	SelectVolume Selection = iota
	// SelectAngle picks the index whose hyperplane family makes the
	// smallest angle with the query hyperplane.
	SelectAngle
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case SelectVolume:
		return "volume"
	case SelectAngle:
		return "angle"
	default:
		return fmt.Sprintf("Selection(%d)", int(s))
	}
}

// Stats reports how a single query travelled through the pipeline.
// The interval counters are the source of the paper's "pruning
// percentage" figures (Figures 9 and 10): Accepted + Rejected points
// never had their scalar product computed. The stage counters
// (PlanNanos, ExecNanos, CacheHit, Workers) are the pipeline's
// observability surface, reported uniformly by the service, HTTP API
// and CLI layers.
type Stats struct {
	// N is the number of live points considered.
	N int
	// Accepted is the size of the smaller interval (accepted without
	// verification).
	Accepted int
	// Verified is the size of the intermediate interval.
	Verified int
	// Matched is how many verified points satisfied the query.
	Matched int
	// Rejected is the size of the larger interval.
	Rejected int
	// FellBack reports that the answer came from a sequential scan
	// (no compatible index, or the cost model preferred the scan).
	FellBack bool
	// IndexUsed is the position of the selected index inside a Multi
	// (-1 for a direct Index query or a fallback scan).
	IndexUsed int
	// PlanNanos is the time spent in the Plan stage: octant checks,
	// best-index selection and threshold computation.
	PlanNanos int64
	// ExecNanos is the time spent in the Execute stage: interval
	// walks, verification and sink delivery.
	ExecNanos int64
	// CacheHit reports that index selection came from the plan cache
	// instead of scoring every candidate index.
	CacheHit bool
	// Workers is the number of goroutines used to verify the
	// intermediate interval (0 or 1 means serial verification).
	Workers int
}

// Results returns the total number of points reported.
func (s Stats) Results() int { return s.Accepted + s.Matched }

// PruningFraction is the fraction of points whose scalar product was
// never computed (the paper's pruning percentage, divided by 100).
func (s Stats) PruningFraction() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.N-s.Verified) / float64(s.N)
}

// Result is one answer of a top-k nearest-neighbour query: a point
// satisfying the inequality together with its Euclidean distance to
// the query hyperplane.
type Result struct {
	ID       uint32
	Distance float64
}
