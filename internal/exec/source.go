package exec

import (
	"errors"
	"math"

	"planar/internal/btree"
	"planar/internal/vecmath"
)

// ErrIncompatibleOctant is returned when a query's coefficient signs
// do not match the octant an index was built for (paper Section 4.5:
// each index serves one hyper-octant of query normals).
var ErrIncompatibleOctant = errors.New("core: query signs incompatible with index octant")

// ErrNoCompatibleIndex is returned (or causes a scan fallback) when
// no candidate index serves the query's hyper-octant.
var ErrNoCompatibleIndex = errors.New("core: no index compatible with query octant")

// Query is a scalar product query already normalized to ≤ form:
// report every point x with ⟨A, φ(x)⟩ ≤ B. Callers with ≥ queries
// negate both sides before entering the pipeline.
type Query struct {
	A []float64
	B float64
}

// Satisfies evaluates the predicate directly on a φ vector.
func (q Query) Satisfies(phi []float64) bool {
	return vecmath.Dot(q.A, phi) <= q.B
}

// Distance returns the Euclidean distance from φ to the query
// hyperplane ⟨A, y⟩ = B: |⟨A,φ⟩ − B| / |A|.
func (q Query) Distance(phi []float64) float64 {
	return math.Abs(vecmath.Dot(q.A, phi)-q.B) / vecmath.Norm(q.A)
}

// IndexInfo is the planner's view of one planar index: the sorted
// key tree plus the geometry needed to compute interval thresholds
// and selection scores. The slices are referenced, not copied —
// callers must guarantee they stay unmodified for the duration of a
// Run (internal/core holds the owning locks).
type IndexInfo struct {
	// Tree holds the keys ⟨c, z(x)⟩ in sorted order.
	Tree *btree.Tree
	// C is the index normal in the translated frame; all entries > 0.
	C []float64
	// Delta holds the octant translation offsets; all entries ≥ 0.
	Delta []float64
	// CS is the effective normal in φ space (c_i·s_i), used for angle
	// comparisons with query hyperplanes.
	CS []float64
	// Signs is the hyper-octant of query coefficient vectors served.
	Signs vecmath.SignPattern
	// Guard is the relative width of the conservative band added
	// around the thresholds (0 disables it).
	Guard float64
}

// Source is everything the pipeline may touch to answer a query: the
// candidate indexes for the Plan stage and the point access paths for
// the Execute stage.
type Source struct {
	// N is the number of live points.
	N int
	// Indexes are the candidate planar indexes (may be empty for a
	// pure sequential-scan source).
	Indexes []IndexInfo
	// Single marks a source wrapping exactly one standalone index: no
	// selection is performed and an octant mismatch surfaces as
	// ErrIncompatibleOctant instead of ErrNoCompatibleIndex.
	Single bool
	// Sel is the best-index selection heuristic.
	Sel Selection
	// Fallback controls whether queries with no compatible index are
	// answered by a sequential scan instead of failing.
	Fallback bool
	// CostPenalty > 0 enables the cost-based index-vs-scan choice:
	// the indexed plan is abandoned for a scan when
	// |SI| + CostPenalty·|II| ≥ n (paper Section 7.2.2).
	CostPenalty float64
	// Vector resolves a point id to its φ vector (verification).
	Vector func(id uint32) []float64
	// Each iterates every live point (sequential-scan execution).
	Each func(fn func(id uint32, v []float64) bool)
	// Rows is the owner's row-major φ backing array (RowDim
	// coordinates per row, dead rows included), aliased not copied.
	// When set together with RowLive it enables the batched
	// verification engine: the intermediate interval and sequential
	// scans run as contiguous-block kernels instead of per-point
	// callbacks. Leave nil to force the classic walks.
	Rows []float64
	// RowLive flags which rows of Rows hold live points. Dead rows
	// contain stale values; batched scans filter them after the
	// kernel pass.
	RowLive []bool
	// RowDim is the row stride of Rows.
	RowDim int
	// Epoch is the owner's mutation counter; plan-cache entries from
	// an older epoch are discarded.
	Epoch uint64
	// Cache, when non-nil, memoises octant compatibility and index
	// selection per normalized coefficient direction.
	Cache *PlanCache
}
