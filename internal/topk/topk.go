// Package topk implements the bounded top-k buffer used by the
// nearest-neighbour query of the planar index (Algorithm 2 in the
// paper): it retains the k items with the smallest scores seen so
// far, exposing the current maximum retained score as the pruning
// bound.
package topk

import (
	"container/heap"
	"sort"
)

// Item is one candidate in the buffer.
type Item struct {
	ID    uint32  // data point identifier
	Score float64 // distance to the query hyperplane (smaller is better)
}

// Buffer keeps the k items with the smallest scores. The zero value
// is not usable; construct with New.
type Buffer struct {
	k     int
	items maxHeap
}

// New returns a buffer retaining the k smallest-score items.
// It panics if k <= 0, since a zero-capacity top-k buffer is always a
// caller bug.
func New(k int) *Buffer {
	if k <= 0 {
		panic("topk: New requires k > 0")
	}
	return &Buffer{k: k, items: make(maxHeap, 0, min(k, 1024))}
}

// K returns the buffer's capacity.
func (b *Buffer) K() int { return b.k }

// Len returns the number of items currently held.
func (b *Buffer) Len() int { return len(b.items) }

// Full reports whether the buffer holds k items.
func (b *Buffer) Full() bool { return len(b.items) == b.k }

// Max returns the largest retained score. It is only meaningful when
// Len() > 0; on an empty buffer it returns +Inf semantics via ok=false.
func (b *Buffer) Max() (score float64, ok bool) {
	if len(b.items) == 0 {
		return 0, false
	}
	return b.items[0].Score, true
}

// Bound returns the score a new item must beat to be retained once
// the buffer is full. While the buffer is not yet full it reports
// ok=false, meaning everything is accepted.
func (b *Buffer) Bound() (score float64, ok bool) {
	if !b.Full() {
		return 0, false
	}
	return b.items[0].Score, true
}

// Push offers an item. It returns true if the item was retained.
func (b *Buffer) Push(it Item) bool {
	if len(b.items) < b.k {
		heap.Push(&b.items, it)
		return true
	}
	if it.Score >= b.items[0].Score {
		return false
	}
	b.items[0] = it
	heap.Fix(&b.items, 0)
	return true
}

// Items returns the retained items sorted by ascending score (ties
// broken by ascending ID for determinism). The buffer is unchanged.
func (b *Buffer) Items() []Item {
	out := make([]Item, len(b.items))
	copy(out, b.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score { //nolint:floatkey // sort tie-break: tolerance would violate strict weak ordering
			return out[i].Score < out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() { b.items = b.items[:0] }

type maxHeap []Item

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].Score > h[j].Score }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
