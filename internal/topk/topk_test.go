package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnNonPositiveK(t *testing.T) {
	for _, k := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", k)
				}
			}()
			New(k)
		}()
	}
}

func TestBasicRetention(t *testing.T) {
	b := New(3)
	if b.K() != 3 {
		t.Fatalf("K=%d", b.K())
	}
	if _, ok := b.Max(); ok {
		t.Fatal("Max on empty buffer reported ok")
	}
	if _, ok := b.Bound(); ok {
		t.Fatal("Bound on non-full buffer reported ok")
	}
	for i, s := range []float64{5, 1, 3} {
		if !b.Push(Item{ID: uint32(i), Score: s}) {
			t.Fatalf("push %d rejected while not full", i)
		}
	}
	if !b.Full() {
		t.Fatal("buffer should be full")
	}
	if m, _ := b.Max(); m != 5 {
		t.Fatalf("Max=%v want 5", m)
	}
	// Worse item rejected.
	if b.Push(Item{ID: 9, Score: 7}) {
		t.Fatal("worse item retained")
	}
	// Equal item rejected (strict improvement required).
	if b.Push(Item{ID: 10, Score: 5}) {
		t.Fatal("equal-score item retained")
	}
	// Better item displaces the max.
	if !b.Push(Item{ID: 11, Score: 2}) {
		t.Fatal("better item rejected")
	}
	items := b.Items()
	if len(items) != 3 {
		t.Fatalf("len=%d", len(items))
	}
	wantScores := []float64{1, 2, 3}
	for i, it := range items {
		if it.Score != wantScores[i] {
			t.Fatalf("Items()=%v", items)
		}
	}
	if bound, ok := b.Bound(); !ok || bound != 3 {
		t.Fatalf("Bound=%v ok=%v", bound, ok)
	}
}

func TestReset(t *testing.T) {
	b := New(2)
	b.Push(Item{ID: 1, Score: 1})
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset=%d", b.Len())
	}
	if b.Full() {
		t.Fatal("Full after Reset")
	}
}

func TestItemsSortedAndStable(t *testing.T) {
	b := New(4)
	b.Push(Item{ID: 7, Score: 2})
	b.Push(Item{ID: 3, Score: 2})
	b.Push(Item{ID: 1, Score: 1})
	b.Push(Item{ID: 9, Score: 0})
	items := b.Items()
	if items[0].ID != 9 || items[1].ID != 1 {
		t.Fatalf("order wrong: %v", items)
	}
	// Tie on score 2 broken by ID.
	if items[2].ID != 3 || items[3].ID != 7 {
		t.Fatalf("tie-break wrong: %v", items)
	}
	// Items must not mutate the buffer.
	if b.Len() != 4 {
		t.Fatal("Items mutated buffer")
	}
}

// Property: for any stream, the buffer holds exactly the k smallest
// scores (as a multiset).
func TestMatchesSortProperty(t *testing.T) {
	f := func(scores []float64, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		b := New(k)
		for i, s := range scores {
			if s != s { // NaN would poison ordering; skip
				return true
			}
			b.Push(Item{ID: uint32(i), Score: s})
		}
		want := append([]float64(nil), scores...)
		sort.Float64s(want)
		if len(want) > k {
			want = want[:k]
		}
		got := b.Items()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Score != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargeRandomStream(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, k = 20000, 100
	b := New(k)
	all := make([]float64, n)
	for i := range all {
		all[i] = rng.NormFloat64()
		b.Push(Item{ID: uint32(i), Score: all[i]})
	}
	sort.Float64s(all)
	items := b.Items()
	for i := 0; i < k; i++ {
		if items[i].Score != all[i] {
			t.Fatalf("rank %d: got %v want %v", i, items[i].Score, all[i])
		}
	}
}

func BenchmarkPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, b.N)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	buf := New(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Push(Item{ID: uint32(i), Score: scores[i]})
	}
}
