// Package adaptive implements the paper's closing future-work idea:
// "use machine learning techniques to dynamically update the indices
// based on past queries" (Section 8). A Tuner observes every query's
// normal direction, clusters the directions with online spherical
// k-means, and periodically rebuilds the planar index set with one
// index per cluster centroid — so the indexes track the workload and
// stay near-parallel to the queries actually being asked, which is
// exactly the regime where the planar index answers in logarithmic
// time (Corollary 1).
package adaptive

import (
	"errors"
	"fmt"
	"math"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// decay is the per-observation exponential decay applied to cluster
// weights so the tuner follows workload drift.
const decay = 0.995

type cluster struct {
	dir    []float64 // unit direction of the cluster centroid
	weight float64
}

// Tuner adapts a Multi's index set to the observed query stream.
// Unlike the Multi it wraps, a Tuner is not safe for concurrent use:
// the cluster model mutates on every query, so callers with
// concurrent query streams must serialise access (or shard one Tuner
// per stream).
type Tuner struct {
	multi    *core.Multi
	k        int // index budget = number of clusters
	interval int // queries between retunes
	clusters []cluster
	observed int
	sinceRe  int
	retunes  int
}

// NewTuner wraps a Multi. k is the index budget; the index set is
// rebuilt from the cluster centroids every interval queries.
func NewTuner(m *core.Multi, k, interval int) (*Tuner, error) {
	if m == nil {
		return nil, errors.New("adaptive: nil multi")
	}
	if k <= 0 {
		return nil, fmt.Errorf("adaptive: budget must be positive, got %d", k)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("adaptive: interval must be positive, got %d", interval)
	}
	return &Tuner{multi: m, k: k, interval: interval}, nil
}

// Multi exposes the tuned index collection.
func (t *Tuner) Multi() *core.Multi { return t.multi }

// Observed returns the number of queries seen.
func (t *Tuner) Observed() int { return t.observed }

// Retunes returns how many times the index set was rebuilt.
func (t *Tuner) Retunes() int { return t.retunes }

// Clusters returns the number of active workload clusters.
func (t *Tuner) Clusters() int { return len(t.clusters) }

// observe folds one query direction into the cluster model and
// retunes the index set when due.
func (t *Tuner) observe(a []float64) {
	norm := vecmath.Norm(a)
	if norm == 0 {
		return
	}
	u := vecmath.Scale(a, 1/norm)
	t.observed++
	t.sinceRe++

	for i := range t.clusters {
		t.clusters[i].weight *= decay
	}
	best, bestCos := -1, -2.0
	for i, c := range t.clusters {
		if cos := vecmath.Dot(c.dir, u); cos > bestCos {
			best, bestCos = i, cos
		}
	}
	// A direction far from every centroid seeds a new cluster while
	// budget remains; otherwise it is absorbed by the nearest one.
	const newClusterCos = 0.995
	if best < 0 || (bestCos < newClusterCos && len(t.clusters) < t.k) {
		t.clusters = append(t.clusters, cluster{dir: u, weight: 1})
	} else {
		c := &t.clusters[best]
		lr := 1 / (c.weight + 1)
		for j := range c.dir {
			c.dir[j] = (1-lr)*c.dir[j] + lr*u[j]
		}
		if n := vecmath.Norm(c.dir); n > 0 {
			c.dir = vecmath.Scale(c.dir, 1/n)
		}
		c.weight++
	}

	if t.sinceRe >= t.interval {
		t.retune()
	}
}

// retune rebuilds the index set from the cluster centroids, dropping
// clusters whose weight has decayed to noise.
func (t *Tuner) retune() {
	t.sinceRe = 0
	live := t.clusters[:0]
	for _, c := range t.clusters {
		if c.weight >= 0.5 {
			live = append(live, c)
		}
	}
	t.clusters = live
	if len(t.clusters) == 0 {
		return
	}
	t.retunes++
	t.multi.RemoveAllIndexes()
	for _, c := range t.clusters {
		normal := make([]float64, len(c.dir))
		for j, v := range c.dir {
			normal[j] = math.Abs(v)
			if normal[j] < 1e-9 {
				normal[j] = 1e-9
			}
		}
		// AddNormal skips redundant (parallel, same-octant) centroids.
		_, _ = t.multi.AddNormal(normal, vecmath.SignsOf(c.dir))
	}
}

// Inequality observes the query, then answers it through the tuned
// index set (with the Multi's usual scan fallback before the first
// retune installs indexes).
func (t *Tuner) Inequality(q core.Query, visit func(id uint32) bool) (core.Stats, error) {
	if err := q.Validate(t.multi.Store().Dim()); err != nil {
		return core.Stats{}, err
	}
	t.observe(q.NormalizedCoefficients())
	return t.multi.Inequality(q, visit)
}

// InequalityIDs collects all matching ids.
func (t *Tuner) InequalityIDs(q core.Query) ([]uint32, core.Stats, error) {
	var ids []uint32
	st, err := t.Inequality(q, func(id uint32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, st, err
}

// TopK observes the query, then answers Problem 2.
func (t *Tuner) TopK(q core.Query, k int) ([]core.Result, core.Stats, error) {
	if err := q.Validate(t.multi.Store().Dim()); err != nil {
		return nil, core.Stats{}, err
	}
	t.observe(q.NormalizedCoefficients())
	return t.multi.TopK(q, k)
}
