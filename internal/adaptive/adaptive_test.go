package adaptive

import (
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/scan"
)

func buildStore(t *testing.T, n, dim int, seed int64) *core.PointStore {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	store, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		store.Append(v)
	}
	return store
}

func TestNewTunerValidation(t *testing.T) {
	store := buildStore(t, 10, 2, 1)
	m, _ := core.NewMulti(store)
	if _, err := NewTuner(nil, 5, 10); err == nil {
		t.Error("nil multi accepted")
	}
	if _, err := NewTuner(m, 0, 10); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := NewTuner(m, 5, 0); err == nil {
		t.Error("interval 0 accepted")
	}
	tn, err := NewTuner(m, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Multi() != m || tn.Observed() != 0 || tn.Retunes() != 0 || tn.Clusters() != 0 {
		t.Fatal("fresh tuner state wrong")
	}
	if _, _, err := tn.InequalityIDs(core.Query{A: []float64{1}, B: 0, Op: core.LE}); err == nil {
		t.Error("wrong-dim query accepted")
	}
}

func TestTunerStaysExact(t *testing.T) {
	store := buildStore(t, 1000, 3, 2)
	m, _ := core.NewMulti(store)
	tn, _ := NewTuner(m, 8, 25)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		q := core.Query{
			A:  []float64{1 + rng.Float64()*3, 1 + rng.Float64()*3, 1 + rng.Float64()*3},
			B:  rng.Float64() * 400,
			Op: core.LE,
		}
		if i%3 == 0 { // mix in GE queries
			q.Op = core.GE
		}
		ids, _, err := tn.InequalityIDs(q)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.IDs(store, q)
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if len(ids) != len(want) {
			t.Fatalf("query %d: tuned answer %d vs scan %d", i, len(ids), len(want))
		}
		for j := range ids {
			if ids[j] != want[j] {
				t.Fatalf("query %d: id mismatch at %d", i, j)
			}
		}
	}
	if tn.Retunes() == 0 {
		t.Fatal("tuner never retuned")
	}
	if tn.Observed() != 300 {
		t.Fatalf("Observed=%d", tn.Observed())
	}
}

func TestTunerAdaptsToWorkload(t *testing.T) {
	store := buildStore(t, 20000, 4, 4)
	m, _ := core.NewMulti(store)
	tn, _ := NewTuner(m, 4, 20)
	rng := rand.New(rand.NewSource(5))

	// A focused workload: all queries share one direction up to tiny
	// jitter. After a retune the tuner should hold a near-parallel
	// index and pruning should be essentially total.
	dir := []float64{2, 1, 3, 1.5}
	query := func() core.Query {
		a := make([]float64, 4)
		for i, v := range dir {
			a[i] = v * (1 + 0.001*rng.Float64())
		}
		return core.Query{A: a, B: 30000, Op: core.LE}
	}
	for i := 0; i < 40; i++ { // past the first retune
		if _, _, err := tn.InequalityIDs(query()); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumIndexes() == 0 {
		t.Fatal("no indexes installed after retune")
	}
	_, st, err := tn.InequalityIDs(query())
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatal("still scanning after retune")
	}
	if st.PruningFraction() < 0.99 {
		t.Fatalf("pruning %.4f after adapting to a single-direction workload", st.PruningFraction())
	}
}

func TestTunerTracksDrift(t *testing.T) {
	store := buildStore(t, 5000, 3, 6)
	m, _ := core.NewMulti(store)
	tn, _ := NewTuner(m, 3, 15)
	rng := rand.New(rand.NewSource(7))

	run := func(dir []float64, n int) float64 {
		var lastPruning float64
		for i := 0; i < n; i++ {
			a := make([]float64, 3)
			for j, v := range dir {
				a[j] = v * (1 + 0.002*rng.Float64())
			}
			_, st, err := tn.InequalityIDs(core.Query{A: a, B: 5000, Op: core.LE})
			if err != nil {
				t.Fatal(err)
			}
			lastPruning = st.PruningFraction()
		}
		return lastPruning
	}
	run([]float64{1, 5, 1}, 40)
	// Workload shifts to a very different direction; after enough
	// queries the tuner must adapt and prune well again.
	p := run([]float64{5, 1, 0.2}, 60)
	if p < 0.95 {
		t.Fatalf("pruning %.4f after drift; tuner failed to adapt", p)
	}
}

func TestTunerTopK(t *testing.T) {
	store := buildStore(t, 2000, 2, 8)
	m, _ := core.NewMulti(store)
	tn, _ := NewTuner(m, 4, 10)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		q := core.Query{
			A:  []float64{1 + rng.Float64(), 1 + rng.Float64()},
			B:  50 + rng.Float64()*100,
			Op: core.LE,
		}
		got, _, err := tn.TopK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want := scan.TopK(store, q, 5)
		if len(got) != len(want) {
			t.Fatalf("query %d: topk %d vs %d", i, len(got), len(want))
		}
		for j := range got {
			if d := got[j].Distance - want[j].Distance; d > 1e-9 || d < -1e-9 {
				t.Fatalf("query %d rank %d: %v vs %v", i, j, got[j].Distance, want[j].Distance)
			}
		}
	}
	if _, _, err := tn.TopK(core.Query{A: []float64{1}, B: 0, Op: core.LE}, 5); err == nil {
		t.Error("wrong-dim TopK accepted")
	}
}

func TestZeroDirectionIgnored(t *testing.T) {
	store := buildStore(t, 100, 2, 10)
	m, _ := core.NewMulti(store)
	tn, _ := NewTuner(m, 2, 5)
	for i := 0; i < 10; i++ {
		if _, _, err := tn.InequalityIDs(core.Query{A: []float64{0, 0}, B: 1, Op: core.LE}); err != nil {
			t.Fatal(err)
		}
	}
	if tn.Clusters() != 0 {
		t.Fatalf("zero-direction queries created %d clusters", tn.Clusters())
	}
}
