// Package active implements the pool-based active-learning
// application of the paper (Section 7.5.2): given a linear
// classifier hyperplane, the planar index retrieves the top-k
// unlabelled points closest to the hyperplane — the most informative
// points to label next — exactly, in contrast to the approximate
// hashing methods of Jain et al. and Liu et al. the paper cites.
package active

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"planar/internal/core"
	"planar/internal/scan"
	"planar/internal/vecmath"
)

// Perceptron is a linear classifier sign(⟨W, x⟩ + B).
type Perceptron struct {
	W []float64
	B float64
}

// NewPerceptron returns a zero-initialised classifier of the given
// dimension.
func NewPerceptron(dim int) (*Perceptron, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("active: dimension must be positive, got %d", dim)
	}
	return &Perceptron{W: make([]float64, dim)}, nil
}

// Predict returns the predicted label (+1 or −1); points exactly on
// the hyperplane are labelled +1.
func (p *Perceptron) Predict(x []float64) int {
	if vecmath.Dot(p.W, x)+p.B >= 0 {
		return 1
	}
	return -1
}

// Margin returns ⟨W, x⟩ + B.
func (p *Perceptron) Margin(x []float64) float64 {
	return vecmath.Dot(p.W, x) + p.B
}

// Train runs the perceptron update rule over the labelled examples
// for the given number of epochs. Labels must be ±1.
func (p *Perceptron) Train(xs [][]float64, ys []int, epochs int, lr float64) error {
	if len(xs) != len(ys) {
		return fmt.Errorf("active: %d examples but %d labels", len(xs), len(ys))
	}
	if epochs <= 0 || lr <= 0 {
		return fmt.Errorf("active: epochs and learning rate must be positive")
	}
	for e := 0; e < epochs; e++ {
		mistakes := 0
		for i, x := range xs {
			if ys[i] != 1 && ys[i] != -1 {
				return fmt.Errorf("active: label %d is %d, must be ±1", i, ys[i])
			}
			if p.Predict(x) != ys[i] {
				mistakes++
				f := lr * float64(ys[i])
				for j, v := range x {
					p.W[j] += f * v
				}
				p.B += f
			}
		}
		if mistakes == 0 {
			return nil
		}
	}
	return nil
}

// Accuracy returns the fraction of examples classified correctly.
func (p *Perceptron) Accuracy(xs [][]float64, ys []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	ok := 0
	for i, x := range xs {
		if p.Predict(x) == ys[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(xs))
}

// Sampler retrieves the top-k pool points closest to a classifier
// hyperplane through planar indexes. Because the classifier's weight
// signs change as it learns, the sampler lazily builds (and caches)
// one index collection per hyper-octant of weight vectors it
// encounters — the "use machine learning techniques to dynamically
// update the indices" extension the paper's conclusion sketches.
type Sampler struct {
	store  *core.PointStore
	budget int
	rng    *rand.Rand
	cache  map[string]*core.Multi
	// Built counts octant index collections constructed so far.
	Built int
}

// NewSampler wraps an unlabelled pool. budget is the number of
// planar indexes per octant collection.
func NewSampler(store *core.PointStore, budget int, rng *rand.Rand) (*Sampler, error) {
	if store == nil {
		return nil, errors.New("active: nil store")
	}
	if budget <= 0 {
		return nil, fmt.Errorf("active: budget must be positive, got %d", budget)
	}
	if rng == nil {
		return nil, errors.New("active: nil rng")
	}
	return &Sampler{store: store, budget: budget, rng: rng, cache: map[string]*core.Multi{}}, nil
}

// multiFor returns (building if needed) the index collection for the
// octant of the normalized query coefficients.
func (s *Sampler) multiFor(a []float64) (*core.Multi, error) {
	signs := vecmath.SignsOf(a)
	key := signs.String()
	if m, ok := s.cache[key]; ok {
		return m, nil
	}
	m, err := core.NewMulti(s.store)
	if err != nil {
		return nil, err
	}
	// Sample index normals around the observed weight magnitudes.
	doms := make([]core.Domain, len(a))
	for i, v := range a {
		mag := math.Abs(v)
		if mag == 0 {
			mag = 1
		}
		lo, hi := 0.5*mag, 1.5*mag
		if signs[i] > 0 {
			doms[i] = core.Domain{Lo: lo, Hi: hi}
		} else {
			doms[i] = core.Domain{Lo: -hi, Hi: -lo}
		}
	}
	if _, err := m.SampleBudget(s.budget, doms, s.rng); err != nil {
		return nil, err
	}
	s.cache[key] = m
	s.Built++
	return m, nil
}

// Closest returns the k pool points nearest the classifier
// hyperplane on the requested side: op = core.LE gives the negative
// side (⟨W,x⟩ + B ≤ 0), core.GE the positive side.
func (s *Sampler) Closest(p *Perceptron, k int, op core.Op) ([]core.Result, core.Stats, error) {
	if err := vecmath.CheckDim("classifier weights", p.W, s.store.Dim()); err != nil {
		return nil, core.Stats{}, err
	}
	q := core.Query{A: p.W, B: -p.B, Op: op}
	nq := q
	if op == core.GE {
		// Cache key must reflect the normalized (LE) coefficients.
		nq = core.Query{A: vecmath.Scale(q.A, -1), B: -q.B, Op: core.LE}
	}
	m, err := s.multiFor(nq.A)
	if err != nil {
		return nil, core.Stats{}, err
	}
	return m.TopK(q, k)
}

// ClosestScan is the baseline: brute-force top-k on one side.
func (s *Sampler) ClosestScan(p *Perceptron, k int, op core.Op) []core.Result {
	return scan.TopK(s.store, core.Query{A: p.W, B: -p.B, Op: op}, k)
}

// Oracle labels a point ±1.
type Oracle func(x []float64) int

// LoopConfig configures a pool-based active-learning run.
type LoopConfig struct {
	Rounds    int // labelling rounds
	PerSide   int // points labelled per side per round
	InitSeeds int // randomly labelled points to bootstrap
	Budget    int // planar indexes per octant collection
	Epochs    int // perceptron epochs per round
	LR        float64
	Seed      int64
}

// RoundReport records one active-learning round.
type RoundReport struct {
	Round    int
	Labelled int     // total labelled points after the round
	Accuracy float64 // pool accuracy after retraining
	FellBack bool    // any side answered by scan fallback
	Verified int     // II points examined across both sides
}

// RunPool executes pool-based active learning over the pool using
// planar-index uncertainty sampling and returns per-round reports.
func RunPool(pool [][]float64, oracle Oracle, cfg LoopConfig) ([]RoundReport, *Perceptron, error) {
	if len(pool) == 0 {
		return nil, nil, errors.New("active: empty pool")
	}
	if oracle == nil {
		return nil, nil, errors.New("active: nil oracle")
	}
	if cfg.Rounds <= 0 || cfg.PerSide <= 0 || cfg.InitSeeds <= 0 {
		return nil, nil, errors.New("active: Rounds, PerSide and InitSeeds must be positive")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 20
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.1
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 10
	}
	dim := len(pool[0])
	store, err := core.NewPointStore(dim)
	if err != nil {
		return nil, nil, err
	}
	labels := make([]int, len(pool))
	for i, x := range pool {
		if _, err := store.Append(x); err != nil {
			return nil, nil, fmt.Errorf("active: pool point %d: %w", i, err)
		}
		labels[i] = oracle(x)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler, err := NewSampler(store, cfg.Budget, rng)
	if err != nil {
		return nil, nil, err
	}
	p, err := NewPerceptron(dim)
	if err != nil {
		return nil, nil, err
	}

	labelled := map[uint32]bool{}
	var xs [][]float64
	var ys []int
	addLabel := func(id uint32) {
		if labelled[id] {
			return
		}
		labelled[id] = true
		xs = append(xs, pool[id])
		ys = append(ys, labels[id])
	}
	for len(xs) < cfg.InitSeeds {
		addLabel(uint32(rng.Intn(len(pool))))
	}

	var reports []RoundReport
	for round := 1; round <= cfg.Rounds; round++ {
		if err := p.Train(xs, ys, cfg.Epochs, cfg.LR); err != nil {
			return nil, nil, err
		}
		rep := RoundReport{Round: round}
		if vecmath.Norm(p.W) > 0 {
			for _, op := range []core.Op{core.LE, core.GE} {
				res, st, err := sampler.Closest(p, cfg.PerSide, op)
				if err != nil {
					return nil, nil, err
				}
				rep.FellBack = rep.FellBack || st.FellBack
				rep.Verified += st.Verified
				for _, r := range res {
					addLabel(r.ID)
				}
			}
		} else {
			// Degenerate classifier: label random points instead.
			for i := 0; i < 2*cfg.PerSide; i++ {
				addLabel(uint32(rng.Intn(len(pool))))
			}
		}
		rep.Labelled = len(xs)
		rep.Accuracy = p.Accuracy(pool, labels)
		reports = append(reports, rep)
	}
	return reports, p, nil
}
