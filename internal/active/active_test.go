package active

import (
	"math"
	"math/rand"
	"testing"

	"planar/internal/core"
)

func TestPerceptronLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Ground truth: x0 + 2·x1 - 5 >= 0.
	var xs [][]float64
	var ys []int
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		y := -1
		if x[0]+2*x[1]-5 >= 0.5 { // margin keeps it separable
			y = 1
		} else if x[0]+2*x[1]-5 > -0.5 {
			continue
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	p, err := NewPerceptron(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Train(xs, ys, 200, 0.1); err != nil {
		t.Fatal(err)
	}
	if acc := p.Accuracy(xs, ys); acc < 0.99 {
		t.Fatalf("accuracy %v on separable data", acc)
	}
}

func TestPerceptronValidation(t *testing.T) {
	if _, err := NewPerceptron(0); err == nil {
		t.Error("dim 0 accepted")
	}
	p, _ := NewPerceptron(2)
	if err := p.Train([][]float64{{1, 2}}, []int{1, -1}, 10, 0.1); err == nil {
		t.Error("mismatched labels accepted")
	}
	if err := p.Train([][]float64{{1, 2}}, []int{0}, 10, 0.1); err == nil {
		t.Error("label 0 accepted")
	}
	if err := p.Train(nil, nil, 0, 0.1); err == nil {
		t.Error("epochs 0 accepted")
	}
	if err := p.Train(nil, nil, 5, 0); err == nil {
		t.Error("lr 0 accepted")
	}
	if p.Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
	if p.Margin([]float64{3, 4}) != 0 {
		t.Error("zero perceptron margin should be 0")
	}
}

func poolStore(t *testing.T, pool [][]float64) *core.PointStore {
	t.Helper()
	s, err := core.NewPointStore(len(pool[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range pool {
		if _, err := s.Append(x); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSamplerClosestMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pool := make([][]float64, 1000)
	for i := range pool {
		pool[i] = []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
	}
	store := poolStore(t, pool)
	sampler, err := NewSampler(store, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := &Perceptron{W: []float64{1, -2, 0.5}, B: 3}
	for _, op := range []core.Op{core.LE, core.GE} {
		got, st, err := sampler.Closest(p, 15, op)
		if err != nil {
			t.Fatal(err)
		}
		want := sampler.ClosestScan(p, 15, op)
		if len(got) != len(want) {
			t.Fatalf("op %v: got %d want %d", op, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Distance-want[i].Distance) > 1e-9*(1+want[i].Distance) {
				t.Fatalf("op %v rank %d: %v vs %v", op, i, got[i].Distance, want[i].Distance)
			}
		}
		if st.FellBack {
			t.Fatalf("op %v fell back despite an octant collection", op)
		}
	}
	// Two octants built: (+,-,+) for LE and its negation for GE.
	if sampler.Built != 2 {
		t.Fatalf("Built=%d want 2", sampler.Built)
	}
	// Repeat query hits the cache.
	if _, _, err := sampler.Closest(p, 5, core.LE); err != nil {
		t.Fatal(err)
	}
	if sampler.Built != 2 {
		t.Fatalf("cache miss on repeated octant: Built=%d", sampler.Built)
	}
}

func TestSamplerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := [][]float64{{1, 2}}
	store := poolStore(t, pool)
	if _, err := NewSampler(nil, 5, rng); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := NewSampler(store, 0, rng); err == nil {
		t.Error("budget 0 accepted")
	}
	if _, err := NewSampler(store, 5, nil); err == nil {
		t.Error("nil rng accepted")
	}
	s, _ := NewSampler(store, 5, rng)
	p := &Perceptron{W: []float64{1, 2, 3}} // wrong dim
	if _, _, err := s.Closest(p, 3, core.LE); err == nil {
		t.Error("wrong-dim classifier accepted")
	}
}

func TestRunPoolImprovesAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := make([][]float64, 2000)
	for i := range pool {
		pool[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	oracle := func(x []float64) int {
		if 2*x[0]-x[1]-4 >= 0 {
			return 1
		}
		return -1
	}
	reports, p, err := RunPool(pool, oracle, LoopConfig{
		Rounds: 8, PerSide: 10, InitSeeds: 5, Budget: 10, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 8 {
		t.Fatalf("got %d reports", len(reports))
	}
	final := reports[len(reports)-1]
	if final.Accuracy < 0.9 {
		t.Fatalf("final accuracy %v", final.Accuracy)
	}
	if final.Labelled <= 5 {
		t.Fatal("no points were labelled")
	}
	// Labelled counts must be non-decreasing.
	for i := 1; i < len(reports); i++ {
		if reports[i].Labelled < reports[i-1].Labelled {
			t.Fatal("labelled count decreased")
		}
	}
	if p == nil {
		t.Fatal("nil classifier returned")
	}
}

func TestRunPoolValidation(t *testing.T) {
	ok := LoopConfig{Rounds: 1, PerSide: 1, InitSeeds: 1}
	if _, _, err := RunPool(nil, func([]float64) int { return 1 }, ok); err == nil {
		t.Error("empty pool accepted")
	}
	if _, _, err := RunPool([][]float64{{1}}, nil, ok); err == nil {
		t.Error("nil oracle accepted")
	}
	if _, _, err := RunPool([][]float64{{1}}, func([]float64) int { return 1 },
		LoopConfig{Rounds: 0, PerSide: 1, InitSeeds: 1}); err == nil {
		t.Error("Rounds 0 accepted")
	}
}
