package halfspace

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"planar/internal/vecmath"
)

func randomPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()*20 - 10
		}
		pts[i] = p
	}
	return pts
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Error("empty point set accepted")
	}
	if _, err := New([][]float64{{1, 2}}, Options{Octants: []vecmath.SignPattern{{1}}}); err == nil {
		t.Error("wrong-dim octant accepted")
	}
	ix, err := New(randomPoints(50, 3, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 50 || ix.Multi() == nil {
		t.Fatal("accessors broken")
	}
}

func TestReportBothSides(t *testing.T) {
	pts := randomPoints(2000, 3, 2)
	ix, err := New(pts, Options{Budget: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		// Same-sign normals are served by the prepared octants.
		sign := 1.0
		if trial%2 == 0 {
			sign = -1
		}
		normal := []float64{
			sign * (0.2 + rng.Float64()*5),
			sign * (0.2 + rng.Float64()*5),
			sign * (0.2 + rng.Float64()*5),
		}
		offset := rng.Float64()*40 - 20
		for _, side := range []Side{Below, Above} {
			ids, st, err := ix.Report(normal, offset, side)
			if err != nil {
				t.Fatal(err)
			}
			if st.FellBack {
				t.Fatalf("trial %d side %v fell back", trial, side)
			}
			var want []uint32
			for i, p := range pts {
				v := dot(normal, p)
				if (side == Below && v <= offset) || (side == Above && v >= offset) {
					want = append(want, uint32(i))
				}
			}
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			if len(ids) != len(want) {
				t.Fatalf("trial %d side %v: %d vs %d", trial, side, len(ids), len(want))
			}
			for i := range want {
				if ids[i] != want[i] {
					t.Fatalf("trial %d side %v mismatch at %d", trial, side, i)
				}
			}
			count, _, err := ix.Count(normal, offset, side)
			if err != nil || count != len(want) {
				t.Fatalf("Count=%d want %d err=%v", count, len(want), err)
			}
		}
	}
}

func TestMixedSignFallsBackCorrectly(t *testing.T) {
	pts := randomPoints(500, 2, 5)
	ix, _ := New(pts, Options{Budget: 5, Seed: 6})
	normal := []float64{1, -1}
	ids, st, err := ix.Report(normal, 0, Below)
	if err != nil {
		t.Fatal(err)
	}
	if !st.FellBack {
		t.Fatal("mixed-sign query should fall back with default octants")
	}
	want := 0
	for _, p := range pts {
		if p[0]-p[1] <= 0 {
			want++
		}
	}
	if len(ids) != want {
		t.Fatalf("fallback answer %d want %d", len(ids), want)
	}
	// Preparing the right octant removes the fallback.
	ix2, err := New(pts, Options{Budget: 5, Seed: 6, Octants: []vecmath.SignPattern{{1, -1}}})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err = ix2.Report(normal, 0, Below)
	if err != nil {
		t.Fatal(err)
	}
	if st.FellBack {
		t.Fatal("prepared octant still fell back")
	}
}

func TestNearest(t *testing.T) {
	pts := randomPoints(1500, 2, 7)
	ix, _ := New(pts, Options{Budget: 10, Seed: 8})
	normal := []float64{2, 3}
	offset := 5.0
	res, _, err := ix.Nearest(normal, offset, Below, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	// Verify against brute force distances.
	type cand struct {
		d float64
	}
	var below []cand
	norm := 0.0
	for _, v := range normal {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for _, p := range pts {
		v := dot(normal, p)
		if v <= offset {
			below = append(below, cand{math.Abs(v-offset) / norm})
		}
	}
	sort.Slice(below, func(i, j int) bool { return below[i].d < below[j].d })
	for i, r := range res {
		if diff := r.Distance - below[i].d; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, r.Distance, below[i].d)
		}
	}
}
