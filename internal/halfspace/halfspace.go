// Package halfspace specialises the planar index to the classic
// half-space range searching problem of computational geometry
// (Agarwal et al., Matousek, Arya et al. — the paper's Table 1):
// φ is the identity, so queries ask for all points on one side of an
// arbitrary hyperplane ⟨a, x⟩ = b, and the top-k variant returns the
// k points nearest the hyperplane (the hyperplane-to-nearest-point
// problem of Jain et al. / Liu et al., answered exactly here).
package halfspace

import (
	"errors"
	"fmt"
	"math/rand"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// Side selects which closed half-space to report.
type Side int

const (
	// Below reports points with ⟨a, x⟩ ≤ b.
	Below Side = iota
	// Above reports points with ⟨a, x⟩ ≥ b.
	Above
)

// Index answers half-space queries over a fixed point set.
type Index struct {
	multi *core.Multi
}

// Options configures construction.
type Options struct {
	// Budget is the number of planar indexes per hyper-octant pair
	// (default 16).
	Budget int
	// Seed drives index-normal sampling.
	Seed int64
	// Octants lists the sign patterns of query normals to prepare
	// for. Default: the all-positive octant and its negation, which
	// serves every query whose coefficients share a sign; other
	// queries fall back to a scan.
	Octants []vecmath.SignPattern
}

// New indexes the points (rows of equal dimensionality).
func New(points [][]float64, opts Options) (*Index, error) {
	if len(points) == 0 {
		return nil, errors.New("halfspace: no points")
	}
	dim := len(points[0])
	store, err := core.NewPointStore(dim)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		if _, err := store.Append(p); err != nil {
			return nil, fmt.Errorf("halfspace: point %d: %w", i, err)
		}
	}
	if opts.Budget <= 0 {
		opts.Budget = 16
	}
	if len(opts.Octants) == 0 {
		pos := vecmath.FirstOctant(dim)
		opts.Octants = []vecmath.SignPattern{pos, pos.Negate()}
	}
	m, err := core.NewMulti(store)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for _, oct := range opts.Octants {
		if len(oct) != dim {
			return nil, fmt.Errorf("halfspace: octant %s has dimension %d, want %d", oct, len(oct), dim)
		}
		doms := make([]core.Domain, dim)
		for i := range doms {
			if oct[i] > 0 {
				doms[i] = core.Domain{Lo: 0.1, Hi: 10}
			} else {
				doms[i] = core.Domain{Lo: -10, Hi: -0.1}
			}
		}
		if _, err := m.SampleBudget(opts.Budget, doms, rng); err != nil {
			return nil, err
		}
	}
	return &Index{multi: m}, nil
}

// query builds the core query for a hyperplane side.
func query(normal []float64, offset float64, side Side) core.Query {
	op := core.LE
	if side == Above {
		op = core.GE
	}
	return core.Query{A: normal, B: offset, Op: op}
}

// Report returns the ids (row numbers of the input points) on the
// requested side of ⟨normal, x⟩ = offset.
func (ix *Index) Report(normal []float64, offset float64, side Side) ([]uint32, core.Stats, error) {
	return ix.multi.InequalityIDs(query(normal, offset, side))
}

// Count returns how many points lie on the requested side.
func (ix *Index) Count(normal []float64, offset float64, side Side) (int, core.Stats, error) {
	return ix.multi.Count(query(normal, offset, side))
}

// Nearest returns the k points on the requested side closest to the
// hyperplane, exactly (Problem 2 with φ = identity).
func (ix *Index) Nearest(normal []float64, offset float64, side Side, k int) ([]core.Result, core.Stats, error) {
	return ix.multi.TopK(query(normal, offset, side), k)
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.multi.Store().Len() }

// Multi exposes the underlying index collection for advanced use.
func (ix *Index) Multi() *core.Multi { return ix.multi }
