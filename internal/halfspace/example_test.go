package halfspace_test

import (
	"fmt"

	"planar/internal/halfspace"
)

// Example demonstrates half-space range searching — the classic
// special case of scalar product queries with φ = identity.
func Example() {
	points := [][]float64{
		{1, 1}, {2, 8}, {9, 2}, {5, 5}, {8, 9},
	}
	ix, _ := halfspace.New(points, halfspace.Options{Budget: 4, Seed: 1})

	// All points below the hyperplane x + 2y = 17.
	below, _, _ := ix.Report([]float64{1, 2}, 17, halfspace.Below)
	fmt.Println("below:", below)

	// The single point above it closest to it.
	nearest, _, _ := ix.Nearest([]float64{1, 2}, 17, halfspace.Above, 1)
	fmt.Println("closest above:", nearest[0].ID)
	// Output:
	// below: [0 2 3]
	// closest above: 1
}
