// Package replica implements the follower side of WAL-shipping
// replication. A Replica bootstraps a local store from a primary's
// consistent snapshot, then tails the primary's commit stream over
// HTTP long-polls, applying records in LSN order through the same
// journaling machinery the primary uses — so a replica restart
// resumes from its own durable state without re-bootstrapping.
//
// The loop is self-healing: connection failures retry with capped
// exponential backoff plus jitter; a cursor the primary no longer
// retains (tooOld) or any divergence (CRC, LSN gap, id mismatch,
// replica ahead of primary) discards the local store and
// re-bootstraps from a fresh snapshot. Promote turns the replica into
// a writable primary: the applier stops and the read-only guard
// lifts, and because applied records populate the replication ring,
// the promoted store can immediately serve downstream replicas.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"planar/internal/service"
)

// Replica states, as reported in Status.State.
const (
	StateConnecting    = "connecting"    // no local store yet, primary unreachable
	StateBootstrapping = "bootstrapping" // downloading / materialising a snapshot
	StateStreaming     = "streaming"     // tailing the commit stream
	StateReconnecting  = "reconnecting"  // stream broke, backing off before retry
	StatePromoted      = "promoted"      // applier stopped, store writable
	StateStopped       = "stopped"       // Close was called
)

// errRebootstrap marks conditions that invalidate the local store:
// the loop discards the data directory and bootstraps again.
var errRebootstrap = errors.New("replica: local state unusable, re-bootstrap required")

// Options configures a Replica.
type Options struct {
	// Primary is the base URL of the upstream server, e.g.
	// "http://10.0.0.1:7171". Required.
	Primary string
	// Dir is the local data directory. Required. A directory holding a
	// compatible store resumes from its last applied LSN; otherwise it
	// is (re)built from a primary snapshot.
	Dir string
	// Client issues the HTTP requests (nil = a dedicated client with
	// no overall timeout — long-polls hold connections open).
	Client *http.Client
	// BatchMax bounds how many records one poll may return — the apply
	// queue bound (0 = 512, capped at MaxBatch).
	BatchMax int
	// PollWait is how long the primary may hold an empty long-poll
	// before answering (0 = 1s).
	PollWait time.Duration
	// ReadyMaxLag is the lag (primary LSN minus applied LSN) above
	// which Ready reports false (0 = any lag is ready while streaming).
	ReadyMaxLag uint64
	// SyncEveryWrite, CheckpointEvery and RingSize configure the local
	// store exactly as on a primary (see service.Options).
	SyncEveryWrite  bool
	CheckpointEvery int
	RingSize        int
}

// Status is a point-in-time view of the replication loop.
type Status struct {
	State       string `json:"state"`
	LastApplied uint64 `json:"lastApplied"`
	PrimaryLast uint64 `json:"primaryLast"`
	Lag         uint64 `json:"lag"`
	Bootstraps  int    `json:"bootstraps"`
	Reconnects  int    `json:"reconnects"`
	LastError   string `json:"lastError,omitempty"`
}

// Replica tails a primary into a local read-only store.
type Replica struct {
	opts   Options
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	db     *service.DB
	status Status
}

// Start launches the replication loop and returns immediately; the
// loop connects, bootstraps and streams in the background. Use Status
// and Ready to observe progress, Promote for failover, Close to stop.
func Start(opts Options) (*Replica, error) {
	if opts.Primary == "" {
		return nil, errors.New("replica: Primary URL required")
	}
	if opts.Dir == "" {
		return nil, errors.New("replica: Dir required")
	}
	opts.Primary = strings.TrimRight(opts.Primary, "/")
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.BatchMax <= 0 {
		opts.BatchMax = 512
	}
	if opts.BatchMax > MaxBatch {
		opts.BatchMax = MaxBatch
	}
	if opts.PollWait <= 0 {
		opts.PollWait = time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		status: Status{State: StateConnecting},
	}
	go r.run()
	return r, nil
}

// run is the replication loop: ensure a local store exists (resuming
// or bootstrapping), then stream batches until something breaks.
func (r *Replica) run() {
	defer close(r.done)
	var bo backoff
	for r.ctx.Err() == nil {
		db, err := r.ensureDB()
		if err != nil {
			r.note(StateConnecting, err)
			if !bo.sleep(r.ctx) {
				return
			}
			continue
		}
		switch err := r.streamOnce(db); {
		case err == nil:
			bo.reset()
		case r.ctx.Err() != nil:
			return
		case errors.Is(err, service.ErrDiverged) || errors.Is(err, errRebootstrap):
			log.Printf("replica: %v; discarding %s and re-bootstrapping from %s", err, r.opts.Dir, r.opts.Primary)
			r.discard(db)
			bo.reset()
		default:
			r.note(StateReconnecting, err)
			r.mu.Lock()
			r.status.Reconnects++
			r.mu.Unlock()
			if !bo.sleep(r.ctx) {
				return
			}
		}
	}
}

// ensureDB returns the open local store, resuming an existing
// directory when possible and bootstrapping from the primary
// otherwise. The too-old / divergence checks in streamOnce decide
// whether a resumed store is actually usable.
func (r *Replica) ensureDB() (*service.DB, error) {
	r.mu.Lock()
	db := r.db
	r.mu.Unlock()
	if db != nil {
		return db, nil
	}
	if db, err := service.Open(r.opts.Dir, r.dbOptions()); err == nil {
		db.SetReadOnly(true)
		// Read the LSN before taking r.mu: LastLSN locks the sequencer,
		// and the status mutex is a leaf in the lock order.
		lsn := db.LastLSN()
		r.mu.Lock()
		r.db = db
		r.status.LastApplied = lsn
		r.mu.Unlock()
		return db, nil
	}
	return r.bootstrap()
}

// bootstrap downloads a consistent snapshot, materialises it into a
// scratch directory, and swaps it in as the data directory — so a
// crash mid-bootstrap leaves either the old state or the scratch dir,
// never a half-written store.
func (r *Replica) bootstrap() (*service.DB, error) {
	r.setState(StateBootstrapping)
	resp, err := r.get("/v1/replication/snapshot")
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("replica: snapshot: primary answered %s", resp.Status)
	}
	st, err := ReadSnapshot(resp.Body)
	if err != nil {
		return nil, err
	}
	tmp := r.opts.Dir + ".bootstrap"
	if err := os.RemoveAll(tmp); err != nil {
		return nil, err
	}
	if err := service.MaterializeReplState(tmp, st); err != nil {
		return nil, err
	}
	if err := os.RemoveAll(r.opts.Dir); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, r.opts.Dir); err != nil {
		return nil, err
	}
	db, err := service.Open(r.opts.Dir, r.dbOptions())
	if err != nil {
		return nil, err
	}
	db.SetReadOnly(true)
	lsn := db.LastLSN()
	r.mu.Lock()
	r.db = db
	r.status.Bootstraps++
	r.status.LastApplied = lsn
	r.mu.Unlock()
	log.Printf("replica: bootstrapped %s from %s at LSN %d (%d shards)", r.opts.Dir, r.opts.Primary, st.LSN, st.Shards)
	return db, nil
}

// streamOnce issues one long-poll and applies the batch it returns.
// An empty batch (poll timeout on an idle primary) is a success.
func (r *Replica) streamOnce(db *service.DB) error {
	from := db.LastLSN() + 1
	q := url.Values{}
	q.Set("from", strconv.FormatUint(from, 10))
	q.Set("max", strconv.Itoa(r.opts.BatchMax))
	q.Set("waitms", strconv.FormatInt(r.opts.PollWait.Milliseconds(), 10))
	resp, err := r.get("/v1/replication/stream?" + q.Encode())
	if err != nil {
		return err
	}
	defer func() {
		// Drain so the keep-alive connection is reusable; both calls
		// are best-effort on a response we are done with.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: stream: primary answered %s", resp.Status)
	}
	h, recs, err := ReadStream(resp.Body)
	if err != nil {
		return err
	}
	if h.TooOld {
		return fmt.Errorf("replica: cursor %d predates primary retention: %w", from, errRebootstrap)
	}
	if h.Future {
		return fmt.Errorf("replica: cursor %d is ahead of primary (last %d): %w", from, h.Last, service.ErrDiverged)
	}
	for _, rec := range recs {
		if rec.LSN != from {
			return fmt.Errorf("replica: stream gap: got LSN %d, want %d: %w", rec.LSN, from, service.ErrDiverged)
		}
		if err := db.ApplyReplicated(rec); err != nil {
			return err
		}
		from = rec.LSN + 1
	}
	lsn := db.LastLSN()
	r.mu.Lock()
	r.status.State = StateStreaming
	r.status.PrimaryLast = h.Last
	r.status.LastApplied = lsn
	r.status.LastError = ""
	r.mu.Unlock()
	return nil
}

// discard closes and deletes the local store so the next loop
// iteration bootstraps from scratch.
func (r *Replica) discard(db *service.DB) {
	if err := db.Close(); err != nil {
		log.Printf("replica: closing diverged store: %v", err)
	}
	if err := os.RemoveAll(r.opts.Dir); err != nil {
		log.Printf("replica: removing diverged store: %v", err)
	}
	r.mu.Lock()
	r.db = nil
	r.mu.Unlock()
}

func (r *Replica) get(path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, r.opts.Primary+path, nil)
	if err != nil {
		return nil, err
	}
	return r.opts.Client.Do(req)
}

func (r *Replica) dbOptions() service.Options {
	// Sharded-ness is decided by the directory layout the bootstrap
	// materialised, mirroring the primary's topology.
	return service.Options{
		SyncEveryWrite:  r.opts.SyncEveryWrite,
		CheckpointEvery: r.opts.CheckpointEvery,
		RingSize:        r.opts.RingSize,
	}
}

func (r *Replica) setState(state string) {
	r.mu.Lock()
	r.status.State = state
	r.mu.Unlock()
}

func (r *Replica) note(state string, err error) {
	r.mu.Lock()
	r.status.State = state
	r.status.LastError = err.Error()
	r.mu.Unlock()
}

// Status returns a snapshot of the loop's progress.
func (r *Replica) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.status
	if st.PrimaryLast > st.LastApplied {
		st.Lag = st.PrimaryLast - st.LastApplied
	}
	return st
}

// DB returns the current local store, or nil before the first
// successful open. The pointer changes across a re-bootstrap; callers
// serving requests should call DB per request rather than caching it.
func (r *Replica) DB() *service.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// Ready reports whether this replica should receive traffic: it has a
// store and is streaming (or promoted) with lag within ReadyMaxLag.
// The reason string explains a false answer.
func (r *Replica) Ready() (bool, string) {
	st := r.Status()
	r.mu.Lock()
	hasDB := r.db != nil
	r.mu.Unlock()
	if !hasDB {
		return false, "no local store yet (" + st.State + ")"
	}
	switch st.State {
	case StatePromoted:
		return true, ""
	case StateStreaming:
		if r.opts.ReadyMaxLag > 0 && st.Lag > r.opts.ReadyMaxLag {
			return false, fmt.Sprintf("lag %d exceeds %d", st.Lag, r.opts.ReadyMaxLag)
		}
		return true, ""
	default:
		return false, st.State
	}
}

// Promote stops the applier and lifts the read-only guard, returning
// the now-writable store (nil if no store was ever opened). The
// promoted store's replication ring is already populated, so it can
// serve /v1/replication/stream to downstream replicas immediately.
func (r *Replica) Promote() *service.DB {
	r.cancel()
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.db != nil {
		r.db.SetReadOnly(false)
	}
	r.status.State = StatePromoted
	return r.db
}

// Close stops the loop and closes the local store. Safe after
// Promote (the store is then left open for the caller).
func (r *Replica) Close() error {
	r.cancel()
	<-r.done
	// Update the status and detach the store under r.mu, but close it
	// after releasing: db.Close syncs and closes the WAL, and holding
	// the status mutex across that disk work would block Status()
	// calls for the duration (and inverts the lock order — r.mu is a
	// leaf).
	r.mu.Lock()
	if r.status.State == StatePromoted {
		r.mu.Unlock()
		return nil
	}
	r.status.State = StateStopped
	db := r.db
	r.db = nil
	r.mu.Unlock()
	if db == nil {
		return nil
	}
	return db.Close()
}

// backoff is capped exponential backoff with additive jitter:
// 100ms, 200ms, … capped at 5s, plus up to 25% random extra so a
// herd of replicas does not reconnect in lockstep.
type backoff struct {
	d time.Duration
}

func (b *backoff) reset() { b.d = 0 }

// sleep waits the next backoff interval; false means ctx was
// cancelled first.
func (b *backoff) sleep(ctx context.Context) bool {
	if b.d == 0 {
		b.d = 100 * time.Millisecond
	} else if b.d *= 2; b.d > 5*time.Second {
		b.d = 5 * time.Second
	}
	jitter := time.Duration(rand.Int63n(int64(b.d)/4 + 1))
	t := time.NewTimer(b.d + jitter)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
