package replica_test

// Regression test for the Close restructure planarlint's locknesting
// sweep forced: Close used to hold the status mutex across
// db.Close() — syncing and closing the WAL with Status() blocked for
// the duration, and a lock-order inversion (the status mutex is a
// leaf). Close now detaches the store under the mutex and closes it
// after releasing.

import (
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"planar/internal/replica"
)

func TestCloseDetachesStoreAndStaysResponsive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db, srv := newPrimary(t, 2)
	churn(t, db, rng, 100, nil)

	rep, err := replica.Start(replica.Options{Primary: srv.URL, Dir: filepath.Join(t.TempDir(), "replica"), PollWait: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, rep, db.LastLSN())

	// Status must never block behind the store teardown: poll it from
	// another goroutine for the whole duration of Close.
	statusDone := make(chan struct{})
	closeStarted := make(chan struct{})
	go func() {
		defer close(statusDone)
		<-closeStarted
		for i := 0; i < 100; i++ {
			_ = rep.Status()
		}
	}()
	close(closeStarted)
	if err := rep.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case <-statusDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Status() blocked across Close")
	}

	if got := rep.DB(); got != nil {
		t.Fatalf("DB() after Close returned a closed store: %v", got)
	}
	if st := rep.Status(); st.State != replica.StateStopped {
		t.Fatalf("state after Close = %s, want %s", st.State, replica.StateStopped)
	}
	if ok, reason := rep.Ready(); ok {
		t.Fatalf("closed replica reports ready (%s)", reason)
	}
}
