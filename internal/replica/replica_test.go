package replica_test

// End-to-end replication tests: a real primary served by httpapi over
// httptest, real replicas bootstrapping and tailing it over HTTP.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"planar/internal/core"
	"planar/internal/httpapi"
	"planar/internal/replica"
	"planar/internal/service"
	"planar/internal/vecmath"
)

const dim = 4

// newPrimary opens a store and serves it over httptest.
func newPrimary(t *testing.T, shards int, ringSize ...int) (*service.DB, *httptest.Server) {
	t.Helper()
	ring := 0
	if len(ringSize) > 0 {
		ring = ringSize[0]
	}
	db, err := service.Open(filepath.Join(t.TempDir(), "primary"), service.Options{Dim: dim, Shards: shards, RingSize: ring})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	api, err := httpapi.New(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return db, srv
}

// churn applies n random mutations (weighted toward appends) and
// returns the ids still live.
func churn(t *testing.T, db *service.DB, rng *rand.Rand, n int, live []uint32) []uint32 {
	t.Helper()
	vec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.Float64()*20 - 10
		}
		return v
	}
	for i := 0; i < n; i++ {
		switch op := rng.Intn(10); {
		case op < 7 || len(live) == 0:
			id, err := db.Append(vec())
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, id)
		case op < 9:
			if err := db.Update(live[rng.Intn(len(live))], vec()); err != nil {
				t.Fatal(err)
			}
		default:
			k := rng.Intn(len(live))
			if err := db.Remove(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		}
	}
	return live
}

// waitApplied blocks until the replica has applied at least lsn.
func waitApplied(t *testing.T, rep *replica.Replica, lsn uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st := rep.Status(); st.LastApplied >= lsn {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("replica stuck at %+v, want LSN %d", rep.Status(), lsn)
}

// assertIdentical runs the same query/count/top-k workload against
// both stores and requires exactly equal answers.
func assertIdentical(t *testing.T, primary, rep *service.DB, rng *rand.Rand) {
	t.Helper()
	if p, r := primary.Len(), rep.Len(); p != r {
		t.Fatalf("primary has %d points, replica %d", p, r)
	}
	for i := 0; i < 20; i++ {
		a := make([]float64, dim)
		for j := range a {
			a[j] = rng.Float64()*2 - 1
		}
		q := core.Query{A: a, B: rng.Float64() * 10, Op: core.LE}
		pids, _, err := primary.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		rids, _, err := rep.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pids, rids) {
			t.Fatalf("query %d: primary %v, replica %v", i, pids, rids)
		}
		pc, _, err := primary.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		rc, _, err := rep.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if pc != rc {
			t.Fatalf("count %d: primary %d, replica %d", i, pc, rc)
		}
		pk, _, err := primary.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		rk, _, err := rep.TopK(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pk, rk) {
			t.Fatalf("topk %d: primary %v, replica %v", i, pk, rk)
		}
	}
}

func TestReplicationIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db, srv := newPrimary(t, 3)
	if _, err := db.AddNormal([]float64{1, 0.5, 0.25, 2}, vecmath.FirstOctant(dim)); err != nil {
		t.Fatal(err)
	}
	live := churn(t, db, rng, 400, nil)

	rep, err := replica.Start(replica.Options{Primary: srv.URL, Dir: filepath.Join(t.TempDir(), "replica"), PollWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	waitApplied(t, rep, db.LastLSN())

	// Keep mutating after the bootstrap so the stream path is covered.
	churn(t, db, rng, 400, live)
	waitApplied(t, rep, db.LastLSN())
	assertIdentical(t, db, rep.DB(), rng)

	if st := rep.Status(); st.Bootstraps != 1 {
		t.Fatalf("expected exactly one bootstrap, got %+v", st)
	}
	if ok, reason := rep.Ready(); !ok {
		t.Fatalf("caught-up replica not ready: %s", reason)
	}
	if _, err := rep.DB().Append(make([]float64, dim)); err != service.ErrReadOnly {
		t.Fatalf("replica accepted a direct write: %v", err)
	}
}

func TestReplicaKillAndReconnect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, srv := newPrimary(t, 2)
	live := churn(t, db, rng, 200, nil)

	dir := filepath.Join(t.TempDir(), "replica")
	rep, err := replica.Start(replica.Options{Primary: srv.URL, Dir: dir, PollWait: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, rep, db.LastLSN())

	// Sever the long-poll mid-flight; the loop must reconnect and
	// resume from its applied LSN without a second bootstrap.
	deadline := time.Now().Add(10 * time.Second)
	for rep.Status().Reconnects == 0 && time.Now().Before(deadline) {
		srv.CloseClientConnections()
		time.Sleep(10 * time.Millisecond)
	}
	if rep.Status().Reconnects == 0 {
		t.Fatal("never observed a reconnect")
	}
	live = churn(t, db, rng, 200, live)
	waitApplied(t, rep, db.LastLSN())
	assertIdentical(t, db, rep.DB(), rng)
	if st := rep.Status(); st.Bootstraps != 1 {
		t.Fatalf("reconnect re-bootstrapped: %+v", st)
	}
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart on the same directory: the journaled LSNs are the
	// cursor, so catch-up resumes with zero bootstraps.
	churn(t, db, rng, 100, live)
	rep2, err := replica.Start(replica.Options{Primary: srv.URL, Dir: dir, PollWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep2.Close() })
	waitApplied(t, rep2, db.LastLSN())
	assertIdentical(t, db, rep2.DB(), rng)
	if st := rep2.Status(); st.Bootstraps != 0 {
		t.Fatalf("restart bootstrapped instead of resuming: %+v", st)
	}
}

func TestReplicaTooOldRebootstraps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db, srv := newPrimary(t, 1, 16) // tiny ring so retention actually expires
	churn(t, db, rng, 50, nil)

	dir := filepath.Join(t.TempDir(), "replica")
	rep, err := replica.Start(replica.Options{Primary: srv.URL, Dir: dir, PollWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitApplied(t, rep, db.LastLSN())
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}

	// While the replica is down, advance the primary and checkpoint:
	// the WAL truncates, so the replica's cursor is gone from both the
	// ring and the disk and only a fresh snapshot can help.
	churn(t, db, rng, 300, nil)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	churn(t, db, rng, 20, nil)

	rep2, err := replica.Start(replica.Options{Primary: srv.URL, Dir: dir, PollWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep2.Close() })
	waitApplied(t, rep2, db.LastLSN())
	assertIdentical(t, db, rep2.DB(), rng)
	if st := rep2.Status(); st.Bootstraps != 1 {
		t.Fatalf("expected exactly one re-bootstrap, got %+v", st)
	}
}

// replicaServer serves a replica through httpapi with the write guard.
func replicaServer(t *testing.T, rep *replica.Replica, primaryURL string, proxy bool) *httptest.Server {
	t.Helper()
	api, err := httpapi.New(nil, httpapi.WithReplica(rep, primaryURL, proxy))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(api.Handler())
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestReplicaHTTPGuardBarrierAndPromote(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db, srv := newPrimary(t, 2)
	churn(t, db, rng, 100, nil)

	rep, err := replica.Start(replica.Options{Primary: srv.URL, Dir: filepath.Join(t.TempDir(), "replica"), PollWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	rsrv := replicaServer(t, rep, srv.URL, false)
	waitApplied(t, rep, db.LastLSN())

	// Writes bounce with the primary's address.
	resp, body := postJSON(t, rsrv.URL+"/v1/points", `{"vec":[1,2,3,4]}`)
	if resp.StatusCode != http.StatusForbidden || !bytes.Contains(body, []byte(srv.URL)) {
		t.Fatalf("write on replica: %d %s", resp.StatusCode, body)
	}

	// Monotonic read: write upstream, then query the replica with the
	// primary's LSN as the barrier — the answer must include the write.
	id, err := db.Append([]float64{9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	lsn := db.LastLSN()
	req, _ := http.NewRequest(http.MethodPost, rsrv.URL+"/v1/query", bytes.NewReader([]byte(`{"a":[1,1,1,1],"b":100,"op":"<=","k":0}`)))
	req.Header.Set("X-Planar-Min-LSN", fmt.Sprintf("%d", lsn))
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		IDs []uint32 `json:"ids"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("barrier query: %d", resp2.StatusCode)
	}
	found := false
	for _, got := range qr.IDs {
		found = found || got == id
	}
	if !found {
		t.Fatalf("barrier read at LSN %d missed id %d (got %d ids)", lsn, id, len(qr.IDs))
	}
	if got := resp2.Header.Get("X-Planar-LSN"); got == "" || got == "0" {
		t.Fatalf("missing X-Planar-LSN header: %q", got)
	}

	// An unreachable barrier times out with 504.
	req2, _ := http.NewRequest(http.MethodPost, rsrv.URL+"/v1/query", bytes.NewReader([]byte(`{"a":[1,1,1,1],"b":100,"op":"<="}`)))
	req2.Header.Set("X-Planar-Min-LSN", fmt.Sprintf("%d", lsn+1000))
	req2.Header.Set("X-Planar-Wait-Ms", "50")
	resp3, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unreachable barrier answered %d, want 504", resp3.StatusCode)
	}

	// /readyz reflects the replica, /healthz is plain liveness.
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		hr, err := http.Get(rsrv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		hr.Body.Close()
		if hr.StatusCode != want {
			t.Fatalf("%s: %d, want %d", path, hr.StatusCode, want)
		}
	}

	// Failover: promote over HTTP, then the replica takes writes.
	waitApplied(t, rep, db.LastLSN())
	resp4, body4 := postJSON(t, rsrv.URL+"/v1/replication/promote", "")
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d %s", resp4.StatusCode, body4)
	}
	resp5, body5 := postJSON(t, rsrv.URL+"/v1/points", `{"vec":[1,2,3,4]}`)
	if resp5.StatusCode != http.StatusOK {
		t.Fatalf("write after promote: %d %s", resp5.StatusCode, body5)
	}
}

func TestReplicaProxiesWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, srv := newPrimary(t, 2)
	churn(t, db, rng, 50, nil)

	rep, err := replica.Start(replica.Options{Primary: srv.URL, Dir: filepath.Join(t.TempDir(), "replica"), PollWait: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	rsrv := replicaServer(t, rep, srv.URL, true)
	waitApplied(t, rep, db.LastLSN())

	before := db.LastLSN()
	resp, body := postJSON(t, rsrv.URL+"/v1/points", `{"vec":[5,6,7,8]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied write: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Planar-Proxied") != "primary" {
		t.Fatal("missing proxy marker header")
	}
	if db.LastLSN() != before+1 {
		t.Fatalf("primary LSN %d, want %d", db.LastLSN(), before+1)
	}
	waitApplied(t, rep, db.LastLSN())
	assertIdentical(t, db, rep.DB(), rng)
}
