package replica

// Wire protocol for WAL-shipping replication. Both replication
// responses are a single JSON header line followed by a binary body:
//
//	/v1/replication/snapshot → SnapshotHeader '\n' then Shards
//	    consecutive codec snapshot streams (each self-delimiting and
//	    CRC-checked);
//	/v1/replication/stream   → StreamHeader '\n' then Count records in
//	    the WAL on-disk encoding.
//
// Reusing the WAL record encoding on the wire means DecodeRecord
// re-verifies each record's CRC on receive: a bit flipped in transit
// is indistinguishable from a torn segment tail and rejects the batch
// before anything is applied.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"planar/internal/codec"
	"planar/internal/service"
	"planar/internal/wal"
)

// SnapshotHeader is the first line of a snapshot response: the shard
// topology the replica must mirror and the LSN the cut is valid at.
type SnapshotHeader struct {
	Shards int    `json:"shards"`
	Dim    int    `json:"dim"`
	LSN    uint64 `json:"lsn"`
}

// StreamHeader is the first line of a stream response. From echoes the
// request cursor; Last is the primary's latest committed LSN (the
// replica's lag is Last minus its own applied position). TooOld means
// the cursor predates everything the primary retains — re-bootstrap.
// Future means the cursor is ahead of the primary — the replica has
// records the primary never wrote, i.e. divergence.
type StreamHeader struct {
	From   uint64 `json:"from"`
	Count  int    `json:"count"`
	Last   uint64 `json:"last"`
	TooOld bool   `json:"tooOld,omitempty"`
	Future bool   `json:"future,omitempty"`
}

// MaxBatch caps how many records one stream response may carry — the
// bound on the replica's apply queue.
const MaxBatch = 1 << 16

// WriteSnapshot serialises a captured state (header + every shard
// snapshot) onto w.
func WriteSnapshot(w io.Writer, st *service.ReplState) error {
	h := SnapshotHeader{Shards: st.Shards, Dim: st.Dim, LSN: st.LSN}
	if err := writeHeader(w, h); err != nil {
		return err
	}
	for _, snap := range st.Snaps {
		if err := snap.Write(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot parses a snapshot response into a state ready for
// service.MaterializeReplState.
func ReadSnapshot(r io.Reader) (*service.ReplState, error) {
	br := bufio.NewReader(r)
	var h SnapshotHeader
	if err := readHeader(br, &h); err != nil {
		return nil, fmt.Errorf("replica: snapshot header: %w", err)
	}
	if h.Shards < 1 || h.Shards > 1<<10 || h.Dim < 1 {
		return nil, fmt.Errorf("replica: implausible snapshot header %+v", h)
	}
	st := &service.ReplState{Shards: h.Shards, Dim: h.Dim, LSN: h.LSN}
	for i := 0; i < h.Shards; i++ {
		snap, err := codec.Read(br)
		if err != nil {
			return nil, fmt.Errorf("replica: snapshot shard %d: %w", i, err)
		}
		if snap.Dim != h.Dim {
			return nil, fmt.Errorf("replica: shard %d has dimension %d, header says %d", i, snap.Dim, h.Dim)
		}
		st.Snaps = append(st.Snaps, snap)
	}
	return st, nil
}

// WriteStream serialises a batch of committed records onto w. The
// header's Count is forced to len(recs).
func WriteStream(w io.Writer, h StreamHeader, recs []wal.Record) error {
	h.Count = len(recs)
	if err := writeHeader(w, h); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := wal.EncodeRecord(w, rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadStream parses a stream response, re-verifying each record's CRC.
func ReadStream(r io.Reader) (StreamHeader, []wal.Record, error) {
	br := bufio.NewReader(r)
	var h StreamHeader
	if err := readHeader(br, &h); err != nil {
		return h, nil, fmt.Errorf("replica: stream header: %w", err)
	}
	if h.Count < 0 || h.Count > MaxBatch {
		return h, nil, fmt.Errorf("replica: implausible stream count %d", h.Count)
	}
	recs := make([]wal.Record, 0, h.Count)
	for i := 0; i < h.Count; i++ {
		rec, err := wal.DecodeRecord(br)
		if err != nil {
			return h, nil, fmt.Errorf("replica: stream record %d/%d: %w", i, h.Count, err)
		}
		recs = append(recs, rec)
	}
	return h, recs, nil
}

func writeHeader(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

func readHeader(br *bufio.Reader, into any) error {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return err
	}
	return json.Unmarshal(line, into)
}
