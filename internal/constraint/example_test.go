package constraint_test

import (
	"fmt"
	"math/rand"

	"planar/internal/constraint"
	"planar/internal/core"
)

// Example answers a conjunction of half-spaces (a linear constraint
// query) over planar indexes, letting the selectivity bounds pick
// the driving constraint.
func Example() {
	store, _ := core.NewPointStore(2)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		store.Append([]float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	m, _ := core.NewMulti(store)
	m.SampleBudget(10, []core.Domain{{Lo: 0.5, Hi: 3}, {Lo: 0.5, Hi: 3}}, rng)
	m.SampleBudget(10, []core.Domain{{Lo: -3, Hi: -0.5}, {Lo: -3, Hi: -0.5}}, rng)

	ev, _ := constraint.NewEvaluator(m)
	// 40 ≤ x + y ≤ 60 and 2x + y ≤ 120.
	c := constraint.Conjunction{}.
		And(core.Query{A: []float64{1, 1}, B: 60, Op: core.LE}).
		And(core.Query{A: []float64{1, 1}, B: 40, Op: core.GE}).
		And(core.Query{A: []float64{2, 1}, B: 120, Op: core.LE})
	count, plan, _ := ev.Count(c)
	fmt.Printf("matches=%d driver-was-one-of-3=%v candidates>=matches=%v\n",
		count, plan.Driver >= 0 && plan.Driver < 3, plan.Candidates >= count)
	// Output:
	// matches=1003 driver-was-one-of-3=true candidates>=matches=true
}
