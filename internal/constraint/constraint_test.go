package constraint

import (
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
)

func buildMulti(t *testing.T, n, dim int, seed int64, budget int) *core.Multi {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	store, err := core.NewPointStore(dim)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		for j := range v {
			v[j] = rng.Float64() * 100
		}
		store.Append(v)
	}
	m, err := core.NewMulti(store)
	if err != nil {
		t.Fatal(err)
	}
	doms := make([]core.Domain, dim)
	for i := range doms {
		doms[i] = core.Domain{Lo: 0.5, Hi: 5}
	}
	if _, err := m.SampleBudget(budget, doms, rng); err != nil {
		t.Fatal(err)
	}
	// A few negative-octant indexes so GE constraints are served too.
	negDoms := make([]core.Domain, dim)
	for i := range negDoms {
		negDoms[i] = core.Domain{Lo: -5, Hi: -0.5}
	}
	if _, err := m.SampleBudget(budget, negDoms, rng); err != nil {
		t.Fatal(err)
	}
	return m
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestConjunctionValidate(t *testing.T) {
	if err := (Conjunction{}).Validate(2); err == nil {
		t.Error("empty conjunction accepted")
	}
	c := Conjunction{}.And(core.Query{A: []float64{1}, B: 5, Op: core.LE})
	if err := c.Validate(2); err == nil {
		t.Error("wrong-dim constraint accepted")
	}
	c = Conjunction{}.And(core.Query{A: []float64{1, 1}, B: 5, Op: core.LE})
	if err := c.Validate(2); err != nil {
		t.Error(err)
	}
}

func TestBox(t *testing.T) {
	c, err := Box([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Constraints) != 4 {
		t.Fatalf("box has %d constraints", len(c.Constraints))
	}
	inside := []float64{2, 3}
	outside := []float64{2, 5}
	for _, q := range c.Constraints {
		if !q.Satisfies(inside) {
			t.Fatalf("inside point violates %+v", q)
		}
	}
	violated := false
	for _, q := range c.Constraints {
		if !q.Satisfies(outside) {
			violated = true
		}
	}
	if !violated {
		t.Fatal("outside point satisfies the whole box")
	}
	if _, err := Box([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched corners accepted")
	}
	if _, err := Box(nil, nil); err == nil {
		t.Error("empty box accepted")
	}
	if _, err := Box([]float64{5}, []float64{1}); err == nil {
		t.Error("inverted box accepted")
	}
}

func TestEvaluateMatchesScan(t *testing.T) {
	m := buildMulti(t, 1500, 3, 1, 10)
	e, err := NewEvaluator(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		c := Conjunction{}.
			And(core.Query{A: []float64{1 + rng.Float64(), 1 + rng.Float64(), 1 + rng.Float64()},
				B: 100 + rng.Float64()*200, Op: core.LE}).
			And(core.Query{A: []float64{1, 2, 1}, B: 50 + rng.Float64()*100, Op: core.GE}).
			And(core.Query{A: []float64{3, 1, 2}, B: 150 + rng.Float64()*250, Op: core.LE})
		got, plan, err := e.IDs(c)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Scan(m.Store(), c)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(sortedIDs(got), sortedIDs(want)) {
			t.Fatalf("trial %d: evaluator %d ids, scan %d", trial, len(got), len(want))
		}
		if plan.Results != len(got) {
			t.Fatalf("plan.Results=%d got %d", plan.Results, len(got))
		}
		if plan.Candidates < plan.Results {
			t.Fatalf("candidates %d < results %d", plan.Candidates, plan.Results)
		}
		if len(plan.UpperBounds) != 3 {
			t.Fatalf("plan bounds: %v", plan.UpperBounds)
		}
		// The driver's bound must cover its candidate count.
		if plan.UpperBounds[plan.Driver] < plan.DriverStats.Results() {
			t.Fatalf("driver bound %d < driver results %d",
				plan.UpperBounds[plan.Driver], plan.DriverStats.Results())
		}
		count, _, err := e.Count(c)
		if err != nil || count != len(want) {
			t.Fatalf("Count=%d want %d err=%v", count, len(want), err)
		}
	}
}

func TestDriverPicksMostSelective(t *testing.T) {
	m := buildMulti(t, 2000, 2, 3, 20)
	e, _ := NewEvaluator(m)
	// Constraint 1 is nearly empty; constraint 0 matches nearly all.
	c := Conjunction{}.
		And(core.Query{A: []float64{1, 1}, B: 1e6, Op: core.LE}).
		And(core.Query{A: []float64{1, 1}, B: 5, Op: core.LE})
	_, plan, err := e.IDs(c)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Driver != 1 {
		t.Fatalf("driver=%d (bounds %v), want the selective constraint", plan.Driver, plan.UpperBounds)
	}
	if plan.Candidates > 200 {
		t.Fatalf("checked %d candidates for a near-empty conjunction", plan.Candidates)
	}
}

func TestBoxQueryMatchesScan(t *testing.T) {
	m := buildMulti(t, 1500, 3, 4, 10)
	e, _ := NewEvaluator(m)
	c, err := Box([]float64{10, 20, 30}, []float64{60, 70, 80})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.IDs(c)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Scan(m.Store(), c)
	if !equalIDs(sortedIDs(got), sortedIDs(want)) {
		t.Fatalf("box query: %d vs %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("degenerate box test: no points inside")
	}
	// Ground truth check on a sample.
	for _, id := range got[:min(10, len(got))] {
		v := m.Store().Vector(id)
		for i := range v {
			if v[i] < []float64{10, 20, 30}[i] || v[i] > []float64{60, 70, 80}[i] {
				t.Fatalf("point %d outside the box: %v", id, v)
			}
		}
	}
}

func TestEvaluatorValidation(t *testing.T) {
	if _, err := NewEvaluator(nil); err == nil {
		t.Error("nil multi accepted")
	}
	m := buildMulti(t, 10, 2, 5, 2)
	e, _ := NewEvaluator(m)
	if _, _, err := e.IDs(Conjunction{}); err == nil {
		t.Error("empty conjunction accepted")
	}
	if _, err := Scan(m.Store(), Conjunction{}); err == nil {
		t.Error("scan of empty conjunction accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
