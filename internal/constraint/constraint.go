// Package constraint answers linear constraint queries — the
// intersection of several scalar-product half-spaces — over a planar
// index collection. The paper's related-work section notes that
// "one could also apply multiple Planar indices in answering such
// linear constraint queries"; this package is that application.
//
// Evaluation picks the constraint with the smallest guaranteed
// answer-size upper bound (from core.SelectivityBounds, an O(log n)
// computation per index) as the driving constraint, enumerates its
// satisfiers through the planar machinery, and verifies the
// remaining constraints per candidate. Results are exact.
package constraint

import (
	"errors"
	"fmt"

	"planar/internal/core"
)

// Conjunction is a set of constraints that must all hold.
type Conjunction struct {
	Constraints []core.Query
}

// And appends a constraint and returns the conjunction for chaining.
func (c Conjunction) And(q core.Query) Conjunction {
	c.Constraints = append(c.Constraints, q)
	return c
}

// Validate checks the conjunction against a dimensionality.
func (c Conjunction) Validate(dim int) error {
	if len(c.Constraints) == 0 {
		return errors.New("constraint: empty conjunction")
	}
	for i, q := range c.Constraints {
		if err := q.Validate(dim); err != nil {
			return fmt.Errorf("constraint %d: %w", i, err)
		}
	}
	return nil
}

// Box returns the conjunction describing the axis-parallel rectangle
// lo ≤ x ≤ hi — the orthogonal range query of the related work,
// expressed as 2·d unit-normal half-spaces.
func Box(lo, hi []float64) (Conjunction, error) {
	if len(lo) != len(hi) {
		return Conjunction{}, fmt.Errorf("constraint: box corners have dimensions %d and %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Conjunction{}, errors.New("constraint: empty box")
	}
	var c Conjunction
	for i := range lo {
		if lo[i] > hi[i] {
			return Conjunction{}, fmt.Errorf("constraint: box is empty on axis %d (%v > %v)", i, lo[i], hi[i])
		}
		unit := make([]float64, len(lo))
		unit[i] = 1
		c = c.And(core.Query{A: unit, B: hi[i], Op: core.LE})
		c = c.And(core.Query{A: unit, B: lo[i], Op: core.GE})
	}
	return c, nil
}

// Plan describes how a conjunction was evaluated.
type Plan struct {
	// Driver is the index of the constraint that was enumerated via
	// the planar machinery; the rest were verified per candidate.
	Driver int
	// UpperBounds holds each constraint's guaranteed answer-size
	// upper bound used for driver selection.
	UpperBounds []int
	// Candidates is how many driver satisfiers were checked against
	// the remaining constraints.
	Candidates int
	// Results is the final answer cardinality.
	Results int
	// DriverStats are the planar statistics of the driving query.
	DriverStats core.Stats
}

// Evaluator answers conjunctions over one index collection.
type Evaluator struct {
	multi *core.Multi
}

// NewEvaluator wraps a Multi.
func NewEvaluator(m *core.Multi) (*Evaluator, error) {
	if m == nil {
		return nil, errors.New("constraint: nil multi")
	}
	return &Evaluator{multi: m}, nil
}

// Evaluate streams the ids satisfying every constraint to visit.
func (e *Evaluator) Evaluate(c Conjunction, visit func(id uint32) bool) (Plan, error) {
	store := e.multi.Store()
	if err := c.Validate(store.Dim()); err != nil {
		return Plan{}, err
	}
	plan := Plan{Driver: 0, UpperBounds: make([]int, len(c.Constraints))}
	bestHi := store.Len() + 1
	for i, q := range c.Constraints {
		_, hi, err := e.multi.SelectivityBounds(q)
		if err != nil {
			return Plan{}, err
		}
		plan.UpperBounds[i] = hi
		if hi < bestHi {
			bestHi = hi
			plan.Driver = i
		}
	}
	driver := c.Constraints[plan.Driver]
	rest := make([]core.Query, 0, len(c.Constraints)-1)
	for i, q := range c.Constraints {
		if i != plan.Driver {
			rest = append(rest, q)
		}
	}
	st, err := e.multi.Inequality(driver, func(id uint32) bool {
		plan.Candidates++
		v := store.Vector(id)
		for _, q := range rest {
			if !q.Satisfies(v) {
				return true
			}
		}
		plan.Results++
		return visit(id)
	})
	if err != nil {
		return Plan{}, err
	}
	plan.DriverStats = st
	return plan, nil
}

// IDs collects all satisfying ids.
func (e *Evaluator) IDs(c Conjunction) ([]uint32, Plan, error) {
	var ids []uint32
	plan, err := e.Evaluate(c, func(id uint32) bool {
		ids = append(ids, id)
		return true
	})
	return ids, plan, err
}

// Count returns the exact cardinality of the conjunction's answer.
func (e *Evaluator) Count(c Conjunction) (int, Plan, error) {
	count := 0
	plan, err := e.Evaluate(c, func(uint32) bool {
		count++
		return true
	})
	return count, plan, err
}

// Scan answers a conjunction by brute force (the baseline).
func Scan(store *core.PointStore, c Conjunction) ([]uint32, error) {
	if err := c.Validate(store.Dim()); err != nil {
		return nil, err
	}
	var ids []uint32
	store.Each(func(id uint32, v []float64) bool {
		for _, q := range c.Constraints {
			if !q.Satisfies(v) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	return ids, nil
}
