// Package httpapi exposes a durable planar index store (package
// service) over a JSON HTTP API — the deployment surface of
// cmd/planarserve. All endpoints are rooted at /v1:
//
//	POST   /v1/query       {"a":[..],"b":n,"op":"<="}            → ids + stats
//	POST   /v1/query/batch {"a":[..],"bs":[..],"op":"<="}        → per-threshold ids + stats, one shared plan
//	POST   /v1/topk        {"a":[..],"b":n,"op":"<=","k":n}      → nearest points
//	POST   /v1/count       {"a":[..],"b":n,"op":"<="}            → exact count + bounds
//	POST   /v1/explain     {"a":[..],"b":n,"op":"<="}            → execution plan (no data touched)
//	POST   /v1/points      {"vec":[..]}                          → new point id
//	PUT    /v1/points/{id} {"vec":[..]}                          → re-key a point
//	DELETE /v1/points/{id}                                       → remove a point
//	POST   /v1/indexes     {"normal":[..],"signs":[1,-1,..]}     → add an index
//	POST   /v1/checkpoint                                        → snapshot + truncate log
//	GET    /v1/stats                                             → store/index statistics + pipeline metrics
//
// Per-query stats come straight from the execution pipeline
// (internal/exec): interval sizes, plan/execute stage times in
// nanoseconds, and whether index selection hit the plan cache.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"planar/internal/core"
	"planar/internal/service"
	"planar/internal/vecmath"
)

// Server wraps a service.DB with HTTP handlers.
type Server struct {
	db *service.DB
}

// New creates a Server over an open DB.
func New(db *service.DB) (*Server, error) {
	if db == nil {
		return nil, errors.New("httpapi: nil db")
	}
	return &Server{db: db}, nil
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/query/batch", s.handleQueryBatch)
	mux.HandleFunc("POST /v1/topk", s.handleTopK)
	mux.HandleFunc("POST /v1/count", s.handleCount)
	mux.HandleFunc("POST /v1/explain", s.handleExplain)
	mux.HandleFunc("POST /v1/points", s.handleAppend)
	mux.HandleFunc("PUT /v1/points/{id}", s.handleUpdate)
	mux.HandleFunc("DELETE /v1/points/{id}", s.handleRemove)
	mux.HandleFunc("POST /v1/indexes", s.handleAddIndex)
	mux.HandleFunc("POST /v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

type queryRequest struct {
	A  []float64 `json:"a"`
	B  float64   `json:"b"`
	Op string    `json:"op"`
	K  int       `json:"k,omitempty"`
}

func (r queryRequest) query() (core.Query, error) {
	var op core.Op
	switch r.Op {
	case "<=", "le", "LE", "":
		op = core.LE
	case ">=", "ge", "GE":
		op = core.GE
	default:
		return core.Query{}, fmt.Errorf("unknown op %q (use \"<=\" or \">=\")", r.Op)
	}
	return core.Query{A: r.A, B: r.B, Op: op}, nil
}

type statsJSON struct {
	N         int     `json:"n"`
	Accepted  int     `json:"accepted"`
	Verified  int     `json:"verified"`
	Matched   int     `json:"matched"`
	Rejected  int     `json:"rejected"`
	Pruned    float64 `json:"prunedFraction"`
	FellBack  bool    `json:"fellBack"`
	IndexUsed int     `json:"indexUsed"`
	PlanNanos int64   `json:"planNanos"`
	ExecNanos int64   `json:"execNanos"`
	CacheHit  bool    `json:"cacheHit"`
	Workers   int     `json:"workers,omitempty"`
}

func toStatsJSON(st core.Stats) statsJSON {
	return statsJSON{
		N: st.N, Accepted: st.Accepted, Verified: st.Verified,
		Matched: st.Matched, Rejected: st.Rejected,
		Pruned: st.PruningFraction(), FellBack: st.FellBack, IndexUsed: st.IndexUsed,
		PlanNanos: st.PlanNanos, ExecNanos: st.ExecNanos,
		CacheHit: st.CacheHit, Workers: st.Workers,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	ids, st, err := s.db.Query(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if ids == nil {
		ids = []uint32{}
	}
	reply(w, map[string]interface{}{"ids": ids, "stats": toStatsJSON(st)})
}

type batchRequest struct {
	A  []float64 `json:"a"`
	Bs []float64 `json:"bs"`
	Op string    `json:"op"`
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := queryRequest{A: req.A, Op: req.Op}.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Bs) == 0 {
		fail(w, http.StatusBadRequest, errors.New("batch requires at least one threshold in \"bs\""))
		return
	}
	ids, sts, err := s.db.QueryBatch(q.A, q.Op, req.Bs)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	type entry struct {
		B     float64   `json:"b"`
		IDs   []uint32  `json:"ids"`
		Stats statsJSON `json:"stats"`
	}
	entries := make([]entry, len(req.Bs))
	for i, b := range req.Bs {
		e := entry{B: b, IDs: ids[i], Stats: toStatsJSON(sts[i])}
		if e.IDs == nil {
			e.IDs = []uint32{}
		}
		entries[i] = e
	}
	reply(w, map[string]interface{}{"queries": entries})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	res, st, err := s.db.TopK(q, req.K)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	type item struct {
		ID       uint32  `json:"id"`
		Distance float64 `json:"distance"`
	}
	items := make([]item, len(res))
	for i, rr := range res {
		items[i] = item{rr.ID, rr.Distance}
	}
	reply(w, map[string]interface{}{"results": items, "stats": toStatsJSON(st)})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	count, st, err := s.db.Count(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	lo, hi, err := s.db.SelectivityBounds(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{
		"count":  count,
		"bounds": map[string]int{"lo": lo, "hi": hi},
		"stats":  toStatsJSON(st),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	plan, err := s.db.Explain(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{
		"indexUsed":  plan.IndexUsed,
		"reason":     plan.Reason,
		"compatible": plan.Compatible,
		"stretch":    plan.Stretch,
		"cos":        plan.Cos,
		"accepted":   plan.Accepted,
		"verified":   plan.Verified,
		"rejected":   plan.Rejected,
		"n":          plan.N,
		"bounds":     map[string]int{"lo": plan.BoundsLo, "hi": plan.BoundsHi},
		"text":       plan.String(),
	})
}

type pointRequest struct {
	Vec []float64 `json:"vec"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := s.db.Append(req.Vec)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{"id": id})
}

func pathID(r *http.Request) (uint32, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad point id %q", raw)
	}
	return uint32(id), nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	var req pointRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.db.Update(id, req.Vec); err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{"ok": true})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if err := s.db.Remove(id); err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{"ok": true})
}

type indexRequest struct {
	Normal []float64 `json:"normal"`
	Signs  []int8    `json:"signs"`
}

func (s *Server) handleAddIndex(w http.ResponseWriter, r *http.Request) {
	var req indexRequest
	if !decode(w, r, &req) {
		return
	}
	signs := vecmath.SignPattern(req.Signs)
	if len(signs) == 0 {
		signs = vecmath.FirstOctant(len(req.Normal))
	}
	added, err := s.db.AddNormal(req.Normal, signs)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{"added": added})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.db.Checkpoint(); err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	reply(w, map[string]interface{}{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	met := s.db.Metrics()
	hits, misses := s.db.PlanCacheCounters()
	reply(w, map[string]interface{}{
		"points":      s.db.Len(),
		"dim":         s.db.Dim(),
		"indexes":     s.db.NumIndexes(),
		"shards":      s.db.Shards(),
		"memoryBytes": s.db.MemoryBytes(),
		"metrics": map[string]interface{}{
			"queries":        met.Queries,
			"planNanos":      met.PlanNanos,
			"execNanos":      met.ExecNanos,
			"cacheHits":      met.CacheHits,
			"fellBack":       met.FellBack,
			"pointsPruned":   met.PointsPruned,
			"pointsVerified": met.PointsVerified,
		},
		"planCache": map[string]uint64{"hits": hits, "misses": misses},
	})
}

func decode(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

func fail(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
