// Package httpapi exposes a durable planar index store (package
// service) over a JSON HTTP API — the deployment surface of
// cmd/planarserve. All endpoints are rooted at /v1:
//
//	POST   /v1/query       {"a":[..],"b":n,"op":"<="}            → ids + stats
//	POST   /v1/query/batch {"a":[..],"bs":[..],"op":"<="}        → per-threshold ids + stats, one shared plan
//	POST   /v1/topk        {"a":[..],"b":n,"op":"<=","k":n}      → nearest points
//	POST   /v1/count       {"a":[..],"b":n,"op":"<="}            → exact count + bounds
//	POST   /v1/explain     {"a":[..],"b":n,"op":"<="}            → execution plan (no data touched)
//	POST   /v1/points      {"vec":[..]}                          → new point id
//	PUT    /v1/points/{id} {"vec":[..]}                          → re-key a point
//	DELETE /v1/points/{id}                                       → remove a point
//	POST   /v1/indexes     {"normal":[..],"signs":[1,-1,..]}     → add an index
//	POST   /v1/checkpoint                                        → snapshot + truncate log
//	GET    /v1/stats                                             → store/index statistics + pipeline metrics
//
// Replication and operations endpoints (see internal/replica and
// DESIGN.md §8):
//
//	GET  /v1/replication/snapshot                → consistent snapshot (binary) for replica bootstrap
//	GET  /v1/replication/stream?from=&max=&waitms= → committed records from LSN (long-poll)
//	GET  /v1/replication/status                  → role, LSN, replica lag
//	POST /v1/replication/promote                 → failover: stop applying, accept writes
//	GET  /healthz                                → process liveness
//	GET  /readyz                                 → store open; replicas: streaming with bounded lag
//
// Reads honor a monotonic read barrier: a request carrying
// X-Planar-Min-LSN waits (up to X-Planar-Wait-Ms, default 2000) until
// the store has committed/applied at least that LSN, answering 504 if
// it does not get there in time. Every read answers with X-Planar-LSN,
// a lower bound on the LSN the response reflects — clients chain it
// into the next request's barrier for read-your-writes across
// replicas. On a replica, mutation endpoints answer 403 with the
// primary's URL (or transparently proxy when enabled).
//
// Per-query stats come straight from the execution pipeline
// (internal/exec): interval sizes, plan/execute stage times in
// nanoseconds, and whether index selection hit the plan cache.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"planar/internal/core"
	"planar/internal/replica"
	"planar/internal/service"
	"planar/internal/vecmath"
)

// Server wraps a service.DB with HTTP handlers.
type Server struct {
	db      func() *service.DB
	rep     *replica.Replica
	primary string
	proxy   bool
	client  *http.Client
}

// Option customises a Server.
type Option func(*Server)

// WithReplica serves the store behind a replication loop: the handler
// follows the replica's current DB (the pointer changes across a
// re-bootstrap), /readyz gates on streaming with bounded lag, and
// mutations are rejected with the primary's URL — or proxied there
// when proxyWrites is set.
func WithReplica(rep *replica.Replica, primaryURL string, proxyWrites bool) Option {
	return func(s *Server) {
		s.rep = rep
		s.primary = primaryURL
		s.proxy = proxyWrites
		s.db = rep.DB
	}
}

// New creates a Server over an open DB. With WithReplica, db may be
// nil — the server follows the replica's store instead.
func New(db *service.DB, opts ...Option) (*Server, error) {
	s := &Server{client: &http.Client{Timeout: 30 * time.Second}}
	if db != nil {
		s.db = func() *service.DB { return db }
	}
	for _, o := range opts {
		o(s)
	}
	if s.db == nil {
		return nil, errors.New("httpapi: nil db")
	}
	return s, nil
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	read, write := s.readEndpoint, s.writeEndpoint
	mux.HandleFunc("POST /v1/query", read(s.handleQuery))
	mux.HandleFunc("POST /v1/query/batch", read(s.handleQueryBatch))
	mux.HandleFunc("POST /v1/topk", read(s.handleTopK))
	mux.HandleFunc("POST /v1/count", read(s.handleCount))
	mux.HandleFunc("POST /v1/explain", read(s.handleExplain))
	mux.HandleFunc("POST /v1/points", write(s.handleAppend))
	mux.HandleFunc("PUT /v1/points/{id}", write(s.handleUpdate))
	mux.HandleFunc("DELETE /v1/points/{id}", write(s.handleRemove))
	mux.HandleFunc("POST /v1/indexes", write(s.handleAddIndex))
	mux.HandleFunc("POST /v1/checkpoint", write(s.handleCheckpoint))
	mux.HandleFunc("GET /v1/stats", read(s.handleStats))
	mux.HandleFunc("GET /v1/replication/snapshot", s.withDB(s.handleReplSnapshot))
	mux.HandleFunc("GET /v1/replication/stream", s.withDB(s.handleReplStream))
	mux.HandleFunc("GET /v1/replication/status", s.handleReplStatus)
	mux.HandleFunc("POST /v1/replication/promote", s.handleReplPromote)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// dbKey carries the request's resolved store through the context so a
// re-bootstrap swapping the replica's DB mid-request cannot split one
// handler across two stores.
type dbKey struct{}

// store returns the DB resolved for this request by withDB.
func (s *Server) store(r *http.Request) *service.DB {
	return r.Context().Value(dbKey{}).(*service.DB)
}

// withDB resolves the current store once per request, answering 503
// while a replica is still bootstrapping its first snapshot.
func (s *Server) withDB(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		db := s.db()
		if db == nil {
			fail(w, http.StatusServiceUnavailable, errors.New("store not ready (bootstrapping)"))
			return
		}
		next(w, r.WithContext(context.WithValue(r.Context(), dbKey{}, db)))
	}
}

// readEndpoint wraps a read handler with the store resolution and the
// monotonic read barrier.
func (s *Server) readEndpoint(next http.HandlerFunc) http.HandlerFunc {
	return s.withDB(func(w http.ResponseWriter, r *http.Request) {
		db := s.store(r)
		if raw := r.Header.Get("X-Planar-Min-LSN"); raw != "" {
			min, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				fail(w, http.StatusBadRequest, fmt.Errorf("bad X-Planar-Min-LSN %q", raw))
				return
			}
			waitMs := int64(2000)
			if v := r.Header.Get("X-Planar-Wait-Ms"); v != "" {
				if waitMs, err = strconv.ParseInt(v, 10, 64); err != nil || waitMs < 0 {
					fail(w, http.StatusBadRequest, fmt.Errorf("bad X-Planar-Wait-Ms %q", v))
					return
				}
			}
			ctx, cancel := context.WithTimeout(r.Context(), time.Duration(waitMs)*time.Millisecond)
			err = db.WaitLSN(ctx, min)
			cancel()
			if err != nil {
				fail(w, http.StatusGatewayTimeout,
					fmt.Errorf("read barrier: store at LSN %d, %d not reached: %v", db.LastLSN(), min, err))
				return
			}
		}
		w.Header().Set("X-Planar-LSN", strconv.FormatUint(db.LastLSN(), 10))
		next(w, r)
	})
}

// writeEndpoint wraps a mutation handler with the replica write
// guard: replicas reject (403 + primary URL) or proxy upstream until
// promoted.
func (s *Server) writeEndpoint(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.rep != nil {
			db := s.db()
			if db == nil || db.ReadOnly() {
				if s.proxy && s.primary != "" {
					s.proxyToPrimary(w, r)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusForbidden)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error":   "read-only replica; write to the primary",
					"primary": s.primary,
				})
				return
			}
		}
		s.withDB(next)(w, r)
	}
}

// proxyToPrimary forwards a mutation verbatim and relays the answer.
func (s *Server) proxyToPrimary(w http.ResponseWriter, r *http.Request) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, s.primary+r.URL.RequestURI(), r.Body)
	if err != nil {
		fail(w, http.StatusBadGateway, err)
		return
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	resp, err := s.client.Do(req)
	if err != nil {
		fail(w, http.StatusBadGateway, fmt.Errorf("proxying to primary: %v", err))
		return
	}
	defer func() { _ = resp.Body.Close() }()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("X-Planar-Proxied", "primary")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

type queryRequest struct {
	A  []float64 `json:"a"`
	B  float64   `json:"b"`
	Op string    `json:"op"`
	K  int       `json:"k,omitempty"`
}

func (r queryRequest) query() (core.Query, error) {
	var op core.Op
	switch r.Op {
	case "<=", "le", "LE", "":
		op = core.LE
	case ">=", "ge", "GE":
		op = core.GE
	default:
		return core.Query{}, fmt.Errorf("unknown op %q (use \"<=\" or \">=\")", r.Op)
	}
	return core.Query{A: r.A, B: r.B, Op: op}, nil
}

type statsJSON struct {
	N         int     `json:"n"`
	Accepted  int     `json:"accepted"`
	Verified  int     `json:"verified"`
	Matched   int     `json:"matched"`
	Rejected  int     `json:"rejected"`
	Pruned    float64 `json:"prunedFraction"`
	FellBack  bool    `json:"fellBack"`
	IndexUsed int     `json:"indexUsed"`
	PlanNanos int64   `json:"planNanos"`
	ExecNanos int64   `json:"execNanos"`
	CacheHit  bool    `json:"cacheHit"`
	Workers   int     `json:"workers,omitempty"`
}

func toStatsJSON(st core.Stats) statsJSON {
	return statsJSON{
		N: st.N, Accepted: st.Accepted, Verified: st.Verified,
		Matched: st.Matched, Rejected: st.Rejected,
		Pruned: st.PruningFraction(), FellBack: st.FellBack, IndexUsed: st.IndexUsed,
		PlanNanos: st.PlanNanos, ExecNanos: st.ExecNanos,
		CacheHit: st.CacheHit, Workers: st.Workers,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	ids, st, err := s.store(r).Query(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if ids == nil {
		ids = []uint32{}
	}
	reply(w, map[string]interface{}{"ids": ids, "stats": toStatsJSON(st)})
}

type batchRequest struct {
	A  []float64 `json:"a"`
	Bs []float64 `json:"bs"`
	Op string    `json:"op"`
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := queryRequest{A: req.A, Op: req.Op}.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Bs) == 0 {
		fail(w, http.StatusBadRequest, errors.New("batch requires at least one threshold in \"bs\""))
		return
	}
	ids, sts, err := s.store(r).QueryBatch(q.A, q.Op, req.Bs)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	type entry struct {
		B     float64   `json:"b"`
		IDs   []uint32  `json:"ids"`
		Stats statsJSON `json:"stats"`
	}
	entries := make([]entry, len(req.Bs))
	for i, b := range req.Bs {
		e := entry{B: b, IDs: ids[i], Stats: toStatsJSON(sts[i])}
		if e.IDs == nil {
			e.IDs = []uint32{}
		}
		entries[i] = e
	}
	reply(w, map[string]interface{}{"queries": entries})
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	res, st, err := s.store(r).TopK(q, req.K)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	type item struct {
		ID       uint32  `json:"id"`
		Distance float64 `json:"distance"`
	}
	items := make([]item, len(res))
	for i, rr := range res {
		items[i] = item{rr.ID, rr.Distance}
	}
	reply(w, map[string]interface{}{"results": items, "stats": toStatsJSON(st)})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	count, st, err := s.store(r).Count(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	lo, hi, err := s.store(r).SelectivityBounds(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{
		"count":  count,
		"bounds": map[string]int{"lo": lo, "hi": hi},
		"stats":  toStatsJSON(st),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	q, err := req.query()
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	plan, err := s.store(r).Explain(q)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{
		"indexUsed":  plan.IndexUsed,
		"reason":     plan.Reason,
		"compatible": plan.Compatible,
		"stretch":    plan.Stretch,
		"cos":        plan.Cos,
		"accepted":   plan.Accepted,
		"verified":   plan.Verified,
		"rejected":   plan.Rejected,
		"n":          plan.N,
		"bounds":     map[string]int{"lo": plan.BoundsLo, "hi": plan.BoundsHi},
		"text":       plan.String(),
	})
}

type pointRequest struct {
	Vec []float64 `json:"vec"`
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req pointRequest
	if !decode(w, r, &req) {
		return
	}
	id, err := s.store(r).Append(req.Vec)
	if err != nil {
		fail(w, mutationStatus(err), err)
		return
	}
	reply(w, map[string]interface{}{"id": id})
}

// mutationStatus maps a write error to its HTTP status: a shed by a
// full ingest ring is 429 (retry later), anything else is the caller's
// fault.
func mutationStatus(err error) int {
	if errors.Is(err, service.ErrBackpressure) {
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

func pathID(r *http.Request) (uint32, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad point id %q", raw)
	}
	return uint32(id), nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	var req pointRequest
	if !decode(w, r, &req) {
		return
	}
	if err := s.store(r).Update(id, req.Vec); err != nil {
		fail(w, mutationStatus(err), err)
		return
	}
	reply(w, map[string]interface{}{"ok": true})
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	id, err := pathID(r)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	if err := s.store(r).Remove(id); err != nil {
		fail(w, mutationStatus(err), err)
		return
	}
	reply(w, map[string]interface{}{"ok": true})
}

type indexRequest struct {
	Normal []float64 `json:"normal"`
	Signs  []int8    `json:"signs"`
}

func (s *Server) handleAddIndex(w http.ResponseWriter, r *http.Request) {
	var req indexRequest
	if !decode(w, r, &req) {
		return
	}
	signs := vecmath.SignPattern(req.Signs)
	if len(signs) == 0 {
		signs = vecmath.FirstOctant(len(req.Normal))
	}
	added, err := s.store(r).AddNormal(req.Normal, signs)
	if err != nil {
		fail(w, http.StatusBadRequest, err)
		return
	}
	reply(w, map[string]interface{}{"added": added})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if err := s.store(r).Checkpoint(); err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	reply(w, map[string]interface{}{"ok": true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	db := s.store(r)
	met := db.Metrics()
	hits, misses := db.PlanCacheCounters()
	body := map[string]interface{}{
		"points":      db.Len(),
		"dim":         db.Dim(),
		"indexes":     db.NumIndexes(),
		"shards":      db.Shards(),
		"memoryBytes": db.MemoryBytes(),
		"role":        s.role(),
		"lsn":         db.LastLSN(),
		"readOnly":    db.ReadOnly(),
		"metrics": map[string]interface{}{
			"queries":        met.Queries,
			"planNanos":      met.PlanNanos,
			"execNanos":      met.ExecNanos,
			"cacheHits":      met.CacheHits,
			"fellBack":       met.FellBack,
			"pointsPruned":   met.PointsPruned,
			"pointsVerified": met.PointsVerified,
		},
		"planCache": map[string]uint64{"hits": hits, "misses": misses},
	}
	if ist, ok := db.IngestStats(); ok {
		avg := 0.0
		if ist.Batches > 0 {
			avg = float64(ist.Records) / float64(ist.Batches)
		}
		body["ingest"] = map[string]interface{}{
			"submitted":    ist.Submitted,
			"shed":         ist.Shed,
			"queueDepth":   ist.QueueDepth,
			"batches":      ist.Batches,
			"records":      ist.Records,
			"avgBatch":     avg,
			"fsyncsSaved":  ist.FsyncsSaved,
			"batchSizes":   ist.BatchSizes,
			"ackP50Micros": ist.AckP50.Microseconds(),
			"ackP99Micros": ist.AckP99.Microseconds(),
		}
	}
	if st, ok := db.PageStats(); ok {
		body["pageCache"] = map[string]interface{}{
			"hits":             st.Hits,
			"misses":           st.Misses,
			"evictions":        st.Evictions,
			"hitRatio":         st.HitRatio(),
			"residentPages":    st.Resident,
			"targetFrames":     st.Target,
			"totalPages":       st.Pages,
			"checkpointLSN":    st.CheckpointLSN,
			"dirtyFrames":      st.DirtyFrames,
			"dirtySkips":       st.DirtySkips,
			"softOverflows":    st.SoftOverflows,
			"writebackPages":   st.WritebackPages,
			"writebackBytes":   st.WritebackBytes,
			"writebackErrors":  st.WritebackErrors,
			"incrementalPages": st.IncrementalPages,
			"lastCheckpointMs": st.LastCheckpointMs,
		}
	}
	if s.rep != nil {
		body["replication"] = s.rep.Status()
	}
	reply(w, body)
}

// role names what this server is right now: primary, replica, or a
// replica that has been promoted.
func (s *Server) role() string {
	if s.rep == nil {
		return "primary"
	}
	if db := s.db(); db != nil && !db.ReadOnly() {
		return "promoted"
	}
	return "replica"
}

// handleReplSnapshot streams a consistent snapshot of the whole store
// for replica bootstrap: a JSON header line (shard topology + the LSN
// the cut is valid at) followed by one binary snapshot per shard.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	st := s.store(r).CaptureState()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Planar-LSN", strconv.FormatUint(st.LSN, 10))
	if err := replica.WriteSnapshot(w, st); err != nil {
		// Headers are gone; the torn body fails the client's CRC check.
		return
	}
}

// handleReplStream answers a long-poll for committed records from
// LSN ?from, holding an empty poll up to ?waitms for new commits.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	db := s.store(r)
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		fail(w, http.StatusBadRequest, fmt.Errorf("bad from %q (first valid LSN is 1)", q.Get("from")))
		return
	}
	max := replica.MaxBatch
	if v := q.Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil || max <= 0 || max > replica.MaxBatch {
			fail(w, http.StatusBadRequest, fmt.Errorf("bad max %q (1..%d)", v, replica.MaxBatch))
			return
		}
	}
	if v := q.Get("waitms"); v != "" && from > db.LastLSN() {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 || ms > 60_000 {
			fail(w, http.StatusBadRequest, fmt.Errorf("bad waitms %q (0..60000)", v))
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		_ = db.WaitLSN(ctx, from) // a timeout just answers an empty batch
		cancel()
	}
	recs, tooOld, err := db.FeedRead(from, max)
	if err != nil {
		fail(w, http.StatusInternalServerError, err)
		return
	}
	last := db.LastLSN()
	h := replica.StreamHeader{From: from, Last: last}
	if from > last+1 {
		// The follower claims records this store never committed.
		h.Future, recs = true, nil
	} else {
		h.TooOld = tooOld
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Planar-LSN", strconv.FormatUint(last, 10))
	_ = replica.WriteStream(w, h, recs)
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	body := map[string]interface{}{"role": s.role()}
	if db := s.db(); db != nil {
		body["lsn"] = db.LastLSN()
		body["readOnly"] = db.ReadOnly()
		body["points"] = db.Len()
	}
	if s.rep != nil {
		body["primary"] = s.primary
		body["replica"] = s.rep.Status()
	}
	reply(w, body)
}

// handleReplPromote is failover: the replica stops applying, lifts
// its read-only guard, and starts accepting writes.
func (s *Server) handleReplPromote(w http.ResponseWriter, r *http.Request) {
	if s.rep == nil {
		fail(w, http.StatusBadRequest, errors.New("not a replica"))
		return
	}
	db := s.rep.Promote()
	if db == nil {
		fail(w, http.StatusConflict, errors.New("no local store to promote (never bootstrapped)"))
		return
	}
	reply(w, map[string]interface{}{"ok": true, "role": "promoted", "lsn": db.LastLSN()})
}

// handleHealthz is pure liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reply(w, map[string]interface{}{"ok": true})
}

// handleReadyz gates load-balancer traffic: the store must be open,
// and a replica must be streaming (or promoted) with lag within its
// configured bound.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.rep != nil {
		if ok, reason := s.rep.Ready(); !ok {
			fail(w, http.StatusServiceUnavailable, errors.New(reason))
			return
		}
		reply(w, map[string]interface{}{"ready": true, "role": s.role(), "replica": s.rep.Status()})
		return
	}
	db := s.db()
	if db == nil {
		fail(w, http.StatusServiceUnavailable, errors.New("store not open"))
		return
	}
	reply(w, map[string]interface{}{"ready": true, "role": s.role(), "lsn": db.LastLSN()})
}

func decode(w http.ResponseWriter, r *http.Request, into interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}

func reply(w http.ResponseWriter, body interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(body)
}

func fail(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
