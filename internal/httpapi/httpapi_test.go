package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"planar/internal/service"
)

func testServer(t *testing.T) (*httptest.Server, *service.DB) {
	t.Helper()
	db, err := service.Open(t.TempDir(), service.Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	api, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts, db
}

func call(t *testing.T, ts *httptest.Server, method, path string, body interface{}, wantStatus int) map[string]interface{} {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: status %d want %d", method, path, resp.StatusCode, wantStatus)
	}
	var out map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, path, err)
	}
	return out
}

func TestEndToEndFlow(t *testing.T) {
	ts, _ := testServer(t)

	// Install an index.
	out := call(t, ts, "POST", "/v1/indexes",
		map[string]interface{}{"normal": []float64{1, 2}}, http.StatusOK)
	if out["added"] != true {
		t.Fatalf("index not added: %v", out)
	}

	// Insert points.
	var ids []float64
	for _, v := range [][]float64{{1, 1}, {5, 5}, {9, 1}, {2, 8}} {
		out := call(t, ts, "POST", "/v1/points",
			map[string]interface{}{"vec": v}, http.StatusOK)
		ids = append(ids, out["id"].(float64))
	}

	// Query: x + y <= 7 matches {1,1} and... (5,5)=10 no, (9,1)=10 no, (2,8)=10 no.
	out = call(t, ts, "POST", "/v1/query",
		map[string]interface{}{"a": []float64{1, 1}, "b": 7, "op": "<="}, http.StatusOK)
	got := out["ids"].([]interface{})
	if len(got) != 1 || got[0].(float64) != ids[0] {
		t.Fatalf("query ids=%v want [%v]", got, ids[0])
	}

	// Count with bounds.
	out = call(t, ts, "POST", "/v1/count",
		map[string]interface{}{"a": []float64{1, 1}, "b": 7}, http.StatusOK)
	if out["count"].(float64) != 1 {
		t.Fatalf("count=%v", out["count"])
	}
	bounds := out["bounds"].(map[string]interface{})
	if bounds["lo"].(float64) > 1 || bounds["hi"].(float64) < 1 {
		t.Fatalf("bounds=%v", bounds)
	}

	// Top-k.
	out = call(t, ts, "POST", "/v1/topk",
		map[string]interface{}{"a": []float64{1, 1}, "b": 12, "op": "<=", "k": 2}, http.StatusOK)
	results := out["results"].([]interface{})
	if len(results) != 2 {
		t.Fatalf("topk results=%v", results)
	}

	// Update then re-query.
	call(t, ts, "PUT", fmt.Sprintf("/v1/points/%.0f", ids[0]),
		map[string]interface{}{"vec": []float64{50, 50}}, http.StatusOK)
	out = call(t, ts, "POST", "/v1/query",
		map[string]interface{}{"a": []float64{1, 1}, "b": 7}, http.StatusOK)
	if len(out["ids"].([]interface{})) != 0 {
		t.Fatalf("after update: ids=%v", out["ids"])
	}

	// Remove.
	call(t, ts, "DELETE", fmt.Sprintf("/v1/points/%.0f", ids[1]), nil, http.StatusOK)
	out = call(t, ts, "GET", "/v1/stats", nil, http.StatusOK)
	if out["points"].(float64) != 3 || out["indexes"].(float64) != 1 {
		t.Fatalf("stats=%v", out)
	}

	// Explain.
	out = call(t, ts, "POST", "/v1/explain",
		map[string]interface{}{"a": []float64{1, 1}, "b": 7}, http.StatusOK)
	if out["indexUsed"].(float64) != 0 || out["text"] == "" {
		t.Fatalf("explain=%v", out)
	}

	// Checkpoint.
	call(t, ts, "POST", "/v1/checkpoint", nil, http.StatusOK)
}

func TestErrorPaths(t *testing.T) {
	ts, _ := testServer(t)
	// Malformed JSON.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/query", bytes.NewReader([]byte("{oops")))
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
	// Unknown op.
	call(t, ts, "POST", "/v1/query",
		map[string]interface{}{"a": []float64{1, 1}, "b": 1, "op": "=="}, http.StatusBadRequest)
	// Wrong dimension.
	call(t, ts, "POST", "/v1/query",
		map[string]interface{}{"a": []float64{1}, "b": 1}, http.StatusBadRequest)
	// Bad point id.
	call(t, ts, "PUT", "/v1/points/notanid",
		map[string]interface{}{"vec": []float64{1, 2}}, http.StatusBadRequest)
	// Update of unknown point.
	call(t, ts, "PUT", "/v1/points/999",
		map[string]interface{}{"vec": []float64{1, 2}}, http.StatusBadRequest)
	// Remove of unknown point.
	call(t, ts, "DELETE", "/v1/points/999", nil, http.StatusBadRequest)
	// Bad index normal.
	call(t, ts, "POST", "/v1/indexes",
		map[string]interface{}{"normal": []float64{-1, 1}}, http.StatusBadRequest)
	// TopK with k=0.
	call(t, ts, "POST", "/v1/topk",
		map[string]interface{}{"a": []float64{1, 1}, "b": 1, "k": 0}, http.StatusBadRequest)
	// Unknown fields rejected.
	call(t, ts, "POST", "/v1/query",
		map[string]interface{}{"a": []float64{1, 1}, "b": 1, "bogus": 1}, http.StatusBadRequest)
}

func TestDurabilityThroughAPI(t *testing.T) {
	dir := t.TempDir()
	db, err := service.Open(dir, service.Options{Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	api, _ := New(db)
	ts := httptest.NewServer(api.Handler())
	call(t, ts, "POST", "/v1/points", map[string]interface{}{"vec": []float64{42}}, http.StatusOK)
	call(t, ts, "POST", "/v1/checkpoint", nil, http.StatusOK)
	ts.Close()
	db.Close()

	db2, err := service.Open(dir, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 1 {
		t.Fatalf("Len=%d after reopen", db2.Len())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil db accepted")
	}
}

// TestShardedServer runs the same HTTP surface against a sharded DB:
// every endpoint must work unchanged, and /v1/stats reports the shard
// count.
func TestShardedServer(t *testing.T) {
	db, err := service.Open(t.TempDir(), service.Options{Dim: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	api, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)

	call(t, ts, "POST", "/v1/indexes",
		map[string]interface{}{"normal": []float64{1, 2}}, http.StatusOK)
	for _, v := range [][]float64{{1, 1}, {5, 5}, {9, 1}, {2, 8}} {
		call(t, ts, "POST", "/v1/points", map[string]interface{}{"vec": v}, http.StatusOK)
	}

	out := call(t, ts, "POST", "/v1/query",
		map[string]interface{}{"a": []float64{1, 1}, "b": 7}, http.StatusOK)
	if ids := out["ids"].([]interface{}); len(ids) != 1 || ids[0].(float64) != 0 {
		t.Fatalf("sharded query ids=%v", out["ids"])
	}
	out = call(t, ts, "POST", "/v1/count",
		map[string]interface{}{"a": []float64{1, 1}, "b": 11}, http.StatusOK)
	if out["count"].(float64) != 4 {
		t.Fatalf("sharded count=%v", out)
	}
	out = call(t, ts, "GET", "/v1/stats", nil, http.StatusOK)
	if out["points"].(float64) != 4 || out["shards"].(float64) != 4 {
		t.Fatalf("sharded stats=%v", out)
	}
	call(t, ts, "POST", "/v1/checkpoint", nil, http.StatusOK)
}

// TestPagedStats checks that /v1/stats surfaces the page-cache block
// for paged stores and omits it for snapshot-mode stores.
func TestPagedStats(t *testing.T) {
	ts, _ := testServer(t)
	out := call(t, ts, "GET", "/v1/stats", nil, http.StatusOK)
	if _, ok := out["pageCache"]; ok {
		t.Fatalf("snapshot-mode stats should not report pageCache: %v", out)
	}

	db, err := service.Open(t.TempDir(), service.Options{Dim: 2, Paged: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	api, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(api.Handler())
	t.Cleanup(pts.Close)

	call(t, pts, "POST", "/v1/indexes",
		map[string]interface{}{"normal": []float64{1, 2}}, http.StatusOK)
	for i := 0; i < 50; i++ {
		call(t, pts, "POST", "/v1/points",
			map[string]interface{}{"vec": []float64{float64(i), float64(i % 7)}}, http.StatusOK)
	}
	call(t, pts, "POST", "/v1/checkpoint", nil, http.StatusOK)

	out = call(t, pts, "GET", "/v1/stats", nil, http.StatusOK)
	pc, ok := out["pageCache"].(map[string]interface{})
	if !ok {
		t.Fatalf("paged stats missing pageCache: %v", out)
	}
	if pc["totalPages"].(float64) <= 0 {
		t.Fatalf("pageCache reports no pages: %v", pc)
	}
	if _, ok := pc["hitRatio"].(float64); !ok {
		t.Fatalf("pageCache missing hitRatio: %v", pc)
	}
	// The background-writeback and incremental-checkpoint counters
	// must always be present (zero is fine).
	for _, key := range []string{
		"dirtyFrames", "dirtySkips", "softOverflows",
		"writebackPages", "writebackBytes", "writebackErrors",
		"incrementalPages", "lastCheckpointMs",
	} {
		if _, ok := pc[key].(float64); !ok {
			t.Fatalf("pageCache missing %s: %v", key, pc)
		}
	}
	if pc["incrementalPages"].(float64) <= 0 {
		t.Fatalf("checkpoint after 50 appends wrote no pages: %v", pc)
	}
	if pc["lastCheckpointMs"].(float64) <= 0 {
		t.Fatalf("checkpoint reported no duration: %v", pc)
	}
}
