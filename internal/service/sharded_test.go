package service

import (
	"math/rand"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// shardedQueryIDs goes through the DB-level query path (which works
// in both modes), unlike queryIDs which reaches into Multi.
func shardedQueryIDs(t *testing.T, db *DB, q core.Query) []uint32 {
	t.Helper()
	ids, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestShardedMatchesSingle drives the same mutation stream through a
// single-store DB and a sharded DB and checks every DB-level query
// method answers identically — the service-layer cut of the golden
// cross-path suite in internal/shard.
func TestShardedMatchesSingle(t *testing.T) {
	single, err := Open(t.TempDir(), Options{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	sharded, err := Open(t.TempDir(), Options{Dim: 3, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if single.Sharded() || !sharded.Sharded() || sharded.Shards() != 4 {
		t.Fatalf("mode detection wrong: single=%v sharded=%v/%d",
			single.Sharded(), sharded.Sharded(), sharded.Shards())
	}
	if sharded.Multi() != nil {
		t.Fatal("Multi() must be nil in sharded mode")
	}

	oct := vecmath.FirstOctant(3)
	for _, db := range []*DB{single, sharded} {
		if _, err := db.AddNormal([]float64{1, 2, 1}, oct); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 800; i++ {
		v := []float64{rng.Float64() * 50, rng.Float64() * 50, rng.Float64() * 50}
		a, err := single.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sharded.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("append %d: single id %d, sharded id %d", i, a, b)
		}
	}
	for i := 0; i < 120; i++ {
		id := uint32(rng.Intn(800))
		if !single.Multi().Store().Live(id) {
			continue
		}
		if i%3 == 0 {
			if err := single.Remove(id); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Remove(id); err != nil {
				t.Fatal(err)
			}
		} else {
			v := []float64{rng.Float64() * 50, rng.Float64() * 50, rng.Float64() * 50}
			if err := single.Update(id, v); err != nil {
				t.Fatal(err)
			}
			if err := sharded.Update(id, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if single.Len() != sharded.Len() {
		t.Fatalf("Len %d vs %d", single.Len(), sharded.Len())
	}

	for trial := 0; trial < 25; trial++ {
		q := core.Query{
			A:  []float64{rng.Float64() * 4, rng.Float64() * 4, rng.Float64() * 4},
			B:  rng.Float64() * 300,
			Op: core.LE,
		}
		if trial%2 == 1 {
			q.Op = core.GE
		}
		want := shardedQueryIDs(t, single, q)
		got := shardedQueryIDs(t, sharded, q)
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d ids", trial, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d: id mismatch at %d", trial, i)
			}
		}
		n1, _, err := single.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		n2, _, err := sharded.Count(q)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != n2 {
			t.Fatalf("trial %d: count %d vs %d", trial, n1, n2)
		}
		lo, hi, err := sharded.SelectivityBounds(q)
		if err != nil {
			t.Fatal(err)
		}
		if lo > n1 || hi < n1 {
			t.Fatalf("trial %d: bounds [%d,%d] exclude %d", trial, lo, hi, n1)
		}
		if q.Op == core.LE {
			k := 1 + rng.Intn(8)
			r1, _, err := single.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			r2, _, err := sharded.TopK(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(r1) != len(r2) {
				t.Fatalf("trial %d: topk %d vs %d", trial, len(r1), len(r2))
			}
			for i := range r1 {
				if r1[i].ID != r2[i].ID || r1[i].Distance != r2[i].Distance {
					t.Fatalf("trial %d: topk[%d] differs", trial, i)
				}
			}
		}
	}
	met := sharded.Metrics()
	if met.Queries == 0 {
		t.Fatal("sharded mode did not record metrics")
	}
}

// TestShardedDurabilityAcrossReopen checkpoints a sharded DB, keeps
// mutating, closes, and reopens with zero options — the stored
// shards.meta supplies the shard count and dimensionality.
func TestShardedDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Dim: 2, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 250; i++ {
		if _, err := db.Append([]float64{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := db.Update(uint32(i), []float64{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Remove(7); err != nil {
		t.Fatal(err)
	}
	q := core.Query{A: []float64{1, 2}, B: 16, Op: core.LE}
	want := shardedQueryIDs(t, db, q)
	wantLen := db.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if !db2.Sharded() || db2.Shards() != 3 || db2.Dim() != 2 {
		t.Fatalf("reopened sharded=%v shards=%d dim=%d", db2.Sharded(), db2.Shards(), db2.Dim())
	}
	if db2.Len() != wantLen || db2.NumIndexes() != 1 {
		t.Fatalf("reopened Len=%d indexes=%d want %d/1", db2.Len(), db2.NumIndexes(), wantLen)
	}
	got := shardedQueryIDs(t, db2, q)
	if len(got) != len(want) {
		t.Fatalf("reopened answer %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id mismatch at %d", i)
		}
	}
}

// TestReshardGuards: a single-store directory cannot be reopened with
// -shards, and a sharded directory reopens sharded even without the
// option.
func TestReshardGuards(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Open(dir, Options{Shards: 4}); err == nil {
		t.Fatal("resharding a single-store directory accepted")
	}

	sdir := t.TempDir()
	sdb, err := Open(sdir, Options{Dim: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sdb.Close()
	back, err := Open(sdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if !back.Sharded() || back.Shards() != 2 {
		t.Fatalf("sharded layout not detected on reopen: %v/%d", back.Sharded(), back.Shards())
	}
	if _, err := Open(sdir, Options{Shards: 5}); err == nil {
		t.Fatal("shard-count mismatch accepted")
	}
}
