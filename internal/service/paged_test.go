package service

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"planar/internal/core"
	"planar/internal/vecmath"
)

// pagedGolden drives a paged DB and a plain snapshot-mode DB through
// one identical mutation stream and compares query answers.
type pagedGolden struct {
	t     *testing.T
	rng   *rand.Rand
	dim   int
	paged *DB
	plain *DB
	live  []uint32
}

func (g *pagedGolden) vec() []float64 {
	v := make([]float64, g.dim)
	for i := range v {
		v[i] = g.rng.Float64() * 50
	}
	return v
}

func (g *pagedGolden) append() {
	v := g.vec()
	id1, err := g.paged.Append(v)
	if err != nil {
		g.t.Fatal(err)
	}
	if _, err := g.plain.Append(v); err != nil {
		g.t.Fatal(err)
	}
	g.live = append(g.live, id1)
}

func (g *pagedGolden) mutate(n int) {
	for i := 0; i < n; i++ {
		switch r := g.rng.Intn(10); {
		case r < 6 || len(g.live) == 0:
			g.append()
		case r < 8:
			j := g.rng.Intn(len(g.live))
			v := g.vec()
			if err := g.paged.Update(g.live[j], v); err != nil {
				g.t.Fatal(err)
			}
			if err := g.plain.Update(g.live[j], v); err != nil {
				g.t.Fatal(err)
			}
		default:
			j := g.rng.Intn(len(g.live))
			if err := g.paged.Remove(g.live[j]); err != nil {
				g.t.Fatal(err)
			}
			if err := g.plain.Remove(g.live[j]); err != nil {
				g.t.Fatal(err)
			}
			g.live[j] = g.live[len(g.live)-1]
			g.live = g.live[:len(g.live)-1]
		}
	}
}

func (g *pagedGolden) compare(queries int) {
	g.t.Helper()
	if gl, pl := g.paged.Len(), g.plain.Len(); gl != pl {
		g.t.Fatalf("Len: paged %d, plain %d", gl, pl)
	}
	for q := 0; q < queries; q++ {
		a := make([]float64, g.dim)
		for i := range a {
			a[i] = 0.01 + g.rng.Float64()
		}
		b := g.rng.Float64() * 50 * float64(g.dim)
		qry := core.Query{A: a, B: b, Op: core.LE}
		got, _, err := g.paged.Query(qry)
		if err != nil {
			g.t.Fatal(err)
		}
		want, _, err := g.plain.Query(qry)
		if err != nil {
			g.t.Fatal(err)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			g.t.Fatalf("query %d: paged %d ids, plain %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				g.t.Fatalf("query %d: id %d differs (paged %d, plain %d)", q, i, got[i], want[i])
			}
		}
	}
}

// TestPagedServiceEndToEnd is the paged tier's kill-and-reopen e2e:
// a paged DB with a cache far smaller than the dataset must answer
// every query identically to a snapshot-mode golden twin, survive a
// checkpoint + close + reopen cycle with trees coming back in paged
// mode, and replay only the WAL records the checkpoint does not
// cover.
func TestPagedServiceEndToEnd(t *testing.T) {
	root := t.TempDir()
	const dim = 6
	// The cache budget is below the pager's floor, so it clamps to the
	// minimum (32 frames) — far fewer than the trees' page count.
	const tinyCache = 1 << 15
	paged, err := Open(filepath.Join(root, "paged"), Options{
		Dim: dim, Paged: true, PageCacheBytes: tinyCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(filepath.Join(root, "plain"), Options{Dim: dim})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if !paged.Paged() {
		t.Fatal("Paged option did not select the paged tier")
	}
	if _, err := os.Stat(filepath.Join(root, "paged", pagesFile)); err != nil {
		t.Fatalf("page file missing: %v", err)
	}

	g := &pagedGolden{t: t, rng: rand.New(rand.NewSource(20140808)), dim: dim, paged: paged, plain: plain}

	signs := make(vecmath.SignPattern, dim)
	for i := range signs {
		signs[i] = 1
	}
	addNormal := func(seed int64) {
		nrng := rand.New(rand.NewSource(seed))
		normal := make([]float64, dim)
		for i := range normal {
			normal[i] = 0.1 + nrng.Float64()
		}
		if _, err := g.paged.AddNormal(normal, signs); err != nil {
			t.Fatal(err)
		}
		if _, err := g.plain.AddNormal(normal, signs); err != nil {
			t.Fatal(err)
		}
	}

	g.mutate(8000)
	addNormal(1)
	addNormal(2)
	g.mutate(8000)
	g.compare(10)

	// First durable checkpoint, then a tail of mutations that only the
	// WAL holds.
	if err := paged.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	const tail = 137
	g.mutate(tail)
	g.compare(5)

	// Kill and reopen: replay must apply exactly the post-checkpoint
	// tail, and the restored trees must run in paged-arena mode.
	if err := paged.Close(); err != nil {
		t.Fatal(err)
	}
	paged, err = Open(filepath.Join(root, "paged"), Options{PageCacheBytes: tinyCache})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	g.paged = paged
	if !paged.Paged() {
		t.Fatal("directory with a page file did not reopen paged")
	}
	if got := paged.ReplayedRecords(); got != tail {
		t.Fatalf("reopen replayed %d WAL records, want exactly the post-checkpoint %d", got, tail)
	}
	for i := 0; i < paged.Multi().NumIndexes(); i++ {
		if !paged.Multi().Index(i).Tree().Paged() {
			t.Fatalf("restored index %d is not paged", i)
		}
	}
	g.compare(15)

	// The cache must be faulting pages in, not holding the whole file.
	st, ok := paged.PageStats()
	if !ok {
		t.Fatal("PageStats not available on the paged tier")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("page cache idle after queries: %+v", st)
	}

	// Keep mutating after the reopen (copy-on-write against the new
	// checkpoint), checkpoint again, reopen again.
	g.mutate(1000)
	g.compare(10)
	if err := paged.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := paged.Close(); err != nil {
		t.Fatal(err)
	}
	paged, err = Open(filepath.Join(root, "paged"), Options{PageCacheBytes: tinyCache})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	g.paged = paged
	if got := paged.ReplayedRecords(); got != 0 {
		t.Fatalf("reopen after clean checkpoint replayed %d records, want 0", got)
	}
	g.compare(15)

	// After a clean reopen every frame is clean (no WAL tail to COW),
	// so the query sweep above must have cycled the tiny cache: more
	// distinct pages touched than frames, hence evictions.
	st, ok = paged.PageStats()
	if !ok {
		t.Fatal("PageStats not available after clean reopen")
	}
	if st.Evictions == 0 {
		t.Fatalf("cache larger than dataset defeats the test: %+v", st)
	}
	if st.Resident >= int(st.Pages) {
		t.Fatalf("entire page file resident (%d/%d): cache not smaller than dataset", st.Resident, st.Pages)
	}
}

// TestPagedServiceSharded runs the paged tier under the sharded
// layout: per-shard page files, split cache budget, aggregated stats.
func TestPagedServiceSharded(t *testing.T) {
	root := t.TempDir()
	const dim = 4
	paged, err := Open(filepath.Join(root, "paged"), Options{
		Dim: dim, Shards: 3, Paged: true, PageCacheBytes: 1 << 19,
		CheckpointEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(filepath.Join(root, "plain"), Options{Dim: dim, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if !paged.Paged() || !paged.Sharded() {
		t.Fatalf("want sharded+paged, got sharded=%v paged=%v", paged.Sharded(), paged.Paged())
	}

	g := &pagedGolden{t: t, rng: rand.New(rand.NewSource(7)), dim: dim, paged: paged, plain: plain}
	signs := make(vecmath.SignPattern, dim)
	for i := range signs {
		signs[i] = 1
	}
	normal := []float64{0.5, 1.1, 0.9, 1.4}
	if _, err := paged.AddNormal(normal, signs); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.AddNormal(normal, signs); err != nil {
		t.Fatal(err)
	}
	g.mutate(6000) // crosses the automatic per-shard checkpoint threshold
	g.compare(10)

	if err := paged.Close(); err != nil {
		t.Fatal(err)
	}
	paged, err = Open(filepath.Join(root, "paged"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	g.paged = paged
	if !paged.Paged() || !paged.Sharded() {
		t.Fatal("sharded paged directory did not reopen sharded+paged")
	}
	g.compare(15)
	if st, ok := paged.PageStats(); !ok || st.Pages == 0 {
		t.Fatalf("sharded PageStats = %+v, %v", st, ok)
	}
}

// TestPagedWritebackStats reopens a paged DB (trees in paged mode),
// mutates it, and checkpoints: the drain-before-lock path must route
// pages through the background writer and the incremental counters
// must reflect the delta, both unsharded and sharded.
func TestPagedWritebackStats(t *testing.T) {
	for _, shards := range []int{0, 2} {
		dir := t.TempDir()
		const dim = 3
		opts := Options{Dim: dim, Paged: true, Shards: shards, WritebackInterval: time.Millisecond}
		db, err := Open(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		v := make([]float64, dim)
		appendOne := func() {
			for j := range v {
				v[j] = rng.Float64() * 100
			}
			if _, err := db.Append(v); err != nil {
				t.Fatal(err)
			}
		}
		signs := make(vecmath.SignPattern, dim)
		for i := range signs {
			signs[i] = 1
		}
		if _, err := db.AddNormal([]float64{0.4, 0.8, 1.2}, signs); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 800; i++ {
			appendOne()
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}

		db, err = Open(dir, Options{WritebackInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			appendOne()
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		st, ok := db.PageStats()
		if !ok {
			t.Fatalf("shards=%d: PageStats unavailable", shards)
		}
		if st.WritebackPages == 0 {
			t.Fatalf("shards=%d: checkpoint drain flushed nothing through the writer (stats %+v)", shards, st)
		}
		if st.WritebackErrors != 0 {
			t.Fatalf("shards=%d: writer errors %d", shards, st.WritebackErrors)
		}
		if st.IncrementalPages <= 0 {
			t.Fatalf("shards=%d: incremental checkpoint wrote %d pages", shards, st.IncrementalPages)
		}
		if st.LastCheckpointMs <= 0 {
			t.Fatalf("shards=%d: checkpoint duration not recorded", shards)
		}
		if st.DirtyFrames != 0 {
			t.Fatalf("shards=%d: %d dirty frames survived a checkpoint", shards, st.DirtyFrames)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
