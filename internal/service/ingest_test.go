package service

import (
	"bytes"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"planar/internal/core"
	"planar/internal/ingest"
	"planar/internal/vecmath"
)

// goldenWorkload is the deterministic op script both write paths run:
// appends first (ids recorded in submission order), then updates and
// removes on disjoint key ranges.
const (
	goldenAppends = 240
	goldenUpdates = 60
	goldenRemoves = 30
	goldenDim     = 3
)

func goldenVec(rng *rand.Rand) []float64 {
	v := make([]float64, goldenDim)
	for j := range v {
		v[j] = rng.Float64() * 10
	}
	return v
}

// runGoldenSync drives the workload through the synchronous
// per-request path.
func runGoldenSync(t *testing.T, db *DB) []uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	ids := make([]uint32, 0, goldenAppends)
	for i := 0; i < goldenAppends; i++ {
		id, err := db.Append(goldenVec(rng))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < goldenUpdates; i++ {
		if err := db.Update(ids[i*3], goldenVec(rng)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < goldenRemoves; i++ {
		if err := db.Remove(ids[200+i]); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

// runGoldenGrouped drives the same workload through the async
// pipeline, keeping a window of submissions in flight so the
// committer forms real multi-record batches. Appends ride one lane in
// submission order (and the round-robin shard router shares its
// counter with the sync path), so id assignment matches the sync run
// exactly.
func runGoldenGrouped(t *testing.T, db *DB) []uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	futs := make([]*ingest.Future, 0, goldenAppends)
	for i := 0; i < goldenAppends; i++ {
		f, err := db.AppendAsync(goldenVec(rng))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	ids := make([]uint32, 0, goldenAppends)
	for _, f := range futs {
		res := f.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		ids = append(ids, res.ID)
	}
	futs = futs[:0]
	for i := 0; i < goldenUpdates; i++ {
		f, err := db.UpdateAsync(ids[i*3], goldenVec(rng))
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i := 0; i < goldenRemoves; i++ {
		f, err := db.RemoveAsync(ids[200+i])
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if res := f.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	return ids
}

// snapshotBytes serialises every shard snapshot of a consistent cut.
func snapshotBytes(t *testing.T, db *DB) (uint64, [][]byte) {
	t.Helper()
	st := db.CaptureState()
	blobs := make([][]byte, len(st.Snaps))
	for i, snap := range st.Snaps {
		var buf bytes.Buffer
		if err := snap.Write(&buf); err != nil {
			t.Fatal(err)
		}
		blobs[i] = buf.Bytes()
	}
	return st.LSN, blobs
}

func sortedQuery(t *testing.T, db *DB, q core.Query) []uint32 {
	t.Helper()
	ids, _, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestGroupedMatchesSyncGolden is the subsystem's correctness bar:
// the grouped and synchronous write paths must produce byte-identical
// snapshots, and replaying the grouped WAL (batch frames) across a
// reopen must land on the same bytes again.
func TestGroupedMatchesSyncGolden(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"single", 0},
		{"sharded", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			syncDB, err := Open(t.TempDir(), Options{Dim: goldenDim, Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			defer syncDB.Close()
			groupedDir := t.TempDir()
			groupedDB, err := Open(groupedDir, Options{
				Dim: goldenDim, Shards: tc.shards,
				IngestBatch:         16,
				IngestFlushInterval: time.Millisecond,
				IngestBlock:         true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, db := range []*DB{syncDB, groupedDB} {
				if _, err := db.AddNormal([]float64{1, 2, 3}, vecmath.FirstOctant(goldenDim)); err != nil {
					t.Fatal(err)
				}
			}
			// Index configs persist at checkpoint time, not in the WAL;
			// checkpoint the grouped store now so the replay leg below
			// starts from a base that carries the index.
			if err := groupedDB.Checkpoint(); err != nil {
				t.Fatal(err)
			}

			syncIDs := runGoldenSync(t, syncDB)
			groupedIDs := runGoldenGrouped(t, groupedDB)
			for i := range syncIDs {
				if syncIDs[i] != groupedIDs[i] {
					t.Fatalf("append %d: sync id %d, grouped id %d", i, syncIDs[i], groupedIDs[i])
				}
			}

			wantLSN, wantSnaps := snapshotBytes(t, syncDB)
			gotLSN, gotSnaps := snapshotBytes(t, groupedDB)
			if gotLSN != wantLSN {
				t.Fatalf("grouped LSN %d, sync LSN %d", gotLSN, wantLSN)
			}
			for i := range wantSnaps {
				if !bytes.Equal(gotSnaps[i], wantSnaps[i]) {
					t.Fatalf("shard %d: grouped snapshot differs from sync (%d vs %d bytes)",
						i, len(gotSnaps[i]), len(wantSnaps[i]))
				}
			}

			q := core.Query{A: []float64{1, 2, 3}, B: 30, Op: core.LE}
			want := sortedQuery(t, syncDB, q)

			// Reopen without a checkpoint: Open must replay the batch
			// frames the grouped run journaled and land on the same state.
			if err := groupedDB.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := Open(groupedDir, Options{Dim: goldenDim})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			reLSN, reSnaps := snapshotBytes(t, re)
			if reLSN != wantLSN {
				t.Fatalf("replayed LSN %d, sync LSN %d", reLSN, wantLSN)
			}
			for i := range wantSnaps {
				if !bytes.Equal(reSnaps[i], wantSnaps[i]) {
					t.Fatalf("shard %d: replayed snapshot differs from sync", i)
				}
			}
			if got := sortedQuery(t, re, q); len(got) != len(want) {
				t.Fatalf("replayed query matched %d ids, sync matched %d", len(got), len(want))
			}
		})
	}
}

// TestReplicaTailsGroupedPrimary proves the replication feed is
// untouched by group commit: the stream hands out flat records (batch
// frames exist only on the primary's disk), and a replica applying
// them lands on the primary's exact snapshot bytes.
func TestReplicaTailsGroupedPrimary(t *testing.T) {
	primary, err := Open(t.TempDir(), Options{
		Dim:                 goldenDim,
		IngestBatch:         16,
		IngestFlushInterval: time.Millisecond,
		IngestBlock:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if _, err := primary.AddNormal([]float64{1, 2, 3}, vecmath.FirstOctant(goldenDim)); err != nil {
		t.Fatal(err)
	}
	runGoldenGrouped(t, primary)

	replica, err := Open(t.TempDir(), Options{Dim: goldenDim})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if _, err := replica.AddNormal([]float64{1, 2, 3}, vecmath.FirstOctant(goldenDim)); err != nil {
		t.Fatal(err)
	}
	for from := uint64(1); from <= primary.LastLSN(); {
		recs, tooOld, err := primary.FeedRead(from, 64)
		if err != nil {
			t.Fatal(err)
		}
		if tooOld {
			t.Fatalf("feed too old at LSN %d", from)
		}
		if len(recs) == 0 {
			t.Fatalf("feed empty at LSN %d (last %d)", from, primary.LastLSN())
		}
		for _, rec := range recs {
			if rec.LSN != from {
				t.Fatalf("stream gap: got LSN %d, want %d", rec.LSN, from)
			}
			if err := replica.ApplyReplicated(rec); err != nil {
				t.Fatalf("apply LSN %d: %v", rec.LSN, err)
			}
			from++
		}
	}

	wantLSN, wantSnaps := snapshotBytes(t, primary)
	gotLSN, gotSnaps := snapshotBytes(t, replica)
	if gotLSN != wantLSN {
		t.Fatalf("replica LSN %d, primary LSN %d", gotLSN, wantLSN)
	}
	for i := range wantSnaps {
		if !bytes.Equal(gotSnaps[i], wantSnaps[i]) {
			t.Fatalf("shard %d: replica snapshot differs from primary", i)
		}
	}
}

// TestIngestConcurrentWriters stresses the pipeline through the DB
// surface: concurrent writers over distinct key spaces, acked counts
// reconciled against the store, then a reopen to prove the concurrent
// WAL replays clean. Run under -race in CI.
func TestIngestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{
		Dim: goldenDim, Shards: 4,
		IngestBatch:         32,
		IngestFlushInterval: time.Millisecond,
		IngestBlock:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 150
	var wg sync.WaitGroup
	removed := make([]int, writers)
	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			var mine []uint32
			for i := 0; i < perWriter; i++ {
				f, err := db.AppendAsync(goldenVec(rng))
				if err != nil {
					t.Error(err)
					return
				}
				res := f.Wait()
				if res.Err != nil {
					t.Error(res.Err)
					return
				}
				mine = append(mine, res.ID)
				switch i % 5 {
				case 2:
					uf, err := db.UpdateAsync(mine[rng.Intn(len(mine))], goldenVec(rng))
					if err != nil {
						t.Error(err)
						return
					}
					if r := uf.Wait(); r.Err != nil {
						t.Error(r.Err)
						return
					}
				case 4:
					rf, err := db.RemoveAsync(mine[len(mine)-1])
					if err != nil {
						t.Error(err)
						return
					}
					if r := rf.Wait(); r.Err != nil {
						t.Error(r.Err)
						return
					}
					mine = mine[:len(mine)-1]
					removed[c]++
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	wantLive := writers * perWriter
	for _, n := range removed {
		wantLive -= n
	}
	if got := db.Len(); got != wantLive {
		t.Fatalf("Len=%d want %d", got, wantLive)
	}
	wantLSN := db.LastLSN()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{Dim: goldenDim})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != wantLive {
		t.Fatalf("replayed Len=%d want %d", got, wantLive)
	}
	if got := re.LastLSN(); got != wantLSN {
		t.Fatalf("replayed LSN=%d want %d", got, wantLSN)
	}
}

// TestIngestCloseDrainsAndStopsGoroutines covers graceful shutdown:
// Close resolves every in-flight future (no writer hangs), every
// acked write survives the reopen, and the committer goroutines are
// gone afterwards.
func TestIngestCloseDrainsAndStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	db, err := Open(dir, Options{
		Dim:                 goldenDim,
		IngestBatch:         8,
		IngestFlushInterval: 5 * time.Millisecond,
		IngestBlock:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	acked := make([]int, writers)
	var wg sync.WaitGroup
	for c := 0; c < writers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for i := 0; ; i++ {
				f, err := db.AppendAsync(goldenVec(rng))
				if err != nil {
					return // pipeline closed mid-shutdown
				}
				if res := f.Wait(); res.Err != nil {
					return
				}
				acked[c]++
			}
		}(c)
	}
	time.Sleep(20 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // every writer's last future resolved — nobody hangs

	total := 0
	for _, n := range acked {
		total += n
	}
	if total == 0 {
		t.Fatal("no writes acked before shutdown")
	}
	re, err := Open(dir, Options{Dim: goldenDim})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got < total {
		t.Fatalf("reopened Len=%d, but %d writes were acked durable", got, total)
	}

	// The committer goroutine must be gone; allow the runtime a moment
	// to reap exiting goroutines.
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+1 {
			break
		}
		if i > 100 {
			t.Fatalf("goroutines: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
