package service

import (
	"fmt"

	"planar/internal/ingest"
	"planar/internal/wal"
)

// ErrBackpressure reports a write shed by a full ingest ring; the
// caller should retry later (the HTTP layer answers 429).
var ErrBackpressure = ingest.ErrBacklog

// startIngest wires the group-commit pipeline when Options.IngestBatch
// asks for one: a lane per shard (one lane in single mode), committed
// through the mode's batch-commit path. Replicas never configure a
// pipeline — their writes arrive pre-sequenced on the replication
// stream.
func (db *DB) startIngest() error {
	if db.opts.IngestBatch <= 0 {
		return nil
	}
	batch := db.opts.IngestBatch
	if batch > wal.MaxBatchRecords {
		batch = wal.MaxBatchRecords
	}
	lanes := 1
	commit := db.commitBatch
	if db.shards != nil {
		lanes = db.shards.NumShards()
		commit = func(lane int, intents []ingest.Intent, results []ingest.Result) error {
			// commitMu read-held across apply+journal, exactly like a
			// synchronous write, so CaptureState can drain in-flight
			// batches to a consistent cut.
			db.commitMu.RLock()
			defer db.commitMu.RUnlock()
			return db.shards.CommitBatch(lane, intents, results)
		}
	}
	p, err := ingest.New(ingest.Config{
		Lanes:         lanes,
		BatchSize:     batch,
		FlushInterval: db.opts.IngestFlushInterval,
		QueueDepth:    db.opts.IngestQueueDepth,
		Block:         db.opts.IngestBlock,
		Commit:        commit,
	})
	if err != nil {
		return err
	}
	db.pipe = p
	return nil
}

// commitBatch is the single-mode group commit: apply every intent
// under one acquisition of db.mu, journal the survivors as one WAL
// frame with one fsync, and let the sequencer hand the batch a
// contiguous LSN range. Apply errors stay scoped to their intent; a
// journal error fails the whole batch.
func (db *DB) commitBatch(_ int, intents []ingest.Intent, results []ingest.Result) error {
	db.commitMu.RLock()
	defer db.commitMu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	recs := make([]wal.Record, 0, len(intents))
	okIdx := make([]int, 0, len(intents))
	for i, in := range intents {
		if results[i].Err != nil {
			continue
		}
		op := wal.Op(in.Op)
		id := in.ID
		var err error
		switch op {
		case wal.OpAppend:
			id, err = db.multi.Append(in.Vec)
		case wal.OpUpdate:
			err = db.multi.Update(id, in.Vec)
		case wal.OpRemove:
			err = db.multi.Remove(id)
		default:
			err = fmt.Errorf("service: unknown op %d", in.Op)
		}
		if err != nil {
			results[i] = ingest.Result{Err: err}
			continue
		}
		vec := in.Vec
		if op == wal.OpRemove {
			vec = nil
		}
		results[i] = ingest.Result{ID: id}
		recs = append(recs, wal.Record{Op: op, ID: id, Vec: vec})
		okIdx = append(okIdx, i)
	}
	if len(recs) == 0 {
		return nil
	}
	// CommitBatch assigns recs[j].LSN = base+j before the journal
	// runs, so the frame encodes the final LSNs. Group commit always
	// fsyncs before acking — that is its durability contract, stronger
	// than the SyncEveryWrite default.
	base, err := db.seq.CommitBatch(recs, func(uint64) error {
		if err := db.log.AppendBatch(recs); err != nil {
			return err
		}
		return db.log.Sync()
	})
	if err != nil {
		return err
	}
	for j, i := range okIdx {
		results[i].LSN = base + uint64(j)
	}
	for range okIdx {
		if err := db.bumpLocked(); err != nil {
			return err
		}
	}
	return nil
}

// AppendAsync submits an append to the ingest pipeline and returns an
// awaitable future; the write is durable (batch frame fsynced) when
// the future resolves. Without a pipeline it degrades to the
// synchronous path and returns an already-resolved future.
func (db *DB) AppendAsync(v []float64) (*ingest.Future, error) {
	if db.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if db.pipe == nil {
		id, err := db.Append(v)
		if err != nil {
			return nil, err
		}
		return ingest.Resolved(ingest.Result{ID: id, LSN: db.seq.Last()}), nil
	}
	lane := 0
	if db.shards != nil {
		lane = db.shards.NextAppendLane()
	}
	return db.pipe.Submit(lane, ingest.Intent{Op: uint8(wal.OpAppend), Vec: v})
}

// UpdateAsync submits an update to the ingest pipeline. Same-key
// operations ride the same lane, so they commit in submission order.
func (db *DB) UpdateAsync(id uint32, v []float64) (*ingest.Future, error) {
	if db.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if db.pipe == nil {
		if err := db.Update(id, v); err != nil {
			return nil, err
		}
		return ingest.Resolved(ingest.Result{ID: id, LSN: db.seq.Last()}), nil
	}
	return db.pipe.Submit(db.laneOf(id), ingest.Intent{Op: uint8(wal.OpUpdate), ID: id, Vec: v})
}

// RemoveAsync submits a remove to the ingest pipeline.
func (db *DB) RemoveAsync(id uint32) (*ingest.Future, error) {
	if db.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if db.pipe == nil {
		if err := db.Remove(id); err != nil {
			return nil, err
		}
		return ingest.Resolved(ingest.Result{ID: id, LSN: db.seq.Last()}), nil
	}
	return db.pipe.Submit(db.laneOf(id), ingest.Intent{Op: uint8(wal.OpRemove), ID: id})
}

// laneOf routes a keyed intent to its commit lane: the owning shard,
// or the only lane in single mode.
func (db *DB) laneOf(id uint32) int {
	if db.shards != nil {
		return db.shards.LaneOf(id)
	}
	return 0
}

// IngestStats snapshots the pipeline counters; ok is false when the
// DB runs the synchronous write path.
func (db *DB) IngestStats() (ingest.Stats, bool) {
	if db.pipe == nil {
		return ingest.Stats{}, false
	}
	return db.pipe.Stats(), true
}
