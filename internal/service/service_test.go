package service

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"planar/internal/core"
	"planar/internal/scan"
	"planar/internal/vecmath"
)

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", Options{Dim: 2}); err == nil {
		t.Error("empty dir accepted")
	}
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("fresh store without Dim accepted")
	}
}

func queryIDs(t *testing.T, db *DB, q core.Query) []uint32 {
	t.Helper()
	ids, _, err := db.Multi().InequalityIDs(q)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddNormal([]float64{1, 1}, vecmath.FirstOctant(2)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var ids []uint32
	for i := 0; i < 200; i++ {
		id, err := db.Append([]float64{rng.Float64() * 10, rng.Float64() * 10})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Mutate: updates and removes.
	for i := 0; i < 50; i++ {
		if err := db.Update(ids[i], []float64{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 70; i++ {
		if err := db.Remove(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint mid-way, then more un-checkpointed mutations.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 70; i < 90; i++ {
		if err := db.Update(ids[i], []float64{rng.Float64() * 10, rng.Float64() * 10}); err != nil {
			t.Fatal(err)
		}
	}
	extra, err := db.Append([]float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{A: []float64{1, 2}, B: 18, Op: core.LE}
	want := queryIDs(t, db, q)
	wantLen := db.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: snapshot + log replay must reproduce the exact state.
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Dim() != 2 || db2.Len() != wantLen {
		t.Fatalf("reopened Dim=%d Len=%d want 2/%d", db2.Dim(), db2.Len(), wantLen)
	}
	got := queryIDs(t, db2, q)
	if len(got) != len(want) {
		t.Fatalf("reopened answer %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("id mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
	// Index configuration survived the checkpoint.
	if db2.Multi().NumIndexes() != 1 {
		t.Fatalf("NumIndexes=%d", db2.Multi().NumIndexes())
	}
	if !db2.Multi().Store().Live(extra) {
		t.Fatal("post-checkpoint append lost")
	}
	// Answers still match a scan of the restored store.
	base := scan.IDs(db2.Multi().Store(), q)
	sort.Slice(base, func(i, j int) bool { return base[i] < base[j] })
	if len(base) != len(got) {
		t.Fatal("restored index inconsistent with restored store")
	}
}

func TestAutomaticCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Dim: 1, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := db.Append([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	// After 25 appends with CheckpointEvery=10, the snapshot holds at
	// least 20 points and the log at most 5 records.
	snap, err := os.Stat(filepath.Join(dir, "snapshot.plnr"))
	if err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	if snap.Size() == 0 {
		t.Fatal("empty snapshot")
	}
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 25 {
		t.Fatalf("Len=%d want 25", db2.Len())
	}
}

func TestSyncEveryWriteAndDimMismatch(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Dim: 2, SyncEveryWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Append([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Open(dir, Options{Dim: 5}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

// TestChurnAgainstReference drives a long random mutation sequence
// with periodic checkpoints and reopen cycles, comparing the durable
// store against an in-memory reference map after every reopen.
func TestChurnAgainstReference(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	ref := map[uint32][]float64{}

	open := func() *DB {
		db, err := Open(dir, Options{Dim: 2, CheckpointEvery: 37})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	check := func(db *DB) {
		t.Helper()
		if db.Len() != len(ref) {
			t.Fatalf("Len=%d reference has %d", db.Len(), len(ref))
		}
		for id, v := range ref {
			if !db.Multi().Store().Live(id) {
				t.Fatalf("id %d missing", id)
			}
			got := db.Multi().Store().Vector(id)
			if got[0] != v[0] || got[1] != v[1] {
				t.Fatalf("id %d vector mismatch: %v vs %v", id, got, v)
			}
		}
	}

	db := open()
	var liveIDs []uint32
	refreshLive := func() {
		liveIDs = liveIDs[:0]
		for id := range ref {
			liveIDs = append(liveIDs, id)
		}
		sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
	}
	for round := 0; round < 6; round++ {
		for op := 0; op < 150; op++ {
			refreshLive()
			switch {
			case len(liveIDs) == 0 || rng.Intn(3) == 0:
				v := []float64{rng.Float64() * 10, rng.Float64() * 10}
				id, err := db.Append(v)
				if err != nil {
					t.Fatal(err)
				}
				if _, dup := ref[id]; dup {
					t.Fatalf("id %d handed out twice", id)
				}
				ref[id] = v
			case rng.Intn(2) == 0:
				id := liveIDs[rng.Intn(len(liveIDs))]
				v := []float64{rng.Float64() * 10, rng.Float64() * 10}
				if err := db.Update(id, v); err != nil {
					t.Fatal(err)
				}
				ref[id] = v
			default:
				id := liveIDs[rng.Intn(len(liveIDs))]
				if err := db.Remove(id); err != nil {
					t.Fatal(err)
				}
				delete(ref, id)
			}
		}
		if round%2 == 0 {
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db = open()
		check(db)
	}
	db.Close()
}

func TestCrashBeforeCheckpointReplaysLog(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{Dim: 1, SyncEveryWrite: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Append([]float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: no Close, no Checkpoint. The synced log must
	// carry everything.
	db.log.Sync()

	db2, err := Open(dir, Options{Dim: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 10 {
		t.Fatalf("recovered Len=%d want 10", db2.Len())
	}
}
